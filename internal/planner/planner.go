// Package planner routes aggregation queries between the WPMaxSAT
// engine and the ConQuer-style rewriting fast path.
//
// The classifier inspects the (query, constraints) pair: under primary
// keys alone, a self-join-free conjunctive query whose join tree is
// rooted at the aggregation relation with full-key child joins (the
// C_aggforest class compiled by internal/conquer) is answered by pure
// relational evaluation — no solver. Everything else, and every query
// under non-key denial constraints, falls back to the SAT reduction.
//
// Classification is structural, so it is cached per query shape: the
// first Decide for a shape runs conquer.Analyze and memoizes either the
// compiled Plan or the rejection reason. Plans are instance-independent;
// the data side is covered by a conquer.Indexes memo keyed by the
// instance's fact count (its version — instances are append-only), so a
// cached plan stays valid across appends and only the lookup maps are
// rebuilt.
//
// Some rejections are data-dependent and only surface while executing a
// plan (a negative or non-integer SUM value, a scalar MIN/MAX whose
// result can be empty). The engine handles those at run time: in auto
// mode it falls back to the solver, in force-rewrite mode it surfaces
// the error.
package planner

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"aggcavsat/internal/conquer"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

// Mode selects how queries are routed.
type Mode int

const (
	// ModeSAT routes every query to the WPMaxSAT engine. It is the zero
	// value so engines configured before the planner existed keep their
	// behavior bit for bit.
	ModeSAT Mode = iota
	// ModeAuto routes rewritable queries to the compiled rewriting and
	// everything else — including run-time rejections — to the solver.
	ModeAuto
	// ModeRewrite forces the rewriting: queries outside the class fail
	// with ErrRewriteUnavailable instead of falling back.
	ModeRewrite
)

// String renders the mode as its flag spelling.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeRewrite:
		return "force-rewrite"
	default:
		return "force-sat"
	}
}

// ParseMode parses a -planner flag value: auto, force-sat or
// force-rewrite (sat and rewrite are accepted as shorthands).
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto":
		return ModeAuto, nil
	case "force-sat", "sat":
		return ModeSAT, nil
	case "force-rewrite", "rewrite":
		return ModeRewrite, nil
	}
	return ModeSAT, fmt.Errorf("planner: unknown mode %q (want auto, force-sat or force-rewrite)", s)
}

// ErrRewriteUnavailable is returned (wrapped, with the rejection
// reason) when ModeRewrite is forced on a query the rewriting cannot
// answer. Match with errors.Is.
var ErrRewriteUnavailable = errors.New("planner: query is not rewritable and planner mode is force-rewrite")

// Route is the executor chosen for one query.
type Route int

const (
	// RouteSAT solves through the WPMaxSAT reduction.
	RouteSAT Route = iota
	// RouteRewrite answers through the compiled ConQuer-style rewriting.
	RouteRewrite
)

// String renders the route as recorded in metrics, journals and explain
// reports.
func (r Route) String() string {
	if r == RouteRewrite {
		return "rewrite"
	}
	return "sat"
}

// Rejection reasons that do not come out of conquer.Analyze. Tests pin
// these strings; they also appear verbatim in explain reports and
// journal entries.
const (
	// ReasonForcedSAT is stamped when the mode pins every query to the
	// solver.
	ReasonForcedSAT = "planner mode forces the solver"
	// ReasonDenialConstraints rejects rewriting under DC-mode repairs:
	// the ConQuer argument is a primary-key result, non-key denial
	// constraints need the solver.
	ReasonDenialConstraints = "non-key denial constraints require the solver"
)

// Decision is the routing verdict for one query.
type Decision struct {
	Route Route
	// Reason explains a SAT route (why the rewriting was not taken);
	// empty on the rewrite route.
	Reason string
	// Plan is the compiled rewriting for RouteRewrite decisions.
	Plan *conquer.Plan
	// PlanCached reports that the decision (plan or rejection) came
	// from the per-shape cache rather than a fresh classification.
	PlanCached bool
}

// Planner classifies queries for one engine. It owns the per-shape plan
// cache and the instance's rewriting indexes; both are safe for
// concurrent use.
type Planner struct {
	schema *db.Schema
	mode   Mode
	hasDCs bool
	ix     *conquer.Indexes

	mu    sync.Mutex
	plans map[string]*cachedDecision
}

// cachedDecision memoizes one shape's classification: a compiled plan,
// or the reason it was rejected.
type cachedDecision struct {
	plan   *conquer.Plan
	reason string
}

// New creates a planner for the instance. hasDCs marks engines whose
// repairs come from denial constraints rather than primary keys; those
// always route to the solver.
func New(in *db.Instance, mode Mode, hasDCs bool) *Planner {
	return &Planner{
		schema: in.Schema(),
		mode:   mode,
		hasDCs: hasDCs,
		ix:     conquer.NewIndexes(in),
		plans:  map[string]*cachedDecision{},
	}
}

// Mode returns the configured routing mode.
func (p *Planner) Mode() Mode { return p.mode }

// Indexes returns the instance's memoized rewriting indexes, shared by
// every plan executed against it.
func (p *Planner) Indexes() *conquer.Indexes { return p.ix }

// Decide classifies q (already head-built and schema-validated) and
// returns the route with its compiled plan or rejection reason.
func (p *Planner) Decide(q cq.AggQuery) Decision {
	if p.mode == ModeSAT {
		return Decision{Route: RouteSAT, Reason: ReasonForcedSAT}
	}
	if p.hasDCs {
		return Decision{Route: RouteSAT, Reason: ReasonDenialConstraints}
	}
	fp := fingerprint(q)
	p.mu.Lock()
	c, ok := p.plans[fp]
	p.mu.Unlock()
	if !ok {
		c = &cachedDecision{}
		plan, err := conquer.Analyze(p.schema, q)
		if err != nil {
			c.reason = TrimReason(err)
		} else {
			c.plan = plan
		}
		p.mu.Lock()
		// Two goroutines may race to classify the same shape; both
		// compute the identical verdict, last write wins.
		p.plans[fp] = c
		p.mu.Unlock()
	}
	if c.plan == nil {
		return Decision{Route: RouteSAT, Reason: c.reason, PlanCached: ok}
	}
	return Decision{Route: RouteRewrite, Plan: c.plan, PlanCached: ok}
}

// TrimReason compresses a conquer classification error into the bare
// reason recorded in explain reports and journals: the ErrNotInClass
// prefix is implied by the SAT route, so only the detail after it is
// kept.
func TrimReason(err error) string {
	msg := err.Error()
	if rest, ok := strings.CutPrefix(msg, conquer.ErrNotInClass.Error()+": "); ok {
		return rest
	}
	return msg
}

// fingerprint keys the plan cache: FNV-1a over the canonical query
// rendering, so two spellings of the same algebraic query share a
// cache entry.
func fingerprint(q cq.AggQuery) string {
	h := fnv.New64a()
	h.Write([]byte(q.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}
