// Engine-level half of the columnar ≡ row property (the package-level
// half lives in internal/db): the physical fact-store layout must be
// invisible to every planner route and constraint mode — identical
// answers, identical answer digests, identical CNF variable and clause
// counts.
package planner_test

import (
	"fmt"
	"testing"

	"aggcavsat/internal/constraints"
	"aggcavsat/internal/core"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/planner"
)

// answersDigest renders a report canonically (key, interval, flags) so
// two runs can be compared for exact agreement.
func answersDigest(rep *core.Report) string {
	var b []byte
	for _, a := range rep.Answers {
		b = fmt.Appendf(b, "%v:[%v,%v]%v%v;", a.Key, a.GLB, a.LUB, a.FromConsistentPart, a.EmptyPossible)
	}
	return string(b)
}

// treeFDs turns each relation's key into explicit functional
// dependencies, so DC mode expresses the same repairs as keys mode.
func treeFDs(t *testing.T, s *db.Schema) []constraints.DC {
	t.Helper()
	var dcs []constraints.DC
	for _, spec := range []struct {
		rel string
		lhs []string
		rhs []string
	}{
		{"L", []string{"id"}, []string{"okey", "g", "v"}},
		{"O", []string{"okey"}, []string{"c", "status"}},
		{"C", []string{"ckey"}, []string{"seg"}},
	} {
		fds, err := constraints.FD(s.Relation(spec.rel), spec.lhs, spec.rhs...)
		if err != nil {
			t.Fatal(err)
		}
		dcs = append(dcs, fds...)
	}
	return dcs
}

// layoutOutcome is everything one (engine, query) run exposes that the
// storage layout could possibly perturb.
type layoutOutcome struct {
	err     string
	digest  string
	answers int
	vars    int
	clauses int
	maxVars int
	maxCls  int
}

func runOutcome(eng *core.Engine, q cq.AggQuery) layoutOutcome {
	rep, err := eng.RangeAnswers(q)
	if err != nil {
		return layoutOutcome{err: err.Error()}
	}
	return layoutOutcome{
		digest:  answersDigest(rep),
		answers: len(rep.Answers),
		vars:    rep.Stats.Vars,
		clauses: rep.Stats.Clauses,
		maxVars: rep.Stats.MaxVars,
		maxCls:  rep.Stats.MaxClauses,
	}
}

// TestColumnarRowEngineEquivalent drives randomized instances through
// both physical layouts under every planner route and both constraint
// modes, and requires bit-identical outcomes: same answers, same
// digests, same CNF var/clause counts — and when a route refuses a
// query, the same refusal.
func TestColumnarRowEngineEquivalent(t *testing.T) {
	ops := []cq.AggOp{cq.CountStar, cq.Count, cq.Sum, cq.Min, cq.Max}
	modes := []planner.Mode{planner.ModeAuto, planner.ModeSAT, planner.ModeRewrite}
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for seed := 1; seed <= trials; seed++ {
		r := rng(seed*104729 + 7)
		col := randomTreeInstance(&r)
		row := col.ConvertLayout(db.LayoutRow)
		if col.Layout() != db.LayoutColumnar || row.Layout() != db.LayoutRow {
			t.Fatal("layout labels wrong")
		}
		dcs := treeFDs(t, col.Schema())

		type engPair struct{ col, row *core.Engine }
		build := func(in *db.Instance, mode planner.Mode, dc bool) *core.Engine {
			opts := core.Options{Mode: core.KeysMode, Planner: mode, Explain: true}
			if dc {
				opts.Mode = core.DCMode
				opts.DCs = dcs
			}
			eng, err := core.New(in, opts)
			if err != nil {
				t.Fatal(err)
			}
			return eng
		}
		var pairs []struct {
			label string
			e     engPair
		}
		for _, mode := range modes {
			for _, dc := range []bool{false, true} {
				if dc && mode == planner.ModeRewrite {
					// The rewriting executor is keys-only; DC engines route
					// through SAT regardless, so force-rewrite + DC refuses
					// every query and adds nothing here.
					continue
				}
				cmode := "keys"
				if dc {
					cmode = "dc"
				}
				pairs = append(pairs, struct {
					label string
					e     engPair
				}{
					label: fmt.Sprintf("planner=%s mode=%s", mode, cmode),
					e:     engPair{col: build(col, mode, dc), row: build(row, mode, dc)},
				})
			}
		}

		for _, p := range pairs {
			for _, op := range ops {
				for _, grouped := range []bool{false, true} {
					for _, withC := range []bool{false, true} {
						q := treeQuery(op, grouped, withC, withC) // filter rides along with the wider join
						label := fmt.Sprintf("seed %d %s op %v grouped %v withC %v",
							seed, p.label, op, grouped, withC)
						co := runOutcome(p.e.col, q)
						ro := runOutcome(p.e.row, q)
						if co != ro {
							t.Fatalf("%s: layouts diverge:\ncolumnar %+v\nrow      %+v", label, co, ro)
						}
						if co.err == "" && co.digest == "" && co.answers != 0 {
							t.Fatalf("%s: empty digest with %d answers", label, co.answers)
						}
					}
				}
			}
		}
	}
}
