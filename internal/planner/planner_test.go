// Tests live in an external package so they can drive the planner
// through internal/core (which imports the planner) and cross-check the
// routed answers against internal/exhaustive.
package planner_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"aggcavsat/internal/conquer"
	"aggcavsat/internal/core"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/exhaustive"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/planner"
)

// treeSchema mirrors the conquer test schema (the generators are
// unexported there): fact table L(id, okey, g, v) with key id, dimension
// O(okey, c, status) with key okey, dimension C(ckey, seg) with key ckey
// referenced from O.c — the lineitem→orders→customer shape.
func treeSchema() *db.Schema {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "L",
		Attrs: []db.Attribute{
			{Name: "id", Kind: db.KindInt},
			{Name: "okey", Kind: db.KindInt},
			{Name: "g", Kind: db.KindString},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "O",
		Attrs: []db.Attribute{
			{Name: "okey", Kind: db.KindInt},
			{Name: "c", Kind: db.KindInt},
			{Name: "status", Kind: db.KindString},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "C",
		Attrs: []db.Attribute{
			{Name: "ckey", Kind: db.KindInt},
			{Name: "seg", Kind: db.KindString},
		},
		Key: []int{0},
	})
	return s
}

type rng uint64

func (r *rng) next(n int) int {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return int(x % uint64(n))
}

func ptrRng(seed uint64) *rng {
	r := rng(seed)
	return &r
}

// randomTreeInstance builds a small instance with key violations in all
// three relations and non-negative values, so every structurally
// rewritable query on it also executes on the rewrite route (no
// negative-SUM runtime fallback; scalar MIN/MAX may still fall back when
// a repair empties the join).
func randomTreeInstance(r *rng) *db.Instance {
	in := db.NewInstance(treeSchema())
	segs := []string{"A", "B"}
	stats := []string{"x", "y"}
	groups := []string{"p", "q"}
	nC := 1 + r.next(2)
	for k := 0; k < nC; k++ {
		alts := 1 + r.next(2)
		for a := 0; a < alts; a++ {
			in.MustInsert("C", db.Int(int64(k)), db.Str(segs[a%len(segs)]))
		}
	}
	nO := 1 + r.next(3)
	for k := 0; k < nO; k++ {
		alts := 1 + r.next(2)
		for a := 0; a < alts; a++ {
			in.MustInsert("O",
				db.Int(int64(k)),
				db.Int(int64(r.next(nC+1))), // may dangle (missing customer)
				db.Str(stats[a%len(stats)]))
		}
	}
	nL := 2 + r.next(3)
	for k := 0; k < nL; k++ {
		alts := 1 + r.next(3)
		for a := 0; a < alts; a++ {
			in.MustInsert("L",
				db.Int(int64(k)),
				db.Int(int64(r.next(nO+1))), // may dangle
				db.Str(groups[(a+r.next(2))%len(groups)]),
				db.Int(int64(r.next(5)))) // non-negative values 0..4
		}
	}
	return in
}

func treeQuery(op cq.AggOp, grouped bool, withCustomer bool, statusFilter bool) cq.AggQuery {
	atoms := []cq.Atom{
		{Rel: "L", Args: []cq.Term{cq.V("id"), cq.V("okey"), cq.V("g"), cq.V("v")}},
		{Rel: "O", Args: []cq.Term{cq.V("okey"), cq.V("c"), cq.V("st")}},
	}
	if withCustomer {
		atoms = append(atoms, cq.Atom{Rel: "C", Args: []cq.Term{cq.V("c"), cq.V("seg")}})
	}
	var conds []cq.Condition
	if statusFilter {
		conds = append(conds, cq.Condition{Left: cq.V("st"), Op: cq.OpEQ, Right: cq.C(db.Str("x"))})
	}
	q := cq.AggQuery{
		Op:         op,
		AggVar:     "v",
		Underlying: cq.Single(cq.CQ{Atoms: atoms, Conds: conds}),
	}
	if grouped {
		q.GroupBy = []string{"g"}
	}
	return q
}

func newEngine(t testing.TB, in *db.Instance, mode planner.Mode) *core.Engine {
	t.Helper()
	eng, err := core.New(in, core.Options{Mode: core.KeysMode, Planner: mode, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestParseMode(t *testing.T) {
	cases := map[string]planner.Mode{
		"auto":          planner.ModeAuto,
		"force-sat":     planner.ModeSAT,
		"sat":           planner.ModeSAT,
		"force-rewrite": planner.ModeRewrite,
		"rewrite":       planner.ModeRewrite,
		" AUTO ":        planner.ModeAuto,
	}
	for s, want := range cases {
		got, err := planner.ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := planner.ParseMode("greedy"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
	// The flag spellings round-trip; zero values stay on the legacy path.
	if planner.ModeSAT.String() != "force-sat" || planner.ModeAuto.String() != "auto" ||
		planner.ModeRewrite.String() != "force-rewrite" {
		t.Error("mode strings drifted from the flag spellings")
	}
	if planner.RouteSAT.String() != "sat" || planner.RouteRewrite.String() != "rewrite" {
		t.Error("route strings drifted from the metric label values")
	}
}

// TestDecideCachesPlans pins the per-shape memoization: the second
// Decide for the same shape reports PlanCached and reuses the compiled
// plan (or the rejection reason) without re-running Analyze.
func TestDecideCachesPlans(t *testing.T) {
	in := randomTreeInstance(ptrRng(11))
	p := planner.New(in, planner.ModeAuto, false)

	q := treeQuery(cq.Sum, true, true, false).BuildHead()
	d1 := p.Decide(q)
	if d1.Route != planner.RouteRewrite || d1.Plan == nil || d1.PlanCached {
		t.Fatalf("first decision: %+v", d1)
	}
	d2 := p.Decide(q)
	if d2.Route != planner.RouteRewrite || !d2.PlanCached || d2.Plan != d1.Plan {
		t.Fatalf("second decision did not reuse the cached plan: %+v", d2)
	}

	selfJoin := selfJoinQuery().BuildHead()
	r1 := p.Decide(selfJoin)
	if r1.Route != planner.RouteSAT || r1.PlanCached || r1.Reason != "query has self-joins" {
		t.Fatalf("first rejection: %+v", r1)
	}
	r2 := p.Decide(selfJoin)
	if r2.Route != planner.RouteSAT || !r2.PlanCached || r2.Reason != r1.Reason {
		t.Fatalf("second rejection not cached: %+v", r2)
	}
}

func selfJoinQuery() cq.AggQuery {
	return cq.AggQuery{
		Op: cq.CountStar,
		Underlying: cq.Single(cq.CQ{Atoms: []cq.Atom{
			{Rel: "L", Args: []cq.Term{cq.V("a"), cq.V("k"), cq.V("g"), cq.V("v")}},
			{Rel: "L", Args: []cq.Term{cq.V("b"), cq.V("k"), cq.V("h"), cq.V("w")}},
		}}),
	}
}

// aggOffRootQuery aggregates over a child attribute (O.c) while L joins
// O on O's key: O must be the root to own the aggregation attribute,
// which makes L's join edge a non-key join.
func aggOffRootQuery() cq.AggQuery {
	return cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "c",
		Underlying: cq.Single(cq.CQ{Atoms: []cq.Atom{
			{Rel: "L", Args: []cq.Term{cq.V("id"), cq.V("okey"), cq.V("g"), cq.V("v")}},
			{Rel: "O", Args: []cq.Term{cq.V("okey"), cq.V("c"), cq.V("st")}},
		}}),
	}
}

// cyclicSchema/cyclicQuery: A joins B on b and C on c, and B joins C on
// d — a triangle, so the join graph is not a tree from any root.
func cyclicSchema() *db.Schema {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "A",
		Attrs: []db.Attribute{
			{Name: "a", Kind: db.KindInt},
			{Name: "b", Kind: db.KindInt},
			{Name: "c", Kind: db.KindInt},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "B",
		Attrs: []db.Attribute{
			{Name: "b", Kind: db.KindInt},
			{Name: "d", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "CC",
		Attrs: []db.Attribute{
			{Name: "c", Kind: db.KindInt},
			{Name: "d", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	return s
}

func cyclicQuery() cq.AggQuery {
	return cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "v",
		Underlying: cq.Single(cq.CQ{Atoms: []cq.Atom{
			{Rel: "A", Args: []cq.Term{cq.V("a"), cq.V("b"), cq.V("c"), cq.V("v")}},
			{Rel: "B", Args: []cq.Term{cq.V("b"), cq.V("d")}},
			{Rel: "CC", Args: []cq.Term{cq.V("c"), cq.V("d")}},
		}}),
	}
}

// TestClassifierRejections pins, for every structural fallback, the SAT
// route plus the exact reason string surfaced in explain reports and
// journal entries. The strings are a contract with operators reading
// those artifacts — change them deliberately.
func TestClassifierRejections(t *testing.T) {
	in := randomTreeInstance(ptrRng(21))

	union := treeQuery(cq.Sum, false, false, false)
	union.Underlying.Disjuncts = append(union.Underlying.Disjuncts, union.Underlying.Disjuncts[0])

	cases := []struct {
		name   string
		q      cq.AggQuery
		reason string
	}{
		{"self_join", selfJoinQuery(), "query has self-joins"},
		{"agg_attr_off_root", aggOffRootQuery(), "join on non-key attribute okey of L"},
		{"union", union, "unions of conjunctive queries are not rewritable here"},
		{"distinct_operator", treeQuery(cq.SumDistinct, false, false, false),
			"operator " + cq.SumDistinct.String() + " not supported by the rewriting"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := newEngine(t, in, planner.ModeAuto)
			rep, err := eng.RangeAnswers(tc.q)
			if err != nil {
				t.Fatal(err)
			}
			checkSATRoute(t, rep, tc.reason)
		})
	}

	t.Run("cyclic_join", func(t *testing.T) {
		cin := db.NewInstance(cyclicSchema())
		cin.MustInsert("A", db.Int(1), db.Int(1), db.Int(1), db.Int(3))
		cin.MustInsert("B", db.Int(1), db.Int(7))
		cin.MustInsert("CC", db.Int(1), db.Int(7))
		eng := newEngine(t, cin, planner.ModeAuto)
		rep, err := eng.RangeAnswers(cyclicQuery())
		if err != nil {
			t.Fatal(err)
		}
		checkSATRoute(t, rep, "join graph is not a tree")
	})

	t.Run("forced_sat", func(t *testing.T) {
		eng := newEngine(t, in, planner.ModeSAT)
		rep, err := eng.RangeAnswers(treeQuery(cq.Sum, false, false, false))
		if err != nil {
			t.Fatal(err)
		}
		checkSATRoute(t, rep, planner.ReasonForcedSAT)
	})

	t.Run("denial_constraints", func(t *testing.T) {
		// Any DC-mode engine routes to the solver before classification.
		p := planner.New(in, planner.ModeAuto, true)
		d := p.Decide(treeQuery(cq.Sum, false, false, false).BuildHead())
		if d.Route != planner.RouteSAT || d.Reason != planner.ReasonDenialConstraints {
			t.Fatalf("DC decision: %+v", d)
		}
	})
}

// checkSATRoute asserts the report and its explain block agree on the
// SAT route and the given reason.
func checkSATRoute(t *testing.T, rep *core.Report, reason string) {
	t.Helper()
	if rep.Route != "sat" || rep.RouteReason != reason {
		t.Fatalf("route %q reason %q, want sat / %q", rep.Route, rep.RouteReason, reason)
	}
	if rep.Explain == nil {
		t.Fatal("explain missing")
	}
	if rep.Explain.Route != "sat" || rep.Explain.RouteReason != reason {
		t.Fatalf("explain route %q reason %q, want sat / %q",
			rep.Explain.Route, rep.Explain.RouteReason, reason)
	}
}

// TestRuntimeFallback covers the data-dependent rejections the
// classifier cannot see: the plan starts executing, rejects itself, and
// auto mode re-routes the call to the solver with a "runtime fallback"
// reason.
func TestRuntimeFallback(t *testing.T) {
	t.Run("negative_sum", func(t *testing.T) {
		neg := db.NewInstance(treeSchema())
		neg.MustInsert("L", db.Int(1), db.Int(1), db.Str("p"), db.Int(-5))
		neg.MustInsert("O", db.Int(1), db.Int(1), db.Str("x"))
		eng := newEngine(t, neg, planner.ModeAuto)
		rep, err := eng.RangeAnswers(treeQuery(cq.Sum, false, false, false))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Route != "sat" || !strings.HasPrefix(rep.RouteReason, "runtime fallback: ") {
			t.Fatalf("route %q reason %q", rep.Route, rep.RouteReason)
		}
		if !strings.Contains(rep.RouteReason, "SUM over negative values") {
			t.Fatalf("reason %q does not name the rejection", rep.RouteReason)
		}
		if len(rep.Answers) != 1 || rep.Answers[0].GLB.AsInt() != -5 || rep.Answers[0].LUB.AsInt() != -5 {
			t.Fatalf("fallback answers: %+v", rep.Answers)
		}
	})

	t.Run("scalar_min_empty", func(t *testing.T) {
		// L's sole key group has a variant dangling into a missing order:
		// one repair empties the join, so scalar MIN has EmptyPossible and
		// the rewriting hands the call back to the iterative-SAT procedure.
		in := db.NewInstance(treeSchema())
		in.MustInsert("L", db.Int(1), db.Int(1), db.Str("p"), db.Int(3))
		in.MustInsert("L", db.Int(1), db.Int(9), db.Str("p"), db.Int(4))
		in.MustInsert("O", db.Int(1), db.Int(1), db.Str("x"))
		eng := newEngine(t, in, planner.ModeAuto)
		rep, err := eng.RangeAnswers(treeQuery(cq.Min, false, false, false))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Route != "sat" || !strings.HasPrefix(rep.RouteReason, "runtime fallback: ") {
			t.Fatalf("route %q reason %q", rep.Route, rep.RouteReason)
		}
		if len(rep.Answers) != 1 || !rep.Answers[0].EmptyPossible {
			t.Fatalf("answers: %+v", rep.Answers)
		}
	})
}

// TestForceRewrite pins the force-rewrite contract: in-class queries
// answer on the rewrite route, structurally rejected queries fail with
// ErrRewriteUnavailable, and run-time rejections surface the conquer
// classification error instead of falling back.
func TestForceRewrite(t *testing.T) {
	in := randomTreeInstance(ptrRng(31))
	eng := newEngine(t, in, planner.ModeRewrite)

	rep, err := eng.RangeAnswers(treeQuery(cq.Sum, true, true, true))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Route != "rewrite" || rep.RouteReason != "" {
		t.Fatalf("route %q reason %q, want rewrite with empty reason", rep.Route, rep.RouteReason)
	}
	if rep.Explain == nil || rep.Explain.Route != "rewrite" {
		t.Fatalf("explain: %+v", rep.Explain)
	}

	if _, err := eng.RangeAnswers(selfJoinQuery()); !errors.Is(err, planner.ErrRewriteUnavailable) {
		t.Fatalf("structural rejection under force-rewrite: %v", err)
	}

	neg := db.NewInstance(treeSchema())
	neg.MustInsert("L", db.Int(1), db.Int(1), db.Str("p"), db.Int(-5))
	neg.MustInsert("O", db.Int(1), db.Int(1), db.Str("x"))
	negEng := newEngine(t, neg, planner.ModeRewrite)
	_, err = negEng.RangeAnswers(treeQuery(cq.Sum, false, false, false))
	if !errors.Is(err, conquer.ErrNotInClass) {
		t.Fatalf("runtime rejection under force-rewrite: %v", err)
	}
	if errors.Is(err, planner.ErrRewriteUnavailable) {
		t.Fatalf("runtime rejection mislabelled as structural: %v", err)
	}
}

// TestRouteCountersSumToCalls asserts the metrics contract: every
// RangeAnswers call increments exactly one of the two route counters,
// including calls that settle on SAT only after a runtime fallback.
func TestRouteCountersSumToCalls(t *testing.T) {
	reg := obsv.NewRegistry()
	in := randomTreeInstance(ptrRng(41))
	eng, err := core.New(in, core.Options{Mode: core.KeysMode, Planner: planner.ModeAuto, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	for _, q := range []cq.AggQuery{
		treeQuery(cq.Sum, false, false, false),         // rewrite
		treeQuery(cq.Count, true, true, false),         // rewrite
		treeQuery(cq.Max, true, false, true),           // rewrite
		selfJoinQuery(),                                // sat (structural)
		treeQuery(cq.SumDistinct, false, false, false), // sat (operator)
	} {
		if _, err := eng.RangeAnswers(q); err != nil {
			t.Fatal(err)
		}
		calls++
	}
	rw := reg.Counter(obsv.MetricRouteRewrite).Value()
	sat := reg.Counter(obsv.MetricRouteSAT).Value()
	if rw+sat != int64(calls) {
		t.Fatalf("route counters %d+%d != %d calls", rw, sat, calls)
	}
	if rw == 0 || sat == 0 {
		t.Fatalf("expected both routes exercised: rewrite=%d sat=%d", rw, sat)
	}
}

// TestPlannerEquivalence is the tentpole property test: on random
// inconsistent instances, planner-auto, forced-SAT and brute-force
// repair enumeration must produce identical range consistent answers
// for every operator and query shape in the overlap — and auto must
// actually take the rewrite route unless a data-dependent rejection
// forced it back.
func TestPlannerEquivalence(t *testing.T) {
	ops := []cq.AggOp{cq.CountStar, cq.Count, cq.Sum, cq.Min, cq.Max}
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for seed := 1; seed <= trials; seed++ {
		r := rng(seed*693951 + 17)
		in := randomTreeInstance(&r)
		auto := newEngine(t, in, planner.ModeAuto)
		sat := newEngine(t, in, planner.ModeSAT)
		for _, op := range ops {
			for _, grouped := range []bool{false, true} {
				for _, withC := range []bool{false, true} {
					for _, filt := range []bool{false, true} {
						q := treeQuery(op, grouped, withC, filt)
						label := fmt.Sprintf("seed %d op %v grouped %v withC %v filt %v",
							seed, op, grouped, withC, filt)
						checkEquivalence(t, label, in, q, auto, sat)
					}
				}
			}
		}
	}
}

func checkEquivalence(t *testing.T, label string, in *db.Instance, q cq.AggQuery, auto, sat *core.Engine) {
	t.Helper()
	want, err := exhaustive.RangeAnswers(in, q, exhaustive.Options{Mode: exhaustive.ModeKeys})
	if err != nil {
		t.Fatalf("%s: exhaustive: %v", label, err)
	}
	a, err := auto.RangeAnswers(q)
	if err != nil {
		t.Fatalf("%s: auto: %v", label, err)
	}
	s, err := sat.RangeAnswers(q)
	if err != nil {
		t.Fatalf("%s: sat: %v", label, err)
	}
	if a.Route != "rewrite" && !strings.HasPrefix(a.RouteReason, "runtime fallback: ") {
		t.Fatalf("%s: auto route %q (%s) on an in-class query", label, a.Route, a.RouteReason)
	}
	if s.Route != "sat" {
		t.Fatalf("%s: forced-sat route %q", label, s.Route)
	}
	compareToExhaustive(t, label+" [auto]", a.Answers, want)
	compareToExhaustive(t, label+" [sat]", s.Answers, want)
	if len(a.Answers) != len(s.Answers) {
		t.Fatalf("%s: auto %d answers vs sat %d", label, len(a.Answers), len(s.Answers))
	}
	for i := range a.Answers {
		x, y := a.Answers[i], s.Answers[i]
		if x.Key.Compare(y.Key) != 0 || !valuesMatch(x.GLB, y.GLB) || !valuesMatch(x.LUB, y.LUB) ||
			x.EmptyPossible != y.EmptyPossible || x.FromConsistentPart != y.FromConsistentPart {
			t.Fatalf("%s: answer %d diverges between routes:\n auto %+v\n sat  %+v", label, i, x, y)
		}
	}
}

func compareToExhaustive(t *testing.T, label string, got []core.GroupAnswer, want []exhaustive.GroupRange) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers vs exhaustive %d\n got %+v\nwant %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Key.Compare(w.Key) != 0 {
			t.Fatalf("%s: key %v vs %v", label, g.Key, w.Key)
		}
		if g.EmptyPossible != w.EmptyPossible {
			t.Fatalf("%s: key %v EmptyPossible %v vs exhaustive %v", label, g.Key, g.EmptyPossible, w.EmptyPossible)
		}
		if !valuesMatch(g.GLB, w.GLB) || !valuesMatch(g.LUB, w.LUB) {
			t.Fatalf("%s: key %v range [%v,%v] vs exhaustive [%v,%v]",
				label, g.Key, g.GLB, g.LUB, w.GLB, w.LUB)
		}
	}
}

func valuesMatch(a, b db.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	return a.Equal(b)
}

// TestTrimReason pins the prefix-stripping used for journal/explain
// reason strings.
func TestTrimReason(t *testing.T) {
	err := fmt.Errorf("%w: query has self-joins", conquer.ErrNotInClass)
	if got := planner.TrimReason(err); got != "query has self-joins" {
		t.Fatalf("TrimReason = %q", got)
	}
	other := errors.New("context deadline exceeded")
	if got := planner.TrimReason(other); got != other.Error() {
		t.Fatalf("TrimReason on non-class error = %q", got)
	}
}

// FuzzPlannerEquivalence is the randomized cross-check: arbitrary
// (seed, operator, shape) triples must keep planner-auto, forced-SAT
// and exhaustive repair enumeration in exact agreement. The seed corpus
// in testdata covers every operator and both routes.
func FuzzPlannerEquivalence(f *testing.F) {
	f.Add(uint64(1), 0, 0)
	f.Add(uint64(7), 2, 7)
	f.Add(uint64(1234567), 3, 5)
	f.Add(uint64(42), 4, 2)
	f.Fuzz(func(t *testing.T, seed uint64, opIdx int, shape int) {
		ops := []cq.AggOp{cq.CountStar, cq.Count, cq.Sum, cq.Min, cq.Max}
		if opIdx < 0 {
			opIdx = -opIdx
		}
		if opIdx < 0 { // math.MinInt negates to itself
			opIdx = 0
		}
		op := ops[opIdx%len(ops)]
		if seed == 0 {
			seed = 1
		}
		r := rng(seed)
		in := randomTreeInstance(&r)
		q := treeQuery(op, shape&1 != 0, shape&2 != 0, shape&4 != 0)
		auto := newEngine(t, in, planner.ModeAuto)
		sat := newEngine(t, in, planner.ModeSAT)
		label := fmt.Sprintf("seed %d op %v shape %#x", seed, op, shape&7)
		checkEquivalence(t, label, in, q, auto, sat)
	})
}
