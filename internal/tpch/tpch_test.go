package tpch

import (
	"testing"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

const testSF = 0.0005 // ~3000 lineitems

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testSF, 42)
	b := Generate(testSF, 42)
	if a.NumFacts() != b.NumFacts() {
		t.Fatalf("sizes differ: %d vs %d", a.NumFacts(), b.NumFacts())
	}
	for i := 0; i < a.NumFacts(); i++ {
		if !a.Fact(db.FactID(i)).Tuple.Equal(b.Fact(db.FactID(i)).Tuple) {
			t.Fatalf("fact %d differs", i)
		}
	}
	c := Generate(testSF, 43)
	same := true
	for i := 0; i < a.NumFacts() && i < c.NumFacts(); i++ {
		if !a.Fact(db.FactID(i)).Tuple.Equal(c.Fact(db.FactID(i)).Tuple) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateConsistent(t *testing.T) {
	in := Generate(testSF, 1)
	for _, st := range in.KeyInconsistency() {
		if st.ViolatingFacts != 0 {
			t.Errorf("%s: %d violating facts in fresh data", st.Rel, st.ViolatingFacts)
		}
	}
	sz := SizesAt(testSF)
	if in.RelSize("lineitem") != sz.Lineitem || in.RelSize("orders") != sz.Orders {
		t.Errorf("cardinalities: lineitem %d orders %d", in.RelSize("lineitem"), in.RelSize("orders"))
	}
	if in.RelSize("region") != 5 || in.RelSize("nation") != 25 {
		t.Error("fixed relations wrong")
	}
}

func TestGenerateReferentialIntegrity(t *testing.T) {
	in := Generate(testSF, 7)
	sz := SizesAt(testSF)
	for _, id := range in.RelFacts("orders") {
		ck := in.Fact(id).Tuple[1].AsInt()
		if ck < 0 || ck >= int64(sz.Customer) {
			t.Fatalf("order references missing customer %d", ck)
		}
	}
	for _, id := range in.RelFacts("lineitem") {
		tup := in.Fact(id).Tuple
		if ok := tup[0].AsInt(); ok < 0 || ok >= int64(sz.Orders) {
			t.Fatalf("lineitem references missing order %d", ok)
		}
		if pk := tup[2].AsInt(); pk < 0 || pk >= int64(sz.Part) {
			t.Fatalf("lineitem references missing part %d", pk)
		}
	}
}

func TestInjectHitsTarget(t *testing.T) {
	in := Generate(testSF, 1)
	for _, pct := range []float64{5, 15, 35} {
		injected, err := Inject(in, InjectOptions{Percent: pct, MinGroup: 2, MaxGroup: 7, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range injected.KeyInconsistency() {
			if st.Facts < 100 {
				continue // tiny relations can't hit the target precisely
			}
			got := st.Percent()
			if got < pct-3 || got > pct+6 {
				t.Errorf("pct %.0f: %s at %.2f%%", pct, st.Rel, got)
			}
			if st.LargestGroup > 7 {
				t.Errorf("%s: group of %d exceeds 7", st.Rel, st.LargestGroup)
			}
		}
	}
}

func TestInjectPreservesRepairSize(t *testing.T) {
	in := Generate(testSF, 1)
	injected, err := Inject(in, InjectOptions{Percent: 20, MinGroup: 2, MaxGroup: 7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Repair size per relation = number of key-equal groups = original size.
	for _, st := range injected.KeyInconsistency() {
		want := in.RelSize(st.Rel)
		if st.Groups != want {
			t.Errorf("%s: %d groups, want repair size %d", st.Rel, st.Groups, want)
		}
	}
}

func TestInjectNoDuplicateTuples(t *testing.T) {
	in := Generate(testSF, 1)
	injected, err := Inject(in, InjectOptions{Percent: 25, MinGroup: 2, MaxGroup: 7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, f := range injected.Facts() {
		positions := make([]int, len(f.Tuple))
		for i := range positions {
			positions[i] = i
		}
		k := f.Rel + "|" + f.Tuple.Key(positions)
		if seen[k] {
			t.Fatalf("duplicate tuple in %s: %v", f.Rel, f.Tuple)
		}
		seen[k] = true
	}
}

func TestInjectZeroPercentIsCopy(t *testing.T) {
	in := Generate(testSF, 1)
	injected, err := Inject(in, InjectOptions{Percent: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if injected.NumFacts() != in.NumFacts() {
		t.Error("zero-percent injection changed the data")
	}
}

func TestAllQueriesTranslate(t *testing.T) {
	for _, q := range append(ScalarQueries(), GroupedQueries()...) {
		tr, err := q.Translate()
		if err != nil {
			t.Errorf("%s: %v", q.Name, err)
			continue
		}
		if len(tr.Aggs) == 0 {
			t.Errorf("%s: no aggregates", q.Name)
		}
		if q.Grouped && len(tr.GroupCols) == 0 {
			t.Errorf("%s: expected grouping", q.Name)
		}
	}
}

func TestQueriesReturnRows(t *testing.T) {
	in := Generate(0.002, 11) // ~12k lineitems so selective queries still match
	e := cq.NewEvaluator(in)
	for _, q := range append(ScalarQueries(), GroupedQueries()...) {
		tr, err := q.Translate()
		if err != nil {
			t.Fatal(err)
		}
		res, err := cq.EvalAgg(e, tr.Aggs[0].Query)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if len(res) == 0 {
			t.Errorf("%s: zero groups", q.Name)
			continue
		}
		// Scalar results may legitimately be zero-valued only for very
		// selective queries; all our settings should produce data.
		if !q.Grouped && res[0].Value.Kind() == db.KindInt && res[0].Value.AsInt() == 0 {
			t.Errorf("%s: zero result; check selectivity constants", q.Name)
		}
	}
}

func TestQueryLookup(t *testing.T) {
	if _, err := QueryByName("Q6'"); err != nil {
		t.Error(err)
	}
	if _, err := QueryByName("Q99"); err == nil {
		t.Error("unknown query accepted")
	}
	if len(QueryNames()) != 15 {
		t.Errorf("QueryNames = %d entries", len(QueryNames()))
	}
}
