package tpch

import (
	"fmt"

	"aggcavsat/internal/db"
	"aggcavsat/internal/xrand"
)

// Cardinalities at scale factor 1, per the TPC-H specification.
const (
	baseSupplier = 10_000
	baseCustomer = 150_000
	basePart     = 200_000
	basePartSupp = 800_000
	baseOrders   = 1_500_000
	baseLineitem = 6_000_000 // ~4 lines per order on average
)

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	// nationRegion maps each nation to its region, as in DBGen.
	nationRegion = []int{
		0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
	}
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes   = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	types1      = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	types2      = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	types3      = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	brands      = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#23", "Brand#34", "Brand#45", "Brand#55"}
)

// Sizes reports the per-relation base (repair) cardinalities at the
// given scale factor.
type Sizes struct {
	Supplier, Customer, Part, PartSupp, Orders, Lineitem int
}

// SizesAt computes the scaled cardinalities (minimum 1 where the base is
// non-zero).
func SizesAt(sf float64) Sizes {
	n := func(base int) int {
		v := int(float64(base) * sf)
		if v < 1 {
			v = 1
		}
		return v
	}
	return Sizes{
		Supplier: n(baseSupplier),
		Customer: n(baseCustomer),
		Part:     n(basePart),
		PartSupp: n(basePartSupp),
		Orders:   n(baseOrders),
		Lineitem: n(baseLineitem),
	}
}

// Generate produces a consistent TPC-H instance at the scale factor,
// deterministically from the seed. Monetary values are integer cents;
// dates are ISO strings between 1992-01-01 and 1998-12-31.
func Generate(sf float64, seed uint64) *db.Instance {
	return GenerateLayout(sf, seed, db.LayoutColumnar)
}

// GenerateLayout is Generate with an explicit physical layout — the
// same facts with the same IDs either way (the pr9 benchmark compares
// the layouts on bit-identical data).
func GenerateLayout(sf float64, seed uint64, layout db.Layout) *db.Instance {
	r := xrand.New(seed)
	sz := SizesAt(sf)
	in := db.NewInstanceLayout(Schema(), layout)

	for i, name := range regionNames {
		in.MustInsert("region", db.Int(int64(i)), db.Str(name))
	}
	for i, name := range nationNames {
		in.MustInsert("nation", db.Int(int64(i)), db.Str(name), db.Int(int64(nationRegion[i])))
	}
	for i := 0; i < sz.Supplier; i++ {
		in.MustInsert("supplier",
			db.Int(int64(i)),
			db.Str(fmt.Sprintf("Supplier#%09d", i)),
			db.Int(int64(r.Intn(len(nationNames)))),
			db.Int(int64(r.Range(-99999, 999999))),
		)
	}
	for i := 0; i < sz.Customer; i++ {
		in.MustInsert("customer",
			db.Int(int64(i)),
			db.Str(fmt.Sprintf("Customer#%09d", i)),
			db.Int(int64(r.Intn(len(nationNames)))),
			db.Str(xrand.Pick(r, segments)),
			db.Int(int64(r.Range(-99999, 999999))),
		)
	}
	for i := 0; i < sz.Part; i++ {
		in.MustInsert("part",
			db.Int(int64(i)),
			db.Str(fmt.Sprintf("part %d", i)),
			db.Str(xrand.Pick(r, types1)+" "+xrand.Pick(r, types2)+" "+xrand.Pick(r, types3)),
			db.Int(int64(r.Range(1, 50))),
			db.Str(xrand.Pick(r, brands)),
			db.Str(xrand.Pick(r, containers1)+" "+xrand.Pick(r, containers2)),
			db.Int(int64(r.Range(90000, 200000))),
		)
	}
	for i := 0; i < sz.PartSupp; i++ {
		// Four suppliers per part, following DBGen's layout.
		pk := i % sz.Part
		sk := (i*7 + i/sz.Part) % sz.Supplier
		in.MustInsert("partsupp",
			db.Int(int64(pk)),
			db.Int(int64(sk)),
			db.Int(int64(r.Range(1, 9999))),
			db.Int(int64(r.Range(100, 100000))),
		)
	}
	for i := 0; i < sz.Orders; i++ {
		in.MustInsert("orders",
			db.Int(int64(i)),
			db.Int(int64(r.Intn(sz.Customer))),
			db.Str(xrand.Pick(r, []string{"O", "F", "P"})),
			db.Int(int64(r.Range(100000, 50000000))),
			db.Str(randDate(r)),
			db.Str(xrand.Pick(r, priorities)),
			db.Int(0),
		)
	}
	line := 0
	order := 0
	perOrder := make([]int, sz.Orders) // running line numbers keep keys unique
	for line < sz.Lineitem {
		// 1..7 lines per order, cycling through the orders.
		ok := order % sz.Orders
		nLines := r.Range(1, 7)
		for l := 1; l <= nLines && line < sz.Lineitem; l++ {
			perOrder[ok]++
			ship := randDate(r)
			in.MustInsert("lineitem",
				db.Int(int64(ok)),
				db.Int(int64(perOrder[ok])),
				db.Int(int64(r.Intn(sz.Part))),
				db.Int(int64(r.Intn(sz.Supplier))),
				db.Int(int64(r.Range(1, 50))),
				db.Int(int64(r.Range(100000, 9000000))),
				db.Int(int64(r.Range(0, 10))),
				db.Int(int64(r.Range(0, 8))),
				db.Str(xrand.Pick(r, []string{"A", "N", "R"})),
				db.Str(xrand.Pick(r, []string{"O", "F"})),
				db.Str(ship),
				db.Str(addDays(r, ship, 30)),
				db.Str(addDays(r, ship, 60)),
				db.Str(xrand.Pick(r, shipmodes)),
			)
			line++
		}
		order++
	}
	return in
}

// randDate produces an ISO date in [1992-01-01, 1998-12-31]. A flat
// 28-day month keeps the arithmetic trivial while preserving ordering.
func randDate(r *xrand.Rand) string {
	y := r.Range(1992, 1998)
	m := r.Range(1, 12)
	d := r.Range(1, 28)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// addDays returns a date between 1 and maxDelta days after the base,
// staying within the flat 28-day calendar.
func addDays(r *xrand.Rand, base string, maxDelta int) string {
	var y, m, d int
	fmt.Sscanf(base, "%d-%d-%d", &y, &m, &d)
	total := (y*12+m-1)*28 + d - 1 + r.Range(1, maxDelta)
	d = total%28 + 1
	mm := total / 28
	return fmt.Sprintf("%04d-%02d-%02d", mm/12, mm%12+1, d)
}

// DemoInstance builds the standard inconsistent DBGen instance used by
// the bench replay harness and the cavsatd -dbgen demo tenant: Generate
// at sf, then Inject with the Figure-1 group-size calibration ([2, 7])
// and the derived seed the bench Runner uses. Both sides share this
// constructor so a load replay against a server started with the same
// (sf, pct, seed) triple compares answers over the identical instance.
func DemoInstance(sf, pct float64, seed uint64) (*db.Instance, error) {
	return DemoInstanceLayout(sf, pct, seed, db.LayoutColumnar)
}

// DemoInstanceLayout is DemoInstance with an explicit physical layout;
// Inject preserves the base instance's layout, so fact IDs and contents
// are identical across layouts.
func DemoInstanceLayout(sf, pct float64, seed uint64, layout db.Layout) (*db.Instance, error) {
	base := GenerateLayout(sf, seed, layout)
	return Inject(base, InjectOptions{
		Percent:  pct,
		MinGroup: 2,
		MaxGroup: 7,
		Seed:     seed + 1,
	})
}
