// Package tpch is a scaled-down, deterministic re-implementation of the
// TPC-H DBGen workload used in the paper's synthetic experiments: the
// eight-relation schema with one key per relation, a data generator with
// referential structure, a key-violation injector matching the paper's
// methodology (group sizes uniform in [2,7], exact repair sizes, 5–35 %
// inconsistency), and the nine evaluation queries with their scalar
// (GROUP-BY-free) variants.
//
// Substitutions versus the original DBGen (documented in DESIGN.md):
// monetary values are integer cents (the SUM reductions need integral
// weights), dates are ISO-8601 strings (ordered lexicographically), and
// text payload columns are short synthetic strings.
package tpch

import "aggcavsat/internal/db"

// Schema returns the TPC-H schema with one key constraint per relation.
func Schema() *db.Schema {
	s := db.NewSchema()
	str := func(n string) db.Attribute { return db.Attribute{Name: n, Kind: db.KindString} }
	num := func(n string) db.Attribute { return db.Attribute{Name: n, Kind: db.KindInt} }

	s.MustAddRelation(&db.RelationSchema{
		Name:  "region",
		Attrs: []db.Attribute{num("r_regionkey"), str("r_name")},
		Key:   []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name:  "nation",
		Attrs: []db.Attribute{num("n_nationkey"), str("n_name"), num("n_regionkey")},
		Key:   []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "supplier",
		Attrs: []db.Attribute{
			num("s_suppkey"), str("s_name"), num("s_nationkey"), num("s_acctbal"),
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "customer",
		Attrs: []db.Attribute{
			num("c_custkey"), str("c_name"), num("c_nationkey"),
			str("c_mktsegment"), num("c_acctbal"),
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "part",
		Attrs: []db.Attribute{
			num("p_partkey"), str("p_name"), str("p_type"), num("p_size"),
			str("p_brand"), str("p_container"), num("p_retailprice"),
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "partsupp",
		Attrs: []db.Attribute{
			num("ps_partkey"), num("ps_suppkey"), num("ps_availqty"), num("ps_supplycost"),
		},
		Key: []int{0, 1},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "orders",
		Attrs: []db.Attribute{
			num("o_orderkey"), num("o_custkey"), str("o_orderstatus"),
			num("o_totalprice"), str("o_orderdate"), str("o_orderpriority"),
			num("o_shippriority"),
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "lineitem",
		Attrs: []db.Attribute{
			num("l_orderkey"), num("l_linenumber"), num("l_partkey"), num("l_suppkey"),
			num("l_quantity"), num("l_extendedprice"), num("l_discount"), num("l_tax"),
			str("l_returnflag"), str("l_linestatus"), str("l_shipdate"),
			str("l_commitdate"), str("l_receiptdate"), str("l_shipmode"),
		},
		Key: []int{0, 1},
	})
	return s
}
