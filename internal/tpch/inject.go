package tpch

import (
	"fmt"
	"strings"

	"aggcavsat/internal/db"
	"aggcavsat/internal/xrand"
)

// InjectOptions controls key-violation injection.
type InjectOptions struct {
	// Percent of facts that should participate in key violations
	// (0–100), computed over the final (injected) relation size — the
	// paper's "degree of inconsistency".
	Percent float64
	// Group sizes are drawn uniformly from [MinGroup, MaxGroup]
	// (the paper uses [2, 7] for the DBGen experiments).
	MinGroup, MaxGroup int
	Seed               uint64
	// Relations restricts injection; nil means every keyed relation.
	Relations []string
	// PerRelation overrides Percent for specific relations (lower-case
	// names); used by the PDBench profiles.
	PerRelation map[string]float64
}

// Inject returns a new instance containing every fact of in plus
// injected key-violating duplicates: each corrupted key-equal group has
// one original "victim" fact and size−1 duplicates that copy the
// victim's key attributes and take their non-key attributes from other
// existing tuples of the same relation (the paper's methodology).
// Every repair of the result restricted to a relation has exactly the
// original relation's size.
func Inject(in *db.Instance, opts InjectOptions) (*db.Instance, error) {
	if opts.MinGroup < 2 {
		opts.MinGroup = 2
	}
	if opts.MaxGroup < opts.MinGroup {
		opts.MaxGroup = opts.MinGroup
	}
	r := xrand.New(opts.Seed)

	// Copy fact by fact (never materializing the whole instance at
	// once), preserving the input's physical layout and fact IDs.
	out := db.NewInstanceLayout(in.Schema(), in.Layout())
	nIn := in.NumFacts()
	for id := db.FactID(0); int(id) < nIn; id++ {
		rs := in.Schema().RelationByID(in.RelOf(id))
		if _, err := out.Insert(rs.Name, in.TupleAt(id)); err != nil {
			return nil, err
		}
	}

	want := map[string]float64{}
	if opts.Relations == nil {
		for _, rs := range in.Schema().Relations() {
			if rs.HasKey() {
				want[strings.ToLower(rs.Name)] = opts.Percent
			}
		}
	} else {
		for _, name := range opts.Relations {
			want[strings.ToLower(name)] = opts.Percent
		}
	}
	for rel, p := range opts.PerRelation {
		want[strings.ToLower(rel)] = p
	}

	for _, rs := range in.Schema().Relations() {
		rel := strings.ToLower(rs.Name)
		pct, ok := want[rel]
		if !ok || pct <= 0 {
			continue
		}
		if !rs.HasKey() || len(rs.Key) == rs.Arity() {
			continue // cannot duplicate keys distinctly
		}
		base := in.RelFacts(rel)
		if len(base) < 2 {
			continue
		}
		nonKey := nonKeyPositions(rs)

		victimUsed := make([]bool, len(base))
		violating := 0
		total := len(base)
		// Keep corrupting fresh victims until the target fraction holds.
		for float64(violating) < pct/100*float64(total) {
			// The smallest possible group adds two violating facts; if
			// even that overshoots the target (tiny relations at small
			// scale factors), stay consistent rather than way over.
			need := int(pct/100*float64(total)) - violating + 1
			if need < 2 {
				break
			}
			vi := r.Intn(len(base))
			tries := 0
			for victimUsed[vi] && tries < 4*len(base) {
				vi = r.Intn(len(base))
				tries++
			}
			if victimUsed[vi] {
				break // no fresh victims left
			}
			victimUsed[vi] = true
			victim := in.TupleAt(base[vi])
			size := r.Range(opts.MinGroup, opts.MaxGroup)
			// Cap the group so small relations do not overshoot their
			// target percentage (Table II's 7.69 % nation row is a
			// single corrupted pair).
			if size > need {
				size = need
			}
			added := 0
			seen := map[string]bool{victim.Key(nonKey): true}
			for added < size-1 {
				dup := victim.Clone()
				donor := in.TupleAt(base[r.Intn(len(base))])
				for _, p := range nonKey {
					dup[p] = donor[p]
				}
				k := dup.Key(nonKey)
				if seen[k] {
					// Identical to an existing group member: perturb one
					// non-key attribute deterministically.
					p := nonKey[r.Intn(len(nonKey))]
					dup[p] = perturb(r, dup[p], added)
					k = dup.Key(nonKey)
					if seen[k] {
						continue
					}
				}
				seen[k] = true
				if _, err := out.Insert(rel, dup); err != nil {
					return nil, fmt.Errorf("tpch: inject into %s: %w", rs.Name, err)
				}
				added++
				total++
				violating++
			}
			if added > 0 {
				violating++ // the victim itself now violates
			}
		}
	}
	return out, nil
}

func nonKeyPositions(rs *db.RelationSchema) []int {
	isKey := make([]bool, rs.Arity())
	for _, k := range rs.Key {
		isKey[k] = true
	}
	var out []int
	for i := range rs.Attrs {
		if !isKey[i] {
			out = append(out, i)
		}
	}
	return out
}

// perturb derives a distinct value of the same kind.
func perturb(r *xrand.Rand, v db.Value, salt int) db.Value {
	switch v.Kind() {
	case db.KindInt:
		return db.Int(v.AsInt() + int64(1+r.Intn(97)) + int64(salt))
	case db.KindFloat:
		return db.Float(v.AsFloat() + 0.5 + float64(salt))
	case db.KindString:
		return db.Str(v.AsString() + fmt.Sprintf("~%d", salt+r.Intn(97)))
	default:
		return db.Int(int64(salt + 1))
	}
}
