package tpch

import (
	"fmt"
	"sort"

	"aggcavsat/internal/sqlparse"
)

// Query is one evaluation-workload query: its paper name, SQL text, and
// whether the paper's ConQuer baseline supports it (Q5 is outside
// C_aggforest; Q19 is a union of conjunctive queries).
type Query struct {
	Name    string
	SQL     string
	Grouped bool
}

// The paper's nine TPC-H queries (1, 3, 4, 5, 6, 10, 12, 14, 19),
// adapted to the supported SQL subset (single aggregate per statement;
// no arithmetic inside SUM — see DESIGN.md for the substitutions).
// Dates follow the flat calendar of the generator, so the constants
// select comparable fractions of the data.
var grouped = []Query{
	{
		Name: "Q1",
		SQL: `SELECT l_returnflag, l_linestatus, SUM(l_quantity)
		      FROM lineitem
		      WHERE l_shipdate <= '1998-09-02'
		      GROUP BY l_returnflag, l_linestatus
		      ORDER BY l_returnflag, l_linestatus`,
		Grouped: true,
	},
	{
		Name: "Q3",
		SQL: `SELECT TOP 10 l_orderkey, SUM(l_extendedprice)
		      FROM customer, orders, lineitem
		      WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
		        AND l_orderkey = o_orderkey
		        AND o_orderdate < '1995-03-15' AND l_shipdate > '1995-03-15'
		      GROUP BY l_orderkey ORDER BY l_orderkey`,
		Grouped: true,
	},
	{
		Name: "Q4",
		SQL: `SELECT o_orderpriority, COUNT(*)
		      FROM orders, lineitem
		      WHERE o_orderdate >= '1996-07-01' AND o_orderdate < '1997-10-01'
		        AND l_orderkey = o_orderkey AND l_commitdate < l_receiptdate
		      GROUP BY o_orderpriority ORDER BY o_orderpriority`,
		Grouped: true,
	},
	{
		Name: "Q5",
		SQL: `SELECT n_name, SUM(l_extendedprice)
		      FROM customer, orders, lineitem, supplier, nation, region
		      WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		        AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
		        AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		        AND r_name = 'ASIA'
		        AND o_orderdate >= '1994-01-01' AND o_orderdate < '1995-01-01'
		      GROUP BY n_name ORDER BY n_name`,
		Grouped: true,
	},
	{
		Name: "Q10",
		SQL: `SELECT TOP 20 c_custkey, SUM(l_extendedprice)
		      FROM customer, orders, lineitem, nation
		      WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		        AND c_nationkey = n_nationkey
		        AND o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01'
		        AND l_returnflag = 'R'
		      GROUP BY c_custkey ORDER BY c_custkey`,
		Grouped: true,
	},
	{
		Name: "Q12",
		SQL: `SELECT l_shipmode, COUNT(*)
		      FROM orders, lineitem
		      WHERE o_orderkey = l_orderkey
		        AND l_shipdate < l_commitdate AND l_commitdate < l_receiptdate
		        AND l_receiptdate >= '1994-01-01' AND l_receiptdate < '1995-01-01'
		      GROUP BY l_shipmode ORDER BY l_shipmode`,
		Grouped: true,
	},
}

// scalar are the GROUP-BY-free variants Q′ of Section VI-A2: the
// grouping construct is removed and conditions on the original grouping
// attributes added to the WHERE clause; Q6, Q14 and Q19 have no grouping
// in the first place.
var scalar = []Query{
	{
		Name: "Q1'",
		SQL: `SELECT SUM(l_quantity) FROM lineitem
		      WHERE l_shipdate <= '1998-09-02'
		        AND l_returnflag = 'A' AND l_linestatus = 'F'`,
	},
	{
		Name: "Q3'",
		SQL: `SELECT SUM(l_extendedprice)
		      FROM customer, orders, lineitem
		      WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
		        AND l_orderkey = o_orderkey
		        AND o_orderdate < '1995-03-15' AND l_shipdate > '1995-03-15'`,
	},
	{
		Name: "Q4'",
		SQL: `SELECT COUNT(*) FROM orders, lineitem
		      WHERE o_orderdate >= '1996-07-01' AND o_orderdate < '1997-10-01'
		        AND l_orderkey = o_orderkey AND l_commitdate < l_receiptdate
		        AND o_orderpriority = '1-URGENT'`,
	},
	{
		Name: "Q5'",
		SQL: `SELECT SUM(l_extendedprice)
		      FROM customer, orders, lineitem, supplier, nation, region
		      WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		        AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
		        AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		        AND r_name = 'ASIA'
		        AND o_orderdate >= '1994-01-01' AND o_orderdate < '1995-01-01'`,
	},
	{
		Name: "Q6'",
		SQL: `SELECT SUM(l_extendedprice) FROM lineitem
		      WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
		        AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24`,
	},
	{
		Name: "Q10'",
		SQL: `SELECT SUM(l_extendedprice)
		      FROM customer, orders, lineitem, nation
		      WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		        AND c_nationkey = n_nationkey
		        AND o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01'
		        AND l_returnflag = 'R'`,
	},
	{
		Name: "Q12'",
		SQL: `SELECT COUNT(*) FROM orders, lineitem
		      WHERE o_orderkey = l_orderkey
		        AND l_shipdate < l_commitdate AND l_commitdate < l_receiptdate
		        AND l_receiptdate >= '1994-01-01' AND l_receiptdate < '1995-01-01'
		        AND l_shipmode = 'MAIL'`,
	},
	{
		Name: "Q14'",
		SQL: `SELECT SUM(l_extendedprice) FROM lineitem, part
		      WHERE l_partkey = p_partkey AND p_type LIKE 'PROMO%'
		        AND l_shipdate >= '1995-09-01' AND l_shipdate < '1995-10-01'`,
	},
	{
		Name: "Q19'",
		SQL: `SELECT SUM(l_extendedprice) FROM lineitem, part
		      WHERE l_partkey = p_partkey AND (
		            (p_brand = 'Brand#12' AND p_container = 'SM CASE' AND l_quantity BETWEEN 1 AND 11)
		         OR (p_brand = 'Brand#23' AND p_container = 'MED BAG' AND l_quantity BETWEEN 10 AND 20)
		         OR (p_brand = 'Brand#34' AND p_container = 'LG CASE' AND l_quantity BETWEEN 20 AND 30))`,
	},
}

// ScalarQueries returns the Q′ workload (Figures 1–4).
func ScalarQueries() []Query { return append([]Query(nil), scalar...) }

// GroupedQueries returns the grouped workload (Figures 5–8).
func GroupedQueries() []Query { return append([]Query(nil), grouped...) }

// QueryByName finds a query in either workload.
func QueryByName(name string) (Query, error) {
	for _, q := range scalar {
		if q.Name == name {
			return q, nil
		}
	}
	for _, q := range grouped {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("tpch: unknown query %q", name)
}

// QueryNames lists all workload query names, scalar first.
func QueryNames() []string {
	var names []string
	for _, q := range scalar {
		names = append(names, q.Name)
	}
	for _, q := range grouped {
		names = append(names, q.Name)
	}
	sort.Strings(names)
	return names
}

// Translate parses and translates the query against the TPC-H schema.
func (q Query) Translate() (*sqlparse.Translation, error) {
	return sqlparse.ParseAndTranslate(q.SQL, Schema())
}
