package constraints

import (
	"strings"
	"testing"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

func twoColSchema() *db.Schema {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindString},
			{Name: "a", Kind: db.KindInt},
			{Name: "b", Kind: db.KindString},
		},
		Key: []int{0},
	})
	return s
}

func TestFDConstruction(t *testing.T) {
	s := twoColSchema()
	dcs, err := FD(s.Relation("R"), []string{"k"}, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(dcs) != 2 {
		t.Fatalf("got %d DCs, want 2", len(dcs))
	}
	for _, dc := range dcs {
		if err := dc.Validate(s); err != nil {
			t.Errorf("%s invalid: %v", dc.Name, err)
		}
		if len(dc.Atoms) != 2 || len(dc.Conds) != 1 || dc.Conds[0].Op != cq.OpNE {
			t.Errorf("FD shape wrong: %s", dc)
		}
	}
}

func TestFDUnknownAttr(t *testing.T) {
	s := twoColSchema()
	if _, err := FD(s.Relation("R"), []string{"nope"}, "a"); err == nil {
		t.Error("unknown LHS accepted")
	}
	if _, err := FD(s.Relation("R"), []string{"k"}, "nope"); err == nil {
		t.Error("unknown RHS accepted")
	}
}

func TestKeyDCs(t *testing.T) {
	s := twoColSchema()
	dcs, err := KeyDCs(s.Relation("R"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dcs) != 2 { // k -> a and k -> b
		t.Fatalf("got %d key DCs, want 2", len(dcs))
	}
	// No-key relation: nil.
	s2 := db.NewSchema()
	s2.MustAddRelation(&db.RelationSchema{Name: "S", Attrs: []db.Attribute{{Name: "x", Kind: db.KindInt}}})
	dcs, err = KeyDCs(s2.Relation("S"))
	if err != nil || dcs != nil {
		t.Error("no-key relation should produce no DCs")
	}
	// All-attribute key: duplicates impossible (set semantics), nil.
	s3 := db.NewSchema()
	s3.MustAddRelation(&db.RelationSchema{
		Name:  "T",
		Attrs: []db.Attribute{{Name: "x", Kind: db.KindInt}},
		Key:   []int{0},
	})
	dcs, err = KeyDCs(s3.Relation("T"))
	if err != nil || dcs != nil {
		t.Error("all-attribute key should produce no DCs")
	}
}

func TestMinimalViolationsKeys(t *testing.T) {
	s := twoColSchema()
	in := db.NewInstance(s)
	in.MustInsert("R", db.Str("k1"), db.Int(1), db.Str("x")) // 0
	in.MustInsert("R", db.Str("k1"), db.Int(2), db.Str("x")) // 1: violates k->a with 0
	in.MustInsert("R", db.Str("k2"), db.Int(3), db.Str("y")) // 2: consistent
	in.MustInsert("R", db.Str("k1"), db.Int(1), db.Str("z")) // 3: violates k->b with 0, k->a&b with 1
	dcs, _ := SchemaKeyDCs(s)
	e := cq.NewEvaluator(in)
	vs := MinimalViolations(e, dcs)
	// Pairs: {0,1}, {0,3}, {1,3} — all size-2 minimal violations.
	if len(vs) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(vs), vs)
	}
	for _, v := range vs {
		if len(v) != 2 {
			t.Errorf("violation %v should be a pair", v)
		}
	}
}

func TestMinimalViolationsSingleton(t *testing.T) {
	// DC: ∀t ¬(R(t) ∧ t.b = '') — the Medigap-style single-tuple DC.
	s := twoColSchema()
	in := db.NewInstance(s)
	in.MustInsert("R", db.Str("k1"), db.Int(1), db.Str(""))  // violates
	in.MustInsert("R", db.Str("k2"), db.Int(2), db.Str("w")) // fine
	dc := DC{
		Name:  "nonempty-b",
		Atoms: []cq.Atom{{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("a"), cq.V("b")}}},
		Conds: []cq.Condition{{Left: cq.V("b"), Op: cq.OpEQ, Right: cq.C(db.Str(""))}},
	}
	if err := dc.Validate(s); err != nil {
		t.Fatal(err)
	}
	e := cq.NewEvaluator(in)
	vs := MinimalViolations(e, []DC{dc})
	if len(vs) != 1 || len(vs[0]) != 1 || vs[0][0] != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestMinimalityFilter(t *testing.T) {
	// Two DCs where one's violations subsume the other's: a singleton
	// violation {0} makes the pair {0,1} non-minimal.
	s := twoColSchema()
	in := db.NewInstance(s)
	in.MustInsert("R", db.Str("k1"), db.Int(1), db.Str("")) // 0
	in.MustInsert("R", db.Str("k1"), db.Int(2), db.Str("")) // 1
	singleton := DC{
		Name:  "no-empty-b",
		Atoms: []cq.Atom{{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("a"), cq.V("b")}}},
		Conds: []cq.Condition{{Left: cq.V("b"), Op: cq.OpEQ, Right: cq.C(db.Str(""))}},
	}
	keyDCs, _ := SchemaKeyDCs(s)
	e := cq.NewEvaluator(in)
	vs := MinimalViolations(e, append(keyDCs, singleton))
	// {0} and {1} are minimal; the key violation {0,1} is not.
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want the two singletons only", vs)
	}
	for _, v := range vs {
		if len(v) != 1 {
			t.Errorf("non-minimal violation %v survived", v)
		}
	}
}

func TestBuildNearViolations(t *testing.T) {
	vs := []Violation{{0, 1}, {0, 2}, {3}}
	idx := BuildNearViolations(vs, 5)
	if len(idx.ByFact[0]) != 2 {
		t.Errorf("fact 0 near-violations = %v", idx.ByFact[0])
	}
	if len(idx.ByFact[1]) != 1 || idx.ByFact[1][0][0] != 0 {
		t.Errorf("fact 1 near-violations = %v", idx.ByFact[1])
	}
	if !idx.SelfViolating[3] {
		t.Error("fact 3 should be self-violating")
	}
	if len(idx.ByFact[3]) != 0 {
		t.Error("self-violating fact should have no set near-violations")
	}
	if !idx.InViolation[0] || !idx.InViolation[3] || idx.InViolation[4] {
		t.Error("InViolation flags wrong")
	}
	if idx.Safe(0) || !idx.Safe(4) {
		t.Error("Safe() wrong")
	}
}

func TestCheckConsistent(t *testing.T) {
	s := twoColSchema()
	in := db.NewInstance(s)
	in.MustInsert("R", db.Str("k1"), db.Int(1), db.Str("x"))
	in.MustInsert("R", db.Str("k2"), db.Int(2), db.Str("y"))
	dcs, _ := SchemaKeyDCs(s)
	if !CheckConsistent(in, dcs) {
		t.Error("consistent instance misreported")
	}
	in.MustInsert("R", db.Str("k1"), db.Int(9), db.Str("x"))
	if CheckConsistent(in, dcs) {
		t.Error("inconsistent instance misreported")
	}
}

func TestDCValidateErrors(t *testing.T) {
	s := twoColSchema()
	if err := (DC{Name: "empty"}).Validate(s); err == nil {
		t.Error("atomless DC accepted")
	}
	bad := DC{
		Name:  "bad",
		Atoms: []cq.Atom{{Rel: "Missing", Args: []cq.Term{cq.V("x")}}},
	}
	if err := bad.Validate(s); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestDCString(t *testing.T) {
	s := twoColSchema()
	dcs, _ := KeyDCs(s.Relation("R"))
	if str := dcs[0].String(); !strings.Contains(str, "R(") || !strings.Contains(str, "<>") {
		t.Errorf("DC string = %q", str)
	}
}

func TestFDSelfPairExcluded(t *testing.T) {
	// A fact never violates an FD with itself (the ≠ condition fails).
	s := twoColSchema()
	in := db.NewInstance(s)
	in.MustInsert("R", db.Str("k1"), db.Int(1), db.Str("x"))
	dcs, _ := SchemaKeyDCs(s)
	e := cq.NewEvaluator(in)
	if vs := MinimalViolations(e, dcs); len(vs) != 0 {
		t.Errorf("self-pair produced violations: %v", vs)
	}
}
