// Package constraints models integrity constraints beyond single keys:
// denial constraints (DCs), functional dependencies (FDs, a special case
// of DCs), and the machinery of Section V of the paper — minimal
// violations and near-violations — that Reduction V.1 consumes.
package constraints

import (
	"fmt"
	"sort"
	"strings"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

// DC is a denial constraint ∀x ¬(atoms ∧ conds): the atoms and
// comparison conditions must never hold simultaneously. A database
// sub-instance instantiating the body is a violation.
type DC struct {
	Name  string
	Atoms []cq.Atom
	Conds []cq.Condition
}

// Body returns the DC body as a boolean conjunctive query (head empty).
func (d DC) Body() cq.CQ {
	return cq.CQ{Atoms: d.Atoms, Conds: d.Conds}
}

// Validate checks the DC body against the schema.
func (d DC) Validate(schema *db.Schema) error {
	if len(d.Atoms) == 0 {
		return fmt.Errorf("constraints: DC %s has no atoms", d.Name)
	}
	if err := d.Body().Validate(schema); err != nil {
		return fmt.Errorf("constraints: DC %s: %w", d.Name, err)
	}
	return nil
}

func (d DC) String() string {
	parts := make([]string, 0, len(d.Atoms)+len(d.Conds))
	for _, a := range d.Atoms {
		parts = append(parts, a.String())
	}
	for _, c := range d.Conds {
		parts = append(parts, c.String())
	}
	return fmt.Sprintf("¬(%s)", strings.Join(parts, " ∧ "))
}

// FD builds the denial constraints expressing the functional dependency
// lhs → rhs on the relation: two tuples agreeing on lhs must agree on
// rhs. One DC per right-hand-side attribute is produced.
func FD(rs *db.RelationSchema, lhs []string, rhs ...string) ([]DC, error) {
	lhsPos := make([]int, len(lhs))
	for i, name := range lhs {
		p := rs.AttrIndex(name)
		if p < 0 {
			return nil, fmt.Errorf("constraints: FD on %s: unknown attribute %s", rs.Name, name)
		}
		lhsPos[i] = p
	}
	var dcs []DC
	for _, name := range rhs {
		rp := rs.AttrIndex(name)
		if rp < 0 {
			return nil, fmt.Errorf("constraints: FD on %s: unknown attribute %s", rs.Name, name)
		}
		args1 := make([]cq.Term, rs.Arity())
		args2 := make([]cq.Term, rs.Arity())
		for i := range args1 {
			shared := false
			for _, lp := range lhsPos {
				if i == lp {
					shared = true
					break
				}
			}
			if shared {
				v := fmt.Sprintf("l%d", i)
				args1[i] = cq.V(v)
				args2[i] = cq.V(v)
			} else {
				args1[i] = cq.V(fmt.Sprintf("a%d", i))
				args2[i] = cq.V(fmt.Sprintf("b%d", i))
			}
		}
		dcs = append(dcs, DC{
			Name:  fmt.Sprintf("fd:%s:%s->%s", rs.Name, strings.Join(lhs, ","), name),
			Atoms: []cq.Atom{{Rel: rs.Name, Args: args1}, {Rel: rs.Name, Args: args2}},
			Conds: []cq.Condition{{
				Left:  cq.V(fmt.Sprintf("a%d", rp)),
				Op:    cq.OpNE,
				Right: cq.V(fmt.Sprintf("b%d", rp)),
			}},
		})
	}
	return dcs, nil
}

// KeyDCs builds the denial constraints equivalent to the relation's key
// constraint (the FD key → every non-key attribute). Relations without a
// key yield nil.
func KeyDCs(rs *db.RelationSchema) ([]DC, error) {
	if !rs.HasKey() {
		return nil, nil
	}
	keyNames := rs.KeyNames()
	var nonKey []string
	for i, a := range rs.Attrs {
		isKey := false
		for _, p := range rs.Key {
			if i == p {
				isKey = true
				break
			}
		}
		if !isKey {
			nonKey = append(nonKey, a.Name)
		}
	}
	if len(nonKey) == 0 {
		return nil, nil // all-attribute key: duplicates are set-identical
	}
	return FD(rs, keyNames, nonKey...)
}

// SchemaKeyDCs builds KeyDCs for every relation of the schema.
func SchemaKeyDCs(schema *db.Schema) ([]DC, error) {
	var out []DC
	for _, rs := range schema.Relations() {
		dcs, err := KeyDCs(rs)
		if err != nil {
			return nil, err
		}
		out = append(out, dcs...)
	}
	return out, nil
}

// Violation is a set of facts (sorted ascending) that jointly violate
// some denial constraint and is minimal with that property.
type Violation []db.FactID

// MinimalViolations computes the set 𝒱 of minimal violations of the DCs
// on the evaluator's instance: instantiate every DC body, collect the
// distinct fact sets, and discard any set containing a strictly smaller
// violating set. The result is deterministic (sorted by size, then
// lexicographically).
//
// Relations whose complete key-DC family is present in dcs skip the
// generic self-join and read their violating pairs off the instance's
// memoized KeyEqualGroups partition (see fastpath.go); the remaining
// DCs evaluate generically, and both streams merge through one
// dedup + minimality filter.
func MinimalViolations(e *cq.Evaluator, dcs []DC) []Violation {
	return minimalViolations(e, dcs, false)
}

// MinimalViolationsGeneric is MinimalViolations with the key fast path
// disabled: every DC body is instantiated by the evaluator. It is the
// semantic reference for the fast path (equivalence property tests) and
// the legacy-front-end benchmark baseline.
func MinimalViolationsGeneric(e *cq.Evaluator, dcs []DC) []Violation {
	return minimalViolations(e, dcs, true)
}

func minimalViolations(e *cq.Evaluator, dcs []DC, forceGeneric bool) []Violation {
	in := e.Instance()
	dedup := newVioDedup()
	gen := dcs
	if !forceGeneric {
		fastRels, generic := splitKeyDCs(in.Schema(), dcs)
		if len(fastRels) > 0 {
			keyGroupViolations(in, fastRels, dedup.add)
			gen = generic
		}
	}
	for _, dc := range gen {
		for _, r := range e.Eval(dc.Body()) {
			dedup.add(r.Facts)
		}
	}
	all := dedup.all
	sort.Slice(all, func(i, j int) bool {
		if len(all[i]) != len(all[j]) {
			return len(all[i]) < len(all[j])
		}
		return compareIDs(all[i], all[j]) < 0
	})
	// Keep only minimal sets. Candidates are sorted by size, so any
	// superset comes after its subsets.
	return minimalFilter(all)
}

// NearViolationIndex holds, for every fact f, the near-violations
// N^f = { V \ {f} : V ∈ 𝒱, f ∈ V } of Section V. A fact whose singleton
// set is itself a minimal violation is flagged SelfViolating: its only
// near-violation is the auxiliary fact f_true.
type NearViolationIndex struct {
	// ByFact[f] lists the near-violations of fact f (each sorted).
	ByFact [][]Violation
	// SelfViolating[f] reports that {f} is a minimal violation.
	SelfViolating []bool
	// InViolation[f] reports that f occurs in at least one minimal
	// violation (i.e. f is not "safe").
	InViolation []bool
}

// BuildNearViolations derives the near-violation index from the minimal
// violations over an instance with numFacts facts.
func BuildNearViolations(violations []Violation, numFacts int) *NearViolationIndex {
	idx := &NearViolationIndex{
		ByFact:        make([][]Violation, numFacts),
		SelfViolating: make([]bool, numFacts),
		InViolation:   make([]bool, numFacts),
	}
	for _, v := range violations {
		if len(v) == 1 {
			f := v[0]
			idx.SelfViolating[f] = true
			idx.InViolation[f] = true
			continue
		}
		for i, f := range v {
			rest := make(Violation, 0, len(v)-1)
			rest = append(rest, v[:i]...)
			rest = append(rest, v[i+1:]...)
			idx.ByFact[f] = append(idx.ByFact[f], rest)
			idx.InViolation[f] = true
		}
	}
	return idx
}

// Safe reports whether fact f participates in no minimal violation: it
// belongs to every repair.
func (idx *NearViolationIndex) Safe(f db.FactID) bool {
	return !idx.InViolation[f]
}

// CheckConsistent reports whether the instance satisfies all DCs (no
// violation at all).
func CheckConsistent(in *db.Instance, dcs []DC) bool {
	e := cq.NewEvaluator(in)
	for _, dc := range dcs {
		if len(e.Eval(dc.Body())) > 0 {
			return false
		}
	}
	return true
}

func compareIDs(a, b []db.FactID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

func isSubsetIDs(a, b []db.FactID) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
