package constraints

import (
	"fmt"
	"testing"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/xrand"
)

// randomConsInstance builds a two-relation instance with deliberate key
// collisions, exact duplicate rows (key-equal but violation-free), and
// INT values in a FLOAT column (kind-exact key grouping, Compare-based
// attribute comparison).
func randomConsInstance(rng *xrand.Rand, n int) *db.Instance {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindInt},
			{Name: "a", Kind: db.KindFloat},
			{Name: "b", Kind: db.KindString},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "S",
		Attrs: []db.Attribute{
			{Name: "k1", Kind: db.KindString},
			{Name: "k2", Kind: db.KindInt},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0, 1},
	})
	in := db.NewInstance(s)
	for i := 0; i < n; i++ {
		a := db.Value(db.Float(float64(rng.Intn(3))))
		if rng.Bool(0.3) {
			a = db.Int(int64(rng.Intn(3))) // Compare-equal to a Float twin
		}
		if rng.Bool(0.1) {
			a = db.Null()
		}
		in.MustInsert("R", db.Int(int64(rng.Intn(n/3+1))), a, db.Str(fmt.Sprintf("b%d", rng.Intn(2))))
		in.MustInsert("S",
			db.Str(fmt.Sprintf("s%d", rng.Intn(n/4+1))), db.Int(int64(rng.Intn(2))),
			db.Int(int64(rng.Intn(3))))
	}
	return in
}

func violationsEqual(a, b []Violation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if compareIDs(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// TestFastPathMatchesGeneric is the key equivalence property: with the
// complete key-DC family the fast path must reproduce the generic
// result exactly, across randomized instances.
func TestFastPathMatchesGeneric(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := xrand.New(uint64(trial)*48271 + 11)
		in := randomConsInstance(rng, 30+rng.Intn(60))
		dcs, err := SchemaKeyDCs(in.Schema())
		if err != nil {
			t.Fatal(err)
		}
		e := cq.NewEvaluator(in)
		fast := MinimalViolations(e, dcs)
		slow := MinimalViolationsGeneric(e, dcs)
		if !violationsEqual(fast, slow) {
			t.Fatalf("trial %d: fast path differs (%d vs %d)\nfast: %v\nslow: %v",
				trial, len(fast), len(slow), fast, slow)
		}
		// Independent minimality oracle: no violation contains another.
		for i := range fast {
			for j := range fast {
				if i != j && len(fast[i]) < len(fast[j]) && isSubsetIDs(fast[i], fast[j]) {
					t.Fatalf("trial %d: non-minimal violation %v ⊃ %v", trial, fast[j], fast[i])
				}
			}
		}
	}
}

// TestFastPathHybridDCSet mixes the key DCs with a singleton DC whose
// violations subsume key pairs: the merged minimality filter must agree
// with the generic path.
func TestFastPathHybridDCSet(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := xrand.New(uint64(trial)*69621 + 5)
		in := randomConsInstance(rng, 40)
		dcs, _ := SchemaKeyDCs(in.Schema())
		singleton := DC{
			Name:  "no-b0",
			Atoms: []cq.Atom{{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("a"), cq.V("b")}}},
			Conds: []cq.Condition{{Left: cq.V("b"), Op: cq.OpEQ, Right: cq.C(db.Str("b0"))}},
		}
		dcs = append(dcs, singleton)
		e := cq.NewEvaluator(in)
		fast := MinimalViolations(e, dcs)
		slow := MinimalViolationsGeneric(e, dcs)
		if !violationsEqual(fast, slow) {
			t.Fatalf("trial %d: hybrid fast path differs (%d vs %d)", trial, len(fast), len(slow))
		}
	}
}

// TestPartialKeyDCSetStaysGeneric drops one DC of a relation's key
// family: the split must send the rest to the generic path (the
// all-pairs shortcut would over-report), and results must match the
// generic reference.
func TestPartialKeyDCSetStaysGeneric(t *testing.T) {
	rng := xrand.New(17)
	in := randomConsInstance(rng, 50)
	rDCs, _ := KeyDCs(in.Schema().Relation("R")) // k -> a and k -> b
	if len(rDCs) != 2 {
		t.Fatalf("expected 2 key DCs for R, got %d", len(rDCs))
	}
	partial := rDCs[:1]
	fastRels, generic := splitKeyDCs(in.Schema(), partial)
	if len(fastRels) != 0 || len(generic) != 1 {
		t.Fatalf("partial key-DC set recognized as fast: fastRels=%v generic=%d", fastRels, len(generic))
	}
	e := cq.NewEvaluator(in)
	if !violationsEqual(MinimalViolations(e, partial), MinimalViolationsGeneric(e, partial)) {
		t.Fatal("partial key-DC set: results differ")
	}
	// The complete family is recognized.
	fastRels, generic = splitKeyDCs(in.Schema(), rDCs)
	if !fastRels["r"] || len(generic) != 0 {
		t.Fatalf("complete key-DC family not recognized: fastRels=%v generic=%d", fastRels, len(generic))
	}
}

// TestRenamedKeyDCStaysGeneric: a semantically equal body with renamed
// variables is not recognized (conservative match) but must still
// produce the same violations through the generic path.
func TestRenamedKeyDCStaysGeneric(t *testing.T) {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "T",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindInt},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	renamed := DC{
		Name: "hand-written",
		Atoms: []cq.Atom{
			{Rel: "T", Args: []cq.Term{cq.V("key"), cq.V("x")}},
			{Rel: "T", Args: []cq.Term{cq.V("key"), cq.V("y")}},
		},
		Conds: []cq.Condition{{Left: cq.V("x"), Op: cq.OpNE, Right: cq.V("y")}},
	}
	fastRels, generic := splitKeyDCs(s, []DC{renamed})
	if len(fastRels) != 0 || len(generic) != 1 {
		t.Fatalf("renamed DC misclassified: fastRels=%v", fastRels)
	}
	in := db.NewInstance(s)
	in.MustInsert("T", db.Int(1), db.Int(10))
	in.MustInsert("T", db.Int(1), db.Int(20))
	e := cq.NewEvaluator(in)
	vs := MinimalViolations(e, []DC{renamed})
	if len(vs) != 1 || len(vs[0]) != 2 {
		t.Fatalf("violations = %v", vs)
	}
}

// TestCachedConstraints checks the package-wide memo: same (instance,
// DC set) returns the identical slices; an insert or a different DC set
// recomputes.
func TestCachedConstraints(t *testing.T) {
	rng := xrand.New(23)
	in := randomConsInstance(rng, 40)
	dcs, _ := SchemaKeyDCs(in.Schema())
	e := cq.NewEvaluator(in)
	v1, n1 := CachedConstraints(e, dcs)
	v2, n2 := CachedConstraints(e, dcs)
	if len(v1) > 0 && (&v1[0] != &v2[0] || n1 != n2) {
		t.Error("cache miss on identical (instance, DC set)")
	}
	if !violationsEqual(v1, MinimalViolations(e, dcs)) {
		t.Error("cached violations differ from direct computation")
	}
	// A different DC set on the same instance is a different entry.
	sub := dcs[:1]
	v3, _ := CachedConstraints(e, sub)
	if violationsEqual(v1, v3) && len(v1) != len(v3) {
		t.Error("DC subset shares the full-set entry")
	}
	// Appending a fact changes the fact count and invalidates the key.
	in.MustInsert("R", db.Int(0), db.Float(99), db.Str("zzz"))
	e2 := cq.NewEvaluator(in)
	v4, n4 := CachedConstraints(e2, dcs)
	if n4 == nil || len(n4.InViolation) != in.NumFacts() {
		t.Error("post-insert entry not rebuilt for the new fact count")
	}
	if !violationsEqual(v4, MinimalViolations(e2, dcs)) {
		t.Error("post-insert cached violations wrong")
	}
}

func benchConsInstance() (*db.Instance, []DC) {
	rng := xrand.New(4242)
	in := randomConsInstance(rng, 3000)
	dcs, _ := SchemaKeyDCs(in.Schema())
	return in, dcs
}

func BenchmarkMinimalViolations(b *testing.B) {
	in, dcs := benchConsInstance()
	e := cq.NewEvaluator(in)
	MinimalViolations(e, dcs) // warm KeyEqualGroups memo + indexes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinimalViolations(e, dcs)
	}
}

func BenchmarkMinimalViolationsGeneric(b *testing.B) {
	in, dcs := benchConsInstance()
	e := cq.NewEvaluator(in)
	MinimalViolationsGeneric(e, dcs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinimalViolationsGeneric(e, dcs)
	}
}
