package pdbench

import (
	"testing"
)

func TestProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("profiles = %d", len(ps))
	}
	maxGroups := []int{8, 16, 16, 32}
	for i, p := range ps {
		if p.Instance != i+1 {
			t.Errorf("profile %d numbered %d", i, p.Instance)
		}
		if p.MaxGroup != maxGroups[i] {
			t.Errorf("instance %d max group %d, want %d", p.Instance, p.MaxGroup, maxGroups[i])
		}
		if p.PerRelation["region"] != 0 {
			t.Errorf("instance %d: region must stay consistent", p.Instance)
		}
		// Inconsistency grows monotonically across instances.
		if i > 0 && p.Overall <= ps[i-1].Overall {
			t.Error("overall inconsistency not increasing")
		}
	}
}

func TestGenerateMatchesProfile(t *testing.T) {
	in, p, err := Generate(0.001, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range in.KeyInconsistency() {
		want := p.PerRelation[lower(st.Rel)]
		if st.Facts < 200 {
			continue // tiny relations can only approximate
		}
		got := st.Percent()
		if got < want-3 || got > want+6 {
			t.Errorf("%s: %.2f%%, profile %.2f%%", st.Rel, got, want)
		}
		if st.LargestGroup > p.MaxGroup {
			t.Errorf("%s: group %d exceeds max %d", st.Rel, st.LargestGroup, p.MaxGroup)
		}
	}
	if o := MeasuredOverall(in); o < p.Overall-4 || o > p.Overall+6 {
		t.Errorf("overall = %.2f%%, profile %.2f%%", o, p.Overall)
	}
}

func TestGenerateRegionStaysConsistent(t *testing.T) {
	in, _, err := Generate(0.001, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range in.KeyInconsistency() {
		if st.Rel == "region" && st.ViolatingFacts != 0 {
			t.Error("region corrupted")
		}
	}
}

func TestGenerateBadInstance(t *testing.T) {
	if _, _, err := Generate(0.001, 0, 1); err == nil {
		t.Error("instance 0 accepted")
	}
	if _, _, err := Generate(0.001, 5, 1); err == nil {
		t.Error("instance 5 accepted")
	}
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
