// Package pdbench reproduces the four inconsistent TPC-H instances of
// the paper's Table II, originally generated with the PDBench tool of
// the MayBMS probabilistic database system. PDBench produces
// uncertainty as alternative tuples per key, which on the relational
// level is exactly key-violation injection with a per-relation
// inconsistency profile and larger key-equal groups (up to 8/16/16/32
// tuples for instances 1–4).
package pdbench

import (
	"fmt"

	"aggcavsat/internal/db"
	"aggcavsat/internal/tpch"
)

// Profile describes one Table II instance.
type Profile struct {
	Instance int
	// PerRelation maps relation name → percentage of tuples violating
	// the key constraint.
	PerRelation map[string]float64
	// MaxGroup is the size of the largest key-equal group.
	MaxGroup int
	// Overall is the paper-reported overall inconsistency (for the
	// Table II output; the generated value is re-measured).
	Overall float64
}

// Profiles returns the four Table II instance profiles.
func Profiles() []Profile {
	return []Profile{
		{
			Instance: 1,
			PerRelation: map[string]float64{
				"customer": 4.42, "lineitem": 6.36, "nation": 7.69,
				"orders": 3.51, "part": 4.93, "partsupp": 1.53,
				"region": 0, "supplier": 3.69,
			},
			MaxGroup: 8,
			Overall:  5.36,
		},
		{
			Instance: 2,
			PerRelation: map[string]float64{
				"customer": 8.5, "lineitem": 12.09, "nation": 0,
				"orders": 6.77, "part": 9.33, "partsupp": 2.96,
				"region": 0, "supplier": 7.44,
			},
			MaxGroup: 16,
			Overall:  10.25,
		},
		{
			Instance: 3,
			PerRelation: map[string]float64{
				"customer": 16.14, "lineitem": 22.53, "nation": 7.69,
				"orders": 12.87, "part": 17.66, "partsupp": 5.77,
				"region": 0, "supplier": 14.11,
			},
			MaxGroup: 16,
			Overall:  19.29,
		},
		{
			Instance: 4,
			PerRelation: map[string]float64{
				"customer": 29.49, "lineitem": 39.82, "nation": 7.69,
				"orders": 23.9, "part": 32.16, "partsupp": 11.13,
				"region": 0, "supplier": 26.51,
			},
			MaxGroup: 32,
			Overall:  34.72,
		},
	}
}

// Generate builds PDBench-profile instance n (1–4) at the given TPC-H
// scale factor, deterministically from the seed.
func Generate(sf float64, instance int, seed uint64) (*db.Instance, Profile, error) {
	profiles := Profiles()
	if instance < 1 || instance > len(profiles) {
		return nil, Profile{}, fmt.Errorf("pdbench: instance %d out of range 1..%d", instance, len(profiles))
	}
	p := profiles[instance-1]
	base := tpch.Generate(sf, seed)
	injected, err := tpch.Inject(base, tpch.InjectOptions{
		MinGroup:    2,
		MaxGroup:    p.MaxGroup,
		Seed:        seed*31 + uint64(instance),
		Relations:   []string{}, // only PerRelation entries
		PerRelation: p.PerRelation,
	})
	if err != nil {
		return nil, Profile{}, err
	}
	return injected, p, nil
}

// MeasuredOverall computes the overall inconsistency percentage of an
// instance (violating facts / total facts), as in Table II's last row.
func MeasuredOverall(in *db.Instance) float64 {
	var violating, total int
	for _, st := range in.KeyInconsistency() {
		violating += st.ViolatingFacts
		total += st.Facts
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(violating) / float64(total)
}
