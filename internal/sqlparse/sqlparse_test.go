package sqlparse

import (
	"strings"
	"testing"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

func bankSchema() *db.Schema {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "Cust",
		Attrs: []db.Attribute{
			{Name: "CID", Kind: db.KindString},
			{Name: "NAME", Kind: db.KindString},
			{Name: "CITY", Kind: db.KindString},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "Acc",
		Attrs: []db.Attribute{
			{Name: "ACCID", Kind: db.KindString},
			{Name: "TYPE", Kind: db.KindString},
			{Name: "CITY", Kind: db.KindString},
			{Name: "BAL", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "CustAcc",
		Attrs: []db.Attribute{
			{Name: "CID", Kind: db.KindString},
			{Name: "ACCID", Kind: db.KindString},
		},
		Key: []int{0, 1},
	})
	return s
}

func bankInstance() *db.Instance {
	in := db.NewInstance(bankSchema())
	in.MustInsert("Cust", db.Str("C1"), db.Str("John"), db.Str("LA"))
	in.MustInsert("Cust", db.Str("C2"), db.Str("Mary"), db.Str("LA"))
	in.MustInsert("Cust", db.Str("C2"), db.Str("Mary"), db.Str("SF"))
	in.MustInsert("Cust", db.Str("C3"), db.Str("Don"), db.Str("SF"))
	in.MustInsert("Cust", db.Str("C4"), db.Str("Jen"), db.Str("LA"))
	in.MustInsert("Acc", db.Str("A1"), db.Str("Check."), db.Str("LA"), db.Int(900))
	in.MustInsert("Acc", db.Str("A2"), db.Str("Check."), db.Str("LA"), db.Int(1000))
	in.MustInsert("Acc", db.Str("A3"), db.Str("Saving"), db.Str("SJ"), db.Int(1200))
	in.MustInsert("Acc", db.Str("A3"), db.Str("Saving"), db.Str("SF"), db.Int(-100))
	in.MustInsert("Acc", db.Str("A4"), db.Str("Saving"), db.Str("SJ"), db.Int(300))
	in.MustInsert("CustAcc", db.Str("C1"), db.Str("A1"))
	in.MustInsert("CustAcc", db.Str("C2"), db.Str("A2"))
	in.MustInsert("CustAcc", db.Str("C2"), db.Str("A3"))
	in.MustInsert("CustAcc", db.Str("C3"), db.Str("A4"))
	return in
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT x, 'it''s', 1.5 <= >= <> != ( ) *")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks[:len(toks)-1] {
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "x", ",", "it's", ",", "1.5", "<=", ">=", "<>", "!=", "(", ")", "*"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v", texts)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("a ; b"); err == nil {
		t.Error("unknown character accepted")
	}
}

func TestParseSimpleAggregate(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM Cust WHERE CITY = 'LA'")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Items) != 1 || !st.Items[0].IsAgg || !st.Items[0].Star {
		t.Errorf("items = %+v", st.Items)
	}
	if len(st.From) != 1 || st.From[0].Name != "Cust" {
		t.Errorf("from = %+v", st.From)
	}
	if st.Where == nil || st.Where.Pred == nil {
		t.Error("where missing")
	}
}

func TestParseFull(t *testing.T) {
	st, err := Parse(`SELECT TOP 10 c.CITY, SUM(a.BAL)
		FROM Cust c, Acc a, CustAcc ca
		WHERE c.CID = ca.CID AND ca.ACCID = a.ACCID AND a.BAL >= 100
		GROUP BY c.CITY
		ORDER BY c.CITY DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Top != 10 {
		t.Errorf("top = %d", st.Top)
	}
	if len(st.Items) != 2 || st.Items[0].IsAgg || !st.Items[1].IsAgg {
		t.Errorf("items = %+v", st.Items)
	}
	if st.Items[1].Op != cq.Sum {
		t.Errorf("op = %v", st.Items[1].Op)
	}
	if len(st.From) != 3 || st.From[0].Alias != "c" {
		t.Errorf("from = %+v", st.From)
	}
	if len(st.GroupBy) != 1 || st.GroupBy[0].Table != "c" {
		t.Errorf("group by = %+v", st.GroupBy)
	}
	if len(st.OrderBy) != 1 || !st.OrderBy[0].Desc {
		t.Errorf("order by = %+v", st.OrderBy)
	}
}

func TestParseDistinct(t *testing.T) {
	st, err := Parse("SELECT COUNT(DISTINCT TYPE) FROM Acc")
	if err != nil {
		t.Fatal(err)
	}
	if st.Items[0].Op != cq.CountDistinct || !st.Items[0].Distinct {
		t.Errorf("%+v", st.Items[0])
	}
	st, err = Parse("SELECT SUM(DISTINCT BAL) FROM Acc")
	if err != nil {
		t.Fatal(err)
	}
	if st.Items[0].Op != cq.SumDistinct {
		t.Errorf("%+v", st.Items[0])
	}
	if _, err := Parse("SELECT MIN(DISTINCT BAL) FROM Acc"); err == nil {
		t.Error("MIN(DISTINCT) accepted")
	}
}

func TestParseBetweenAndLike(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM Acc WHERE BAL BETWEEN 100 AND 900 AND TYPE LIKE 'Check%'")
	if err != nil {
		t.Fatal(err)
	}
	dnf := st.Where.dnf()
	if len(dnf) != 1 || len(dnf[0]) != 3 { // >=, <=, LIKE
		t.Fatalf("dnf = %+v", dnf)
	}
	st, err = Parse("SELECT COUNT(*) FROM Acc WHERE TYPE NOT LIKE 'Check%'")
	if err != nil {
		t.Fatal(err)
	}
	if st.Where.Pred.Op != cq.OpNotLikePrefix {
		t.Errorf("op = %v", st.Where.Pred.Op)
	}
	if _, err := Parse("SELECT COUNT(*) FROM Acc WHERE TYPE LIKE '%mid%'"); err == nil {
		t.Error("non-prefix LIKE accepted")
	}
}

func TestParseOrDNF(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM Acc WHERE (TYPE = 'Saving' OR TYPE = 'Check.') AND BAL > 0")
	if err != nil {
		t.Fatal(err)
	}
	dnf := st.Where.dnf()
	if len(dnf) != 2 {
		t.Fatalf("dnf size = %d, want 2", len(dnf))
	}
	for _, conj := range dnf {
		if len(conj) != 2 {
			t.Errorf("conjunct = %+v", conj)
		}
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM Acc WHERE BAL > -100")
	if err != nil {
		t.Fatal(err)
	}
	p := st.Where.Pred
	if p.Right.Lit.Int != -100 {
		t.Errorf("literal = %+v", p.Right.Lit)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM Acc",
		"SELECT FROM Acc",
		"SELECT COUNT(*)",
		"SELECT COUNT(*) FROM",
		"SELECT SUM(*) FROM Acc",
		"SELECT COUNT(*) FROM Acc WHERE",
		"SELECT COUNT(*) FROM Acc GROUP CITY",
		"SELECT COUNT(*) FROM Acc ORDER CITY",
		"SELECT COUNT(*) FROM Acc WHERE BAL ? 3",
		"SELECT TOP 0 COUNT(*) FROM Acc",
		"SELECT COUNT(*) FROM Acc trailing garbage = 1",
		"SELECT COUNT(*) FROM Acc WHERE BAL BETWEEN 1 OR 2",
		"SELECT COUNT(*) FROM Acc WHERE NOT BAL = 1",
		"SELECT COUNT(*) FROM Acc WHERE 'x' LIKE 'y%'",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

func TestTranslateScalarSum(t *testing.T) {
	in := bankInstance()
	tr, err := ParseAndTranslate(`SELECT SUM(Acc.BAL) FROM Acc, CustAcc
		WHERE Acc.ACCID = CustAcc.ACCID AND CustAcc.CID = 'C2'`, in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Aggs) != 1 {
		t.Fatalf("aggs = %d", len(tr.Aggs))
	}
	q := tr.Aggs[0].Query
	if q.Op != cq.Sum || !q.Scalar() {
		t.Errorf("query = %+v", q)
	}
	// Direct evaluation on the inconsistent instance: all rows.
	got, err := cq.EvalAgg(cq.NewEvaluator(in), q)
	if err != nil {
		t.Fatal(err)
	}
	// C2 owns A2 (1000) and A3 (1200 and -100 variants): 2100.
	if got[0].Value.AsInt() != 2100 {
		t.Errorf("SUM = %v, want 2100", got[0].Value)
	}
}

func TestTranslateJoinUnification(t *testing.T) {
	in := bankInstance()
	tr, err := ParseAndTranslate(`SELECT COUNT(*) FROM Cust, Acc, CustAcc
		WHERE Cust.CID = CustAcc.CID AND Acc.ACCID = CustAcc.ACCID
		AND Cust.CITY = Acc.CITY`, in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	q := tr.Aggs[0].Query
	// The three equalities must become shared variables, not conditions.
	d := q.Underlying.Disjuncts[0]
	if len(d.Conds) != 0 {
		t.Errorf("expected pure equijoin, got conditions %v", d.Conds)
	}
	got, err := cq.EvalAgg(cq.NewEvaluator(in), q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value.AsInt() != 3 { // Example IV.1's three witnesses
		t.Errorf("COUNT(*) = %v, want 3", got[0].Value)
	}
}

func TestTranslateConstantPushdown(t *testing.T) {
	in := bankInstance()
	tr, err := ParseAndTranslate(
		"SELECT COUNT(*) FROM Cust WHERE Cust.NAME = 'Mary'", in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	d := tr.Aggs[0].Query.Underlying.Disjuncts[0]
	if !d.Atoms[0].Args[1].IsConst {
		t.Error("constant not pushed into the atom")
	}
	got, _ := cq.EvalAgg(cq.NewEvaluator(in), tr.Aggs[0].Query)
	if got[0].Value.AsInt() != 2 {
		t.Errorf("COUNT = %v, want 2", got[0].Value)
	}
}

func TestTranslateGroupedQuery(t *testing.T) {
	in := bankInstance()
	tr, err := ParseAndTranslate(
		"SELECT CITY, COUNT(*) FROM Cust GROUP BY CITY ORDER BY CITY", in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	q := tr.Aggs[0].Query
	if q.Scalar() || len(q.GroupBy) != 1 {
		t.Fatalf("%+v", q)
	}
	got, _ := cq.EvalAgg(cq.NewEvaluator(in), q)
	if len(got) != 2 {
		t.Fatalf("groups = %v", got)
	}
	if got[0].Key[0].AsString() != "LA" || got[0].Value.AsInt() != 3 {
		t.Errorf("LA = %v", got[0])
	}
	if len(tr.OrderBy) != 1 || tr.OrderBy[0].GroupIndex != 0 || tr.OrderBy[0].Desc {
		t.Errorf("order by = %+v", tr.OrderBy)
	}
}

func TestTranslateGroupColumnConstantKeepsVariable(t *testing.T) {
	// Grouping column equated with a constant must stay a variable so
	// the head remains valid.
	in := bankInstance()
	tr, err := ParseAndTranslate(
		"SELECT CITY, COUNT(*) FROM Cust WHERE CITY = 'LA' GROUP BY CITY", in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	q := tr.Aggs[0].Query
	d := q.Underlying.Disjuncts[0]
	if d.Atoms[0].Args[2].IsConst {
		t.Error("output column substituted by constant")
	}
	if len(d.Conds) != 1 || d.Conds[0].Op != cq.OpEQ {
		t.Errorf("conds = %v", d.Conds)
	}
	got, _ := cq.EvalAgg(cq.NewEvaluator(in), q)
	if len(got) != 1 || got[0].Value.AsInt() != 3 {
		t.Errorf("result = %v", got)
	}
}

func TestTranslateMultipleAggregates(t *testing.T) {
	in := bankInstance()
	tr, err := ParseAndTranslate(
		"SELECT CITY, COUNT(*), SUM(BAL), MIN(BAL) FROM Acc GROUP BY CITY", in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Aggs) != 3 {
		t.Fatalf("aggs = %d, want 3", len(tr.Aggs))
	}
	ops := []cq.AggOp{cq.CountStar, cq.Sum, cq.Min}
	for i, a := range tr.Aggs {
		if a.Query.Op != ops[i] {
			t.Errorf("agg %d op = %v, want %v", i, a.Query.Op, ops[i])
		}
	}
}

func TestTranslateOrToUCQ(t *testing.T) {
	in := bankInstance()
	tr, err := ParseAndTranslate(
		"SELECT SUM(BAL) FROM Acc WHERE TYPE = 'Saving' OR CITY = 'LA'", in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	q := tr.Aggs[0].Query
	if len(q.Underlying.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d, want 2", len(q.Underlying.Disjuncts))
	}
	// Evaluation note: UCQ bag semantics double-count rows matched by
	// both disjuncts; the Saving/LA sets here are disjoint.
	got, _ := cq.EvalAgg(cq.NewEvaluator(in), q)
	if got[0].Value.AsInt() != 900+1000+1200-100+300 {
		t.Errorf("SUM = %v", got[0].Value)
	}
}

func TestTranslateContradiction(t *testing.T) {
	in := bankInstance()
	tr, err := ParseAndTranslate(
		"SELECT COUNT(*) FROM Acc WHERE TYPE = 'Saving' AND TYPE = 'Check.'", in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := cq.EvalAgg(cq.NewEvaluator(in), tr.Aggs[0].Query)
	if got[0].Value.AsInt() != 0 {
		t.Errorf("contradictory WHERE returned %v rows", got[0].Value)
	}
}

func TestTranslateErrors(t *testing.T) {
	schema := bankSchema()
	bad := []string{
		"SELECT COUNT(*) FROM Nope",
		"SELECT COUNT(*) FROM Acc a, Cust a",
		"SELECT NOPE, COUNT(*) FROM Acc GROUP BY NOPE",
		"SELECT CITY FROM Acc",                                // no aggregate
		"SELECT CITY, COUNT(*) FROM Acc",                      // CITY not grouped
		"SELECT COUNT(*) FROM Acc WHERE Cust.CID = 'x'",       // unknown alias
		"SELECT COUNT(*) FROM Acc, Cust WHERE CITY = 'LA'",    // ambiguous
		"SELECT COUNT(*) FROM Acc GROUP BY TYPE ORDER BY BAL", // order key not grouped
	}
	for _, src := range bad {
		if _, err := ParseAndTranslate(src, schema); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

func TestTranslateUnqualifiedJoinColumns(t *testing.T) {
	in := bankInstance()
	// NAME is unambiguous (only in Cust); BAL only in Acc.
	tr, err := ParseAndTranslate(`SELECT SUM(BAL) FROM Cust, Acc, CustAcc
		WHERE Cust.CID = CustAcc.CID AND CustAcc.ACCID = Acc.ACCID AND NAME = 'Mary'`,
		in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := cq.EvalAgg(cq.NewEvaluator(in), tr.Aggs[0].Query)
	// Mary twice × (1000 + 1200 + (-100)) = 4200.
	if got[0].Value.AsInt() != 4200 {
		t.Errorf("SUM = %v, want 4200", got[0].Value)
	}
}

func TestStatementString(t *testing.T) {
	st, _ := Parse("SELECT TOP 3 CITY, COUNT(*) FROM Acc a GROUP BY CITY")
	s := st.String()
	if !strings.Contains(s, "TOP 3") || !strings.Contains(s, "COUNT(*)") || !strings.Contains(s, "Acc a") {
		t.Errorf("String() = %q", s)
	}
}

func TestLikeConditionEvaluates(t *testing.T) {
	in := bankInstance()
	tr, err := ParseAndTranslate(
		"SELECT COUNT(*) FROM Acc WHERE TYPE LIKE 'Check%'", in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := cq.EvalAgg(cq.NewEvaluator(in), tr.Aggs[0].Query)
	if got[0].Value.AsInt() != 2 {
		t.Errorf("LIKE count = %v, want 2", got[0].Value)
	}
}
