package sqlparse

import (
	"fmt"
	"strings"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

// Translation is the result of translating a Statement against a schema:
// one cq.AggQuery per aggregate select item (they share grouping), plus
// the presentation metadata (TOP, ORDER BY) that range-consistent
// evaluation itself does not consume.
type Translation struct {
	Stmt *Statement
	// Aggs holds one entry per aggregate item in SELECT order.
	Aggs []AggTranslation
	// GroupCols are the resolved GROUP BY columns (presentation order of
	// the group key tuple).
	GroupCols []ColRef
	// OrderBy maps each ORDER BY key to an index into the group key
	// tuple, with its direction.
	OrderBy []ResolvedOrderKey
	Top     int
}

// AggTranslation pairs a SELECT aggregate with its compiled query.
type AggTranslation struct {
	Item  SelectItem
	Query cq.AggQuery
}

// ResolvedOrderKey is an ORDER BY key resolved to a group-key position.
type ResolvedOrderKey struct {
	GroupIndex int
	Desc       bool
}

// Translate compiles a parsed statement into aggregation queries over
// the schema. OR conditions are expanded into unions of conjunctive
// queries; column-equality predicates become shared variables (enabling
// hash joins); column-constant equalities become selections pushed into
// the atoms.
func Translate(st *Statement, schema *db.Schema) (*Translation, error) {
	tr := &translator{st: st, schema: schema}
	return tr.run()
}

// ParseAndTranslate is the one-call front door.
func ParseAndTranslate(input string, schema *db.Schema) (*Translation, error) {
	st, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return Translate(st, schema)
}

type colPos struct {
	atom int // index into Statement.From
	pos  int // attribute position
}

type translator struct {
	st     *Statement
	schema *db.Schema

	rels    []*db.RelationSchema // per FROM entry
	byAlias map[string]int
}

func (tr *translator) run() (*Translation, error) {
	st := tr.st
	if len(st.From) == 0 {
		return nil, fmt.Errorf("sqlparse: no tables in FROM")
	}
	tr.byAlias = make(map[string]int, len(st.From))
	for i, t := range st.From {
		rs := tr.schema.Relation(t.Name)
		if rs == nil {
			return nil, fmt.Errorf("sqlparse: unknown table %s", t.Name)
		}
		key := strings.ToLower(t.Alias)
		if _, dup := tr.byAlias[key]; dup {
			return nil, fmt.Errorf("sqlparse: duplicate table alias %s", t.Alias)
		}
		tr.byAlias[key] = i
		tr.rels = append(tr.rels, rs)
	}

	// Resolve output columns.
	var groupCols []colPos
	for _, c := range st.GroupBy {
		cp, err := tr.resolve(c)
		if err != nil {
			return nil, err
		}
		groupCols = append(groupCols, cp)
	}
	groupIndex := func(cp colPos) int {
		for i, g := range groupCols {
			if g == cp {
				return i
			}
		}
		return -1
	}

	var aggItems []SelectItem
	var aggCols []colPos // aggregation column per agg item (zero for *)
	hasAgg := false
	for _, item := range st.Items {
		if item.IsAgg {
			hasAgg = true
			it := item
			cp := colPos{-1, -1}
			if !item.Star {
				var err error
				cp, err = tr.resolve(item.Col)
				if err != nil {
					return nil, err
				}
			}
			aggItems = append(aggItems, it)
			aggCols = append(aggCols, cp)
			continue
		}
		cp, err := tr.resolve(item.Col)
		if err != nil {
			return nil, err
		}
		if groupIndex(cp) < 0 {
			return nil, fmt.Errorf("sqlparse: column %s must appear in GROUP BY", item.Col)
		}
	}
	if !hasAgg {
		return nil, fmt.Errorf("sqlparse: statement has no aggregate; only aggregation queries are supported")
	}

	// Mark output positions: they must stay variables (never substituted
	// by constants) so heads can reference them.
	output := map[colPos]bool{}
	for _, cp := range groupCols {
		output[cp] = true
	}
	for _, cp := range aggCols {
		if cp.atom >= 0 {
			output[cp] = true
		}
	}

	// Expand WHERE into DNF and compile one disjunct descriptor each.
	var disjuncts []*disjunct
	for _, conj := range st.Where.dnf() {
		d, err := tr.compileDisjunct(conj, output)
		if err != nil {
			return nil, err
		}
		disjuncts = append(disjuncts, d)
	}

	// Assemble per-aggregate queries.
	out := &Translation{Stmt: st, Top: st.Top, GroupCols: st.GroupBy}
	for ai, item := range aggItems {
		u := cq.UCQ{}
		for _, d := range disjuncts {
			head := make([]string, 0, len(groupCols)+1)
			for _, g := range groupCols {
				head = append(head, d.varName(g))
			}
			if aggCols[ai].atom >= 0 {
				head = append(head, d.varName(aggCols[ai]))
			}
			u.Disjuncts = append(u.Disjuncts, cq.CQ{
				Head:  head,
				Atoms: d.atoms,
				Conds: d.conds,
			})
		}
		groupNames := make([]string, len(groupCols))
		for i := range groupCols {
			groupNames[i] = fmt.Sprintf("g%d", i)
		}
		q := cq.AggQuery{
			Op:         item.Op,
			AggVar:     "aggv",
			GroupBy:    groupNames,
			Underlying: u,
		}
		if err := q.Validate(tr.schema); err != nil {
			return nil, fmt.Errorf("sqlparse: translated query invalid: %w", err)
		}
		out.Aggs = append(out.Aggs, AggTranslation{Item: item, Query: q})
	}

	// Resolve ORDER BY to group-key positions.
	for _, key := range st.OrderBy {
		cp, err := tr.resolve(key.Col)
		if err != nil {
			return nil, err
		}
		gi := groupIndex(cp)
		if gi < 0 {
			return nil, fmt.Errorf("sqlparse: ORDER BY column %s must be a grouping column", key.Col)
		}
		out.OrderBy = append(out.OrderBy, ResolvedOrderKey{GroupIndex: gi, Desc: key.Desc})
	}
	return out, nil
}

func (tr *translator) resolve(c ColRef) (colPos, error) {
	if c.Table != "" {
		ai, ok := tr.byAlias[strings.ToLower(c.Table)]
		if !ok {
			return colPos{}, fmt.Errorf("sqlparse: unknown table or alias %s", c.Table)
		}
		p := tr.rels[ai].AttrIndex(c.Column)
		if p < 0 {
			return colPos{}, fmt.Errorf("sqlparse: no column %s in %s", c.Column, tr.rels[ai].Name)
		}
		return colPos{atom: ai, pos: p}, nil
	}
	found := colPos{-1, -1}
	for ai, rs := range tr.rels {
		if p := rs.AttrIndex(c.Column); p >= 0 {
			if found.atom >= 0 {
				return colPos{}, fmt.Errorf("sqlparse: ambiguous column %s", c.Column)
			}
			found = colPos{atom: ai, pos: p}
		}
	}
	if found.atom < 0 {
		return colPos{}, fmt.Errorf("sqlparse: unknown column %s", c.Column)
	}
	return found, nil
}

// disjunct is one compiled conjunct of the DNF: atoms with unified
// variable names plus residual comparison conditions.
type disjunct struct {
	atoms []cq.Atom
	conds []cq.Condition
	names map[colPos]string
}

func (d *disjunct) varName(cp colPos) string { return d.names[cp] }

// compileDisjunct builds atoms for every FROM table, unifies variables
// across column-equality predicates (union-find), substitutes constants
// into non-output positions, and lowers the remaining predicates to
// conditions.
func (tr *translator) compileDisjunct(preds []Predicate, output map[colPos]bool) (*disjunct, error) {
	// Union-find over column positions.
	parent := map[colPos]colPos{}
	var find func(colPos) colPos
	find = func(x colPos) colPos {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b colPos) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// First pass: unify col = col, collect col = const.
	type constBinding struct {
		cp  colPos
		lit Literal
	}
	var constEqs []constBinding
	var residual []Predicate
	for _, p := range preds {
		if p.Op == cq.OpEQ && p.Left.IsCol && p.Right.IsCol {
			l, err := tr.resolve(p.Left.Col)
			if err != nil {
				return nil, err
			}
			r, err := tr.resolve(p.Right.Col)
			if err != nil {
				return nil, err
			}
			union(l, r)
			continue
		}
		if p.Op == cq.OpEQ && p.Left.IsCol != p.Right.IsCol {
			colOp, litOp := p.Left, p.Right
			if !colOp.IsCol {
				colOp, litOp = litOp, colOp
			}
			cp, err := tr.resolve(colOp.Col)
			if err != nil {
				return nil, err
			}
			constEqs = append(constEqs, constBinding{cp: cp, lit: litOp.Lit})
			continue
		}
		residual = append(residual, p)
	}

	// Assign variable names per class root and record class constants.
	classConst := map[colPos]*db.Value{}
	classOutput := map[colPos]bool{}
	for ai := range tr.rels {
		for p := range tr.rels[ai].Attrs {
			cp := colPos{ai, p}
			if output[cp] {
				classOutput[find(cp)] = true
			}
		}
	}
	contradictory := false
	for _, ce := range constEqs {
		root := find(ce.cp)
		v, err := tr.literalValue(ce.lit, ce.cp)
		if err != nil {
			return nil, err
		}
		if prev := classConst[root]; prev != nil {
			if !prev.Equal(v) {
				contradictory = true // e.g. a = 1 AND a = 2
			}
			continue
		}
		vv := v
		classConst[root] = &vv
	}

	d := &disjunct{names: map[colPos]string{}}
	for ai, rs := range tr.rels {
		args := make([]cq.Term, rs.Arity())
		for p := range rs.Attrs {
			cp := colPos{ai, p}
			root := find(cp)
			name := fmt.Sprintf("t%d_%d", root.atom, root.pos)
			d.names[cp] = name
			if c := classConst[root]; c != nil && !classOutput[root] {
				args[p] = cq.C(*c)
				continue
			}
			args[p] = cq.V(name)
		}
		d.atoms = append(d.atoms, cq.Atom{Rel: rs.Name, Args: args})
	}
	// Output classes with constants keep their variables; enforce the
	// equality as a condition instead.
	added := map[colPos]bool{}
	for root, c := range classConst {
		if classOutput[root] && !added[root] {
			added[root] = true
			d.conds = append(d.conds, cq.Condition{
				Left:  cq.V(d.names[root]),
				Op:    cq.OpEQ,
				Right: cq.C(*c),
			})
		}
	}
	if contradictory {
		// An unsatisfiable conjunct: keep the disjunct shape but make it
		// produce no rows.
		d.conds = append(d.conds, cq.Condition{
			Left:  cq.C(db.Int(0)),
			Op:    cq.OpEQ,
			Right: cq.C(db.Int(1)),
		})
	}

	// Lower residual predicates.
	for _, p := range residual {
		left, err := tr.lowerOperand(p.Left, d, find)
		if err != nil {
			return nil, err
		}
		right, err := tr.lowerOperand(p.Right, d, find)
		if err != nil {
			return nil, err
		}
		d.conds = append(d.conds, cq.Condition{Left: left, Op: p.Op, Right: right})
	}
	return d, nil
}

func (tr *translator) lowerOperand(o Operand, d *disjunct, find func(colPos) colPos) (cq.Term, error) {
	if o.IsCol {
		cp, err := tr.resolve(o.Col)
		if err != nil {
			return cq.Term{}, err
		}
		root := find(cp)
		// The position may hold a substituted constant; conditions must
		// then compare against that constant.
		arg := d.atoms[cp.atom].Args[cp.pos]
		if arg.IsConst {
			return arg, nil
		}
		return cq.V(d.names[root]), nil
	}
	v, err := tr.literalValue(o.Lit, colPos{-1, -1})
	if err != nil {
		return cq.Term{}, err
	}
	return cq.C(v), nil
}

// literalValue converts a parsed literal to a db.Value, coercing
// integers to floats when the referenced column is FLOAT.
func (tr *translator) literalValue(l Literal, cp colPos) (db.Value, error) {
	switch {
	case l.IsString:
		return db.Str(l.Str), nil
	case l.IsFloat:
		return db.Float(l.Float), nil
	default:
		if cp.atom >= 0 && tr.rels[cp.atom].Attrs[cp.pos].Kind == db.KindFloat {
			return db.Float(float64(l.Int)), nil
		}
		return db.Int(l.Int), nil
	}
}
