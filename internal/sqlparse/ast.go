package sqlparse

import (
	"fmt"
	"strings"

	"aggcavsat/internal/cq"
)

// ColRef is a possibly qualified column reference.
type ColRef struct {
	Table  string // alias or table name; empty if unqualified
	Column string
}

func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// SelectItem is one entry of the select list: either a plain column
// (which must be grouped) or an aggregate.
type SelectItem struct {
	// IsAgg distinguishes the two shapes.
	IsAgg    bool
	Col      ColRef // plain column, or the aggregate argument
	Op       cq.AggOp
	Star     bool // COUNT(*)
	Distinct bool
}

func (s SelectItem) String() string {
	if !s.IsAgg {
		return s.Col.String()
	}
	if s.Star {
		return "COUNT(*)"
	}
	name := map[cq.AggOp]string{
		cq.Count: "COUNT", cq.CountDistinct: "COUNT",
		cq.Sum: "SUM", cq.SumDistinct: "SUM",
		cq.Min: "MIN", cq.Max: "MAX", cq.Avg: "AVG",
	}[s.Op]
	if s.Distinct {
		return fmt.Sprintf("%s(DISTINCT %s)", name, s.Col)
	}
	return fmt.Sprintf("%s(%s)", name, s.Col)
}

// TableRef is one FROM entry.
type TableRef struct {
	Name  string
	Alias string // defaults to Name
}

// Predicate is one atomic comparison in the WHERE clause. Operands are
// either columns or literals.
type Predicate struct {
	Left  Operand
	Op    cq.CmpOp
	Right Operand
}

func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// Operand is a column reference or a literal.
type Operand struct {
	IsCol bool
	Col   ColRef
	Lit   Literal
}

func (o Operand) String() string {
	if o.IsCol {
		return o.Col.String()
	}
	return o.Lit.String()
}

// Literal is a parsed constant.
type Literal struct {
	IsString bool
	Str      string
	IsFloat  bool
	Float    float64
	Int      int64
}

func (l Literal) String() string {
	switch {
	case l.IsString:
		return "'" + l.Str + "'"
	case l.IsFloat:
		return fmt.Sprintf("%g", l.Float)
	default:
		return fmt.Sprintf("%d", l.Int)
	}
}

// BoolExpr is the WHERE-clause tree before DNF expansion.
type BoolExpr struct {
	// Exactly one of Pred, And, Or is set.
	Pred *Predicate
	And  []*BoolExpr
	Or   []*BoolExpr
}

// dnf expands the expression into a disjunction of conjunctions of
// predicates.
func (b *BoolExpr) dnf() [][]Predicate {
	switch {
	case b == nil:
		return [][]Predicate{nil}
	case b.Pred != nil:
		return [][]Predicate{{*b.Pred}}
	case b.Or != nil:
		var out [][]Predicate
		for _, child := range b.Or {
			out = append(out, child.dnf()...)
		}
		return out
	default: // And
		acc := [][]Predicate{nil}
		for _, child := range b.And {
			sub := child.dnf()
			var next [][]Predicate
			for _, a := range acc {
				for _, s := range sub {
					conj := make([]Predicate, 0, len(a)+len(s))
					conj = append(conj, a...)
					conj = append(conj, s...)
					next = append(next, conj)
				}
			}
			acc = next
		}
		return acc
	}
}

// OrderKey is one ORDER BY entry.
type OrderKey struct {
	Col  ColRef
	Desc bool
}

// Statement is a parsed aggregation-SQL statement.
type Statement struct {
	Top     int // 0 = no TOP clause
	Items   []SelectItem
	From    []TableRef
	Where   *BoolExpr
	GroupBy []ColRef
	OrderBy []OrderKey
}

func (s *Statement) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Top > 0 {
		fmt.Fprintf(&b, "TOP %d ", s.Top)
	}
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		items[i] = it.String()
	}
	b.WriteString(strings.Join(items, ", "))
	b.WriteString(" FROM ")
	tables := make([]string, len(s.From))
	for i, t := range s.From {
		tables[i] = t.Name
		if t.Alias != t.Name {
			tables[i] += " " + t.Alias
		}
	}
	b.WriteString(strings.Join(tables, ", "))
	return b.String()
}
