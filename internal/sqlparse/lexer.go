// Package sqlparse implements the SQL front end of AggCAvSAT: a lexer,
// a recursive-descent parser and a translator from the supported SQL
// subset to the internal query algebra (cq.AggQuery over cq.UCQ).
//
// Supported grammar (case-insensitive keywords):
//
//	SELECT [TOP k] item (',' item)*
//	FROM table [alias] (',' table [alias])*
//	[WHERE boolexpr]
//	[GROUP BY col (',' col)*]
//	[ORDER BY col [ASC|DESC] (',' col [ASC|DESC])*]
//
//	item     := col | agg
//	agg      := COUNT '(' '*' ')'
//	          | (COUNT|SUM|MIN|MAX|AVG) '(' [DISTINCT] col ')'
//	boolexpr := orexpr; orexpr := andexpr (OR andexpr)*
//	andexpr  := atom (AND atom)*; atom := '(' boolexpr ')' | predicate
//	predicate := operand cmp operand
//	           | col [NOT] LIKE 'prefix%'
//	           | col BETWEEN lit AND lit
//	cmp      := = | <> | != | < | <= | > | >=
//
// OR is compiled away by DNF expansion into a union of conjunctive
// queries, matching the paper's "unions of conjunctive queries" input
// class.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifiers are kept verbatim; keywords match case-insensitively
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens. Strings use single quotes with ”
// escaping; numbers may carry a sign handled at parse level.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", start)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: input[start:i], pos: start})
		default:
			start := i
			// Two-character operators first.
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case ',', '(', ')', '*', '.', '=', '<', '>', '-', '+':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			default:
				return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
