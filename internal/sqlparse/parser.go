package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"aggcavsat/internal/cq"
)

// Parse parses one aggregation-SQL statement.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting with %s", p.peek())
	}
	return st, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: "+format, args...)
}

// at reports whether the current token matches; empty text matches any
// token of the kind. Keywords compare case-insensitively.
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	return text == "" || strings.EqualFold(t.text, text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, p.errf("expected %q, found %s", text, p.peek())
	}
	return p.next(), nil
}

func (p *parser) keyword(kw string) bool { return p.accept(tokIdent, kw) }

func (p *parser) statement() (*Statement, error) {
	if !p.keyword("SELECT") {
		return nil, p.errf("expected SELECT, found %s", p.peek())
	}
	st := &Statement{}
	if p.keyword("TOP") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, p.errf("bad TOP count %q", t.text)
		}
		st.Top = n
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if !p.keyword("FROM") {
		return nil, p.errf("expected FROM, found %s", p.peek())
	}
	for {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: t.text, Alias: t.text}
		// Optional alias (an identifier that is not a clause keyword).
		if p.at(tokIdent, "") && !p.atClauseKeyword() {
			ref.Alias = p.next().text
		}
		st.From = append(st.From, ref)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.keyword("WHERE") {
		expr, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = expr
	}
	if p.keyword("GROUP") {
		if !p.keyword("BY") {
			return nil, p.errf("expected BY after GROUP")
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.keyword("ORDER") {
		if !p.keyword("BY") {
			return nil, p.errf("expected BY after ORDER")
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: c}
			if p.keyword("DESC") {
				key.Desc = true
			} else {
				p.keyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	return st, nil
}

func (p *parser) atClauseKeyword() bool {
	for _, kw := range []string{"WHERE", "GROUP", "ORDER", "FROM", "AND", "OR", "ON"} {
		if p.at(tokIdent, kw) {
			return true
		}
	}
	return false
}

var aggNames = map[string]cq.AggOp{
	"COUNT": cq.Count,
	"SUM":   cq.Sum,
	"MIN":   cq.Min,
	"MAX":   cq.Max,
	"AVG":   cq.Avg,
}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokIdent {
		if op, isAgg := aggNames[strings.ToUpper(t.text)]; isAgg && p.toks[p.pos+1].text == "(" {
			p.next() // agg name
			p.next() // '('
			item := SelectItem{IsAgg: true, Op: op}
			if p.accept(tokSymbol, "*") {
				if op != cq.Count {
					return item, p.errf("%s(*) is not valid SQL", t.text)
				}
				item.Op = cq.CountStar
				item.Star = true
			} else {
				if p.keyword("DISTINCT") {
					item.Distinct = true
					switch op {
					case cq.Count:
						item.Op = cq.CountDistinct
					case cq.Sum:
						item.Op = cq.SumDistinct
					default:
						return item, p.errf("DISTINCT is only supported inside COUNT and SUM")
					}
				}
				col, err := p.colRef()
				if err != nil {
					return item, err
				}
				item.Col = col
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return item, err
			}
			return item, nil
		}
	}
	col, err := p.colRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

func (p *parser) colRef() (ColRef, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return ColRef{}, err
	}
	if p.accept(tokSymbol, ".") {
		c, err := p.expect(tokIdent, "")
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: t.text, Column: c.text}, nil
	}
	return ColRef{Column: t.text}, nil
}

func (p *parser) orExpr() (*BoolExpr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokIdent, "OR") {
		return left, nil
	}
	or := []*BoolExpr{left}
	for p.keyword("OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		or = append(or, right)
	}
	return &BoolExpr{Or: or}, nil
}

func (p *parser) andExpr() (*BoolExpr, error) {
	left, err := p.boolAtom()
	if err != nil {
		return nil, err
	}
	if !p.at(tokIdent, "AND") {
		return left, nil
	}
	and := []*BoolExpr{left}
	for p.keyword("AND") {
		right, err := p.boolAtom()
		if err != nil {
			return nil, err
		}
		and = append(and, right)
	}
	return &BoolExpr{And: and}, nil
}

func (p *parser) boolAtom() (*BoolExpr, error) {
	if p.accept(tokSymbol, "(") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.predicate()
}

func (p *parser) predicate() (*BoolExpr, error) {
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	// [NOT] LIKE and BETWEEN require a column on the left.
	not := false
	if p.at(tokIdent, "NOT") {
		p.next()
		not = true
		if !p.at(tokIdent, "LIKE") {
			return nil, p.errf("expected LIKE after NOT")
		}
	}
	switch {
	case p.keyword("LIKE"):
		if !left.IsCol {
			return nil, p.errf("LIKE requires a column on the left")
		}
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		prefix, err := likePrefix(t.text)
		if err != nil {
			return nil, err
		}
		op := cq.OpLikePrefix
		if not {
			op = cq.OpNotLikePrefix
		}
		return &BoolExpr{Pred: &Predicate{
			Left:  left,
			Op:    op,
			Right: Operand{Lit: Literal{IsString: true, Str: prefix}},
		}}, nil
	case p.keyword("BETWEEN"):
		lo, err := p.operand()
		if err != nil {
			return nil, err
		}
		if !p.keyword("AND") {
			return nil, p.errf("expected AND in BETWEEN")
		}
		hi, err := p.operand()
		if err != nil {
			return nil, err
		}
		return &BoolExpr{And: []*BoolExpr{
			{Pred: &Predicate{Left: left, Op: cq.OpGE, Right: lo}},
			{Pred: &Predicate{Left: left, Op: cq.OpLE, Right: hi}},
		}}, nil
	}
	opTok := p.next()
	var op cq.CmpOp
	switch opTok.text {
	case "=":
		op = cq.OpEQ
	case "<>", "!=":
		op = cq.OpNE
	case "<":
		op = cq.OpLT
	case "<=":
		op = cq.OpLE
	case ">":
		op = cq.OpGT
	case ">=":
		op = cq.OpGE
	default:
		return nil, p.errf("expected comparison operator, found %s", opTok)
	}
	right, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &BoolExpr{Pred: &Predicate{Left: left, Op: op, Right: right}}, nil
}

// likePrefix validates that the pattern is a pure prefix pattern
// ("abc%") and returns the prefix.
func likePrefix(pattern string) (string, error) {
	if !strings.HasSuffix(pattern, "%") {
		return "", fmt.Errorf("sqlparse: only prefix LIKE patterns ('abc%%') are supported, got %q", pattern)
	}
	prefix := pattern[:len(pattern)-1]
	if strings.ContainsAny(prefix, "%_") {
		return "", fmt.Errorf("sqlparse: only prefix LIKE patterns are supported, got %q", pattern)
	}
	return prefix, nil
}

func (p *parser) operand() (Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.next()
		return Operand{Lit: Literal{IsString: true, Str: t.text}}, nil
	case tokNumber:
		p.next()
		return parseNumber(t.text, false)
	case tokSymbol:
		if t.text == "-" || t.text == "+" {
			p.next()
			num, err := p.expect(tokNumber, "")
			if err != nil {
				return Operand{}, err
			}
			return parseNumber(num.text, t.text == "-")
		}
	case tokIdent:
		col, err := p.colRef()
		if err != nil {
			return Operand{}, err
		}
		return Operand{IsCol: true, Col: col}, nil
	}
	return Operand{}, p.errf("expected operand, found %s", t)
}

func parseNumber(text string, neg bool) (Operand, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("sqlparse: bad number %q: %w", text, err)
		}
		if neg {
			f = -f
		}
		return Operand{Lit: Literal{IsFloat: true, Float: f}}, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Operand{}, fmt.Errorf("sqlparse: bad number %q: %w", text, err)
	}
	if neg {
		n = -n
	}
	return Operand{Lit: Literal{Int: n}}, nil
}
