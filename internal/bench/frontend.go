package bench

import (
	"fmt"
	"strings"
	"time"

	"aggcavsat/internal/core"
	"aggcavsat/internal/tpch"
)

// FrontendCompare (experiment "pr4") measures the compiled relational
// front end — slot-based query plans over uint64 hash indexes, the
// key-aware constraint fast path, and parallel witness enumeration —
// against the legacy interpreted front end (DisableFrontendOpt), which
// reproduces the pre-compilation code path exactly. Both engines answer
// the full DBGen query suite on the same instance; the experiment
// verifies the answers and CNF sizes are identical in both modes (the
// front end must change times, never results) and reports the
// reduction of the front-end cost, witness enumeration plus constraint
// preprocessing — the two phases this PR targets.
//
// Every query runs reps times per mode on one engine per mode; the
// reported measurement is the best repetition by front-end cost.
// Repetitions matter for the optimized mode — the plan cache, the hash
// indexes, and the key-equal-group memo persist across calls on one
// engine, the intended deployment shape — while the legacy engine
// rebuilds its string-keyed indexes per relation-shape and regroups
// per context by construction.
func (r *Runner) FrontendCompare() (*Table, error) {
	r.setExperiment("PR4") // records land in BENCH_PR4.json
	const reps = 3
	in, err := r.dbgen(r.cfg.SFSmall, 10)
	if err != nil {
		return nil, err
	}
	queries := append(append([]tpch.Query{}, tpch.ScalarQueries()...), tpch.GroupedQueries()...)

	t := &Table{
		Title: fmt.Sprintf("PR4 — compiled vs interpreted front end, DBGen 10%%, sf=%g (best of %d)",
			r.cfg.SFSmall, reps),
		Header: []string{"query", "legacy_front_ms", "opt_front_ms", "front_reduction", "legacy_total_ms", "opt_total_ms"},
	}
	type meas struct {
		stats   core.Stats
		total   time.Duration
		answers int
		key     string // canonical answer rendering for cross-mode verification
	}
	front := func(m meas) time.Duration { return m.stats.WitnessTime + m.stats.ConstraintTime }
	run := func(disable bool) (map[string]meas, error) {
		eng, err := core.New(in, core.Options{
			Mode:               core.KeysMode,
			MaxSAT:             r.cfg.Solver,
			Parallelism:        r.cfg.Parallelism,
			Timeout:            r.cfg.Timeout,
			DisableIncremental: r.cfg.DisableIncremental,
			DisableFrontendOpt: disable,
		})
		if err != nil {
			return nil, err
		}
		best := map[string]meas{}
		for rep := 0; rep < reps; rep++ {
			for _, q := range queries {
				tr, err := q.Translate()
				if err != nil {
					return nil, err
				}
				start := time.Now()
				rep2, err := eng.RangeAnswersContext(r.ctx(), tr.Aggs[0].Query)
				if err != nil {
					return nil, err
				}
				m := meas{
					stats:   rep2.Stats,
					total:   time.Since(start),
					answers: len(rep2.Answers),
					key:     answersKey(rep2),
				}
				if prev, ok := best[q.Name]; !ok || front(m) < front(prev) {
					best[q.Name] = m
				}
			}
		}
		return best, nil
	}

	legacy, err := run(true)
	if err != nil {
		return nil, err
	}
	opt, err := run(false)
	if err != nil {
		return nil, err
	}
	for _, q := range queries {
		l, o := legacy[q.Name], opt[q.Name]
		if l.key != o.key {
			return nil, fmt.Errorf("bench: pr4: %s: answers differ between front ends:\nlegacy:    %s\noptimized: %s",
				q.Name, l.key, o.key)
		}
		if l.stats.Vars != o.stats.Vars || l.stats.Clauses != o.stats.Clauses {
			return nil, fmt.Errorf("bench: pr4: %s: CNF size differs between front ends: legacy %d vars / %d clauses, optimized %d / %d",
				q.Name, l.stats.Vars, l.stats.Clauses, o.stats.Vars, o.stats.Clauses)
		}
		r.curSetting = "mode=legacy"
		r.recordStats(q.Name, l.stats, l.total, l.answers)
		r.curSetting = "mode=optimized"
		r.recordStats(q.Name, o.stats, o.total, o.answers)
		reduction := "n/a"
		if front(l) > 0 {
			reduction = fmt.Sprintf("%.1f%%",
				100*(1-float64(front(o))/float64(front(l))))
		}
		t.Rows = append(t.Rows, []string{
			q.Name,
			ms(front(l)),
			ms(front(o)),
			reduction,
			ms(l.total),
			ms(o.total),
		})
	}
	return t, nil
}

// answersKey renders a report's answers canonically (key, interval,
// flags) so two engine modes can be compared for exact agreement.
func answersKey(rep *core.Report) string {
	var b strings.Builder
	for _, a := range rep.Answers {
		fmt.Fprintf(&b, "%v:[%v,%v]%v%v;", a.Key, a.GLB, a.LUB, a.FromConsistentPart, a.EmptyPossible)
	}
	return b.String()
}
