package bench

import (
	"fmt"
	"time"

	"aggcavsat/internal/core"
	"aggcavsat/internal/maxsat"
	"aggcavsat/internal/tpch"
)

// Ablation compares the three built-in MaxSAT back ends on the same
// reductions — the design-choice study DESIGN.md calls out: the paper's
// system delegates to MaxHS, and this table shows why an
// implicit-hitting-set engine is the right default for CQA instances
// (price-valued SUM weights defeat core-guided weight splitting), while
// RC2 and LSU remain competitive on COUNT instances with unit weights.
func (r *Runner) Ablation() (*Table, error) {
	in, err := r.dbgen(r.cfg.SFSmall, 10)
	if err != nil {
		return nil, err
	}
	algorithms := []maxsat.Algorithm{maxsat.AlgMaxHS, maxsat.AlgRC2, maxsat.AlgLSU}
	t := &Table{
		Title: fmt.Sprintf("Ablation — MaxSAT back ends on DBGen 10%%, sf=%g (total ms | SAT calls)",
			r.cfg.SFSmall),
		Header: []string{"query", "maxhs", "rc2", "lsu"},
	}
	// A COUNT-dominated and a SUM-dominated scalar query, plus one
	// grouped query, exercise the weight regimes differently.
	for _, name := range []string{"Q12'", "Q6'", "Q1'", "Q12"} {
		q, err := tpch.QueryByName(name)
		if err != nil {
			return nil, err
		}
		tr, err := q.Translate()
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, alg := range algorithms {
			eng, err := core.New(in, core.Options{
				Mode:        core.KeysMode,
				MaxSAT:      maxsat.Options{Algorithm: alg},
				Parallelism: r.cfg.Parallelism,
				Timeout:     r.cfg.Timeout,
			})
			if err != nil {
				return nil, err
			}
			r.curSetting = "alg=" + alg.String()
			start := time.Now()
			rep, err := eng.RangeAnswersContext(r.ctx(), tr.Aggs[0].Query)
			if err != nil {
				return nil, err
			}
			total := time.Since(start)
			r.recordStats(name, rep.Stats, total, len(rep.Answers))
			row = append(row, fmt.Sprintf("%s | %d", ms(total), rep.Stats.SATCalls))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
