package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aggcavsat/internal/obsv"
)

// TestReplayJournalsEveryQuery runs a small replay with the journal
// enabled and checks the core accounting contract: decoded journal line
// count == queries issued, and the rendered table carries the
// percentile columns.
func TestReplayJournalsEveryQuery(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := obsv.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Journal = j
	r := NewRunner(cfg)

	var out bytes.Buffer
	rep, err := r.Replay(ReplayOptions{N: 6, Concurrency: 2}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if rep.Issued != 6 {
		t.Fatalf("issued = %d, want 6", rep.Issued)
	}
	entries, err := obsv.ReadJournalFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != rep.Issued {
		t.Errorf("journal lines = %d, issued = %d (every query must journal)", len(entries), rep.Issued)
	}
	for i, e := range entries {
		if e.Query == "" || !strings.HasPrefix(e.Query, "Q") {
			t.Errorf("line %d query label = %q, want a workload name", i, e.Query)
		}
	}
	if rep.Overall.Count != int64(rep.Issued) {
		t.Errorf("overall latency count = %d, want %d", rep.Overall.Count, rep.Issued)
	}
	var perTotal int
	for _, q := range rep.PerQuery {
		perTotal += q.Issued
		if q.Latency.Count != int64(q.Issued) {
			t.Errorf("%s: latency count %d != issued %d", q.Name, q.Latency.Count, q.Issued)
		}
	}
	if perTotal != rep.Issued {
		t.Errorf("per-query issued sums to %d, want %d", perTotal, rep.Issued)
	}
	for _, col := range []string{"p50 ms", "p90 ms", "p99 ms", "max ms", "all"} {
		if !strings.Contains(out.String(), col) {
			t.Errorf("table missing %q:\n%s", col, out.String())
		}
	}
	// The replay results land in the records store under "replay".
	found := false
	for _, rec := range r.Records() {
		if rec.Experiment == "replay" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no replay records captured")
	}

	// Round trip: the journal captured above is itself a valid replay
	// source (labels are workload names).
	r2 := NewRunner(tinyConfig())
	rep2, err := r2.Replay(ReplayOptions{Source: jpath, Concurrency: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Issued != rep.Issued {
		t.Errorf("journal-sourced replay issued %d, want %d", rep2.Issued, rep.Issued)
	}
}

// TestReplaySpecFile drives the stream from a plain spec file with
// comments, repeats (weighting), and an unknown name (skipped).
func TestReplaySpecFile(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "mix.txt")
	content := "# weighted mix\nQ1'\nQ1'\nQ6'\n\nNOPE\n"
	if err := os.WriteFile(spec, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(tinyConfig())
	rep, err := r.Replay(ReplayOptions{Source: spec, QPS: 500}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Issued != 3 {
		t.Errorf("issued = %d, want 3 (Q1' twice + Q6')", rep.Issued)
	}
	if rep.Skipped != 1 {
		t.Errorf("skipped = %d, want 1 (the unknown name)", rep.Skipped)
	}
	if len(rep.PerQuery) != 2 {
		t.Errorf("per-query rows = %d, want 2", len(rep.PerQuery))
	}
	for _, q := range rep.PerQuery {
		want := map[string]int{"Q1'": 2, "Q6'": 1}[q.Name]
		if q.Issued != want {
			t.Errorf("%s issued = %d, want %d (spec weighting)", q.Name, q.Issued, want)
		}
	}
}

// TestReplayRejectsUselessStreams pins the error paths: a stream with
// no resolvable names, and a missing source file.
func TestReplayRejectsUselessStreams(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(spec, []byte("# only comments\nWHO\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(tinyConfig())
	if _, err := r.Replay(ReplayOptions{Source: spec}, nil); err == nil {
		t.Error("stream with no known queries accepted")
	}
	if _, err := r.Replay(ReplayOptions{Source: filepath.Join(t.TempDir(), "missing")}, nil); err == nil {
		t.Error("missing source accepted")
	}
}
