package bench

import (
	"fmt"
	"time"

	"aggcavsat/internal/core"
	"aggcavsat/internal/tpch"
)

// IncrementalCompare (experiment "pr3") measures the incremental
// shared-base solve path against the legacy one-solver-per-run path on
// the same instances and queries, in one process and one run. The
// legacy engine (DisableIncremental) reproduces the pre-incremental
// code path exactly, so its column is the in-run baseline.
//
// Every query runs reps times per mode on one engine per mode; the
// reported solve time is the best repetition. Repetitions are where the
// incremental path earns its keep — the component base cache and the
// learnt clauses released back to it persist across calls on the same
// engine, which is the intended deployment shape (an engine serves many
// queries over one instance) — while the legacy engine re-encodes and
// re-loads every solver from scratch each time by construction.
func (r *Runner) IncrementalCompare() (*Table, error) {
	r.setExperiment("PR3") // records land in BENCH_PR3.json
	const reps = 3
	in, err := r.dbgen(r.cfg.SFSmall, 25)
	if err != nil {
		return nil, err
	}
	queries := append(append([]tpch.Query{}, tpch.ScalarQueries()...), tpch.GroupedQueries()...)

	t := &Table{
		Title: fmt.Sprintf("PR3 — incremental vs legacy solve path, DBGen 25%%, sf=%g (best of %d)",
			r.cfg.SFSmall, reps),
		Header: []string{"query", "legacy_solve_ms", "incr_solve_ms", "solve_reduction", "legacy_total_ms", "incr_total_ms"},
	}
	type meas struct {
		stats   core.Stats
		total   time.Duration
		answers int
	}
	run := func(disable bool) (map[string]meas, error) {
		eng, err := core.New(in, core.Options{
			Mode:               core.KeysMode,
			MaxSAT:             r.cfg.Solver,
			Parallelism:        r.cfg.Parallelism,
			Timeout:            r.cfg.Timeout,
			DisableIncremental: disable,
		})
		if err != nil {
			return nil, err
		}
		best := map[string]meas{}
		for rep := 0; rep < reps; rep++ {
			for _, q := range queries {
				tr, err := q.Translate()
				if err != nil {
					return nil, err
				}
				start := time.Now()
				rep2, err := eng.RangeAnswersContext(r.ctx(), tr.Aggs[0].Query)
				if err != nil {
					return nil, err
				}
				m := meas{stats: rep2.Stats, total: time.Since(start), answers: len(rep2.Answers)}
				if prev, ok := best[q.Name]; !ok || m.stats.SolveTime < prev.stats.SolveTime {
					best[q.Name] = m
				}
			}
		}
		return best, nil
	}

	legacy, err := run(true)
	if err != nil {
		return nil, err
	}
	incr, err := run(false)
	if err != nil {
		return nil, err
	}
	for _, q := range queries {
		l, i := legacy[q.Name], incr[q.Name]
		r.curSetting = "mode=legacy"
		r.recordStats(q.Name, l.stats, l.total, l.answers)
		r.curSetting = "mode=incremental"
		r.recordStats(q.Name, i.stats, i.total, i.answers)
		reduction := "n/a"
		if l.stats.SolveTime > 0 {
			reduction = fmt.Sprintf("%.1f%%",
				100*(1-float64(i.stats.SolveTime)/float64(l.stats.SolveTime)))
		}
		t.Rows = append(t.Rows, []string{
			q.Name,
			ms(l.stats.SolveTime),
			ms(i.stats.SolveTime),
			reduction,
			ms(l.total),
			ms(i.total),
		})
	}
	return t, nil
}
