package bench

import (
	"fmt"
	"runtime"
	"time"

	"aggcavsat/internal/core"
	"aggcavsat/internal/db"
	"aggcavsat/internal/tpch"
)

// ColumnarCompare (experiment "pr9") measures the columnar
// dictionary-encoded fact store against the legacy row store on the
// DBGen suite: the same facts with the same IDs are materialized under
// each physical layout in turn — never both at once, so the heap
// numbers of one layout are not polluted by the other — and every
// query's answers and CNF sizes are verified byte-identical across
// layouts before any number is reported.
//
// Three measurements per (scale, layout):
//
//   - instance_bytes: the GC-settled live-heap delta of materializing
//     the instance (the storage footprint itself);
//   - peak_heap: the peak HeapAlloc above the pre-build baseline over
//     the whole build-plus-query phase, observed by a sampler polling
//     runtime.ReadMemStats. This includes not-yet-collected garbage,
//     so it mixes allocation rate into the picture (and short spikes
//     between samples can be missed);
//   - peak_live: the peak GC-settled live heap above the same baseline,
//     sampled after the build and after each query — what the process
//     actually has to retain: the store plus the engine's caches. This
//     is the column the storage layout moves;
//   - per-query timings, recorded like every other experiment.
//
// Records land in BENCH_PR9.json under Setting "layout=<l> sf=<sf>";
// the synthetic instance_bytes/peak_heap rows carry the byte counts in
// heap_bytes, where `aggbench -compare` applies its allocation
// regression guard.
func (r *Runner) ColumnarCompare() (*Table, error) {
	r.setExperiment("PR9") // records land in BENCH_PR9.json
	scales := []struct {
		sf      float64
		pct     float64
		queries []tpch.Query
	}{
		// The paper-calibrated small scale runs the full suite; the 10×
		// scale leg (the ISSUE's digest-verified big run) keeps to the
		// scalar queries to bound solver time.
		{r.cfg.SFSmall, 10, append(append([]tpch.Query{}, tpch.ScalarQueries()...), tpch.GroupedQueries()...)},
		{0.01, 10, tpch.ScalarQueries()},
	}
	t := &Table{
		Title:  fmt.Sprintf("PR9 — columnar vs row fact store, DBGen 10%%, sf=%g and sf=0.01", r.cfg.SFSmall),
		Header: []string{"scale/metric", "row", "columnar", "delta"},
	}
	for _, sc := range scales {
		row, err := r.measureLayout(db.LayoutRow, sc.sf, sc.pct, sc.queries)
		if err != nil {
			return nil, err
		}
		col, err := r.measureLayout(db.LayoutColumnar, sc.sf, sc.pct, sc.queries)
		if err != nil {
			return nil, err
		}
		for _, q := range sc.queries {
			rm, cm := row.queries[q.Name], col.queries[q.Name]
			if rm.timeout != cm.timeout {
				return nil, fmt.Errorf("bench: pr9: %s at sf=%g: one layout timed out (row=%v, columnar=%v) — the layouts must drive the solver identically",
					q.Name, sc.sf, rm.timeout, cm.timeout)
			}
			if rm.timeout {
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("sf=%g %s", sc.sf, q.Name), "t/o", "t/o", "n/a",
				})
				continue
			}
			if rm.key != cm.key {
				return nil, fmt.Errorf("bench: pr9: %s at sf=%g: answers differ between layouts:\nrow:      %s\ncolumnar: %s",
					q.Name, sc.sf, rm.key, cm.key)
			}
			if rm.stats.Vars != cm.stats.Vars || rm.stats.Clauses != cm.stats.Clauses {
				return nil, fmt.Errorf("bench: pr9: %s at sf=%g: CNF size differs between layouts: row %d vars / %d clauses, columnar %d / %d",
					q.Name, sc.sf, rm.stats.Vars, rm.stats.Clauses, cm.stats.Vars, cm.stats.Clauses)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("sf=%g %s", sc.sf, q.Name),
				ms(rm.total), ms(cm.total),
				deltaCell(float64(rm.total), float64(cm.total)),
			})
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("sf=%g instance_bytes", sc.sf),
			mibCell(row.resident), mibCell(col.resident),
			deltaCell(float64(row.resident), float64(col.resident)),
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("sf=%g peak_heap", sc.sf),
			mibCell(row.peak), mibCell(col.peak),
			deltaCell(float64(row.peak), float64(col.peak)),
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("sf=%g peak_live", sc.sf),
			mibCell(row.peakLive), mibCell(col.peakLive),
			deltaCell(float64(row.peakLive), float64(col.peakLive)),
		})
	}
	return t, nil
}

// layoutMeas is one layout's sequential measurement at one scale.
type layoutMeas struct {
	resident int64 // GC-settled live-heap delta of the instance
	peak     int64 // sampled peak HeapAlloc above the pre-build baseline
	peakLive int64 // peak GC-settled live heap above the same baseline
	queries  map[string]layoutQuery
}

type layoutQuery struct {
	stats   core.Stats
	total   time.Duration
	answers int
	timeout bool
	key     string
}

// measureLayout builds the demo instance under the layout, runs the
// queries, and tears everything down before returning, so the next
// layout starts from the same heap baseline. Instances are built
// directly (not via the runner's dbgen cache) precisely so nothing
// outlives the measurement.
func (r *Runner) measureLayout(layout db.Layout, sf, pct float64, queries []tpch.Query) (*layoutMeas, error) {
	r.curSetting = fmt.Sprintf("layout=%s sf=%g", layout, sf)
	runtime.GC()
	base := liveHeap()

	sampler := startPeakSampler(2 * time.Millisecond)
	in, err := tpch.DemoInstanceLayout(sf, pct, r.cfg.Seed, layout)
	if err != nil {
		sampler.Stop()
		return nil, err
	}
	runtime.GC()
	resident := int64(liveHeap()) - int64(base)

	eng, err := r.engine(in)
	if err != nil {
		sampler.Stop()
		return nil, err
	}
	m := &layoutMeas{resident: resident, peakLive: resident, queries: map[string]layoutQuery{}}
	for _, q := range queries {
		tr, err := q.Translate()
		if err != nil {
			sampler.Stop()
			return nil, err
		}
		start := time.Now()
		rep, err := eng.RangeAnswersContext(r.ctx(), tr.Aggs[0].Query)
		if timedOut(err) {
			lq := layoutQuery{total: time.Since(start), timeout: true}
			m.queries[q.Name] = lq
			r.record(q.Name, queryResult{total: lq.total, timeout: true})
			continue
		}
		if err != nil {
			sampler.Stop()
			return nil, fmt.Errorf("bench: pr9: %s (%s, sf=%g): %w", q.Name, layout, sf, err)
		}
		lq := layoutQuery{
			stats:   rep.Stats,
			total:   time.Since(start),
			answers: len(rep.Answers),
			key:     answersKey(rep),
		}
		m.queries[q.Name] = lq
		r.recordStats(q.Name, lq.stats, lq.total, lq.answers)
		// Settle the heap: what survives a GC here is the store plus the
		// engine's caches (plans, hash indexes, solver bases) — the live
		// set the layout is responsible for.
		runtime.GC()
		if live := int64(liveHeap()) - int64(base); live > m.peakLive {
			m.peakLive = live
		}
	}
	m.peak = int64(sampler.Stop()) - int64(base)
	if m.peak < resident {
		m.peak = resident // the sampler can miss the post-build plateau
	}
	r.record("instance_bytes", queryResult{stats: core.Stats{HeapBytes: m.resident}})
	r.record("peak_heap", queryResult{stats: core.Stats{HeapBytes: m.peak}})
	r.record("peak_live", queryResult{stats: core.Stats{HeapBytes: m.peakLive}})

	// Drop the instance and engine before the next layout is measured.
	runtime.GC()
	return m, nil
}

// liveHeap samples the current live heap.
func liveHeap() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// peakSampler polls the live heap on a fixed interval and keeps the
// maximum observed value.
type peakSampler struct {
	quit chan struct{}
	done chan struct{}
	peak uint64
}

func startPeakSampler(interval time.Duration) *peakSampler {
	p := &peakSampler{quit: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			if h := liveHeap(); h > p.peak {
				p.peak = h
			}
			select {
			case <-p.quit:
				return
			case <-tick.C:
			}
		}
	}()
	return p
}

// Stop takes a final sample and returns the peak.
func (p *peakSampler) Stop() uint64 {
	close(p.quit)
	<-p.done
	if h := liveHeap(); h > p.peak {
		p.peak = h
	}
	return p.peak
}

// mibCell renders a byte count for the table.
func mibCell(b int64) string {
	return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
}

// deltaCell renders the columnar-vs-row change as a signed percentage
// (negative = columnar smaller/faster).
func deltaCell(row, col float64) string {
	if row <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(col/row-1))
}
