package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// CompareOptions tunes the regression check. A timing is flagged only
// when it is both Tolerance times slower AND at least FloorMS slower —
// the absolute floor keeps sub-millisecond noise from tripping the
// ratio test.
type CompareOptions struct {
	// Tolerance is the acceptable slowdown ratio (new/old); values ≤ 1
	// mean DefaultTolerance.
	Tolerance float64
	// FloorMS is the minimum absolute slowdown worth flagging; values
	// ≤ 0 mean DefaultFloorMS.
	FloorMS float64
	// MemTolerance is the acceptable growth ratio for the memory columns
	// (phase allocation totals and live heap); values ≤ 1 mean
	// DefaultMemTolerance.
	MemTolerance float64
	// MemFloorBytes is the minimum absolute growth worth flagging;
	// values ≤ 0 mean DefaultMemFloorBytes.
	MemFloorBytes float64
}

// Default comparison thresholds: a run must be 1.5× slower and lose at
// least 50 ms before it counts as a regression. Wall-clock benchmarks
// on shared CI runners are noisy; these defaults make the check
// informational rather than flaky. Memory counters are deterministic
// enough for a tighter floor, but GC timing still moves live-heap
// samples, so the same ratio guard applies with an 8 MiB floor.
const (
	DefaultTolerance     = 1.5
	DefaultFloorMS       = 50
	DefaultMemTolerance  = 1.5
	DefaultMemFloorBytes = 8 << 20
)

// CompareEntry is the verdict for one (experiment, setting, query) run
// present in both record sets.
type CompareEntry struct {
	Experiment string
	Setting    string
	Query      string
	// Metric is the flagged column ("total_ms", "solve_ms", "encode_ms",
	// "witness_ms", "timeout", "answers", "witness_alloc_bytes",
	// "encode_alloc_bytes", "solve_alloc_bytes", "heap_bytes"); one
	// entry per flagged metric.
	Metric   string
	OldValue float64
	NewValue float64
	// Regression is true for a flagged slowdown or a new timeout/answer
	// drift; entries are only emitted when something is worth reporting.
	Regression bool
}

// CompareReport is the outcome of CompareRecords.
type CompareReport struct {
	// Matched counts runs present in both sets; OldOnly/NewOnly count
	// runs present in exactly one.
	Matched, OldOnly, NewOnly int
	Entries                   []CompareEntry
}

// HasRegressions reports whether any entry is a regression.
func (r *CompareReport) HasRegressions() bool {
	for _, e := range r.Entries {
		if e.Regression {
			return true
		}
	}
	return false
}

// GatingRegressions returns the regressions deterministic enough to
// gate CI on: answers drift, new timeouts, and growth in the memory
// columns. Wall-clock slowdowns are excluded — shared-runner timing
// noise routinely blows past any usable threshold, while allocation
// totals and settled heap sizes are reproducible run to run.
func (r *CompareReport) GatingRegressions() []CompareEntry {
	var out []CompareEntry
	for _, e := range r.Entries {
		if e.Regression && !strings.HasSuffix(e.Metric, "_ms") {
			out = append(out, e)
		}
	}
	return out
}

// Fprint renders the report for humans.
func (r *CompareReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "bench compare: %d matched runs (%d old-only, %d new-only)\n",
		r.Matched, r.OldOnly, r.NewOnly)
	if len(r.Entries) == 0 {
		fmt.Fprintln(w, "no regressions")
		return
	}
	for _, e := range r.Entries {
		label := e.Query
		if e.Setting != "" {
			label = e.Setting + " " + label
		}
		tag := "note"
		if e.Regression {
			tag = "REGRESSION"
		}
		if strings.HasSuffix(e.Metric, "_bytes") {
			fmt.Fprintf(w, "%s: %s/%s %s: %.2f MiB -> %.2f MiB\n",
				tag, e.Experiment, label, e.Metric,
				e.OldValue/(1<<20), e.NewValue/(1<<20))
			continue
		}
		fmt.Fprintf(w, "%s: %s/%s %s: %.1f -> %.1f\n",
			tag, e.Experiment, label, e.Metric, e.OldValue, e.NewValue)
	}
}

// runKey identifies one run across record sets.
type runKey struct{ exp, setting, query string }

// CompareRecords diffs two RunRecord sets (typically a committed
// BENCH_*.json baseline against a fresh run) and flags slowdowns,
// allocation and live-heap growth beyond the tolerances, answers
// drift, and timeout changes. Runs are matched by (experiment,
// setting, query); unmatched runs are counted, not flagged.
func CompareRecords(old, new []RunRecord, opts CompareOptions) *CompareReport {
	tol := opts.Tolerance
	if tol <= 1 {
		tol = DefaultTolerance
	}
	floor := opts.FloorMS
	if floor <= 0 {
		floor = DefaultFloorMS
	}
	memTol := opts.MemTolerance
	if memTol <= 1 {
		memTol = DefaultMemTolerance
	}
	memFloor := opts.MemFloorBytes
	if memFloor <= 0 {
		memFloor = DefaultMemFloorBytes
	}
	index := make(map[runKey]RunRecord, len(old))
	for _, rec := range old {
		index[runKey{rec.Experiment, rec.Setting, rec.Query}] = rec
	}
	rep := &CompareReport{}
	seen := map[runKey]bool{}
	for _, nr := range new {
		k := runKey{nr.Experiment, nr.Setting, nr.Query}
		or, ok := index[k]
		if !ok {
			rep.NewOnly++
			continue
		}
		seen[k] = true
		rep.Matched++
		add := func(metric string, oldV, newV float64, regression bool) {
			rep.Entries = append(rep.Entries, CompareEntry{
				Experiment: k.exp, Setting: k.setting, Query: k.query,
				Metric: metric, OldValue: oldV, NewValue: newV,
				Regression: regression,
			})
		}
		if or.Timeout != nr.Timeout {
			oldV, newV := 0.0, 0.0
			if or.Timeout {
				oldV = 1
			}
			if nr.Timeout {
				newV = 1
			}
			// A run newly timing out is a regression; one newly
			// finishing is an improvement worth a note.
			add("timeout", oldV, newV, nr.Timeout)
			continue
		}
		if nr.Timeout {
			continue // both timed out: nothing comparable
		}
		if or.Answers != nr.Answers {
			add("answers", float64(or.Answers), float64(nr.Answers), true)
		}
		timings := []struct {
			metric   string
			old, new float64
		}{
			{"total_ms", or.TotalMS, nr.TotalMS},
			{"solve_ms", or.SolveMS, nr.SolveMS},
			{"encode_ms", or.EncodeMS, nr.EncodeMS},
			{"witness_ms", or.WitnessMS, nr.WitnessMS},
		}
		for _, t := range timings {
			if t.new > t.old*tol && t.new-t.old > floor {
				add(t.metric, t.old, t.new, true)
			}
		}
		// Memory columns (recorded since the observability pass) get the
		// same ratio+floor guard. Baselines written before the columns
		// existed carry zeros; a zero old value means "not measured", not
		// "allocated nothing", so those rows are skipped rather than
		// flagged as infinite growth.
		memory := []struct {
			metric   string
			old, new int64
		}{
			{"witness_alloc_bytes", or.WitnessAllocBytes, nr.WitnessAllocBytes},
			{"encode_alloc_bytes", or.EncodeAllocBytes, nr.EncodeAllocBytes},
			{"solve_alloc_bytes", or.SolveAllocBytes, nr.SolveAllocBytes},
			{"heap_bytes", or.HeapBytes, nr.HeapBytes},
		}
		for _, m := range memory {
			if m.old <= 0 {
				continue
			}
			oldV, newV := float64(m.old), float64(m.new)
			if newV > oldV*memTol && newV-oldV > memFloor {
				add(m.metric, oldV, newV, true)
			}
		}
	}
	for k := range index {
		if !seen[k] {
			rep.OldOnly++
		}
	}
	sort.SliceStable(rep.Entries, func(i, j int) bool {
		a, b := rep.Entries[i], rep.Entries[j]
		if a.Regression != b.Regression {
			return a.Regression
		}
		return false
	})
	return rep
}

// LoadRecords reads a BENCH_*.json file (a JSON array of RunRecord).
func LoadRecords(path string) ([]RunRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []RunRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return recs, nil
}
