package bench

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"aggcavsat"
	"aggcavsat/internal/core"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/server"
	"aggcavsat/internal/sqlparse"
	"aggcavsat/internal/tpch"
)

// ReplayOptions configures a load replay (the aggbench -replay mode):
// a mixed stream of workload queries is issued against one engine at a
// target arrival rate, every solve emits a journal line (when
// Config.Journal is set), and the latencies are summarized into
// per-query and overall percentile tables.
type ReplayOptions struct {
	// Source names the query stream: empty for the built-in mixed
	// workload (scalar and grouped paper queries interleaved), or a path
	// to either a query journal (JSON lines; the Query labels are
	// replayed) or a plain spec file (one workload query name per line,
	// '#' comments; repeat a name to weight it).
	Source string
	// N is the number of queries to issue; the stream is cycled or
	// truncated to it. 0 issues each stream entry once.
	N int
	// QPS is the open-loop target arrival rate. Latency is measured from
	// each query's *scheduled* issue time, so queueing delay behind a
	// slow solve is charged to the laggards (no coordinated omission).
	// 0 runs closed-loop: each worker issues as fast as it completes.
	QPS float64
	// Concurrency bounds the in-flight queries (default 4).
	Concurrency int
	// Percent is the injected inconsistency of the replayed instance
	// (default 10, the Figure 1 setting).
	Percent float64
	// Target, when set, issues the stream against a running cavsatd at
	// this base URL instead of an in-process engine. Every distinct
	// query is also executed once locally over the same generated
	// instance, and each server answer's digest is checked against the
	// local one — mismatches count as Drift. The server must be built
	// over the identical instance (cavsatd -dbgen with matching -sf,
	// -inconsistency and -seed).
	Target string
	// Instance names the server tenant to query in Target mode; empty
	// selects the server's sole instance.
	Instance string
}

// ReplayQueryStats is the latency profile of one workload query within
// a replay.
type ReplayQueryStats struct {
	Name     string `json:"name"`
	Issued   int    `json:"issued"`
	Errors   int    `json:"errors"`
	Timeouts int    `json:"timeouts"`
	// Shed counts 429 rejections (Target mode only).
	Shed int `json:"shed,omitempty"`
	// Drift counts server answers whose digest disagreed with the local
	// in-process execution (Target mode only; any nonzero is a bug).
	Drift int `json:"drift,omitempty"`
	// DriftTraces holds the server trace ids of drifted answers (at most
	// driftTraceCap per query) — the key into the server's journal and
	// /debug/trace?trace=<id> when chasing a divergence.
	DriftTraces []string             `json:"drift_traces,omitempty"`
	Latency     obsv.SummarySnapshot `json:"latency"`
}

// ReplayReport is the outcome of one load replay.
type ReplayReport struct {
	Issued   int `json:"issued"`
	Errors   int `json:"errors"`
	Timeouts int `json:"timeouts"`
	// Shed counts 429 rejections from an overloaded server (Target mode).
	Shed int `json:"shed,omitempty"`
	// Drift counts answers that disagreed with the local execution
	// (Target mode). CI gates on this staying zero.
	Drift int `json:"drift,omitempty"`
	// DriftTraces aggregates the drifted answers' server trace ids
	// across queries (bounded); failure messages print them so the
	// offending solves can be pulled from the server by id.
	DriftTraces []string `json:"drift_traces,omitempty"`
	// Skipped counts stream entries naming no known workload query
	// (journal lines from ad-hoc SQL, comments that parse as names, …).
	Skipped  int                  `json:"skipped"`
	Overall  obsv.SummarySnapshot `json:"overall"`
	PerQuery []ReplayQueryStats   `json:"per_query"`
}

// Answered returns the queries that produced an answer: issued minus
// errors, timeouts and sheds.
func (rep *ReplayReport) Answered() int {
	return rep.Issued - rep.Errors - rep.Timeouts - rep.Shed
}

// driftTraceCap bounds the recorded drift trace ids per query (and the
// report-level aggregate at 2×): enough to chase a systematic
// divergence without an unbounded slice under a pathological run.
const driftTraceCap = 8

// replayAgg accumulates one query name's outcomes during the run.
type replayAgg struct {
	sum         *obsv.Summary
	issued      int
	errors      int
	timeouts    int
	shed        int
	drift       int
	driftTraces []string
}

// replayOutcome is the classified result of issuing one query, local or
// remote.
type replayOutcome struct {
	err     error
	timeout bool
	shed    bool
	drift   bool
	// traceID is the server-assigned trace id of a remote answer,
	// recorded for drifted answers so the divergent solve can be pulled
	// from the server's journal and retained traces by id.
	traceID string
	// local marks in-process outcomes that carry engine stats worth a
	// RunRecord.
	local   bool
	stats   core.Stats
	answers int
}

// Replay issues the configured query stream against one engine over the
// small DBGen instance and prints the percentile table to w. Each solve
// is labeled with its workload query name, so the journal captured
// during a replay can itself be replayed.
func (r *Runner) Replay(opts ReplayOptions, w io.Writer) (*ReplayReport, error) {
	names, skipped, err := replayStream(opts.Source)
	if err != nil {
		return nil, err
	}
	pct := opts.Percent
	if pct <= 0 {
		pct = 10
	}
	in, err := r.dbgen(r.cfg.SFSmall, pct)
	if err != nil {
		return nil, err
	}

	// Resolve and translate every distinct name once, up front, so a
	// typo fails the replay before any load is generated.
	type plan struct {
		name string
		sql  string
		tr   *sqlparse.Translation
	}
	plans := map[string]*plan{}
	var resolved []string
	for _, name := range names {
		if _, ok := plans[name]; ok {
			resolved = append(resolved, name)
			continue
		}
		q, err := tpch.QueryByName(name)
		if err != nil {
			skipped++
			continue
		}
		tr, err := q.Translate()
		if err != nil {
			return nil, fmt.Errorf("bench: replay query %s: %w", name, err)
		}
		plans[name] = &plan{name: name, sql: q.SQL, tr: tr}
		resolved = append(resolved, name)
	}
	if len(resolved) == 0 {
		return nil, errors.New("bench: replay stream contains no known workload queries")
	}

	// Build the executor: an in-process engine, or an HTTP client plus
	// a local reference digest per distinct query for drift detection.
	var exec func(p *plan) replayOutcome
	if opts.Target == "" {
		eng, err := r.engine(in)
		if err != nil {
			return nil, err
		}
		exec = func(p *plan) replayOutcome {
			ctx := obsv.WithQueryLabel(r.ctx(), p.name)
			res, qerr := eng.RangeAnswersContext(ctx, p.tr.Aggs[0].Query)
			switch {
			case timedOut(qerr):
				return replayOutcome{err: qerr, timeout: true}
			case qerr != nil:
				return replayOutcome{err: qerr}
			}
			return replayOutcome{local: true, stats: res.Stats, answers: len(res.Answers)}
		}
	} else {
		// The server must have attached the byte-identical instance
		// (cavsatd -dbgen with the same sf/inconsistency/seed); any
		// divergence shows up as drift, never as silence.
		sys, err := aggcavsat.Open(in, aggcavsat.Options{
			Parallelism: r.cfg.Parallelism,
			Timeout:     r.cfg.Timeout,
		})
		if err != nil {
			return nil, err
		}
		expected := make(map[string]string, len(plans))
		for name, p := range plans {
			res, err := sys.Query(p.sql)
			if err != nil {
				return nil, fmt.Errorf("bench: replay reference %s: %w", name, err)
			}
			expected[name] = server.BuildResponse(res).Digest
		}
		client := server.NewClient(opts.Target)
		exec = func(p *plan) replayOutcome {
			resp, qerr := client.Query(r.ctx(), &server.QueryRequest{
				Instance: opts.Instance,
				SQL:      p.sql,
				Label:    p.name,
			})
			if qerr != nil {
				var re *server.RemoteError
				if errors.As(qerr, &re) {
					switch {
					case re.Overloaded():
						return replayOutcome{err: qerr, shed: true}
					case re.Timeout():
						return replayOutcome{err: qerr, timeout: true}
					}
				}
				return replayOutcome{err: qerr}
			}
			return replayOutcome{
				answers: len(resp.Rows),
				drift:   resp.Digest != expected[p.name],
				traceID: resp.TraceID,
			}
		}
	}
	n := opts.N
	if n <= 0 {
		n = len(resolved)
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 4
	}

	rep := &ReplayReport{Skipped: skipped}
	overall := obsv.NewSummary(0, nil)
	perName := map[string]*replayAgg{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	r.setExperiment("replay")
	start := time.Now()
	for i := 0; i < n; i++ {
		p := plans[resolved[i%len(resolved)]]
		sched := time.Now()
		if opts.QPS > 0 {
			target := start.Add(time.Duration(float64(i) / opts.QPS * float64(time.Second)))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
			sched = target
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(p *plan, sched time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			out := exec(p)
			lat := time.Since(sched)
			mu.Lock()
			defer mu.Unlock()
			agg, ok := perName[p.name]
			if !ok {
				agg = &replayAgg{sum: obsv.NewSummary(0, nil)}
				perName[p.name] = agg
			}
			agg.issued++
			rep.Issued++
			agg.sum.Observe(lat.Seconds())
			overall.Observe(lat.Seconds())
			switch {
			case out.shed:
				agg.shed++
				rep.Shed++
			case out.timeout:
				agg.timeouts++
				rep.Timeouts++
				r.record(p.name, queryResult{timeout: true, total: lat})
			case out.err != nil:
				agg.errors++
				rep.Errors++
			default:
				if out.drift {
					agg.drift++
					rep.Drift++
					if out.traceID != "" && len(agg.driftTraces) < driftTraceCap {
						agg.driftTraces = append(agg.driftTraces, out.traceID)
					}
					if out.traceID != "" && len(rep.DriftTraces) < 2*driftTraceCap {
						rep.DriftTraces = append(rep.DriftTraces, out.traceID)
					}
				}
				if out.local {
					r.record(p.name, queryResult{stats: out.stats, total: lat, answers: out.answers})
				}
			}
		}(p, sched)
	}
	wg.Wait()

	rep.Overall = overall.Snapshot()
	var order []string
	for name := range perName {
		order = append(order, name)
	}
	sort.Strings(order)
	for _, name := range order {
		agg := perName[name]
		rep.PerQuery = append(rep.PerQuery, ReplayQueryStats{
			Name:        name,
			Issued:      agg.issued,
			Errors:      agg.errors,
			Timeouts:    agg.timeouts,
			Shed:        agg.shed,
			Drift:       agg.drift,
			DriftTraces: agg.driftTraces,
			Latency:     agg.sum.Snapshot(),
		})
	}
	if w != nil {
		rep.table(opts, r.cfg.SFSmall, pct).Fprint(w)
	}
	return rep, nil
}

// table renders the replay outcome in the suite's aligned-table format.
// Target-mode replays grow shed and drift columns.
func (rep *ReplayReport) table(opts ReplayOptions, sf, pct float64) *Table {
	rate := "closed loop"
	if opts.QPS > 0 {
		rate = fmt.Sprintf("%g qps", opts.QPS)
	}
	title := fmt.Sprintf("Replay — %d queries, %s, sf=%g, %g%% inconsistency",
		rep.Issued, rate, sf, pct)
	remote := opts.Target != ""
	if remote {
		title += fmt.Sprintf(", target %s", opts.Target)
	}
	t := &Table{
		Title:  title,
		Header: []string{"query", "n", "err", "t/o", "p50 ms", "p90 ms", "p99 ms", "max ms"},
	}
	if remote {
		t.Header = append(t.Header, "shed", "drift")
	}
	row := func(name string, q ReplayQueryStats, s obsv.SummarySnapshot) {
		cells := []string{
			name,
			fmt.Sprintf("%d", q.Issued),
			fmt.Sprintf("%d", q.Errors),
			fmt.Sprintf("%d", q.Timeouts),
			msQuantile(s.P50), msQuantile(s.P90), msQuantile(s.P99), msQuantile(s.Max),
		}
		if remote {
			cells = append(cells, fmt.Sprintf("%d", q.Shed), fmt.Sprintf("%d", q.Drift))
		}
		t.Rows = append(t.Rows, cells)
	}
	for _, q := range rep.PerQuery {
		row(q.Name, q, q.Latency)
	}
	row("all", ReplayQueryStats{
		Issued: rep.Issued, Errors: rep.Errors, Timeouts: rep.Timeouts,
		Shed: rep.Shed, Drift: rep.Drift,
	}, rep.Overall)
	return t
}

// msQuantile renders a seconds-valued quantile in milliseconds.
func msQuantile(sec float64) string {
	return fmt.Sprintf("%.1f", sec*1000)
}

// replayStream reads the replay source into a sequence of workload
// query names. An empty source yields the built-in mixed workload; a
// file whose first line decodes as a journal entry is replayed by its
// Query labels; anything else is a spec file of names.
func replayStream(source string) (names []string, skipped int, err error) {
	if source == "" {
		// Interleave scalar and grouped queries so the mixed stream
		// alternates cheap and expensive solves.
		sc, gr := tpch.ScalarQueries(), tpch.GroupedQueries()
		for i := 0; i < len(sc) || i < len(gr); i++ {
			if i < len(sc) {
				names = append(names, sc[i].Name)
			}
			if i < len(gr) {
				names = append(names, gr[i].Name)
			}
		}
		return names, 0, nil
	}
	f, err := os.Open(source)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	head := make([]byte, 1)
	if _, err := io.ReadFull(f, head); err != nil {
		return nil, 0, fmt.Errorf("bench: replay source %s is empty", source)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	if head[0] == '{' {
		entries, err := obsv.ReadJournal(f)
		if err != nil {
			return nil, 0, fmt.Errorf("bench: replay journal %s: %w", source, err)
		}
		for _, e := range entries {
			if e.Query == "" {
				skipped++
				continue
			}
			names = append(names, e.Query)
		}
		return names, skipped, nil
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names = append(names, line)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return names, skipped, nil
}
