package bench

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"aggcavsat/internal/obsv"
	"aggcavsat/internal/sqlparse"
	"aggcavsat/internal/tpch"
)

// ReplayOptions configures a load replay (the aggbench -replay mode):
// a mixed stream of workload queries is issued against one engine at a
// target arrival rate, every solve emits a journal line (when
// Config.Journal is set), and the latencies are summarized into
// per-query and overall percentile tables.
type ReplayOptions struct {
	// Source names the query stream: empty for the built-in mixed
	// workload (scalar and grouped paper queries interleaved), or a path
	// to either a query journal (JSON lines; the Query labels are
	// replayed) or a plain spec file (one workload query name per line,
	// '#' comments; repeat a name to weight it).
	Source string
	// N is the number of queries to issue; the stream is cycled or
	// truncated to it. 0 issues each stream entry once.
	N int
	// QPS is the open-loop target arrival rate. Latency is measured from
	// each query's *scheduled* issue time, so queueing delay behind a
	// slow solve is charged to the laggards (no coordinated omission).
	// 0 runs closed-loop: each worker issues as fast as it completes.
	QPS float64
	// Concurrency bounds the in-flight queries (default 4).
	Concurrency int
	// Percent is the injected inconsistency of the replayed instance
	// (default 10, the Figure 1 setting).
	Percent float64
}

// ReplayQueryStats is the latency profile of one workload query within
// a replay.
type ReplayQueryStats struct {
	Name     string               `json:"name"`
	Issued   int                  `json:"issued"`
	Errors   int                  `json:"errors"`
	Timeouts int                  `json:"timeouts"`
	Latency  obsv.SummarySnapshot `json:"latency"`
}

// ReplayReport is the outcome of one load replay.
type ReplayReport struct {
	Issued   int `json:"issued"`
	Errors   int `json:"errors"`
	Timeouts int `json:"timeouts"`
	// Skipped counts stream entries naming no known workload query
	// (journal lines from ad-hoc SQL, comments that parse as names, …).
	Skipped  int                  `json:"skipped"`
	Overall  obsv.SummarySnapshot `json:"overall"`
	PerQuery []ReplayQueryStats   `json:"per_query"`
}

// replayAgg accumulates one query name's outcomes during the run.
type replayAgg struct {
	sum      *obsv.Summary
	issued   int
	errors   int
	timeouts int
}

// Replay issues the configured query stream against one engine over the
// small DBGen instance and prints the percentile table to w. Each solve
// is labeled with its workload query name, so the journal captured
// during a replay can itself be replayed.
func (r *Runner) Replay(opts ReplayOptions, w io.Writer) (*ReplayReport, error) {
	names, skipped, err := replayStream(opts.Source)
	if err != nil {
		return nil, err
	}
	pct := opts.Percent
	if pct <= 0 {
		pct = 10
	}
	in, err := r.dbgen(r.cfg.SFSmall, pct)
	if err != nil {
		return nil, err
	}
	eng, err := r.engine(in)
	if err != nil {
		return nil, err
	}

	// Resolve and translate every distinct name once, up front, so a
	// typo fails the replay before any load is generated.
	type plan struct {
		name string
		tr   *sqlparse.Translation
	}
	plans := map[string]*plan{}
	var resolved []string
	for _, name := range names {
		if _, ok := plans[name]; ok {
			resolved = append(resolved, name)
			continue
		}
		q, err := tpch.QueryByName(name)
		if err != nil {
			skipped++
			continue
		}
		tr, err := q.Translate()
		if err != nil {
			return nil, fmt.Errorf("bench: replay query %s: %w", name, err)
		}
		plans[name] = &plan{name: name, tr: tr}
		resolved = append(resolved, name)
	}
	if len(resolved) == 0 {
		return nil, errors.New("bench: replay stream contains no known workload queries")
	}
	n := opts.N
	if n <= 0 {
		n = len(resolved)
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 4
	}

	rep := &ReplayReport{Skipped: skipped}
	overall := obsv.NewSummary(0, nil)
	perName := map[string]*replayAgg{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	r.setExperiment("replay")
	start := time.Now()
	for i := 0; i < n; i++ {
		p := plans[resolved[i%len(resolved)]]
		sched := time.Now()
		if opts.QPS > 0 {
			target := start.Add(time.Duration(float64(i) / opts.QPS * float64(time.Second)))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
			sched = target
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(p *plan, sched time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			ctx := obsv.WithQueryLabel(r.ctx(), p.name)
			res, qerr := eng.RangeAnswersContext(ctx, p.tr.Aggs[0].Query)
			lat := time.Since(sched)
			mu.Lock()
			defer mu.Unlock()
			agg, ok := perName[p.name]
			if !ok {
				agg = &replayAgg{sum: obsv.NewSummary(0, nil)}
				perName[p.name] = agg
			}
			agg.issued++
			rep.Issued++
			agg.sum.Observe(lat.Seconds())
			overall.Observe(lat.Seconds())
			switch {
			case timedOut(qerr):
				agg.timeouts++
				rep.Timeouts++
				r.record(p.name, queryResult{timeout: true, total: lat})
			case qerr != nil:
				agg.errors++
				rep.Errors++
			default:
				r.record(p.name, queryResult{stats: res.Stats, total: lat, answers: len(res.Answers)})
			}
		}(p, sched)
	}
	wg.Wait()

	rep.Overall = overall.Snapshot()
	var order []string
	for name := range perName {
		order = append(order, name)
	}
	sort.Strings(order)
	for _, name := range order {
		agg := perName[name]
		rep.PerQuery = append(rep.PerQuery, ReplayQueryStats{
			Name:     name,
			Issued:   agg.issued,
			Errors:   agg.errors,
			Timeouts: agg.timeouts,
			Latency:  agg.sum.Snapshot(),
		})
	}
	if w != nil {
		rep.table(opts, r.cfg.SFSmall, pct).Fprint(w)
	}
	return rep, nil
}

// table renders the replay outcome in the suite's aligned-table format.
func (rep *ReplayReport) table(opts ReplayOptions, sf, pct float64) *Table {
	rate := "closed loop"
	if opts.QPS > 0 {
		rate = fmt.Sprintf("%g qps", opts.QPS)
	}
	t := &Table{
		Title: fmt.Sprintf("Replay — %d queries, %s, sf=%g, %g%% inconsistency",
			rep.Issued, rate, sf, pct),
		Header: []string{"query", "n", "err", "t/o", "p50 ms", "p90 ms", "p99 ms", "max ms"},
	}
	row := func(name string, issued, errs, tos int, s obsv.SummarySnapshot) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", issued),
			fmt.Sprintf("%d", errs),
			fmt.Sprintf("%d", tos),
			msQuantile(s.P50), msQuantile(s.P90), msQuantile(s.P99), msQuantile(s.Max),
		})
	}
	for _, q := range rep.PerQuery {
		row(q.Name, q.Issued, q.Errors, q.Timeouts, q.Latency)
	}
	row("all", rep.Issued, rep.Errors, rep.Timeouts, rep.Overall)
	return t
}

// msQuantile renders a seconds-valued quantile in milliseconds.
func msQuantile(sec float64) string {
	return fmt.Sprintf("%.1f", sec*1000)
}

// replayStream reads the replay source into a sequence of workload
// query names. An empty source yields the built-in mixed workload; a
// file whose first line decodes as a journal entry is replayed by its
// Query labels; anything else is a spec file of names.
func replayStream(source string) (names []string, skipped int, err error) {
	if source == "" {
		// Interleave scalar and grouped queries so the mixed stream
		// alternates cheap and expensive solves.
		sc, gr := tpch.ScalarQueries(), tpch.GroupedQueries()
		for i := 0; i < len(sc) || i < len(gr); i++ {
			if i < len(sc) {
				names = append(names, sc[i].Name)
			}
			if i < len(gr) {
				names = append(names, gr[i].Name)
			}
		}
		return names, 0, nil
	}
	f, err := os.Open(source)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	head := make([]byte, 1)
	if _, err := io.ReadFull(f, head); err != nil {
		return nil, 0, fmt.Errorf("bench: replay source %s is empty", source)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	if head[0] == '{' {
		entries, err := obsv.ReadJournal(f)
		if err != nil {
			return nil, 0, fmt.Errorf("bench: replay journal %s: %w", source, err)
		}
		for _, e := range entries {
			if e.Query == "" {
				skipped++
				continue
			}
			names = append(names, e.Query)
		}
		return names, skipped, nil
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names = append(names, line)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return names, skipped, nil
}
