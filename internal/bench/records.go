package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"aggcavsat/internal/core"
)

// RunRecord is one benchmark measurement in machine-readable form: the
// per-phase breakdown (witness enumeration, constraint preprocessing,
// CNF encoding, MaxSAT solving) plus SAT statistics for one
// (experiment, setting, query) run. WriteRecords emits the records as
// BENCH_<experiment>.json files, so plots and regression checks can
// consume the same numbers the text tables render.
type RunRecord struct {
	// Experiment is the table/figure identifier ("fig1", "table3ab", …).
	Experiment string `json:"experiment"`
	// Setting disambiguates sweep points within an experiment, e.g.
	// "pct=15", "sf=0.003", "inst=2", "alg=rc2". Empty when the
	// experiment has a single setting.
	Setting string `json:"setting,omitempty"`
	Query   string `json:"query"`

	WitnessMS    float64 `json:"witness_ms"`
	ConstraintMS float64 `json:"constraint_ms"`
	EncodeMS     float64 `json:"encode_ms"`
	SolveMS      float64 `json:"solve_ms"`
	TotalMS      float64 `json:"total_ms"`

	SATCalls   int64 `json:"sat_calls"`
	MaxSATRuns int   `json:"maxsat_runs"`
	Vars       int   `json:"cnf_vars"`
	Clauses    int   `json:"cnf_clauses"`
	Answers    int   `json:"answers"`
	Timeout    bool  `json:"timeout"`

	// Per-phase memory accounting (runtime/metrics deltas around each
	// phase; process-global, so concurrent phases may double-count —
	// see core.Stats). heap_bytes is the live heap after the last phase.
	WitnessAllocBytes int64 `json:"witness_alloc_bytes,omitempty"`
	EncodeAllocBytes  int64 `json:"encode_alloc_bytes,omitempty"`
	SolveAllocBytes   int64 `json:"solve_alloc_bytes,omitempty"`
	HeapBytes         int64 `json:"heap_bytes,omitempty"`
	GCCycles          int64 `json:"gc_cycles,omitempty"`
}

// WithContext sets the context used for every engine call, so a caller
// can install an obsv.Tracer and capture a Chrome trace of a whole
// benchmark run. Returns r for chaining.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	r.runCtx = ctx
	return r
}

func (r *Runner) ctx() context.Context {
	if r.runCtx != nil {
		return r.runCtx
	}
	return context.Background()
}

// setExperiment switches the labels stamped on subsequent records.
func (r *Runner) setExperiment(name string) {
	r.curExp = name
	r.curSetting = ""
}

// record appends one measurement under the current experiment labels.
func (r *Runner) record(query string, res queryResult) {
	r.records = append(r.records, RunRecord{
		Experiment:   r.curExp,
		Setting:      r.curSetting,
		Query:        query,
		WitnessMS:    msf(res.stats.WitnessTime),
		ConstraintMS: msf(res.stats.ConstraintTime),
		EncodeMS:     msf(res.stats.EncodeTime),
		SolveMS:      msf(res.stats.SolveTime),
		TotalMS:      msf(res.total),
		SATCalls:     res.stats.SATCalls,
		MaxSATRuns:   res.stats.MaxSATRuns,
		Vars:         res.stats.MaxVars,
		Clauses:      res.stats.MaxClauses,
		Answers:      res.answers,
		Timeout:      res.timeout,

		WitnessAllocBytes: res.stats.WitnessAllocBytes,
		EncodeAllocBytes:  res.stats.EncodeAllocBytes,
		SolveAllocBytes:   res.stats.SolveAllocBytes,
		HeapBytes:         res.stats.HeapBytes,
		GCCycles:          res.stats.GCCycles,
	})
}

// recordStats is record for call sites that time an engine call inline
// instead of going through runQuery.
func (r *Runner) recordStats(query string, st core.Stats, total time.Duration, answers int) {
	r.record(query, queryResult{stats: st, total: total, answers: answers})
}

// Records returns every measurement captured so far, in run order.
func (r *Runner) Records() []RunRecord {
	return r.records
}

// WriteRecords writes the captured measurements into dir, one
// BENCH_<experiment>.json per experiment (a JSON array of RunRecord),
// in the order the experiments ran.
func (r *Runner) WriteRecords(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	byExp := map[string][]RunRecord{}
	var order []string
	for _, rec := range r.records {
		name := rec.Experiment
		if name == "" {
			name = "adhoc"
		}
		if _, ok := byExp[name]; !ok {
			order = append(order, name)
		}
		byExp[name] = append(byExp[name], rec)
	}
	for _, name := range order {
		data, err := json.MarshalIndent(byExp[name], "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", name))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// msf renders a duration in milliseconds with microsecond resolution,
// matching the text tables' ms() formatting.
func msf(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
