package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"aggcavsat/internal/obsv"
)

func TestRecordsCapturedAndWritten(t *testing.T) {
	r := NewRunner(tinyConfig())
	if _, err := r.experimentByName("fig1"); err != nil {
		t.Fatal(err)
	}
	recs := r.Records()
	if len(recs) != 9 {
		t.Fatalf("records = %d, want 9 (one per scalar query)", len(recs))
	}
	for _, rec := range recs {
		if rec.Experiment != "fig1" {
			t.Errorf("%s: experiment = %q, want fig1", rec.Query, rec.Experiment)
		}
		if rec.Query == "" {
			t.Error("record with empty query name")
		}
		if rec.Timeout {
			continue
		}
		if rec.TotalMS <= 0 {
			t.Errorf("%s: total_ms = %g, want > 0", rec.Query, rec.TotalMS)
		}
		if rec.WitnessMS < 0 || rec.EncodeMS < 0 || rec.SolveMS < 0 || rec.ConstraintMS < 0 {
			t.Errorf("%s: negative phase duration: %+v", rec.Query, rec)
		}
	}
	// At least one query must actually reach the solver.
	solved := false
	for _, rec := range recs {
		if rec.SATCalls > 0 && rec.SolveMS > 0 {
			solved = true
		}
	}
	if !solved {
		t.Error("no record shows SAT activity")
	}

	dir := t.TempDir()
	if err := r.WriteRecords(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_fig1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var parsed []RunRecord
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(recs) {
		t.Fatalf("round-trip records = %d, want %d", len(parsed), len(recs))
	}
}

func TestRecordsSweepSettings(t *testing.T) {
	r := NewRunner(tinyConfig())
	if _, err := r.experimentByName("table3ab"); err != nil {
		t.Fatal(err)
	}
	settings := map[string]bool{}
	for _, rec := range r.Records() {
		settings[rec.Setting] = true
	}
	for _, want := range []string{"pct=5", "pct=15", "pct=25", "pct=35"} {
		if !settings[want] {
			t.Errorf("missing sweep setting %q (got %v)", want, settings)
		}
	}
}

func TestRunnerTraceCapture(t *testing.T) {
	tr := obsv.NewTracer()
	r := NewRunner(tinyConfig()).WithContext(obsv.WithTracer(context.Background(), tr))
	if _, err := r.Ablation(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("no spans captured through the runner context")
	}
	if open := tr.Open(); open != 0 {
		t.Fatalf("unbalanced trace: %d spans still open", open)
	}
}
