// Package bench regenerates every table and figure of the paper's
// evaluation section (Section VI) on the scaled-down substrate:
//
//	Figure 1/5: AggCAvSAT vs ConQuer, scalar/grouped queries, DBGen 10 %
//	Figure 2/6: AggCAvSAT vs ConQuer on the PDBench instances
//	Figure 3/7: inconsistency sweep 5–35 % (+ SAT calls for grouped)
//	Figure 4/8: database size sweep (+ SAT calls for grouped)
//	Table II:   PDBench instance profiles
//	Table III:  CNF sizes per inconsistency (a/b) and size (c/d)
//	Table IV:   the Medigap schema/constraint profile
//	Figure 9:   Medigap queries under Reduction V.1
//
// The paper's nominal database sizes map to scale factors
// (Config.SFSmall/SFMedium/SFLarge ≈ "1 GB"/"3 GB"/"5 GB"); absolute
// times differ from the paper's SQL-Server-plus-MaxHS testbed, but the
// shapes — encode vs solve split, who beats ConQuer where, linear CNF
// growth, degradation above 30 % inconsistency — are preserved.
package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"aggcavsat/internal/conquer"
	"aggcavsat/internal/constraints"
	"aggcavsat/internal/core"
	"aggcavsat/internal/db"
	"aggcavsat/internal/maxsat"
	"aggcavsat/internal/medigap"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/pdbench"
	"aggcavsat/internal/planner"
	"aggcavsat/internal/sqlparse"
	"aggcavsat/internal/tpch"
)

// Config calibrates the experiments.
type Config struct {
	// Scale factors standing in for the paper's 1/3/5 GB repair sizes.
	SFSmall, SFMedium, SFLarge float64
	// MedigapScale relative to the real 61 K-tuple dataset.
	MedigapScale float64
	Seed         uint64
	Solver       maxsat.Options
	// Parallelism is the engine worker-pool size (0 = GOMAXPROCS,
	// 1 = sequential). Results are identical at every setting.
	Parallelism int
	// Timeout is a per-query wall-clock bound; like the conflict budget,
	// an expiry is reported as "t/o" rather than stalling the suite. The
	// paper's own evaluation uses wall-clock timeouts. 0 means none.
	Timeout time.Duration
	// Metrics, when non-nil, accumulates every engine call's metrics into
	// a session-wide registry, so a live debug endpoint (obsv.Serve) can
	// expose the suite's progress while it runs.
	Metrics *obsv.Registry
	// SlowQuery and OnAnomaly enable the per-query flight recorder on
	// every engine the suite builds: queries that time out, fail, or run
	// longer than SlowQuery deliver a dump bundle to OnAnomaly.
	SlowQuery time.Duration
	OnAnomaly func(*obsv.Bundle)
	// Journal, when non-nil, receives one wide-event line per engine call
	// (the aggbench -journal flag); each line is labeled with the
	// workload query's paper name, so a captured journal doubles as a
	// replay spec.
	Journal *obsv.Journal
	// DisableIncremental runs every engine on the legacy solve path
	// (fresh solver per MaxSAT run, no shared hard-clause bases); the
	// pr3 experiment ignores it and always measures both paths.
	DisableIncremental bool
	// DisableFrontendOpt runs every engine on the legacy relational
	// front end (interpreted evaluation, string-keyed grouping, generic
	// violations); the pr4 experiment ignores it and always measures
	// both front ends.
	DisableFrontendOpt bool
	// Planner is the routing policy for every engine the suite builds.
	// The default (force-sat, the zero value) keeps the paper tables
	// measuring the WPMaxSAT pipeline; the pr8 experiment measures auto
	// vs force-sat regardless of this setting.
	Planner planner.Mode
}

// DefaultConfig returns the calibration used by EXPERIMENTS.md. The
// solver budgets bound each query: a handful of (instance, query)
// pairs in the hardest settings (PDBench instance 4, 35 %
// inconsistency) hit combinatorial blow-ups — exactly where the paper
// reports its own solver struggling — and are reported as "t/o"
// rather than stalling the suite.
func DefaultConfig() Config {
	return Config{
		SFSmall:      0.001,
		SFMedium:     0.003,
		SFLarge:      0.005,
		MedigapScale: 0.25,
		Seed:         2022,
		Solver: maxsat.Options{
			ConflictBudget: 400_000,
			HSNodeBudget:   2_000_000,
		},
	}
}

// timedOut reports whether a query failed only because a solver budget
// or the wall-clock timeout ran out (the typed sentinels of
// internal/core), as opposed to a real error.
func timedOut(err error) bool {
	return errors.Is(err, core.ErrBudget) || errors.Is(err, core.ErrTimeout)
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Runner memoizes generated instances across experiments and captures
// a RunRecord per measurement (WriteRecords).
type Runner struct {
	cfg Config

	dbgenCache   map[string]*db.Instance
	pdbenchCache map[int]*db.Instance
	pdbenchProf  map[int]pdbench.Profile
	medigapInst  *db.Instance
	medigapDCs   []constraints.DC

	// runCtx, when set via WithContext, carries an obsv.Tracer into
	// every engine call.
	runCtx context.Context

	// curExp/curSetting label the records appended by runQuery; the
	// experiment drivers keep them current.
	curExp     string
	curSetting string
	records    []RunRecord
}

// NewRunner creates a runner for the configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		cfg:          cfg,
		dbgenCache:   map[string]*db.Instance{},
		pdbenchCache: map[int]*db.Instance{},
		pdbenchProf:  map[int]pdbench.Profile{},
	}
}

// dbgen returns the DBGen-style instance at the scale factor and target
// inconsistency.
func (r *Runner) dbgen(sf, pct float64) (*db.Instance, error) {
	key := fmt.Sprintf("%g|%g", sf, pct)
	if in, ok := r.dbgenCache[key]; ok {
		return in, nil
	}
	in, err := tpch.DemoInstance(sf, pct, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	r.dbgenCache[key] = in
	return in, nil
}

func (r *Runner) pdbench(inst int) (*db.Instance, pdbench.Profile, error) {
	if in, ok := r.pdbenchCache[inst]; ok {
		return in, r.pdbenchProf[inst], nil
	}
	in, prof, err := pdbench.Generate(r.cfg.SFSmall, inst, r.cfg.Seed)
	if err != nil {
		return nil, prof, err
	}
	r.pdbenchCache[inst] = in
	r.pdbenchProf[inst] = prof
	return in, prof, nil
}

func (r *Runner) medigap() (*db.Instance, []constraints.DC, error) {
	if r.medigapInst != nil {
		return r.medigapInst, r.medigapDCs, nil
	}
	in, err := medigap.Generate(r.cfg.MedigapScale, r.cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	dcs, err := medigap.Constraints(in.Schema())
	if err != nil {
		return nil, nil, err
	}
	r.medigapInst = in
	r.medigapDCs = dcs
	return in, dcs, nil
}

// queryResult is one AggCAvSAT measurement.
type queryResult struct {
	stats   core.Stats
	total   time.Duration
	answers int
	timeout bool
}

// runQuery executes one workload query on an engine and appends a
// RunRecord under the runner's current experiment labels. timedOut=true
// means a solver budget ran out (reported as "t/o" in the tables).
func (r *Runner) runQuery(eng *core.Engine, q tpch.Query) (queryResult, error) {
	tr, err := q.Translate()
	if err != nil {
		return queryResult{}, err
	}
	start := time.Now()
	rep, err := eng.RangeAnswersContext(obsv.WithQueryLabel(r.ctx(), q.Name), tr.Aggs[0].Query)
	if timedOut(err) {
		res := queryResult{timeout: true, total: time.Since(start)}
		r.record(q.Name, res)
		return res, nil
	}
	if err != nil {
		return queryResult{}, err
	}
	res := queryResult{stats: rep.Stats, total: time.Since(start), answers: len(rep.Answers)}
	r.record(q.Name, res)
	return res, nil
}

// runConquer times the rewriting baseline; supported=false mirrors the
// paper's "not in C_aggforest" entries.
func runConquer(in *db.Instance, q tpch.Query) (time.Duration, bool, error) {
	tr, err := q.Translate()
	if err != nil {
		return 0, false, err
	}
	b := conquer.New(in)
	start := time.Now()
	_, err = b.RangeAnswers(tr.Aggs[0].Query)
	if errors.Is(err, conquer.ErrNotInClass) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return time.Since(start), true, nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

func (r *Runner) engine(in *db.Instance) (*core.Engine, error) {
	return core.New(in, core.Options{
		Mode:               core.KeysMode,
		MaxSAT:             r.cfg.Solver,
		Parallelism:        r.cfg.Parallelism,
		Timeout:            r.cfg.Timeout,
		Metrics:            r.cfg.Metrics,
		SlowQuery:          r.cfg.SlowQuery,
		OnAnomaly:          r.cfg.OnAnomaly,
		Journal:            r.cfg.Journal,
		DisableIncremental: r.cfg.DisableIncremental,
		DisableFrontendOpt: r.cfg.DisableFrontendOpt,
		Planner:            r.cfg.Planner,
	})
}

// versusConQuer is the shared shape of Figures 1, 2, 5 and 6.
func (r *Runner) versusConQuer(title string, in *db.Instance, queries []tpch.Query) (*Table, error) {
	eng, err := r.engine(in)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  title,
		Header: []string{"query", "witness_ms", "encode_ms", "solve_ms", "aggcavsat_ms", "conquer_ms", "groups"},
	}
	for _, q := range queries {
		res, err := r.runQuery(eng, q)
		if err != nil {
			return nil, err
		}
		cqTime, supported, err := runConquer(in, q)
		if err != nil {
			return nil, err
		}
		conquerCell := "not in C_aggforest"
		if supported {
			conquerCell = ms(cqTime)
		}
		t.Rows = append(t.Rows, []string{
			q.Name,
			ms(res.stats.WitnessTime),
			ms(res.stats.ConstraintTime + res.stats.EncodeTime),
			ms(res.stats.SolveTime),
			totalCell(res),
			conquerCell,
			fmt.Sprintf("%d", res.answers),
		})
	}
	return t, nil
}

// totalCell renders a query total, or "t/o" when a budget ran out.
func totalCell(res queryResult) string {
	if res.timeout {
		return "t/o"
	}
	return ms(res.total)
}

// Figure1 compares scalar queries against ConQuer on DBGen data with
// 10 % inconsistency at the small ("1 GB") scale.
func (r *Runner) Figure1() (*Table, error) {
	in, err := r.dbgen(r.cfg.SFSmall, 10)
	if err != nil {
		return nil, err
	}
	return r.versusConQuer(
		fmt.Sprintf("Figure 1 — scalar queries, DBGen 10%%, sf=%g", r.cfg.SFSmall),
		in, tpch.ScalarQueries())
}

// Figure5 is Figure 1 for the grouped queries.
func (r *Runner) Figure5() (*Table, error) {
	in, err := r.dbgen(r.cfg.SFSmall, 10)
	if err != nil {
		return nil, err
	}
	return r.versusConQuer(
		fmt.Sprintf("Figure 5 — grouped queries, DBGen 10%%, sf=%g", r.cfg.SFSmall),
		in, tpch.GroupedQueries())
}

// Figure2 compares scalar queries against ConQuer on the four PDBench
// instances.
func (r *Runner) Figure2() (*Table, error) {
	return r.pdbenchVersus("Figure 2 — scalar queries on PDBench instances 1–4", tpch.ScalarQueries())
}

// Figure6 is Figure 2 for the grouped queries.
func (r *Runner) Figure6() (*Table, error) {
	return r.pdbenchVersus("Figure 6 — grouped queries on PDBench instances 1–4", tpch.GroupedQueries())
}

func (r *Runner) pdbenchVersus(title string, queries []tpch.Query) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"query", "inst1_ms", "inst2_ms", "inst3_ms", "inst4_ms", "conquer1_ms", "conquer4_ms"},
	}
	type cell struct {
		agg [4]string
		cq1 string
		cq4 string
	}
	cells := map[string]*cell{}
	var order []string
	for inst := 1; inst <= 4; inst++ {
		in, _, err := r.pdbench(inst)
		if err != nil {
			return nil, err
		}
		eng, err := r.engine(in)
		if err != nil {
			return nil, err
		}
		r.curSetting = fmt.Sprintf("inst=%d", inst)
		for _, q := range queries {
			c, ok := cells[q.Name]
			if !ok {
				c = &cell{}
				cells[q.Name] = c
				order = append(order, q.Name)
			}
			res, err := r.runQuery(eng, q)
			if err != nil {
				return nil, err
			}
			c.agg[inst-1] = totalCell(res)
			if inst == 1 || inst == 4 {
				cqTime, supported, err := runConquer(in, q)
				if err != nil {
					return nil, err
				}
				val := "n/a"
				if supported {
					val = ms(cqTime)
				}
				if inst == 1 {
					c.cq1 = val
				} else {
					c.cq4 = val
				}
			}
		}
	}
	for _, name := range order {
		c := cells[name]
		t.Rows = append(t.Rows, []string{name, c.agg[0], c.agg[1], c.agg[2], c.agg[3], c.cq1, c.cq4})
	}
	return t, nil
}

// TableII reports the generated PDBench instance profiles next to the
// paper's targets.
func (r *Runner) TableII() (*Table, error) {
	t := &Table{
		Title:  "Table II — PDBench instance profiles (measured %, paper targets in parentheses)",
		Header: []string{"table", "inst1", "inst2", "inst3", "inst4"},
	}
	type rowAcc map[int]string
	rels := []string{"customer", "lineitem", "nation", "orders", "part", "partsupp", "region", "supplier"}
	acc := map[string]rowAcc{}
	overall := rowAcc{}
	largest := rowAcc{}
	for inst := 1; inst <= 4; inst++ {
		in, prof, err := r.pdbench(inst)
		if err != nil {
			return nil, err
		}
		maxGroup := 0
		for _, st := range in.KeyInconsistency() {
			rel := strings.ToLower(st.Rel)
			if acc[rel] == nil {
				acc[rel] = rowAcc{}
			}
			acc[rel][inst] = fmt.Sprintf("%.2f (%.2f)", st.Percent(), prof.PerRelation[rel])
			if st.LargestGroup > maxGroup {
				maxGroup = st.LargestGroup
			}
		}
		overall[inst] = fmt.Sprintf("%.2f (%.2f)", pdbench.MeasuredOverall(in), prof.Overall)
		largest[inst] = fmt.Sprintf("%d (%d)", maxGroup, prof.MaxGroup)
	}
	for _, rel := range rels {
		row := []string{rel}
		for inst := 1; inst <= 4; inst++ {
			row = append(row, acc[rel][inst])
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{"overall", overall[1], overall[2], overall[3], overall[4]})
	t.Rows = append(t.Rows, []string{"max group", largest[1], largest[2], largest[3], largest[4]})
	return t, nil
}

// inconsistencySweep is Figures 3 (scalar) and 7 (grouped, with SAT
// calls).
func (r *Runner) inconsistencySweep(title string, queries []tpch.Query, withCalls bool) (*Table, error) {
	pcts := []float64{5, 15, 25, 35}
	header := []string{"query"}
	for _, p := range pcts {
		header = append(header, fmt.Sprintf("%g%%_ms", p))
	}
	if withCalls {
		for _, p := range pcts {
			header = append(header, fmt.Sprintf("%g%%_satcalls", p))
		}
	}
	t := &Table{Title: title, Header: header}
	rows := map[string][]string{}
	calls := map[string][]string{}
	var order []string
	for _, pct := range pcts {
		in, err := r.dbgen(r.cfg.SFSmall, pct)
		if err != nil {
			return nil, err
		}
		eng, err := r.engine(in)
		if err != nil {
			return nil, err
		}
		r.curSetting = fmt.Sprintf("pct=%g", pct)
		for _, q := range queries {
			res, err := r.runQuery(eng, q)
			if err != nil {
				return nil, err
			}
			if _, ok := rows[q.Name]; !ok {
				order = append(order, q.Name)
			}
			rows[q.Name] = append(rows[q.Name], totalCell(res))
			calls[q.Name] = append(calls[q.Name], fmt.Sprintf("%d", res.stats.SATCalls))
		}
	}
	for _, name := range order {
		row := append([]string{name}, rows[name]...)
		if withCalls {
			row = append(row, calls[name]...)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure3 sweeps inconsistency for the scalar queries.
func (r *Runner) Figure3() (*Table, error) {
	return r.inconsistencySweep(
		fmt.Sprintf("Figure 3 — scalar queries, inconsistency 5–35%%, sf=%g", r.cfg.SFSmall),
		tpch.ScalarQueries(), false)
}

// Figure7 sweeps inconsistency for the grouped queries, reporting the
// number of SAT calls (the paper's second plot, log scale).
func (r *Runner) Figure7() (*Table, error) {
	return r.inconsistencySweep(
		fmt.Sprintf("Figure 7 — grouped queries, inconsistency 5–35%%, sf=%g (+SAT calls)", r.cfg.SFSmall),
		tpch.GroupedQueries(), true)
}

// sizeSweep is Figures 4 (scalar) and 8 (grouped, with SAT calls).
func (r *Runner) sizeSweep(title string, queries []tpch.Query, withCalls bool) (*Table, error) {
	sizes := []struct {
		label string
		sf    float64
	}{
		{"small", r.cfg.SFSmall},
		{"medium", r.cfg.SFMedium},
		{"large", r.cfg.SFLarge},
	}
	header := []string{"query"}
	for _, s := range sizes {
		header = append(header, s.label+"_ms")
	}
	if withCalls {
		for _, s := range sizes {
			header = append(header, s.label+"_satcalls")
		}
	}
	t := &Table{Title: title, Header: header}
	rows := map[string][]string{}
	calls := map[string][]string{}
	var order []string
	for _, size := range sizes {
		in, err := r.dbgen(size.sf, 10)
		if err != nil {
			return nil, err
		}
		eng, err := r.engine(in)
		if err != nil {
			return nil, err
		}
		r.curSetting = fmt.Sprintf("sf=%g", size.sf)
		for _, q := range queries {
			res, err := r.runQuery(eng, q)
			if err != nil {
				return nil, err
			}
			if _, ok := rows[q.Name]; !ok {
				order = append(order, q.Name)
			}
			rows[q.Name] = append(rows[q.Name], totalCell(res))
			calls[q.Name] = append(calls[q.Name], fmt.Sprintf("%d", res.stats.SATCalls))
		}
	}
	for _, name := range order {
		row := append([]string{name}, rows[name]...)
		if withCalls {
			row = append(row, calls[name]...)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure4 sweeps database size for the scalar queries.
func (r *Runner) Figure4() (*Table, error) {
	return r.sizeSweep(
		fmt.Sprintf("Figure 4 — scalar queries, sizes sf=%g/%g/%g, 10%% inconsistency",
			r.cfg.SFSmall, r.cfg.SFMedium, r.cfg.SFLarge),
		tpch.ScalarQueries(), false)
}

// Figure8 sweeps database size for the grouped queries with SAT calls.
func (r *Runner) Figure8() (*Table, error) {
	return r.sizeSweep(
		fmt.Sprintf("Figure 8 — grouped queries, sizes sf=%g/%g/%g, 10%% inconsistency (+SAT calls)",
			r.cfg.SFSmall, r.cfg.SFMedium, r.cfg.SFLarge),
		tpch.GroupedQueries(), true)
}

// cnfQueries are the three queries of Table III (largest formulas).
var cnfQueries = []string{"Q1'", "Q6'", "Q14'"}

// TableIIIab reports CNF sizes per inconsistency level.
func (r *Runner) TableIIIab() (*Table, error) {
	pcts := []float64{5, 15, 25, 35}
	t := &Table{
		Title:  fmt.Sprintf("Table IIIa/b — CNF size vs inconsistency (sf=%g): vars | clauses", r.cfg.SFSmall),
		Header: []string{"query", "5%", "15%", "25%", "35%"},
	}
	rows := map[string][]string{}
	for _, pct := range pcts {
		in, err := r.dbgen(r.cfg.SFSmall, pct)
		if err != nil {
			return nil, err
		}
		eng, err := r.engine(in)
		if err != nil {
			return nil, err
		}
		r.curSetting = fmt.Sprintf("pct=%g", pct)
		for _, name := range cnfQueries {
			q, err := tpch.QueryByName(name)
			if err != nil {
				return nil, err
			}
			res, err := r.runQuery(eng, q)
			if err != nil {
				return nil, err
			}
			rows[name] = append(rows[name],
				fmt.Sprintf("%d | %d", res.stats.Vars, res.stats.Clauses))
		}
	}
	for _, name := range cnfQueries {
		t.Rows = append(t.Rows, append([]string{name}, rows[name]...))
	}
	return t, nil
}

// TableIIIcd reports CNF sizes per database size.
func (r *Runner) TableIIIcd() (*Table, error) {
	sfs := []float64{r.cfg.SFSmall, r.cfg.SFMedium, r.cfg.SFLarge}
	t := &Table{
		Title:  "Table IIIc/d — CNF size vs database size (10% inconsistency): vars | clauses",
		Header: []string{"query", "small", "medium", "large"},
	}
	rows := map[string][]string{}
	for _, sf := range sfs {
		in, err := r.dbgen(sf, 10)
		if err != nil {
			return nil, err
		}
		eng, err := r.engine(in)
		if err != nil {
			return nil, err
		}
		r.curSetting = fmt.Sprintf("sf=%g", sf)
		for _, name := range cnfQueries {
			q, err := tpch.QueryByName(name)
			if err != nil {
				return nil, err
			}
			res, err := r.runQuery(eng, q)
			if err != nil {
				return nil, err
			}
			rows[name] = append(rows[name],
				fmt.Sprintf("%d | %d", res.stats.Vars, res.stats.Clauses))
		}
	}
	for _, name := range cnfQueries {
		t.Rows = append(t.Rows, append([]string{name}, rows[name]...))
	}
	return t, nil
}

// TableIV reports the Medigap schema and constraint profile.
func (r *Runner) TableIV() (*Table, error) {
	in, dcs, err := r.medigap()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Table IV — Medigap profile (scale %g)", r.cfg.MedigapScale),
		Header: []string{"relation", "attributes", "tuples"},
	}
	for _, rs := range in.Schema().Relations() {
		t.Rows = append(t.Rows, []string{rs.Name, fmt.Sprintf("%d", rs.Arity()), fmt.Sprintf("%d", in.RelSize(rs.Name))})
	}
	t.Rows = append(t.Rows, []string{"constraints", fmt.Sprintf("%d DCs", len(dcs)), "2 FDs + 1 DC"})
	return t, nil
}

// Figure9 runs the twelve Medigap queries under Reduction V.1, with the
// paper's encode split (constraint/near-violation time vs witnesses vs
// solving).
func (r *Runner) Figure9() (*Table, error) {
	in, dcs, err := r.medigap()
	if err != nil {
		return nil, err
	}
	eng, err := core.New(in, core.Options{
		Mode:               core.DCMode,
		DCs:                dcs,
		MaxSAT:             r.cfg.Solver,
		Parallelism:        r.cfg.Parallelism,
		Timeout:            r.cfg.Timeout,
		Metrics:            r.cfg.Metrics,
		SlowQuery:          r.cfg.SlowQuery,
		OnAnomaly:          r.cfg.OnAnomaly,
		DisableIncremental: r.cfg.DisableIncremental,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 9 — Medigap queries (denial constraints, Reduction V.1)",
		Header: []string{"query", "violations_ms", "witness_ms", "encode_ms", "solve_ms", "total_ms", "satcalls", "groups"},
	}
	for _, q := range medigap.Queries() {
		tr, err := sqlparse.ParseAndTranslate(q.SQL, in.Schema())
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := eng.RangeAnswersContext(r.ctx(), tr.Aggs[0].Query)
		if err != nil {
			return nil, err
		}
		total := time.Since(start)
		st := rep.Stats
		r.recordStats(q.Name, st, total, len(rep.Answers))
		t.Rows = append(t.Rows, []string{
			q.Name,
			ms(st.ConstraintTime),
			ms(st.WitnessTime),
			ms(st.EncodeTime),
			ms(st.SolveTime),
			ms(total),
			fmt.Sprintf("%d", st.SATCalls),
			fmt.Sprintf("%d", len(rep.Answers)),
		})
	}
	return t, nil
}

// All runs every experiment in paper order.
func (r *Runner) All(w io.Writer) error {
	type exp struct {
		name string
		run  func() (*Table, error)
	}
	experiments := []exp{
		{"fig1", r.Figure1},
		{"fig2", r.Figure2},
		{"table2", r.TableII},
		{"fig3", r.Figure3},
		{"table3ab", r.TableIIIab},
		{"fig4", r.Figure4},
		{"table3cd", r.TableIIIcd},
		{"fig5", r.Figure5},
		{"fig6", r.Figure6},
		{"fig7", r.Figure7},
		{"fig8", r.Figure8},
		{"table4", r.TableIV},
		{"fig9", r.Figure9},
		{"ablation", r.Ablation},
		{"pr3", r.IncrementalCompare},
		{"pr4", r.FrontendCompare},
		{"pr8", r.PlannerCompare},
		{"pr9", r.ColumnarCompare},
	}
	for _, e := range experiments {
		r.setExperiment(e.name)
		start := time.Now()
		table, err := e.run()
		if err != nil {
			return fmt.Errorf("bench: %s: %w", e.name, err)
		}
		table.Fprint(w)
		fmt.Fprintf(w, "(%s finished in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// Experiment dispatches one experiment by name.
func (r *Runner) Experiment(name string, w io.Writer) error {
	table, err := r.experimentByName(name)
	if err != nil {
		return err
	}
	table.Fprint(w)
	return nil
}

func (r *Runner) experimentByName(name string) (*Table, error) {
	name = strings.ToLower(name)
	r.setExperiment(name)
	switch name {
	case "fig1":
		return r.Figure1()
	case "fig2":
		return r.Figure2()
	case "fig3":
		return r.Figure3()
	case "fig4":
		return r.Figure4()
	case "fig5":
		return r.Figure5()
	case "fig6":
		return r.Figure6()
	case "fig7":
		return r.Figure7()
	case "fig8":
		return r.Figure8()
	case "fig9":
		return r.Figure9()
	case "table2":
		return r.TableII()
	case "table3ab":
		return r.TableIIIab()
	case "table3cd":
		return r.TableIIIcd()
	case "table4":
		return r.TableIV()
	case "ablation":
		return r.Ablation()
	case "pr3", "incremental":
		return r.IncrementalCompare()
	case "pr4", "frontend":
		return r.FrontendCompare()
	case "pr8", "planner":
		return r.PlannerCompare()
	case "pr9", "columnar":
		return r.ColumnarCompare()
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q", name)
	}
}

// Names lists the experiment identifiers.
func Names() []string {
	return []string{
		"fig1", "fig2", "table2", "fig3", "table3ab", "fig4", "table3cd",
		"fig5", "fig6", "fig7", "fig8", "table4", "fig9", "ablation", "pr3",
		"pr4", "pr8", "pr9",
	}
}
