package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(exp, setting, query string, totalMS float64) RunRecord {
	return RunRecord{
		Experiment: exp, Setting: setting, Query: query,
		TotalMS: totalMS, SolveMS: totalMS / 2, EncodeMS: totalMS / 4,
		WitnessMS: totalMS / 4, Answers: 1,
	}
}

func TestCompareRecordsFlagsSlowdown(t *testing.T) {
	old := []RunRecord{rec("fig1", "", "Q1", 100)}
	cur := []RunRecord{rec("fig1", "", "Q1", 400)} // 4x and +300ms: over both thresholds
	rep := CompareRecords(old, cur, CompareOptions{})
	if rep.Matched != 1 {
		t.Fatalf("Matched = %d, want 1", rep.Matched)
	}
	if !rep.HasRegressions() {
		t.Fatal("4x slowdown not flagged")
	}
	metrics := map[string]bool{}
	for _, e := range rep.Entries {
		if e.Regression {
			metrics[e.Metric] = true
		}
	}
	if !metrics["total_ms"] {
		t.Errorf("total_ms not flagged; entries: %+v", rep.Entries)
	}
}

func TestCompareRecordsToleratesNoise(t *testing.T) {
	// 1.4x is inside the default 1.5x tolerance.
	rep := CompareRecords(
		[]RunRecord{rec("fig1", "", "Q1", 100)},
		[]RunRecord{rec("fig1", "", "Q1", 140)},
		CompareOptions{})
	if rep.HasRegressions() {
		t.Fatalf("1.4x flagged as regression: %+v", rep.Entries)
	}
	// 10x on a sub-millisecond run is under the absolute floor.
	rep = CompareRecords(
		[]RunRecord{rec("fig1", "", "Q1", 0.5)},
		[]RunRecord{rec("fig1", "", "Q1", 5)},
		CompareOptions{})
	if rep.HasRegressions() {
		t.Fatalf("sub-floor slowdown flagged: %+v", rep.Entries)
	}
}

func TestCompareRecordsAnswersAndTimeouts(t *testing.T) {
	old := rec("fig1", "pct=15", "Q1", 100)
	drifted := old
	drifted.Answers = 2
	rep := CompareRecords([]RunRecord{old}, []RunRecord{drifted}, CompareOptions{})
	if !rep.HasRegressions() {
		t.Fatal("answers drift not flagged")
	}

	timedOut := old
	timedOut.Timeout = true
	rep = CompareRecords([]RunRecord{old}, []RunRecord{timedOut}, CompareOptions{})
	if !rep.HasRegressions() {
		t.Fatal("new timeout not flagged")
	}
	// The reverse direction (a run that stopped timing out) is a note,
	// not a regression.
	rep = CompareRecords([]RunRecord{timedOut}, []RunRecord{old}, CompareOptions{})
	if rep.HasRegressions() {
		t.Fatalf("recovered timeout flagged as regression: %+v", rep.Entries)
	}
	if len(rep.Entries) == 0 {
		t.Fatal("recovered timeout not even noted")
	}
}

func TestCompareRecordsUnmatchedRuns(t *testing.T) {
	rep := CompareRecords(
		[]RunRecord{rec("fig1", "", "Q1", 100), rec("fig1", "", "Q2", 100)},
		[]RunRecord{rec("fig1", "", "Q1", 100), rec("fig1", "", "Q3", 100)},
		CompareOptions{})
	if rep.Matched != 1 || rep.OldOnly != 1 || rep.NewOnly != 1 {
		t.Fatalf("matched/old/new = %d/%d/%d, want 1/1/1",
			rep.Matched, rep.OldOnly, rep.NewOnly)
	}
	if rep.HasRegressions() {
		t.Fatal("unmatched runs flagged as regressions")
	}
}

func TestCompareReportFprint(t *testing.T) {
	rep := CompareRecords(
		[]RunRecord{rec("fig1", "", "Q1", 100)},
		[]RunRecord{rec("fig1", "", "Q1", 400)},
		CompareOptions{})
	var buf bytes.Buffer
	rep.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "total_ms") {
		t.Errorf("report output:\n%s", out)
	}
}

func TestLoadRecordsRoundTrip(t *testing.T) {
	recs := []RunRecord{
		rec("fig1", "pct=15", "Q1", 100),
		{Experiment: "fig1", Query: "Q2", Timeout: true,
			WitnessAllocBytes: 1 << 20, HeapBytes: 2 << 20, GCCycles: 3},
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_fig1.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
	if _, err := LoadRecords(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("LoadRecords on a missing file did not error")
	}
}

// recMem attaches memory columns to a base record.
func recMem(base RunRecord, allocBytes, heapBytes int64) RunRecord {
	base.WitnessAllocBytes = allocBytes
	base.EncodeAllocBytes = allocBytes
	base.SolveAllocBytes = allocBytes
	base.HeapBytes = heapBytes
	return base
}

func TestCompareRecordsFlagsMemoryGrowth(t *testing.T) {
	old := []RunRecord{recMem(rec("fig1", "", "Q1", 100), 32<<20, 64<<20)}
	cur := []RunRecord{recMem(rec("fig1", "", "Q1", 100), 96<<20, 256<<20)} // 3x alloc, 4x heap
	rep := CompareRecords(old, cur, CompareOptions{})
	if !rep.HasRegressions() {
		t.Fatal("3x allocation growth not flagged")
	}
	metrics := map[string]bool{}
	for _, e := range rep.Entries {
		if e.Regression {
			metrics[e.Metric] = true
		}
	}
	for _, want := range []string{"witness_alloc_bytes", "encode_alloc_bytes", "solve_alloc_bytes", "heap_bytes"} {
		if !metrics[want] {
			t.Errorf("%s not flagged; entries: %+v", want, rep.Entries)
		}
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "MiB") {
		t.Errorf("byte metrics not rendered in MiB:\n%s", buf.String())
	}
}

func TestCompareRecordsMemoryNoiseGuards(t *testing.T) {
	// 1.4x growth is inside the default 1.5x tolerance.
	rep := CompareRecords(
		[]RunRecord{recMem(rec("fig1", "", "Q1", 100), 100<<20, 100<<20)},
		[]RunRecord{recMem(rec("fig1", "", "Q1", 100), 140<<20, 140<<20)},
		CompareOptions{})
	if rep.HasRegressions() {
		t.Fatalf("1.4x memory growth flagged: %+v", rep.Entries)
	}
	// 10x growth on a tiny run is under the absolute byte floor.
	rep = CompareRecords(
		[]RunRecord{recMem(rec("fig1", "", "Q1", 100), 1<<16, 1<<16)},
		[]RunRecord{recMem(rec("fig1", "", "Q1", 100), 10<<16, 10<<16)},
		CompareOptions{})
	if rep.HasRegressions() {
		t.Fatalf("sub-floor memory growth flagged: %+v", rep.Entries)
	}
	// A baseline without memory columns (pre-observability BENCH files)
	// never trips the memory check, whatever the new run allocates.
	rep = CompareRecords(
		[]RunRecord{rec("fig1", "", "Q1", 100)},
		[]RunRecord{recMem(rec("fig1", "", "Q1", 100), 1<<30, 1<<30)},
		CompareOptions{})
	if rep.HasRegressions() {
		t.Fatalf("zero baseline treated as infinite growth: %+v", rep.Entries)
	}
	// Shrinking memory is never flagged.
	rep = CompareRecords(
		[]RunRecord{recMem(rec("fig1", "", "Q1", 100), 1<<30, 1<<30)},
		[]RunRecord{recMem(rec("fig1", "", "Q1", 100), 1<<20, 1<<20)},
		CompareOptions{})
	if rep.HasRegressions() {
		t.Fatalf("memory reduction flagged: %+v", rep.Entries)
	}
}

func TestGatingRegressionsExcludeWallClock(t *testing.T) {
	// A pure wall-clock slowdown (4x, well past the floor) is a
	// regression but not a gating one.
	rep := CompareRecords(
		[]RunRecord{rec("fig1", "", "Q1", 100)},
		[]RunRecord{rec("fig1", "", "Q1", 400)},
		CompareOptions{})
	if !rep.HasRegressions() {
		t.Fatal("4x slowdown not flagged at all")
	}
	if g := rep.GatingRegressions(); len(g) != 0 {
		t.Fatalf("wall-clock slowdown gates: %+v", g)
	}
	// Memory growth does gate.
	rep = CompareRecords(
		[]RunRecord{recMem(rec("fig1", "", "Q1", 100), 32<<20, 64<<20)},
		[]RunRecord{recMem(rec("fig1", "", "Q1", 100), 96<<20, 256<<20)},
		CompareOptions{})
	if g := rep.GatingRegressions(); len(g) == 0 {
		t.Fatal("memory growth does not gate")
	}
	// So does answers drift.
	old := rec("fig1", "", "Q1", 100)
	cur := rec("fig1", "", "Q1", 100)
	cur.Answers = old.Answers + 1
	rep = CompareRecords([]RunRecord{old}, []RunRecord{cur}, CompareOptions{})
	if g := rep.GatingRegressions(); len(g) == 0 {
		t.Fatal("answers drift does not gate")
	}
	// And a new timeout.
	cur = rec("fig1", "", "Q1", 100)
	cur.Timeout = true
	rep = CompareRecords([]RunRecord{old}, []RunRecord{cur}, CompareOptions{})
	if g := rep.GatingRegressions(); len(g) == 0 {
		t.Fatal("new timeout does not gate")
	}
}
