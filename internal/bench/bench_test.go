package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps the experiment tests fast.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.SFSmall = 0.0003
	cfg.SFMedium = 0.0005
	cfg.SFLarge = 0.001
	cfg.MedigapScale = 0.05
	return cfg
}

func TestFigure1Shape(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 scalar queries", len(table.Rows))
	}
	// Q5' and Q19' must be outside ConQuer's class, everything else in.
	outside := map[string]bool{"Q5'": true, "Q19'": true}
	for _, row := range table.Rows {
		isOut := row[5] == "not in C_aggforest"
		if isOut != outside[row[0]] {
			t.Errorf("%s: conquer cell %q", row[0], row[5])
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 grouped queries", len(table.Rows))
	}
	for _, row := range table.Rows {
		if row[0] == "Q5" && row[5] != "not in C_aggforest" {
			t.Errorf("Q5 should be outside C_aggforest, got %q", row[5])
		}
	}
}

func TestTableIIShape(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	// 8 relations + overall + max group.
	if len(table.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(table.Rows))
	}
	for _, row := range table.Rows {
		if row[0] == "region" {
			for _, cell := range row[1:] {
				if !strings.HasPrefix(cell, "0.00") {
					t.Errorf("region must stay consistent: %v", row)
				}
			}
		}
	}
}

func TestTableIIIabShape(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.TableIIIab()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want Q1'/Q6'/Q14'", len(table.Rows))
	}
	// CNF sizes must grow with inconsistency (first vs last column).
	for _, row := range table.Rows {
		first := parseVars(t, row[1])
		last := parseVars(t, row[4])
		if last <= first {
			t.Errorf("%s: vars %d at 5%% vs %d at 35%% — expected growth", row[0], first, last)
		}
	}
}

func parseVars(t *testing.T, cell string) int {
	t.Helper()
	var vars, clauses int
	if _, err := sscanf(cell, &vars, &clauses); err != nil {
		t.Fatalf("bad CNF cell %q: %v", cell, err)
	}
	return vars
}

func sscanf(cell string, vars, clauses *int) (int, error) {
	parts := strings.Split(cell, "|")
	if len(parts) != 2 {
		return 0, strconvError(cell)
	}
	v, err := atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, err
	}
	c, err := atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, err
	}
	*vars, *clauses = v, c
	return 2, nil
}

func atoi(s string) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, strconvError(s)
		}
		n = n*10 + int(r-'0')
	}
	return n, nil
}

type strconvError string

func (e strconvError) Error() string { return "cannot parse " + string(e) }

func TestFigure9Shape(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 Medigap queries", len(table.Rows))
	}
	// The constraint (near-violation) column must be equal across all
	// queries — the paper's "this part of the encoding time is equal for
	// all queries" observation (the context is computed once).
	first := table.Rows[0][1]
	for _, row := range table.Rows[1:] {
		if row[1] != first {
			t.Errorf("constraint time differs: %s vs %s", row[1], first)
		}
	}
}

func TestAblationShape(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 || len(table.Header) != 4 {
		t.Fatalf("table shape: %d rows, %d cols", len(table.Rows), len(table.Header))
	}
}

func TestExperimentDispatch(t *testing.T) {
	r := NewRunner(tinyConfig())
	var buf bytes.Buffer
	if err := r.Experiment("table4", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Medigap") {
		t.Error("table4 output missing")
	}
	if err := r.Experiment("nope", &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(Names()) != 18 {
		t.Errorf("Names() = %d entries", len(Names()))
	}
}

func TestTablePrint(t *testing.T) {
	table := &Table{
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
	}
	var buf bytes.Buffer
	table.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "### t") || !strings.Contains(out, "xxx  y") {
		t.Errorf("output:\n%s", out)
	}
}

func TestFigure2PDBenchShape(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(table.Rows))
	}
	// ConQuer columns filled for in-class queries on instances 1 and 4.
	for _, row := range table.Rows {
		if row[0] == "Q6'" && (row[5] == "" || row[6] == "") {
			t.Errorf("Q6' missing ConQuer cells: %v", row)
		}
	}
}

func TestFigure3SweepShape(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 9 || len(table.Header) != 5 {
		t.Fatalf("shape: %d rows × %d cols", len(table.Rows), len(table.Header))
	}
}

func TestFigure7ReportsSATCalls(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	// query + 4 times + 4 call counts.
	if len(table.Header) != 9 {
		t.Fatalf("header = %v", table.Header)
	}
	// SAT calls must not decrease drastically as inconsistency grows for
	// at least one query (sanity on the paper's log-scale plot).
	grew := false
	for _, row := range table.Rows {
		if row[5] < row[8] { // string compare is fine for same-width digits; just sanity
			grew = true
		}
	}
	_ = grew // shape check only; counts are workload-dependent at tiny scale
}

func TestFigure4And8SizeSweeps(t *testing.T) {
	r := NewRunner(tinyConfig())
	t4, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 9 || len(t4.Header) != 4 {
		t.Fatalf("fig4 shape: %d×%d", len(t4.Rows), len(t4.Header))
	}
	t8, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Rows) != 6 || len(t8.Header) != 7 {
		t.Fatalf("fig8 shape: %d×%d", len(t8.Rows), len(t8.Header))
	}
}

func TestTableIIIcdGrowsWithSize(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.TableIIIcd()
	if err != nil {
		t.Fatal(err)
	}
	grew := false
	for _, row := range table.Rows {
		small := parseVars(t, row[1])
		large := parseVars(t, row[3])
		// A zero-size formula means the consistent-part shortcut fired
		// (legitimate for selective queries at tiny scales).
		if small > 0 && large > 0 && large > small {
			grew = true
		}
	}
	if !grew {
		t.Error("no query's CNF grew with database size")
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	cfg := tinyConfig()
	r := NewRunner(cfg)
	var buf bytes.Buffer
	if err := r.All(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range Names() {
		if !strings.Contains(out, "("+name+" finished in") {
			t.Errorf("experiment %s missing from All output", name)
		}
	}
}

func TestFrontendCompareShapeAndParity(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.FrontendCompare() // errors if the front ends disagree
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 15 || len(table.Header) != 6 {
		t.Fatalf("pr4 shape: %d×%d", len(table.Rows), len(table.Header))
	}
	// Both modes' records must be captured for every query.
	modes := map[string]int{}
	for _, rec := range r.Records() {
		if rec.Experiment == "PR4" {
			modes[rec.Setting]++
		}
	}
	if modes["mode=legacy"] != 15 || modes["mode=optimized"] != 15 {
		t.Fatalf("pr4 records per mode: %v", modes)
	}
}
