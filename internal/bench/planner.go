package bench

import (
	"fmt"
	"hash/fnv"
	"time"

	"aggcavsat/internal/core"
	"aggcavsat/internal/planner"
	"aggcavsat/internal/tpch"
)

// PlannerCompare (experiment "pr8") measures the hybrid planner against
// an all-SAT baseline on the DBGen suite, in one process and one run:
// the same instance and queries go through an engine in planner-auto
// mode (rewritable queries take the ConQuer-style SAT-free executor,
// the rest fall back to the solver) and an engine in force-sat mode
// (the pre-planner behavior). Answers are digest-verified identical per
// query — a drift is an error, not a row — and the headline number is
// the end-to-end time reduction on the rewriting-eligible subset.
//
// Every query runs reps times per mode on one engine per mode (the
// deployment shape: an engine serves many queries over one instance, so
// the planner's plan cache and the memoized indexes amortize) and the
// best repetition is reported.
func (r *Runner) PlannerCompare() (*Table, error) {
	r.setExperiment("PR8") // records land in BENCH_PR8.json
	const reps = 3
	in, err := r.dbgen(r.cfg.SFSmall, 10)
	if err != nil {
		return nil, err
	}
	queries := append(append([]tpch.Query{}, tpch.ScalarQueries()...), tpch.GroupedQueries()...)

	t := &Table{
		Title: fmt.Sprintf("PR8 — planner auto vs force-sat, DBGen 10%%, sf=%g (best of %d)",
			r.cfg.SFSmall, reps),
		Header: []string{"query", "route", "sat_ms", "auto_ms", "reduction", "answers"},
	}
	type meas struct {
		total   time.Duration
		answers int
		route   string
		digest  uint64
	}
	run := func(mode planner.Mode) (map[string]meas, error) {
		eng, err := core.New(in, core.Options{
			Mode:        core.KeysMode,
			MaxSAT:      r.cfg.Solver,
			Parallelism: r.cfg.Parallelism,
			Timeout:     r.cfg.Timeout,
			Planner:     mode,
		})
		if err != nil {
			return nil, err
		}
		best := map[string]meas{}
		for rep := 0; rep < reps; rep++ {
			for _, q := range queries {
				tr, err := q.Translate()
				if err != nil {
					return nil, err
				}
				start := time.Now()
				rep2, err := eng.RangeAnswersContext(r.ctx(), tr.Aggs[0].Query)
				if err != nil {
					return nil, err
				}
				m := meas{
					total:   time.Since(start),
					answers: len(rep2.Answers),
					route:   rep2.Route,
					digest:  answerFingerprint(rep2.Answers),
				}
				if prev, ok := best[q.Name]; !ok || m.total < prev.total {
					best[q.Name] = m
				}
			}
		}
		return best, nil
	}

	sat, err := run(planner.ModeSAT)
	if err != nil {
		return nil, err
	}
	auto, err := run(planner.ModeAuto)
	if err != nil {
		return nil, err
	}

	var eligibleSAT, eligibleAuto time.Duration
	eligible := 0
	for _, q := range queries {
		s, a := sat[q.Name], auto[q.Name]
		if s.digest != a.digest {
			return nil, fmt.Errorf("bench: pr8: %s: answers diverge between force-sat and auto (digest %016x vs %016x)",
				q.Name, s.digest, a.digest)
		}
		r.curSetting = "mode=force-sat"
		r.recordStats(q.Name, core.Stats{}, s.total, s.answers)
		r.curSetting = "mode=auto"
		r.recordStats(q.Name, core.Stats{}, a.total, a.answers)
		if a.route == "rewrite" {
			eligible++
			eligibleSAT += s.total
			eligibleAuto += a.total
		}
		reduction := "n/a"
		if s.total > 0 {
			reduction = fmt.Sprintf("%.1f%%", 100*(1-float64(a.total)/float64(s.total)))
		}
		t.Rows = append(t.Rows, []string{
			q.Name, a.route, ms(s.total), ms(a.total), reduction,
			fmt.Sprintf("%d", a.answers),
		})
	}
	summary := "n/a"
	if eligibleSAT > 0 {
		summary = fmt.Sprintf("%.1f%%", 100*(1-float64(eligibleAuto)/float64(eligibleSAT)))
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("eligible subset (%d)", eligible), "rewrite",
		ms(eligibleSAT), ms(eligibleAuto), summary, "",
	})
	return t, nil
}

// answerFingerprint hashes a route's answers (keys, endpoints, and the
// EmptyPossible marker, in order) so the two modes can be compared for
// drift without retaining the answer sets.
func answerFingerprint(answers []core.GroupAnswer) uint64 {
	h := fnv.New64a()
	for _, a := range answers {
		for _, v := range a.Key {
			fmt.Fprintf(h, "%v|", v)
		}
		fmt.Fprintf(h, "=%v..%v;%v\n", a.GLB, a.LUB, a.EmptyPossible)
	}
	return h.Sum64()
}
