package cq

import (
	"context"
	"sort"
	"strings"
	"sync"

	"aggcavsat/internal/db"
)

// Row is one witnessing assignment of a conjunctive query: the values of
// the head variables and the (sorted, deduplicated) set of facts used.
type Row struct {
	Head  db.Tuple
	Facts []db.FactID
}

// Evaluator evaluates conjunctive queries over a fixed instance, caching
// compiled plans and hash indexes across queries. It is safe for
// concurrent use: the lazy caches are guarded by mutexes
// (double-checked), and a built index or plan is immutable thereafter,
// so engine worker pools may evaluate queries on one shared evaluator.
//
// Queries run through a compiled slot-based program by default (see
// compile.go); SetInterpreted switches back to the recursive
// map-bindings interpreter, which is kept as the semantic reference and
// legacy-benchmark baseline.
type Evaluator struct {
	in *db.Instance

	mu      sync.RWMutex
	indexes map[indexKey]map[string][]db.FactID // interpreter: Tuple.Key strings
	hashIdx map[indexKey]map[uint64][]db.FactID // compiled: uint64 composite keys

	planMu sync.RWMutex
	plans  map[string]*program

	par       int  // worker budget for parallel first-atom enumeration
	interpret bool // force the legacy recursive interpreter
}

type indexKey struct {
	rel  string
	mask uint64 // bit i set = position i is a lookup column
}

// NewEvaluator creates an evaluator over the instance.
func NewEvaluator(in *db.Instance) *Evaluator {
	return &Evaluator{
		in:      in,
		indexes: make(map[indexKey]map[string][]db.FactID),
		hashIdx: make(map[indexKey]map[uint64][]db.FactID),
		plans:   make(map[string]*program),
	}
}

// Instance returns the instance being evaluated.
func (e *Evaluator) Instance() *db.Instance { return e.in }

// SetParallelism sets the worker budget for partitioning the first
// atom's candidate list across goroutines (0 or 1 = sequential). It
// must be called before the evaluator is shared across goroutines.
func (e *Evaluator) SetParallelism(n int) { e.par = n }

// SetInterpreted forces the legacy recursive interpreter instead of
// compiled programs. It must be called before the evaluator is shared
// across goroutines. The interpreter is the semantic reference for the
// compiled path and the baseline for the legacy-front-end benchmarks.
func (e *Evaluator) SetInterpreted(on bool) { e.interpret = on }

// index returns (building on demand) a hash index of rel on the given
// positions.
func (e *Evaluator) index(rel string, positions []int) map[string][]db.FactID {
	var mask uint64
	for _, p := range positions {
		mask |= 1 << uint(p)
	}
	key := indexKey{rel: rel, mask: mask}
	e.mu.RLock()
	idx, ok := e.indexes[key]
	e.mu.RUnlock()
	if ok {
		return idx
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Double-check: another goroutine may have built it while we waited.
	if idx, ok := e.indexes[key]; ok {
		return idx
	}
	idx = make(map[string][]db.FactID)
	for _, id := range e.in.RelFacts(rel) {
		k := e.in.Fact(id).Tuple.Key(positions)
		idx[k] = append(idx[k], id)
	}
	e.indexes[key] = idx
	return idx
}

// Eval returns all witnessing assignments of q on the instance, one Row
// per assignment (a bag: rows may repeat with identical head values and
// even identical fact sets).
func (e *Evaluator) Eval(q CQ) []Row {
	rows, _ := e.EvalCtx(context.Background(), q) // Background never cancels
	return rows
}

// EvalCtx is Eval with cooperative cancellation: the parallel and
// sequential compiled runners poll ctx between first-atom candidates
// and return ctx.Err() when it fires. The row order is deterministic
// and identical to the interpreter's, row for row.
func (e *Evaluator) EvalCtx(ctx context.Context, q CQ) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.interpret {
		return e.evalInterpreted(q), nil
	}
	return e.runProgram(ctx, e.program(q))
}

// evalInterpreted is the legacy recursive evaluator with per-recursion
// map bindings and string-keyed indexes.
func (e *Evaluator) evalInterpreted(q CQ) []Row {
	if err := q.Validate(e.in.Schema()); err != nil {
		panic("cq: Eval on invalid query: " + err.Error())
	}
	plan := planCQ(e.in, q)
	st := &evalState{
		e:        e,
		q:        q,
		plan:     plan,
		bindings: make(map[string]db.Value, 8),
	}
	st.run(0)
	return st.rows
}

// EvalUCQ evaluates a union of conjunctive queries, concatenating the
// witnessing assignments of all disjuncts (bag union).
func (e *Evaluator) EvalUCQ(u UCQ) []Row {
	rows, _ := e.EvalUCQCtx(context.Background(), u)
	return rows
}

// EvalUCQCtx is EvalUCQ with cooperative cancellation. The result is
// pre-sized from the per-disjunct row counts, so the bag union does not
// re-grow the slice per disjunct.
func (e *Evaluator) EvalUCQCtx(ctx context.Context, u UCQ) ([]Row, error) {
	if len(u.Disjuncts) == 1 {
		return e.EvalCtx(ctx, u.Disjuncts[0])
	}
	per := make([][]Row, len(u.Disjuncts))
	total := 0
	for i, q := range u.Disjuncts {
		rows, err := e.EvalCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		per[i] = rows
		total += len(rows)
	}
	out := make([]Row, 0, total)
	for _, rows := range per {
		out = append(out, rows...)
	}
	return out, nil
}

// plan describes the atom evaluation order plus, for each step, the
// conditions that become fully bound after binding that atom.
type plan struct {
	order      []int   // atom indexes in evaluation order
	condsAfter [][]int // condition indexes checkable after step i
}

// planCQ orders atoms greedily: prefer atoms with many bound positions
// (constants or already-bound variables), breaking ties by smaller
// relation cardinality; conditions are attached to the earliest step at
// which all their variables are bound.
func planCQ(in *db.Instance, q CQ) plan {
	n := len(q.Atoms)
	used := make([]bool, n)
	bound := map[string]bool{}
	var order []int
	for len(order) < n {
		best, bestBound, bestSize := -1, -1, 0
		for i, a := range q.Atoms {
			if used[i] {
				continue
			}
			nb := 0
			for _, t := range a.Args {
				if t.IsConst || bound[t.Var] {
					nb++
				}
			}
			size := in.RelSize(a.Rel)
			if best == -1 || nb > bestBound || (nb == bestBound && size < bestSize) {
				best, bestBound, bestSize = i, nb, size
			}
		}
		used[best] = true
		order = append(order, best)
		for _, t := range q.Atoms[best].Args {
			if !t.IsConst {
				bound[t.Var] = true
			}
		}
	}
	// Attach conditions to the first step where all their vars are bound,
	// reusing the scratch map from the ordering pass.
	condsAfter := make([][]int, n)
	assigned := make([]bool, len(q.Conds))
	clear(bound)
	for step, ai := range order {
		for _, t := range q.Atoms[ai].Args {
			if !t.IsConst {
				bound[t.Var] = true
			}
		}
		for ci, c := range q.Conds {
			if assigned[ci] {
				continue
			}
			ok := true
			for _, t := range []Term{c.Left, c.Right} {
				if !t.IsConst && !bound[t.Var] {
					ok = false
				}
			}
			if ok {
				condsAfter[step] = append(condsAfter[step], ci)
				assigned[ci] = true
			}
		}
	}
	return plan{order: order, condsAfter: condsAfter}
}

type evalState struct {
	e        *Evaluator
	q        CQ
	plan     plan
	bindings map[string]db.Value
	facts    []db.FactID
	rows     []Row
}

func (st *evalState) run(step int) {
	if step == len(st.plan.order) {
		head := make(db.Tuple, len(st.q.Head))
		for i, h := range st.q.Head {
			head[i] = st.bindings[h]
		}
		facts := append([]db.FactID(nil), st.facts...)
		sort.Slice(facts, func(i, j int) bool { return facts[i] < facts[j] })
		dedup := facts[:0]
		for i, f := range facts {
			if i == 0 || f != facts[i-1] {
				dedup = append(dedup, f)
			}
		}
		st.rows = append(st.rows, Row{Head: head, Facts: dedup})
		return
	}
	atom := st.q.Atoms[st.plan.order[step]]
	rel := strings.ToLower(atom.Rel)

	// Split positions into bound (lookup) and free.
	var lookupPos []int
	var lookupVals db.Tuple
	for i, t := range atom.Args {
		switch {
		case t.IsConst:
			lookupPos = append(lookupPos, i)
			lookupVals = append(lookupVals, t.Const)
		default:
			if v, ok := st.bindings[t.Var]; ok {
				lookupPos = append(lookupPos, i)
				lookupVals = append(lookupVals, v)
			}
		}
	}

	var candidates []db.FactID
	if len(lookupPos) > 0 {
		idx := st.e.index(rel, lookupPos)
		// Build the lookup key using the same encoding as Tuple.Key.
		probe := make(db.Tuple, len(lookupVals))
		copy(probe, lookupVals)
		positions := make([]int, len(lookupPos))
		for i := range positions {
			positions[i] = i
		}
		candidates = idx[probe.Key(positions)]
	} else {
		candidates = st.e.in.RelFacts(rel)
	}

	for _, id := range candidates {
		tuple := st.e.in.Fact(id).Tuple
		// Bind free variables, checking repeated-variable consistency.
		var newVars []string
		ok := true
		for i, t := range atom.Args {
			if t.IsConst {
				continue
			}
			if v, boundAlready := st.bindings[t.Var]; boundAlready {
				if !v.Equal(tuple[i]) {
					ok = false
					break
				}
				continue
			}
			st.bindings[t.Var] = tuple[i]
			newVars = append(newVars, t.Var)
		}
		if ok {
			for _, ci := range st.plan.condsAfter[step] {
				c := st.q.Conds[ci]
				if !c.Op.Apply(st.termValue(c.Left), st.termValue(c.Right)) {
					ok = false
					break
				}
			}
		}
		if ok {
			st.facts = append(st.facts, id)
			st.run(step + 1)
			st.facts = st.facts[:len(st.facts)-1]
		}
		for _, v := range newVars {
			delete(st.bindings, v)
		}
	}
}

func (st *evalState) termValue(t Term) db.Value {
	if t.IsConst {
		return t.Const
	}
	return st.bindings[t.Var]
}

// DistinctAnswers deduplicates the head tuples of rows, returning them in
// a deterministic (sorted) order.
func DistinctAnswers(rows []Row) []db.Tuple {
	seen := map[string]db.Tuple{}
	positions := []int{}
	for _, r := range rows {
		if len(positions) != len(r.Head) {
			positions = positions[:0]
			for i := range r.Head {
				positions = append(positions, i)
			}
		}
		k := r.Head.Key(positions)
		if _, ok := seen[k]; !ok {
			seen[k] = r.Head
		}
	}
	out := make([]db.Tuple, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
