package cq

import (
	"fmt"
	"sort"
	"testing"

	"aggcavsat/internal/db"
)

// naiveEval is a brute-force reference evaluator: it enumerates every
// combination of one fact per atom and checks bindings and conditions
// directly, with none of the planner's index machinery. The optimized
// evaluator must produce exactly the same bag of rows.
func naiveEval(in *db.Instance, q CQ) []Row {
	var rows []Row
	choice := make([]db.FactID, len(q.Atoms))
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Atoms) {
			bindings := map[string]db.Value{}
			for ai, atom := range q.Atoms {
				tuple := in.Fact(choice[ai]).Tuple
				for pos, term := range atom.Args {
					if term.IsConst {
						if !term.Const.Equal(tuple[pos]) {
							return
						}
						continue
					}
					if v, ok := bindings[term.Var]; ok {
						if !v.Equal(tuple[pos]) {
							return
						}
						continue
					}
					bindings[term.Var] = tuple[pos]
				}
			}
			for _, c := range q.Conds {
				val := func(t Term) db.Value {
					if t.IsConst {
						return t.Const
					}
					return bindings[t.Var]
				}
				if !c.Op.Apply(val(c.Left), val(c.Right)) {
					return
				}
			}
			head := make(db.Tuple, len(q.Head))
			for i, h := range q.Head {
				head[i] = bindings[h]
			}
			facts := append([]db.FactID(nil), choice...)
			sort.Slice(facts, func(a, b int) bool { return facts[a] < facts[b] })
			dedup := facts[:0]
			for i, f := range facts {
				if i == 0 || f != facts[i-1] {
					dedup = append(dedup, f)
				}
			}
			rows = append(rows, Row{Head: head, Facts: dedup})
			return
		}
		for _, f := range in.RelFacts(q.Atoms[i].Rel) {
			choice[i] = f
			rec(i + 1)
		}
	}
	rec(0)
	return rows
}

// rowKey canonicalizes a row for multiset comparison.
func rowKey(r Row) string {
	positions := make([]int, len(r.Head))
	for i := range positions {
		positions[i] = i
	}
	return fmt.Sprintf("%s|%v", r.Head.Key(positions), r.Facts)
}

// TestEvalAgainstNaive cross-checks the hash-join evaluator against the
// brute-force reference on random instances and random queries,
// including self-joins, constants, repeated variables and comparisons.
func TestEvalAgainstNaive(t *testing.T) {
	schema := db.NewSchema()
	schema.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "a", Kind: db.KindInt},
			{Name: "b", Kind: db.KindInt},
			{Name: "c", Kind: db.KindString},
		},
		Key: []int{0},
	})
	schema.MustAddRelation(&db.RelationSchema{
		Name: "S",
		Attrs: []db.Attribute{
			{Name: "x", Kind: db.KindInt},
			{Name: "y", Kind: db.KindString},
		},
		Key: []int{0},
	})

	trials := 120
	if testing.Short() {
		trials = 30
	}
	for seed := 1; seed <= trials; seed++ {
		s := uint64(seed)*2654435761 + 7
		next := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(n))
		}
		in := db.NewInstance(schema)
		for i, n := 0, 3+next(6); i < n; i++ {
			in.MustInsert("R",
				db.Int(int64(next(4))),
				db.Int(int64(next(4))),
				db.Str(string(rune('a'+next(3)))))
		}
		for i, n := 0, 2+next(5); i < n; i++ {
			in.MustInsert("S",
				db.Int(int64(next(4))),
				db.Str(string(rune('a'+next(3)))))
		}

		// Random query: 1–3 atoms over R/S with a shared variable pool,
		// random constants, and an optional comparison.
		varPool := []string{"u", "v", "w", "z"}
		nAtoms := 1 + next(3)
		var atoms []Atom
		var boundVars []string
		for ai := 0; ai < nAtoms; ai++ {
			if next(2) == 0 {
				args := make([]Term, 3)
				for p := 0; p < 3; p++ {
					if p == 2 {
						if next(3) == 0 {
							args[p] = C(db.Str(string(rune('a' + next(3)))))
							continue
						}
					} else if next(4) == 0 {
						args[p] = C(db.Int(int64(next(4))))
						continue
					}
					v := varPool[next(len(varPool))]
					if p == 2 {
						v = "s" + v // string-typed variables kept separate
					}
					args[p] = V(v)
					boundVars = append(boundVars, v)
				}
				atoms = append(atoms, Atom{Rel: "R", Args: args})
			} else {
				v1 := varPool[next(len(varPool))]
				v2 := "s" + varPool[next(len(varPool))]
				atoms = append(atoms, Atom{Rel: "S", Args: []Term{V(v1), V(v2)}})
				boundVars = append(boundVars, v1, v2)
			}
		}
		q := CQ{Atoms: atoms}
		if len(boundVars) > 0 {
			q.Head = []string{boundVars[next(len(boundVars))]}
			if next(3) == 0 {
				a := boundVars[next(len(boundVars))]
				b := boundVars[next(len(boundVars))]
				// Only compare same-typed variables.
				if (a[0] == 's') == (b[0] == 's') {
					ops := []CmpOp{OpEQ, OpNE, OpLT, OpLE}
					q.Conds = []Condition{{Left: V(a), Op: ops[next(len(ops))], Right: V(b)}}
				}
			}
		}
		if err := q.Validate(schema); err != nil {
			continue // a constant landed on a mistyped position; skip
		}

		got := NewEvaluator(in).Eval(q)
		want := naiveEval(in, q)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d rows vs naive %d\nquery: %s", seed, len(got), len(want), q)
		}
		gotBag := map[string]int{}
		for _, r := range got {
			gotBag[rowKey(r)]++
		}
		for _, r := range want {
			gotBag[rowKey(r)]--
		}
		for k, v := range gotBag {
			if v != 0 {
				t.Fatalf("seed %d: row multiset mismatch at %s (%+d)\nquery: %s", seed, k, v, q)
			}
		}
	}
}
