package cq

import (
	"testing"

	"aggcavsat/internal/db"
)

func TestWitnessBagMaryBalances(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	bag := e.WitnessBag(Single(maryBalances()))
	// Six assignments, six distinct (facts, answer) pairs (Mary's two
	// tuples are distinct facts), so multiplicities are all 1.
	if len(bag) != 6 {
		t.Fatalf("bag size = %d, want 6", len(bag))
	}
	for _, w := range bag {
		if w.Mult != 1 {
			t.Errorf("multiplicity = %d, want 1", w.Mult)
		}
		if len(w.Facts) != 3 {
			t.Errorf("witness size = %d, want 3", len(w.Facts))
		}
	}
}

func TestWitnessBagMultiplicity(t *testing.T) {
	// Two assignments projecting to the same answer and same fact set:
	// R(a,b) with head just a, joined against S twice via distinct vars
	// collapsing to the same facts.
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name:  "R",
		Attrs: []db.Attribute{{Name: "a", Kind: db.KindInt}, {Name: "b", Kind: db.KindInt}},
	})
	in := db.NewInstance(s)
	in.MustInsert("R", db.Int(1), db.Int(10))
	in.MustInsert("R", db.Int(1), db.Int(20))
	e := NewEvaluator(in)
	// q() :- R(x, y): two assignments; head empty, distinct fact sets.
	bag := e.WitnessBag(Single(CQ{Atoms: []Atom{{Rel: "R", Args: []Term{V("x"), V("y")}}}}))
	if len(bag) != 2 {
		t.Fatalf("bag size = %d, want 2", len(bag))
	}
	// q() :- R(x, y), R(x, z): 4 assignments; fact-set {0} (y=z=10),
	// {1} (y=z=20), {0,1} twice (y=10,z=20 and y=20,z=10).
	bag = e.WitnessBag(Single(CQ{Atoms: []Atom{
		{Rel: "R", Args: []Term{V("x"), V("y")}},
		{Rel: "R", Args: []Term{V("x"), V("z")}},
	}}))
	if len(bag) != 3 {
		t.Fatalf("bag size = %d, want 3", len(bag))
	}
	var multTwo int
	for _, w := range bag {
		if w.Mult == 2 {
			multTwo++
			if len(w.Facts) != 2 {
				t.Errorf("the doubled witness should be {0,1}, got %v", w.Facts)
			}
		}
	}
	if multTwo != 1 {
		t.Errorf("exactly one witness should have multiplicity 2")
	}
}

func TestWitnessBagSeparatesAnswers(t *testing.T) {
	// Same fact set, different answers (via union projecting different
	// columns) must remain separate witnesses.
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name:  "R",
		Attrs: []db.Attribute{{Name: "a", Kind: db.KindInt}, {Name: "b", Kind: db.KindInt}},
	})
	in := db.NewInstance(s)
	in.MustInsert("R", db.Int(1), db.Int(2))
	e := NewEvaluator(in)
	u := UCQ{Disjuncts: []CQ{
		{Head: []string{"x"}, Atoms: []Atom{{Rel: "R", Args: []Term{V("x"), V("y")}}}},
		{Head: []string{"y"}, Atoms: []Atom{{Rel: "R", Args: []Term{V("x"), V("y")}}}},
	}}
	bag := e.WitnessBag(u)
	if len(bag) != 2 {
		t.Fatalf("bag size = %d, want 2 (answers 1 and 2)", len(bag))
	}
}

func TestMinimalWitnesses(t *testing.T) {
	w1 := Witness{Facts: []db.FactID{1, 2}, Answer: db.Tuple{db.Int(7)}, Mult: 1}
	w2 := Witness{Facts: []db.FactID{1, 2, 3}, Answer: db.Tuple{db.Int(7)}, Mult: 1}
	w3 := Witness{Facts: []db.FactID{4}, Answer: db.Tuple{db.Int(8)}, Mult: 1}
	w4 := Witness{Facts: []db.FactID{1, 2}, Answer: db.Tuple{db.Int(8)}, Mult: 1} // different answer: kept
	out := MinimalWitnesses([]Witness{w1, w2, w3, w4})
	if len(out) != 3 {
		t.Fatalf("minimal set size = %d, want 3 (%v)", len(out), out)
	}
	for _, w := range out {
		if len(w.Facts) == 3 {
			t.Error("non-minimal witness survived")
		}
	}
}

func TestMinimalWitnessesEqualSetsKeptOnce(t *testing.T) {
	w1 := Witness{Facts: []db.FactID{1, 2}, Answer: db.Tuple{db.Int(7)}, Mult: 1}
	w2 := Witness{Facts: []db.FactID{1, 2}, Answer: db.Tuple{db.Int(7)}, Mult: 5}
	out := MinimalWitnesses([]Witness{w1, w2})
	if len(out) != 1 {
		t.Fatalf("equal sets should collapse to one, got %d", len(out))
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		a, b []db.FactID
		want bool
	}{
		{[]db.FactID{}, []db.FactID{1}, true},
		{[]db.FactID{1}, []db.FactID{1}, true},
		{[]db.FactID{1, 3}, []db.FactID{1, 2, 3}, true},
		{[]db.FactID{1, 4}, []db.FactID{1, 2, 3}, false},
		{[]db.FactID{2}, []db.FactID{}, false},
	}
	for i, c := range cases {
		if got := isSubset(c.a, c.b); got != c.want {
			t.Errorf("case %d: isSubset(%v,%v) = %v", i, c.a, c.b, got)
		}
	}
}

func TestGroupWitnesses(t *testing.T) {
	bag := []Witness{
		{Facts: []db.FactID{1}, Answer: db.Tuple{db.Str("LA"), db.Int(10)}, Mult: 1},
		{Facts: []db.FactID{2}, Answer: db.Tuple{db.Str("SF"), db.Int(20)}, Mult: 2},
		{Facts: []db.FactID{3}, Answer: db.Tuple{db.Str("LA"), db.Int(30)}, Mult: 1},
	}
	groups := GroupWitnesses(bag, 1)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[0].Key[0].AsString() != "LA" || len(groups[0].Witnesses) != 2 {
		t.Errorf("LA group wrong: %+v", groups[0])
	}
	if groups[1].Key[0].AsString() != "SF" || groups[1].Witnesses[0].Mult != 2 {
		t.Errorf("SF group wrong: %+v", groups[1])
	}
	// Group-arity suffix stays in the witness answers.
	if groups[0].Witnesses[0].Answer[0].AsInt() != 10 {
		t.Error("aggregation value lost in grouping")
	}
}

func TestGroupWitnessesFullArity(t *testing.T) {
	// groupArity == len(Answer): suffix answers become empty tuples.
	bag := []Witness{
		{Facts: []db.FactID{1}, Answer: db.Tuple{db.Str("x")}, Mult: 1},
	}
	groups := GroupWitnesses(bag, 1)
	if len(groups) != 1 || len(groups[0].Witnesses[0].Answer) != 0 {
		t.Errorf("%+v", groups)
	}
}

func TestCompareFactSets(t *testing.T) {
	if compareFactSets([]db.FactID{1, 2}, []db.FactID{1, 2}) != 0 {
		t.Error("equal")
	}
	if compareFactSets([]db.FactID{1}, []db.FactID{1, 2}) != -1 {
		t.Error("prefix shorter")
	}
	if compareFactSets([]db.FactID{3}, []db.FactID{1, 2}) != 1 {
		t.Error("larger first element")
	}
}
