package cq

import (
	"fmt"

	"aggcavsat/internal/db"
)

// AggOp enumerates the aggregation operators of the paper. COUNT(*),
// COUNT(A) and SUM(A) (plus their DISTINCT variants) are solved through
// (W)PMaxSAT reductions; MIN(A)/MAX(A) through iterative SAT. AVG(A) is
// supported only by the exhaustive baseline (open problem in the paper).
type AggOp int

const (
	CountStar AggOp = iota
	Count
	CountDistinct
	Sum
	SumDistinct
	Min
	Max
	Avg
)

func (op AggOp) String() string {
	switch op {
	case CountStar:
		return "COUNT(*)"
	case Count:
		return "COUNT"
	case CountDistinct:
		return "COUNT DISTINCT"
	case Sum:
		return "SUM"
	case SumDistinct:
		return "SUM DISTINCT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggOp(%d)", int(op))
	}
}

// NeedsVar reports whether the operator aggregates a specific attribute.
func (op AggOp) NeedsVar() bool { return op != CountStar }

// AggQuery is an aggregation query
//
//	SELECT Z, f(A) FROM T(U, Z, A) GROUP BY Z
//
// where T is the relation defined by the underlying union of conjunctive
// queries. GroupBy lists the grouping variables Z (empty for scalar
// queries); AggVar names A (ignored for COUNT(*)).
//
// Convention: the Underlying UCQ's head must be exactly GroupBy followed
// by AggVar (or just GroupBy for COUNT(*)); BuildHead arranges this.
type AggQuery struct {
	Op         AggOp
	AggVar     string
	GroupBy    []string
	Underlying UCQ
}

// BuildHead returns a copy of q whose underlying UCQ heads have the
// aggregation layout: the grouping variables followed by the aggregation
// variable (when the operator needs one).
//
// Heads are positional: if every disjunct already has a head of the
// expected arity, it is kept verbatim — this lets front ends (the SQL
// translator) use per-disjunct variable names. Otherwise the head is
// rebuilt from GroupBy and AggVar, which must then name variables bound
// in every disjunct.
func (q AggQuery) BuildHead() AggQuery {
	expected := len(q.GroupBy)
	if q.Op.NeedsVar() {
		expected++
	}
	ok := len(q.Underlying.Disjuncts) > 0
	for _, d := range q.Underlying.Disjuncts {
		if len(d.Head) != expected {
			ok = false
			break
		}
	}
	if ok {
		return q
	}
	head := append([]string(nil), q.GroupBy...)
	if q.Op.NeedsVar() {
		head = append(head, q.AggVar)
	}
	q.Underlying = q.Underlying.WithHead(head...)
	return q
}

// Scalar reports whether the query has no GROUP BY clause.
func (q AggQuery) Scalar() bool { return len(q.GroupBy) == 0 }

// Validate checks the query against a schema.
func (q AggQuery) Validate(schema *db.Schema) error {
	if q.Op.NeedsVar() && q.AggVar == "" {
		return fmt.Errorf("cq: %s requires an aggregation variable", q.Op)
	}
	qq := q.BuildHead()
	if err := qq.Underlying.Validate(schema); err != nil {
		return fmt.Errorf("cq: aggregation query: %w", err)
	}
	return nil
}

func (q AggQuery) String() string {
	if q.Op == CountStar {
		return fmt.Sprintf("SELECT %s FROM [%s] GROUP BY %v", q.Op, q.Underlying, q.GroupBy)
	}
	return fmt.Sprintf("SELECT %s(%s) FROM [%s] GROUP BY %v", q.Op, q.AggVar, q.Underlying, q.GroupBy)
}

// GroupValue is one group of a direct (single-instance) aggregation
// result: the grouping key and the aggregated value.
type GroupValue struct {
	Key   db.Tuple
	Value db.Value
}

// EvalAgg evaluates the aggregation query directly on the evaluator's
// instance (no repair semantics): standard SQL bag semantics over the
// witnessing assignments of the underlying query.
//
// Conventions: COUNT over an empty group is 0; SUM over an empty scalar
// result is 0 (matching the paper's reductions, where the empty repair
// contributes falsified weight 0); MIN/MAX/AVG over an empty scalar
// result yield a NULL value. For grouped queries, empty groups simply do
// not appear.
func EvalAgg(e *Evaluator, q AggQuery) ([]GroupValue, error) {
	q = q.BuildHead()
	if err := q.Validate(e.Instance().Schema()); err != nil {
		return nil, err
	}
	rows := e.EvalUCQ(q.Underlying)
	groups := map[string]*aggState{}
	var order []string
	positions := make([]int, len(q.GroupBy))
	for i := range positions {
		positions[i] = i
	}
	for _, r := range rows {
		key := r.Head[:len(q.GroupBy)]
		k := key.Key(positions)
		st, ok := groups[k]
		if !ok {
			st = &aggState{key: key.Clone(), distinct: map[string]bool{}}
			groups[k] = st
			order = append(order, k)
		}
		var aggVal db.Value
		if q.Op.NeedsVar() {
			aggVal = r.Head[len(q.GroupBy)]
		}
		st.add(q.Op, aggVal)
	}
	if q.Scalar() && len(groups) == 0 {
		st := &aggState{key: db.Tuple{}, distinct: map[string]bool{}}
		groups[""] = st
		order = append(order, "")
	}
	out := make([]GroupValue, 0, len(groups))
	for _, k := range order {
		st := groups[k]
		out = append(out, GroupValue{Key: st.key, Value: st.value(q.Op)})
	}
	sortGroupValues(out)
	return out, nil
}

type aggState struct {
	key      db.Tuple
	count    int64
	sum      int64
	fsum     float64
	isFloat  bool
	min, max db.Value
	distinct map[string]bool
	dsum     int64
	dfsum    float64
}

func (st *aggState) add(op AggOp, v db.Value) {
	switch op {
	case CountStar:
		st.count++
	case Count:
		if !v.IsNull() {
			st.count++
		}
	case CountDistinct:
		if !v.IsNull() {
			k := valueKey(v)
			if !st.distinct[k] {
				st.distinct[k] = true
				st.count++
			}
		}
	case Sum:
		if !v.IsNull() {
			st.count++
			st.addSum(v)
		}
	case SumDistinct:
		if !v.IsNull() {
			k := valueKey(v)
			if !st.distinct[k] {
				st.distinct[k] = true
				st.count++
				st.addSum(v)
			}
		}
	case Min:
		if !v.IsNull() && (st.min.IsNull() || v.Compare(st.min) < 0) {
			st.min = v
		}
	case Max:
		if !v.IsNull() && (st.max.IsNull() || v.Compare(st.max) > 0) {
			st.max = v
		}
	case Avg:
		if !v.IsNull() {
			st.count++
			st.addSum(v)
		}
	}
}

func (st *aggState) addSum(v db.Value) {
	if v.Kind() == db.KindFloat {
		st.isFloat = true
	}
	if st.isFloat {
		st.fsum += float64(st.sum) + v.AsFloat()
		st.sum = 0
	} else {
		st.sum += v.AsInt()
	}
}

func (st *aggState) value(op AggOp) db.Value {
	switch op {
	case CountStar, Count, CountDistinct:
		return db.Int(st.count)
	case Sum, SumDistinct:
		if st.isFloat {
			return db.Float(st.fsum)
		}
		return db.Int(st.sum)
	case Min:
		return st.min
	case Max:
		return st.max
	case Avg:
		if st.count == 0 {
			return db.Null()
		}
		if st.isFloat {
			return db.Float(st.fsum / float64(st.count))
		}
		return db.Float(float64(st.sum) / float64(st.count))
	default:
		panic("cq: unknown aggregation operator")
	}
}

func valueKey(v db.Value) string {
	return db.Tuple{v}.Key([]int{0})
}

func sortGroupValues(out []GroupValue) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Key.Compare(out[j-1].Key) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}
