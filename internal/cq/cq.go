// Package cq defines conjunctive queries (select-project-join queries
// with equijoins), unions of conjunctive queries, and their evaluation
// over db.Instance values.
//
// Beyond plain answers, the evaluator produces the *bag of witnesses* of
// a query (Section IV of the paper): for every witnessing assignment, the
// set of facts it uses, with multiplicities. Witness bags are the raw
// material of every SAT reduction in internal/core.
package cq

import (
	"fmt"
	"sort"
	"strings"

	"aggcavsat/internal/db"
)

// Term is an argument of an atom or a side of a comparison: either a
// variable (identified by name) or a constant value.
type Term struct {
	Const   db.Value
	Var     string
	IsConst bool
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v db.Value) Term { return Term{Const: v, IsConst: true} }

func (t Term) String() string {
	if t.IsConst {
		if t.Const.Kind() == db.KindString {
			return fmt.Sprintf("%q", t.Const.AsString())
		}
		return t.Const.String()
	}
	return t.Var
}

// Atom is a relational atom R(t1, …, tn).
type Atom struct {
	Rel  string
	Args []Term
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Rel, strings.Join(parts, ","))
}

// CmpOp is a comparison operator usable in conditions (and in denial
// constraints, which reuse this type).
type CmpOp int

const (
	OpEQ CmpOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	// OpLikePrefix matches strings by prefix: Left LIKE 'prefix%'.
	OpLikePrefix
	// OpNotLikePrefix is the negation of OpLikePrefix.
	OpNotLikePrefix
)

func (op CmpOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpLikePrefix:
		return "LIKE"
	case OpNotLikePrefix:
		return "NOT LIKE"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Apply evaluates the comparison on two values.
func (op CmpOp) Apply(a, b db.Value) bool {
	switch op {
	case OpEQ:
		return a.Compare(b) == 0
	case OpNE:
		return a.Compare(b) != 0
	case OpLT:
		return a.Compare(b) < 0
	case OpLE:
		return a.Compare(b) <= 0
	case OpGT:
		return a.Compare(b) > 0
	case OpGE:
		return a.Compare(b) >= 0
	case OpLikePrefix, OpNotLikePrefix:
		if a.Kind() != db.KindString || b.Kind() != db.KindString {
			return false
		}
		has := strings.HasPrefix(a.AsString(), b.AsString())
		if op == OpLikePrefix {
			return has
		}
		return !has
	default:
		panic("cq: unknown comparison operator")
	}
}

// Condition is a comparison between two terms, at least one of which is
// typically a variable bound by some atom.
type Condition struct {
	Left  Term
	Op    CmpOp
	Right Term
}

func (c Condition) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// CQ is a conjunctive query with optional comparison conditions:
//
//	q(Head) :- Atoms, Conds.
//
// Variables not in Head are existentially quantified.
type CQ struct {
	Head  []string
	Atoms []Atom
	Conds []Condition
}

func (q CQ) String() string {
	atoms := make([]string, 0, len(q.Atoms)+len(q.Conds))
	for _, a := range q.Atoms {
		atoms = append(atoms, a.String())
	}
	for _, c := range q.Conds {
		atoms = append(atoms, c.String())
	}
	return fmt.Sprintf("q(%s) :- %s", strings.Join(q.Head, ","), strings.Join(atoms, ", "))
}

// Vars returns the set of variables occurring in atoms, sorted.
func (q CQ) Vars() []string {
	set := map[string]bool{}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if !t.IsConst {
				set[t.Var] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// SelfJoinFree reports whether no relation symbol repeats among the atoms.
func (q CQ) SelfJoinFree() bool {
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		lc := strings.ToLower(a.Rel)
		if seen[lc] {
			return false
		}
		seen[lc] = true
	}
	return true
}

// Validate checks the query against a schema: every atom's relation must
// exist with matching arity, constants must match attribute kinds, every
// head variable and every condition variable must occur in some atom.
func (q CQ) Validate(schema *db.Schema) error {
	bound := map[string]bool{}
	for _, a := range q.Atoms {
		rs := schema.Relation(a.Rel)
		if rs == nil {
			return fmt.Errorf("cq: unknown relation %s", a.Rel)
		}
		if len(a.Args) != rs.Arity() {
			return fmt.Errorf("cq: atom %s has %d args, relation has arity %d", a, len(a.Args), rs.Arity())
		}
		for i, t := range a.Args {
			if t.IsConst {
				k := t.Const.Kind()
				want := rs.Attrs[i].Kind
				if k != db.KindNull && k != want && !(want == db.KindFloat && k == db.KindInt) {
					return fmt.Errorf("cq: atom %s arg %d: constant kind %s, attribute %s is %s",
						a, i, k, rs.Attrs[i].Name, want)
				}
				continue
			}
			if t.Var == "" {
				return fmt.Errorf("cq: atom %s arg %d: empty variable name", a, i)
			}
			bound[t.Var] = true
		}
	}
	for _, h := range q.Head {
		if !bound[h] {
			return fmt.Errorf("cq: head variable %s not bound by any atom", h)
		}
	}
	for _, c := range q.Conds {
		for _, t := range []Term{c.Left, c.Right} {
			if !t.IsConst && !bound[t.Var] {
				return fmt.Errorf("cq: condition %s uses unbound variable %s", c, t.Var)
			}
		}
	}
	return nil
}

// UCQ is a union of conjunctive queries. All disjuncts must share the
// same head arity (checked by Validate).
type UCQ struct {
	Disjuncts []CQ
}

// Single wraps one CQ as a UCQ.
func Single(q CQ) UCQ { return UCQ{Disjuncts: []CQ{q}} }

func (u UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		parts[i] = q.String()
	}
	return strings.Join(parts, " ∪ ")
}

// Validate validates every disjunct and the head-arity agreement.
func (u UCQ) Validate(schema *db.Schema) error {
	if len(u.Disjuncts) == 0 {
		return fmt.Errorf("cq: empty union")
	}
	arity := len(u.Disjuncts[0].Head)
	for i, q := range u.Disjuncts {
		if len(q.Head) != arity {
			return fmt.Errorf("cq: disjunct %d has head arity %d, want %d", i, len(q.Head), arity)
		}
		if err := q.Validate(schema); err != nil {
			return fmt.Errorf("cq: disjunct %d: %w", i, err)
		}
	}
	return nil
}

// WithExtraConds returns a copy of u with the conditions appended to
// every disjunct. Used by Algorithm 2 to restrict the underlying query to
// one consistent group (Z = b).
func (u UCQ) WithExtraConds(conds ...Condition) UCQ {
	out := UCQ{Disjuncts: make([]CQ, len(u.Disjuncts))}
	for i, q := range u.Disjuncts {
		nq := CQ{
			Head:  append([]string(nil), q.Head...),
			Atoms: append([]Atom(nil), q.Atoms...),
			Conds: append(append([]Condition(nil), q.Conds...), conds...),
		}
		out.Disjuncts[i] = nq
	}
	return out
}

// WithHead returns a copy of u with every disjunct's head replaced.
func (u UCQ) WithHead(head ...string) UCQ {
	out := UCQ{Disjuncts: make([]CQ, len(u.Disjuncts))}
	for i, q := range u.Disjuncts {
		out.Disjuncts[i] = CQ{
			Head:  append([]string(nil), head...),
			Atoms: q.Atoms,
			Conds: q.Conds,
		}
	}
	return out
}
