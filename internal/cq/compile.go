package cq

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"aggcavsat/internal/db"
)

// Compiled query plans. A CQ is compiled once per shape into a program:
// variables are resolved to integer slots of a flat []db.Value frame
// (no per-recursion map allocations), conditions become closures over
// slots, and index probes fold uint64 composite keys (FNV over value
// kind+payload) instead of materializing Tuple.Key strings. The plan —
// atom order and condition attachment — is exactly planCQ's, and
// candidates are visited in the same order as the interpreter, so the
// compiled path reproduces the interpreter's rows row for row; the
// equivalence is enforced by property tests in compile_test.go.
//
// Semantics note: like the interpreter, a position whose variable is
// bound by an earlier atom (or a constant) is an index probe and
// matches with Tuple.Key equality, i.e. kind-exact (Int(1) does not
// probe-match Float(1)); a variable repeated within one atom is checked
// with Value.Equal (Compare-based, so Int(1) matches Float(1)). The
// hash index is not injective, so every probe hit is re-verified with
// EqualExact before use.

// program is a compiled CQ.
type program struct {
	numSlots  int
	headSlots []int
	steps     []pstep
}

// slotPos pairs a tuple position with a frame slot.
type slotPos struct{ pos, slot int }

// pstep matches one atom, in plan order.
type pstep struct {
	rel string

	// Index probe over the positions bound by constants or earlier
	// steps. Empty lookupPos means a full scan of the relation.
	lookupPos   []int
	lookupSlot  []int      // slot supplying position i's probe value; -1 = constant
	lookupConst []db.Value // probe constant where lookupSlot[i] == -1
	mask        uint64     // index mask over lookupPos

	binds  []slotPos // free positions: tuple[pos] binds frame[slot]
	checks []slotPos // within-atom repeated vars: tuple[pos] must Equal frame[slot]
	conds  []func(frame []db.Value) bool
}

// compileCQ lowers q onto planCQ's atom order. The caller has validated q.
func compileCQ(in *db.Instance, q CQ) *program {
	pl := planCQ(in, q)
	prog := &program{steps: make([]pstep, 0, len(pl.order))}
	slotOf := make(map[string]int)
	boundBefore := make(map[string]bool)
	for step, ai := range pl.order {
		atom := q.Atoms[ai]
		st := pstep{rel: strings.ToLower(atom.Rel)}
		for i, t := range atom.Args {
			switch {
			case t.IsConst:
				st.lookupPos = append(st.lookupPos, i)
				st.lookupSlot = append(st.lookupSlot, -1)
				st.lookupConst = append(st.lookupConst, t.Const)
			case boundBefore[t.Var]:
				st.lookupPos = append(st.lookupPos, i)
				st.lookupSlot = append(st.lookupSlot, slotOf[t.Var])
				st.lookupConst = append(st.lookupConst, db.Value{})
			default:
				if s, ok := slotOf[t.Var]; ok {
					// Repeated within this atom: the first occurrence
					// binds the slot, later ones Equal-check it.
					st.checks = append(st.checks, slotPos{pos: i, slot: s})
				} else {
					s = prog.numSlots
					prog.numSlots++
					slotOf[t.Var] = s
					st.binds = append(st.binds, slotPos{pos: i, slot: s})
				}
			}
		}
		for _, p := range st.lookupPos {
			st.mask |= 1 << uint(p)
		}
		for _, ci := range pl.condsAfter[step] {
			st.conds = append(st.conds, compileCond(q.Conds[ci], slotOf))
		}
		prog.steps = append(prog.steps, st)
		for _, t := range atom.Args {
			if !t.IsConst {
				boundBefore[t.Var] = true
			}
		}
	}
	prog.headSlots = make([]int, len(q.Head))
	for i, h := range q.Head {
		prog.headSlots[i] = slotOf[h]
	}
	return prog
}

// compileCond closes a condition over frame slots, hoisting constants
// (and constant-constant comparisons) out of the per-row path.
func compileCond(c Condition, slotOf map[string]int) func([]db.Value) bool {
	op := c.Op
	switch {
	case c.Left.IsConst && c.Right.IsConst:
		res := op.Apply(c.Left.Const, c.Right.Const)
		return func([]db.Value) bool { return res }
	case c.Left.IsConst:
		lv, rs := c.Left.Const, slotOf[c.Right.Var]
		return func(f []db.Value) bool { return op.Apply(lv, f[rs]) }
	case c.Right.IsConst:
		ls, rv := slotOf[c.Left.Var], c.Right.Const
		return func(f []db.Value) bool { return op.Apply(f[ls], rv) }
	default:
		ls, rs := slotOf[c.Left.Var], slotOf[c.Right.Var]
		return func(f []db.Value) bool { return op.Apply(f[ls], f[rs]) }
	}
}

// shapeKey renders q injectively for the plan cache: plans depend on
// every structural detail (head order, atom order, argument terms,
// conditions), so two queries share a plan only if they are identical.
// Names and payloads are length-prefixed to avoid boundary ambiguity.
func shapeKey(q CQ) string {
	var b strings.Builder
	for _, h := range q.Head {
		writeLenPrefixed(&b, h)
	}
	b.WriteByte('|')
	for _, a := range q.Atoms {
		writeLenPrefixed(&b, strings.ToLower(a.Rel))
		b.WriteByte('(')
		for _, t := range a.Args {
			writeTermKey(&b, t)
		}
		b.WriteByte(')')
	}
	b.WriteByte('|')
	for _, c := range q.Conds {
		writeTermKey(&b, c.Left)
		b.WriteByte(byte('0' + c.Op))
		writeTermKey(&b, c.Right)
	}
	return b.String()
}

func writeLenPrefixed(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

func writeTermKey(b *strings.Builder, t Term) {
	if t.IsConst {
		b.WriteByte('#')
		b.WriteByte(byte('0' + t.Const.Kind()))
		writeLenPrefixed(b, t.Const.String())
	} else {
		b.WriteByte('$')
		writeLenPrefixed(b, t.Var)
	}
}

// program returns (compiling and caching on demand) the compiled plan
// for q, and panics on an invalid query exactly like the interpreter.
func (e *Evaluator) program(q CQ) *program {
	k := shapeKey(q)
	e.planMu.RLock()
	p := e.plans[k]
	e.planMu.RUnlock()
	if p != nil {
		return p
	}
	if err := q.Validate(e.in.Schema()); err != nil {
		panic("cq: Eval on invalid query: " + err.Error())
	}
	p = compileCQ(e.in, q)
	e.planMu.Lock()
	if prev, ok := e.plans[k]; ok {
		p = prev // lost a compile race; keep the canonical one
	} else {
		e.plans[k] = p
	}
	e.planMu.Unlock()
	return p
}

// hashIndex returns (building on demand) the uint64-keyed index of rel
// on the given positions. mask is the caller's precomputed position
// mask (avoids recomputing it per probe).
func (e *Evaluator) hashIndex(rel string, positions []int, mask uint64) map[uint64][]db.FactID {
	key := indexKey{rel: rel, mask: mask}
	e.mu.RLock()
	idx, ok := e.hashIdx[key]
	e.mu.RUnlock()
	if ok {
		return idx
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if idx, ok := e.hashIdx[key]; ok {
		return idx
	}
	idx = make(map[uint64][]db.FactID, e.in.RelSize(rel))
	for _, id := range e.in.RelFacts(rel) {
		// Columnar instances hash dictionary codes here; the probe side
		// uses HashProbeValue so both sides of the index agree.
		h := e.in.HashRowOn(id, positions, db.HashSeed)
		idx[h] = append(idx[h], id)
	}
	e.hashIdx[key] = idx
	return idx
}

const (
	// parallelEvalThreshold is the minimum number of first-step
	// candidates before EvalCtx fans out across workers; below it the
	// goroutine setup costs more than the scan.
	parallelEvalThreshold = 256
	// evalCancelStride is how many first-step candidates are processed
	// between ctx polls.
	evalCancelStride = 256
)

// runProgram executes a compiled program, fanning the first atom's
// candidate list across e.par workers when it is large enough. Chunks
// are merged by index, so the parallel row order equals the sequential
// (and interpreter) order.
func (e *Evaluator) runProgram(ctx context.Context, p *program) ([]Row, error) {
	if len(p.steps) == 0 {
		// A query with no atoms has exactly one (empty) witnessing
		// assignment, matching the interpreter's base case.
		return []Row{{Head: db.Tuple{}}}, nil
	}
	st0 := &p.steps[0]
	probe0 := make([]db.Value, len(st0.lookupPos))
	var cands []db.FactID
	if len(st0.lookupPos) > 0 {
		// Step 0 has no prior bindings: every probe value is a constant.
		h, ok := db.HashSeed, true
		for i, v := range st0.lookupConst {
			probe0[i] = v
			if h, ok = e.in.HashProbeValue(h, v); !ok {
				break // string absent from the dictionary: no fact matches
			}
		}
		if ok {
			cands = e.hashIndex(st0.rel, st0.lookupPos, st0.mask)[h]
		}
	} else {
		cands = e.in.RelFacts(st0.rel)
	}
	if e.par <= 1 || len(cands) < parallelEvalThreshold {
		r := newProgRun(e, p)
		if err := r.runChunk(ctx, st0, cands, probe0); err != nil {
			return nil, err
		}
		return r.rows, nil
	}
	return e.runParallel(ctx, p, st0, cands, probe0)
}

func (e *Evaluator) runParallel(ctx context.Context, p *program, st0 *pstep, cands []db.FactID, probe0 []db.Value) ([]Row, error) {
	workers := e.par
	// Oversplit so one skewed chunk doesn't serialize the tail; the
	// per-chunk result slots make the merge deterministic.
	chunks := workers * 4
	if chunks > len(cands) {
		chunks = len(cands)
	}
	if workers > chunks {
		workers = chunks
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([][]Row, chunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := newProgRun(e, p)
			for {
				ci := int(next.Add(1)) - 1
				if ci >= chunks || cctx.Err() != nil {
					return
				}
				lo := ci * len(cands) / chunks
				hi := (ci + 1) * len(cands) / chunks
				r.rows = nil
				// runChunk only fails when cctx fired; nothing to record.
				if err := r.runChunk(cctx, st0, cands[lo:hi], probe0); err != nil {
					return
				}
				results[ci] = r.rows
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, rs := range results {
		total += len(rs)
	}
	out := make([]Row, 0, total)
	for _, rs := range results {
		out = append(out, rs...)
	}
	return out, nil
}

// progRun is the per-goroutine execution state of one program: the slot
// frame, the fact stack, and per-step probe scratch (per step, not
// shared, because deeper recursion levels probe concurrently with an
// outer level's candidate loop).
type progRun struct {
	e      *Evaluator
	p      *program
	frame  []db.Value
	facts  []db.FactID
	rows   []Row
	probes [][]db.Value
}

func newProgRun(e *Evaluator, p *program) *progRun {
	r := &progRun{
		e:      e,
		p:      p,
		frame:  make([]db.Value, p.numSlots),
		facts:  make([]db.FactID, 0, len(p.steps)),
		probes: make([][]db.Value, len(p.steps)),
	}
	for i := range p.steps {
		r.probes[i] = make([]db.Value, len(p.steps[i].lookupPos))
	}
	return r
}

// runChunk drives step 0 over a slice of its candidates, polling ctx
// every evalCancelStride candidates.
func (r *progRun) runChunk(ctx context.Context, st0 *pstep, cands []db.FactID, probe0 []db.Value) error {
	for i, id := range cands {
		if i%evalCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		r.candidate(st0, 0, id, probe0)
	}
	return nil
}

// run matches steps 1..n recursively (step 0's candidates come from
// runChunk).
func (r *progRun) run(step int) {
	if step == len(r.p.steps) {
		r.emit()
		return
	}
	st := &r.p.steps[step]
	var cands []db.FactID
	probe := r.probes[step]
	if len(st.lookupPos) > 0 {
		h, ok := db.HashSeed, true
		for i, s := range st.lookupSlot {
			v := st.lookupConst[i]
			if s >= 0 {
				v = r.frame[s]
			}
			probe[i] = v
			if h, ok = r.e.in.HashProbeValue(h, v); !ok {
				break // string absent from the dictionary: no fact matches
			}
		}
		if ok {
			cands = r.e.hashIndex(st.rel, st.lookupPos, st.mask)[h]
		}
	} else {
		cands = r.e.in.RelFacts(st.rel)
	}
	for _, id := range cands {
		r.candidate(st, step, id, probe)
	}
}

// candidate runs one fact through a step's probe verification,
// bindings, repeated-variable checks, and conditions, recursing deeper
// on success.
func (r *progRun) candidate(st *pstep, step int, id db.FactID, probe []db.Value) {
	row := r.e.in.Row(id)
	// Re-verify the probe columns exactly: hash buckets may collide.
	for i, p := range st.lookupPos {
		if !row.Match(p, probe[i]) {
			return
		}
	}
	for _, b := range st.binds {
		r.frame[b.slot] = row.Value(b.pos)
	}
	for _, c := range st.checks {
		if !r.frame[c.slot].Equal(row.Value(c.pos)) {
			return
		}
	}
	for _, cond := range st.conds {
		if !cond(r.frame) {
			return
		}
	}
	r.facts = append(r.facts, id)
	r.run(step + 1)
	r.facts = r.facts[:len(r.facts)-1]
}

// emit materializes the current frame and fact stack as a Row, with the
// same sorted-deduplicated fact set the interpreter produces.
func (r *progRun) emit() {
	head := make(db.Tuple, len(r.p.headSlots))
	for i, s := range r.p.headSlots {
		head[i] = r.frame[s]
	}
	facts := append([]db.FactID(nil), r.facts...)
	// Insertion sort: fact stacks are at most a handful of atoms deep.
	for i := 1; i < len(facts); i++ {
		for j := i; j > 0 && facts[j] < facts[j-1]; j-- {
			facts[j], facts[j-1] = facts[j-1], facts[j]
		}
	}
	dedup := facts[:0]
	for i, f := range facts {
		if i == 0 || f != facts[i-1] {
			dedup = append(dedup, f)
		}
	}
	r.rows = append(r.rows, Row{Head: head, Facts: dedup})
}
