package cq

import (
	"fmt"
	"sync"
	"testing"

	"aggcavsat/internal/db"
)

// bank builds the paper's Table I instance. Fact IDs: f1..f14 = 0..13.
func bank() *db.Instance {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "Cust",
		Attrs: []db.Attribute{
			{Name: "CID", Kind: db.KindString},
			{Name: "NAME", Kind: db.KindString},
			{Name: "CITY", Kind: db.KindString},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "Acc",
		Attrs: []db.Attribute{
			{Name: "ACCID", Kind: db.KindString},
			{Name: "TYPE", Kind: db.KindString},
			{Name: "CITY", Kind: db.KindString},
			{Name: "BAL", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "CustAcc",
		Attrs: []db.Attribute{
			{Name: "CID", Kind: db.KindString},
			{Name: "ACCID", Kind: db.KindString},
		},
		Key: []int{0, 1},
	})
	in := db.NewInstance(s)
	in.MustInsert("Cust", db.Str("C1"), db.Str("John"), db.Str("LA"))
	in.MustInsert("Cust", db.Str("C2"), db.Str("Mary"), db.Str("LA"))
	in.MustInsert("Cust", db.Str("C2"), db.Str("Mary"), db.Str("SF"))
	in.MustInsert("Cust", db.Str("C3"), db.Str("Don"), db.Str("SF"))
	in.MustInsert("Cust", db.Str("C4"), db.Str("Jen"), db.Str("LA"))
	in.MustInsert("Acc", db.Str("A1"), db.Str("Check."), db.Str("LA"), db.Int(900))
	in.MustInsert("Acc", db.Str("A2"), db.Str("Check."), db.Str("LA"), db.Int(1000))
	in.MustInsert("Acc", db.Str("A3"), db.Str("Saving"), db.Str("SJ"), db.Int(1200))
	in.MustInsert("Acc", db.Str("A3"), db.Str("Saving"), db.Str("SF"), db.Int(-100))
	in.MustInsert("Acc", db.Str("A4"), db.Str("Saving"), db.Str("SJ"), db.Int(300))
	in.MustInsert("CustAcc", db.Str("C1"), db.Str("A1"))
	in.MustInsert("CustAcc", db.Str("C2"), db.Str("A2"))
	in.MustInsert("CustAcc", db.Str("C2"), db.Str("A3"))
	in.MustInsert("CustAcc", db.Str("C3"), db.Str("A4"))
	return in
}

// maryBalances is the underlying CQ of Example IV.2: balances of accounts
// owned by Mary, with the balance variable in the head.
//
//	q(bal) :- Cust(cid, 'Mary', city), CustAcc(cid, accid),
//	          Acc(accid, type, acity, bal)
func maryBalances() CQ {
	return CQ{
		Head: []string{"bal"},
		Atoms: []Atom{
			{Rel: "Cust", Args: []Term{V("cid"), C(db.Str("Mary")), V("city")}},
			{Rel: "CustAcc", Args: []Term{V("cid"), V("accid")}},
			{Rel: "Acc", Args: []Term{V("accid"), V("type"), V("acity"), V("bal")}},
		},
	}
}

// sameCity is the underlying CQ of Example IV.1: customers having an
// account in their own city.
func sameCity() CQ {
	return CQ{
		Head: []string{},
		Atoms: []Atom{
			{Rel: "Cust", Args: []Term{V("cid"), V("name"), V("city")}},
			{Rel: "CustAcc", Args: []Term{V("cid"), V("accid")}},
			{Rel: "Acc", Args: []Term{V("accid"), V("type"), V("city"), V("bal")}},
		},
	}
}

func TestValidate(t *testing.T) {
	in := bank()
	schema := in.Schema()
	good := maryBalances()
	if err := good.Validate(schema); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := CQ{Head: []string{"x"}, Atoms: []Atom{{Rel: "Nope", Args: []Term{V("x")}}}}
	if err := bad.Validate(schema); err == nil {
		t.Error("unknown relation accepted")
	}
	bad = CQ{Head: []string{"x"}, Atoms: []Atom{{Rel: "Cust", Args: []Term{V("x")}}}}
	if err := bad.Validate(schema); err == nil {
		t.Error("wrong arity accepted")
	}
	bad = CQ{Head: []string{"z"}, Atoms: []Atom{{Rel: "CustAcc", Args: []Term{V("x"), V("y")}}}}
	if err := bad.Validate(schema); err == nil {
		t.Error("unbound head variable accepted")
	}
	bad = CQ{
		Atoms: []Atom{{Rel: "CustAcc", Args: []Term{V("x"), V("y")}}},
		Conds: []Condition{{Left: V("zz"), Op: OpEQ, Right: C(db.Str("a"))}},
	}
	if err := bad.Validate(schema); err == nil {
		t.Error("unbound condition variable accepted")
	}
	bad = CQ{Atoms: []Atom{{Rel: "Acc", Args: []Term{C(db.Int(5)), V("t"), V("c"), V("b")}}}}
	if err := bad.Validate(schema); err == nil {
		t.Error("kind-mismatched constant accepted")
	}
	bad = CQ{Atoms: []Atom{{Rel: "CustAcc", Args: []Term{Term{}, V("y")}}}}
	if err := bad.Validate(schema); err == nil {
		t.Error("empty variable name accepted")
	}
}

func TestUCQValidate(t *testing.T) {
	in := bank()
	u := UCQ{}
	if err := u.Validate(in.Schema()); err == nil {
		t.Error("empty union accepted")
	}
	u = UCQ{Disjuncts: []CQ{
		{Head: []string{"x"}, Atoms: []Atom{{Rel: "CustAcc", Args: []Term{V("x"), V("y")}}}},
		{Head: []string{"x", "y"}, Atoms: []Atom{{Rel: "CustAcc", Args: []Term{V("x"), V("y")}}}},
	}}
	if err := u.Validate(in.Schema()); err == nil {
		t.Error("head arity mismatch accepted")
	}
}

func TestEvalSimpleScan(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	q := CQ{
		Head:  []string{"cid", "name"},
		Atoms: []Atom{{Rel: "Cust", Args: []Term{V("cid"), V("name"), V("city")}}},
	}
	rows := e.Eval(q)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if len(r.Facts) != 1 {
			t.Errorf("single-atom witness size = %d", len(r.Facts))
		}
	}
}

func TestEvalConstantSelection(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	q := CQ{
		Head:  []string{"city"},
		Atoms: []Atom{{Rel: "Cust", Args: []Term{V("cid"), C(db.Str("Mary")), V("city")}}},
	}
	rows := e.Eval(q)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (Mary twice)", len(rows))
	}
	cities := map[string]bool{}
	for _, r := range rows {
		cities[r.Head[0].AsString()] = true
	}
	if !cities["LA"] || !cities["SF"] {
		t.Errorf("cities = %v", cities)
	}
}

func TestEvalJoin(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	rows := e.Eval(maryBalances())
	// Mary appears twice (f2, f3); she owns A2 and A3; A3 has two
	// variants. Balances: via f2 and f3 each: A2→1000, A3→1200, A3→-100.
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	counts := map[int64]int{}
	for _, r := range rows {
		counts[r.Head[0].AsInt()]++
		if len(r.Facts) != 3 {
			t.Errorf("witness should have 3 facts, got %v", r.Facts)
		}
	}
	if counts[1000] != 2 || counts[1200] != 2 || counts[-100] != 2 {
		t.Errorf("balance multiplicities = %v", counts)
	}
}

func TestEvalRepeatedVariableJoin(t *testing.T) {
	// sameCity joins Cust.CITY with Acc.CITY through the shared variable.
	in := bank()
	e := NewEvaluator(in)
	rows := e.Eval(sameCity())
	// Witnesses (from the paper's Example IV.1): {f1,f6,f11}, {f2,f7,f12},
	// {f3,f9,f13}.
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	want := map[string]bool{
		"[0 5 10]": true, // f1, f6, f11
		"[1 6 11]": true, // f2, f7, f12
		"[2 8 12]": true, // f3, f9, f13
	}
	for _, r := range rows {
		k := fmt.Sprint(r.Facts)
		if !want[k] {
			t.Errorf("unexpected witness %v", r.Facts)
		}
	}
}

func TestEvalSelfJoin(t *testing.T) {
	// Pairs of distinct customers in the same city.
	in := bank()
	e := NewEvaluator(in)
	q := CQ{
		Head: []string{"n1", "n2"},
		Atoms: []Atom{
			{Rel: "Cust", Args: []Term{V("c1"), V("n1"), V("city")}},
			{Rel: "Cust", Args: []Term{V("c2"), V("n2"), V("city")}},
		},
		Conds: []Condition{{Left: V("c1"), Op: OpLT, Right: V("c2")}},
	}
	if q.SelfJoinFree() {
		t.Error("SelfJoinFree misreports")
	}
	rows := e.Eval(q)
	// LA: C1,C2(f2),C4 -> pairs (C1,C2),(C1,C4),(C2,C4) = 3
	// SF: C2(f3),C3 -> 1 pair. Total 4.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if len(r.Facts) != 2 {
			t.Errorf("self-join witness = %v", r.Facts)
		}
	}
}

func TestEvalIntraAtomRepeatedVar(t *testing.T) {
	// R(x, x) must only match facts with equal columns.
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name:  "R",
		Attrs: []db.Attribute{{Name: "a", Kind: db.KindInt}, {Name: "b", Kind: db.KindInt}},
	})
	in := db.NewInstance(s)
	in.MustInsert("R", db.Int(1), db.Int(1))
	in.MustInsert("R", db.Int(1), db.Int(2))
	in.MustInsert("R", db.Int(3), db.Int(3))
	e := NewEvaluator(in)
	rows := e.Eval(CQ{Head: []string{"x"}, Atoms: []Atom{{Rel: "R", Args: []Term{V("x"), V("x")}}}})
	if len(rows) != 2 {
		t.Fatalf("R(x,x) matched %d rows, want 2", len(rows))
	}
}

func TestEvalConditions(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	q := CQ{
		Head:  []string{"accid"},
		Atoms: []Atom{{Rel: "Acc", Args: []Term{V("accid"), V("type"), V("city"), V("bal")}}},
		Conds: []Condition{
			{Left: V("bal"), Op: OpGE, Right: C(db.Int(900))},
			{Left: V("type"), Op: OpLikePrefix, Right: C(db.Str("Check"))},
		},
	}
	rows := e.Eval(q)
	if len(rows) != 2 { // A1 (900), A2 (1000)
		t.Fatalf("got %d rows, want 2", len(rows))
	}
}

func TestCmpOps(t *testing.T) {
	one, two := db.Int(1), db.Int(2)
	cases := []struct {
		op   CmpOp
		a, b db.Value
		want bool
	}{
		{OpEQ, one, one, true}, {OpEQ, one, two, false},
		{OpNE, one, two, true}, {OpNE, one, one, false},
		{OpLT, one, two, true}, {OpLT, two, one, false},
		{OpLE, one, one, true}, {OpLE, two, one, false},
		{OpGT, two, one, true}, {OpGT, one, one, false},
		{OpGE, one, one, true}, {OpGE, one, two, false},
		{OpLikePrefix, db.Str("PROMO X"), db.Str("PROMO"), true},
		{OpLikePrefix, db.Str("X PROMO"), db.Str("PROMO"), false},
		{OpLikePrefix, one, db.Str("1"), false},
		{OpNotLikePrefix, db.Str("X"), db.Str("PROMO"), true},
		{OpNotLikePrefix, db.Str("PROMO"), db.Str("PROMO"), false},
	}
	for i, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("case %d (%v %v %v): got %v", i, c.a, c.op, c.b, got)
		}
	}
}

func TestEvalEmptyResult(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	q := CQ{
		Head:  []string{"cid"},
		Atoms: []Atom{{Rel: "Cust", Args: []Term{V("cid"), C(db.Str("Nobody")), V("city")}}},
	}
	if rows := e.Eval(q); len(rows) != 0 {
		t.Errorf("got %d rows, want 0", len(rows))
	}
}

func TestEvalUCQ(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	u := UCQ{Disjuncts: []CQ{
		{Head: []string{"cid"}, Atoms: []Atom{{Rel: "Cust", Args: []Term{V("cid"), C(db.Str("Mary")), V("c")}}}},
		{Head: []string{"cid"}, Atoms: []Atom{{Rel: "Cust", Args: []Term{V("cid"), C(db.Str("John")), V("c")}}}},
	}}
	rows := e.EvalUCQ(u)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	answers := DistinctAnswers(rows)
	if len(answers) != 2 {
		t.Fatalf("distinct answers = %v", answers)
	}
}

func TestDistinctAnswersOrdering(t *testing.T) {
	rows := []Row{
		{Head: db.Tuple{db.Str("b")}},
		{Head: db.Tuple{db.Str("a")}},
		{Head: db.Tuple{db.Str("b")}},
	}
	answers := DistinctAnswers(rows)
	if len(answers) != 2 || answers[0][0].AsString() != "a" || answers[1][0].AsString() != "b" {
		t.Errorf("answers = %v", answers)
	}
}

func TestWithExtraCondsAndHead(t *testing.T) {
	u := Single(maryBalances())
	u2 := u.WithExtraConds(Condition{Left: V("bal"), Op: OpGT, Right: C(db.Int(0))})
	if len(u.Disjuncts[0].Conds) != 0 {
		t.Error("WithExtraConds mutated the original")
	}
	if len(u2.Disjuncts[0].Conds) != 1 {
		t.Error("condition not added")
	}
	u3 := u.WithHead("cid")
	if u3.Disjuncts[0].Head[0] != "cid" || u.Disjuncts[0].Head[0] != "bal" {
		t.Error("WithHead wrong")
	}
}

func TestPlanPrefersBoundAtoms(t *testing.T) {
	// Regardless of atom listing order the plan must start from the
	// selective constant atom; we verify via correct (and fast) results.
	in := bank()
	e := NewEvaluator(in)
	q := CQ{
		Head: []string{"bal"},
		Atoms: []Atom{
			{Rel: "Acc", Args: []Term{V("accid"), V("t"), V("ac"), V("bal")}},
			{Rel: "CustAcc", Args: []Term{V("cid"), V("accid")}},
			{Rel: "Cust", Args: []Term{V("cid"), C(db.Str("Mary")), V("city")}},
		},
	}
	rows := e.Eval(q)
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	p := planCQ(in, q)
	if p.order[0] != 2 {
		t.Errorf("plan should start with the constant-bound Cust atom, got %v", p.order)
	}
}

func TestEvalPanicsOnInvalidQuery(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	defer func() {
		if recover() == nil {
			t.Error("Eval on invalid query should panic")
		}
	}()
	e.Eval(CQ{Head: []string{"x"}, Atoms: []Atom{{Rel: "Missing", Args: []Term{V("x")}}}})
}

func TestQueryStringers(t *testing.T) {
	q := maryBalances()
	if s := q.String(); s == "" {
		t.Error("empty CQ string")
	}
	u := Single(q)
	if s := u.String(); s == "" {
		t.Error("empty UCQ string")
	}
	c := Condition{Left: V("x"), Op: OpNE, Right: C(db.Int(3))}
	if c.String() != "x <> 3" {
		t.Errorf("condition string = %q", c.String())
	}
	if V("x").String() != "x" || C(db.Str("s")).String() != `"s"` {
		t.Error("term strings")
	}
}

func TestVarsSorted(t *testing.T) {
	q := maryBalances()
	vars := q.Vars()
	for i := 1; i < len(vars); i++ {
		if vars[i-1] >= vars[i] {
			t.Fatalf("vars not sorted: %v", vars)
		}
	}
	if len(vars) != 6 {
		t.Errorf("vars = %v", vars)
	}
}

// TestEvaluatorConcurrentEval exercises the lazy index cache from many
// goroutines at once (run under -race): concurrent Eval calls must
// build each index exactly once semantically and return identical rows.
func TestEvaluatorConcurrentEval(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	want := e.Eval(maryBalances())
	queries := []CQ{maryBalances(), sameCity()}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				q := queries[(g+rep)%len(queries)]
				rows := e.Eval(q)
				if q.Head != nil && len(q.Head) == 1 && len(rows) != len(want) {
					errs <- "row count drifted under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
