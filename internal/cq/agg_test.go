package cq

import (
	"testing"

	"aggcavsat/internal/db"
)

func TestEvalAggCountStar(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	q := AggQuery{Op: CountStar, Underlying: Single(sameCity())}
	got, err := EvalAgg(e, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value.AsInt() != 3 {
		t.Fatalf("COUNT(*) = %v, want 3", got)
	}
}

func TestEvalAggSum(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	q := AggQuery{Op: Sum, AggVar: "bal", Underlying: Single(maryBalances())}
	got, err := EvalAgg(e, q)
	if err != nil {
		t.Fatal(err)
	}
	// All six assignments: 2*(1000 + 1200 - 100) = 4200.
	if len(got) != 1 || got[0].Value.AsInt() != 4200 {
		t.Fatalf("SUM = %v, want 4200", got)
	}
}

func TestEvalAggSumDistinct(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	q := AggQuery{Op: SumDistinct, AggVar: "bal", Underlying: Single(maryBalances())}
	got, err := EvalAgg(e, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value.AsInt() != 2100 { // 1000 + 1200 - 100
		t.Fatalf("SUM(DISTINCT) = %v, want 2100", got)
	}
}

func TestEvalAggCountDistinct(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	// Distinct account types.
	q := AggQuery{
		Op:     CountDistinct,
		AggVar: "type",
		Underlying: Single(CQ{
			Atoms: []Atom{{Rel: "Acc", Args: []Term{V("id"), V("type"), V("c"), V("b")}}},
		}),
	}
	got, err := EvalAgg(e, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value.AsInt() != 2 {
		t.Fatalf("COUNT(DISTINCT type) = %v, want 2", got)
	}
}

func TestEvalAggGroupBy(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	// COUNT(*) FROM Cust GROUP BY CITY.
	q := AggQuery{
		Op:      CountStar,
		GroupBy: []string{"city"},
		Underlying: Single(CQ{
			Atoms: []Atom{{Rel: "Cust", Args: []Term{V("cid"), V("n"), V("city")}}},
		}),
	}
	got, err := EvalAgg(e, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("groups = %v", got)
	}
	// Sorted by key: LA then SF.
	if got[0].Key[0].AsString() != "LA" || got[0].Value.AsInt() != 3 {
		t.Errorf("LA group = %v", got[0])
	}
	if got[1].Key[0].AsString() != "SF" || got[1].Value.AsInt() != 2 {
		t.Errorf("SF group = %v", got[1])
	}
}

func TestEvalAggMinMaxAvg(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	base := Single(CQ{
		Atoms: []Atom{{Rel: "Acc", Args: []Term{V("id"), V("t"), V("c"), V("bal")}}},
	})
	cases := []struct {
		op   AggOp
		want db.Value
	}{
		{Min, db.Int(-100)},
		{Max, db.Int(1200)},
		{Avg, db.Float(3300.0 / 5)},
	}
	for _, c := range cases {
		got, err := EvalAgg(e, AggQuery{Op: c.op, AggVar: "bal", Underlying: base})
		if err != nil {
			t.Fatal(err)
		}
		if !got[0].Value.Equal(c.want) {
			t.Errorf("%v = %v, want %v", c.op, got[0].Value, c.want)
		}
	}
}

func TestEvalAggEmptyScalar(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	empty := Single(CQ{
		Atoms: []Atom{{Rel: "Cust", Args: []Term{V("cid"), C(db.Str("Nobody")), V("c")}}},
	})
	got, err := EvalAgg(e, AggQuery{Op: CountStar, Underlying: empty})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value.AsInt() != 0 {
		t.Fatalf("empty COUNT(*) = %v, want 0", got)
	}
	got, err = EvalAgg(e, AggQuery{Op: Sum, AggVar: "c", Underlying: empty})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value.AsInt() != 0 {
		t.Fatalf("empty SUM = %v, want 0", got)
	}
	got, err = EvalAgg(e, AggQuery{Op: Max, AggVar: "c", Underlying: empty})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Value.IsNull() {
		t.Fatalf("empty MAX = %v, want NULL", got)
	}
}

func TestEvalAggEmptyGrouped(t *testing.T) {
	in := bank()
	e := NewEvaluator(in)
	empty := Single(CQ{
		Atoms: []Atom{{Rel: "Cust", Args: []Term{V("cid"), C(db.Str("Nobody")), V("city")}}},
	})
	got, err := EvalAgg(e, AggQuery{Op: CountStar, GroupBy: []string{"city"}, Underlying: empty})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("grouped empty result = %v, want none", got)
	}
}

func TestAggValidate(t *testing.T) {
	in := bank()
	q := AggQuery{Op: Sum, Underlying: Single(maryBalances())}
	if err := q.Validate(in.Schema()); err == nil {
		t.Error("SUM without AggVar accepted")
	}
	q = AggQuery{Op: Sum, AggVar: "nosuch", Underlying: Single(CQ{Atoms: maryBalances().Atoms})}
	if err := q.Validate(in.Schema()); err == nil {
		t.Error("unbound AggVar accepted")
	}
	q = AggQuery{Op: CountStar, Underlying: Single(maryBalances())}
	if err := q.Validate(in.Schema()); err != nil {
		t.Errorf("COUNT(*) rejected: %v", err)
	}
}

func TestAggBuildHead(t *testing.T) {
	q := AggQuery{
		Op:         Sum,
		AggVar:     "bal",
		GroupBy:    []string{"city"},
		Underlying: Single(maryBalances()),
	}
	qq := q.BuildHead()
	head := qq.Underlying.Disjuncts[0].Head
	if len(head) != 2 || head[0] != "city" || head[1] != "bal" {
		t.Errorf("head = %v", head)
	}
	// COUNT(*) heads contain only the grouping variables.
	q.Op = CountStar
	q.Underlying = Single(CQ{Atoms: q.Underlying.Disjuncts[0].Atoms})
	qq = q.BuildHead()
	head = qq.Underlying.Disjuncts[0].Head
	if len(head) != 1 || head[0] != "city" {
		t.Errorf("COUNT(*) head = %v", head)
	}
}

func TestAggBuildHeadKeepsPositionalHeads(t *testing.T) {
	// A pre-built head of the expected arity is kept verbatim, so front
	// ends may use per-disjunct variable names.
	q := AggQuery{
		Op:      Sum,
		AggVar:  "ignored",
		GroupBy: []string{"alsoIgnored"},
		Underlying: Single(CQ{
			Head:  []string{"city", "bal"},
			Atoms: maryBalances().Atoms,
		}),
	}
	qq := q.BuildHead()
	head := qq.Underlying.Disjuncts[0].Head
	if head[0] != "city" || head[1] != "bal" {
		t.Errorf("pre-built head rewritten: %v", head)
	}
}

func TestAggOpStrings(t *testing.T) {
	ops := []AggOp{CountStar, Count, CountDistinct, Sum, SumDistinct, Min, Max, Avg}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("empty string for %d", int(op))
		}
	}
	if CountStar.NeedsVar() || !Sum.NeedsVar() {
		t.Error("NeedsVar wrong")
	}
}

func TestEvalAggFloatSum(t *testing.T) {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name:  "F",
		Attrs: []db.Attribute{{Name: "x", Kind: db.KindFloat}},
	})
	in := db.NewInstance(s)
	in.MustInsert("F", db.Float(1.5))
	in.MustInsert("F", db.Float(2.25))
	in.MustInsert("F", db.Int(3)) // INT coerced into FLOAT column
	e := NewEvaluator(in)
	q := AggQuery{Op: Sum, AggVar: "x", Underlying: Single(CQ{
		Atoms: []Atom{{Rel: "F", Args: []Term{V("x")}}},
	})}
	got, err := EvalAgg(e, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value.AsFloat() != 6.75 {
		t.Fatalf("float SUM = %v", got[0].Value)
	}
}

func TestEvalAggNullsIgnored(t *testing.T) {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name:  "N",
		Attrs: []db.Attribute{{Name: "x", Kind: db.KindInt}},
	})
	in := db.NewInstance(s)
	in.MustInsert("N", db.Int(5))
	in.MustInsert("N", db.Null())
	e := NewEvaluator(in)
	base := Single(CQ{Atoms: []Atom{{Rel: "N", Args: []Term{V("x")}}}})
	cnt, _ := EvalAgg(e, AggQuery{Op: Count, AggVar: "x", Underlying: base})
	if cnt[0].Value.AsInt() != 1 {
		t.Errorf("COUNT(x) = %v, want 1 (NULL ignored)", cnt[0].Value)
	}
	star, _ := EvalAgg(e, AggQuery{Op: CountStar, Underlying: base})
	if star[0].Value.AsInt() != 2 {
		t.Errorf("COUNT(*) = %v, want 2", star[0].Value)
	}
	sum, _ := EvalAgg(e, AggQuery{Op: Sum, AggVar: "x", Underlying: base})
	if sum[0].Value.AsInt() != 5 {
		t.Errorf("SUM = %v, want 5", sum[0].Value)
	}
}
