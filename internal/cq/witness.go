package cq

import (
	"context"
	"sort"

	"aggcavsat/internal/db"
)

// Witness is one element of the bag of witnesses of a query: a set of
// facts supporting an answer, its multiplicity (the number of witnessing
// assignments producing exactly this fact set and answer), and the answer
// tuple it supports.
type Witness struct {
	Facts  []db.FactID // sorted ascending, deduplicated
	Answer db.Tuple    // values of the query head for this witness
	Mult   int64
}

// WitnessBag computes the bag of witnesses of a UCQ: rows are grouped by
// (fact set, answer) and their multiplicities accumulated. The result is
// deterministic (sorted by fact set, then answer).
func (e *Evaluator) WitnessBag(u UCQ) []Witness {
	rows := e.EvalUCQ(u)
	return CollectWitnesses(rows)
}

// WitnessBagCtx is WitnessBag with cooperative cancellation of the
// underlying (possibly parallel) evaluation.
func (e *Evaluator) WitnessBagCtx(ctx context.Context, u UCQ) ([]Witness, error) {
	rows, err := e.EvalUCQCtx(ctx, u)
	if err != nil {
		return nil, err
	}
	return CollectWitnesses(rows), nil
}

// CollectWitnesses groups witnessing-assignment rows into a witness bag.
// Groups are keyed by a uint64 hash of (fact set, answer) with exact
// verification inside each bucket, so a hash collision costs a
// comparison, never a miscount. The grouping equivalence is kind-exact
// on the answer (Int(1) and Float(1) are distinct answers), like the
// Tuple.Key string grouping it replaces.
func CollectWitnesses(rows []Row) []Witness {
	byHash := make(map[uint64][]*Witness, len(rows))
	order := make([]*Witness, 0, len(rows))
	for i := range rows {
		r := &rows[i]
		h := r.Head.HashExact(db.HashFactSet(r.Facts))
		var found *Witness
		for _, w := range byHash[h] {
			if w.Answer.EqualExact(r.Head) && compareFactSets(w.Facts, r.Facts) == 0 {
				found = w
				break
			}
		}
		if found != nil {
			found.Mult++
			continue
		}
		w := &Witness{Facts: r.Facts, Answer: r.Head, Mult: 1}
		byHash[h] = append(byHash[h], w)
		order = append(order, w)
	}
	out := make([]Witness, len(order))
	for i, w := range order {
		out[i] = *w
	}
	sort.Slice(out, func(i, j int) bool {
		if c := compareFactSets(out[i].Facts, out[j].Facts); c != 0 {
			return c < 0
		}
		return out[i].Answer.Compare(out[j].Answer) < 0
	})
	return out
}

func compareFactSets(a, b []db.FactID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// MinimalWitnesses filters the bag down to minimal witnesses per answer:
// a witness is dropped when another witness with the same answer uses a
// proper subset of its facts. Multiplicities of dropped witnesses are
// discarded (the DISTINCT reductions only need existence, not counts).
func MinimalWitnesses(bag []Witness) []Witness {
	byAnswer := map[string][]Witness{}
	var answerOrder []string
	var headPos []int
	for _, w := range bag {
		if len(headPos) != len(w.Answer) {
			headPos = headPos[:0]
			for i := range w.Answer {
				headPos = append(headPos, i)
			}
		}
		k := w.Answer.Key(headPos)
		if _, ok := byAnswer[k]; !ok {
			answerOrder = append(answerOrder, k)
		}
		byAnswer[k] = append(byAnswer[k], w)
	}
	var out []Witness
	for _, k := range answerOrder {
		group := byAnswer[k]
		for i, w := range group {
			minimal := true
			for j, other := range group {
				if i == j {
					continue
				}
				if len(other.Facts) < len(w.Facts) && isSubset(other.Facts, w.Facts) {
					minimal = false
					break
				}
				// Equal sets: keep the first occurrence only.
				if j < i && len(other.Facts) == len(w.Facts) && isSubset(other.Facts, w.Facts) {
					minimal = false
					break
				}
			}
			if minimal {
				out = append(out, w)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := compareFactSets(out[i].Facts, out[j].Facts); c != 0 {
			return c < 0
		}
		return out[i].Answer.Compare(out[j].Answer) < 0
	})
	return out
}

// isSubset reports whether sorted slice a ⊆ sorted slice b.
func isSubset(a, b []db.FactID) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// GroupWitnesses partitions a witness bag by a prefix of the answer tuple
// (the grouping attributes), preserving witness order inside each group.
// The remaining answer suffix (e.g. the aggregation attribute) stays in
// each witness's Answer. Groups come back sorted by group key.
func GroupWitnesses(bag []Witness, groupArity int) []WitnessGroup {
	byKey := map[string]*WitnessGroup{}
	var order []string
	positions := make([]int, groupArity)
	for i := range positions {
		positions[i] = i
	}
	for _, w := range bag {
		groupKey := w.Answer[:groupArity]
		k := groupKey.Key(positions)
		g, ok := byKey[k]
		if !ok {
			g = &WitnessGroup{Key: groupKey.Clone()}
			byKey[k] = g
			order = append(order, k)
		}
		rest := Witness{
			Facts:  w.Facts,
			Answer: w.Answer[groupArity:],
			Mult:   w.Mult,
		}
		g.Witnesses = append(g.Witnesses, rest)
	}
	out := make([]WitnessGroup, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Compare(out[j].Key) < 0 })
	return out
}

// WitnessGroup is the witness bag restricted to one value of the grouping
// attributes.
type WitnessGroup struct {
	Key       db.Tuple
	Witnesses []Witness
}
