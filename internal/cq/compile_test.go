package cq

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"aggcavsat/internal/db"
	"aggcavsat/internal/xrand"
)

// rowsEqual compares two row lists exactly: same order, kind-exact head
// values, identical fact sets. This is the "row for row" equivalence the
// compiled path promises against the interpreter.
func rowsEqual(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Head.EqualExact(b[i].Head) {
			return false
		}
		if compareFactSets(a[i].Facts, b[i].Facts) != 0 {
			return false
		}
	}
	return true
}

// randomEvalInstance builds an instance with skew (repeated join keys,
// key-kind collisions: INT values living in a FLOAT column) so that
// probe exactness and repeated-variable semantics are both exercised.
func randomEvalInstance(rng *xrand.Rand, n int) *db.Instance {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindInt},
			{Name: "g", Kind: db.KindString},
			{Name: "v", Kind: db.KindFloat},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "S",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindInt},
			{Name: "w", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	in := db.NewInstance(s)
	for i := 0; i < n; i++ {
		v := db.Value(db.Float(float64(rng.Intn(4))))
		if rng.Bool(0.5) {
			v = db.Int(int64(rng.Intn(4))) // INT in the FLOAT column
		}
		in.MustInsert("R", db.Int(int64(rng.Intn(n/2+1))), db.Str(fmt.Sprintf("g%d", rng.Intn(3))), v)
		if rng.Intn(3) > 0 {
			in.MustInsert("S", db.Int(int64(rng.Intn(n/2+1))), db.Int(int64(rng.Intn(5))))
		}
	}
	return in
}

// randomCQ generates a query over randomEvalInstance's schema: 1–3
// atoms with fresh, repeated (within- and cross-atom), and constant
// arguments, a random head, and random comparison conditions.
func randomCQ(rng *xrand.Rand) CQ {
	vars := []string{"x", "y", "z", "u", "w"}
	pick := func() Term { return V(vars[rng.Intn(len(vars))]) }
	var q CQ
	nAtoms := 1 + rng.Intn(3)
	for i := 0; i < nAtoms; i++ {
		if rng.Bool(0.5) {
			args := []Term{pick(), pick(), pick()}
			if rng.Intn(4) == 0 {
				args[0] = C(db.Int(int64(rng.Intn(6))))
			}
			if rng.Intn(4) == 0 {
				args[1] = C(db.Str(fmt.Sprintf("g%d", rng.Intn(4))))
			}
			if rng.Intn(5) == 0 {
				// Constant in the FLOAT column, sometimes as an INT
				// value: probes must stay kind-exact.
				if rng.Bool(0.5) {
					args[2] = C(db.Float(float64(rng.Intn(4))))
				} else {
					args[2] = C(db.Int(int64(rng.Intn(4))))
				}
			}
			q.Atoms = append(q.Atoms, Atom{Rel: "R", Args: args})
		} else {
			args := []Term{pick(), pick()}
			if rng.Intn(4) == 0 {
				args[1] = C(db.Int(int64(rng.Intn(5))))
			}
			q.Atoms = append(q.Atoms, Atom{Rel: "S", Args: args})
		}
	}
	bound := map[string]bool{}
	var boundList []string
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if !t.IsConst && !bound[t.Var] {
				bound[t.Var] = true
				boundList = append(boundList, t.Var)
			}
		}
	}
	for _, v := range boundList {
		if rng.Bool(0.5) {
			q.Head = append(q.Head, v)
		}
	}
	nConds := rng.Intn(3)
	if len(boundList) == 0 {
		nConds = 0 // all-constant atoms: no variables to compare
	}
	ops := []CmpOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
	for i := 0; i < nConds; i++ {
		left := V(boundList[rng.Intn(len(boundList))])
		right := Term(C(db.Int(int64(rng.Intn(5)))))
		if rng.Bool(0.5) {
			right = V(boundList[rng.Intn(len(boundList))])
		}
		q.Conds = append(q.Conds, Condition{Left: left, Op: ops[rng.Intn(len(ops))], Right: right})
	}
	return q
}

// TestCompiledMatchesInterpreterFixtures checks the paper fixtures.
func TestCompiledMatchesInterpreterFixtures(t *testing.T) {
	in := bank()
	compiled := NewEvaluator(in)
	interp := NewEvaluator(in)
	interp.SetInterpreted(true)
	queries := []CQ{
		maryBalances(),
		sameCity(),
		{Head: []string{"cid", "name"}, Atoms: []Atom{{Rel: "Cust", Args: []Term{V("cid"), V("name"), V("city")}}}},
		{
			Head: []string{"n1", "n2"},
			Atoms: []Atom{
				{Rel: "Cust", Args: []Term{V("c1"), V("n1"), V("city")}},
				{Rel: "Cust", Args: []Term{V("c2"), V("n2"), V("city")}},
			},
			Conds: []Condition{{Left: V("c1"), Op: OpLT, Right: V("c2")}},
		},
	}
	for i, q := range queries {
		want := interp.Eval(q)
		got := compiled.Eval(q)
		if !rowsEqual(got, want) {
			t.Errorf("query %d (%s): compiled rows differ\n got: %v\nwant: %v", i, q, got, want)
		}
	}
}

// TestCompiledMatchesInterpreterRandom is the row-for-row property test
// across randomized instances and query shapes.
func TestCompiledMatchesInterpreterRandom(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := xrand.New(uint64(trial)*2654435761 + 1)
		in := randomEvalInstance(rng, 20+rng.Intn(30))
		compiled := NewEvaluator(in)
		interp := NewEvaluator(in)
		interp.SetInterpreted(true)
		for qi := 0; qi < 8; qi++ {
			q := randomCQ(rng)
			want := interp.Eval(q)
			got := compiled.Eval(q)
			if !rowsEqual(got, want) {
				t.Fatalf("trial %d query %d (%s): compiled rows differ (%d vs %d)\n got: %v\nwant: %v",
					trial, qi, q, len(got), len(want), got, want)
			}
			// Witness bags built from either row stream must agree too.
			wantBag := CollectWitnesses(want)
			gotBag := CollectWitnesses(got)
			if len(wantBag) != len(gotBag) {
				t.Fatalf("trial %d query %d: witness bags differ", trial, qi)
			}
			for i := range wantBag {
				if wantBag[i].Mult != gotBag[i].Mult ||
					compareFactSets(wantBag[i].Facts, gotBag[i].Facts) != 0 ||
					!wantBag[i].Answer.EqualExact(gotBag[i].Answer) {
					t.Fatalf("trial %d query %d: witness %d differs", trial, qi, i)
				}
			}
		}
	}
}

// TestParallelEvalMatchesSequential checks that partitioned first-atom
// enumeration preserves the sequential row order exactly.
func TestParallelEvalMatchesSequential(t *testing.T) {
	rng := xrand.New(99)
	in := randomEvalInstance(rng, 1200) // well past parallelEvalThreshold
	seq := NewEvaluator(in)
	queries := []CQ{
		{Head: []string{"x", "w"}, Atoms: []Atom{
			{Rel: "R", Args: []Term{V("x"), V("g"), V("v")}},
			{Rel: "S", Args: []Term{V("x"), V("w")}},
		}},
		{Head: []string{"g"}, Atoms: []Atom{{Rel: "R", Args: []Term{V("x"), V("g"), V("v")}}},
			Conds: []Condition{{Left: V("v"), Op: OpGE, Right: C(db.Int(1))}}},
	}
	for _, par := range []int{2, 4, 8} {
		pe := NewEvaluator(in)
		pe.SetParallelism(par)
		for i, q := range queries {
			want := seq.Eval(q)
			got := pe.Eval(q)
			if !rowsEqual(got, want) {
				t.Fatalf("par=%d query %d: parallel rows differ (%d vs %d)", par, i, len(got), len(want))
			}
		}
	}
}

// TestWitnessBagConcurrentShared runs concurrent parallel witness
// enumeration on one shared evaluator (exercised under -race): plan
// cache, hash indexes, and worker fan-out must not interfere.
func TestWitnessBagConcurrentShared(t *testing.T) {
	rng := xrand.New(7)
	in := randomEvalInstance(rng, 800)
	e := NewEvaluator(in)
	e.SetParallelism(4)
	u := Single(CQ{Head: []string{"g", "w"}, Atoms: []Atom{
		{Rel: "R", Args: []Term{V("x"), V("g"), V("v")}},
		{Rel: "S", Args: []Term{V("x"), V("w")}},
	}})
	want, err := e.WitnessBagCtx(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				got, err := e.WitnessBagCtx(context.Background(), u)
				if err != nil {
					errs <- err.Error()
					return
				}
				if len(got) != len(want) {
					errs <- "witness bag drifted under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestEvalCtxCancel checks that a canceled context aborts both the
// sequential and the parallel runner with ctx.Err().
func TestEvalCtxCancel(t *testing.T) {
	rng := xrand.New(13)
	in := randomEvalInstance(rng, 1200)
	q := CQ{Head: []string{"x"}, Atoms: []Atom{{Rel: "R", Args: []Term{V("x"), V("g"), V("v")}}}}
	for _, par := range []int{0, 4} {
		e := NewEvaluator(in)
		e.SetParallelism(par)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := e.EvalCtx(ctx, q); err != context.Canceled {
			t.Errorf("par=%d: EvalCtx on canceled ctx = %v, want context.Canceled", par, err)
		}
	}
}

// TestTriviallyTrueQuery pins the zero-atom base case to the
// interpreter's behavior: one empty witnessing assignment.
func TestTriviallyTrueQuery(t *testing.T) {
	in := bank()
	compiled := NewEvaluator(in)
	interp := NewEvaluator(in)
	interp.SetInterpreted(true)
	q := CQ{}
	want := interp.Eval(q)
	got := compiled.Eval(q)
	if len(want) != 1 || !rowsEqual(got, want) {
		t.Fatalf("zero-atom query: got %v, want %v", got, want)
	}
}

func benchEvalInstance() (*db.Instance, CQ) {
	rng := xrand.New(42)
	in := randomEvalInstance(rng, 2000)
	q := CQ{Head: []string{"g", "w"}, Atoms: []Atom{
		{Rel: "R", Args: []Term{V("x"), V("g"), V("v")}},
		{Rel: "S", Args: []Term{V("x"), V("w")}},
	}}
	return in, q
}

func BenchmarkEvalCompiled(b *testing.B) {
	in, q := benchEvalInstance()
	e := NewEvaluator(in)
	e.Eval(q) // warm plan + index caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval(q)
	}
}

func BenchmarkEvalInterpreted(b *testing.B) {
	in, q := benchEvalInstance()
	e := NewEvaluator(in)
	e.SetInterpreted(true)
	e.Eval(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval(q)
	}
}

func BenchmarkWitnessBag(b *testing.B) {
	in, q := benchEvalInstance()
	e := NewEvaluator(in)
	u := Single(q)
	e.WitnessBag(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.WitnessBag(u)
	}
}
