package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func ck(q string, version uint64) cacheKey {
	return cacheKey{queryFP: q, constraintFP: "c", version: version}
}

func TestCacheHitAndMiss(t *testing.T) {
	c := newResultCache(4)
	ctx := context.Background()
	want := &QueryResponse{Digest: "d1"}
	got, served, err := c.Do(ctx, ck("q1", 1), func() (*QueryResponse, error) { return want, nil })
	if err != nil || served || got != want {
		t.Fatalf("miss: got %v served=%v err=%v", got, served, err)
	}
	got, served, err = c.Do(ctx, ck("q1", 1), func() (*QueryResponse, error) {
		t.Fatal("solve ran on a hit")
		return nil, nil
	})
	if err != nil || !served || got != want {
		t.Fatalf("hit: got %v served=%v err=%v", got, served, err)
	}
	// A new instance version is a different key.
	ran := false
	_, served, _ = c.Do(ctx, ck("q1", 2), func() (*QueryResponse, error) {
		ran = true
		return &QueryResponse{}, nil
	})
	if !ran || served {
		t.Error("version bump served a stale answer")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newResultCache(4)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, ck("q", 1), func() (*QueryResponse, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error cached: len = %d", c.Len())
	}
	ran := false
	c.Do(ctx, ck("q", 1), func() (*QueryResponse, error) {
		ran = true
		return &QueryResponse{}, nil
	})
	if !ran {
		t.Error("retry after error did not solve")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	ctx := context.Background()
	solve := func() (*QueryResponse, error) { return &QueryResponse{}, nil }
	c.Do(ctx, ck("a", 1), solve)
	c.Do(ctx, ck("b", 1), solve)
	c.Do(ctx, ck("a", 1), solve) // touch a: b becomes LRU
	c.Do(ctx, ck("c", 1), solve) // evicts b
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	_, served, _ := c.Do(ctx, ck("a", 1), solve)
	if !served {
		t.Error("recently-touched entry evicted")
	}
	ran := false
	c.Do(ctx, ck("b", 1), func() (*QueryResponse, error) {
		ran = true
		return &QueryResponse{}, nil
	})
	if !ran {
		t.Error("evicted entry still served")
	}
}

func TestCacheDisabledStillCoalesces(t *testing.T) {
	c := newResultCache(0)
	ctx := context.Background()
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	var solves atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(ctx, ck("q", 1), func() (*QueryResponse, error) {
				solves.Add(1)
				started <- struct{}{}
				<-release
				return &QueryResponse{}, nil
			})
		}()
	}
	<-started
	close(release)
	wg.Wait()
	if n := solves.Load(); n < 1 || n > 4 {
		t.Fatalf("solves = %d", n)
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache stored %d entries", c.Len())
	}
	// Next call must solve again: nothing was cached.
	ran := false
	c.Do(ctx, ck("q", 1), func() (*QueryResponse, error) {
		ran = true
		return &QueryResponse{}, nil
	})
	if !ran {
		t.Error("disabled cache served an entry")
	}
}

func TestCacheCoalesceSharesLeaderAnswer(t *testing.T) {
	c := newResultCache(4)
	ctx := context.Background()
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	want := &QueryResponse{Digest: "shared"}
	var solves atomic.Int64

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(ctx, ck("q", 1), func() (*QueryResponse, error) {
			solves.Add(1)
			close(leaderIn)
			<-release
			return want, nil
		})
	}()
	<-leaderIn

	const followers = 5
	results := make([]*QueryResponse, followers)
	servedFlags := make([]bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, served, err := c.Do(ctx, ck("q", 1), func() (*QueryResponse, error) {
				return nil, fmt.Errorf("follower %d solved", i)
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			results[i], servedFlags[i] = got, served
		}(i)
	}
	// Followers either join the leader's flight or, when they arrive
	// after it lands, hit the cached entry — both must serve the
	// leader's answer without solving.
	close(release)
	wg.Wait()

	if n := solves.Load(); n != 1 {
		t.Fatalf("solves = %d, want 1", n)
	}
	for i := 0; i < followers; i++ {
		if results[i] != want || !servedFlags[i] {
			t.Errorf("follower %d: got %v served=%v", i, results[i], servedFlags[i])
		}
	}
}

func TestCacheCoalesceContextCancel(t *testing.T) {
	c := newResultCache(4)
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), ck("q", 1), func() (*QueryResponse, error) {
			close(leaderIn)
			<-release
			return &QueryResponse{}, nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, ck("q", 1), func() (*QueryResponse, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	wg.Wait()
}

// TestCachePlannerModeSeparatesEntries: keys identical except for the
// routing policy never share an answer — a tenant re-attached under a
// different -planner mode (or two tenants differing only in policy)
// always recomputes, keeping QueryResponse.Route provenance truthful.
func TestCachePlannerModeSeparatesEntries(t *testing.T) {
	c := newResultCache(4)
	ctx := context.Background()
	auto := cacheKey{queryFP: "q", constraintFP: "c", version: 1, planner: "auto"}
	sat := cacheKey{queryFP: "q", constraintFP: "c", version: 1, planner: "force-sat"}
	c.Do(ctx, auto, func() (*QueryResponse, error) { return &QueryResponse{Route: "rewrite"}, nil })
	ran := false
	out, served, err := c.Do(ctx, sat, func() (*QueryResponse, error) {
		ran = true
		return &QueryResponse{Route: "sat"}, nil
	})
	if err != nil || served || !ran {
		t.Fatalf("mode flip served the other policy's answer: served=%v ran=%v err=%v", served, ran, err)
	}
	if out.Route != "sat" {
		t.Fatalf("route = %q", out.Route)
	}
	if got, served, _ := c.Do(ctx, auto, nil); !served || got.Route != "rewrite" {
		t.Fatalf("auto entry lost: served=%v %+v", served, got)
	}
}
