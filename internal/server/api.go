// Package server implements cavsatd's HTTP/JSON query service: a
// multi-tenant instance registry over aggcavsat.System, admission
// control with bounded in-flight solves and typed load shedding, and a
// result cache keyed by (query fingerprint, constraint fingerprint,
// instance version) with singleflight coalescing of identical
// concurrent queries. The PR 5 debug plane (/metrics, /healthz,
// /debug/trace, /debug/journal, pprof) mounts into the same mux, so one
// process serves both queries and its own observability.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"aggcavsat"
	"aggcavsat/internal/core"
	"aggcavsat/internal/db"
)

// QueryRequest is the body of POST /query (GET /query accepts the same
// fields as URL parameters: instance, q, label, timeout_ms).
type QueryRequest struct {
	// Instance names the tenant instance to query. Empty selects the
	// server's sole instance when exactly one is attached.
	Instance string `json:"instance,omitempty"`
	// SQL is the aggregation statement.
	SQL string `json:"sql"`
	// Label, when set, labels the query in journal lines and traces
	// (e.g. a workload query name); the journal entry is stamped
	// "<instance>/<label>". Defaults to the SQL text.
	Label string `json:"label,omitempty"`
	// TimeoutMS bounds this request's wall clock; 0 uses the server
	// default. The deadline propagates through QueryContext into the
	// solver's cooperative interrupts.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RangeJSON is one range consistent answer interval on the wire. Null
// endpoints are JSON null — the documented token for "no consistent
// value in this direction" (see aggcavsat.FormatRange for the text
// rendering); Text carries the human-readable form.
type RangeJSON struct {
	GLB  any    `json:"glb"`
	LUB  any    `json:"lub"`
	Text string `json:"text"`
	// FromConsistentPart marks intervals derived without any MaxSAT
	// instance (the low-selectivity shortcut).
	FromConsistentPart bool `json:"from_consistent_part,omitempty"`
	// EmptyPossible (MIN/MAX) marks groups some repair leaves empty.
	EmptyPossible bool `json:"empty_possible,omitempty"`
}

// RowJSON is one result group: the grouping key then one range per
// aggregate, in SELECT order.
type RowJSON struct {
	Key    []any       `json:"key"`
	Ranges []RangeJSON `json:"ranges"`
}

// QueryResponse is the result of /query.
type QueryResponse struct {
	Instance string `json:"instance"`
	// Version is the instance version the answer was computed against
	// (part of the result-cache key; bumped on every attach).
	Version uint64    `json:"version"`
	Columns []string  `json:"columns"`
	Rows    []RowJSON `json:"rows"`
	// PartialGroups counts groups dropped because some aggregate had no
	// consistent answer for them (multi-aggregate statements only).
	PartialGroups int `json:"partial_groups,omitempty"`
	// Digest is a 64-bit FNV-1a fingerprint of Columns+Rows; two
	// responses with equal digests carry identical answers, so replay
	// clients can detect answer drift without shipping rows around.
	Digest string `json:"digest"`
	// Cached reports that the answer came from the result cache without
	// touching the engine.
	Cached bool `json:"cached"`
	// TraceID is this request's W3C trace id (32 lowercase hex digits):
	// the caller's traceparent trace id when one was sent, otherwise
	// server-minted. It keys the journal line, the flight bundle, and
	// /debug/trace?trace=<id> when the trace was retained. The same id
	// travels in the Traceparent response header.
	TraceID string `json:"trace_id,omitempty"`
	// Route is the executor that computed the answer: "rewrite" (the
	// planner's SAT-free fast path), "sat" (the WPMaxSAT reduction), or
	// "mixed" when a multi-aggregate statement split. Cached answers
	// keep the route that originally computed them.
	Route string `json:"route,omitempty"`
	// ElapsedMS is the server-side latency of this request, queueing
	// included.
	ElapsedMS float64 `json:"elapsed_ms"`
	// SolveMS/SATCalls summarize the engine work (zero on cache hits).
	SolveMS  float64 `json:"solve_ms,omitempty"`
	SATCalls int64   `json:"sat_calls,omitempty"`
}

// Error codes of ErrorResponse.Code.
const (
	CodeOverloaded      = "overloaded"       // admission queue full or queue wait expired (HTTP 429)
	CodeTimeout         = "timeout"          // per-request deadline expired mid-solve (HTTP 504)
	CodeBudget          = "budget"           // solver conflict budget exhausted (HTTP 504)
	CodeBadRequest      = "bad_request"      // malformed body or parameters (HTTP 400)
	CodeBadQuery        = "bad_query"        // SQL failed to parse/validate (HTTP 400)
	CodeUnknownInstance = "unknown_instance" // no such tenant (HTTP 404)
	CodeInternal        = "internal"         // anything else (HTTP 500)
)

// ErrorResponse is the typed JSON error envelope every non-200 carries.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// RetryAfterMS accompanies CodeOverloaded (the Retry-After header
	// carries the same hint in whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// BuildResponse converts a facade result into the wire shape and stamps
// its digest. Shared by the serving path and by replay clients that
// re-execute queries in-process to verify a server's answers.
func BuildResponse(res *aggcavsat.Result) *QueryResponse {
	qr := &QueryResponse{
		Columns:       res.Columns,
		Rows:          make([]RowJSON, len(res.Rows)),
		PartialGroups: res.PartialGroups,
		Route:         res.Route,
		SolveMS:       float64(res.Stats.SolveTime.Microseconds()) / 1000,
		SATCalls:      res.Stats.SATCalls,
	}
	if qr.Columns == nil {
		qr.Columns = []string{}
	}
	for i, row := range res.Rows {
		rj := RowJSON{Key: make([]any, len(row.Key)), Ranges: make([]RangeJSON, len(row.Ranges))}
		for j, v := range row.Key {
			rj.Key[j] = valueJSON(v)
		}
		for j, rng := range row.Ranges {
			rj.Ranges[j] = RangeJSON{
				GLB:                valueJSON(rng.GLB),
				LUB:                valueJSON(rng.LUB),
				Text:               aggcavsat.FormatRange(rng),
				FromConsistentPart: rng.FromConsistentPart,
				EmptyPossible:      rng.EmptyPossible,
			}
		}
		qr.Rows[i] = rj
	}
	qr.Digest = digest(qr.Columns, qr.Rows)
	return qr
}

// valueJSON maps a db.Value onto its native JSON representation.
func valueJSON(v db.Value) any {
	switch v.Kind() {
	case db.KindInt:
		return v.AsInt()
	case db.KindFloat:
		return v.AsFloat()
	case db.KindString:
		return v.AsString()
	default:
		return nil
	}
}

// digest fingerprints the canonical JSON encoding of the answer shape.
// Marshaling is deterministic (ordered slices, no maps), so equal
// answers produce equal digests across processes.
func digest(columns []string, rows []RowJSON) string {
	b, err := json.Marshal(struct {
		Columns []string  `json:"c"`
		Rows    []RowJSON `json:"r"`
	}{columns, rows})
	if err != nil {
		// Only unmarshalable values could land here, and the shape is
		// closed under JSON-native types.
		return "unmarshalable"
	}
	return core.Fingerprint64(string(b))
}

// writeJSON encodes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError emits the typed error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}
