package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := newGate(2, 0, time.Second)
	ctx := context.Background()
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Full, no queue: immediate shed.
	if err := g.Acquire(ctx, 1); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	g.Release(1)
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestGateQueueTimesOut(t *testing.T) {
	g := newGate(1, 1, 20*time.Millisecond)
	ctx := context.Background()
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := g.Acquire(ctx, 1); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("timed out after %v, want ≥ maxWait", d)
	}
}

func TestGateContextCancelWhileQueued(t *testing.T) {
	g := newGate(1, 1, time.Minute)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, 1) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abandoned waiter must not hold a queue slot.
	g.Release(1)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("after abandon: %v", err)
	}
}

func TestGateFIFOHandoff(t *testing.T) {
	g := newGate(1, 4, time.Minute)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	const waiters = 3
	order := make(chan int, waiters)
	var started sync.WaitGroup
	for i := 0; i < waiters; i++ {
		started.Add(1)
		i := i
		go func() {
			// Stagger enqueueing so FIFO order is deterministic.
			time.Sleep(time.Duration(i*10) * time.Millisecond)
			started.Done()
			if err := g.Acquire(context.Background(), 1); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			g.Release(1)
		}()
	}
	started.Wait()
	time.Sleep(40 * time.Millisecond) // all three queued
	g.Release(1)
	for want := 0; want < waiters; want++ {
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("admitted waiter %d before %d", got, want)
			}
		case <-time.After(time.Second):
			t.Fatalf("waiter %d never admitted", want)
		}
	}
}

func TestGateWeightClampAndRelease(t *testing.T) {
	g := newGate(2, 0, time.Second)
	// A weight above capacity clamps instead of deadlocking forever.
	if err := g.Acquire(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background(), 1); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed while clamped weight holds all capacity", err)
	}
	g.Release(10)
	if err := g.Acquire(context.Background(), 2); err != nil {
		t.Fatalf("after clamped release: %v", err)
	}
}
