package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aggcavsat"
	"aggcavsat/internal/db"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/schemafile"
)

// writeFixture materializes a small inconsistent bank instance as a
// schema.txt + CSV directory (account A2 violates its key).
func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"schema.txt": "relation Acc (AID:string CITY:string BAL:int) key AID\n",
		"acc.csv":    "AID,CITY,BAL\nA1,LA,100\nA2,LA,50\nA2,SF,70\nA3,SJ,30\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// newTestServer boots a Server over the fixture with its handler on an
// httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	if _, err := srv.AttachDir("bank", writeFixture(t), aggcavsat.Options{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postQuery issues one POST /query and decodes either envelope.
func postQuery(t *testing.T, url string, req *QueryRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

const sumQuery = "SELECT SUM(BAL) FROM Acc"

func TestQueryAndResultCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	var solves atomic.Int64
	inner := srv.exec
	srv.exec = func(ctx context.Context, tn *Tenant, req *QueryRequest) (*aggcavsat.Result, error) {
		solves.Add(1)
		return inner(ctx, tn, req)
	}

	resp, body := postQuery(t, ts.URL, &QueryRequest{SQL: sumQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d %s", resp.StatusCode, body)
	}
	var first QueryResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first answer claims cached")
	}
	if first.Instance != "bank" || first.Version == 0 {
		t.Errorf("instance/version = %q/%d", first.Instance, first.Version)
	}
	// Consistent part: A1=100, A3=30; A2 contributes 50 or 70.
	if want := "[180, 200]"; len(first.Rows) != 1 || first.Rows[0].Ranges[0].Text != want {
		t.Fatalf("rows = %s", body)
	}

	// Same statement, reformatted: must hit the cache, skip the engine,
	// and carry the identical digest.
	resp, body = postQuery(t, ts.URL, &QueryRequest{SQL: "SELECT  SUM(BAL)\nFROM Acc"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second query: %d %s", resp.StatusCode, body)
	}
	var second QueryResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second answer not served from cache")
	}
	if second.Digest != first.Digest {
		t.Errorf("digest drifted: %s vs %s", second.Digest, first.Digest)
	}
	if n := solves.Load(); n != 1 {
		t.Errorf("engine ran %d times, want 1", n)
	}
	reg := srv.cfg.Metrics
	if v := reg.Counter(MetricCacheHit).Value(); v != 1 {
		t.Errorf("cache hits = %d, want 1", v)
	}
	if v := reg.Counter(MetricCacheMiss).Value(); v != 1 {
		t.Errorf("cache misses = %d, want 1", v)
	}
}

func TestShedReturns429(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1, RetryAfter: 2 * time.Second})
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv.exec = func(ctx context.Context, tn *Tenant, req *QueryRequest) (*aggcavsat.Result, error) {
		once.Do(func() { close(entered) })
		<-release
		return &aggcavsat.Result{}, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postQuery(t, ts.URL, &QueryRequest{SQL: "SELECT COUNT(BAL) FROM Acc", Label: "wedged"})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("wedged query finished %d, want 200", resp.StatusCode)
		}
	}()
	<-entered

	// Distinct SQL so the request reaches the gate instead of
	// coalescing with the wedged solve.
	resp, body := postQuery(t, ts.URL, &QueryRequest{SQL: sumQuery})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d %s, want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var env ErrorResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != CodeOverloaded || env.RetryAfterMS != 2000 {
		t.Errorf("envelope = %+v", env)
	}
	if v := srv.cfg.Metrics.Counter(MetricShed).Value(); v != 1 {
		t.Errorf("shed counter = %d, want 1", v)
	}

	close(release)
	wg.Wait()
}

func TestQueueWaitExpiresInto429(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 30 * time.Millisecond})
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv.exec = func(ctx context.Context, tn *Tenant, req *QueryRequest) (*aggcavsat.Result, error) {
		once.Do(func() { close(entered) })
		<-release
		return &aggcavsat.Result{}, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postQuery(t, ts.URL, &QueryRequest{SQL: "SELECT COUNT(BAL) FROM Acc"})
	}()
	<-entered

	start := time.Now()
	resp, body := postQuery(t, ts.URL, &QueryRequest{SQL: sumQuery})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d %s, want 429", resp.StatusCode, body)
	}
	if waited := time.Since(start); waited < 25*time.Millisecond {
		t.Errorf("shed after %v, want a full queue wait", waited)
	}
	close(release)
	wg.Wait()
}

func TestDeadlineReturnsTypedTimeout(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.exec = func(ctx context.Context, tn *Tenant, req *QueryRequest) (*aggcavsat.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}

	resp, body := postQuery(t, ts.URL, &QueryRequest{SQL: sumQuery, TimeoutMS: 30})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d %s, want 504", resp.StatusCode, body)
	}
	var env ErrorResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != CodeTimeout {
		t.Errorf("code = %q, want %q", env.Code, CodeTimeout)
	}
	if v := srv.cfg.Metrics.Counter(MetricTimeouts).Value(); v != 1 {
		t.Errorf("timeout counter = %d, want 1", v)
	}
	// Timeouts are never cached: the next request solves again.
	srv.exec = srv.runQuery
	resp, body = postQuery(t, ts.URL, &QueryRequest{SQL: sumQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after timeout: %d %s", resp.StatusCode, body)
	}
}

func TestServedAnswersMatchDirectExecution(t *testing.T) {
	dir := writeFixture(t)
	srv := New(Config{})
	if _, err := srv.AttachDir("bank", dir, aggcavsat.Options{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// An independent in-process load of the same directory must produce
	// byte-identical digests for every statement the server answers.
	sys, _, _, err := LoadTenantDir(dir, aggcavsat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		sumQuery,
		"SELECT COUNT(BAL) FROM Acc",
		"SELECT MIN(BAL) FROM Acc",
		"SELECT CITY, MAX(BAL) FROM Acc GROUP BY CITY",
	} {
		resp, body := postQuery(t, ts.URL, &QueryRequest{SQL: sql})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", sql, resp.StatusCode, body)
		}
		var served QueryResponse
		if err := json.Unmarshal(body, &served); err != nil {
			t.Fatal(err)
		}
		res, err := sys.Query(sql)
		if err != nil {
			t.Fatalf("%s: direct: %v", sql, err)
		}
		direct := BuildResponse(res)
		if served.Digest != direct.Digest {
			t.Errorf("%s: served digest %s != direct %s", sql, served.Digest, direct.Digest)
		}
	}
}

func TestAdminInstancesAndCacheInvalidation(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/admin/instances")
	if err != nil {
		t.Fatal(err)
	}
	var infos []TenantInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "bank" || infos[0].Mode != "keys" || infos[0].Facts != 4 {
		t.Fatalf("instances = %+v", infos)
	}

	_, body := postQuery(t, ts.URL, &QueryRequest{SQL: sumQuery})
	var first QueryResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}

	// Hot re-attach under the same name: version bumps, so the cached
	// answer for the old version is unreachable.
	attach, _ := json.Marshal(map[string]string{"name": "bank", "dir": writeFixture(t)})
	resp, err = http.Post(ts.URL+"/admin/instances", "application/json", bytes.NewReader(attach))
	if err != nil {
		t.Fatal(err)
	}
	var info TenantInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Version <= first.Version {
		t.Fatalf("re-attach version %d, want > %d", info.Version, first.Version)
	}

	_, body = postQuery(t, ts.URL, &QueryRequest{SQL: sumQuery})
	var second QueryResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Error("answer served from the previous instance version's cache")
	}
	if second.Version != info.Version {
		t.Errorf("answer version %d, want %d", second.Version, info.Version)
	}
	if v := srv.cfg.Metrics.Gauge(MetricTenants).Value(); v != 1 {
		t.Errorf("instances gauge = %d, want 1", v)
	}
}

func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name   string
		req    *QueryRequest
		status int
		code   string
	}{
		{"unknown instance", &QueryRequest{Instance: "nope", SQL: sumQuery}, http.StatusNotFound, CodeUnknownInstance},
		{"bad sql", &QueryRequest{SQL: "DELETE FROM Acc"}, http.StatusBadRequest, CodeBadQuery},
		{"empty sql", &QueryRequest{SQL: "  "}, http.StatusBadRequest, CodeBadRequest},
	} {
		resp, body := postQuery(t, ts.URL, tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d %s, want %d", tc.name, resp.StatusCode, body, tc.status)
			continue
		}
		var env ErrorResponse
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if env.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, env.Code, tc.code)
		}
	}
}

func TestGetQueryAndDebugPlane(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/query?q=" + strings.ReplaceAll(sumQuery, " ", "+") + "&label=smoke")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /query = %d", resp.StatusCode)
	}

	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(metrics.Body)
	for _, want := range []string{MetricRequests, MetricShed, MetricInflight, MetricCacheHit} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d", health.StatusCode)
	}
}

func TestJournalCarriesTenantLabel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := obsv.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Journal: j})

	resp, body := postQuery(t, ts.URL, &QueryRequest{SQL: sumQuery, Label: "Q-sum"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := obsv.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no journal entries written")
	}
	if got := entries[0].Query; got != "bank/Q-sum" {
		t.Errorf("journal label = %q, want %q", got, "bank/Q-sum")
	}
}

func TestCoalescedFollowersShareOneSolve(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 2})
	var solves atomic.Int64
	release := make(chan struct{})
	inner := srv.exec
	srv.exec = func(ctx context.Context, tn *Tenant, req *QueryRequest) (*aggcavsat.Result, error) {
		solves.Add(1)
		<-release
		return inner(ctx, tn, req)
	}

	const followers = 4
	var wg sync.WaitGroup
	digests := make([]string, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postQuery(t, ts.URL, &QueryRequest{SQL: sumQuery})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("follower %d: %d %s", i, resp.StatusCode, body)
				return
			}
			var out QueryResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			digests[i] = out.Digest
		}(i)
	}
	// Wait until the leader is wedged inside exec, then release; the
	// followers must all ride its solve.
	for solves.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let followers reach the flight
	close(release)
	wg.Wait()

	if n := solves.Load(); n != 1 {
		t.Errorf("engine ran %d times for %d identical queries, want 1", n, followers)
	}
	for i := 1; i < followers; i++ {
		if digests[i] != digests[0] {
			t.Errorf("follower %d digest %s != %s", i, digests[i], digests[0])
		}
	}
	if v := srv.cfg.Metrics.Counter(MetricCoalesced).Value(); v == 0 {
		t.Error("coalesce counter stayed zero")
	}
}

// TestRouteCountersSumToServedResponses pins the service-level metrics
// contract: every 200 /query response — cache hits included — bumps
// exactly one cavsatd_route_total counter, cached answers count under
// the route that originally computed them, and non-200 responses count
// nothing.
func TestRouteCountersSumToServedResponses(t *testing.T) {
	srv, ts := newTestServer(t, Config{Planner: aggcavsat.PlannerAuto})
	served := 0
	query := func(sql string) QueryResponse {
		t.Helper()
		resp, body := postQuery(t, ts.URL, &QueryRequest{SQL: sql})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", sql, resp.StatusCode, body)
		}
		served++
		var out QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := query(sumQuery) // single-relation SUM: the rewrite fast path
	if first.Route != "rewrite" || first.Cached {
		t.Fatalf("first response route %q cached %v, want fresh rewrite", first.Route, first.Cached)
	}
	cached := query(sumQuery) // cache hit keeps the original route
	if !cached.Cached || cached.Route != "rewrite" {
		t.Fatalf("cached response route %q cached %v", cached.Route, cached.Cached)
	}
	satOut := query("SELECT COUNT(DISTINCT BAL) FROM Acc") // outside the rewriting
	if satOut.Route != "sat" {
		t.Fatalf("DISTINCT routed %q, want sat", satOut.Route)
	}

	// A failed request counts no route.
	if resp, _ := postQuery(t, ts.URL, &QueryRequest{SQL: "DELETE FROM Acc"}); resp.StatusCode == http.StatusOK {
		t.Fatal("invalid SQL served")
	}

	reg := srv.cfg.Metrics
	rw := reg.Counter(MetricRouteRewrite).Value()
	sat := reg.Counter(MetricRouteSAT).Value()
	mixed := reg.Counter(MetricRouteMixed).Value()
	if rw+sat+mixed != int64(served) {
		t.Fatalf("route counters %d+%d+%d != %d served responses", rw, sat, mixed, served)
	}
	if rw != 2 || sat != 1 {
		t.Fatalf("rewrite=%d sat=%d, want 2 and 1", rw, sat)
	}

	// The tenant listing advertises the serving policy.
	resp, err := http.Get(ts.URL + "/admin/instances")
	if err != nil {
		t.Fatal(err)
	}
	var infos []TenantInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Planner != "auto" {
		t.Fatalf("instances = %+v", infos)
	}

	// /metrics exposes the family with one TYPE line and all three labels.
	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(metrics.Body)
	if got := strings.Count(buf.String(), "# TYPE cavsatd_route_total counter"); got != 1 {
		t.Errorf("cavsatd_route_total TYPE lines = %d, want 1", got)
	}
	for _, want := range []string{MetricRouteRewrite, MetricRouteSAT, MetricRouteMixed} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestSnapshotTenantServing: a directory holding a columnar snapshot is
// served from the mmap'ed snapshot (the CSVs are deleted to prove it),
// answers match the CSV-backed tenant exactly, and the snapshot's
// content fingerprint reaches the tenant listing and the cache key.
func TestSnapshotTenantServing(t *testing.T) {
	csvDir := writeFixture(t)

	// Build the snapshot from the CSV fixture, then strip the CSVs from
	// a second directory so only the snapshot (plus schema.txt for the
	// constraints) can serve it.
	f, err := os.Open(filepath.Join(csvDir, "schema.txt"))
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := schemafile.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	in, err := db.LoadDir(parsed.Schema, csvDir)
	if err != nil {
		t.Fatal(err)
	}
	snapDir := t.TempDir()
	schemaBytes, err := os.ReadFile(filepath.Join(csvDir, "schema.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(snapDir, "schema.txt"), schemaBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveSnapshot(in, filepath.Join(snapDir, db.SnapshotFileName)); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{})
	if _, err := srv.AttachDir("csv", csvDir, aggcavsat.Options{}); err != nil {
		t.Fatal(err)
	}
	tn, err := srv.AttachDir("snap", snapDir, aggcavsat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tn.DataVersion == 0 {
		t.Fatal("snapshot tenant has no data version")
	}
	if got := srv.tenants.byName["csv"].DataVersion; got != 0 {
		t.Fatalf("CSV tenant claims data version %x", got)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ask := func(instance string) *QueryResponse {
		resp, body := postQuery(t, ts.URL, &QueryRequest{Instance: instance, SQL: sumQuery})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", instance, resp.StatusCode, body)
		}
		var qr QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		return &qr
	}
	fromCSV, fromSnap := ask("csv"), ask("snap")
	if fromSnap.Digest != fromCSV.Digest {
		t.Fatalf("snapshot answer digest %s != CSV answer digest %s", fromSnap.Digest, fromCSV.Digest)
	}
	if len(fromSnap.Rows) != 1 || fromSnap.Rows[0].Ranges[0].Text != "[180, 200]" {
		t.Fatalf("snapshot rows = %+v", fromSnap.Rows)
	}

	// The listing advertises the snapshot fingerprint on the snapshot
	// tenant only.
	resp, err := http.Get(ts.URL + "/admin/instances")
	if err != nil {
		t.Fatal(err)
	}
	var infos []TenantInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	byName := map[string]TenantInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	if byName["snap"].DataVersion == "" {
		t.Fatal("snapshot tenant listing lacks data_version")
	}
	if byName["csv"].DataVersion != "" {
		t.Fatalf("CSV tenant listing has data_version %q", byName["csv"].DataVersion)
	}

	// A snapshot whose schema disagrees with schema.txt is refused.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "schema.txt"),
		[]byte("relation Acc (AID:string CITY:string) key AID\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, db.SnapshotFileName),
		mustReadFile(t, filepath.Join(snapDir, db.SnapshotFileName)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AttachDir("bad", bad, aggcavsat.Options{}); err == nil {
		t.Fatal("attach with mismatched snapshot schema must fail")
	}
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
