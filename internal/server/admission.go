package server

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"aggcavsat/internal/obsv"
)

// Typed admission failures. Both map to HTTP 429 (the request never
// started solving), distinguished in metrics.
var (
	// ErrShed reports an admission queue at capacity: the request was
	// rejected immediately.
	ErrShed = errors.New("server: overloaded, queue full")
	// ErrQueueTimeout reports a request that waited its full queue-wait
	// allowance without a slot freeing up.
	ErrQueueTimeout = errors.New("server: overloaded, queue wait expired")
)

// gate is a weighted semaphore with a bounded FIFO wait queue — the
// server's admission controller. Capacity units are "solve weight"
// (requests acquire 1 today; the weighting exists so heavier statements
// can claim more than one slot without changing the contract). At most
// maxQueue requests may wait for slots; arrivals beyond that are shed
// immediately, and waiters that outlive maxWait (or their context) are
// shed late. Fairness is strict FIFO: a waiter is admitted only when
// every earlier waiter was admitted or gave up, so heavy requests
// cannot be starved by a stream of light ones.
type gate struct {
	mu      sync.Mutex
	cap     int64
	cur     int64
	maxWait time.Duration

	maxQueue int
	waiters  *list.List // of *gateWaiter, FIFO

	// Gauges mirror the gate state into the metrics registry (nil-safe:
	// a gate can run unwired in tests).
	inflight *obsv.Gauge
	queued   *obsv.Gauge
}

type gateWaiter struct {
	weight int64
	ready  chan struct{} // closed by release when the slot is granted
}

// newGate builds a gate admitting capacity weight units with at most
// maxQueue waiting requests, each waiting at most maxWait.
func newGate(capacity int64, maxQueue int, maxWait time.Duration) *gate {
	if capacity <= 0 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{
		cap:      capacity,
		maxWait:  maxWait,
		maxQueue: maxQueue,
		waiters:  list.New(),
	}
}

// wire attaches the in-flight and queue-depth gauges.
func (g *gate) wire(inflight, queued *obsv.Gauge) {
	g.inflight = inflight
	g.queued = queued
}

// Acquire claims weight units, waiting in FIFO order when the gate is
// full. It fails fast with ErrShed when the wait queue is at capacity,
// ErrQueueTimeout when maxWait elapses first, or ctx.Err() when the
// caller gives up. A weight above capacity is clamped (it could never
// be admitted otherwise).
func (g *gate) Acquire(ctx context.Context, weight int64) error {
	if weight <= 0 {
		weight = 1
	}
	if weight > g.cap {
		weight = g.cap
	}
	g.mu.Lock()
	if g.cur+weight <= g.cap && g.waiters.Len() == 0 {
		g.cur += weight
		g.mu.Unlock()
		g.setGauges()
		return nil
	}
	if g.waiters.Len() >= g.maxQueue {
		g.mu.Unlock()
		return ErrShed
	}
	w := &gateWaiter{weight: weight, ready: make(chan struct{})}
	elem := g.waiters.PushBack(w)
	g.mu.Unlock()
	g.setGauges()

	var expire <-chan time.Time
	if g.maxWait > 0 {
		t := time.NewTimer(g.maxWait)
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-w.ready:
		g.setGauges()
		return nil
	case <-expire:
		return g.abandon(elem, w, ErrQueueTimeout)
	case <-ctx.Done():
		return g.abandon(elem, w, ctx.Err())
	}
}

// abandon removes a waiter that gave up; if the slot was granted in the
// race window, the grant is forwarded instead of leaked.
func (g *gate) abandon(elem *list.Element, w *gateWaiter, cause error) error {
	g.mu.Lock()
	select {
	case <-w.ready:
		// Granted while we were giving up: keep the slot and succeed —
		// releasing here would over-free, dropping it would leak.
		g.mu.Unlock()
		g.setGauges()
		return nil
	default:
	}
	g.waiters.Remove(elem)
	g.grantLocked()
	g.mu.Unlock()
	g.setGauges()
	return cause
}

// Release returns weight units and hands freed capacity to the queue.
func (g *gate) Release(weight int64) {
	if weight <= 0 {
		weight = 1
	}
	if weight > g.cap {
		weight = g.cap
	}
	g.mu.Lock()
	g.cur -= weight
	if g.cur < 0 {
		g.cur = 0
	}
	g.grantLocked()
	g.mu.Unlock()
	g.setGauges()
}

// grantLocked admits queued waiters in FIFO order while capacity lasts.
func (g *gate) grantLocked() {
	for g.waiters.Len() > 0 {
		front := g.waiters.Front()
		w := front.Value.(*gateWaiter)
		if g.cur+w.weight > g.cap {
			return
		}
		g.cur += w.weight
		g.waiters.Remove(front)
		close(w.ready)
	}
}

// setGauges publishes the current state (outside g.mu; the values are
// re-read, so late writes converge).
func (g *gate) setGauges() {
	if g.inflight == nil {
		return
	}
	g.mu.Lock()
	cur, queued := g.cur, int64(g.waiters.Len())
	g.mu.Unlock()
	g.inflight.Set(cur)
	g.queued.Set(queued)
}
