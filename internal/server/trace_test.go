package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aggcavsat"
	"aggcavsat/internal/obsv"
)

// TestTraceIdentityEndToEnd pins the request-correlation contract: the
// caller's traceparent trace id must come back in the Traceparent
// response header and the JSON body, and the same id must be stamped on
// the journal line, the explain report, and the flight bundle of the
// solve it triggered — one id to grep across every artifact.
func TestTraceIdentityEndToEnd(t *testing.T) {
	j := obsv.NewJournal(io.Discard, 128)
	defer j.Close()
	tracer := obsv.NewTracer()

	var mu sync.Mutex
	var bundles []*aggcavsat.FlightBundle

	srv := New(Config{Metrics: obsv.NewRegistry(), Journal: j, Tracer: tracer})
	if _, err := srv.AttachDir("bank", writeFixture(t), aggcavsat.Options{
		Explain:   true,
		SlowQuery: time.Nanosecond, // every solve is "slow" → bundle dumped
		OnAnomaly: func(b *aggcavsat.FlightBundle) {
			mu.Lock()
			bundles = append(bundles, b)
			mu.Unlock()
		},
	}); err != nil {
		t.Fatal(err)
	}
	var results []*aggcavsat.Result
	inner := srv.exec
	srv.exec = func(ctx context.Context, tn *Tenant, req *QueryRequest) (*aggcavsat.Result, error) {
		res, err := inner(ctx, tn, req)
		mu.Lock()
		results = append(results, res)
		mu.Unlock()
		return res, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const wantTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const caller = "00-" + wantTrace + "-00f067aa0ba902b7-01"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/query?q="+
		"SELECT+SUM(BAL)+FROM+Acc", nil)
	req.Header.Set("traceparent", caller)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}

	// 1. Response header: same trace id, the server's own span id.
	hdr := resp.Header.Get("Traceparent")
	tc, err := obsv.ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("response Traceparent %q: %v", hdr, err)
	}
	if tc.TraceID.String() != wantTrace {
		t.Errorf("header trace id = %s, want %s", tc.TraceID, wantTrace)
	}
	if tc.SpanID.String() == "00f067aa0ba902b7" {
		t.Error("header parent-id echoes the caller's span instead of the server root span")
	}

	// 2. JSON body.
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != wantTrace {
		t.Errorf("body trace_id = %q, want %s", out.TraceID, wantTrace)
	}

	// 3. Journal line of the solve.
	entries := j.Tail(8)
	if len(entries) == 0 {
		t.Fatal("no journal entries")
	}
	last := entries[len(entries)-1]
	if last.TraceID != wantTrace {
		t.Errorf("journal trace_id = %q, want %s", last.TraceID, wantTrace)
	}

	// 4. Explain report of the solve.
	mu.Lock()
	defer mu.Unlock()
	if len(results) != 1 || len(results[0].Explains) == 0 {
		t.Fatalf("captured %d results", len(results))
	}
	if got := results[0].Explains[0].TraceID; got != wantTrace {
		t.Errorf("explain trace_id = %q, want %s", got, wantTrace)
	}

	// 5. Flight bundle of the (forced-slow) solve.
	if len(bundles) != 1 {
		t.Fatalf("OnAnomaly fired %d times, want 1", len(bundles))
	}
	if bundles[0].TraceID != wantTrace {
		t.Errorf("bundle trace_id = %q, want %s", bundles[0].TraceID, wantTrace)
	}

	// 6. The per-request trace was retained ("slow" SLO breach is
	// impossible here — the request is fast — but outcome-based and
	// latency-based retention both funnel through the same store;
	// verify via the process tracer absorb instead: the global tracer
	// now holds the request's spans.)
	if tracer.Len() == 0 {
		t.Error("process tracer absorbed no spans from the request")
	}
}

// TestTraceMintedWhenHeaderMissingOrMalformed checks the W3C restart
// rule: no traceparent, or a malformed one, yields a fresh valid trace
// id rather than an error or an all-zero id.
func TestTraceMintedWhenHeaderMissingOrMalformed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	seen := map[string]bool{}
	for _, hdr := range []string{"", "garbage", "00-0000-bad-ff"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/query?q=SELECT+SUM(BAL)+FROM+Acc", nil)
		if hdr != "" {
			req.Header.Set("traceparent", hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query with traceparent %q: %d %s", hdr, resp.StatusCode, body)
		}
		var out QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.TraceID) != 32 || out.TraceID == strings.Repeat("0", 32) {
			t.Fatalf("minted trace id %q invalid", out.TraceID)
		}
		if seen[out.TraceID] {
			t.Fatalf("trace id %s repeated across requests", out.TraceID)
		}
		seen[out.TraceID] = true
	}
}

// TestTailRetentionAndSLOEndpoint drives error and slow outcomes
// through the server and checks the retention plane: the traces appear
// under /debug/trace, /debug/slo reports attainment consistent with the
// labeled families, and /healthz carries the instance count.
func TestTailRetentionAndSLOEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{Journal: obsv.NewJournal(io.Discard, 16)})

	// One ok request, one bad-query error.
	resp, body := postQuery(t, ts.URL, &QueryRequest{SQL: sumQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ok query: %d %s", resp.StatusCode, body)
	}
	resp, _ = postQuery(t, ts.URL, &QueryRequest{SQL: "SELECT nonsense"})
	if resp.StatusCode == http.StatusOK {
		t.Fatal("bad query succeeded")
	}

	// The errored request must be retained with reason "error".
	list := srv.traces.List()
	if len(list) != 1 || list[0].Reason != "error" {
		t.Fatalf("retained = %+v, want one 'error' trace", list)
	}
	id := list[0].TraceID.String()

	// /debug/trace?trace=<id> serves the retained span tree.
	tr, err := http.Get(ts.URL + "/debug/trace?trace=" + id)
	if err != nil {
		t.Fatal(err)
	}
	treeBody, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK || !strings.Contains(string(treeBody), "trace "+id) {
		t.Fatalf("/debug/trace?trace=%s: %d %s", id, tr.StatusCode, treeBody)
	}
	if !strings.Contains(string(treeBody), "server.request") {
		t.Fatalf("retained tree missing the root span:\n%s", treeBody)
	}

	// /debug/trace?list=1 lists it.
	lr, err := http.Get(ts.URL + "/debug/trace?list=1")
	if err != nil {
		t.Fatal(err)
	}
	listBody, _ := io.ReadAll(lr.Body)
	lr.Body.Close()
	if !strings.Contains(string(listBody), id) {
		t.Fatalf("/debug/trace?list=1 missing %s:\n%s", id, listBody)
	}

	// /debug/slo: availability attainment is 1 ok of 2 total = 0.5 and
	// must reconcile with the labeled family sums.
	sr, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var rep obsv.SLOReport
	if err := json.NewDecoder(sr.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if len(rep.Objectives) != 2 {
		t.Fatalf("objectives = %d", len(rep.Objectives))
	}
	avail := rep.Objectives[0]
	if avail.Total != 2 || avail.Good != 1 {
		t.Fatalf("availability %d/%d, want 1/2", avail.Good, avail.Total)
	}
	counts := srv.sloCounts()
	if counts.Total != avail.Total || counts.Good != avail.Good {
		t.Fatalf("/debug/slo (%d/%d) does not reconcile with the labeled families (%d/%d)",
			avail.Good, avail.Total, counts.Good, counts.Total)
	}

	// The labeled family carries the per-outcome split.
	isOutcome := func(want string) func([]string) bool {
		return func(values []string) bool { return values[2] == want }
	}
	if ok := srv.requests.Sum(isOutcome("ok")); ok != 1 {
		t.Errorf(`outcome="ok" sum = %d, want 1`, ok)
	}
	if errs := srv.requests.Sum(isOutcome("error")); errs != 1 {
		t.Errorf(`outcome="error" sum = %d, want 1`, errs)
	}

	// /healthz: instance count and journal counters.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		UptimeS        float64        `json:"uptime_s"`
		JournalDropped *int64         `json:"journal_dropped"`
		Extra          map[string]any `json:"extra"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.Extra["instances"] != float64(1) {
		t.Errorf("healthz instances = %v, want 1", health.Extra["instances"])
	}
	if health.JournalDropped == nil || *health.JournalDropped != 0 {
		t.Errorf("healthz journal_dropped = %v, want 0", health.JournalDropped)
	}
}

// TestClientPropagatesTraceparent checks the client side of the
// contract: Query sends a traceparent (minted or from the context) and
// the response's trace id matches it.
func TestClientPropagatesTraceparent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := NewClient(ts.URL)

	// Explicit context identity wins.
	tc := obsv.NewTraceContext()
	ctx := obsv.WithTraceContext(context.Background(), tc)
	out, err := c.Query(ctx, &QueryRequest{SQL: sumQuery})
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != tc.TraceID.String() {
		t.Fatalf("server trace id = %s, want the context's %s", out.TraceID, tc.TraceID)
	}

	// Without one, the client mints a fresh id per request.
	out2, err := c.Query(context.Background(), &QueryRequest{SQL: sumQuery, Label: "uncached", TimeoutMS: 9999})
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.TraceID) != 32 || out2.TraceID == out.TraceID {
		t.Fatalf("minted trace id %q invalid or reused", out2.TraceID)
	}
}
