package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"aggcavsat/internal/obsv"
)

// Client is a minimal HTTP client for cavsatd, used by aggbench's
// target-replay mode and by CI smoke checks. It speaks the typed error
// envelope: non-200 responses come back as *RemoteError.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7878".
	BaseURL string
	// HTTPClient defaults to a client with a 60s overall timeout.
	HTTPClient *http.Client
}

// NewClient builds a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTPClient: &http.Client{Timeout: 60 * time.Second},
	}
}

// RemoteError is a typed non-200 answer from the server.
type RemoteError struct {
	Status       int
	Code         string
	Message      string
	RetryAfterMS int64
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Status, e.Code, e.Message)
}

// Overloaded reports a 429 shed.
func (e *RemoteError) Overloaded() bool { return e.Status == http.StatusTooManyRequests }

// Timeout reports a deadline or budget expiry.
func (e *RemoteError) Timeout() bool {
	return e.Code == CodeTimeout || e.Code == CodeBudget
}

// Query runs one statement against the server.
func (c *Client) Query(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	// Propagate trace identity: reuse the caller's trace context when the
	// ctx carries one, otherwise mint a fresh trace per request so the
	// server's journal/trace ids are correlatable from the client side.
	tc, ok := obsv.TraceContextFrom(ctx)
	if !ok {
		tc = obsv.NewTraceContext()
	}
	httpReq.Header.Set("traceparent", tc.Traceparent())
	resp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding query response: %w", err)
	}
	return &out, nil
}

// Instances lists the server's attached tenants.
func (c *Client) Instances(ctx context.Context) ([]TenantInfo, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/admin/instances", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp)
	}
	var out []TenantInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding instance list: %w", err)
	}
	return out, nil
}

// Metrics fetches the /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("server: /metrics returned %d", resp.StatusCode)
	}
	return string(b), nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// remoteError decodes the typed error envelope, falling back to the raw
// body for non-JSON answers (proxies, panics).
func remoteError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	re := &RemoteError{Status: resp.StatusCode}
	var env ErrorResponse
	if err := json.Unmarshal(body, &env); err == nil && env.Code != "" {
		re.Code = env.Code
		re.Message = env.Error
		re.RetryAfterMS = env.RetryAfterMS
	} else {
		re.Code = CodeInternal
		re.Message = strings.TrimSpace(string(body))
	}
	return re
}
