package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"aggcavsat"
	"aggcavsat/internal/constraints"
	"aggcavsat/internal/core"
	"aggcavsat/internal/db"
	"aggcavsat/internal/obsv"
)

// Metric names of the query service, registered in the obsv registry
// and exposed through the same /metrics scrape as the engine counters.
const (
	// MetricRequests is a labeled family: every /query request lands in
	// exactly one (tenant, route, outcome) series. route is the executor
	// that answered ("rewrite", "sat", "mixed", "cache" for result-cache
	// hits, "none" on errors); outcome is "ok", "shed", "timeout", or
	// "error". The family is cardinality-bounded (requestSeriesCap) with
	// an "_overflow" catch-all.
	MetricRequests = "cavsatd_requests_total"
	// MetricRequestDuration is the labeled request-latency histogram the
	// /debug/slo burn rates are computed from; same label schema as
	// MetricRequests, buckets extended with the SLO latency target so
	// attainment reconciles exactly with the bucket counts.
	MetricRequestDuration = "cavsatd_request_duration_seconds"

	MetricShed      = "cavsatd_shed_total"     // 429s: queue full or queue wait expired
	MetricTimeouts  = "cavsatd_timeouts_total" // per-request deadline or solver budget expiries
	MetricErrors    = "cavsatd_errors_total"   // every non-200 that is not a shed
	MetricInflight  = "cavsatd_inflight"       // gauge: admitted solves currently running
	MetricQueued    = "cavsatd_queue_depth"    // gauge: requests waiting for a slot
	MetricCacheHit  = "cavsatd_cache_hits_total"
	MetricCacheMiss = "cavsatd_cache_misses_total"
	MetricCoalesced = "cavsatd_coalesced_total" // joined an identical in-flight solve
	MetricTenants   = "cavsatd_instances"       // gauge: attached tenants
	MetricReqSecs   = "cavsatd_request_seconds" // summary: whole requests, queueing included

	// Per-route counters: every 200 /query response increments exactly
	// one, cached answers under the route that originally computed them,
	// so the family sums to the queries served. (The engine's own
	// aggcavsat_planner_route_total counts solves, which cache hits never
	// reach.)
	MetricRouteRewrite = `cavsatd_route_total{route="rewrite"}`
	MetricRouteSAT     = `cavsatd_route_total{route="sat"}`
	MetricRouteMixed   = `cavsatd_route_total{route="mixed"}`
)

// requestSeriesCap bounds the (tenant, route, outcome) cardinality of
// the labeled request families: 5 routes × 4 outcomes leaves room for
// ~12 tenants before new tuples fall into the "_overflow" series.
const requestSeriesCap = 256

// Config tunes the query service.
type Config struct {
	// MaxInFlight bounds concurrently solving requests (the weighted
	// semaphore's capacity). 0 means 4.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a solve slot; arrivals
	// beyond it are shed with 429 immediately. 0 means 2×MaxInFlight;
	// negative means no queue (shed as soon as the gate is full).
	MaxQueue int
	// QueueWait bounds how long an admitted-to-queue request may wait
	// for a slot before being shed with 429. 0 means 5s.
	QueueWait time.Duration
	// RequestTimeout is the default per-request deadline propagated
	// through QueryContext (requests may lower it, never raise it
	// above this bound). 0 means 30s.
	RequestTimeout time.Duration
	// CacheEntries bounds the result cache; 0 means 1024, negative
	// disables caching (singleflight coalescing stays on).
	CacheEntries int
	// RetryAfter is the hint returned with 429 responses. 0 means 1s.
	RetryAfter time.Duration
	// Planner is the routing policy applied to every tenant engine the
	// server builds (AttachDir and hot attaches). The zero value is
	// force-sat; cavsatd defaults its -planner flag to auto.
	Planner aggcavsat.PlannerMode

	// SLOLatency is the latency objective target: a request answered
	// within it counts toward the latency SLO. It is added to the
	// request-duration histogram buckets, so /debug/slo attainment
	// reconciles exactly with the bucket counts. 0 means 250ms.
	SLOLatency time.Duration
	// SLOAvailability is the target fraction for both the availability
	// and latency objectives, in (0,1). 0 means 0.999.
	SLOAvailability float64
	// TraceSample is the probability of retaining the span buffer of a
	// healthy, fast request (slow/errored/shed requests are always
	// retained). 0 disables probabilistic retention.
	TraceSample float64
	// TraceRetain bounds the retained-trace store backing
	// /debug/trace?trace=<id>. 0 means obsv.DefaultRetainedTraces.
	TraceRetain int
	// RequestSpans bounds each per-request span buffer. 0 means 512.
	RequestSpans int

	// Metrics receives the service counters and, when also passed to
	// tenant Options, the engine's own; required (New creates one if
	// nil so the debug plane always has something to scrape).
	Metrics *obsv.Registry
	// Tracer, when non-nil, backs /debug/trace and absorbs every
	// finished per-request trace (the live process-wide view).
	Tracer *obsv.Tracer
	// Journal, when non-nil, receives the engine's wide-event lines
	// (stamped "<instance>/<label>") and backs /debug/journal.
	Journal *obsv.Journal
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 2 * c.MaxInFlight
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 1024
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SLOLatency <= 0 {
		c.SLOLatency = 250 * time.Millisecond
	}
	if c.SLOAvailability <= 0 || c.SLOAvailability >= 1 {
		c.SLOAvailability = 0.999
	}
	if c.RequestSpans <= 0 {
		c.RequestSpans = 512
	}
	if c.Metrics == nil {
		c.Metrics = obsv.NewRegistry()
	}
	return c
}

// Server is the cavsatd query service: attach tenants, then serve
// Handler (or Start a listener).
type Server struct {
	cfg     Config
	tenants *tenants
	gate    *gate
	cache   *resultCache

	requests *obsv.LabeledCounter
	duration *obsv.LabeledHistogram
	shed     *obsv.Counter
	timeouts *obsv.Counter
	errors   *obsv.Counter
	tenantsG *obsv.Gauge
	latency  *obsv.Summary

	routeRewrite *obsv.Counter
	routeSAT     *obsv.Counter
	routeMixed   *obsv.Counter

	traces *obsv.TraceStore
	slo    *obsv.SLOTracker

	// exec runs one admitted query; tests override it to wedge or
	// instrument the solver without a real slow instance.
	exec func(ctx context.Context, t *Tenant, req *QueryRequest) (*aggcavsat.Result, error)
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	// The SLO latency target joins the duration buckets so attainment is
	// an exact bucket count, never an interpolation.
	buckets := append(append([]float64(nil), obsv.DurationBuckets...), cfg.SLOLatency.Seconds())
	s := &Server{
		cfg:     cfg,
		tenants: newTenants(),
		gate:    newGate(int64(cfg.MaxInFlight), cfg.MaxQueue, cfg.QueueWait),
		cache:   newResultCache(cfg.CacheEntries),

		requests: reg.LabeledCounter(MetricRequests, obsv.RequestLabels, requestSeriesCap),
		duration: reg.LabeledHistogram(MetricRequestDuration, obsv.RequestLabels, buckets, requestSeriesCap),
		shed:     reg.Counter(MetricShed),
		timeouts: reg.Counter(MetricTimeouts),
		errors:   reg.Counter(MetricErrors),
		tenantsG: reg.Gauge(MetricTenants),
		latency:  reg.Summary(MetricReqSecs, 0, nil),

		routeRewrite: reg.Counter(MetricRouteRewrite),
		routeSAT:     reg.Counter(MetricRouteSAT),
		routeMixed:   reg.Counter(MetricRouteMixed),

		traces: obsv.NewTraceStore(cfg.TraceRetain),
	}
	s.slo = &obsv.SLOTracker{
		Source:                s.sloCounts,
		AvailabilityObjective: cfg.SLOAvailability,
		LatencyObjective:      cfg.SLOAvailability,
		LatencyTarget:         cfg.SLOLatency,
	}
	s.gate.wire(reg.Gauge(MetricInflight), reg.Gauge(MetricQueued))
	s.cache.wire(reg.Counter(MetricCacheHit), reg.Counter(MetricCacheMiss), reg.Counter(MetricCoalesced))
	s.exec = s.runQuery
	return s
}

// sloCounts reads the SLO plane's cumulative inputs straight from the
// labeled request families, so /debug/slo reconciles with /metrics by
// construction: availability counts outcome="ok" over everything, the
// latency objective counts ok requests answered within the SLO bucket.
func (s *Server) sloCounts() obsv.SLOCounts {
	isOK := func(values []string) bool { return values[2] == "ok" }
	under, latTotal := s.duration.CountUnder(s.cfg.SLOLatency.Seconds(), isOK)
	return obsv.SLOCounts{
		Total:        s.requests.Sum(nil),
		Good:         s.requests.Sum(isOK),
		LatencyTotal: latTotal,
		LatencyOK:    under,
	}
}

// Attach registers an already-built tenant (e.g. the -dbgen demo
// instance) under name; re-attaching replaces it at a fresh version.
func (s *Server) Attach(name, dir string, sys *aggcavsat.System, in *db.Instance, dcs []constraints.DC) *Tenant {
	t := s.tenants.attach(name, dir, sys, in, dcs)
	s.tenantsG.Set(int64(s.tenants.count()))
	return t
}

// AttachDir loads a schema.txt + CSV directory and attaches it, sharing
// the server's metrics/journal wiring with the tenant's engine.
func (s *Server) AttachDir(name, dir string, opts aggcavsat.Options) (*Tenant, error) {
	opts.Metrics = s.cfg.Metrics
	opts.Journal = s.cfg.Journal
	opts.Planner = s.cfg.Planner
	sys, in, dcs, err := LoadTenantDir(dir, opts)
	if err != nil {
		return nil, err
	}
	return s.Attach(name, dir, sys, in, dcs), nil
}

// Tenant resolves an attached tenant by name ("" when exactly one).
func (s *Server) Tenant(name string) (*Tenant, error) { return s.tenants.get(name) }

// Handler builds the service mux: /query, /admin/instances and
// /debug/slo, with every other path (in particular /metrics, /healthz,
// /debug/*) falling through to the obsv debug plane over the server's
// registry, tracer, journal and retained-trace store.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/admin/instances", s.handleInstances)
	mux.HandleFunc("/debug/slo", s.handleSLO)
	mux.Handle("/", obsv.NewHandler(obsv.HandlerConfig{
		Registry: s.cfg.Metrics,
		Tracer:   s.cfg.Tracer,
		Journal:  s.cfg.Journal,
		Traces:   s.traces,
		Extra: func() map[string]any {
			return map[string]any{"instances": s.tenants.count()}
		},
	}))
	return mux
}

// handleSLO serves the SLO report: availability and latency attainment
// plus 5m/1h burn rates, computed from the same labeled request
// families /metrics exposes.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	// Fold the current counters in even if no request landed since the
	// last observation (e.g. a scrape-only process).
	s.slo.Observe()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.slo.Report())
}

// handleQuery is the serving hot path: trace identity → decode →
// resolve tenant → result cache / singleflight → admission gate →
// deadline-bounded solve → typed JSON. Every exit path lands in
// finishRequest, which observes the labeled request families, feeds the
// SLO tracker, and decides tail-based trace retention.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	// Trace identity: adopt the caller's traceparent trace id (minting a
	// fresh one on absence or malformed headers, per W3C restart rules)
	// and record the whole request into its own bounded tracer.
	tc := traceContextFor(r)
	rt := obsv.NewTracerWithID(tc.TraceID)
	rt.MaxSpans = s.cfg.RequestSpans
	ctx := obsv.WithTraceContext(r.Context(), tc)
	ctx = obsv.WithTracer(ctx, rt)
	ctx, rootSp := obsv.StartSpan(ctx, "server.request", obsv.String("method", r.Method))
	// The response header re-parents the caller onto the server's root
	// span; set before any body write.
	w.Header().Set("Traceparent",
		obsv.TraceContext{TraceID: tc.TraceID, SpanID: rootSp.SpanID(), Sampled: true}.Traceparent())

	tenant, route, outcome, label := "unknown", "none", "error", ""
	defer func() {
		rootSp.SetStr("outcome", outcome)
		rootSp.End()
		s.finishRequest(rt, tenant, route, outcome, label, start, time.Since(start))
	}()

	req, err := decodeQueryRequest(r)
	if err != nil {
		s.errors.Inc()
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	label = req.Label
	if label == "" {
		label = req.SQL
	}
	t, err := s.tenants.get(req.Instance)
	if err != nil {
		s.errors.Inc()
		writeError(w, http.StatusNotFound, CodeUnknownInstance, "%v", err)
		return
	}
	tenant = t.Name
	rootSp.SetStr("tenant", tenant)

	key := cacheKey{
		queryFP:      core.Fingerprint64(normalizeSQL(req.SQL)),
		constraintFP: t.ConstraintFP,
		version:      t.Version,
		dataVersion:  t.DataVersion,
		planner:      t.Planner,
	}
	resp, served, err := s.cache.Do(ctx, key, func() (*QueryResponse, error) {
		return s.admitAndSolve(ctx, t, req)
	})
	if err != nil {
		outcome = outcomeOf(err)
		s.writeQueryError(w, err)
		return
	}
	// Cached/coalesced answers share one QueryResponse across requests:
	// copy before stamping per-request fields. The trace id is this
	// request's own — on a cache hit the journal line of the original
	// solve keeps the solver's trace id, while the response cross-links
	// to this request's retained trace.
	out := *resp
	out.Instance = t.Name
	out.Version = t.Version
	out.Cached = served
	out.TraceID = tc.TraceID.String()
	out.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	outcome = "ok"
	route = out.Route
	if served {
		route = "cache"
	}
	rootSp.SetStr("route", route)
	s.countRoute(out.Route)
	writeJSON(w, http.StatusOK, &out)
}

// outcomeOf maps a /query failure onto the labeled outcome vocabulary:
// "shed", "timeout" (deadline or budget), or "error".
func outcomeOf(err error) string {
	switch {
	case errors.Is(err, ErrShed) || errors.Is(err, ErrQueueTimeout):
		return "shed"
	case errors.Is(err, aggcavsat.ErrTimeout), errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, aggcavsat.ErrBudget):
		return "timeout"
	default:
		return "error"
	}
}

// traceContextFor extracts the caller's W3C traceparent, minting a fresh
// sampled context when the header is absent or malformed.
func traceContextFor(r *http.Request) obsv.TraceContext {
	if tp := r.Header.Get("traceparent"); tp != "" {
		if tc, err := obsv.ParseTraceparent(tp); err == nil {
			return tc
		}
	}
	return obsv.NewTraceContext()
}

// finishRequest is the single request epilogue: labeled metric
// observation, SLO sampling, the tail-based retention decision, and the
// absorb of the per-request trace into the process-wide tracer.
func (s *Server) finishRequest(rt *obsv.Tracer, tenant, route, outcome, query string, start time.Time, elapsed time.Duration) {
	s.requests.With(tenant, route, outcome).Inc()
	s.duration.With(tenant, route, outcome).Observe(elapsed.Seconds())
	s.latency.Observe(elapsed.Seconds())
	s.slo.Observe()

	reason := ""
	switch {
	case outcome != "ok":
		reason = outcome
	case elapsed > s.cfg.SLOLatency:
		reason = "slow"
	case s.cfg.TraceSample > 0 && rand.Float64() < s.cfg.TraceSample:
		reason = "sample"
	}
	if reason != "" {
		s.traces.Keep(obsv.RetainedTrace{
			TraceID:  rt.TraceID(),
			Reason:   reason,
			Query:    query,
			Tenant:   tenant,
			Start:    start,
			Duration: elapsed,
			Tracer:   rt,
		})
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Absorb(rt)
	}
}

// admitAndSolve passes the admission gate, applies the per-request
// deadline, and runs the query.
func (s *Server) admitAndSolve(ctx context.Context, t *Tenant, req *QueryRequest) (*QueryResponse, error) {
	if err := s.gate.Acquire(ctx, 1); err != nil {
		return nil, err
	}
	defer s.gate.Release(1)
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	res, err := s.exec(ctx, t, req)
	if err != nil {
		return nil, err
	}
	return BuildResponse(res), nil
}

// runQuery is the default exec: label the context with the tenant (and
// the caller's label when given) so journal lines and traces carry the
// tenant identity, then run the statement.
func (s *Server) runQuery(ctx context.Context, t *Tenant, req *QueryRequest) (*aggcavsat.Result, error) {
	label := req.Label
	if label == "" {
		label = req.SQL
	}
	ctx = obsv.WithQueryLabel(ctx, t.Name+"/"+label)
	ctx = obsv.WithTenant(ctx, t.Name)
	// handleQuery installs the per-request tracer; fall back to the
	// process-wide one only when exec is driven without it (tests,
	// embedded use).
	if obsv.TracerFrom(ctx) == nil && s.cfg.Tracer != nil {
		ctx = obsv.WithTracer(ctx, s.cfg.Tracer)
	}
	return t.System().QueryContext(ctx, req.SQL)
}

// countRoute bumps the per-route served counter: every 200 response
// lands in exactly one bucket, so the cavsatd_route_total family sums
// to the queries served. Unexpected values count as "sat" (the
// conservative executor) rather than silently skewing the sum.
func (s *Server) countRoute(route string) {
	switch route {
	case "rewrite":
		s.routeRewrite.Inc()
	case "mixed":
		s.routeMixed.Inc()
	default:
		s.routeSAT.Inc()
	}
}

// writeQueryError maps solve/admission failures onto the typed JSON
// envelope and the service counters.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrShed) || errors.Is(err, ErrQueueTimeout):
		s.shed.Inc()
		retry := s.cfg.RetryAfter
		w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error:        err.Error(),
			Code:         CodeOverloaded,
			RetryAfterMS: retry.Milliseconds(),
		})
	case errors.Is(err, aggcavsat.ErrTimeout) || errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, CodeTimeout, "query deadline expired: %v", err)
	case errors.Is(err, aggcavsat.ErrBudget):
		s.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, CodeBudget, "solver budget exhausted: %v", err)
	case errors.Is(err, context.Canceled):
		// The client went away; nobody reads this response.
		s.errors.Inc()
		writeError(w, http.StatusBadRequest, CodeBadRequest, "request canceled")
	default:
		s.errors.Inc()
		writeError(w, http.StatusBadRequest, CodeBadQuery, "%v", err)
	}
}

// handleInstances serves the tenant registry: GET lists, POST attaches
// {"name": ..., "dir": ...} hot.
func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.tenants.list())
	case http.MethodPost:
		var req struct {
			Name string `json:"name"`
			Dir  string `json:"dir"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "decoding attach request: %v", err)
			return
		}
		if req.Name == "" || req.Dir == "" {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "attach wants both name and dir")
			return
		}
		t, err := s.AttachDir(req.Name, req.Dir, aggcavsat.Options{})
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "attaching %s: %v", req.Name, err)
			return
		}
		writeJSON(w, http.StatusOK, TenantInfo{
			Name: t.Name, Dir: t.Dir, Version: t.Version, Mode: t.Mode,
			Planner: t.Planner, ConstraintFP: t.ConstraintFP,
			Facts: t.Facts, Relations: t.Relations,
			AttachedAt: t.AttachedAt,
		})
	default:
		writeError(w, http.StatusMethodNotAllowed, CodeBadRequest, "method %s not allowed", r.Method)
	}
}

// decodeQueryRequest accepts POST JSON bodies and GET URL parameters.
func decodeQueryRequest(r *http.Request) (*QueryRequest, error) {
	req := &QueryRequest{}
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(req); err != nil {
			return nil, fmt.Errorf("decoding query request: %w", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Instance = q.Get("instance")
		req.SQL = q.Get("q")
		req.Label = q.Get("label")
		if v := q.Get("timeout_ms"); v != "" {
			ms, err := strconv.ParseInt(v, 10, 64)
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("bad timeout_ms %q", v)
			}
			req.TimeoutMS = ms
		}
	default:
		return nil, fmt.Errorf("method %s not allowed", r.Method)
	}
	if strings.TrimSpace(req.SQL) == "" {
		return nil, errors.New("empty sql")
	}
	return req, nil
}

// normalizeSQL collapses whitespace so trivially reformatted statements
// share a cache key (the algebraic fingerprint would need a parse; this
// stays ahead of it on the cache hot path).
func normalizeSQL(sql string) string {
	return strings.Join(strings.Fields(sql), " ")
}

// Start listens on addr (":0" picks a free port) and serves Handler on
// a background goroutine until Close.
func Start(addr string, s *Server) (*Running, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	run := &Running{ln: ln, srv: &http.Server{Handler: s.Handler()}}
	go run.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return run, nil
}

// Running is a started listener.
type Running struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address.
func (r *Running) Addr() string { return r.ln.Addr().String() }

// Close shuts the listener down, draining in-flight requests briefly.
func (r *Running) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return r.srv.Shutdown(ctx)
}
