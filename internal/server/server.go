package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"aggcavsat"
	"aggcavsat/internal/constraints"
	"aggcavsat/internal/core"
	"aggcavsat/internal/db"
	"aggcavsat/internal/obsv"
)

// Metric names of the query service, registered in the obsv registry
// and exposed through the same /metrics scrape as the engine counters.
const (
	MetricRequests  = "cavsatd_requests_total"
	MetricShed      = "cavsatd_shed_total"     // 429s: queue full or queue wait expired
	MetricTimeouts  = "cavsatd_timeouts_total" // per-request deadline or solver budget expiries
	MetricErrors    = "cavsatd_errors_total"   // every non-200 that is not a shed
	MetricInflight  = "cavsatd_inflight"       // gauge: admitted solves currently running
	MetricQueued    = "cavsatd_queue_depth"    // gauge: requests waiting for a slot
	MetricCacheHit  = "cavsatd_cache_hits_total"
	MetricCacheMiss = "cavsatd_cache_misses_total"
	MetricCoalesced = "cavsatd_coalesced_total" // joined an identical in-flight solve
	MetricTenants   = "cavsatd_instances"       // gauge: attached tenants
	MetricReqSecs   = "cavsatd_request_seconds" // summary: whole requests, queueing included

	// Per-route counters: every 200 /query response increments exactly
	// one, cached answers under the route that originally computed them,
	// so the family sums to the queries served. (The engine's own
	// aggcavsat_planner_route_total counts solves, which cache hits never
	// reach.)
	MetricRouteRewrite = `cavsatd_route_total{route="rewrite"}`
	MetricRouteSAT     = `cavsatd_route_total{route="sat"}`
	MetricRouteMixed   = `cavsatd_route_total{route="mixed"}`
)

// Config tunes the query service.
type Config struct {
	// MaxInFlight bounds concurrently solving requests (the weighted
	// semaphore's capacity). 0 means 4.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a solve slot; arrivals
	// beyond it are shed with 429 immediately. 0 means 2×MaxInFlight;
	// negative means no queue (shed as soon as the gate is full).
	MaxQueue int
	// QueueWait bounds how long an admitted-to-queue request may wait
	// for a slot before being shed with 429. 0 means 5s.
	QueueWait time.Duration
	// RequestTimeout is the default per-request deadline propagated
	// through QueryContext (requests may lower it, never raise it
	// above this bound). 0 means 30s.
	RequestTimeout time.Duration
	// CacheEntries bounds the result cache; 0 means 1024, negative
	// disables caching (singleflight coalescing stays on).
	CacheEntries int
	// RetryAfter is the hint returned with 429 responses. 0 means 1s.
	RetryAfter time.Duration
	// Planner is the routing policy applied to every tenant engine the
	// server builds (AttachDir and hot attaches). The zero value is
	// force-sat; cavsatd defaults its -planner flag to auto.
	Planner aggcavsat.PlannerMode

	// Metrics receives the service counters and, when also passed to
	// tenant Options, the engine's own; required (New creates one if
	// nil so the debug plane always has something to scrape).
	Metrics *obsv.Registry
	// Tracer, when non-nil, backs /debug/trace.
	Tracer *obsv.Tracer
	// Journal, when non-nil, receives the engine's wide-event lines
	// (stamped "<instance>/<label>") and backs /debug/journal.
	Journal *obsv.Journal
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 2 * c.MaxInFlight
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 1024
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obsv.NewRegistry()
	}
	return c
}

// Server is the cavsatd query service: attach tenants, then serve
// Handler (or Start a listener).
type Server struct {
	cfg     Config
	tenants *tenants
	gate    *gate
	cache   *resultCache

	requests *obsv.Counter
	shed     *obsv.Counter
	timeouts *obsv.Counter
	errors   *obsv.Counter
	tenantsG *obsv.Gauge
	latency  *obsv.Summary

	routeRewrite *obsv.Counter
	routeSAT     *obsv.Counter
	routeMixed   *obsv.Counter

	// exec runs one admitted query; tests override it to wedge or
	// instrument the solver without a real slow instance.
	exec func(ctx context.Context, t *Tenant, req *QueryRequest) (*aggcavsat.Result, error)
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	s := &Server{
		cfg:     cfg,
		tenants: newTenants(),
		gate:    newGate(int64(cfg.MaxInFlight), cfg.MaxQueue, cfg.QueueWait),
		cache:   newResultCache(cfg.CacheEntries),

		requests: reg.Counter(MetricRequests),
		shed:     reg.Counter(MetricShed),
		timeouts: reg.Counter(MetricTimeouts),
		errors:   reg.Counter(MetricErrors),
		tenantsG: reg.Gauge(MetricTenants),
		latency:  reg.Summary(MetricReqSecs, 0, nil),

		routeRewrite: reg.Counter(MetricRouteRewrite),
		routeSAT:     reg.Counter(MetricRouteSAT),
		routeMixed:   reg.Counter(MetricRouteMixed),
	}
	s.gate.wire(reg.Gauge(MetricInflight), reg.Gauge(MetricQueued))
	s.cache.wire(reg.Counter(MetricCacheHit), reg.Counter(MetricCacheMiss), reg.Counter(MetricCoalesced))
	s.exec = s.runQuery
	return s
}

// Attach registers an already-built tenant (e.g. the -dbgen demo
// instance) under name; re-attaching replaces it at a fresh version.
func (s *Server) Attach(name, dir string, sys *aggcavsat.System, in *db.Instance, dcs []constraints.DC) *Tenant {
	t := s.tenants.attach(name, dir, sys, in, dcs)
	s.tenantsG.Set(int64(s.tenants.count()))
	return t
}

// AttachDir loads a schema.txt + CSV directory and attaches it, sharing
// the server's metrics/journal wiring with the tenant's engine.
func (s *Server) AttachDir(name, dir string, opts aggcavsat.Options) (*Tenant, error) {
	opts.Metrics = s.cfg.Metrics
	opts.Journal = s.cfg.Journal
	opts.Planner = s.cfg.Planner
	sys, in, dcs, err := LoadTenantDir(dir, opts)
	if err != nil {
		return nil, err
	}
	return s.Attach(name, dir, sys, in, dcs), nil
}

// Tenant resolves an attached tenant by name ("" when exactly one).
func (s *Server) Tenant(name string) (*Tenant, error) { return s.tenants.get(name) }

// Handler builds the service mux: /query and /admin/instances, with
// every other path (in particular /metrics, /healthz, /debug/*) falling
// through to the obsv debug plane over the server's registry, tracer
// and journal.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/admin/instances", s.handleInstances)
	mux.Handle("/", obsv.Handler(s.cfg.Metrics, s.cfg.Tracer, s.cfg.Journal))
	return mux
}

// handleQuery is the serving hot path: decode → resolve tenant →
// result cache / singleflight → admission gate → deadline-bounded
// solve → typed JSON.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Inc()
	req, err := decodeQueryRequest(r)
	if err != nil {
		s.errors.Inc()
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	t, err := s.tenants.get(req.Instance)
	if err != nil {
		s.errors.Inc()
		writeError(w, http.StatusNotFound, CodeUnknownInstance, "%v", err)
		return
	}

	key := cacheKey{
		queryFP:      core.Fingerprint64(normalizeSQL(req.SQL)),
		constraintFP: t.ConstraintFP,
		version:      t.Version,
		dataVersion:  t.DataVersion,
		planner:      t.Planner,
	}
	resp, served, err := s.cache.Do(r.Context(), key, func() (*QueryResponse, error) {
		return s.admitAndSolve(r.Context(), t, req)
	})
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	// Cached/coalesced answers share one QueryResponse across requests:
	// copy before stamping per-request fields.
	out := *resp
	out.Instance = t.Name
	out.Version = t.Version
	out.Cached = served
	out.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.countRoute(out.Route)
	s.latency.Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, &out)
}

// admitAndSolve passes the admission gate, applies the per-request
// deadline, and runs the query.
func (s *Server) admitAndSolve(ctx context.Context, t *Tenant, req *QueryRequest) (*QueryResponse, error) {
	if err := s.gate.Acquire(ctx, 1); err != nil {
		return nil, err
	}
	defer s.gate.Release(1)
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	res, err := s.exec(ctx, t, req)
	if err != nil {
		return nil, err
	}
	return BuildResponse(res), nil
}

// runQuery is the default exec: label the context with the tenant (and
// the caller's label when given) so journal lines and traces carry the
// tenant identity, then run the statement.
func (s *Server) runQuery(ctx context.Context, t *Tenant, req *QueryRequest) (*aggcavsat.Result, error) {
	label := req.Label
	if label == "" {
		label = req.SQL
	}
	ctx = obsv.WithQueryLabel(ctx, t.Name+"/"+label)
	if s.cfg.Tracer != nil {
		ctx = obsv.WithTracer(ctx, s.cfg.Tracer)
	}
	return t.System().QueryContext(ctx, req.SQL)
}

// countRoute bumps the per-route served counter: every 200 response
// lands in exactly one bucket, so the cavsatd_route_total family sums
// to the queries served. Unexpected values count as "sat" (the
// conservative executor) rather than silently skewing the sum.
func (s *Server) countRoute(route string) {
	switch route {
	case "rewrite":
		s.routeRewrite.Inc()
	case "mixed":
		s.routeMixed.Inc()
	default:
		s.routeSAT.Inc()
	}
}

// writeQueryError maps solve/admission failures onto the typed JSON
// envelope and the service counters.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrShed) || errors.Is(err, ErrQueueTimeout):
		s.shed.Inc()
		retry := s.cfg.RetryAfter
		w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error:        err.Error(),
			Code:         CodeOverloaded,
			RetryAfterMS: retry.Milliseconds(),
		})
	case errors.Is(err, aggcavsat.ErrTimeout) || errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, CodeTimeout, "query deadline expired: %v", err)
	case errors.Is(err, aggcavsat.ErrBudget):
		s.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, CodeBudget, "solver budget exhausted: %v", err)
	case errors.Is(err, context.Canceled):
		// The client went away; nobody reads this response.
		s.errors.Inc()
		writeError(w, http.StatusBadRequest, CodeBadRequest, "request canceled")
	default:
		s.errors.Inc()
		writeError(w, http.StatusBadRequest, CodeBadQuery, "%v", err)
	}
}

// handleInstances serves the tenant registry: GET lists, POST attaches
// {"name": ..., "dir": ...} hot.
func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.tenants.list())
	case http.MethodPost:
		var req struct {
			Name string `json:"name"`
			Dir  string `json:"dir"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "decoding attach request: %v", err)
			return
		}
		if req.Name == "" || req.Dir == "" {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "attach wants both name and dir")
			return
		}
		t, err := s.AttachDir(req.Name, req.Dir, aggcavsat.Options{})
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "attaching %s: %v", req.Name, err)
			return
		}
		writeJSON(w, http.StatusOK, TenantInfo{
			Name: t.Name, Dir: t.Dir, Version: t.Version, Mode: t.Mode,
			Planner: t.Planner, ConstraintFP: t.ConstraintFP,
			Facts: t.Facts, Relations: t.Relations,
			AttachedAt: t.AttachedAt,
		})
	default:
		writeError(w, http.StatusMethodNotAllowed, CodeBadRequest, "method %s not allowed", r.Method)
	}
}

// decodeQueryRequest accepts POST JSON bodies and GET URL parameters.
func decodeQueryRequest(r *http.Request) (*QueryRequest, error) {
	req := &QueryRequest{}
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(req); err != nil {
			return nil, fmt.Errorf("decoding query request: %w", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Instance = q.Get("instance")
		req.SQL = q.Get("q")
		req.Label = q.Get("label")
		if v := q.Get("timeout_ms"); v != "" {
			ms, err := strconv.ParseInt(v, 10, 64)
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("bad timeout_ms %q", v)
			}
			req.TimeoutMS = ms
		}
	default:
		return nil, fmt.Errorf("method %s not allowed", r.Method)
	}
	if strings.TrimSpace(req.SQL) == "" {
		return nil, errors.New("empty sql")
	}
	return req, nil
}

// normalizeSQL collapses whitespace so trivially reformatted statements
// share a cache key (the algebraic fingerprint would need a parse; this
// stays ahead of it on the cache hot path).
func normalizeSQL(sql string) string {
	return strings.Join(strings.Fields(sql), " ")
}

// Start listens on addr (":0" picks a free port) and serves Handler on
// a background goroutine until Close.
func Start(addr string, s *Server) (*Running, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	run := &Running{ln: ln, srv: &http.Server{Handler: s.Handler()}}
	go run.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return run, nil
}

// Running is a started listener.
type Running struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address.
func (r *Running) Addr() string { return r.ln.Addr().String() }

// Close shuts the listener down, draining in-flight requests briefly.
func (r *Running) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return r.srv.Shutdown(ctx)
}
