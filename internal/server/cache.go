package server

import (
	"container/list"
	"context"
	"sync"

	"aggcavsat/internal/obsv"
)

// cacheKey identifies one answer: the query fingerprint (FNV-1a over
// the normalized SQL, core.Fingerprint64), the instance's constraint
// fingerprint (mode + DC set + schema keys), and the instance version
// (bumped on every attach). Any change to data or constraints moves the
// version or the constraint fingerprint, so stale answers can never be
// served. This cache sits above the per-component Engine.bases memo:
// bases saves re-encoding hard clauses across queries that share
// components; this layer saves the whole solve for repeated statements.
type cacheKey struct {
	queryFP      string
	constraintFP string
	version      uint64
	// dataVersion is the content fingerprint of the tenant's backing
	// columnar snapshot (0 when the tenant was CSV-loaded or built in
	// memory). version alone already separates attach generations; this
	// field additionally ties cached answers to the snapshot bytes they
	// were computed over.
	dataVersion uint64
	// planner is the tenant's routing policy ("auto", "force-sat",
	// "force-rewrite"). Routes produce identical answers, but the key
	// still separates them so a re-attach under a different policy (or
	// two tenants differing only in policy) can never serve an answer
	// computed under the other one — route provenance (QueryResponse.
	// Route) stays truthful.
	planner string
}

// resultCache is a mutex-guarded LRU of finished answers with
// singleflight coalescing: concurrent requests for the same key wait
// for the one in-flight solve instead of stampeding the engine.
type resultCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recent
	max     int

	flights map[cacheKey]*flight

	hits      *obsv.Counter
	misses    *obsv.Counter
	coalesced *obsv.Counter
}

type cacheEntry struct {
	key cacheKey
	val *QueryResponse
}

// flight is one in-progress solve other requests may join.
type flight struct {
	done chan struct{}
	val  *QueryResponse
	err  error
}

// newResultCache builds a cache bounded to max entries (0 disables
// caching but keeps coalescing).
func newResultCache(max int) *resultCache {
	return &resultCache{
		entries: map[cacheKey]*list.Element{},
		order:   list.New(),
		max:     max,
		flights: map[cacheKey]*flight{},
	}
}

// wire attaches the hit/miss/coalesce counters.
func (c *resultCache) wire(hits, misses, coalesced *obsv.Counter) {
	c.hits = hits
	c.misses = misses
	c.coalesced = coalesced
}

// Do returns the cached answer for key, or joins the in-flight solve
// for it, or runs solve and caches the outcome. The bool reports
// whether the answer was served without running solve in this request
// (a cache hit or a coalesced wait). Errors are never cached: the next
// request retries. A joiner whose context expires stops waiting and
// returns ctx.Err() — the leader's solve continues for the others.
func (c *resultCache) Do(ctx context.Context, key cacheKey, solve func() (*QueryResponse, error)) (*QueryResponse, bool, error) {
	c.mu.Lock()
	if elem, ok := c.entries[key]; ok {
		c.order.MoveToFront(elem)
		val := elem.Value.(*cacheEntry).val
		c.mu.Unlock()
		inc(c.hits)
		return val, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		inc(c.coalesced)
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	inc(c.misses)

	f.val, f.err = solve()
	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil && c.max > 0 {
		c.insertLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// insertLocked adds the entry and evicts the LRU tail past capacity.
func (c *resultCache) insertLocked(key cacheKey, val *QueryResponse) {
	if elem, ok := c.entries[key]; ok {
		elem.Value.(*cacheEntry).val = val
		c.order.MoveToFront(elem)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for len(c.entries) > c.max {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached answers.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// inc bumps a counter when wired.
func inc(c *obsv.Counter) {
	if c != nil {
		c.Inc()
	}
}
