package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"aggcavsat"
	"aggcavsat/internal/constraints"
	"aggcavsat/internal/core"
	"aggcavsat/internal/db"
	"aggcavsat/internal/schemafile"
)

// Tenant is one attached instance: a named, versioned, frozen database
// with its prepared System. Tenants are immutable once attached;
// re-attaching a name swaps in a new Tenant under a fresh version, so
// cached answers for the old version can never be served again.
type Tenant struct {
	Name string
	// Dir is the source directory ("" for in-memory tenants).
	Dir string
	// Version is assigned by the registry at attach time, monotonically
	// increasing across the whole registry.
	Version uint64
	// ConstraintFP fingerprints the repair semantics: the constraint
	// mode plus the schema keys or the denial-constraint set.
	ConstraintFP string
	// Mode is "keys" or "dc".
	Mode string
	// Planner is the routing policy of the tenant's engine ("auto",
	// "force-sat", "force-rewrite"); part of the result-cache key.
	Planner string
	// DataVersion is the content fingerprint of the tenant's backing
	// columnar snapshot (0 for CSV-loaded and in-memory tenants). It
	// joins Version in the result-cache key, so a re-attach that maps a
	// different snapshot can never serve the old snapshot's answers.
	DataVersion uint64
	Facts       int
	Relations   int
	AttachedAt  time.Time

	sys *aggcavsat.System
	in  *db.Instance
}

// System returns the tenant's prepared query system.
func (t *Tenant) System() *aggcavsat.System { return t.sys }

// TenantInfo is the /admin/instances JSON shape for one tenant.
type TenantInfo struct {
	Name         string    `json:"name"`
	Dir          string    `json:"dir,omitempty"`
	Version      uint64    `json:"version"`
	DataVersion  string    `json:"data_version,omitempty"`
	Mode         string    `json:"mode"`
	Planner      string    `json:"planner"`
	ConstraintFP string    `json:"constraint_fp"`
	Facts        int       `json:"facts"`
	Relations    int       `json:"relations"`
	AttachedAt   time.Time `json:"attached_at"`
}

// tenants is the registry: named instances, hot-attachable while the
// server runs.
type tenants struct {
	mu      sync.RWMutex
	byName  map[string]*Tenant
	version uint64
}

func newTenants() *tenants {
	return &tenants{byName: map[string]*Tenant{}}
}

// attach registers (or replaces) a tenant under the next version.
func (ts *tenants) attach(name, dir string, sys *aggcavsat.System, in *db.Instance, dcs []constraints.DC) *Tenant {
	mode := "keys"
	if len(dcs) > 0 {
		mode = "dc"
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.version++
	t := &Tenant{
		Name:         name,
		Dir:          dir,
		Version:      ts.version,
		ConstraintFP: constraintFingerprint(in.Schema(), dcs),
		Mode:         mode,
		Planner:      sys.PlannerMode().String(),
		DataVersion:  in.DataVersion(),
		Facts:        in.NumFacts(),
		Relations:    len(in.Schema().Relations()),
		AttachedAt:   time.Now(),
		sys:          sys,
		in:           in,
	}
	ts.byName[name] = t
	return t
}

// get resolves a tenant by name; an empty name resolves when exactly
// one tenant is attached.
func (ts *tenants) get(name string) (*Tenant, error) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	if name == "" {
		if len(ts.byName) == 1 {
			for _, t := range ts.byName {
				return t, nil
			}
		}
		return nil, fmt.Errorf("no instance named and %d attached; pass \"instance\"", len(ts.byName))
	}
	t, ok := ts.byName[name]
	if !ok {
		return nil, fmt.Errorf("unknown instance %q", name)
	}
	return t, nil
}

// list snapshots every tenant, sorted by name.
func (ts *tenants) list() []TenantInfo {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	out := make([]TenantInfo, 0, len(ts.byName))
	for _, t := range ts.byName {
		info := TenantInfo{
			Name:         t.Name,
			Dir:          t.Dir,
			Version:      t.Version,
			Mode:         t.Mode,
			Planner:      t.Planner,
			ConstraintFP: t.ConstraintFP,
			Facts:        t.Facts,
			Relations:    t.Relations,
			AttachedAt:   t.AttachedAt,
		}
		if t.DataVersion != 0 {
			info.DataVersion = fmt.Sprintf("%016x", t.DataVersion)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// count returns the number of attached tenants.
func (ts *tenants) count() int {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return len(ts.byName)
}

// constraintFingerprint hashes the repair semantics: schema keys in
// keys mode, the sorted DC renderings in DC mode. Part of the result
// cache key, so two tenants over equal data but different constraints
// never share answers.
func constraintFingerprint(schema *db.Schema, dcs []constraints.DC) string {
	var b strings.Builder
	if len(dcs) == 0 {
		b.WriteString("keys\n")
		for _, rs := range schema.Relations() {
			fmt.Fprintf(&b, "%s(%s)\n", rs.Name, strings.Join(rs.KeyNames(), ","))
		}
	} else {
		b.WriteString("dc\n")
		rendered := make([]string, len(dcs))
		for i, dc := range dcs {
			rendered[i] = dc.String()
		}
		sort.Strings(rendered)
		for _, s := range rendered {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	return core.Fingerprint64(b.String())
}

// LoadTenantDir loads a schema.txt + CSV directory (the cavsat -data
// layout) and prepares a System over it with the given base options
// (the schema's FDs switch it to DC mode automatically). When the
// directory holds a columnar snapshot it is mmap'ed zero-copy instead
// of parsing CSV; the mapping is kept open for the tenant's lifetime
// (tenants are never detached, only superseded, and replaced tenants
// may still be serving in-flight queries, so the mapping is
// intentionally left in place until process exit).
func LoadTenantDir(dir string, opts aggcavsat.Options) (*aggcavsat.System, *db.Instance, []constraints.DC, error) {
	f, err := os.Open(filepath.Join(dir, "schema.txt"))
	if err != nil {
		return nil, nil, nil, err
	}
	parsed, err := schemafile.Read(f)
	f.Close()
	if err != nil {
		return nil, nil, nil, err
	}
	in, _, err := db.OpenDir(parsed.Schema, dir)
	if err != nil {
		return nil, nil, nil, err
	}
	opts.DenialConstraints = parsed.FDs
	sys, err := aggcavsat.Open(in, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, in, parsed.FDs, nil
}
