// Package medigap reproduces the paper's real-world experiment setup
// (Section VI-B): the Medigap schema of Table IVa — six relations about
// Medicare supplement insurance — with the constraint and inconsistency
// profile of Table IVb (two functional dependencies and one denial
// constraint, violated by 2.58 %, 1.5 % and 0.15 % of the respective
// relations), plus the twelve aggregation queries Q₁ᵐ…Q₁₂ᵐ.
//
// The original data is a download of medicare.gov's 2019+2020 database;
// this package generates a synthetic equivalent with the same schema
// shape, cardinality proportions, and violation rates. The actual data
// is inconsistent as-is, so the generator plants violations directly
// rather than injecting them into consistent data.
package medigap

import (
	"fmt"

	"aggcavsat/internal/constraints"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/sqlparse"
	"aggcavsat/internal/xrand"
)

// Base cardinalities from Table IVa.
const (
	baseOBS = 3872
	basePBS = 21002
	basePBZ = 4748
	basePT  = 2434
	basePR  = 29148
	baseSPT = 70
)

// Violation rates from Table IVb (percent of relation tuples).
const (
	rateOBSFD = 2.58 // orgID → orgName
	ratePBSFD = 1.5  // addr, city, abbrev → zip
	ratePBSDC = 0.15 // webAddr ≠ ''
)

var states = []struct{ name, abbrev string }{
	{"Wisconsin", "WI"}, {"New York", "NY"}, {"California", "CA"},
	{"Texas", "TX"}, {"Florida", "FL"}, {"Ohio", "OH"},
	{"Illinois", "IL"}, {"Georgia", "GA"}, {"Oregon", "OR"},
	{"Maine", "ME"}, {"Nevada", "NV"}, {"Kansas", "KS"},
}

var wisconsinCounties = []string{
	"GREEN LAKE", "DANE", "MILWAUKEE", "BROWN", "ROCK",
	"DOOR", "VILAS", "IRON", "POLK", "WOOD",
}

var planTypes = []string{"A", "B", "C", "D", "F", "G", "K", "L", "M", "N"}
var simpleTypes = []string{"A", "B", "C", "D", "F", "G", "K"}
var years = []int64{2019, 2020}

// Schema returns the six-relation Medigap schema. No relation declares a
// key: integrity is expressed purely by the denial constraints of
// Constraints(), exercising Reduction V.1.
func Schema() *db.Schema {
	s := db.NewSchema()
	str := func(n string) db.Attribute { return db.Attribute{Name: n, Kind: db.KindString} }
	num := func(n string) db.Attribute { return db.Attribute{Name: n, Kind: db.KindInt} }

	s.MustAddRelation(&db.RelationSchema{
		Name: "OBS", // OrgsByState
		Attrs: []db.Attribute{
			str("orgID"), str("orgName"), str("state_abbrev"),
			num("contract_year"), str("org_type"),
		},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "PBS", // PlansByState
		Attrs: []db.Attribute{
			str("orgID"), str("orgName"), str("plan_type"), str("state_abbrev"),
			str("addr"), str("city"), str("zip"), str("webAddr"), str("phone"),
			num("contract_year"), num("premium"), num("deductible"),
			str("plan_name"), str("county"), num("enrollment"), num("rating"),
			str("email"), str("fax"),
		},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "PBZ", // PlansByZip
		Attrs: []db.Attribute{
			str("State_name"), str("State_abbrev"), str("County_name"), str("Zip"),
			str("Description"), str("Simple_plantype"), str("Plan_type"),
			num("Contract_year"), num("Over65"), num("Under65"), num("Community"),
			num("Premium_low"), num("Premium_high"), str("OrgID"), str("OrgName"),
			str("Phone"), str("WebAddr"), num("Enrollment"), num("Rating"), str("Notes"),
		},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "PT", // PlanType
		Attrs: []db.Attribute{
			str("State_abbrev"), str("Plan_type"), num("Contract_year"), str("Simple_plantype"),
		},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "PR", // Premiums
		Attrs: []db.Attribute{
			str("State_abbrev"), str("Plan_type"), num("Contract_year"),
			str("Premium_range"), num("Premium_low"), num("Premium_high"), str("Age_group"),
		},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "SPT", // SimplePlanType
		Attrs: []db.Attribute{
			str("Simple_plantype"), str("Simple_plantype_name"),
			num("Contract_year"), num("Display_order"),
		},
	})
	return s
}

// Constraints returns the Table IVb constraint set as denial
// constraints: the two FDs expanded via constraints.FD plus the
// single-tuple web-address DC.
func Constraints(schema *db.Schema) ([]constraints.DC, error) {
	var out []constraints.DC
	fd1, err := constraints.FD(schema.Relation("OBS"), []string{"orgID"}, "orgName")
	if err != nil {
		return nil, err
	}
	out = append(out, fd1...)
	fd2, err := constraints.FD(schema.Relation("PBS"), []string{"addr", "city", "state_abbrev"}, "zip")
	if err != nil {
		return nil, err
	}
	out = append(out, fd2...)

	pbs := schema.Relation("PBS")
	args := make([]cq.Term, pbs.Arity())
	for i := range args {
		args[i] = cq.V(fmt.Sprintf("v%d", i))
	}
	out = append(out, constraints.DC{
		Name:  "dc:PBS:webAddr-nonempty",
		Atoms: []cq.Atom{{Rel: "PBS", Args: args}},
		Conds: []cq.Condition{{
			Left:  cq.V(fmt.Sprintf("v%d", pbs.AttrIndex("webAddr"))),
			Op:    cq.OpEQ,
			Right: cq.C(db.Str("")),
		}},
	})
	return out, nil
}

// Generate builds a synthetic Medigap instance at the given scale
// (1.0 ≈ the paper's 61 K tuples), deterministically from the seed,
// planting FD and DC violations at the Table IVb rates.
func Generate(scale float64, seed uint64) (*db.Instance, error) {
	r := xrand.New(seed)
	in := db.NewInstance(Schema())
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 10 {
			v = 10
		}
		return v
	}

	nOBS, nPBS, nPBZ, nPT, nPR := n(baseOBS), n(basePBS), n(basePBZ), n(basePT), n(basePR)
	nSPT := int(float64(baseSPT) * scale)
	if nSPT < len(simpleTypes)*2 {
		nSPT = len(simpleTypes) * 2
	}

	// OBS: one tuple per organization; a planted fraction of orgIDs get
	// a second tuple with a conflicting orgName (FD violation pairs).
	fdPairs := int(float64(nOBS) * rateOBSFD / 100 / 2)
	for i := 0; i < nOBS-fdPairs; i++ {
		st := xrand.Pick(r, states)
		in.MustInsert("OBS",
			db.Str(fmt.Sprintf("ORG%05d", i)),
			db.Str(fmt.Sprintf("Insurer %d", i)),
			db.Str(st.abbrev),
			db.Int(xrand.Pick(r, years)),
			db.Str(xrand.Pick(r, []string{"Medigap", "PDP", "Advantage"})),
		)
	}
	for p := 0; p < fdPairs; p++ {
		id := fmt.Sprintf("ORG%05d", r.Intn(nOBS-fdPairs))
		st := xrand.Pick(r, states)
		in.MustInsert("OBS",
			db.Str(id),
			db.Str(fmt.Sprintf("Insurer %s (renamed %d)", id, p)),
			db.Str(st.abbrev),
			db.Int(xrand.Pick(r, years)),
			db.Str("Medigap"),
		)
	}

	// PBS: plans by state. Planted violations: FD pairs on
	// (addr, city, abbrev) → zip, and empty webAddr tuples.
	pbsFDPairs := int(float64(nPBS) * ratePBSFD / 100 / 2)
	pbsDCCount := int(float64(nPBS)*ratePBSDC/100) + 1
	insertPBS := func(i int, addr, city, abbrev, zip, webAddr string) {
		in.MustInsert("PBS",
			db.Str(fmt.Sprintf("ORG%05d", r.Intn(nOBS-fdPairs))),
			db.Str(fmt.Sprintf("Insurer %d", i)),
			db.Str(xrand.Pick(r, planTypes)),
			db.Str(abbrev),
			db.Str(addr), db.Str(city), db.Str(zip), db.Str(webAddr),
			db.Str(fmt.Sprintf("555-01%02d", r.Intn(100))),
			db.Int(xrand.Pick(r, years)),
			db.Int(int64(r.Range(50, 400))),
			db.Int(int64(r.Range(0, 250))),
			db.Str(fmt.Sprintf("Plan %d", i)),
			db.Str(xrand.Pick(r, wisconsinCounties)),
			db.Int(int64(r.Range(0, 5000))),
			db.Int(int64(r.Range(1, 5))),
			db.Str(fmt.Sprintf("plan%d@example.org", i)),
			db.Str(""),
		)
	}
	plain := nPBS - 2*pbsFDPairs
	for i := 0; i < plain; i++ {
		st := xrand.Pick(r, states)
		web := fmt.Sprintf("https://plans.example/%d", i)
		if i < pbsDCCount {
			web = "" // DC violation: empty web address
		}
		insertPBS(i, fmt.Sprintf("%d Main St", i), "Springfield", st.abbrev,
			fmt.Sprintf("%05d", 10000+i%90000), web)
	}
	for p := 0; p < pbsFDPairs; p++ {
		st := xrand.Pick(r, states)
		addr := fmt.Sprintf("%d Oak Ave", p)
		insertPBS(plain+2*p, addr, "Madison", st.abbrev, fmt.Sprintf("%05d", 20000+p), "https://a.example")
		insertPBS(plain+2*p+1, addr, "Madison", st.abbrev, fmt.Sprintf("%05d", 30000+p), "https://b.example")
	}

	// PBZ: plans by zip; Wisconsin counties are well represented so the
	// Table V queries select non-trivial subsets.
	for i := 0; i < nPBZ; i++ {
		st := xrand.Pick(r, states)
		county := "COUNTY " + st.abbrev
		if st.abbrev == "WI" {
			county = xrand.Pick(r, wisconsinCounties)
		}
		sp := xrand.Pick(r, simpleTypes)
		in.MustInsert("PBZ",
			db.Str(st.name), db.Str(st.abbrev), db.Str(county),
			db.Str(fmt.Sprintf("%05d", 10000+r.Intn(89999))),
			db.Str("Medigap plan type "+sp),
			db.Str(sp),
			db.Str(xrand.Pick(r, planTypes)),
			db.Int(xrand.Pick(r, years)),
			db.Int(int64(r.Range(0, 900))),
			db.Int(int64(r.Range(0, 300))),
			db.Int(int64(r.Range(0, 500))),
			db.Int(int64(r.Range(40, 200))),
			db.Int(int64(r.Range(200, 900))),
			db.Str(fmt.Sprintf("ORG%05d", r.Intn(nOBS-fdPairs))),
			db.Str(fmt.Sprintf("Insurer %d", r.Intn(nOBS))),
			db.Str("555-0100"),
			db.Str("https://plans.example"),
			db.Int(int64(r.Range(0, 9000))),
			db.Int(int64(r.Range(1, 5))),
			db.Str("-"),
		)
	}

	// PT and PR share (state, plan type, year) so Q12ᵐ's join works.
	for i := 0; i < nPT; i++ {
		st := xrand.Pick(r, states)
		pt := xrand.Pick(r, planTypes)
		in.MustInsert("PT",
			db.Str(st.abbrev), db.Str(pt),
			db.Int(xrand.Pick(r, years)),
			db.Str(simpleFor(pt)),
		)
	}
	for i := 0; i < nPR; i++ {
		st := xrand.Pick(r, states)
		pt := xrand.Pick(r, planTypes)
		lo := r.Range(40, 250)
		in.MustInsert("PR",
			db.Str(st.abbrev), db.Str(pt),
			db.Int(xrand.Pick(r, years)),
			db.Str(fmt.Sprintf("$%d - $%d", lo, lo+r.Range(20, 120))),
			db.Int(int64(lo)),
			db.Int(int64(lo+r.Range(20, 120))),
			db.Str(xrand.Pick(r, []string{"65", "70", "75", "80"})),
		)
	}

	// SPT: the simple plan type dictionary, per year.
	i := 0
	for i < nSPT {
		sp := simpleTypes[i%len(simpleTypes)]
		year := years[(i/len(simpleTypes))%len(years)]
		in.MustInsert("SPT",
			db.Str(sp),
			db.Str("Medigap plan type "+sp),
			db.Int(year),
			db.Int(int64(i)),
		)
		i++
	}
	return in, nil
}

// simpleFor maps a plan type to its simple plan type (identity when the
// plan type is itself simple, else a fold onto the simple alphabet).
func simpleFor(pt string) string {
	for _, s := range simpleTypes {
		if s == pt {
			return s
		}
	}
	return simpleTypes[len(pt)%len(simpleTypes)]
}

// Query is one of the twelve evaluation queries.
type Query struct {
	Name    string
	SQL     string
	Grouped bool
}

// Queries returns Q₁ᵐ…Q₁₂ᵐ: the Table V definitions where given, natural
// completions elsewhere. The first six are scalar, the rest grouped.
func Queries() []Query {
	return []Query{
		{Name: "Q1m", SQL: `SELECT COUNT(*) FROM PBS
			WHERE PBS.state_abbrev = 'NY' AND PBS.contract_year = 2020`},
		{Name: "Q2m", SQL: `SELECT COUNT(*) FROM PBZ, SPT
			WHERE PBZ.Description = SPT.Simple_plantype_name
			  AND SPT.Contract_year = 2020 AND SPT.Simple_plantype = 'B'`},
		{Name: "Q3m", SQL: `SELECT SUM(PBZ.Over65) FROM PBZ
			WHERE PBZ.State_name = 'Wisconsin' AND PBZ.County_name = 'GREEN LAKE'`},
		{Name: "Q4m", SQL: `SELECT SUM(PBZ.Community) FROM PBZ
			WHERE PBZ.State_name = 'New York'`},
		{Name: "Q5m", SQL: `SELECT COUNT(PBS.zip) FROM PBS, OBS
			WHERE PBS.orgID = OBS.orgID AND OBS.state_abbrev = 'CA'`},
		{Name: "Q6m", SQL: `SELECT SUM(PR.Premium_low) FROM PR, PT
			WHERE PR.State_abbrev = PT.State_abbrev AND PR.Plan_type = PT.Plan_type
			  AND PR.Contract_year = PT.Contract_year AND PT.Simple_plantype = 'A'`},
		{Name: "Q7m", Grouped: true, SQL: `SELECT SPT.Contract_year, COUNT(*) FROM SPT
			GROUP BY SPT.Contract_year ORDER BY SPT.Contract_year DESC`},
		{Name: "Q8m", Grouped: true, SQL: `SELECT PBZ.State_name, COUNT(*) FROM PBZ
			GROUP BY PBZ.State_name`},
		{Name: "Q9m", Grouped: true, SQL: `SELECT PBS.state_abbrev, COUNT(*) FROM PBS
			WHERE PBS.contract_year = 2020 GROUP BY PBS.state_abbrev`},
		{Name: "Q10m", Grouped: true, SQL: `SELECT PBZ.County_name, SUM(PBZ.Over65) FROM PBZ
			WHERE PBZ.State_name = 'Wisconsin' GROUP BY PBZ.County_name`},
		{Name: "Q11m", Grouped: true, SQL: `SELECT SPT.Simple_plantype, COUNT(SPT.Simple_plantype_name)
			FROM SPT GROUP BY SPT.Simple_plantype`},
		{Name: "Q12m", Grouped: true, SQL: `SELECT TOP 10 PT.Simple_plantype, COUNT(PR.Premium_range)
			FROM PT, PR
			WHERE PT.State_abbrev = PR.State_abbrev AND PT.Plan_type = PR.Plan_type
			  AND PT.Contract_year = PR.Contract_year AND PT.Contract_year = 2020
			GROUP BY PT.Simple_plantype ORDER BY PT.Simple_plantype`},
	}
}

// Translate parses and translates the query against the Medigap schema.
func (q Query) Translate() (*sqlparse.Translation, error) {
	return sqlparse.ParseAndTranslate(q.SQL, Schema())
}
