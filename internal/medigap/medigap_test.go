package medigap

import (
	"strings"
	"testing"

	"aggcavsat/internal/constraints"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

func TestSchemaShape(t *testing.T) {
	s := Schema()
	want := map[string]int{ // Table IVa attribute counts
		"OBS": 5, "PBS": 18, "PBZ": 20, "PT": 4, "PR": 7, "SPT": 4,
	}
	for name, attrs := range want {
		rs := s.Relation(name)
		if rs == nil {
			t.Fatalf("missing relation %s", name)
		}
		if rs.Arity() != attrs {
			t.Errorf("%s has %d attributes, want %d", name, rs.Arity(), attrs)
		}
		if rs.HasKey() {
			t.Errorf("%s must not declare a key (constraints are DCs)", name)
		}
	}
}

func TestConstraints(t *testing.T) {
	s := Schema()
	dcs, err := Constraints(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(dcs) != 3 { // 2 FDs + 1 DC
		t.Fatalf("constraints = %d, want 3", len(dcs))
	}
	for _, dc := range dcs {
		if err := dc.Validate(s); err != nil {
			t.Errorf("%s: %v", dc.Name, err)
		}
	}
}

func TestGenerateViolationRates(t *testing.T) {
	in, err := Generate(0.25, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := in.Schema()
	dcs, err := Constraints(s)
	if err != nil {
		t.Fatal(err)
	}
	e := cq.NewEvaluator(in)
	violations := constraints.MinimalViolations(e, dcs)
	if len(violations) == 0 {
		t.Fatal("no violations generated")
	}
	// Count violating facts per relation.
	perRel := map[string]int{}
	seen := map[db.FactID]bool{}
	singletons := 0
	for _, v := range violations {
		if len(v) == 1 {
			singletons++
		}
		for _, f := range v {
			if !seen[f] {
				seen[f] = true
				perRel[in.Fact(f).Rel]++
			}
		}
	}
	if singletons == 0 {
		t.Error("expected webAddr DC violations")
	}
	obsPct := 100 * float64(perRel["obs"]) / float64(in.RelSize("OBS"))
	if obsPct < 1.2 || obsPct > 4.5 {
		t.Errorf("OBS violation rate = %.2f%%, want ≈2.58%%", obsPct)
	}
	pbsPct := 100 * float64(perRel["pbs"]) / float64(in.RelSize("PBS"))
	if pbsPct < 0.8 || pbsPct > 3.2 { // FD 1.5% + DC 0.15%
		t.Errorf("PBS violation rate = %.2f%%, want ≈1.65%%", pbsPct)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(0.02, 3)
	b, _ := Generate(0.02, 3)
	if a.NumFacts() != b.NumFacts() {
		t.Fatal("sizes differ")
	}
	for i := 0; i < a.NumFacts(); i++ {
		if !a.Fact(db.FactID(i)).Tuple.Equal(b.Fact(db.FactID(i)).Tuple) {
			t.Fatalf("fact %d differs", i)
		}
	}
}

func TestCardinalityProportions(t *testing.T) {
	in, _ := Generate(1.0, 1)
	// Within a few percent of Table IVa.
	want := map[string]int{
		"OBS": 3872, "PBS": 21002, "PBZ": 4748, "PT": 2434, "PR": 29148, "SPT": 70,
	}
	for rel, n := range want {
		got := in.RelSize(rel)
		if got < n*95/100 || got > n*105/100 {
			t.Errorf("%s = %d, want ≈%d", rel, got, n)
		}
	}
}

func TestAllQueriesTranslateAndRun(t *testing.T) {
	in, err := Generate(0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := cq.NewEvaluator(in)
	scalarSeen, groupedSeen := 0, 0
	for _, q := range Queries() {
		tr, err := q.Translate()
		if err != nil {
			t.Errorf("%s: %v", q.Name, err)
			continue
		}
		res, err := cq.EvalAgg(e, tr.Aggs[0].Query)
		if err != nil {
			t.Errorf("%s: eval: %v", q.Name, err)
			continue
		}
		if q.Grouped {
			groupedSeen++
			if len(res) == 0 {
				t.Errorf("%s: no groups", q.Name)
			}
		} else {
			scalarSeen++
			if len(res) != 1 {
				t.Errorf("%s: scalar returned %d rows", q.Name, len(res))
			}
			if res[0].Value.AsInt() == 0 && !strings.Contains(q.Name, "Q3m") {
				t.Errorf("%s: zero result; check generator domains", q.Name)
			}
		}
	}
	if scalarSeen != 6 || groupedSeen != 6 {
		t.Errorf("scalar/grouped split = %d/%d, want 6/6", scalarSeen, groupedSeen)
	}
}
