package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteWCNF serializes the formula in the classic DIMACS WCNF format
// ("p wcnf <vars> <clauses> <top>"), the input format of MaxHS and other
// MaxSAT-evaluation solvers. Hard clauses carry the top weight.
func (f *Formula) WriteWCNF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	top := f.TotalSoftWeight() + 1
	if _, err := fmt.Fprintf(bw, "p wcnf %d %d %d\n", f.numVars, len(f.clauses), top); err != nil {
		return err
	}
	for _, c := range f.clauses {
		weight := c.Weight
		if c.Hard() {
			weight = top
		}
		if _, err := fmt.Fprintf(bw, "%d", weight); err != nil {
			return err
		}
		for _, l := range c.Lits {
			if _, err := fmt.Fprintf(bw, " %d", l); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(" 0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWCNF parses a DIMACS WCNF formula (classic "p wcnf" header format).
// Comment lines start with 'c'. Clauses whose weight equals the header's
// top weight become hard clauses.
func ReadWCNF(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	var f *Formula
	var top int64 = -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "p") {
			fields := strings.Fields(text)
			if len(fields) != 5 || fields[1] != "wcnf" {
				return nil, fmt.Errorf("cnf: line %d: bad problem line %q", line, text)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("cnf: line %d: bad var count: %w", line, err)
			}
			top, err = strconv.ParseInt(fields[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cnf: line %d: bad top weight: %w", line, err)
			}
			f = New(nv)
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("cnf: line %d: clause before problem line", line)
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || fields[len(fields)-1] != "0" {
			return nil, fmt.Errorf("cnf: line %d: clause not 0-terminated", line)
		}
		weight, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cnf: line %d: bad weight: %w", line, err)
		}
		lits := make([]Lit, 0, len(fields)-2)
		for _, s := range fields[1 : len(fields)-1] {
			n, err := strconv.Atoi(s)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("cnf: line %d: bad literal %q", line, s)
			}
			lits = append(lits, Lit(n))
		}
		if weight >= top {
			f.AddHard(lits...)
		} else {
			f.AddSoft(weight, lits...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("cnf: no problem line found")
	}
	return f, nil
}
