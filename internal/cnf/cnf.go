// Package cnf provides weighted partial CNF formulas: the interchange
// format between the reductions of internal/core and the solvers of
// internal/sat and internal/maxsat.
//
// Literals follow the DIMACS convention: variable v > 0 appears positively
// as v and negatively as -v. Variables are dense positive integers.
//
// The package also implements Kügel's CNF-negation, which turns a
// Weighted Partial MinSAT instance into a Weighted Partial MaxSAT
// instance — the paper uses it (Section IV) to obtain lub-answers with a
// MaxSAT solver.
package cnf

import (
	"fmt"
	"sort"
)

// Lit is a DIMACS literal: +v or -v for variable v >= 1.
type Lit int

// Var returns the variable of the literal.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Positive reports whether the literal is positive.
func (l Lit) Positive() bool { return l > 0 }

// HardWeight marks a clause as hard (must be satisfied). Any clause whose
// weight equals HardWeight is hard; all other weights must be positive.
const HardWeight int64 = -1

// Clause is a disjunction of literals with a weight. Weight == HardWeight
// means the clause is hard; otherwise the clause is soft with the given
// positive weight.
type Clause struct {
	Lits   []Lit
	Weight int64
}

// Hard reports whether the clause is hard.
func (c Clause) Hard() bool { return c.Weight == HardWeight }

// Formula is a weighted partial CNF formula. NumVars is the highest
// variable index in use; NewVar extends it.
type Formula struct {
	numVars int
	clauses []Clause
}

// New creates a formula with n pre-allocated variables 1..n.
func New(n int) *Formula {
	if n < 0 {
		panic("cnf: negative variable count")
	}
	return &Formula{numVars: n}
}

// NumVars returns the number of variables.
func (f *Formula) NumVars() int { return f.numVars }

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.clauses) }

// Clauses returns the clause slice; callers must not mutate it.
func (f *Formula) Clauses() []Clause { return f.clauses }

// NewVar allocates a fresh variable and returns its index.
func (f *Formula) NewVar() int {
	f.numVars++
	return f.numVars
}

// AddHard appends a hard clause.
func (f *Formula) AddHard(lits ...Lit) {
	f.add(Clause{Lits: lits, Weight: HardWeight})
}

// AddSoft appends a soft clause with the given positive weight.
func (f *Formula) AddSoft(weight int64, lits ...Lit) {
	if weight <= 0 {
		panic(fmt.Sprintf("cnf: soft clause weight %d must be positive", weight))
	}
	f.add(Clause{Lits: lits, Weight: weight})
}

func (f *Formula) add(c Clause) {
	for _, l := range c.Lits {
		v := l.Var()
		if v < 1 {
			panic("cnf: literal with variable < 1")
		}
		if v > f.numVars {
			f.numVars = v
		}
	}
	cp := make([]Lit, len(c.Lits))
	copy(cp, c.Lits)
	c.Lits = cp
	f.clauses = append(f.clauses, c)
}

// TotalSoftWeight returns the sum of all soft clause weights.
func (f *Formula) TotalSoftWeight() int64 {
	var sum int64
	for _, c := range f.clauses {
		if !c.Hard() {
			sum += c.Weight
		}
	}
	return sum
}

// Stats summarizes a formula for the CNF-size tables of the paper
// (Table III).
type Stats struct {
	Vars        int
	Clauses     int
	HardClauses int
	SoftClauses int
	SoftWeight  int64
}

// Stats computes formula statistics.
func (f *Formula) Stats() Stats {
	s := Stats{Vars: f.numVars, Clauses: len(f.clauses)}
	for _, c := range f.clauses {
		if c.Hard() {
			s.HardClauses++
		} else {
			s.SoftClauses++
			s.SoftWeight += c.Weight
		}
	}
	return s
}

// Eval evaluates the formula under the assignment (assignment[v] is the
// truth value of variable v; index 0 unused). It reports whether all hard
// clauses hold, along with the total weight of satisfied and falsified
// soft clauses.
func (f *Formula) Eval(assignment []bool) (hardOK bool, satWeight, falsWeight int64) {
	hardOK = true
	for _, c := range f.clauses {
		sat := false
		for _, l := range c.Lits {
			v := l.Var()
			if v < len(assignment) && assignment[v] == l.Positive() {
				sat = true
				break
			}
		}
		switch {
		case c.Hard():
			if !sat {
				hardOK = false
			}
		case sat:
			satWeight += c.Weight
		default:
			falsWeight += c.Weight
		}
	}
	return hardOK, satWeight, falsWeight
}

// NegateSoft applies Kügel's CNF-negation: it returns a new formula whose
// hard clauses are those of f and whose soft clauses are replaced so that
// maximizing satisfied soft weight in the result corresponds to
// *minimizing* satisfied soft weight in f.
//
// For each soft clause C = (l1 ∨ … ∨ lk, w) a fresh variable y is
// introduced with hard clauses (¬y ∨ ¬li) for every i, and the soft unit
// clause (y, w) replaces C. Setting y true is only possible when C is
// falsified, so the MaxSAT optimum of the result equals the total soft
// weight of f minus the MinSAT optimum of f.
//
// Unit soft clauses avoid the auxiliary variable: (l, w) becomes (¬l, w).
func (f *Formula) NegateSoft() *Formula {
	out := New(f.numVars)
	for _, c := range f.clauses {
		if c.Hard() {
			out.AddHard(c.Lits...)
		}
	}
	for _, c := range f.clauses {
		if c.Hard() {
			continue
		}
		if len(c.Lits) == 1 {
			out.AddSoft(c.Weight, c.Lits[0].Neg())
			continue
		}
		y := Lit(out.NewVar())
		for _, l := range c.Lits {
			out.AddHard(y.Neg(), l.Neg())
		}
		out.AddSoft(c.Weight, y)
	}
	return out
}

// Snapshot returns a copy-on-append view of the formula: the clause
// slice is shared with capacity clamped to its length, so appending to
// the view (AddHard/AddSoft/NewVar) reallocates privately and never
// mutates f. Clause literal slices stay shared — callers must not edit
// existing clauses in place. This is how a cached hard-clause prefix is
// handed to many consumers that each extend it with their own soft
// clauses.
func (f *Formula) Snapshot() *Formula {
	out := New(f.numVars)
	out.clauses = f.clauses[:len(f.clauses):len(f.clauses)]
	return out
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	out := New(f.numVars)
	out.clauses = make([]Clause, len(f.clauses))
	for i, c := range f.clauses {
		lits := make([]Lit, len(c.Lits))
		copy(lits, c.Lits)
		out.clauses[i] = Clause{Lits: lits, Weight: c.Weight}
	}
	return out
}

// SortLits normalizes every clause by sorting and deduplicating its
// literals; tautological clauses (containing l and ¬l) are kept verbatim
// (the solvers handle them). Intended for tests comparing formulas.
func (f *Formula) SortLits() {
	for i := range f.clauses {
		lits := f.clauses[i].Lits
		sort.Slice(lits, func(a, b int) bool { return lits[a] < lits[b] })
		dedup := lits[:0]
		for j, l := range lits {
			if j == 0 || l != lits[j-1] {
				dedup = append(dedup, l)
			}
		}
		f.clauses[i].Lits = dedup
	}
}
