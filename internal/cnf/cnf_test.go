package cnf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestLit(t *testing.T) {
	l := Lit(5)
	if l.Var() != 5 || !l.Positive() || l.Neg() != Lit(-5) {
		t.Error("positive literal accessors")
	}
	n := Lit(-3)
	if n.Var() != 3 || n.Positive() || n.Neg() != Lit(3) {
		t.Error("negative literal accessors")
	}
}

func TestFormulaBasics(t *testing.T) {
	f := New(2)
	if f.NumVars() != 2 {
		t.Error("NumVars after New")
	}
	f.AddHard(1, -2)
	f.AddSoft(3, 2)
	if f.NumClauses() != 2 {
		t.Error("NumClauses")
	}
	if f.Clauses()[0].Hard() == false || f.Clauses()[1].Hard() == true {
		t.Error("hard/soft classification")
	}
	if f.TotalSoftWeight() != 3 {
		t.Error("TotalSoftWeight")
	}
	v := f.NewVar()
	if v != 3 || f.NumVars() != 3 {
		t.Error("NewVar")
	}
	// Adding a clause mentioning variable 9 grows NumVars.
	f.AddHard(9)
	if f.NumVars() != 9 {
		t.Error("NumVars auto-grow")
	}
}

func TestFormulaPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	f := New(1)
	mustPanic("zero weight", func() { f.AddSoft(0, 1) })
	mustPanic("negative weight", func() { f.AddSoft(-2, 1) })
	mustPanic("zero literal", func() { f.AddHard(0) })
	mustPanic("negative var count", func() { New(-1) })
}

func TestAddCopiesLits(t *testing.T) {
	f := New(2)
	lits := []Lit{1, 2}
	f.AddHard(lits...)
	lits[0] = -1
	if f.Clauses()[0].Lits[0] != 1 {
		t.Error("AddHard must copy literal slice")
	}
}

func TestStats(t *testing.T) {
	f := New(3)
	f.AddHard(1, 2)
	f.AddSoft(2, -3)
	f.AddSoft(5, 1, 3)
	s := f.Stats()
	if s.Vars != 3 || s.Clauses != 3 || s.HardClauses != 1 || s.SoftClauses != 2 || s.SoftWeight != 7 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestEval(t *testing.T) {
	f := New(3)
	f.AddHard(1, 2)                             // x1 or x2
	f.AddSoft(2, -1)                            // not x1, weight 2
	f.AddSoft(5, 3)                             // x3, weight 5
	assign := []bool{false, true, false, false} // x1=T, x2=F, x3=F
	hardOK, sat, fals := f.Eval(assign)
	if !hardOK {
		t.Error("hard clause satisfied by x1")
	}
	if sat != 0 || fals != 7 {
		t.Errorf("sat=%d fals=%d, want 0/7", sat, fals)
	}
	assign = []bool{false, false, true, true} // x1=F, x2=T, x3=T
	hardOK, sat, fals = f.Eval(assign)
	if !hardOK || sat != 7 || fals != 0 {
		t.Errorf("hardOK=%v sat=%d fals=%d, want true/7/0", hardOK, sat, fals)
	}
	assign = []bool{false, false, false, false}
	hardOK, _, _ = f.Eval(assign)
	if hardOK {
		t.Error("hard clause should be falsified")
	}
}

func TestClone(t *testing.T) {
	f := New(2)
	f.AddHard(1, 2)
	f.AddSoft(4, -1)
	g := f.Clone()
	g.AddHard(-2)
	g.Clauses()[0].Lits[0] = -1
	if f.NumClauses() != 2 {
		t.Error("Clone shares clause slice")
	}
	if f.Clauses()[0].Lits[0] != 1 {
		t.Error("Clone shares literal storage")
	}
}

func TestSortLits(t *testing.T) {
	f := New(3)
	f.AddHard(3, -1, 2, 3)
	f.SortLits()
	got := f.Clauses()[0].Lits
	want := []Lit{-1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("SortLits: got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortLits: got %v, want %v", got, want)
		}
	}
}

// TestNegateSoftSemantics verifies Kügel's transformation on exhaustive
// small formulas: for every assignment satisfying the hard clauses, the
// best (max) satisfied-soft weight in the negated formula equals total
// soft weight minus the min satisfied-soft weight in the original.
func TestNegateSoftSemantics(t *testing.T) {
	f := New(3)
	f.AddHard(1, 2, 3)
	f.AddSoft(2, 1, -2)
	f.AddSoft(3, 2, 3)
	f.AddSoft(1, -3)
	g := f.NegateSoft()

	minSat := int64(1 << 60)
	for m := 0; m < 8; m++ {
		assign := []bool{false, m&1 != 0, m&2 != 0, m&4 != 0}
		hardOK, sat, _ := f.Eval(assign)
		if hardOK && sat < minSat {
			minSat = sat
		}
	}
	// Maximize satisfied soft weight in g over all assignments to all of
	// g's variables (originals plus auxiliaries).
	maxSatG := int64(-1)
	n := g.NumVars()
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n+1)
		for v := 1; v <= n; v++ {
			assign[v] = m&(1<<(v-1)) != 0
		}
		hardOK, sat, _ := g.Eval(assign)
		if hardOK && sat > maxSatG {
			maxSatG = sat
		}
	}
	if want := f.TotalSoftWeight() - minSat; maxSatG != want {
		t.Errorf("NegateSoft: maxSat(g) = %d, want totalSoft - minSat(f) = %d", maxSatG, want)
	}
}

func TestNegateSoftUnitShortcut(t *testing.T) {
	f := New(1)
	f.AddSoft(7, 1)
	g := f.NegateSoft()
	if g.NumVars() != 1 {
		t.Error("unit soft clause should not allocate an auxiliary variable")
	}
	c := g.Clauses()[0]
	if c.Hard() || c.Weight != 7 || len(c.Lits) != 1 || c.Lits[0] != -1 {
		t.Errorf("unit negation clause = %+v", c)
	}
}

func TestWCNFRoundTrip(t *testing.T) {
	f := New(4)
	f.AddHard(1, -2)
	f.AddHard(3)
	f.AddSoft(5, -4, 2)
	f.AddSoft(1, 4)
	var buf bytes.Buffer
	if err := f.WriteWCNF(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadWCNF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars() != f.NumVars() || g.NumClauses() != f.NumClauses() {
		t.Fatalf("round trip: %d vars %d clauses", g.NumVars(), g.NumClauses())
	}
	for i, c := range g.Clauses() {
		orig := f.Clauses()[i]
		if c.Hard() != orig.Hard() || (!c.Hard() && c.Weight != orig.Weight) {
			t.Errorf("clause %d weight mismatch: %+v vs %+v", i, c, orig)
		}
		if len(c.Lits) != len(orig.Lits) {
			t.Errorf("clause %d literal count", i)
			continue
		}
		for j := range c.Lits {
			if c.Lits[j] != orig.Lits[j] {
				t.Errorf("clause %d literal %d", i, j)
			}
		}
	}
}

func TestReadWCNFErrors(t *testing.T) {
	bad := []string{
		"",                      // no problem line
		"p cnf 2 1\n1 0\n",      // wrong format tag
		"p wcnf 2 1\n",          // missing top
		"1 1 0\np wcnf 1 1 2\n", // clause before header
		"p wcnf 1 1 2\n1 1\n",   // clause not 0-terminated
		"p wcnf 1 1 2\nx 1 0\n", // bad weight
		"p wcnf 1 1 2\n1 z 0\n", // bad literal
	}
	for i, s := range bad {
		if _, err := ReadWCNF(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected error for %q", i, s)
		}
	}
}

func TestReadWCNFComments(t *testing.T) {
	src := "c comment\np wcnf 2 2 9\nc another\n9 1 2 0\n3 -1 0\n"
	f, err := ReadWCNF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Clauses()[0].Hard() {
		t.Error("top-weight clause should be hard")
	}
	if f.Clauses()[1].Hard() || f.Clauses()[1].Weight != 3 {
		t.Error("soft clause mis-parsed")
	}
}

func TestWCNFPropertyRoundTrip(t *testing.T) {
	fn := func(seed uint32) bool {
		s := uint64(seed) | 1
		next := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(n))
		}
		f := New(5)
		nc := 1 + next(6)
		for i := 0; i < nc; i++ {
			nl := 1 + next(3)
			lits := make([]Lit, nl)
			for j := range lits {
				v := 1 + next(5)
				if next(2) == 0 {
					lits[j] = Lit(v)
				} else {
					lits[j] = Lit(-v)
				}
			}
			if next(2) == 0 {
				f.AddHard(lits...)
			} else {
				f.AddSoft(int64(1+next(9)), lits...)
			}
		}
		var buf bytes.Buffer
		if err := f.WriteWCNF(&buf); err != nil {
			return false
		}
		g, err := ReadWCNF(&buf)
		if err != nil {
			return false
		}
		if g.NumClauses() != f.NumClauses() || g.TotalSoftWeight() != f.TotalSoftWeight() {
			return false
		}
		for i := range f.Clauses() {
			a, b := f.Clauses()[i], g.Clauses()[i]
			if a.Hard() != b.Hard() || len(a.Lits) != len(b.Lits) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
