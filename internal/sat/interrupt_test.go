package sat

import (
	"context"
	"testing"
	"time"
)

func TestInterruptBeforeSolve(t *testing.T) {
	s := New()
	pigeonhole(s, 7, 6)
	s.Interrupt()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("interrupted solve = %v, want Unknown", st)
	}
	if !s.Interrupted() {
		t.Error("Interrupted() should stay set")
	}
}

func TestInterruptDuringSearch(t *testing.T) {
	// PHP(11, 10) needs an exponential resolution proof — far longer than
	// the interrupt latency — so the progress callback (fired at the
	// first conflict) reliably stops the search mid-flight.
	s := New()
	pigeonhole(s, 11, 10)
	s.SetProgress(1, func(Progress) { s.Interrupt() })
	start := time.Now()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("solve = %v, want Unknown after interrupt", st)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("interrupt took %v to take effect", elapsed)
	}
}

func TestStopOnDoneCancel(t *testing.T) {
	s := New()
	pigeonhole(s, 11, 10)
	ctx, cancel := context.WithCancel(context.Background())
	release := StopOnDone(ctx, s)
	defer release()
	s.SetProgress(1, func(Progress) { cancel() })
	if st := s.Solve(); st != Unknown {
		t.Fatalf("solve = %v, want Unknown after context cancel", st)
	}
}

func TestStopOnDoneAlreadyCanceled(t *testing.T) {
	s := New()
	pigeonhole(s, 7, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	release := StopOnDone(ctx, s)
	defer release()
	// The watcher goroutine interrupts asynchronously; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Interrupted() {
		if time.Now().After(deadline) {
			t.Fatal("watcher never interrupted the solver")
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("solve = %v, want Unknown", st)
	}
}

func TestStopOnDoneNoDeadline(t *testing.T) {
	// A background context can never be done: StopOnDone must not spawn
	// a watcher or perturb the solve.
	s := New()
	s.AddClause(1)
	release := StopOnDone(context.Background(), s)
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve = %v, want Sat", st)
	}
	release()
	release() // must be idempotent
}

func TestStopOnDoneReleaseIdempotent(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := StopOnDone(ctx, s)
	release()
	release()
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve = %v, want Sat", st)
	}
}
