package sat

// Clone returns a deep snapshot of the solver: clause headers, the flat
// literal arena, watch lists, the level-0 trail, assignments, variable
// activities, saved phases, and the branching heap are all copied, so
// the clone resumes exactly where the original stands while sharing no
// mutable memory with it. Learnt clauses present at snapshot time carry
// over — they are implied by the clause database alone, so they remain
// valid for any use of the clone.
//
// Clone must be called at decision level 0 with no Solve in flight (the
// natural state between Solve calls); it panics during search. The
// clone starts with fresh Statistics, a clear interrupt flag, no
// conflict budget, and no progress callback. Cloning the same solver
// from multiple goroutines is safe as long as nothing mutates it.
func (s *Solver) Clone() *Solver {
	if len(s.trailLim) != 0 {
		panic("sat: Clone called during search")
	}
	c := &Solver{
		okay:            s.okay,
		qhead:           s.qhead,
		varInc:          s.varInc,
		claInc:          s.claInc,
		learntCount:     s.learntCount,
		maxLearnts:      s.maxLearnts,
		originalClauses: s.originalClauses,
		lbdStamp:        s.lbdStamp,
	}
	c.clauses = append([]clause(nil), s.clauses...)
	c.arena = append([]lit(nil), s.arena...)
	// Watch lists are rebuilt over one flat backing array. Each
	// per-literal slice gets capacity == length, so a later append in
	// the clone reallocates privately instead of clobbering the
	// neighbouring list.
	total := 0
	for _, ws := range s.watches {
		total += len(ws)
	}
	backing := make([]watcher, 0, total)
	c.watches = make([][]watcher, len(s.watches))
	for i, ws := range s.watches {
		if len(ws) == 0 {
			continue
		}
		start := len(backing)
		backing = append(backing, ws...)
		c.watches[i] = backing[start:len(backing):len(backing)]
	}
	c.assigns = append([]lbool(nil), s.assigns...)
	c.level = append([]int32(nil), s.level...)
	c.reason = append([]int32(nil), s.reason...)
	c.phase = append([]bool(nil), s.phase...)
	c.trail = append([]lit(nil), s.trail...)
	c.activity = append([]float64(nil), s.activity...)
	c.seen = make([]bool, len(s.seen))
	c.lbdSeen = append([]uint64(nil), s.lbdSeen...)
	c.heap.heap = append([]int(nil), s.heap.heap...)
	c.heap.pos = append([]int(nil), s.heap.pos...)
	return c
}

// AddedSinceClone reports how many clauses have been added through
// AddClause (units included, tautologies and already-satisfied clauses
// excluded) since this solver was created by New or Clone. Learnt
// clauses do not count: they are consequences of the clause set, not
// extensions of it. A clone that still reports zero therefore holds
// only consequences of its origin's clauses — the soundness condition
// for adopting its learnt clauses back into a shared base.
func (s *Solver) AddedSinceClone() int { return s.addedClauses }
