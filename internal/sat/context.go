package sat

import "context"

// StopOnDone ties the solver's cooperative stop to ctx: a watcher
// goroutine calls s.Interrupt() the moment ctx is cancelled or its
// deadline expires, which makes any in-flight or future Solve call
// return Unknown. The caller must invoke the returned release function
// (typically via defer) to reclaim the watcher; release is idempotent
// in effect and never blocks.
//
// When ctx can never be cancelled (ctx.Done() == nil) no goroutine is
// spawned and release is a no-op, so wiring StopOnDone unconditionally
// costs nothing on the plain-Background path.
func StopOnDone(ctx context.Context, s *Solver) (release func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.Interrupt()
		case <-quit:
		}
	}()
	var released bool
	return func() {
		if !released {
			released = true
			close(quit)
		}
	}
}
