// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat lineage: two-watched-literal propagation, first-UIP
// conflict analysis with clause minimization, VSIDS branching, Luby
// restarts, phase saving, and activity/LBD-based learnt-clause deletion.
//
// The solver supports incremental solving under assumptions and extracts
// an unsatisfiable core over the assumptions on UNSAT — the interface the
// core-guided MaxSAT algorithm of internal/maxsat is built on. It plays
// the role MaxHS's internal SAT engine plays in the paper.
package sat

import (
	"sort"
	"sync/atomic"

	"aggcavsat/internal/cnf"
)

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means solving was aborted (budget exhausted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the assumptions) is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Internal literal encoding: variable v (0-based) appears positively as
// 2v and negatively as 2v+1.
type lit uint32

const litUndef lit = ^lit(0)

func mkLit(v int, neg bool) lit {
	l := lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

func fromCNF(l cnf.Lit) lit { return mkLit(l.Var()-1, !l.Positive()) }
func (l lit) toCNF() cnf.Lit {
	v := cnf.Lit(l.v() + 1)
	if l.sign() {
		return -v
	}
	return v
}

func (l lit) v() int     { return int(l >> 1) }
func (l lit) sign() bool { return l&1 != 0 } // true = negated
func (l lit) neg() lit   { return l ^ 1 }

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToL(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

// clause storage: clause headers live in a flat slice addressed by
// index, and every clause's literals live in one shared arena on the
// Solver — a clause records its [off, off+n) window. One allocation
// backs the whole literal store instead of one slice per clause, which
// is what makes Solver.Clone a handful of bulk copies.
type clause struct {
	off      int32
	n        int32
	activity float64
	lbd      int32
	learnt   bool
	removed  bool
}

type watcher struct {
	cref    int // clause index
	blocker lit
}

// Statistics counts solver work; exposed for the paper's "number of SAT
// calls" plots and for tests.
type Statistics struct {
	Solves       int64
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learnt       int64
	Restarts     int64
}

// Progress is a point-in-time snapshot of search state, delivered to the
// callback registered with SetProgress — the raw material of
// MiniSat-style periodic progress lines.
type Progress struct {
	Statistics
	// TrailDepth is the number of currently assigned literals.
	TrailDepth int
	// Vars and Clauses describe the current clause database (including
	// learnt clauses).
	Vars, Clauses int
	// LearntLive is the number of learnt clauses currently retained.
	LearntLive int
}

// ProgressFunc receives periodic search progress. It is called from
// inside the search loop: keep it fast and do not call back into the
// solver.
type ProgressFunc func(Progress)

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []clause
	arena   []lit       // flat literal store backing all clauses
	watches [][]watcher // indexed by lit

	assigns  []lbool // indexed by var
	level    []int32
	reason   []int32 // clause index or -1
	phase    []bool  // saved phase
	trail    []lit
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap

	seen      []bool
	analyzeTS []lit // scratch

	okay bool // false once a top-level conflict is derived

	assumptions []lit
	conflictSet []lit // final core over assumptions (negated assumption lits)

	model []bool

	claInc      float64
	learntCount int
	maxLearnts  float64

	originalClauses int // problem (non-learnt) clauses, incl. units
	addedClauses    int // clauses added since New or Clone

	lubyIndex int64

	lbdSeen  []uint64
	lbdStamp uint64

	budgetConflicts int64 // <=0 means unlimited

	stop atomic.Bool // cooperative interrupt, set from other goroutines

	progressEvery int64
	progressNext  int64
	progressFn    ProgressFunc

	Stats Statistics
}

// New creates an empty solver. The learnt-clause cap starts at 8000
// and is re-floored to originalClauses/3 at each Solve (see Solve), so
// large instances keep proportionally more learnt clauses, MiniSat
// style.
func New() *Solver {
	return &Solver{
		okay:       true,
		varInc:     1.0,
		claInc:     1.0,
		maxLearnts: 8000,
	}
}

// SetConflictBudget bounds the number of conflicts per Solve call;
// exceeding it returns Unknown. Zero or negative means unlimited.
func (s *Solver) SetConflictBudget(n int64) { s.budgetConflicts = n }

// Interrupt requests a cooperative stop: the current (or next) Solve
// call returns Unknown as soon as the search loop observes the flag.
// Safe to call from any goroutine; the flag is sticky, so an
// interrupted solver stays interrupted for all subsequent Solve calls.
func (s *Solver) Interrupt() { s.stop.Store(true) }

// Interrupted reports whether Interrupt has been called.
func (s *Solver) Interrupted() bool { return s.stop.Load() }

// SetProgress registers fn to be invoked every 'every' conflicts during
// search (and once per Solve start when a callback is set). A nil fn or
// every <= 0 disables reporting. The disabled-path cost inside the
// conflict loop is one nil check.
func (s *Solver) SetProgress(every int64, fn ProgressFunc) {
	if fn == nil || every <= 0 {
		s.progressFn = nil
		s.progressEvery = 0
		return
	}
	s.progressEvery = every
	s.progressFn = fn
	s.progressNext = s.Stats.Conflicts + every
}

// ProgressSnapshot captures the current search state (the same data the
// SetProgress callback receives).
func (s *Solver) ProgressSnapshot() Progress {
	return Progress{
		Statistics: s.Stats,
		TrailDepth: len(s.trail),
		Vars:       len(s.assigns),
		Clauses:    len(s.clauses),
		LearntLive: s.learntCount,
	}
}

// NumVars returns the number of variables known to the solver.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of clauses in the database (including
// learnt and logically removed ones).
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NewVar allocates a fresh variable and returns its 1-based CNF index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v, s.activity)
	return v + 1
}

// EnsureVars grows the variable set to at least n variables.
func (s *Solver) EnsureVars(n int) {
	for len(s.assigns) < n {
		s.NewVar()
	}
}

// Okay reports whether the clause set is still possibly satisfiable (it
// becomes false when a top-level conflict is found while adding clauses).
func (s *Solver) Okay() bool { return s.okay }

// AddClause adds a clause in CNF literal convention. It returns false if
// the solver is already in an unsatisfiable top-level state afterwards.
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	if !s.okay {
		return false
	}
	// Convert, grow vars, sort/dedup, detect tautology.
	tmp := make([]lit, 0, len(lits))
	for _, l := range lits {
		s.EnsureVars(l.Var())
		tmp = append(tmp, fromCNF(l))
	}
	// Insertion sort (clauses are short) + dedup + tautology check.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	out := tmp[:0]
	for i, l := range tmp {
		if i > 0 && l == tmp[i-1] {
			continue
		}
		if i > 0 && l == tmp[i-1]^1 {
			return true // tautology: x ∨ ¬x
		}
		switch s.valueLit(l) {
		case lTrue:
			if s.level[l.v()] == 0 {
				return true // already satisfied at top level
			}
		case lFalse:
			if s.level[l.v()] == 0 {
				continue // drop top-level-false literal
			}
		}
		out = append(out, l)
	}
	// Note: AddClause must only be called at decision level 0.
	if len(s.trailLim) != 0 {
		panic("sat: AddClause called during search")
	}
	switch len(out) {
	case 0:
		s.okay = false
		s.addedClauses++
		return false
	case 1:
		s.originalClauses++
		s.addedClauses++
		if !s.enqueue(out[0], -1) {
			s.okay = false
			return false
		}
		if s.propagate() != -1 {
			s.okay = false
			return false
		}
		return true
	}
	s.originalClauses++
	s.addedClauses++
	s.attach(out, false, 0)
	return true
}

// AddFormulaHard adds all hard clauses of f.
func (s *Solver) AddFormulaHard(f *cnf.Formula) bool {
	s.EnsureVars(f.NumVars())
	for _, c := range f.Clauses() {
		if c.Hard() {
			if !s.AddClause(c.Lits...) {
				return false
			}
		}
	}
	return s.okay
}

// litsOf returns the literal window of a clause. The slice aliases the
// arena with capacity clamped to the window, so the in-place swaps in
// propagate write through; it is only valid until the next attach.
func (s *Solver) litsOf(c *clause) []lit {
	return s.arena[c.off : c.off+c.n : c.off+c.n]
}

// attach copies lits into the arena, appends a clause header, and
// installs the two watches.
func (s *Solver) attach(lits []lit, learnt bool, lbd int) int {
	off := int32(len(s.arena))
	s.arena = append(s.arena, lits...)
	cref := len(s.clauses)
	s.clauses = append(s.clauses, clause{off: off, n: int32(len(lits)), learnt: learnt, lbd: int32(lbd)})
	s.watches[lits[0].neg()] = append(s.watches[lits[0].neg()], watcher{cref, lits[1]})
	s.watches[lits[1].neg()] = append(s.watches[lits[1].neg()], watcher{cref, lits[0]})
	if learnt {
		s.learntCount++
	}
	return cref
}

func (s *Solver) valueVar(v int) lbool { return s.assigns[v] }

func (s *Solver) valueLit(l lit) lbool {
	a := s.assigns[l.v()]
	if a == lUndef {
		return lUndef
	}
	if l.sign() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) enqueue(l lit, from int32) bool {
	switch s.valueLit(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.v()
	s.assigns[v] = boolToL(!l.sign())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation; it returns the index of a conflicting
// clause, or -1.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Blocker fast path.
			if s.valueLit(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := &s.clauses[w.cref]
			if c.removed {
				continue // lazily drop watchers of removed clauses
			}
			lits := s.litsOf(c)
			// Ensure the falsified literal is lits[1].
			if lits[0] == p.neg() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.valueLit(first) == lTrue {
				kept = append(kept, watcher{w.cref, first})
				continue
			}
			// Look for a new watch.
			found := false
			for k := 2; k < len(lits); k++ {
				if s.valueLit(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].neg()] = append(s.watches[lits[1].neg()], watcher{w.cref, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{w.cref, first})
			if s.valueLit(first) == lFalse {
				// Conflict: restore remaining watchers and bail.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return w.cref
			}
			if !s.enqueue(first, int32(w.cref)) {
				panic("sat: enqueue of unit literal failed")
			}
		}
		s.watches[p] = kept
	}
	return -1
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := int(s.trailLim[level])
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.v()
		s.phase[v] = !l.sign()
		s.assigns[v] = lUndef
		s.reason[v] = -1
		if !s.heap.inHeap(v) {
			s.heap.insert(v, s.activity)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heap.inHeap(v) {
		s.heap.decrease(v, s.activity)
	}
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for i := range s.clauses {
			if s.clauses[i].learnt {
				s.clauses[i].activity *= 1e-20
			}
		}
		s.claInc *= 1e-20
	}
}

// analyze performs first-UIP conflict analysis; it returns the learnt
// clause (out[0] is the asserting literal) and the backtrack level.
func (s *Solver) analyze(confl int) ([]lit, int) {
	learnt := s.analyzeTS[:0]
	learnt = append(learnt, litUndef) // placeholder for asserting literal
	counter := 0
	p := litUndef
	idx := len(s.trail) - 1
	var toClear []lit

	for {
		c := &s.clauses[confl]
		if c.learnt {
			s.bumpClause(c)
		}
		start := 0
		if p != litUndef {
			start = 1
		}
		for _, q := range s.litsOf(c)[start:] {
			v := q.v()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			toClear = append(toClear, q)
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].v()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = int(s.reason[p.v()])
		s.seen[p.v()] = false
		counter--
		if counter == 0 {
			break
		}
		if confl < 0 {
			panic("sat: analyze ran out of reasons")
		}
	}
	learnt[0] = p.neg()

	// Clause minimization: drop literals implied by the rest.
	j := 1
	for i := 1; i < len(learnt); i++ {
		if !s.redundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	// Compute backtrack level: second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].v()] > s.level[learnt[maxI].v()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].v()])
	}
	for _, q := range toClear {
		s.seen[q.v()] = false
	}
	s.analyzeTS = learnt[:0]
	out := make([]lit, len(learnt))
	copy(out, learnt)
	return out, btLevel
}

// redundant reports whether literal l of a learnt clause is implied by the
// other marked literals (simple non-recursive self-subsumption check).
func (s *Solver) redundant(l lit) bool {
	r := s.reason[l.v()]
	if r < 0 {
		return false
	}
	for _, q := range s.litsOf(&s.clauses[r]) {
		if q == l.neg() {
			continue
		}
		v := q.v()
		if s.level[v] != 0 && !s.seen[v] {
			return false
		}
	}
	return true
}

// lbd computes the literal-block distance of a clause using a stamp
// array (no per-call allocation).
func (s *Solver) lbd(lits []lit) int {
	s.lbdStamp++
	n := 0
	for _, l := range lits {
		lv := s.level[l.v()]
		if int(lv) >= len(s.lbdSeen) {
			s.lbdSeen = append(s.lbdSeen, make([]uint64, int(lv)+1-len(s.lbdSeen))...)
		}
		if s.lbdSeen[lv] != s.lbdStamp {
			s.lbdSeen[lv] = s.lbdStamp
			n++
		}
	}
	return n
}

// reduceDB removes roughly half of the learnt clauses, preferring high-LBD
// low-activity clauses; clauses currently used as reasons are kept.
func (s *Solver) reduceDB() {
	type cand struct {
		cref int
		act  float64
		lbd  int
	}
	var cands []cand
	locked := make(map[int]bool)
	for _, l := range s.trail {
		if r := s.reason[l.v()]; r >= 0 {
			locked[int(r)] = true
		}
	}
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt && !c.removed && c.n > 2 && !locked[i] {
			cands = append(cands, cand{i, c.activity, int(c.lbd)})
		}
	}
	// Selection: remove the worse half by (lbd desc, activity asc).
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lbd != cands[j].lbd {
			return cands[i].lbd > cands[j].lbd
		}
		return cands[i].act < cands[j].act
	})
	for i := 0; i < len(cands)/2; i++ {
		s.clauses[cands[i].cref].removed = true
		s.learntCount--
	}
}

// luby returns the i-th element (0-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
func luby(i int64) int64 {
	size, seq := int64(1), 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) >> 1
		seq--
		i %= size
	}
	return 1 << seq
}

// Solve searches for a model under the given assumptions. On Sat, Model
// returns the assignment; on Unsat, Core returns a subset of the
// assumptions that is jointly unsatisfiable with the clauses.
func (s *Solver) Solve(assumptions ...cnf.Lit) Status {
	s.Stats.Solves++
	if !s.okay {
		s.conflictSet = nil
		return Unsat
	}
	if s.stop.Load() {
		s.conflictSet = nil
		return Unknown
	}
	s.assumptions = s.assumptions[:0]
	for _, a := range assumptions {
		s.EnsureVars(a.Var())
		s.assumptions = append(s.assumptions, fromCNF(a))
	}
	s.conflictSet = nil
	s.model = nil
	s.lubyIndex = 0
	// Scale the learnt-clause cap to instance size: max(8000, clauses/3),
	// MiniSat style. Only ever raised, so reduceDB's geometric growth
	// across earlier Solve calls is preserved.
	if m := float64(s.originalClauses) / 3; m > s.maxLearnts {
		s.maxLearnts = m
	}
	defer s.cancelUntil(0)

	conflictsAtStart := s.Stats.Conflicts
	for {
		restartBudget := luby(s.lubyIndex) * 100
		s.lubyIndex++
		st := s.search(restartBudget)
		if st != Unknown {
			return st
		}
		if s.stop.Load() {
			return Unknown
		}
		s.Stats.Restarts++
		if s.budgetConflicts > 0 && s.Stats.Conflicts-conflictsAtStart >= s.budgetConflicts {
			return Unknown
		}
	}
}

// search runs CDCL until a result, a restart (after nConflicts), or a
// budget stop.
func (s *Solver) search(nConflicts int64) Status {
	var conflicts int64
	for {
		// One atomic load per propagate/decision round: negligible next
		// to propagation, and bounds the latency of Interrupt to a
		// single propagation pass.
		if s.stop.Load() {
			s.cancelUntil(s.assumptionLevel())
			return Unknown
		}
		confl := s.propagate()
		if confl >= 0 {
			s.Stats.Conflicts++
			conflicts++
			if s.progressFn != nil && s.Stats.Conflicts >= s.progressNext {
				s.progressNext = s.Stats.Conflicts + s.progressEvery
				s.progressFn(s.ProgressSnapshot())
			}
			if s.decisionLevel() == 0 {
				s.okay = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], -1) {
					s.okay = false
					return Unsat
				}
			} else {
				cref := s.attach(learnt, true, s.lbd(learnt))
				s.bumpClause(&s.clauses[cref])
				s.Stats.Learnt++
				if !s.enqueue(learnt[0], int32(cref)) {
					panic("sat: asserting literal rejected")
				}
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if float64(s.learntCount) > s.maxLearnts {
				s.reduceDB()
				s.maxLearnts *= 1.3
			}
			continue
		}
		if conflicts >= nConflicts {
			s.cancelUntil(s.assumptionLevel())
			return Unknown
		}
		// Choose the next decision: assumptions first.
		next := litUndef
		for s.decisionLevel() < len(s.assumptions) {
			a := s.assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case lTrue:
				// Already satisfied: open a dummy level to keep the
				// level/assumption correspondence.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				continue
			case lFalse:
				s.analyzeFinal(a.neg())
				return Unsat
			}
			next = a
			break
		}
		if next == litUndef {
			next = s.pickBranch()
			if next == litUndef {
				// All variables assigned: model found.
				s.saveModel()
				return Sat
			}
			s.Stats.Decisions++
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		if !s.enqueue(next, -1) {
			panic("sat: decision literal already assigned")
		}
	}
}

func (s *Solver) assumptionLevel() int {
	if len(s.assumptions) < s.decisionLevel() {
		return len(s.assumptions)
	}
	return s.decisionLevel()
}

func (s *Solver) pickBranch() lit {
	for {
		v, ok := s.heap.removeMin(s.activity)
		if !ok {
			return litUndef
		}
		if s.assigns[v] == lUndef {
			return mkLit(v, !s.phase[v])
		}
	}
}

func (s *Solver) saveModel() {
	s.model = make([]bool, len(s.assigns)+1)
	for v, a := range s.assigns {
		s.model[v+1] = a == lTrue
	}
}

// analyzeFinal computes the subset of assumptions responsible for the
// falsification of assumption literal p (given ¬p is implied).
func (s *Solver) analyzeFinal(notP lit) {
	s.conflictSet = s.conflictSet[:0]
	s.conflictSet = append(s.conflictSet, notP.neg())
	if s.decisionLevel() == 0 {
		return
	}
	seen := s.seen
	seen[notP.v()] = true
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].v()
		if !seen[v] {
			continue
		}
		if s.reason[v] < 0 {
			// A decision, i.e. an assumption.
			if s.trail[i] != notP.neg() {
				s.conflictSet = append(s.conflictSet, s.trail[i])
			}
		} else {
			for _, q := range s.litsOf(&s.clauses[s.reason[v]]) {
				if int(s.level[q.v()]) > 0 {
					seen[q.v()] = true
				}
			}
		}
		seen[v] = false
	}
	seen[notP.v()] = false
}

// Model returns the satisfying assignment of the last Sat result,
// indexed by 1-based variable (index 0 unused).
func (s *Solver) Model() []bool { return s.model }

// Core returns the failed assumptions of the last Unsat result: a subset
// of the assumptions that cannot all hold. Empty means the clause set is
// unsatisfiable regardless of assumptions.
func (s *Solver) Core() []cnf.Lit {
	out := make([]cnf.Lit, len(s.conflictSet))
	for i, l := range s.conflictSet {
		out[i] = l.toCNF()
	}
	return out
}

// EnumerateModels visits every satisfying assignment, projected onto the
// first nVars variables: after each model, its projection is blocked and
// the search continues. The solver's clause set is permanently extended
// by the blocking clauses. Enumeration stops when the visitor returns
// false or after limit models (0 = unlimited); the model count is
// returned. Intended for validation on small instances (e.g. checking
// the one-to-one repair correspondence of Proposition V.1), not for
// production counting.
func (s *Solver) EnumerateModels(nVars int, limit int64, visit func(model []bool) bool) int64 {
	s.EnsureVars(nVars)
	var count int64
	for {
		if s.Solve() != Sat {
			return count
		}
		count++
		model := s.Model()
		if visit != nil && !visit(model) {
			return count
		}
		if limit > 0 && count >= limit {
			return count
		}
		blocking := make([]cnf.Lit, nVars)
		for v := 1; v <= nVars; v++ {
			if model[v] {
				blocking[v-1] = cnf.Lit(-v)
			} else {
				blocking[v-1] = cnf.Lit(v)
			}
		}
		if !s.AddClause(blocking...) {
			return count
		}
	}
}
