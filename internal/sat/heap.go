package sat

// varHeap is an indexed binary max-heap over variables ordered by
// activity; it supports decrease-key (activity only grows, which moves
// variables toward the root).
type varHeap struct {
	heap []int // heap of variables
	pos  []int // pos[v] = index of v in heap, or -1
}

func (h *varHeap) ensure(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
}

func (h *varHeap) inHeap(v int) bool {
	return v < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) insert(v int, act []float64) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.siftUp(h.pos[v], act)
}

// decrease moves v toward the root after its activity increased.
func (h *varHeap) decrease(v int, act []float64) {
	h.siftUp(h.pos[v], act)
}

func (h *varHeap) removeMin(act []float64) (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[top] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.siftDown(0, act)
	}
	return top, true
}

func (h *varHeap) siftUp(i int, act []float64) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		pv := h.heap[parent]
		if act[pv] >= act[v] {
			break
		}
		h.heap[i] = pv
		h.pos[pv] = i
		i = parent
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) siftDown(i int, act []float64) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && act[h.heap[right]] > act[h.heap[left]] {
			best = right
		}
		bv := h.heap[best]
		if act[v] >= act[bv] {
			break
		}
		h.heap[i] = bv
		h.pos[bv] = i
		i = best
	}
	h.heap[i] = v
	h.pos[v] = i
}
