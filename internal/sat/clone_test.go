package sat

import (
	"fmt"
	"testing"
	"testing/quick"

	"aggcavsat/internal/cnf"
)

// randomClauses builds a small random 3-SAT-ish formula from a seed,
// mirroring the generator of TestRandomAgainstBruteForce.
func randomClauses(seed uint64) (nVars int, clauses [][]cnf.Lit) {
	rng := seed | 1
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	nVars = 3 + next(6) // 3..8
	nCls := 2 + next(25)
	clauses = make([][]cnf.Lit, nCls)
	for i := range clauses {
		k := 1 + next(3)
		c := make([]cnf.Lit, k)
		for j := range c {
			v := 1 + next(nVars)
			if next(2) == 0 {
				c[j] = cnf.Lit(v)
			} else {
				c[j] = cnf.Lit(-v)
			}
		}
		clauses[i] = c
	}
	return nVars, clauses
}

// TestCloneAnswersMatchFresh is the Clone soundness property test: a
// clone of a loaded solver must answer exactly like a freshly built
// solver over the same clauses, for plain solving, for assumption
// queries, and after both sides add the same extra clauses.
func TestCloneAnswersMatchFresh(t *testing.T) {
	fn := func(seed uint64) bool {
		nVars, clauses := randomClauses(seed)
		build := func() *Solver {
			s := New()
			s.EnsureVars(nVars)
			for _, c := range clauses {
				s.AddClause(c...)
			}
			return s
		}
		base := build()
		clone := base.Clone()
		fresh := build()
		if clone.Solve() != fresh.Solve() {
			return false
		}
		// Assumption queries must agree literal by literal.
		for v := 1; v <= nVars; v++ {
			for _, a := range []cnf.Lit{cnf.Lit(v), cnf.Lit(-v)} {
				if clone.Solve(a) != fresh.Solve(a) {
					return false
				}
			}
		}
		// Clone again from the (untouched) base after the first clone
		// has solved: the base must be unaffected by the clone's work.
		clone2 := base.Clone()
		if clone2.AddedSinceClone() != 0 {
			return false
		}
		extra := cnf.Lit(1 + int(seed%uint64(nVars)))
		fresh2 := build()
		before := fresh2.AddedSinceClone()
		okC := clone2.AddClause(extra)
		okF := fresh2.AddClause(extra)
		if okC != okF || clone2.Solve() != fresh2.Solve() {
			return false
		}
		// The clone's counter restarts at zero, so it must equal the
		// fresh solver's delta for the same AddClause (zero when the
		// clause was dropped as already satisfied).
		return clone2.AddedSinceClone() == fresh2.AddedSinceClone()-before
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCloneCarriesLearntClauses solves on a clone, then checks that the
// learnt clauses it accumulated survive adoption: a clone of the worked
// solver answers identically to a fresh one on follow-up queries.
func TestCloneCarriesLearntClauses(t *testing.T) {
	s := New()
	addPigeonhole(s, 6) // 7 pigeons, 6 holes: hard enough to learn
	worked := s.Clone()
	if st := worked.Solve(); st != Unsat {
		t.Fatalf("pigeonhole status = %v, want UNSAT", st)
	}
	if worked.AddedSinceClone() != 0 {
		t.Fatalf("solving alone must not count as adding clauses, got %d", worked.AddedSinceClone())
	}
	if worked.Stats.Learnt == 0 {
		t.Fatal("expected learnt clauses from the pigeonhole instance")
	}
	// A clone of the worked solver keeps the learnt clauses and still
	// reports UNSAT straight away.
	again := worked.Clone()
	if st := again.Solve(); st != Unsat {
		t.Fatalf("clone of worked solver: status = %v, want UNSAT", st)
	}
	// The original base is untouched and still solves from scratch.
	if st := s.Clone().Solve(); st != Unsat {
		t.Fatal("original base corrupted by clone activity")
	}
}

// TestCloneIndependence checks that structural mutations on a clone
// (new vars, new clauses, solving, enumeration) never leak into the
// solver it was cloned from.
func TestCloneIndependence(t *testing.T) {
	base := New()
	base.AddClause(1, 2)
	base.AddClause(-1, 3)
	c := base.Clone()
	c.AddClause(cnf.Lit(c.NewVar()))
	c.AddClause(-2)
	c.AddClause(-3)
	if st := c.Solve(); st != Unsat {
		t.Fatalf("constrained clone = %v, want UNSAT", st)
	}
	if !base.Okay() {
		t.Fatal("clone's top-level conflict leaked into the base")
	}
	if base.NumVars() != 3 {
		t.Fatalf("base vars = %d, want 3", base.NumVars())
	}
	if st := base.Solve(); st != Sat {
		t.Fatalf("base = %v, want SAT", st)
	}
}

// TestClonePanicsDuringSearch pins the level-0 contract.
func TestClonePanicsDuringSearch(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	// Fake an open decision level the way search would.
	s.trailLim = append(s.trailLim, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Clone during search did not panic")
		}
	}()
	s.Clone()
}

// TestCloneInterruptedFlagFresh: clones of an interrupted solver start
// uninterrupted (each clone owns a fresh stop flag).
func TestCloneInterruptedFlagFresh(t *testing.T) {
	s := New()
	s.AddClause(1)
	s.Interrupt()
	c := s.Clone()
	if c.Interrupted() {
		t.Fatal("clone inherited the interrupt flag")
	}
	if st := c.Solve(); st != Sat {
		t.Fatalf("clone of interrupted solver = %v, want SAT", st)
	}
}

// addPigeonhole loads the n+1-pigeons-into-n-holes instance.
func addPigeonhole(s *Solver, n int) {
	varOf := func(p, h int) cnf.Lit { return cnf.Lit(p*n + h + 1) }
	for p := 0; p <= n; p++ {
		row := make([]cnf.Lit, n)
		for h := 0; h < n; h++ {
			row[h] = varOf(p, h)
		}
		s.AddClause(row...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(-varOf(p1, h), -varOf(p2, h))
			}
		}
	}
}

// TestMaxLearntsScalesWithClauses pins the satellite: the learnt cap
// floors at 8000 and grows to clauses/3 for large instances.
func TestMaxLearntsScalesWithClauses(t *testing.T) {
	small := New()
	small.AddClause(1, 2)
	small.Solve()
	if small.maxLearnts != 8000 {
		t.Fatalf("small instance maxLearnts = %v, want 8000", small.maxLearnts)
	}
	big := New()
	big.EnsureVars(200)
	n := 0
	for i := 1; i <= 198 && n < 30000; i++ {
		for j := i + 1; j <= 199 && n < 30000; j++ {
			big.AddClause(cnf.Lit(i), cnf.Lit(j), cnf.Lit(200))
			n++
		}
	}
	big.Solve()
	if want := float64(n) / 3; big.maxLearnts < want {
		t.Fatalf("big instance maxLearnts = %v, want >= %v", big.maxLearnts, want)
	}
}

// BenchmarkCloneVsRebuild measures the tentpole's core claim: cloning a
// loaded solver is much cheaper than re-adding every clause.
func BenchmarkCloneVsRebuild(b *testing.B) {
	for _, holes := range []int{8, 12} {
		base := New()
		addPigeonhole(base, holes)
		var clauses [][]cnf.Lit
		n := holes + 1
		varOf := func(p, h int) cnf.Lit { return cnf.Lit(p*holes + h + 1) }
		for p := 0; p < n; p++ {
			row := make([]cnf.Lit, holes)
			for h := 0; h < holes; h++ {
				row[h] = varOf(p, h)
			}
			clauses = append(clauses, row)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < n; p1++ {
				for p2 := p1 + 1; p2 < n; p2++ {
					clauses = append(clauses, []cnf.Lit{-varOf(p1, h), -varOf(p2, h)})
				}
			}
		}
		b.Run(fmt.Sprintf("clone/holes=%d", holes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if c := base.Clone(); !c.Okay() {
					b.Fatal("clone not okay")
				}
			}
		})
		b.Run(fmt.Sprintf("rebuild/holes=%d", holes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New()
				for _, c := range clauses {
					s.AddClause(c...)
				}
				if !s.Okay() {
					b.Fatal("rebuild not okay")
				}
			}
		})
	}
}
