package sat

import "testing"

func TestProgressCallbackFires(t *testing.T) {
	s := New()
	pigeonhole(s, 7, 6) // UNSAT with plenty of conflicts
	var reports []Progress
	s.SetProgress(1, func(p Progress) { reports = append(reports, p) })
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(7,6) = %v, want UNSAT", st)
	}
	if len(reports) == 0 {
		t.Fatal("no progress reports with every=1")
	}
	prev := int64(0)
	for i, p := range reports {
		if p.Conflicts < prev {
			t.Fatalf("report %d: conflicts %d < previous %d", i, p.Conflicts, prev)
		}
		prev = p.Conflicts
		if p.TrailDepth < 0 || p.TrailDepth > p.Vars {
			t.Fatalf("report %d: trail depth %d out of [0, %d]", i, p.TrailDepth, p.Vars)
		}
		if p.Vars != 42 { // 7 pigeons × 6 holes
			t.Fatalf("report %d: vars = %d, want 42", i, p.Vars)
		}
	}
	if got := reports[len(reports)-1].Conflicts; got > s.Stats.Conflicts {
		t.Fatalf("last report conflicts %d > final %d", got, s.Stats.Conflicts)
	}
}

func TestProgressEveryThrottles(t *testing.T) {
	dense := New()
	pigeonhole(dense, 7, 6)
	nDense := 0
	dense.SetProgress(1, func(Progress) { nDense++ })
	dense.Solve()

	sparse := New()
	pigeonhole(sparse, 7, 6)
	nSparse := 0
	sparse.SetProgress(50, func(Progress) { nSparse++ })
	sparse.Solve()

	if nSparse >= nDense {
		t.Fatalf("every=50 fired %d times, every=1 fired %d — no throttling", nSparse, nDense)
	}
}

func TestProgressDisabled(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	s.SetProgress(1, func(Progress) { t.Fatal("report after disable") })
	s.SetProgress(0, nil)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(6,5) = %v, want UNSAT", st)
	}
}
