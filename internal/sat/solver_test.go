package sat

import (
	"fmt"
	"testing"
	"testing/quick"

	"aggcavsat/internal/cnf"
)

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestLitConversion(t *testing.T) {
	for _, l := range []cnf.Lit{1, -1, 42, -42} {
		if fromCNF(l).toCNF() != l {
			t.Errorf("round trip of %d failed", l)
		}
	}
	if mkLit(0, false).neg() != mkLit(0, true) {
		t.Error("neg")
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	s.AddClause(1)
	if st := s.Solve(); st != Sat {
		t.Fatalf("status = %v", st)
	}
	if !s.Model()[1] {
		t.Error("x1 should be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	s.AddClause(1)
	ok := s.AddClause(-1)
	if ok {
		t.Error("AddClause should detect top-level conflict")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status = %v", st)
	}
}

func TestEmptyFormula(t *testing.T) {
	s := New()
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty formula should be SAT, got %v", st)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	s.AddClause(1, -1)
	s.AddClause(2)
	if st := s.Solve(); st != Sat {
		t.Fatal("tautology broke solving")
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := New()
	s.AddClause(1, 1, 1)
	if st := s.Solve(); st != Sat || !s.Model()[1] {
		t.Fatal("duplicate literals mishandled")
	}
}

func TestThreeChain(t *testing.T) {
	// x1, x1->x2, x2->x3, check all forced true.
	s := New()
	s.AddClause(1)
	s.AddClause(-1, 2)
	s.AddClause(-2, 3)
	if st := s.Solve(); st != Sat {
		t.Fatal(st)
	}
	m := s.Model()
	if !m[1] || !m[2] || !m[3] {
		t.Errorf("model = %v", m)
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes, always UNSAT.
func pigeonhole(s *Solver, pigeons, holes int) {
	v := func(p, h int) cnf.Lit { return cnf.Lit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		lits := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = v(p, h)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d,%d) = %v, want UNSAT", n+1, n, st)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if st := s.Solve(); st != Sat {
		t.Fatalf("PHP(5,5) = %v, want SAT", st)
	}
	// Verify the model is a valid assignment of pigeons to distinct holes.
	m := s.Model()
	used := make(map[int]bool)
	for p := 0; p < 5; p++ {
		hole := -1
		for h := 0; h < 5; h++ {
			if m[p*5+h+1] {
				hole = h
			}
		}
		if hole == -1 {
			t.Fatalf("pigeon %d unplaced", p)
		}
		if used[hole] {
			t.Fatalf("hole %d reused", hole)
		}
		used[hole] = true
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	s.AddClause(-1, 2) // x1 -> x2
	s.AddClause(-2, 3) // x2 -> x3

	if st := s.Solve(1, -3); st != Unsat {
		t.Fatalf("assuming x1 and ¬x3 should be UNSAT, got %v", st)
	}
	core := s.Core()
	if len(core) == 0 || len(core) > 2 {
		t.Fatalf("core = %v", core)
	}
	coreSet := map[cnf.Lit]bool{}
	for _, l := range core {
		coreSet[l] = true
	}
	for l := range coreSet {
		if l != 1 && l != -3 {
			t.Fatalf("core contains non-assumption %v", l)
		}
	}

	// Incrementality: the same solver answers SAT for compatible assumptions.
	if st := s.Solve(1, 3); st != Sat {
		t.Fatalf("assuming x1 and x3 should be SAT, got %v", st)
	}
	if m := s.Model(); !m[1] || !m[2] || !m[3] {
		t.Errorf("model = %v", m)
	}
	// And with no assumptions at all.
	if st := s.Solve(); st != Sat {
		t.Fatal("no-assumption solve after assumption solve failed")
	}
}

func TestAssumptionConflictingPair(t *testing.T) {
	s := New()
	s.AddClause(1, 2) // keep the solver non-trivial
	if st := s.Solve(3, -3); st != Unsat {
		t.Fatalf("x3 and ¬x3 assumed: %v", st)
	}
}

func TestCoreMinimalEnough(t *testing.T) {
	// x1..x4 assumed; only x1,x2 conflict via clause (¬x1 ∨ ¬x2).
	s := New()
	s.AddClause(-1, -2)
	if st := s.Solve(1, 2, 3, 4); st != Unsat {
		t.Fatal("expected UNSAT")
	}
	core := s.Core()
	for _, l := range core {
		if l != 1 && l != 2 {
			t.Fatalf("core %v mentions irrelevant assumption", core)
		}
	}
	if len(core) != 2 {
		t.Fatalf("core %v should have both x1 and x2", core)
	}
}

func TestAddFormulaHard(t *testing.T) {
	f := cnf.New(3)
	f.AddHard(1, 2)
	f.AddSoft(5, 3) // ignored by AddFormulaHard
	f.AddHard(-1)
	s := New()
	if !s.AddFormulaHard(f) {
		t.Fatal("formula should be consistent")
	}
	if st := s.Solve(); st != Sat {
		t.Fatal(st)
	}
	if m := s.Model(); !m[2] {
		t.Error("x2 forced by hard clauses")
	}
}

func TestConflictBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8)
	s.SetConflictBudget(5)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("budgeted solve = %v, want Unknown", st)
	}
	s.SetConflictBudget(0)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("unbudgeted solve = %v, want Unsat", st)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New()
	pigeonhole(s, 4, 3)
	s.Solve()
	if s.Stats.Solves != 1 || s.Stats.Conflicts == 0 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

// bruteForceSat exhaustively checks satisfiability of a clause set over n
// variables.
func bruteForceSat(n int, clauses [][]cnf.Lit) bool {
	for m := 0; m < 1<<n; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				v := l.Var()
				val := m&(1<<(v-1)) != 0
				if val == l.Positive() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandomAgainstBruteForce cross-checks the solver on random small
// 3-CNF formulas.
func TestRandomAgainstBruteForce(t *testing.T) {
	fn := func(seed uint64) bool {
		rng := seed | 1
		next := func(n int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(n))
		}
		nVars := 3 + next(6) // 3..8
		nCls := 2 + next(25) // 2..26
		clauses := make([][]cnf.Lit, nCls)
		for i := range clauses {
			k := 1 + next(3)
			c := make([]cnf.Lit, k)
			for j := range c {
				v := 1 + next(nVars)
				if next(2) == 0 {
					c[j] = cnf.Lit(v)
				} else {
					c[j] = cnf.Lit(-v)
				}
			}
			clauses[i] = c
		}
		s := New()
		s.EnsureVars(nVars)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		got := s.Solve()
		want := bruteForceSat(nVars, clauses)
		if (got == Sat) != want {
			return false
		}
		if got == Sat {
			// The model must satisfy every clause.
			m := s.Model()
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if m[l.Var()] == l.Positive() {
						sat = true
						break
					}
				}
				if !sat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRandomAssumptionsAgainstBruteForce checks assumption solving and
// core soundness on random formulas.
func TestRandomAssumptionsAgainstBruteForce(t *testing.T) {
	fn := func(seed uint64) bool {
		rng := seed | 1
		next := func(n int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(n))
		}
		nVars := 4 + next(4)
		nCls := 3 + next(18)
		clauses := make([][]cnf.Lit, nCls)
		for i := range clauses {
			k := 1 + next(3)
			c := make([]cnf.Lit, k)
			for j := range c {
				v := 1 + next(nVars)
				if next(2) == 0 {
					c[j] = cnf.Lit(v)
				} else {
					c[j] = cnf.Lit(-v)
				}
			}
			clauses[i] = c
		}
		nAssume := 1 + next(3)
		seen := map[int]bool{}
		var assume []cnf.Lit
		for len(assume) < nAssume {
			v := 1 + next(nVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			if next(2) == 0 {
				assume = append(assume, cnf.Lit(v))
			} else {
				assume = append(assume, cnf.Lit(-v))
			}
		}
		s := New()
		s.EnsureVars(nVars)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		got := s.Solve(assume...)
		// Brute force with assumptions added as unit clauses.
		all := append([][]cnf.Lit{}, clauses...)
		for _, a := range assume {
			all = append(all, []cnf.Lit{a})
		}
		want := bruteForceSat(nVars, all)
		if (got == Sat) != want {
			return false
		}
		if got == Unsat {
			// Core soundness: clauses + core assumptions must be UNSAT,
			// and every core literal must be an assumption.
			core := s.Core()
			assumeSet := map[cnf.Lit]bool{}
			for _, a := range assume {
				assumeSet[a] = true
			}
			withCore := append([][]cnf.Lit{}, clauses...)
			for _, l := range core {
				if !assumeSet[l] {
					return false
				}
				withCore = append(withCore, []cnf.Lit{l})
			}
			if bruteForceSat(nVars, withCore) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalGrowth(t *testing.T) {
	// Add clauses between solves; results must track the growing formula.
	s := New()
	s.AddClause(1, 2)
	if s.Solve() != Sat {
		t.Fatal("phase 1")
	}
	s.AddClause(-1)
	if s.Solve() != Sat {
		t.Fatal("phase 2")
	}
	if !s.Model()[2] {
		t.Error("x2 must hold after x1 excluded")
	}
	s.AddClause(-2)
	if s.Solve() != Unsat {
		t.Fatal("phase 3 should be UNSAT")
	}
}

func TestManySolves(t *testing.T) {
	// Exercise clause-DB reduction and restarts across many solves.
	s := New()
	n := 40
	for i := 1; i < n; i++ {
		s.AddClause(cnf.Lit(-i), cnf.Lit(i+1))
	}
	for i := 0; i < 50; i++ {
		st := s.Solve(cnf.Lit(1))
		if st != Sat {
			t.Fatalf("solve %d: %v", i, st)
		}
		if !s.Model()[n] {
			t.Fatal("chain propagation broken")
		}
	}
}

func TestAddClauseDuringSearchPanics(t *testing.T) {
	// AddClause at a non-zero decision level is a programming error.
	// (We cannot easily trigger it from outside; assert the guard exists
	// by checking normal use does not panic.)
	s := New()
	s.AddClause(1)
	s.Solve()
	s.AddClause(2) // after Solve, level is 0 again: fine
	if s.Solve() != Sat {
		t.Fatal("post-solve AddClause failed")
	}
}

func TestHeapOrdering(t *testing.T) {
	var h varHeap
	act := []float64{1, 5, 3, 4, 2}
	for v := range act {
		h.insert(v, act)
	}
	var got []int
	for {
		v, ok := h.removeMin(act)
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []int{1, 3, 2, 4, 0} // by descending activity
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("heap order = %v, want %v", got, want)
	}
}

func TestHeapDecrease(t *testing.T) {
	var h varHeap
	act := []float64{1, 2, 3}
	for v := range act {
		h.insert(v, act)
	}
	act[0] = 10
	h.decrease(0, act)
	v, _ := h.removeMin(act)
	if v != 0 {
		t.Errorf("after bump, top = %d, want 0", v)
	}
	if h.inHeap(0) {
		t.Error("removed var still in heap")
	}
	h.insert(0, act)
	if !h.inHeap(0) {
		t.Error("re-insert failed")
	}
}
