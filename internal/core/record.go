package core

import (
	"context"
	"sync/atomic"
	"time"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/planner"
)

// recorder funnels the instrumentation of one engine call into obsv
// registries: a call-local registry (from which the call's Stats view is
// built) and, when Options.Metrics is set, a session-wide registry that
// accumulates across calls. Durations land in *_ns counters (exact
// per-call diffs) and in phase-duration histograms.
type recorder struct {
	regs [2]*obsv.Registry
	n    int

	// flight, when non-nil (Options.OnAnomaly set), receives structured
	// events from the phase instrumentation; all Record calls are
	// nil-safe, so the disabled path costs one nil check.
	flight *obsv.FlightRecorder

	// exp, when non-nil (Options.Explain set), collects the per-component
	// breakdown for the call's Explain report; its methods and those of
	// the ComponentExplain entries it hands out are nil-safe.
	exp *explainCollector

	// constraintHit records whether this call's constraint context came
	// from a cache (engine-level reuse or the package-wide DC memo).
	constraintHit atomic.Bool

	// Route verdict of the call, stamped exactly once by rangeAnswers
	// (single writer: the goroutine running the call; read after it
	// returns). routeReason explains a SAT route; planCached reports a
	// plan-cache hit in the planner.
	route        planner.Route
	routeReason  string
	planCached   bool
	routeStamped bool
}

// routed stamps the final route on the recorder and bumps the
// per-route counter — exactly once per engine call, after any fallback
// has settled, so the route counters sum to the calls served.
func (rc *recorder) routed(r planner.Route, reason string, planCached bool) {
	rc.route, rc.routeReason, rc.planCached = r, reason, planCached
	rc.routeStamped = true
	if r == planner.RouteRewrite {
		rc.counter(obsv.MetricRouteRewrite, 1)
	} else {
		rc.counter(obsv.MetricRouteSAT, 1)
	}
}

// newRecorder creates the call-local registry and links the session one.
// The route gauges (front end, solver path) are stamped up front: they
// describe the engine configuration, not something measured.
func (e *Engine) newRecorder() (*recorder, *obsv.Registry) {
	local := obsv.NewRegistry()
	rc := &recorder{}
	rc.regs[0] = local
	rc.n = 1
	if e.opts.Metrics != nil {
		rc.regs[1] = e.opts.Metrics
		rc.n = 2
	}
	if e.opts.OnAnomaly != nil {
		rc.flight = obsv.NewFlightRecorder(e.opts.FlightEvents)
	}
	if e.opts.Explain {
		rc.exp = &explainCollector{}
	}
	rc.gaugeSet(obsv.MetricFrontendMode, b2i(!e.opts.DisableFrontendOpt))
	rc.gaugeSet(obsv.MetricIncrementalMode, b2i(e.incremental()))
	// "Cached" until the constraint build proves otherwise (see
	// constraintCtx).
	rc.constraintHit.Store(true)
	rc.gaugeSet(obsv.MetricConsCacheHit, 1)
	return rc, local
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (rc *recorder) counter(name string, n int64) {
	for i := 0; i < rc.n; i++ {
		rc.regs[i].Counter(name).Add(n)
	}
}

func (rc *recorder) gaugeSet(name string, v int64) {
	for i := 0; i < rc.n; i++ {
		rc.regs[i].Gauge(name).Set(v)
	}
}

func (rc *recorder) gaugeMax(name string, v int64) {
	for i := 0; i < rc.n; i++ {
		rc.regs[i].Gauge(name).SetMax(v)
	}
}

func (rc *recorder) observe(name string, d time.Duration) {
	for i := 0; i < rc.n; i++ {
		rc.regs[i].Histogram(name, nil).Observe(d.Seconds())
	}
}

// observeCall feeds one whole-call latency into the session registry:
// the query-duration summary (the p50/p90/p99 source of the /metrics
// exposition and the replay percentile tables) plus the labeled
// request-correlation families keyed by tenant/route/outcome.
// Call-local registries skip it: a single observation has no quantiles
// worth keeping.
func (e *Engine) observeCall(ctx context.Context, rc *recorder, anomaly string, d time.Duration) {
	if e.opts.Metrics == nil {
		return
	}
	e.opts.Metrics.Summary(obsv.MetricQuerySeconds, 0, nil).Observe(d.Seconds())
	tenant := obsv.TenantFrom(ctx)
	if tenant == "" {
		tenant = "none"
	}
	route := "none"
	if rc != nil && rc.routeStamped {
		route = rc.route.String()
	}
	// "slow" is an anomaly for the flight recorder but a success for the
	// SLO plane: the call answered.
	outcome := anomaly
	if outcome == "" || outcome == "slow" {
		outcome = "ok"
	}
	e.opts.Metrics.LabeledCounter(obsv.MetricEngineCalls, obsv.RequestLabels, 0).
		With(tenant, route, outcome).Inc()
	e.opts.Metrics.LabeledHistogram(obsv.MetricEngineCallSeconds, obsv.RequestLabels, nil, 0).
		With(tenant, route, outcome).Observe(d.Seconds())
}

// phaseMark brackets one phase measurement: the wall clock and the
// resource baseline taken when the phase started.
type phaseMark struct {
	start time.Time
	res   obsv.ResourceSample
}

// startPhase samples the clock and the runtime resource counters at a
// phase boundary. The sample is three uint64 reads via runtime/metrics —
// cheap enough to stay always-on next to encode/solve work.
func startPhase() phaseMark {
	return phaseMark{start: time.Now(), res: obsv.SampleResources()}
}

// endPhase records the resource delta of one finished phase (alloc
// counter per phase, live-heap gauge, GC-cycle counter), emits the
// flight-recorder event, and returns the phase's wall time for the
// duration metrics.
func (rc *recorder) endPhase(phase string, pm phaseMark) time.Duration {
	d := time.Since(pm.start)
	delta := obsv.SampleResources().Since(pm.res)
	rc.counter(obsv.MetricPhaseAllocPrefix+phase, delta.AllocBytes)
	rc.gaugeSet(obsv.MetricHeapBytes, delta.HeapBytes)
	rc.counter(obsv.MetricGCCycles, delta.GCCycles)
	rc.flight.Record("phase", phase,
		obsv.Int64("ns", int64(d)),
		obsv.Int64("alloc_bytes", delta.AllocBytes),
		obsv.Int64("heap_bytes", delta.HeapBytes))
	return d
}

func (rc *recorder) endWitness(pm phaseMark) {
	d := rc.endPhase("witness", pm)
	rc.counter(obsv.MetricWitnessNS, int64(d))
	rc.observe(obsv.MetricPhaseSecondsPrefix+"witness", d)
}

// constraint records the (cached) constraint-context build time. It is a
// gauge, not a counter: the grouped path re-records the same cached
// build time once per group and the value must stay idempotent.
func (rc *recorder) constraint(d time.Duration) {
	rc.gaugeSet(obsv.MetricConstraintNS, int64(d))
}

func (rc *recorder) endEncode(pm phaseMark) time.Duration {
	d := rc.endPhase("encode", pm)
	rc.counter(obsv.MetricEncodeNS, int64(d))
	rc.observe(obsv.MetricPhaseSecondsPrefix+"encode", d)
	return d
}

func (rc *recorder) endSolve(pm phaseMark) time.Duration {
	d := rc.endPhase("solve", pm)
	rc.counter(obsv.MetricSolveNS, int64(d))
	rc.observe(obsv.MetricPhaseSecondsPrefix+"solve", d)
	return d
}

func (rc *recorder) endRewrite(pm phaseMark) time.Duration {
	d := rc.endPhase("rewrite", pm)
	rc.counter(obsv.MetricRewriteNS, int64(d))
	rc.observe(obsv.MetricPhaseSecondsPrefix+"rewrite", d)
	return d
}

// baseHit counts one Engine.bases outcome: a component's hard-clause
// encoding and solver base served from the memo (hit) or built (miss).
func (rc *recorder) baseHit(hit bool) {
	if hit {
		rc.counter(obsv.MetricBaseHits, 1)
	} else {
		rc.counter(obsv.MetricBaseMisses, 1)
	}
}

func (rc *recorder) satCalls(n int64) { rc.counter(obsv.MetricSATCalls, n) }
func (rc *recorder) maxsatRun()       { rc.counter(obsv.MetricMaxSATRuns, 1) }
func (rc *recorder) skip()            { rc.counter(obsv.MetricConsistentSkips, 1) }
func (rc *recorder) witnesses(n int)  { rc.counter(obsv.MetricWitnesses, int64(n)) }
func (rc *recorder) groups(n int)     { rc.counter(obsv.MetricGroups, int64(n)) }

func (rc *recorder) absorbFormula(f *cnf.Formula) {
	st := f.Stats()
	rc.counter(obsv.MetricCNFVars, int64(st.Vars))
	rc.counter(obsv.MetricCNFClauses, int64(st.Clauses))
	rc.gaugeMax(obsv.MetricCNFVarsMax, int64(st.Vars))
	rc.gaugeMax(obsv.MetricCNFClausesMax, int64(st.Clauses))
	rc.flight.Record("cnf", "formula",
		obsv.Int64("vars", int64(st.Vars)),
		obsv.Int64("clauses", int64(st.Clauses)))
}

// endEncodeSpan stamps a "core.encode" span with the formula size and
// ends it (nil-safe).
func endEncodeSpan(sp *obsv.Span, f *cnf.Formula) {
	if sp == nil {
		return
	}
	st := f.Stats()
	sp.SetInt("vars", int64(st.Vars))
	sp.SetInt("clauses", int64(st.Clauses))
	sp.End()
}

// StatsFromSnapshot builds the typed Stats view from an obsv metrics
// snapshot. Stats is a projection: every field is defined as the value
// of one metric from the vocabulary in internal/obsv.
func StatsFromSnapshot(s obsv.Snapshot) Stats {
	return Stats{
		WitnessTime:         time.Duration(s.Counters[obsv.MetricWitnessNS]),
		ConstraintTime:      time.Duration(s.Gauges[obsv.MetricConstraintNS]),
		EncodeTime:          time.Duration(s.Counters[obsv.MetricEncodeNS]),
		SolveTime:           time.Duration(s.Counters[obsv.MetricSolveNS]),
		RewriteTime:         time.Duration(s.Counters[obsv.MetricRewriteNS]),
		SATCalls:            s.Counters[obsv.MetricSATCalls],
		MaxSATRuns:          int(s.Counters[obsv.MetricMaxSATRuns]),
		Vars:                int(s.Counters[obsv.MetricCNFVars]),
		Clauses:             int(s.Counters[obsv.MetricCNFClauses]),
		MaxVars:             int(s.Gauges[obsv.MetricCNFVarsMax]),
		MaxClauses:          int(s.Gauges[obsv.MetricCNFClausesMax]),
		ConsistentPartSkips: int(s.Counters[obsv.MetricConsistentSkips]),
		WitnessAllocBytes:   s.Counters[obsv.MetricPhaseAllocPrefix+"witness"],
		EncodeAllocBytes:    s.Counters[obsv.MetricPhaseAllocPrefix+"encode"],
		SolveAllocBytes:     s.Counters[obsv.MetricPhaseAllocPrefix+"solve"],
		HeapBytes:           s.Gauges[obsv.MetricHeapBytes],
		GCCycles:            s.Counters[obsv.MetricGCCycles],
	}
}

// constraintCtx returns the lazily-built constraint context, wrapping
// the first (real) build in a "core.constraints" span and recording the
// cached build time into the call's metrics. Safe for concurrent use:
// parallel workers race into the sync.Once, exactly one performs the
// build (and the one-time span/histogram record), the rest block until
// it finishes.
func (e *Engine) constraintCtx(ctx context.Context, rc *recorder) *constraintContext {
	built := false
	e.ctxOnce.Do(func() {
		_, sp := obsv.StartSpan(ctx, "core.constraints")
		e.ctx = e.buildContext()
		built = true
		if sp != nil {
			if e.ctx.mode == KeysMode {
				sp.SetStr("mode", "keys")
				sp.SetInt("key_groups", int64(len(e.ctx.groups)))
			} else {
				sp.SetStr("mode", "dc")
				sp.SetInt("violations", int64(len(e.ctx.violations)))
			}
			sp.End()
		}
	})
	cc := e.ctx
	if built {
		rc.observe(obsv.MetricPhaseSecondsPrefix+"constraint", cc.buildTime)
		// The recorder starts from "cached" (engine-level reuse); only
		// the invocation that actually built the context can downgrade
		// the call's verdict to the memo's outcome. Grouped queries call
		// here once per group — later reuse invocations must not
		// overwrite the builder's miss.
		rc.constraintHit.Store(cc.consCacheHit)
		rc.gaugeSet(obsv.MetricConsCacheHit, b2i(cc.consCacheHit))
	}
	rc.constraint(cc.buildTime)
	if cc.mode == DCMode {
		rc.gaugeSet(obsv.MetricVioFastRels, int64(cc.fastRels))
		rc.gaugeSet(obsv.MetricVioGenericDCs, int64(cc.genericDCs))
	}
	return cc
}
