package core

import (
	"aggcavsat/internal/cnf"
	"aggcavsat/internal/db"
)

// encoder owns the hard-clause part of a reduction: a formula whose
// satisfying assignments (restricted to the fact variables) correspond
// one-to-one to the repairs of the closure sub-instance.
type encoder struct {
	formula *cnf.Formula
	varOf   map[db.FactID]cnf.Lit // positive literal of each fact's variable
}

// newEncoder allocates one variable per closure fact and emits the hard
// clauses for the constraint mode:
//
//   - Keys (Reduction IV.1): for every key-equal group, an at-least-one
//     α-clause and pairwise at-most-one α^mn-clauses.
//   - Denial constraints (Reduction V.1): an α-clause ¬(V) for every
//     minimal violation V, and per fact the γ-clause x_i ∨ ⋁_j p_j^i with
//     θ-expressions p_j^i ↔ ⋀_{d ∈ N_j^i} x_d in CNF, enforcing
//     maximality. Self-violating facts are excluded by their unit
//     α-clause, and their γ-clause (with near-violation {f_true}) is a
//     tautology that is omitted.
func newEncoder(ctx *constraintContext, facts []db.FactID) *encoder {
	enc := &encoder{
		formula: cnf.New(0),
		varOf:   make(map[db.FactID]cnf.Lit, len(facts)),
	}
	for _, f := range facts {
		enc.varOf[f] = cnf.Lit(enc.formula.NewVar())
	}
	switch ctx.mode {
	case KeysMode:
		enc.encodeKeys(ctx, facts)
	case DCMode:
		enc.encodeDCs(ctx, facts)
	}
	return enc
}

func (enc *encoder) lit(f db.FactID) cnf.Lit { return enc.varOf[f] }

func (enc *encoder) encodeKeys(ctx *constraintContext, facts []db.FactID) {
	seenGroup := map[int]bool{}
	for _, f := range facts {
		gi := ctx.groupOf[f]
		if seenGroup[gi] {
			continue
		}
		seenGroup[gi] = true
		members := ctx.groups[gi].Facts // closure contains whole groups
		// At-least-one.
		lits := make([]cnf.Lit, len(members))
		for i, m := range members {
			lits[i] = enc.lit(m)
		}
		enc.formula.AddHard(lits...)
		// Pairwise at-most-one.
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				enc.formula.AddHard(enc.lit(members[i]).Neg(), enc.lit(members[j]).Neg())
			}
		}
	}
}

func (enc *encoder) encodeDCs(ctx *constraintContext, facts []db.FactID) {
	inClosure := make(map[db.FactID]bool, len(facts))
	for _, f := range facts {
		inClosure[f] = true
	}
	// α-clauses: one per minimal violation inside the closure. The
	// closure is a union of violation-connected components, so a
	// violation either lies fully inside or fully outside it.
	for _, v := range ctx.violations {
		if !inClosure[v[0]] {
			continue
		}
		lits := make([]cnf.Lit, len(v))
		for i, f := range v {
			lits[i] = enc.lit(f).Neg()
		}
		enc.formula.AddHard(lits...)
	}
	// γ- and θ-clauses: maximality. For fact i with near-violations
	// N_1..N_k: x_i ∨ p_1 ∨ … ∨ p_k, and p_j ↔ ⋀_{d∈N_j} x_d.
	for _, f := range facts {
		if ctx.nearIdx.SelfViolating[f] {
			continue // near-violation {f_true}: γ is a tautology
		}
		nears := ctx.nearIdx.ByFact[f]
		if len(nears) == 0 {
			// Safe fact: present in every repair.
			enc.formula.AddHard(enc.lit(f))
			continue
		}
		gamma := make([]cnf.Lit, 0, len(nears)+1)
		gamma = append(gamma, enc.lit(f))
		for _, near := range nears {
			var p cnf.Lit
			if len(near) == 1 {
				// p ↔ x_d for a single fact: use x_d directly.
				p = enc.lit(near[0])
			} else {
				p = cnf.Lit(enc.formula.NewVar())
				// p → x_d for every d; (⋀ x_d) → p.
				back := make([]cnf.Lit, 0, len(near)+1)
				back = append(back, p)
				for _, d := range near {
					enc.formula.AddHard(p.Neg(), enc.lit(d))
					back = append(back, enc.lit(d).Neg())
				}
				enc.formula.AddHard(back...)
			}
			gamma = append(gamma, p)
		}
		enc.formula.AddHard(gamma...)
	}
}

// brokenLit returns a literal that is true iff the witness is broken
// (some fact absent), adding defining clauses when needed. Singleton
// witnesses reuse the fact variable (Example IV.3's optimization).
func (enc *encoder) brokenLit(facts []db.FactID) cnf.Lit {
	if len(facts) == 1 {
		return enc.lit(facts[0]).Neg()
	}
	z := cnf.Lit(enc.formula.NewVar())
	// z → ⋁ ¬x ; ¬z → x_f for every f (i.e. z ∨ x_f).
	zClause := make([]cnf.Lit, 0, len(facts)+1)
	zClause = append(zClause, z.Neg())
	for _, f := range facts {
		zClause = append(zClause, enc.lit(f).Neg())
		enc.formula.AddHard(z, enc.lit(f))
	}
	enc.formula.AddHard(zClause...)
	return z
}

// presentLit returns a literal true iff the witness is fully present
// (the y_j variable of Reduction IV.1 step 2b).
func (enc *encoder) presentLit(facts []db.FactID) cnf.Lit {
	return enc.brokenLit(facts).Neg()
}
