package core

import (
	"fmt"
	"testing"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/maxsat"
)

// TestIncrementalMatchesLegacy is the PR's identity property test: the
// incremental shared-base path and the legacy one-solver-per-run path
// must return byte-identical answers on random inconsistent instances,
// for every operator, scalar and grouped, all three built-in MaxSAT
// algorithms, and both a sequential and a parallel worker pool.
func TestIncrementalMatchesLegacy(t *testing.T) {
	ops := []cq.AggOp{cq.CountStar, cq.Count, cq.Sum, cq.CountDistinct, cq.SumDistinct, cq.Min, cq.Max}
	algs := []maxsat.Algorithm{maxsat.AlgMaxHS, maxsat.AlgRC2, maxsat.AlgLSU}
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for seed := 1; seed <= trials; seed++ {
		r := rng(seed*15485863 + 9)
		in := randomInstance(&r)
		for _, alg := range algs {
			for _, par := range []int{1, 4} {
				inc, err := New(in, Options{Mode: KeysMode, Parallelism: par,
					MaxSAT: maxsat.Options{Algorithm: alg}})
				if err != nil {
					t.Fatal(err)
				}
				leg, err := New(in, Options{Mode: KeysMode, Parallelism: par,
					MaxSAT: maxsat.Options{Algorithm: alg}, DisableIncremental: true})
				if err != nil {
					t.Fatal(err)
				}
				for _, op := range ops {
					for _, grouped := range []bool{false, true} {
						q := joinQuery(op, grouped)
						label := fmt.Sprintf("seed %d alg %v par %d op %v grouped %v", seed, alg, par, op, grouped)
						a, err := inc.RangeAnswers(q)
						if err != nil {
							t.Fatalf("%s: incremental: %v", label, err)
						}
						b, err := leg.RangeAnswers(q)
						if err != nil {
							t.Fatalf("%s: legacy: %v", label, err)
						}
						if len(a.Answers) != len(b.Answers) {
							t.Fatalf("%s: %d vs %d answers", label, len(a.Answers), len(b.Answers))
						}
						for i := range a.Answers {
							ga, gb := a.Answers[i], b.Answers[i]
							if ga.Key.Compare(gb.Key) != 0 ||
								!valuesMatch(ga.GLB, gb.GLB) || !valuesMatch(ga.LUB, gb.LUB) ||
								ga.EmptyPossible != gb.EmptyPossible {
								t.Fatalf("%s: answer %d incremental %+v vs legacy %+v", label, i, ga, gb)
							}
						}
					}
				}
			}
		}
	}
}

// TestIncrementalConsistentAnswersMatch covers the Algorithm-2 path: the
// candidate consistency checks fork from a cached hard base when
// incremental, and must accept exactly the same answers either way.
func TestIncrementalConsistentAnswersMatch(t *testing.T) {
	u := cq.Single(cq.CQ{
		Head: []string{"g"},
		Atoms: []cq.Atom{
			{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}},
			{Rel: "S", Args: []cq.Term{cq.V("k"), cq.V("w")}},
		},
	})
	for seed := 1; seed <= 20; seed++ {
		r := rng(seed*32452843 + 13)
		in := randomInstance(&r)
		for _, par := range []int{1, 4} {
			inc, _ := New(in, Options{Mode: KeysMode, Parallelism: par})
			leg, _ := New(in, Options{Mode: KeysMode, Parallelism: par, DisableIncremental: true})
			a, _, err := inc.ConsistentAnswers(u)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := leg.ConsistentAnswers(u)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("seed %d par %d: %d vs %d consistent answers", seed, par, len(a), len(b))
			}
			for i := range a {
				if a[i].Compare(b[i]) != 0 {
					t.Fatalf("seed %d par %d: answer %d %v vs %v", seed, par, i, a[i], b[i])
				}
			}
		}
	}
}

// TestComponentBaseCached pins the memoization: two calls for the same
// component return the same HardBase, and the returned encoder's formula
// is a private snapshot (appending to it does not grow the cache).
func TestComponentBaseCached(t *testing.T) {
	r := rng(42)
	in := randomInstance(&r)
	e, _ := New(in, Options{Mode: KeysMode})
	cc := e.context()
	var facts []db.FactID
	for f := 0; f < in.NumFacts(); f++ {
		facts = append(facts, db.FactID(f))
	}
	comp := cc.closure(map[db.FactID]bool{facts[0]: true})
	enc1, base1, hit1 := e.componentBase(cc, comp)
	enc2, base2, hit2 := e.componentBase(cc, comp)
	if base1 != base2 {
		t.Fatal("componentBase rebuilt the HardBase for an identical component")
	}
	if hit1 || !hit2 {
		t.Fatalf("componentBase hit flags = %v, %v; want miss then hit", hit1, hit2)
	}
	n := enc2.formula.NumClauses()
	enc1.formula.AddSoft(1, enc1.lit(comp[0]))
	enc1.formula.AddHard(enc1.lit(comp[0]), enc1.lit(comp[0]).Neg())
	if got := enc2.formula.NumClauses(); got != n {
		t.Fatalf("snapshot leaked: sibling encoder grew from %d to %d clauses", n, got)
	}
	if _, base3, _ := e.componentBase(cc, comp); base3.NumClauses() != n {
		t.Fatalf("cache contaminated: base covers %d clauses, want %d", base3.NumClauses(), n)
	}
}

// benchInstance builds an inconsistent instance shaped like the paper's
// benchmark databases: nKeys key-equal groups of 2–3 alternatives each,
// values spread over a handful of grouping attributes so a grouped query
// revisits the same components across groups.
func benchInstance(nKeys int) *db.Instance {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindInt},
			{Name: "g", Kind: db.KindString},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	in := db.NewInstance(s)
	groups := []string{"a", "b", "c", "d"}
	for k := 0; k < nKeys; k++ {
		alts := 2 + k%2
		for a := 0; a < alts; a++ {
			in.MustInsert("R",
				db.Int(int64(k)),
				db.Str(groups[(k+a)%len(groups)]),
				db.Int(int64(1+(k*7+a*13)%23)))
		}
	}
	return in
}

// BenchmarkGroupedSumIncremental measures the end-to-end grouped SUM
// pipeline — Algorithm 2 grouping plus one WPMaxSAT component per
// key-equal group per direction — with the shared-base path on and off.
func BenchmarkGroupedSumIncremental(b *testing.B) {
	in := benchInstance(150)
	q := singleRelQuery(cq.Sum, true)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"incremental", false}, {"legacy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := New(in, Options{Mode: KeysMode, Parallelism: 1, DisableIncremental: mode.disable})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := e.RangeAnswers(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
