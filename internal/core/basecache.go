package core

import (
	"sync"

	"aggcavsat/internal/db"
	"aggcavsat/internal/maxsat"
)

// incremental reports whether the engine runs the shared-base solve
// path: hard clauses loaded into a solver once per component and cloned
// per MaxSAT run, with both optimization directions (and the MaxHS→RC2
// fallback) served from the same base. External solvers cannot share a
// base — each invocation consumes a standalone WCNF file — so they
// always run legacy regardless of the option.
func (e *Engine) incremental() bool {
	return !e.opts.DisableIncremental && e.opts.MaxSAT.Algorithm != maxsat.AlgExternal
}

// baseEntry is one cached component: built at most once under once,
// then shared read-only (the HardBase is only ever cloned, and varOf is
// never written after construction).
type baseEntry struct {
	once sync.Once
	enc  *encoder
	base *maxsat.HardBase
}

// componentKey serializes a component's sorted closure fact list into a
// map key (4 bytes per fact, little-endian — the factSetKey idiom).
// Closure fact sets are canonical: two solve units entangle the same
// facts iff their components coincide, so the key identifies the hard
// formula exactly.
func componentKey(facts []db.FactID) string {
	b := make([]byte, 0, 4*len(facts))
	for _, f := range facts {
		b = append(b, byte(f), byte(f>>8), byte(f>>16), byte(f>>24))
	}
	return string(b)
}

// componentBase returns the hard-clause encoding of one component
// together with its loaded solver base, building both on first use and
// serving every later request — concurrent workers of the same query or
// later queries over the same component — from the cache.
//
// The returned encoder wraps the cached formula in a copy-on-append
// Snapshot: callers append their own soft clauses (and auxiliary hard
// clauses — presentLit/brokenLit definitions) without contaminating the
// cache. varOf is shared and must be treated as read-only, which every
// caller honours (fact variables are only ever looked up after the
// encoder is built).
//
// hit reports the cache outcome: true when the entry was served without
// running the build (false exactly for the one caller whose once body
// constructed it).
func (e *Engine) componentBase(cc *constraintContext, facts []db.FactID) (enc *encoder, base *maxsat.HardBase, hit bool) {
	v, _ := e.bases.LoadOrStore(componentKey(facts), &baseEntry{})
	ent := v.(*baseEntry)
	built := false
	ent.once.Do(func() {
		ent.enc = newEncoder(cc, facts)
		ent.base = maxsat.NewHardBase(ent.enc.formula)
		built = true
	})
	return &encoder{formula: ent.enc.formula.Snapshot(), varOf: ent.enc.varOf}, ent.base, !built
}
