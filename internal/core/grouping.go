package core

import (
	"context"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/obsv"
)

// groupedRange implements Algorithm 2: compute the consistent answers of
// the underlying query q(Z) (the consistent groups), then for each group
// b compute the scalar range of the aggregate restricted to Z = b.
//
// The implementation evaluates the underlying query once with head
// Z ++ [A] and partitions the witness bag by Z: the witnesses of the
// restricted query T(U, Z, A) ∧ Z = b are exactly the bag entries whose
// answer prefix is b, so no per-group re-evaluation is needed.
//
// All groups share the caller's recorder, so the Report's Stats
// aggregate the per-group scalar solves (SAT calls, encode/solve time)
// on top of the shared witness evaluation and consistency filtering.
func (e *Engine) groupedRange(ctx context.Context, q cq.AggQuery, rc *recorder) (*Report, error) {
	rep := &Report{}

	_, wsp := obsv.StartSpan(ctx, "cq.witness")
	pm := startPhase()
	bag, err := e.eval.WitnessBagCtx(ctx, q.Underlying)
	rc.endWitness(pm)
	rc.witnesses(len(bag))
	if wsp != nil {
		wsp.SetInt("witnesses", int64(len(bag)))
		wsp.End()
	}
	if err != nil {
		return nil, stopCause(ctx)
	}

	groups := cq.GroupWitnesses(bag, len(q.GroupBy))
	rc.groups(len(groups))
	consistent, err := e.consistentGroups(ctx, groups, rc)
	if err != nil {
		return nil, err
	}
	// Each consistent group is an independent scalar instance: fan them
	// out across the worker pool. Workers write into index-addressed
	// slots, so the merged answers keep the original group order no
	// matter how the scheduler interleaves them.
	var todo []int
	for i := range groups {
		if consistent[i] {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return rep, nil
	}
	answers := make([]GroupAnswer, len(todo))
	err = forEach(ctx, e.parallelism(), len(todo), func(ctx context.Context, ti int) error {
		g := groups[todo[ti]]
		gctx, gsp := obsv.StartSpan(ctx, "core.group")
		ans, err := e.scalarRange(gctx, q, g.Witnesses, rc)
		if gsp != nil {
			gsp.SetInt("witnesses", int64(len(g.Witnesses)))
			gsp.End()
		}
		if err != nil {
			return err
		}
		answers[ti] = GroupAnswer{Key: g.Key, Range: ans}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.Answers = answers
	return rep, nil
}
