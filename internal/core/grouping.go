package core

import (
	"time"

	"aggcavsat/internal/cq"
)

// groupedRange implements Algorithm 2: compute the consistent answers of
// the underlying query q(Z) (the consistent groups), then for each group
// b compute the scalar range of the aggregate restricted to Z = b.
//
// The implementation evaluates the underlying query once with head
// Z ++ [A] and partitions the witness bag by Z: the witnesses of the
// restricted query T(U, Z, A) ∧ Z = b are exactly the bag entries whose
// answer prefix is b, so no per-group re-evaluation is needed.
func (e *Engine) groupedRange(q cq.AggQuery) (*Report, error) {
	rep := &Report{}
	stats := &rep.Stats

	start := time.Now()
	bag := e.eval.WitnessBag(q.Underlying)
	stats.WitnessTime += time.Since(start)

	groups := cq.GroupWitnesses(bag, len(q.GroupBy))
	consistent, err := e.consistentGroups(groups, stats)
	if err != nil {
		return nil, err
	}
	for i, g := range groups {
		if !consistent[i] {
			continue
		}
		ans, err := e.scalarRange(q, g.Witnesses, stats)
		if err != nil {
			return nil, err
		}
		rep.Answers = append(rep.Answers, GroupAnswer{Key: g.Key, Range: ans})
	}
	return rep, nil
}
