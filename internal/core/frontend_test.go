package core

import (
	"fmt"
	"testing"

	"aggcavsat/internal/constraints"
	"aggcavsat/internal/cq"
)

// TestFrontendOptParity is the PR's end-to-end equivalence guarantee:
// the compiled front end (query plans, hash indexes, key-aware
// constraint fast path, parallel witness enumeration) must produce
// answers AND CNF formulas identical to the legacy interpreted front
// end, across modes, operators, and random inconsistent instances. The
// formula-size comparison (Vars/Clauses/MaxVars/MaxClauses) pins the
// whole reduction pipeline, not just the decoded intervals: identical
// witness bags and constraint structures yield identical encodings.
func TestFrontendOptParity(t *testing.T) {
	ops := []cq.AggOp{cq.CountStar, cq.Sum, cq.CountDistinct, cq.Min, cq.Max}
	for seed := 1; seed <= 25; seed++ {
		r := rng(seed*9176 + 13)
		in := randomInstance(&r)
		dcs, err := constraints.SchemaKeyDCs(in.Schema())
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []ConstraintMode{KeysMode, DCMode} {
			opts := Options{Mode: mode}
			if mode == DCMode {
				opts.DCs = dcs
			}
			legacyOpts := opts
			legacyOpts.DisableFrontendOpt = true
			fast, err := New(in, opts)
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := New(in, legacyOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops {
				for _, grouped := range []bool{false, true} {
					label := fmt.Sprintf("seed %d mode %d op %v grouped %v", seed, mode, op, grouped)
					q := joinQuery(op, grouped)
					a, err := fast.RangeAnswers(q)
					if err != nil {
						t.Fatalf("%s: optimized: %v", label, err)
					}
					b, err := legacy.RangeAnswers(q)
					if err != nil {
						t.Fatalf("%s: legacy: %v", label, err)
					}
					if len(a.Answers) != len(b.Answers) {
						t.Fatalf("%s: %d vs %d answers", label, len(a.Answers), len(b.Answers))
					}
					for i := range a.Answers {
						if a.Answers[i].Key.Compare(b.Answers[i].Key) != 0 ||
							!valuesMatch(a.Answers[i].GLB, b.Answers[i].GLB) ||
							!valuesMatch(a.Answers[i].LUB, b.Answers[i].LUB) ||
							a.Answers[i].EmptyPossible != b.Answers[i].EmptyPossible {
							t.Fatalf("%s: answer %d differs: optimized %+v legacy %+v",
								label, i, a.Answers[i], b.Answers[i])
						}
					}
					if a.Stats.Vars != b.Stats.Vars || a.Stats.Clauses != b.Stats.Clauses ||
						a.Stats.MaxVars != b.Stats.MaxVars || a.Stats.MaxClauses != b.Stats.MaxClauses {
						t.Fatalf("%s: CNF stats differ: optimized vars=%d clauses=%d max=%d/%d, legacy vars=%d clauses=%d max=%d/%d",
							label,
							a.Stats.Vars, a.Stats.Clauses, a.Stats.MaxVars, a.Stats.MaxClauses,
							b.Stats.Vars, b.Stats.Clauses, b.Stats.MaxVars, b.Stats.MaxClauses)
					}
				}
			}
			// CONS(q) must agree too (Algorithm 2's backbone).
			u := cq.Single(cq.CQ{
				Head: []string{"g"},
				Atoms: []cq.Atom{
					{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}},
					{Rel: "S", Args: []cq.Term{cq.V("k"), cq.V("w")}},
				},
			})
			ca, _, err := fast.ConsistentAnswers(u)
			if err != nil {
				t.Fatal(err)
			}
			cb, _, err := legacy.ConsistentAnswers(u)
			if err != nil {
				t.Fatal(err)
			}
			if len(ca) != len(cb) {
				t.Fatalf("seed %d mode %d: CONS %d vs %d answers", seed, mode, len(ca), len(cb))
			}
			for i := range ca {
				if ca[i].Compare(cb[i]) != 0 {
					t.Fatalf("seed %d mode %d: CONS answer %d: %v vs %v", seed, mode, i, ca[i], cb[i])
				}
			}
		}
	}
}
