package core

import (
	"context"
	"errors"
	"fmt"

	"aggcavsat/internal/conquer"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/obsv"
)

// rewriteRange answers the call through the planner's compiled
// rewriting: Plan.Execute over the engine's instance with the planner's
// memoized indexes and the engine worker pool. The whole execution is
// one "rewrite" phase — the rewriting has no witness/encode/solve split
// to attribute — and lands in Stats.RewriteTime.
//
// Two classes of errors come back: conquer.ErrNotInClass marks a
// data-dependent rejection (negative or non-integer SUM values, a
// scalar MIN/MAX whose result can be empty) that the caller may turn
// into a SAT fallback; anything else is a genuine failure (typically a
// dead context) mapped to the engine's typed sentinels.
func (e *Engine) rewriteRange(ctx context.Context, q cq.AggQuery, plan *conquer.Plan, rc *recorder) (*Report, error) {
	ctx, sp := obsv.StartSpan(ctx, "core.rewrite", obsv.String("op", q.Op.String()))
	pm := startPhase()
	ans, err := plan.Execute(ctx, e.in, e.planner.Indexes(), e.parallelism())
	rc.endRewrite(pm)
	if sp != nil {
		sp.SetInt("answers", int64(len(ans)))
		sp.End()
	}
	if err != nil {
		if errors.Is(err, conquer.ErrNotInClass) {
			return nil, err
		}
		return nil, mapSolveErr(err)
	}
	// Scalar MIN/MAX over a possibly-empty result: the rewriting leaves
	// the adversarial endpoint NULL where the solver pins it to the
	// extremum over non-empty repairs, so the answers would diverge —
	// reject and let the caller fall back.
	if q.Scalar() && (q.Op == cq.Min || q.Op == cq.Max) {
		for _, a := range ans {
			if a.EmptyPossible {
				return nil, fmt.Errorf("%w: %s with a possibly-empty result needs the solver", conquer.ErrNotInClass, q.Op)
			}
		}
	}
	rep := &Report{Answers: make([]GroupAnswer, len(ans))}
	for i, a := range ans {
		key := a.Key
		if key == nil {
			key = db.Tuple{}
		}
		rep.Answers[i] = GroupAnswer{Key: key, Range: Range{
			GLB:                a.GLB,
			LUB:                a.LUB,
			EmptyPossible:      a.EmptyPossible,
			FromConsistentPart: a.FromConsistentPart,
		}}
	}
	return rep, nil
}
