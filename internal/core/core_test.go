package core

import (
	"testing"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

// bank builds the paper's Table I instance (fact IDs 0..13 = f1..f14).
func bank() *db.Instance {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "Cust",
		Attrs: []db.Attribute{
			{Name: "CID", Kind: db.KindString},
			{Name: "NAME", Kind: db.KindString},
			{Name: "CITY", Kind: db.KindString},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "Acc",
		Attrs: []db.Attribute{
			{Name: "ACCID", Kind: db.KindString},
			{Name: "TYPE", Kind: db.KindString},
			{Name: "CITY", Kind: db.KindString},
			{Name: "BAL", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "CustAcc",
		Attrs: []db.Attribute{
			{Name: "CID", Kind: db.KindString},
			{Name: "ACCID", Kind: db.KindString},
		},
		Key: []int{0, 1},
	})
	in := db.NewInstance(s)
	in.MustInsert("Cust", db.Str("C1"), db.Str("John"), db.Str("LA"))
	in.MustInsert("Cust", db.Str("C2"), db.Str("Mary"), db.Str("LA"))
	in.MustInsert("Cust", db.Str("C2"), db.Str("Mary"), db.Str("SF"))
	in.MustInsert("Cust", db.Str("C3"), db.Str("Don"), db.Str("SF"))
	in.MustInsert("Cust", db.Str("C4"), db.Str("Jen"), db.Str("LA"))
	in.MustInsert("Acc", db.Str("A1"), db.Str("Check."), db.Str("LA"), db.Int(900))
	in.MustInsert("Acc", db.Str("A2"), db.Str("Check."), db.Str("LA"), db.Int(1000))
	in.MustInsert("Acc", db.Str("A3"), db.Str("Saving"), db.Str("SJ"), db.Int(1200))
	in.MustInsert("Acc", db.Str("A3"), db.Str("Saving"), db.Str("SF"), db.Int(-100))
	in.MustInsert("Acc", db.Str("A4"), db.Str("Saving"), db.Str("SJ"), db.Int(300))
	in.MustInsert("CustAcc", db.Str("C1"), db.Str("A1"))
	in.MustInsert("CustAcc", db.Str("C2"), db.Str("A2"))
	in.MustInsert("CustAcc", db.Str("C2"), db.Str("A3"))
	in.MustInsert("CustAcc", db.Str("C3"), db.Str("A4"))
	return in
}

func mustEngine(t *testing.T, in *db.Instance) *Engine {
	t.Helper()
	e, err := New(in, Options{Mode: KeysMode})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// paperSumQuery: SELECT SUM(Acc.BAL) for customer C2 (Section I).
func paperSumQuery() cq.AggQuery {
	return cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "bal",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{
				{Rel: "CustAcc", Args: []cq.Term{cq.C(db.Str("C2")), cq.V("accid")}},
				{Rel: "Acc", Args: []cq.Term{cq.V("accid"), cq.V("t"), cq.V("c"), cq.V("bal")}},
			},
		}),
	}
}

func TestPaperRunningExampleSum(t *testing.T) {
	// Section I: range consistent answer is [900, 2200].
	e := mustEngine(t, bank())
	rep, err := e.RangeAnswers(paperSumQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Answers) != 1 {
		t.Fatalf("answers = %+v", rep.Answers)
	}
	a := rep.Answers[0]
	if a.GLB.AsInt() != 900 || a.LUB.AsInt() != 2200 {
		t.Fatalf("range = [%v, %v], want [900, 2200]", a.GLB, a.LUB)
	}
	if rep.Stats.MaxSATRuns != 2 {
		t.Errorf("MaxSATRuns = %d, want 2 (glb + lub)", rep.Stats.MaxSATRuns)
	}
}

func TestPaperExampleIV1CountStar(t *testing.T) {
	// COUNT(*) of customers with an account in their own city: [1, 2].
	e := mustEngine(t, bank())
	q := cq.AggQuery{
		Op: cq.CountStar,
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{
				{Rel: "Cust", Args: []cq.Term{cq.V("cid"), cq.V("n"), cq.V("city")}},
				{Rel: "CustAcc", Args: []cq.Term{cq.V("cid"), cq.V("accid")}},
				{Rel: "Acc", Args: []cq.Term{cq.V("accid"), cq.V("t"), cq.V("city"), cq.V("b")}},
			},
		}),
	}
	rep, err := e.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Answers[0]
	if a.GLB.AsInt() != 1 || a.LUB.AsInt() != 2 {
		t.Fatalf("range = [%v, %v], want [1, 2]", a.GLB, a.LUB)
	}
}

func TestPaperExampleIV2SumMary(t *testing.T) {
	// SUM(Acc.BAL) over Mary's accounts: [900, 2200] (same interval as
	// the running example — Mary is C2).
	e := mustEngine(t, bank())
	q := cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "bal",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{
				{Rel: "Cust", Args: []cq.Term{cq.V("cid"), cq.C(db.Str("Mary")), cq.V("city")}},
				{Rel: "CustAcc", Args: []cq.Term{cq.V("cid"), cq.V("accid")}},
				{Rel: "Acc", Args: []cq.Term{cq.V("accid"), cq.V("t"), cq.V("ac"), cq.V("bal")}},
			},
		}),
	}
	rep, err := e.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Answers[0]
	if a.GLB.AsInt() != 900 || a.LUB.AsInt() != 2200 {
		t.Fatalf("range = [%v, %v], want [900, 2200]", a.GLB, a.LUB)
	}
}

func TestPaperExampleIV3CountDistinct(t *testing.T) {
	// COUNT(DISTINCT Acc.TYPE): [2, 2].
	e := mustEngine(t, bank())
	q := cq.AggQuery{
		Op:     cq.CountDistinct,
		AggVar: "type",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "Acc", Args: []cq.Term{cq.V("id"), cq.V("type"), cq.V("c"), cq.V("b")}}},
		}),
	}
	rep, err := e.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Answers[0]
	if a.GLB.AsInt() != 2 || a.LUB.AsInt() != 2 {
		t.Fatalf("range = [%v, %v], want [2, 2]", a.GLB, a.LUB)
	}
}

func TestPaperGroupedCountByCity(t *testing.T) {
	// Section IV-C: COUNT(*) FROM Cust GROUP BY CITY:
	// LA → [2,3], SF → [1,2].
	e := mustEngine(t, bank())
	q := cq.AggQuery{
		Op:      cq.CountStar,
		GroupBy: []string{"city"},
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "Cust", Args: []cq.Term{cq.V("cid"), cq.V("n"), cq.V("city")}}},
		}),
	}
	rep, err := e.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Answers) != 2 {
		t.Fatalf("answers = %+v", rep.Answers)
	}
	la, sf := rep.Answers[0], rep.Answers[1]
	if la.Key[0].AsString() != "LA" || la.GLB.AsInt() != 2 || la.LUB.AsInt() != 3 {
		t.Errorf("LA = %+v", la)
	}
	if sf.Key[0].AsString() != "SF" || sf.GLB.AsInt() != 1 || sf.LUB.AsInt() != 2 {
		t.Errorf("SF = %+v", sf)
	}
}

func TestConsistentAnswersUnderlying(t *testing.T) {
	// CONS of q(name) :- Cust(cid, name, city): John, Mary, Don, Jen are
	// all consistent (Mary's two tuples agree on the name).
	e := mustEngine(t, bank())
	u := cq.Single(cq.CQ{
		Head:  []string{"name"},
		Atoms: []cq.Atom{{Rel: "Cust", Args: []cq.Term{cq.V("cid"), cq.V("name"), cq.V("city")}}},
	})
	ans, _, err := e.ConsistentAnswers(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 4 {
		t.Fatalf("consistent names = %v", ans)
	}
	// CONS of q(city) :- Cust(...): LA and SF are consistent (both
	// repairs contain LA and SF customers); every answer certain.
	u = cq.Single(cq.CQ{
		Head:  []string{"city"},
		Atoms: []cq.Atom{{Rel: "Cust", Args: []cq.Term{cq.V("cid"), cq.V("name"), cq.V("city")}}},
	})
	ans, _, err = e.ConsistentAnswers(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("consistent cities = %v", ans)
	}
}

func TestConsistentAnswersDropsUncertain(t *testing.T) {
	// q(city) :- Acc(accid, t, city, b): cities SJ and SF conflict for
	// A3; LA is certain. The repair {f8} (A3→SJ) has cities {LA, SJ};
	// the repair {f9} has {LA, SF}. Only LA is consistent.
	e := mustEngine(t, bank())
	u := cq.Single(cq.CQ{
		Head:  []string{"city"},
		Atoms: []cq.Atom{{Rel: "Acc", Args: []cq.Term{cq.V("accid"), cq.V("t"), cq.V("city"), cq.V("b")}}},
	})
	ans, stats, err := e.ConsistentAnswers(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 { // LA (certain) and SJ (certain via A4=f10!)
		t.Fatalf("consistent cities = %v", ans)
	}
	if stats.SATCalls == 0 {
		t.Error("expected at least one SAT call for the uncertain city")
	}
}

func TestScalarMinMax(t *testing.T) {
	e := mustEngine(t, bank())
	q := paperSumQuery()
	q.Op = cq.Max
	rep, err := e.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Answers[0]
	if a.GLB.AsInt() != 1000 || a.LUB.AsInt() != 1200 {
		t.Fatalf("MAX range = [%v, %v], want [1000, 1200]", a.GLB, a.LUB)
	}
	q.Op = cq.Min
	rep, err = e.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	a = rep.Answers[0]
	if a.GLB.AsInt() != -100 || a.LUB.AsInt() != 1000 {
		t.Fatalf("MIN range = [%v, %v], want [-100, 1000]", a.GLB, a.LUB)
	}
	if a.EmptyPossible {
		t.Error("C2 always owns accounts; empty result impossible")
	}
}

func TestMinMaxEmptyPossible(t *testing.T) {
	// A query whose only witnesses use one side of a key conflict: the
	// other choice empties the result.
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindString},
			{Name: "city", Kind: db.KindString},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	in := db.NewInstance(s)
	in.MustInsert("R", db.Str("k1"), db.Str("LA"), db.Int(5))
	in.MustInsert("R", db.Str("k1"), db.Str("SF"), db.Int(9))
	e := mustEngine(t, in)
	q := cq.AggQuery{
		Op:     cq.Max,
		AggVar: "v",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "R", Args: []cq.Term{cq.V("k"), cq.C(db.Str("LA")), cq.V("v")}}},
		}),
	}
	rep, err := e.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Answers[0]
	if !a.EmptyPossible {
		t.Fatal("choosing the SF tuple empties the result")
	}
	// Endpoints range over the non-empty repairs: only the LA repair.
	if a.GLB.AsInt() != 5 || a.LUB.AsInt() != 5 {
		t.Errorf("range = [%v, %v], want [5, 5]", a.GLB, a.LUB)
	}
}

func TestConsistentPartShortcut(t *testing.T) {
	// A query touching only consistent facts must skip SAT entirely.
	e := mustEngine(t, bank())
	q := cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "bal",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "Acc", Args: []cq.Term{cq.C(db.Str("A1")), cq.V("t"), cq.V("c"), cq.V("bal")}}},
		}),
	}
	rep, err := e.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Answers[0]
	if a.GLB.AsInt() != 900 || a.LUB.AsInt() != 900 {
		t.Fatalf("range = [%v, %v], want [900, 900]", a.GLB, a.LUB)
	}
	if !a.FromConsistentPart {
		t.Error("expected consistent-part shortcut")
	}
	if rep.Stats.SATCalls != 0 || rep.Stats.MaxSATRuns != 0 {
		t.Errorf("shortcut still ran SAT: %+v", rep.Stats)
	}
}

func TestEmptyQueryResult(t *testing.T) {
	e := mustEngine(t, bank())
	q := cq.AggQuery{
		Op: cq.CountStar,
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "Cust", Args: []cq.Term{cq.V("cid"), cq.C(db.Str("Nobody")), cq.V("c")}}},
		}),
	}
	rep, err := e.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Answers[0]
	if a.GLB.AsInt() != 0 || a.LUB.AsInt() != 0 {
		t.Fatalf("empty COUNT range = [%v, %v], want [0, 0]", a.GLB, a.LUB)
	}
}

func TestUnsupportedAvg(t *testing.T) {
	e := mustEngine(t, bank())
	q := paperSumQuery()
	q.Op = cq.Avg
	if _, err := e.RangeAnswers(q); err == nil {
		t.Error("AVG should be rejected")
	}
}

func TestSumOverFloatRejected(t *testing.T) {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "F",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindString},
			{Name: "x", Kind: db.KindFloat},
		},
		Key: []int{0},
	})
	in := db.NewInstance(s)
	in.MustInsert("F", db.Str("a"), db.Float(1.5))
	in.MustInsert("F", db.Str("a"), db.Float(2.5))
	e := mustEngine(t, in)
	q := cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "x",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "F", Args: []cq.Term{cq.V("k"), cq.V("x")}}},
		}),
	}
	if _, err := e.RangeAnswers(q); err == nil {
		t.Error("SUM over float should be rejected with a scaling hint")
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	e := mustEngine(t, bank())
	q := cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "x",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "Nope", Args: []cq.Term{cq.V("x")}}},
		}),
	}
	if _, err := e.RangeAnswers(q); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestDCModeRequiresConstraints(t *testing.T) {
	if _, err := New(bank(), Options{Mode: DCMode}); err == nil {
		t.Error("DCMode without DCs accepted")
	}
}

func TestStatsPopulated(t *testing.T) {
	e := mustEngine(t, bank())
	rep, err := e.RangeAnswers(paperSumQuery())
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st.Vars == 0 || st.Clauses == 0 {
		t.Errorf("CNF stats empty: %+v", st)
	}
	if st.SATCalls == 0 {
		t.Error("no SAT calls recorded")
	}
	if st.MaxVars == 0 || st.MaxVars > st.Vars {
		t.Errorf("MaxVars = %d, Vars = %d", st.MaxVars, st.Vars)
	}
}
