package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"aggcavsat/internal/cq"
)

// TestExplainReconcilesWithStats is the `-explain` vs `-stats` contract:
// both views of a solve are projections of the one call-local metric
// snapshot, so the explain report's Stats must equal the Report's Stats
// field for field.
func TestExplainReconcilesWithStats(t *testing.T) {
	e, err := New(bank(), Options{Mode: KeysMode, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.RangeAnswers(paperSumQuery())
	if err != nil {
		t.Fatal(err)
	}
	ex := rep.Explain
	if ex == nil {
		t.Fatal("Explain missing despite Options.Explain")
	}
	if !reflect.DeepEqual(ex.Stats, rep.Stats) {
		t.Errorf("explain stats diverge from report stats:\nexplain: %+v\nreport:  %+v", ex.Stats, rep.Stats)
	}
	if ex.Op != "SUM" || ex.Mode != "keys" || ex.Frontend == "" || ex.Algorithm == "" {
		t.Errorf("explain identity = op %q mode %q frontend %q alg %q", ex.Op, ex.Mode, ex.Frontend, ex.Algorithm)
	}
	if len(ex.Components) == 0 {
		t.Fatal("no component breakdown recorded")
	}
	if int(ex.BaseHits+ex.BaseMisses) != len(ex.Components) {
		t.Errorf("base hits %d + misses %d != %d components (incremental path)",
			ex.BaseHits, ex.BaseMisses, len(ex.Components))
	}
	// The paper's SUM solve runs two WPMaxSAT directions (glb and lub):
	// they must show up as solver passes somewhere in the breakdown.
	dirs := map[string]bool{}
	var satCalls int64
	for _, ce := range ex.Components {
		for _, d := range ce.Directions {
			dirs[d.Direction] = true
			satCalls += d.SATCalls
		}
	}
	if !dirs["glb"] || !dirs["lub"] {
		t.Errorf("directions seen = %v, want glb and lub", dirs)
	}
	if satCalls == 0 || satCalls > rep.Stats.SATCalls {
		t.Errorf("component sat calls = %d, report total = %d", satCalls, rep.Stats.SATCalls)
	}
}

// TestExplainPerCall checks that explain reports do not leak across
// calls: each solve gets its own snapshot, and a grouped query breaks
// into at least as many solve units as answer groups.
func TestExplainPerCall(t *testing.T) {
	e, err := New(bank(), Options{Mode: KeysMode, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.AggQuery{
		Op:      cq.CountStar,
		GroupBy: []string{"city"},
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "Cust", Args: []cq.Term{cq.V("cid"), cq.V("n"), cq.V("city")}}},
		}),
	}
	rep1, err := e.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := e.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Explain == rep2.Explain {
		t.Fatal("explain report shared between calls")
	}
	if !reflect.DeepEqual(rep2.Explain.Stats, rep2.Stats) {
		t.Error("second call's explain stats diverge from its report stats")
	}
	units := 0
	for _, ce := range rep2.Explain.Components {
		units += ce.Witnesses
	}
	if units < len(rep2.Answers) {
		t.Errorf("component units = %d < %d answer groups", units, len(rep2.Answers))
	}
}

func TestExplainNilWhenDisabled(t *testing.T) {
	e := mustEngine(t, bank())
	rep, err := e.RangeAnswers(paperSumQuery())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explain != nil {
		t.Error("Explain present without Options.Explain")
	}
}

func TestExplainWriteTableAndJSON(t *testing.T) {
	e, err := New(bank(), Options{Mode: KeysMode, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.RangeAnswers(paperSumQuery())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Explain.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"mode", "keys", "base cache", "phase", "witness", "solve", "component", "glb", "lub"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	b, err := json.Marshal(rep.Explain)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"mode":"keys"`, `"components"`, `"stats"`, `"base_hits"`, `"frontend"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON missing %s:\n%s", key, b)
		}
	}
}
