package core

import (
	"context"
	"time"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/maxsat"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/sat"
)

// ConsistentAnswers computes CONS(q) for a union of conjunctive queries:
// the answers present in q(J) for every repair J. This is the CAvSAT
// (SAT 2019) reduction the paper builds Algorithm 2 on: an answer b is
// consistent iff the hard repair clauses together with "every witness of
// b is broken" are unsatisfiable.
func (e *Engine) ConsistentAnswers(u cq.UCQ) ([]db.Tuple, Stats, error) {
	return e.ConsistentAnswersContext(context.Background(), u)
}

// ConsistentAnswersContext is ConsistentAnswers under a context that may
// carry an obsv.Tracer.
func (e *Engine) ConsistentAnswersContext(ctx context.Context, u cq.UCQ) ([]db.Tuple, Stats, error) {
	if err := u.Validate(e.in.Schema()); err != nil {
		return nil, Stats{}, err
	}
	if e.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.Timeout)
		defer cancel()
	}
	ctx, sp := obsv.StartSpan(ctx, "query.consistent_answers")
	start := time.Now()
	rc, local := e.newRecorder()
	ctx, fl := e.startFlight(ctx, "consistent_answers", rc.flight)
	out, err := e.consistentAnswers(ctx, u, rc)
	dur := time.Since(start)
	anomaly := e.classifyAnomaly(err, dur)
	e.observeCall(ctx, rc, anomaly, dur)
	bundle := fl.finish(anomaly, err, local)
	snap := local.Snapshot()
	stats := StatsFromSnapshot(snap)
	if e.opts.Journal != nil {
		answers := make([]GroupAnswer, len(out))
		for i, t := range out {
			answers[i] = GroupAnswer{Key: t}
		}
		if err != nil {
			answers = nil
		}
		e.appendJournal(ctx, "consistent_answers", u.String(), answers, snap, err, start, dur, anomaly, bundle, rc)
	}
	if sp != nil {
		sp.SetInt("answers", int64(len(out)))
		sp.SetInt("sat_calls", stats.SATCalls)
		sp.End()
	}
	return out, stats, err
}

func (e *Engine) consistentAnswers(ctx context.Context, u cq.UCQ, rc *recorder) ([]db.Tuple, error) {
	_, wsp := obsv.StartSpan(ctx, "cq.witness")
	pm := startPhase()
	bag, err := e.eval.WitnessBagCtx(ctx, u)
	rc.endWitness(pm)
	rc.witnesses(len(bag))
	if wsp != nil {
		wsp.SetInt("witnesses", int64(len(bag)))
		wsp.End()
	}
	if err != nil {
		return nil, stopCause(ctx)
	}

	arity := 0
	if len(bag) > 0 {
		arity = len(bag[0].Answer)
	}
	groups := cq.GroupWitnesses(bag, arity)
	rc.groups(len(groups))
	consistent, err := e.consistentGroups(ctx, groups, rc)
	if err != nil {
		return nil, err
	}
	var out []db.Tuple
	for i, g := range groups {
		if consistent[i] {
			out = append(out, g.Key)
		}
	}
	return out, nil
}

// consistentGroups reports, for each witness group (one candidate answer
// of the underlying query), whether it is a consistent answer. Groups
// with a fully safe witness are accepted without SAT; the rest share one
// incremental SAT solver with a fresh activation literal per candidate.
func (e *Engine) consistentGroups(ctx context.Context, groups []cq.WitnessGroup, rc *recorder) ([]bool, error) {
	cc := e.constraintCtx(ctx, rc)
	_, csp := obsv.StartSpan(ctx, "core.consistent_groups")
	defer csp.End()

	out := make([]bool, len(groups))
	encodeMark := startPhase()

	// Deduplicate witness fact sets per group and apply the safe-witness
	// shortcut.
	var todo []consCandidate
	seed := map[db.FactID]bool{}
	for i, g := range groups {
		sets := dedupFactSets(g.Witnesses)
		safe := false
		for _, fs := range sets {
			if cc.allSafe(fs) {
				safe = true
				break
			}
		}
		if safe {
			out[i] = true
			rc.skip()
			continue
		}
		todo = append(todo, consCandidate{index: i, factSets: sets})
		for _, fs := range sets {
			for _, f := range fs {
				seed[f] = true
			}
		}
	}
	if len(todo) == 0 {
		rc.endEncode(encodeMark)
		return out, nil
	}

	closure := cc.closure(seed)
	var enc *encoder
	var base *maxsat.HardBase
	var baseHit bool
	if e.incremental() {
		// Shards clone the cached hard base instead of each re-adding
		// the shared formula clause by clause; repeated calls over the
		// same closure (Algorithm 2 on similar queries) skip the encode.
		enc, base, baseHit = e.componentBase(cc, closure)
		rc.baseHit(baseHit)
	} else {
		enc = newEncoder(cc, closure)
	}
	ed := rc.endEncode(encodeMark)
	rc.absorbFormula(enc.formula)
	ce := rc.exp.component(len(closure), len(todo))
	st := enc.formula.Stats()
	ce.setEncode(st.Vars, st.Clauses, baseHit, ed)
	if csp != nil {
		csp.SetInt("groups", int64(len(groups)))
		csp.SetInt("sat_checked", int64(len(todo)))
	}

	// Shard the candidates across the worker pool in contiguous chunks:
	// each shard owns an incremental solver over the shared formula
	// (read-only after newEncoder) and checks its candidates against it.
	// With one shard this is exactly the classic single-solver loop, so
	// sequential runs keep the full learnt-clause reuse across
	// candidates. Shards write disjoint out[...] slots, so the verdicts
	// are identical and in place regardless of scheduling.
	shards := e.parallelism()
	if shards > len(todo) {
		shards = len(todo)
	}
	per := (len(todo) + shards - 1) / shards
	solveMark := startPhase()
	err := forEach(ctx, shards, shards, func(ctx context.Context, w int) error {
		lo := w * per
		hi := min(lo+per, len(todo))
		if lo >= hi {
			return nil
		}
		return e.checkCandidates(ctx, enc, base, todo[lo:hi], out, rc)
	})
	sd := rc.endSolve(solveMark)
	// Each candidate costs exactly one incremental Solve call.
	ce.addDirection("consistency", "sat", maxsat.Result{SATCalls: int64(len(todo))}, sd)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// consCandidate is one not-obviously-consistent answer of the underlying
// query, awaiting its Algorithm-2 SAT check.
type consCandidate struct {
	index    int
	factSets [][]db.FactID
}

// checkCandidates runs the consistency check for a slice of candidates
// on a fresh incremental solver seeded with the shared hard formula.
// Activation literals a_b → (witness broken) are added per candidate;
// out[p.index] receives the verdict (indices are disjoint across
// shards, so no synchronization is needed on the writes).
func (e *Engine) checkCandidates(ctx context.Context, enc *encoder, base *maxsat.HardBase, todo []consCandidate, out []bool, rc *recorder) error {
	var solver *sat.Solver
	if base != nil {
		solver = base.Fork(enc.formula)
		if !solver.Okay() {
			return errInternalUnsat()
		}
	} else {
		solver = sat.New()
		if !solver.AddFormulaHard(enc.formula) {
			return errInternalUnsat()
		}
		solver.EnsureVars(enc.formula.NumVars())
	}
	if b := e.opts.MaxSAT.ConflictBudget; b > 0 {
		solver.SetConflictBudget(b)
	}
	release := sat.StopOnDone(ctx, solver)
	defer release()

	acts := make([]cnf.Lit, len(todo))
	for ti, p := range todo {
		a := cnf.Lit(solver.NewVar())
		acts[ti] = a
		for _, fs := range p.factSets {
			clause := make([]cnf.Lit, 0, len(fs)+1)
			clause = append(clause, a.Neg())
			for _, f := range fs {
				clause = append(clause, enc.lit(f).Neg())
			}
			solver.AddClause(clause...)
		}
	}
	for ti, p := range todo {
		st := solver.Solve(acts[ti])
		rc.satCalls(1)
		switch st {
		case sat.Unsat:
			// No repair breaks all witnesses: b is consistent.
			out[p.index] = true
		case sat.Sat:
			out[p.index] = false
		default:
			return stopCause(ctx)
		}
	}
	return nil
}

// dedupFactSets drops witnesses repeating an already-seen fact set.
// Sets are bucketed by factSetKey and verified element-wise inside each
// bucket (on sorted copies), so a hash collision costs a comparison,
// never a lost candidate clause.
func dedupFactSets(ws []cq.Witness) [][]db.FactID {
	byHash := make(map[uint64][]int, len(ws)) // hash → indexes into sorted
	var out [][]db.FactID
	var sorted [][]db.FactID // sorted copies, aligned with out
	for _, w := range ws {
		s := append([]db.FactID(nil), w.Facts...)
		sortFactIDs(s)
		h := db.HashFactSet(s)
		dup := false
		for _, i := range byHash[h] {
			if factIDsEqual(sorted[i], s) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		byHash[h] = append(byHash[h], len(out))
		out = append(out, w.Facts)
		sorted = append(sorted, s)
	}
	return out
}

// factSetKey builds an order-insensitive hash key for a witness fact
// set: the same facts can arrive in different orders from different
// join orderings or union branches, so the IDs are sorted (on a copy)
// before hashing — otherwise dedupFactSets would keep permuted
// duplicates and the SAT check would carry redundant clauses. The key
// is not injective; users must verify exact equality inside buckets.
func factSetKey(facts []db.FactID) uint64 {
	sorted := append([]db.FactID(nil), facts...)
	sortFactIDs(sorted)
	return db.HashFactSet(sorted)
}

func factIDsEqual(a, b []db.FactID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func errInternalUnsat() error {
	return errString("core: hard repair clauses unsatisfiable (internal bug)")
}

type errString string

func (e errString) Error() string { return string(e) }
