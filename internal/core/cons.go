package core

import (
	"context"
	"time"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/sat"
)

// ConsistentAnswers computes CONS(q) for a union of conjunctive queries:
// the answers present in q(J) for every repair J. This is the CAvSAT
// (SAT 2019) reduction the paper builds Algorithm 2 on: an answer b is
// consistent iff the hard repair clauses together with "every witness of
// b is broken" are unsatisfiable.
func (e *Engine) ConsistentAnswers(u cq.UCQ) ([]db.Tuple, Stats, error) {
	return e.ConsistentAnswersContext(context.Background(), u)
}

// ConsistentAnswersContext is ConsistentAnswers under a context that may
// carry an obsv.Tracer.
func (e *Engine) ConsistentAnswersContext(ctx context.Context, u cq.UCQ) ([]db.Tuple, Stats, error) {
	if err := u.Validate(e.in.Schema()); err != nil {
		return nil, Stats{}, err
	}
	ctx, sp := obsv.StartSpan(ctx, "query.consistent_answers")
	rc, local := e.newRecorder()
	out, err := e.consistentAnswers(ctx, u, rc)
	stats := StatsFromSnapshot(local.Snapshot())
	if sp != nil {
		sp.SetInt("answers", int64(len(out)))
		sp.SetInt("sat_calls", stats.SATCalls)
		sp.End()
	}
	return out, stats, err
}

func (e *Engine) consistentAnswers(ctx context.Context, u cq.UCQ, rc *recorder) ([]db.Tuple, error) {
	_, wsp := obsv.StartSpan(ctx, "cq.witness")
	start := time.Now()
	bag := e.eval.WitnessBag(u)
	rc.witness(time.Since(start))
	rc.witnesses(len(bag))
	if wsp != nil {
		wsp.SetInt("witnesses", int64(len(bag)))
		wsp.End()
	}

	arity := 0
	if len(bag) > 0 {
		arity = len(bag[0].Answer)
	}
	groups := cq.GroupWitnesses(bag, arity)
	rc.groups(len(groups))
	consistent, err := e.consistentGroups(ctx, groups, rc)
	if err != nil {
		return nil, err
	}
	var out []db.Tuple
	for i, g := range groups {
		if consistent[i] {
			out = append(out, g.Key)
		}
	}
	return out, nil
}

// consistentGroups reports, for each witness group (one candidate answer
// of the underlying query), whether it is a consistent answer. Groups
// with a fully safe witness are accepted without SAT; the rest share one
// incremental SAT solver with a fresh activation literal per candidate.
func (e *Engine) consistentGroups(ctx context.Context, groups []cq.WitnessGroup, rc *recorder) ([]bool, error) {
	cc := e.constraintCtx(ctx, rc)
	_, csp := obsv.StartSpan(ctx, "core.consistent_groups")
	defer csp.End()

	out := make([]bool, len(groups))
	encodeStart := time.Now()

	// Deduplicate witness fact sets per group and apply the safe-witness
	// shortcut.
	type pending struct {
		index    int
		factSets [][]db.FactID
	}
	var todo []pending
	seed := map[db.FactID]bool{}
	for i, g := range groups {
		sets := dedupFactSets(g.Witnesses)
		safe := false
		for _, fs := range sets {
			if cc.allSafe(fs) {
				safe = true
				break
			}
		}
		if safe {
			out[i] = true
			rc.skip()
			continue
		}
		todo = append(todo, pending{index: i, factSets: sets})
		for _, fs := range sets {
			for _, f := range fs {
				seed[f] = true
			}
		}
	}
	if len(todo) == 0 {
		rc.encode(time.Since(encodeStart))
		return out, nil
	}

	enc := newEncoder(cc, cc.closure(seed))
	solver := sat.New()
	if !solver.AddFormulaHard(enc.formula) {
		rc.encode(time.Since(encodeStart))
		return nil, errInternalUnsat()
	}
	solver.EnsureVars(enc.formula.NumVars())

	// Activation literals: a_b → (witness broken) for every witness of b.
	acts := make([]cnf.Lit, len(todo))
	for ti, p := range todo {
		a := cnf.Lit(solver.NewVar())
		acts[ti] = a
		for _, fs := range p.factSets {
			clause := make([]cnf.Lit, 0, len(fs)+1)
			clause = append(clause, a.Neg())
			for _, f := range fs {
				clause = append(clause, enc.lit(f).Neg())
			}
			solver.AddClause(clause...)
		}
	}
	rc.encode(time.Since(encodeStart))
	rc.absorbFormula(enc.formula)
	if csp != nil {
		csp.SetInt("groups", int64(len(groups)))
		csp.SetInt("sat_checked", int64(len(todo)))
	}

	solveStart := time.Now()
	for ti, p := range todo {
		st := solver.Solve(acts[ti])
		rc.satCalls(1)
		switch st {
		case sat.Unsat:
			// No repair breaks all witnesses: b is consistent.
			out[p.index] = true
		case sat.Sat:
			out[p.index] = false
		default:
			rc.solve(time.Since(solveStart))
			return nil, errBudget()
		}
	}
	rc.solve(time.Since(solveStart))
	return out, nil
}

func dedupFactSets(ws []cq.Witness) [][]db.FactID {
	seen := map[string]bool{}
	var out [][]db.FactID
	for _, w := range ws {
		k := factSetKey(w.Facts)
		if !seen[k] {
			seen[k] = true
			out = append(out, w.Facts)
		}
	}
	return out
}

func factSetKey(facts []db.FactID) string {
	b := make([]byte, 0, len(facts)*4)
	for _, f := range facts {
		v := uint32(f)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func errInternalUnsat() error {
	return errString("core: hard repair clauses unsatisfiable (internal bug)")
}

func errBudget() error {
	return errString("core: SAT conflict budget exhausted")
}

type errString string

func (e errString) Error() string { return string(e) }
