package core

import (
	"time"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/sat"
)

// ConsistentAnswers computes CONS(q) for a union of conjunctive queries:
// the answers present in q(J) for every repair J. This is the CAvSAT
// (SAT 2019) reduction the paper builds Algorithm 2 on: an answer b is
// consistent iff the hard repair clauses together with "every witness of
// b is broken" are unsatisfiable.
func (e *Engine) ConsistentAnswers(u cq.UCQ) ([]db.Tuple, Stats, error) {
	var stats Stats
	if err := u.Validate(e.in.Schema()); err != nil {
		return nil, stats, err
	}
	start := time.Now()
	bag := e.eval.WitnessBag(u)
	stats.WitnessTime += time.Since(start)

	arity := 0
	if len(bag) > 0 {
		arity = len(bag[0].Answer)
	}
	groups := cq.GroupWitnesses(bag, arity)
	consistent, err := e.consistentGroups(groups, &stats)
	if err != nil {
		return nil, stats, err
	}
	var out []db.Tuple
	for i, g := range groups {
		if consistent[i] {
			out = append(out, g.Key)
		}
	}
	return out, stats, nil
}

// consistentGroups reports, for each witness group (one candidate answer
// of the underlying query), whether it is a consistent answer. Groups
// with a fully safe witness are accepted without SAT; the rest share one
// incremental SAT solver with a fresh activation literal per candidate.
func (e *Engine) consistentGroups(groups []cq.WitnessGroup, stats *Stats) ([]bool, error) {
	ctx := e.context()
	stats.ConstraintTime = ctx.buildTime

	out := make([]bool, len(groups))
	encodeStart := time.Now()

	// Deduplicate witness fact sets per group and apply the safe-witness
	// shortcut.
	type pending struct {
		index    int
		factSets [][]db.FactID
	}
	var todo []pending
	seed := map[db.FactID]bool{}
	for i, g := range groups {
		sets := dedupFactSets(g.Witnesses)
		safe := false
		for _, fs := range sets {
			if ctx.allSafe(fs) {
				safe = true
				break
			}
		}
		if safe {
			out[i] = true
			stats.ConsistentPartSkips++
			continue
		}
		todo = append(todo, pending{index: i, factSets: sets})
		for _, fs := range sets {
			for _, f := range fs {
				seed[f] = true
			}
		}
	}
	if len(todo) == 0 {
		stats.EncodeTime += time.Since(encodeStart)
		return out, nil
	}

	enc := newEncoder(ctx, ctx.closure(seed))
	solver := sat.New()
	if !solver.AddFormulaHard(enc.formula) {
		stats.EncodeTime += time.Since(encodeStart)
		return nil, errInternalUnsat()
	}
	solver.EnsureVars(enc.formula.NumVars())

	// Activation literals: a_b → (witness broken) for every witness of b.
	acts := make([]cnf.Lit, len(todo))
	for ti, p := range todo {
		a := cnf.Lit(solver.NewVar())
		acts[ti] = a
		for _, fs := range p.factSets {
			clause := make([]cnf.Lit, 0, len(fs)+1)
			clause = append(clause, a.Neg())
			for _, f := range fs {
				clause = append(clause, enc.lit(f).Neg())
			}
			solver.AddClause(clause...)
		}
	}
	stats.EncodeTime += time.Since(encodeStart)
	stats.absorbFormula(enc.formula)

	solveStart := time.Now()
	for ti, p := range todo {
		st := solver.Solve(acts[ti])
		stats.SATCalls++
		switch st {
		case sat.Unsat:
			// No repair breaks all witnesses: b is consistent.
			out[p.index] = true
		case sat.Sat:
			out[p.index] = false
		default:
			stats.SolveTime += time.Since(solveStart)
			return nil, errBudget()
		}
	}
	stats.SolveTime += time.Since(solveStart)
	return out, nil
}

func dedupFactSets(ws []cq.Witness) [][]db.FactID {
	seen := map[string]bool{}
	var out [][]db.FactID
	for _, w := range ws {
		k := factSetKey(w.Facts)
		if !seen[k] {
			seen[k] = true
			out = append(out, w.Facts)
		}
	}
	return out
}

func factSetKey(facts []db.FactID) string {
	b := make([]byte, 0, len(facts)*4)
	for _, f := range facts {
		v := uint32(f)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func errInternalUnsat() error {
	return errString("core: hard repair clauses unsatisfiable (internal bug)")
}

func errBudget() error {
	return errString("core: SAT conflict budget exhausted")
}

type errString string

func (e errString) Error() string { return string(e) }
