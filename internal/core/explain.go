package core

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"

	"aggcavsat/internal/maxsat"
)

// DirectionExplain describes one solver pass within a component solve:
// a WPMaxSAT optimization direction ("glb"/"lub"), the iterative SAT
// probe sequence of MIN/MAX ("probe"), or the per-candidate consistency
// checks of Algorithm 2 ("consistency").
type DirectionExplain struct {
	Direction string `json:"direction"`
	// Algorithm is the configured MaxSAT strategy ("sat" for plain
	// probe/consistency passes that never build a MaxSAT instance).
	Algorithm string `json:"algorithm"`
	SATCalls  int64  `json:"sat_calls"`
	Conflicts int64  `json:"conflicts,omitempty"`
	SolveNS   int64  `json:"solve_ns"`
}

// ComponentExplain is the per-component breakdown of one solve: each
// independent hard-clause component (disjoint key-equal groups or
// violation clusters) becomes its own WPMaxSAT/SAT instance, and this
// records what that instance looked like and how it was solved.
type ComponentExplain struct {
	// Index is the arrival order of the component in the report; with
	// Parallelism > 1 components finish (and appear) in nondeterministic
	// order.
	Index int `json:"index"`
	// Facts is the size of the component's closure fact set; Witnesses
	// is the number of solve units (witnesses, answer groups, or checked
	// candidates) encoded against it.
	Facts     int `json:"facts"`
	Witnesses int `json:"witnesses"`
	Vars      int `json:"vars"`
	Clauses   int `json:"clauses"`
	// BaseHit reports whether the component's hard-clause encoding and
	// loaded solver base came from the Engine.bases memo (false: built
	// here; meaningless on the legacy non-incremental path).
	BaseHit  bool  `json:"base_hit"`
	EncodeNS int64 `json:"encode_ns"`

	Directions []DirectionExplain `json:"directions,omitempty"`
}

// addDirection appends one solver pass (nil-receiver-safe so the solve
// path records unconditionally). No locking: each component entry is
// owned by the one worker goroutine solving that component, and the
// collector publishes entries under its own mutex.
func (ce *ComponentExplain) addDirection(dir, alg string, res maxsat.Result, d time.Duration) {
	if ce == nil {
		return
	}
	ce.Directions = append(ce.Directions, DirectionExplain{
		Direction: dir,
		Algorithm: alg,
		SATCalls:  res.SATCalls,
		Conflicts: res.Conflicts,
		SolveNS:   int64(d),
	})
}

// Explain is the per-solve report assembled when Options.Explain is set:
// which code paths answered the call (mode, front end, solver route),
// the cache outcomes, the per-component breakdown, and the same Stats
// projection the Report carries — both views are built from the one
// call-local metric snapshot, so their phase totals reconcile exactly.
type Explain struct {
	Query string `json:"query"`
	Op    string `json:"op"`
	// TraceID is the W3C trace id of the request that ran this call (32
	// lowercase hex digits), when the context carried one — the same id
	// the journal line, flight bundle, and cavsatd response carry.
	TraceID string `json:"trace_id,omitempty"`
	// Mode is "keys" or "dc"; Frontend is "compiled" or "interpreted".
	Mode        string `json:"mode"`
	Frontend    string `json:"frontend"`
	Algorithm   string `json:"algorithm"`
	Incremental bool   `json:"incremental"`
	Parallelism int    `json:"parallelism"`

	// Route is the executor the planner picked: "rewrite" (ConQuer-style
	// SAT-free fast path) or "sat" (the WPMaxSAT reduction). RouteReason
	// explains a SAT route — the structural classifier rejection, the
	// forced mode, or a run-time fallback; empty on the rewrite route.
	// PlanCached reports that the routing decision came from the
	// planner's per-shape cache.
	Route       string `json:"route"`
	RouteReason string `json:"route_reason,omitempty"`
	PlanCached  bool   `json:"plan_cached"`

	// ConstraintCached reports that the constraint context (key-equal
	// groups / minimal violations) was served from a cache rather than
	// built during this call. FastPathRels/GenericDCs attribute the DC
	// violation route (zero in keys mode).
	ConstraintCached bool `json:"constraint_cached"`
	FastPathRels     int  `json:"fastpath_rels"`
	GenericDCs       int  `json:"generic_dcs"`
	// BaseHits/BaseMisses count Engine.bases outcomes across the call's
	// components; ConsistentSkips counts groups answered without SAT.
	BaseHits        int64 `json:"base_hits"`
	BaseMisses      int64 `json:"base_misses"`
	ConsistentSkips int   `json:"consistent_skips"`

	Components []ComponentExplain `json:"components"`

	// Stats is the call's typed metric projection — identical to
	// Report.Stats (same snapshot), which is the reconciliation contract
	// of `cavsat -explain` vs `-stats`.
	Stats Stats `json:"stats"`
}

// explainCollector accumulates component breakdowns across the
// concurrent solve fan-out of one engine call.
type explainCollector struct {
	mu    sync.Mutex
	comps []*ComponentExplain
}

// component registers a new component entry (nil-receiver-safe: returns
// nil when explain is off, and every ComponentExplain method accepts a
// nil receiver).
func (c *explainCollector) component(facts, witnesses int) *ComponentExplain {
	if c == nil {
		return nil
	}
	ce := &ComponentExplain{Facts: facts, Witnesses: witnesses}
	c.mu.Lock()
	ce.Index = len(c.comps)
	c.comps = append(c.comps, ce)
	c.mu.Unlock()
	return ce
}

// setEncode stamps the encode outcome on a component entry
// (nil-receiver-safe).
func (ce *ComponentExplain) setEncode(vars, clauses int, baseHit bool, d time.Duration) {
	if ce == nil {
		return
	}
	ce.Vars = vars
	ce.Clauses = clauses
	ce.BaseHit = baseHit
	ce.EncodeNS += int64(d)
}

// buildExplain assembles the Explain report from the call-local metric
// snapshot and the collected component entries.
func (e *Engine) buildExplain(query, op, traceID string, rc *recorder, stats Stats) *Explain {
	cc := e.context()
	ex := &Explain{
		Query:       query,
		Op:          op,
		TraceID:     traceID,
		Mode:        e.modeString(),
		Frontend:    e.frontendString(),
		Algorithm:   e.opts.MaxSAT.Algorithm.String(),
		Incremental: e.incremental(),
		Parallelism: e.parallelism(),

		Route:       rc.route.String(),
		RouteReason: rc.routeReason,
		PlanCached:  rc.planCached,

		ConstraintCached: rc.constraintHit.Load(),
		FastPathRels:     cc.fastRels,
		GenericDCs:       cc.genericDCs,
		ConsistentSkips:  stats.ConsistentPartSkips,
		Stats:            stats,
	}
	if rc.exp != nil {
		rc.exp.mu.Lock()
		ex.Components = make([]ComponentExplain, len(rc.exp.comps))
		for i, ce := range rc.exp.comps {
			ex.Components[i] = *ce
			if ce.BaseHit {
				ex.BaseHits++
			} else if e.incremental() {
				ex.BaseMisses++
			}
		}
		rc.exp.mu.Unlock()
	}
	return ex
}

func (e *Engine) modeString() string {
	if e.opts.Mode == DCMode {
		return "dc"
	}
	return "keys"
}

func (e *Engine) frontendString() string {
	if e.opts.DisableFrontendOpt {
		return "interpreted"
	}
	return "compiled"
}

// WriteTable renders the explain report as an aligned text table: the
// solve configuration and cache outcomes, the per-phase time/alloc
// breakdown (the same numbers as `-stats`), and one row per component
// solver pass.
func (ex *Explain) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\t%s\n", ex.Query)
	fmt.Fprintf(tw, "op\t%s\n", ex.Op)
	if ex.TraceID != "" {
		fmt.Fprintf(tw, "trace\t%s\n", ex.TraceID)
	}
	fmt.Fprintf(tw, "mode\t%s\n", ex.Mode)
	fmt.Fprintf(tw, "frontend\t%s\n", ex.Frontend)
	route := ex.Route
	if ex.RouteReason != "" {
		route += " (" + ex.RouteReason + ")"
	}
	if ex.Route == "rewrite" && ex.PlanCached {
		route += " (plan cached)"
	}
	fmt.Fprintf(tw, "route\t%s\n", route)
	solver := ex.Algorithm
	if ex.Incremental {
		solver += " (incremental)"
	} else {
		solver += " (legacy)"
	}
	fmt.Fprintf(tw, "solver\t%s\n", solver)
	fmt.Fprintf(tw, "parallelism\t%d\n", ex.Parallelism)
	fmt.Fprintf(tw, "constraint cache\t%s\n", hitMiss(ex.ConstraintCached))
	if ex.Mode == "dc" {
		fmt.Fprintf(tw, "violation route\t%d fast-path relation(s), %d generic DC(s)\n", ex.FastPathRels, ex.GenericDCs)
	}
	fmt.Fprintf(tw, "base cache\t%d hit(s), %d miss(es)\n", ex.BaseHits, ex.BaseMisses)
	if ex.ConsistentSkips > 0 {
		fmt.Fprintf(tw, "consistent-part skips\t%d\n", ex.ConsistentSkips)
	}
	fmt.Fprintln(tw)

	s := ex.Stats
	fmt.Fprintf(tw, "phase\ttime\talloc\n")
	if s.RewriteTime > 0 {
		fmt.Fprintf(tw, "rewrite\t%v\t\n", s.RewriteTime)
	}
	fmt.Fprintf(tw, "witness\t%v\t%s\n", s.WitnessTime, byteCount(s.WitnessAllocBytes))
	fmt.Fprintf(tw, "constraint\t%v\t\n", s.ConstraintTime)
	fmt.Fprintf(tw, "encode\t%v\t%s\n", s.EncodeTime, byteCount(s.EncodeAllocBytes))
	fmt.Fprintf(tw, "solve\t%v\t%s\n", s.SolveTime, byteCount(s.SolveAllocBytes))
	fmt.Fprintf(tw, "total\t%v\t\n", s.RewriteTime+s.WitnessTime+s.ConstraintTime+s.EncodeTime+s.SolveTime)
	fmt.Fprintln(tw)

	if len(ex.Components) > 0 {
		fmt.Fprintf(tw, "component\tfacts\tunits\tvars\tclauses\tbase\tpass\talg\tsat\tconfl\tsolve\n")
		for _, ce := range ex.Components {
			base := "miss"
			if ce.BaseHit {
				base = "hit"
			}
			if len(ce.Directions) == 0 {
				fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\t\t\t\t\t\n",
					ce.Index, ce.Facts, ce.Witnesses, ce.Vars, ce.Clauses, base)
				continue
			}
			for di, d := range ce.Directions {
				if di == 0 {
					fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\t", ce.Index, ce.Facts, ce.Witnesses, ce.Vars, ce.Clauses, base)
				} else {
					fmt.Fprintf(tw, "\t\t\t\t\t\t")
				}
				fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%v\n", d.Direction, d.Algorithm, d.SATCalls, d.Conflicts, time.Duration(d.SolveNS))
			}
		}
	}
	return tw.Flush()
}

func hitMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// byteCount humanizes a byte count (binary units).
func byteCount(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}
