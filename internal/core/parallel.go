package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"aggcavsat/internal/maxsat"
)

// ErrTimeout is returned when an engine call is cut short by its context
// — Options.Timeout, a caller-supplied deadline, or an explicit cancel.
// It is distinct from ErrBudget, which reports that a solver resource
// budget (not wall clock) ran out. Match with errors.Is.
var ErrTimeout = errors.New("core: solve cancelled or timed out")

// ErrBudget is returned when a solver budget (the SAT conflict budget of
// Options.MaxSAT.ConflictBudget, or the MaxHS hitting-set node budget)
// was exhausted before the solve finished. Match with errors.Is.
var ErrBudget = errors.New("core: solver budget exhausted")

// stopCause classifies an aborted SAT call or an abandoned work loop:
// a dead context means cancellation (ErrTimeout); otherwise the solver
// stopped on its own conflict budget (ErrBudget).
func stopCause(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return ErrBudget
}

// mapSolveErr translates an error from the maxsat layer into the
// package's typed sentinels so callers can distinguish a wall-clock
// timeout from a budget stop with errors.Is; unrelated errors pass
// through unchanged.
func mapSolveErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	case errors.Is(err, maxsat.ErrBudget):
		return fmt.Errorf("%w: %v", ErrBudget, err)
	}
	return err
}

// parallelism resolves Options.Parallelism: 0 (or negative) means
// GOMAXPROCS, anything else is taken as given (1 forces sequential).
func (e *Engine) parallelism() int {
	if p := e.opts.Parallelism; p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(i) for every i in [0, n) on at most workers
// goroutines. Work items are claimed from a shared atomic counter, so
// callers must make fn(i) write its result into slot i of a
// caller-owned slice — that is what keeps the merged output
// deterministic regardless of scheduling.
//
// The first error cancels the context handed to the remaining fn calls
// and is returned after all workers drain; when the parent context
// itself is dead, the (typed) cancellation error wins over whichever
// per-item error happened to be recorded first, so callers see
// ErrTimeout rather than an arbitrary casualty of the cancellation.
// With workers <= 1 the loop degenerates to a plain sequential for loop
// on the caller's goroutine.
func forEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return stopCause(ctx)
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || wctx.Err() != nil {
					return
				}
				if err := fn(wctx, i); err != nil {
					once.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return stopCause(ctx)
	}
	return firstErr
}
