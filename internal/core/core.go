// Package core implements the paper's contribution: computing the range
// consistent answers of aggregation queries via reductions to (Weighted)
// Partial MaxSAT.
//
// The package contains:
//
//   - Reduction IV.1 for scalar COUNT(*), COUNT(A) and SUM(A) queries
//     over schemas with one key constraint per relation;
//   - Algorithm 1 for the DISTINCT variants;
//   - Algorithm 2 for aggregation queries with grouping, built on the
//     consistent answers of the underlying query (the CAvSAT reduction);
//   - Reduction V.1 replacing the key-based hard clauses with clauses
//     derived from minimal violations and near-violations of arbitrary
//     denial constraints;
//   - the iterative-SAT procedure for MIN(A)/MAX(A) from the paper's
//     extended version;
//   - Kügel's CNF-negation to obtain lub-answers (WPMinSAT) with a
//     WPMaxSAT solver.
//
// Proposition IV.1 is the decoding contract: in a maximum (minimum)
// satisfying assignment of the constructed formula, the total weight of
// falsified soft clauses equals the glb-answer (lub-answer), up to the
// constant offset contributed by negative-valued and consistent-part
// witnesses that the encoder folds out.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/conquer"
	"aggcavsat/internal/constraints"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/maxsat"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/planner"
)

// ConstraintMode selects how repairs are defined.
type ConstraintMode int

const (
	// KeysMode: one key constraint per relation (taken from the schema);
	// hard clauses are the exactly-one α-clauses of Reduction IV.1.
	KeysMode ConstraintMode = iota
	// DCMode: an explicit set of denial constraints; hard clauses follow
	// Reduction V.1 (α from minimal violations, γ/θ from near-violations).
	DCMode
)

// Options configures an Engine.
type Options struct {
	Mode ConstraintMode
	// DCs is the denial-constraint set for DCMode.
	DCs []constraints.DC
	// MaxSAT configures the underlying MaxSAT solver.
	MaxSAT maxsat.Options
	// Parallelism bounds the worker pool that fans out independent solve
	// units (per-group scalar ranges, per-component WPMaxSAT instances,
	// per-candidate consistency checks). 0 means GOMAXPROCS; 1 forces
	// fully sequential solving. Answers are deterministic and identical
	// at every setting: workers write into index-addressed slots and the
	// merge preserves the original group/component order.
	Parallelism int
	// Timeout, when positive, bounds the wall-clock time of every engine
	// call (RangeAnswers / ConsistentAnswers). On expiry the in-flight
	// SAT searches are interrupted cooperatively and the call returns an
	// error matching ErrTimeout — distinct from ErrBudget, which reports
	// an exhausted conflict budget. A deadline or cancellation on the
	// caller's context has the same effect.
	Timeout time.Duration
	// Metrics, when non-nil, additionally accumulates every call's
	// metrics into this session-wide registry (e.g. for a Prometheus
	// scrape endpoint). Per-call Stats are unaffected.
	Metrics *obsv.Registry
	// DisableIncremental forces the legacy solve path: one fresh solver
	// per MaxSAT run and an explicit NegateSoft formula for the lub
	// direction, with no sharing of hard-clause bases across directions,
	// components, or queries. The escape hatch for the incremental path,
	// which is on by default (external solvers always run legacy: they
	// consume a WCNF file per invocation).
	DisableIncremental bool
	// SlowQuery, when positive, classifies any engine call that takes
	// longer than this threshold as an anomaly even though it succeeded:
	// its flight-recorder bundle is handed to OnAnomaly, so persistently
	// slow queries are diagnosable after the fact without rerunning.
	SlowQuery time.Duration
	// OnAnomaly, when non-nil, enables the per-call flight recorder: a
	// bounded ring of recent structured events (phase ends, solver
	// progress ticks, bound updates, CNF stats) that is assembled into a
	// self-contained obsv.Bundle and passed to this hook whenever a call
	// ends in ErrTimeout/ErrBudget, errors, or exceeds SlowQuery.
	// obsv.DumpDir provides a ready-made sink writing each bundle to a
	// JSON file. The hook runs synchronously at the end of the call.
	OnAnomaly func(*obsv.Bundle)
	// FlightEvents bounds the flight-recorder ring; 0 means
	// obsv.DefaultFlightEvents.
	FlightEvents int
	// Explain, when true, assembles a per-component Explain report on
	// every Report: which code paths answered the call, the cache
	// outcomes, and one entry per independent solver instance. The
	// breakdown rides on the always-on instrumentation, so enabling it
	// costs a few small allocations per component, never extra solving.
	Explain bool
	// Journal, when non-nil, appends one wide-event line per engine call
	// (RangeAnswers / ConsistentAnswers) to the query journal: query
	// fingerprint, options, answer digest, timings, cache outcomes, and
	// the anomaly classification with its flight-bundle path. The append
	// is non-blocking (obsv.Journal sheds load when the writer lags), so
	// journaling never perturbs answers or stalls solves.
	Journal *obsv.Journal
	// Planner selects how queries are routed between the WPMaxSAT
	// reduction and the ConQuer-style rewriting fast path
	// (internal/planner). The zero value (planner.ModeSAT) preserves the
	// pre-planner behavior: every query solves through SAT.
	// planner.ModeAuto answers C_aggforest queries by pure relational
	// evaluation and falls back to the solver on everything else
	// (including data-dependent rejections discovered mid-rewrite);
	// planner.ModeRewrite forces the rewriting and fails queries it
	// cannot answer. Answers are identical across modes — only the
	// executor changes.
	Planner planner.Mode
	// DisableFrontendOpt forces the legacy relational front end: the
	// recursive interpreted CQ evaluator with string-keyed indexes and
	// sequential enumeration, uncached string-keyed key-equal grouping,
	// and generic uncached minimal-violation computation. The escape
	// hatch and benchmark baseline for the compiled front end (query
	// plans, hash indexes, key-aware constraint fast path, parallel
	// witness enumeration), which is on by default.
	DisableFrontendOpt bool
}

// Engine computes range consistent answers over one instance. The
// constraint context (key-equal groups or minimal violations and
// near-violations) is computed once and shared across queries.
type Engine struct {
	in      *db.Instance
	eval    *cq.Evaluator
	opts    Options
	planner *planner.Planner

	// ctx is built at most once, under ctxOnce: parallel workers race to
	// be the builder, everyone else blocks until the build finishes and
	// then shares the immutable result.
	ctxOnce sync.Once
	ctx     *constraintContext

	// bases caches, per component (keyed by its sorted closure fact
	// set), the hard-clause encoder output and the loaded solver base,
	// so grouped queries and repeated calls whose components coincide
	// clone the base instead of re-encoding and re-loading identical
	// hard clauses. See componentBase.
	bases sync.Map // componentKey(facts) → *baseEntry
}

// New creates an engine for the instance. For DCMode the constraints are
// validated against the schema.
func New(in *db.Instance, opts Options) (*Engine, error) {
	if opts.Mode == DCMode {
		if len(opts.DCs) == 0 {
			return nil, fmt.Errorf("core: DCMode requires at least one denial constraint")
		}
		for _, dc := range opts.DCs {
			if err := dc.Validate(in.Schema()); err != nil {
				return nil, err
			}
		}
	}
	e := &Engine{in: in, eval: cq.NewEvaluator(in), opts: opts}
	e.planner = planner.New(in, opts.Planner, opts.Mode == DCMode)
	if opts.DisableFrontendOpt {
		e.eval.SetInterpreted(true)
	} else {
		e.eval.SetParallelism(e.parallelism())
	}
	return e, nil
}

// Instance returns the engine's instance.
func (e *Engine) Instance() *db.Instance { return e.in }

// Range is a range consistent answer interval.
type Range struct {
	GLB db.Value
	LUB db.Value
	// FromConsistentPart reports that the interval was derived entirely
	// from facts outside every violation, with no MaxSAT instance at all
	// (the paper's low-selectivity shortcut).
	FromConsistentPart bool
	// EmptyPossible (MIN/MAX only) reports that some repair yields an
	// empty result (where the aggregate would be SQL NULL); the
	// endpoints then range over the non-empty repairs.
	EmptyPossible bool
}

// GroupAnswer pairs a grouping key with its range. Scalar queries use an
// empty key.
type GroupAnswer struct {
	Key db.Tuple
	Range
}

// Stats instruments one RangeAnswers call with the measurements the
// paper reports: the encode/solve time split (Figures 1 and 9), CNF
// sizes (Table III), and the number of SAT calls (Figures 7 and 8).
type Stats struct {
	WitnessTime    time.Duration // evaluating the underlying query
	ConstraintTime time.Duration // key-equal groups / minimal+near violations
	EncodeTime     time.Duration // clause construction
	SolveTime      time.Duration // MaxSAT / SAT solving
	RewriteTime    time.Duration // ConQuer-style rewriting execution (planner fast path)

	SATCalls            int64 // SAT solver invocations (across MaxSAT runs)
	MaxSATRuns          int   // number of MaxSAT instances solved
	Vars                int   // total variables across constructed formulas
	Clauses             int   // total clauses across constructed formulas
	MaxVars             int   // largest single formula
	MaxClauses          int
	ConsistentPartSkips int // groups answered without any SAT instance

	// Per-phase resource accounting, sampled via runtime/metrics around
	// each phase. The alloc counters are process-global: with
	// Parallelism > 1 concurrent phases each observe the shared
	// allocation stream, the same caveat as the summed phase durations.
	WitnessAllocBytes int64 // heap bytes allocated during witness evaluation
	EncodeAllocBytes  int64 // … during clause construction
	SolveAllocBytes   int64 // … during MaxSAT/SAT solving
	HeapBytes         int64 // live heap size at the last phase boundary
	GCCycles          int64 // GC cycles completed during measured phases
}

func (s *Stats) absorbFormula(f *cnf.Formula) {
	st := f.Stats()
	s.Vars += st.Vars
	s.Clauses += st.Clauses
	if st.Vars > s.MaxVars {
		s.MaxVars = st.Vars
	}
	if st.Clauses > s.MaxClauses {
		s.MaxClauses = st.Clauses
	}
}

// Report is the result of RangeAnswers. Stats is a typed view over
// Metrics (see StatsFromSnapshot); Metrics carries the full per-call
// metric snapshot, including the phase-duration histograms. Explain is
// present only under Options.Explain.
type Report struct {
	Answers []GroupAnswer
	Stats   Stats
	Metrics obsv.Snapshot
	Explain *Explain
	// Route records which executor answered the call: "rewrite" (the
	// planner's SAT-free fast path) or "sat" (the WPMaxSAT reduction).
	// RouteReason explains a SAT route (why the rewriting was not
	// taken); empty on the rewrite route.
	Route       string
	RouteReason string
}

// RangeAnswers computes the range consistent answers of the aggregation
// query under the engine's constraints. Scalar queries yield exactly one
// GroupAnswer with an empty key; grouped queries yield one GroupAnswer
// per consistent group (Algorithm 2).
func (e *Engine) RangeAnswers(q cq.AggQuery) (*Report, error) {
	return e.RangeAnswersContext(context.Background(), q)
}

// RangeAnswersContext is RangeAnswers under a context that may carry an
// obsv.Tracer: the call is wrapped in a "query.range_answers" span with
// child spans for witness evaluation, constraint building, per-group
// encoding and every MaxSAT/SAT solve.
func (e *Engine) RangeAnswersContext(ctx context.Context, q cq.AggQuery) (*Report, error) {
	q = q.BuildHead()
	if err := q.Validate(e.in.Schema()); err != nil {
		return nil, err
	}
	switch q.Op {
	case cq.CountStar, cq.Count, cq.CountDistinct, cq.Sum, cq.SumDistinct,
		cq.Min, cq.Max:
	default:
		return nil, fmt.Errorf("core: %s is not supported (open problem in the paper); use internal/exhaustive", q.Op)
	}
	if e.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.Timeout)
		defer cancel()
	}
	ctx, sp := obsv.StartSpan(ctx, "query.range_answers", obsv.String("op", q.Op.String()))
	op := "range_answers/" + q.Op.String()
	start := time.Now()
	rc, local := e.newRecorder()
	ctx, fl := e.startFlight(ctx, op, rc.flight)
	rep, err := e.rangeAnswers(ctx, q, rc)
	dur := time.Since(start)
	anomaly := e.classifyAnomaly(err, dur)
	e.observeCall(ctx, rc, anomaly, dur)
	bundle := fl.finish(anomaly, err, local)
	if err != nil {
		e.appendJournal(ctx, op, q.String(), nil, local.Snapshot(), err, start, dur, anomaly, bundle, rc)
		sp.End()
		return nil, err
	}
	rep.Metrics = local.Snapshot()
	rep.Stats = StatsFromSnapshot(rep.Metrics)
	rep.Route = rc.route.String()
	rep.RouteReason = rc.routeReason
	if e.opts.Explain {
		rep.Explain = e.buildExplain(q.String(), q.Op.String(), obsv.TraceIDFromContext(ctx), rc, rep.Stats)
	}
	e.appendJournal(ctx, op, q.String(), rep.Answers, rep.Metrics, nil, start, dur, anomaly, bundle, rc)
	if sp != nil {
		sp.SetInt("answers", int64(len(rep.Answers)))
		sp.SetInt("sat_calls", rep.Stats.SATCalls)
		sp.End()
	}
	return rep, nil
}

// rangeAnswers routes one call: the planner picks the executor, the
// route is stamped on the recorder exactly once (so the per-route
// counters sum to the calls served), and a rewrite that rejects itself
// mid-execution on a data-dependent property falls back to the solver
// in auto mode.
func (e *Engine) rangeAnswers(ctx context.Context, q cq.AggQuery, rc *recorder) (*Report, error) {
	d := e.planner.Decide(q)
	if d.Route == planner.RouteRewrite {
		rep, err := e.rewriteRange(ctx, q, d.Plan, rc)
		switch {
		case err == nil:
			rc.routed(planner.RouteRewrite, "", d.PlanCached)
			return rep, nil
		case !errors.Is(err, conquer.ErrNotInClass):
			// Real failure (cancellation, timeout) on the rewrite route.
			rc.routed(planner.RouteRewrite, "", d.PlanCached)
			return nil, err
		case e.opts.Planner == planner.ModeRewrite:
			rc.routed(planner.RouteRewrite, "", d.PlanCached)
			return nil, err
		default:
			// Data-dependent rejection discovered at execution time:
			// fall through to the solver.
			d = planner.Decision{Route: planner.RouteSAT,
				Reason: "runtime fallback: " + planner.TrimReason(err), PlanCached: d.PlanCached}
		}
	}
	if e.opts.Planner == planner.ModeRewrite {
		rc.routed(planner.RouteSAT, d.Reason, d.PlanCached)
		return nil, fmt.Errorf("%w: %s", planner.ErrRewriteUnavailable, d.Reason)
	}
	rc.routed(planner.RouteSAT, d.Reason, d.PlanCached)
	if q.Scalar() {
		rep := &Report{}
		ans, err := e.scalarRange(ctx, q, nil, rc)
		if err != nil {
			return nil, err
		}
		rep.Answers = []GroupAnswer{{Key: db.Tuple{}, Range: ans}}
		return rep, nil
	}
	return e.groupedRange(ctx, q, rc)
}

// constraintContext is the per-instance constraint structure shared by
// all queries.
type constraintContext struct {
	mode ConstraintMode

	// Keys mode.
	groupOf   []int // fact -> key-equal group index
	groups    []db.KeyEqualGroup
	groupSafe []bool // group has a single member

	// DC mode.
	violations []constraints.Violation
	nearIdx    *constraints.NearViolationIndex
	// adj lists, per fact, the other facts sharing a violation with it.
	adj [][]db.FactID

	buildTime time.Duration

	// Provenance of the build, surfaced in explain reports and journal
	// lines: whether the DC violations came from the package-wide memo,
	// and how the DC set split between the key-aware fast path and the
	// generic route (zero values in keys mode).
	consCacheHit bool
	fastRels     int
	genericDCs   int
}

// context lazily builds the constraint context (concurrency-safe).
func (e *Engine) context() *constraintContext {
	e.ctxOnce.Do(func() { e.ctx = e.buildContext() })
	return e.ctx
}

// buildContext performs the actual (one-time) construction.
func (e *Engine) buildContext() *constraintContext {
	start := time.Now()
	ctx := &constraintContext{mode: e.opts.Mode}
	n := e.in.NumFacts()
	switch e.opts.Mode {
	case KeysMode:
		if e.opts.DisableFrontendOpt {
			ctx.groups = e.in.KeyEqualGroupsUncached()
		} else {
			ctx.groups = e.in.KeyEqualGroups()
		}
		ctx.groupOf = make([]int, n)
		ctx.groupSafe = make([]bool, len(ctx.groups))
		for gi, g := range ctx.groups {
			ctx.groupSafe[gi] = len(g.Facts) == 1
			for _, f := range g.Facts {
				ctx.groupOf[f] = gi
			}
		}
	case DCMode:
		if e.opts.DisableFrontendOpt {
			ctx.violations = constraints.MinimalViolationsGeneric(e.eval, e.opts.DCs)
			ctx.nearIdx = constraints.BuildNearViolations(ctx.violations, n)
			ctx.genericDCs = len(e.opts.DCs)
		} else {
			ctx.violations, ctx.nearIdx, ctx.consCacheHit = constraints.CachedConstraintsInfo(e.eval, e.opts.DCs)
			ctx.fastRels, ctx.genericDCs = constraints.FastPathInfo(e.in.Schema(), e.opts.DCs)
		}
		ctx.adj = make([][]db.FactID, n)
		for _, v := range ctx.violations {
			for _, f := range v {
				for _, g := range v {
					if f != g {
						ctx.adj[f] = append(ctx.adj[f], g)
					}
				}
			}
		}
	}
	ctx.buildTime = time.Since(start)
	return ctx
}

// safe reports whether the fact survives in every repair.
func (ctx *constraintContext) safe(f db.FactID) bool {
	switch ctx.mode {
	case KeysMode:
		return ctx.groupSafe[ctx.groupOf[f]]
	default:
		return ctx.nearIdx.Safe(f)
	}
}

// allSafe reports whether every fact of the witness is safe.
func (ctx *constraintContext) allSafe(facts []db.FactID) bool {
	for _, f := range facts {
		if !ctx.safe(f) {
			return false
		}
	}
	return true
}

// closure expands the seed facts to the set whose repair behaviour is
// entangled with them: key-equal siblings (keys mode) or the connected
// component under shared minimal violations (DC mode). The hard clauses
// built over the closure induce exactly the repairs of the sub-instance,
// which factor out of the rest of the database.
func (ctx *constraintContext) closure(seed map[db.FactID]bool) []db.FactID {
	var stack []db.FactID
	inSet := map[db.FactID]bool{}
	push := func(f db.FactID) {
		if !inSet[f] {
			inSet[f] = true
			stack = append(stack, f)
		}
	}
	for f := range seed {
		push(f)
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		switch ctx.mode {
		case KeysMode:
			for _, g := range ctx.groups[ctx.groupOf[f]].Facts {
				push(g)
			}
		case DCMode:
			for _, g := range ctx.adj[f] {
				push(g)
			}
		}
	}
	out := make([]db.FactID, 0, len(inSet))
	for f := range inSet {
		out = append(out, f)
	}
	sortFactIDs(out)
	return out
}

func sortFactIDs(ids []db.FactID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
