package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/maxsat"
)

// keyConflictInstance builds R(k,g,v) with one violated key per group:
// no consistent-part shortcut applies, every range needs the solver.
func keyConflictInstance(t *testing.T) *db.Instance {
	t.Helper()
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindInt},
			{Name: "g", Kind: db.KindString},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	in := db.NewInstance(s)
	in.MustInsert("R", db.Int(1), db.Str("a"), db.Int(1))
	in.MustInsert("R", db.Int(1), db.Str("a"), db.Int(2))
	in.MustInsert("R", db.Int(2), db.Str("b"), db.Int(3))
	in.MustInsert("R", db.Int(2), db.Str("b"), db.Int(5))
	return in
}

func sameReports(t *testing.T, label string, seq, par *Report) {
	t.Helper()
	if len(seq.Answers) != len(par.Answers) {
		t.Fatalf("%s: sequential %d answers, parallel %d", label, len(seq.Answers), len(par.Answers))
	}
	for i := range seq.Answers {
		a, b := seq.Answers[i], par.Answers[i]
		if a.Key.Compare(b.Key) != 0 {
			t.Fatalf("%s: answer %d key %v vs %v", label, i, a.Key, b.Key)
		}
		if !valuesMatch(a.GLB, b.GLB) || !valuesMatch(a.LUB, b.LUB) {
			t.Fatalf("%s: answer %d range [%v,%v] vs [%v,%v]", label, i, a.GLB, a.LUB, b.GLB, b.LUB)
		}
		if a.EmptyPossible != b.EmptyPossible || a.FromConsistentPart != b.FromConsistentPart {
			t.Fatalf("%s: answer %d flags differ: %+v vs %+v", label, i, a.Range, b.Range)
		}
	}
}

// TestParallelMatchesSequential is the determinism contract of the
// worker pool: for every operator, scalar and grouped, the parallel
// engine must return byte-identical answers in the same order as the
// sequential one.
func TestParallelMatchesSequential(t *testing.T) {
	ops := []cq.AggOp{cq.CountStar, cq.Sum, cq.CountDistinct, cq.Min}
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for seed := 1; seed <= trials; seed++ {
		r := rng(seed*48271 + 11)
		in := randomInstance(&r)
		seqEng, err := New(in, Options{Mode: KeysMode, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		parEng, err := New(in, Options{Mode: KeysMode, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			for _, grouped := range []bool{false, true} {
				for qi, q := range []cq.AggQuery{singleRelQuery(op, grouped), joinQuery(op, grouped)} {
					label := fmt.Sprintf("seed %d op %v grouped %v query %d", seed, op, grouped, qi)
					seq, err := seqEng.RangeAnswers(q)
					if err != nil {
						t.Fatalf("%s: sequential: %v", label, err)
					}
					par, err := parEng.RangeAnswers(q)
					if err != nil {
						t.Fatalf("%s: parallel: %v", label, err)
					}
					sameReports(t, label, seq, par)
				}
			}
		}
	}
}

// TestParallelConsistentAnswersMatch covers the sharded candidate
// checks of Algorithm 2's SAT path.
func TestParallelConsistentAnswersMatch(t *testing.T) {
	u := cq.Single(cq.CQ{
		Head: []string{"g"},
		Atoms: []cq.Atom{
			{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}},
			{Rel: "S", Args: []cq.Term{cq.V("k"), cq.V("w")}},
		},
	})
	trials := 20
	if testing.Short() {
		trials = 6
	}
	for seed := 1; seed <= trials; seed++ {
		r := rng(seed*69621 + 3)
		in := randomInstance(&r)
		seqEng, _ := New(in, Options{Mode: KeysMode, Parallelism: 1})
		parEng, _ := New(in, Options{Mode: KeysMode, Parallelism: 4})
		seq, _, err := seqEng.ConsistentAnswers(u)
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		par, _, err := parEng.ConsistentAnswers(u)
		if err != nil {
			t.Fatalf("seed %d: parallel: %v", seed, err)
		}
		if len(seq) != len(par) {
			t.Fatalf("seed %d: %d vs %d consistent answers", seed, len(seq), len(par))
		}
		for i := range seq {
			if seq[i].Compare(par[i]) != 0 {
				t.Fatalf("seed %d: answer %d differs: %v vs %v", seed, i, seq[i], par[i])
			}
		}
	}
}

func TestPreCanceledContextReturnsErrTimeout(t *testing.T) {
	in := keyConflictInstance(t)
	for _, workers := range []int{1, 4} {
		eng, err := New(in, Options{Mode: KeysMode, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err = eng.RangeAnswersContext(ctx, singleRelQuery(cq.Sum, true))
		if err == nil {
			t.Fatalf("workers=%d: canceled context should error", workers)
		}
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("workers=%d: error %v should wrap ErrTimeout", workers, err)
		}
		if errors.Is(err, ErrBudget) {
			t.Errorf("workers=%d: cancellation must not look like a budget error", workers)
		}
	}
}

func TestTimeoutOptionReturnsErrTimeout(t *testing.T) {
	in := keyConflictInstance(t)
	eng, err := New(in, Options{Mode: KeysMode, Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = eng.RangeAnswers(singleRelQuery(cq.Sum, true))
	if err == nil {
		t.Fatal("nanosecond timeout should error")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("error %v should wrap ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("timeout took %v to surface", elapsed)
	}
}

// TestCancelMidQuery cancels from inside the first group's MaxSAT solve
// (the progress callback runs synchronously in the solver); the
// remaining group is then refused by the pool's context check, so the
// call must surface ErrTimeout rather than a partial report.
func TestCancelMidQuery(t *testing.T) {
	in := keyConflictInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng, err := New(in, Options{
		Mode:        KeysMode,
		Parallelism: 1,
		MaxSAT: maxsat.Options{
			ProgressEvery: 1,
			Progress:      func(maxsat.ProgressInfo) { cancel() },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.RangeAnswersContext(ctx, singleRelQuery(cq.Sum, true))
	if err == nil {
		t.Fatal("mid-solve cancellation should error")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("error %v should wrap ErrTimeout", err)
	}
}

func TestConsistentAnswersTimeout(t *testing.T) {
	in := keyConflictInstance(t)
	eng, err := New(in, Options{Mode: KeysMode, Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	u := cq.Single(cq.CQ{
		Head:  []string{"g"},
		Atoms: []cq.Atom{{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}}},
	})
	_, _, err = eng.ConsistentAnswersContext(context.Background(), u)
	if err == nil {
		t.Skip("instance solved before the deadline check; nothing to assert")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("error %v should wrap ErrTimeout", err)
	}
}

func TestFactSetKeyOrderInsensitive(t *testing.T) {
	a := []db.FactID{1, 2, 3}
	b := []db.FactID{3, 1, 2}
	if factSetKey(a) != factSetKey(b) {
		t.Error("permuted fact sets should share a key")
	}
	if factSetKey(a) == factSetKey([]db.FactID{1, 2, 4}) {
		t.Error("distinct fact sets should not collide")
	}
	if a[0] != 1 || a[1] != 2 || a[2] != 3 {
		t.Error("factSetKey must not mutate its argument")
	}
}

func TestDedupFactSetsPermutedDuplicates(t *testing.T) {
	ws := []cq.Witness{
		{Facts: []db.FactID{1, 2}},
		{Facts: []db.FactID{2, 1}},
		{Facts: []db.FactID{2, 3}},
	}
	out := dedupFactSets(ws)
	if len(out) != 2 {
		t.Fatalf("dedup kept %d sets, want 2 ({1,2} in either order is one set)", len(out))
	}
}
