package core

import (
	"fmt"
	"testing"

	"aggcavsat/internal/constraints"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/exhaustive"
	"aggcavsat/internal/sat"
)

// TestProposition51ModelRepairBijection validates Proposition V.1 (and
// its keys-mode analogue) directly: the satisfying assignments of the
// hard repair clauses, projected onto the fact variables, are in
// one-to-one correspondence with the repairs of the instance. Checked by
// enumerating both sides on random small instances.
func TestProposition51ModelRepairBijection(t *testing.T) {
	for seed := 1; seed <= 25; seed++ {
		r := rng(seed*31337 + 11)
		in := randomInstance(&r)

		// Keys mode.
		checkBijection(t, fmt.Sprintf("keys seed %d", seed), in, Options{Mode: KeysMode},
			func(visit func(keep []bool) bool) error {
				return exhaustive.RepairsKeys(in, visit)
			})

		// DC mode (keys expressed as FDs plus a value-ban DC).
		dcs, err := constraints.SchemaKeyDCs(in.Schema())
		if err != nil {
			t.Fatal(err)
		}
		dcs = append(dcs, constraints.DC{
			Name:  "ban",
			Atoms: []cq.Atom{{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}}},
			Conds: []cq.Condition{{Left: cq.V("v"), Op: cq.OpEQ, Right: cq.C(db.Int(-4))}},
		})
		eng, err := New(in, Options{Mode: DCMode, DCs: dcs})
		if err != nil {
			t.Fatal(err)
		}
		violations := constraints.MinimalViolations(cq.NewEvaluator(in), dcs)
		checkBijectionEngine(t, fmt.Sprintf("dc seed %d", seed), eng,
			func(visit func(keep []bool) bool) error {
				return exhaustive.RepairsDCs(in, violations, visit)
			})
	}
}

func checkBijection(t *testing.T, label string, in *db.Instance, opts Options,
	repairs func(func(keep []bool) bool) error) {
	t.Helper()
	eng, err := New(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkBijectionEngine(t, label, eng, repairs)
}

func checkBijectionEngine(t *testing.T, label string, eng *Engine,
	repairs func(func(keep []bool) bool) error) {
	t.Helper()
	in := eng.Instance()
	ctx := eng.context()

	// Encode every fact.
	seed := map[db.FactID]bool{}
	for f := 0; f < in.NumFacts(); f++ {
		seed[db.FactID(f)] = true
	}
	facts := ctx.closure(seed)
	enc := newEncoder(ctx, facts)

	solver := sat.New()
	if !solver.AddFormulaHard(enc.formula) {
		t.Fatalf("%s: hard clauses unsatisfiable", label)
	}
	solver.EnsureVars(enc.formula.NumVars())

	// Collect models projected on the fact variables (facts are interned
	// as variables 1..len(facts) in encoder order).
	models := map[string]bool{}
	solver.EnumerateModels(len(facts), 1<<20, func(model []bool) bool {
		key := make([]byte, len(facts))
		for i := range facts {
			if model[i+1] {
				key[i] = '1'
			} else {
				key[i] = '0'
			}
		}
		models[string(key)] = true
		return true
	})

	// Collect repairs projected on the same fact order.
	repairSet := map[string]bool{}
	err := repairs(func(keep []bool) bool {
		key := make([]byte, len(facts))
		for i, f := range facts {
			if keep[f] {
				key[i] = '1'
			} else {
				key[i] = '0'
			}
		}
		repairSet[string(key)] = true
		return true
	})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}

	if len(models) != len(repairSet) {
		t.Fatalf("%s: %d satisfying assignments vs %d repairs", label, len(models), len(repairSet))
	}
	for k := range repairSet {
		if !models[k] {
			t.Fatalf("%s: repair %s has no corresponding model", label, k)
		}
	}
}

// TestPossibleAnswers validates the possible-answer computation against
// exhaustive repair enumeration.
func TestPossibleAnswers(t *testing.T) {
	for seed := 1; seed <= 30; seed++ {
		r := rng(seed*911 + 5)
		in := randomInstance(&r)
		u := cq.Single(cq.CQ{
			Head: []string{"g"},
			Atoms: []cq.Atom{
				{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}},
				{Rel: "S", Args: []cq.Term{cq.V("k"), cq.V("w")}},
			},
		})
		eng, err := New(in, Options{Mode: KeysMode})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.PossibleAnswers(u)
		if err != nil {
			t.Fatal(err)
		}

		// Exhaustive: union of answers across repairs.
		want := map[string]bool{}
		e := cq.NewEvaluator(in)
		rows := e.EvalUCQ(u)
		err = exhaustive.RepairsKeys(in, func(keep []bool) bool {
			for _, row := range rows {
				alive := true
				for _, f := range row.Facts {
					if !keep[f] {
						alive = false
						break
					}
				}
				if alive {
					want[row.Head.Key([]int{0})] = true
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d possible answers, exhaustive %d", seed, len(got), len(want))
		}
		for _, g := range got {
			if !want[g.Key([]int{0})] {
				t.Fatalf("seed %d: spurious possible answer %v", seed, g)
			}
		}
	}
}

// TestPossibleContainsConsistent checks CONS(q) ⊆ POSS(q) on random
// instances (a basic sanity property of the two semantics).
func TestPossibleContainsConsistent(t *testing.T) {
	for seed := 1; seed <= 15; seed++ {
		r := rng(seed*77 + 1)
		in := randomInstance(&r)
		u := cq.Single(cq.CQ{
			Head:  []string{"g"},
			Atoms: []cq.Atom{{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}}},
		})
		eng, _ := New(in, Options{Mode: KeysMode})
		cons, _, err := eng.ConsistentAnswers(u)
		if err != nil {
			t.Fatal(err)
		}
		poss, _, err := eng.PossibleAnswers(u)
		if err != nil {
			t.Fatal(err)
		}
		possSet := map[string]bool{}
		for _, p := range poss {
			possSet[p.Key([]int{0})] = true
		}
		for _, c := range cons {
			if !possSet[c.Key([]int{0})] {
				t.Fatalf("seed %d: consistent answer %v not possible", seed, c)
			}
		}
	}
}

// TestEnumerateModelsSmall checks the enumerator against a known count.
func TestEnumerateModelsSmall(t *testing.T) {
	s := sat.New()
	s.AddClause(1, 2) // x1 ∨ x2 over 2 vars: 3 models
	count := s.EnumerateModels(2, 0, nil)
	if count != 3 {
		t.Fatalf("models = %d, want 3", count)
	}
	// Limit respected.
	s2 := sat.New()
	s2.AddClause(1, 2, 3)
	if got := s2.EnumerateModels(3, 2, nil); got != 2 {
		t.Fatalf("limited models = %d, want 2", got)
	}
}
