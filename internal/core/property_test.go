package core

import (
	"fmt"
	"testing"

	"aggcavsat/internal/constraints"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/exhaustive"
	"aggcavsat/internal/maxsat"
)

// rng is a tiny xorshift64* generator for deterministic random tests.
type rng uint64

func (r *rng) next(n int) int {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return int(x % uint64(n))
}

// randomInstance builds a small two-relation instance with controlled
// key violations: R(k, g, v) key k and S(k, w) key k, joinable on k.
func randomInstance(r *rng) *db.Instance {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindInt},
			{Name: "g", Kind: db.KindString},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "S",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindInt},
			{Name: "w", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	in := db.NewInstance(s)
	// Instances are sets of facts: never insert the same tuple twice
	// (key-repair semantics and DC-repair semantics only coincide on
	// duplicate-free instances).
	seen := map[string]bool{}
	insertOnce := func(rel string, vals ...db.Value) {
		k := rel + "|" + db.Tuple(vals).Key(positionsFor(len(vals)))
		if seen[k] {
			return
		}
		seen[k] = true
		in.MustInsert(rel, vals...)
	}
	groupNames := []string{"a", "b"}
	nKeys := 2 + r.next(3) // 2..4 distinct R keys
	for k := 0; k < nKeys; k++ {
		alts := 1 + r.next(3) // group sizes 1..3
		for a := 0; a < alts; a++ {
			insertOnce("R",
				db.Int(int64(k)),
				db.Str(groupNames[r.next(len(groupNames))]),
				db.Int(int64(r.next(9)-4))) // values in [-4, 4]
		}
	}
	nSKeys := 1 + r.next(3)
	for k := 0; k < nSKeys; k++ {
		alts := 1 + r.next(2)
		for a := 0; a < alts; a++ {
			insertOnce("S", db.Int(int64(k)), db.Int(int64(r.next(7)-3)))
		}
	}
	return in
}

func positionsFor(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// joinQuery returns SELECT f(v) FROM R ⋈ S [GROUP BY g].
func joinQuery(op cq.AggOp, grouped bool) cq.AggQuery {
	q := cq.AggQuery{
		Op:     op,
		AggVar: "v",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{
				{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}},
				{Rel: "S", Args: []cq.Term{cq.V("k"), cq.V("w")}},
			},
		}),
	}
	if grouped {
		q.GroupBy = []string{"g"}
	}
	return q
}

// singleRelQuery returns SELECT f(v) FROM R [GROUP BY g].
func singleRelQuery(op cq.AggOp, grouped bool) cq.AggQuery {
	q := cq.AggQuery{
		Op:     op,
		AggVar: "v",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}}},
		}),
	}
	if grouped {
		q.GroupBy = []string{"g"}
	}
	return q
}

func compareReports(t *testing.T, label string, got *Report, want []exhaustive.GroupRange) {
	t.Helper()
	if len(got.Answers) != len(want) {
		t.Fatalf("%s: %d answers, exhaustive has %d\n got: %+v\nwant: %+v",
			label, len(got.Answers), len(want), got.Answers, want)
	}
	for i, a := range got.Answers {
		w := want[i]
		if a.Key.Compare(w.Key) != 0 {
			t.Fatalf("%s: answer %d key %v, want %v", label, i, a.Key, w.Key)
		}
		if !valuesMatch(a.GLB, w.GLB) || !valuesMatch(a.LUB, w.LUB) {
			t.Fatalf("%s: answer %d (key %v) range [%v,%v], exhaustive [%v,%v]",
				label, i, a.Key, a.GLB, a.LUB, w.GLB, w.LUB)
		}
		if a.EmptyPossible != w.EmptyPossible {
			t.Fatalf("%s: answer %d EmptyPossible %v, exhaustive %v",
				label, i, a.EmptyPossible, w.EmptyPossible)
		}
	}
}

func valuesMatch(a, b db.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	return a.Equal(b)
}

// TestRandomAgainstExhaustiveKeys is the central soundness test of the
// whole system: on hundreds of random inconsistent instances, for every
// supported operator, scalar and grouped, the SAT pipeline must agree
// exactly with brute-force repair enumeration.
func TestRandomAgainstExhaustiveKeys(t *testing.T) {
	ops := []cq.AggOp{cq.CountStar, cq.Count, cq.Sum, cq.CountDistinct, cq.SumDistinct, cq.Min, cq.Max}
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for seed := 1; seed <= trials; seed++ {
		r := rng(seed*2654435761 + 1)
		in := randomInstance(&r)
		eng, err := New(in, Options{Mode: KeysMode})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			for _, grouped := range []bool{false, true} {
				for qi, q := range []cq.AggQuery{singleRelQuery(op, grouped), joinQuery(op, grouped)} {
					label := fmt.Sprintf("seed %d op %v grouped %v query %d", seed, op, grouped, qi)
					want, err := exhaustive.RangeAnswers(in, q, exhaustive.Options{Mode: exhaustive.ModeKeys})
					if err != nil {
						t.Fatalf("%s: exhaustive: %v", label, err)
					}
					got, err := eng.RangeAnswers(q)
					if err != nil {
						t.Fatalf("%s: engine: %v", label, err)
					}
					compareReports(t, label, got, want)
				}
			}
		}
	}
}

// TestRandomAgainstExhaustiveDCs does the same under denial constraints:
// the schema keys expressed as DCs plus a value-ban DC, exercising
// Reduction V.1 end to end (including maximality clauses).
func TestRandomAgainstExhaustiveDCs(t *testing.T) {
	ops := []cq.AggOp{cq.CountStar, cq.Sum, cq.CountDistinct, cq.Min}
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for seed := 1; seed <= trials; seed++ {
		r := rng(seed*40503 + 7)
		in := randomInstance(&r)
		dcs, err := constraints.SchemaKeyDCs(in.Schema())
		if err != nil {
			t.Fatal(err)
		}
		// Value ban: no R-tuple may carry v = -4 (a singleton DC, like
		// the Medigap webAddr constraint).
		dcs = append(dcs, constraints.DC{
			Name:  "ban-minus4",
			Atoms: []cq.Atom{{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}}},
			Conds: []cq.Condition{{Left: cq.V("v"), Op: cq.OpEQ, Right: cq.C(db.Int(-4))}},
		})
		eng, err := New(in, Options{Mode: DCMode, DCs: dcs})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			for _, grouped := range []bool{false, true} {
				q := joinQuery(op, grouped)
				label := fmt.Sprintf("dc seed %d op %v grouped %v", seed, op, grouped)
				want, err := exhaustive.RangeAnswers(in, q, exhaustive.Options{Mode: exhaustive.ModeDCs, DCs: dcs})
				if err != nil {
					t.Fatalf("%s: exhaustive: %v", label, err)
				}
				got, err := eng.RangeAnswers(q)
				if err != nil {
					t.Fatalf("%s: engine: %v", label, err)
				}
				compareReports(t, label, got, want)
			}
		}
	}
}

// TestKeysAsDCsAgree checks that KeysMode and DCMode with the equivalent
// DC set produce identical answers (the Section V claim that α-clause
// replacement preserves the reduction).
func TestKeysAsDCsAgree(t *testing.T) {
	for seed := 1; seed <= 20; seed++ {
		r := rng(seed*7919 + 3)
		in := randomInstance(&r)
		dcs, err := constraints.SchemaKeyDCs(in.Schema())
		if err != nil {
			t.Fatal(err)
		}
		keyEng, _ := New(in, Options{Mode: KeysMode})
		dcEng, err := New(in, Options{Mode: DCMode, DCs: dcs})
		if err != nil {
			t.Fatal(err)
		}
		for _, grouped := range []bool{false, true} {
			q := joinQuery(cq.Sum, grouped)
			a, err := keyEng.RangeAnswers(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := dcEng.RangeAnswers(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Answers) != len(b.Answers) {
				t.Fatalf("seed %d: %d vs %d answers", seed, len(a.Answers), len(b.Answers))
			}
			for i := range a.Answers {
				if !valuesMatch(a.Answers[i].GLB, b.Answers[i].GLB) ||
					!valuesMatch(a.Answers[i].LUB, b.Answers[i].LUB) {
					t.Fatalf("seed %d answer %d: keys [%v,%v] vs DCs [%v,%v]",
						seed, i,
						a.Answers[i].GLB, a.Answers[i].LUB,
						b.Answers[i].GLB, b.Answers[i].LUB)
				}
			}
		}
	}
}

// TestSolversAgree cross-checks the RC2 and LSU MaxSAT back ends through
// the full reduction pipeline.
func TestSolversAgree(t *testing.T) {
	for seed := 1; seed <= 15; seed++ {
		r := rng(seed*104729 + 11)
		in := randomInstance(&r)
		rc2, _ := New(in, Options{Mode: KeysMode, MaxSAT: maxsat.Options{Algorithm: maxsat.AlgRC2}})
		lsu, _ := New(in, Options{Mode: KeysMode, MaxSAT: maxsat.Options{Algorithm: maxsat.AlgLSU}})
		q := joinQuery(cq.Sum, true)
		a, err := rc2.RangeAnswers(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := lsu.RangeAnswers(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Answers) != len(b.Answers) {
			t.Fatalf("seed %d: answer counts differ", seed)
		}
		for i := range a.Answers {
			if !valuesMatch(a.Answers[i].GLB, b.Answers[i].GLB) ||
				!valuesMatch(a.Answers[i].LUB, b.Answers[i].LUB) {
				t.Fatalf("seed %d: rc2 vs lsu mismatch at %d", seed, i)
			}
		}
	}
}

// TestConsistentAnswersAgainstExhaustive verifies CONS(q) against repair
// enumeration for the underlying (non-aggregate) query.
func TestConsistentAnswersAgainstExhaustive(t *testing.T) {
	for seed := 1; seed <= 40; seed++ {
		r := rng(seed*6700417 + 5)
		in := randomInstance(&r)
		u := cq.Single(cq.CQ{
			Head: []string{"g"},
			Atoms: []cq.Atom{
				{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}},
				{Rel: "S", Args: []cq.Term{cq.V("k"), cq.V("w")}},
			},
		})
		eng, _ := New(in, Options{Mode: KeysMode})
		got, _, err := eng.ConsistentAnswers(u)
		if err != nil {
			t.Fatal(err)
		}
		// Exhaustive: intersect answers across repairs.
		var want []db.Tuple
		first := true
		inter := map[string]db.Tuple{}
		e := cq.NewEvaluator(in)
		rows := e.EvalUCQ(u)
		err = exhaustive.RepairsKeys(in, func(keep []bool) bool {
			local := map[string]db.Tuple{}
			for _, row := range rows {
				alive := true
				for _, f := range row.Facts {
					if !keep[f] {
						alive = false
						break
					}
				}
				if alive {
					local[row.Head.Key([]int{0})] = row.Head
				}
			}
			if first {
				inter = local
				first = false
				return true
			}
			for k := range inter {
				if _, ok := local[k]; !ok {
					delete(inter, k)
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range inter {
			want = append(want, v)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: CONS size %d, exhaustive %d (%v vs %v)", seed, len(got), len(want), got, want)
		}
		wantSet := map[string]bool{}
		for _, w := range want {
			wantSet[w.Key([]int{0})] = true
		}
		for _, g := range got {
			if !wantSet[g.Key([]int{0})] {
				t.Fatalf("seed %d: spurious consistent answer %v", seed, g)
			}
		}
	}
}
