package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"aggcavsat/internal/maxsat"
	"aggcavsat/internal/obsv"
)

// bundleCapture collects OnAnomaly deliveries; the hook can fire from
// the engine goroutine while the test inspects, so it locks.
type bundleCapture struct {
	mu      sync.Mutex
	bundles []*obsv.Bundle
}

func (c *bundleCapture) hook() func(*obsv.Bundle) {
	return func(b *obsv.Bundle) {
		c.mu.Lock()
		c.bundles = append(c.bundles, b)
		c.mu.Unlock()
	}
}

func (c *bundleCapture) all() []*obsv.Bundle {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*obsv.Bundle(nil), c.bundles...)
}

func TestFlightBundleOnSlowQuery(t *testing.T) {
	// SlowQuery = 1ns marks every successful query as anomalous, which
	// makes the dump deterministic without injecting failures. The
	// progress callback and the flight recorder see the same reports, so
	// the bundle's last "progress" event must match the last callback.
	var last maxsat.ProgressInfo
	var lastMu sync.Mutex
	capt := &bundleCapture{}
	e, err := New(bank(), Options{
		Mode: KeysMode,
		// Sequential: with parallel component solves the "last" report
		// seen by the callback and by the recorder could interleave.
		Parallelism: 1,
		SlowQuery:   time.Nanosecond,
		OnAnomaly:   capt.hook(),
		MaxSAT: maxsat.Options{
			ProgressEvery: 1,
			Progress: func(p maxsat.ProgressInfo) {
				lastMu.Lock()
				last = p
				lastMu.Unlock()
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.RangeAnswers(paperSumQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Answers) != 1 {
		t.Fatalf("answers = %+v", rep.Answers)
	}

	bundles := capt.all()
	if len(bundles) != 1 {
		t.Fatalf("OnAnomaly fired %d times, want 1", len(bundles))
	}
	b := bundles[0]
	if b.Reason != "slow" || b.Err != "" {
		t.Errorf("bundle = reason %q err %q, want slow/\"\"", b.Reason, b.Err)
	}
	if b.Query != "range_answers/SUM" {
		t.Errorf("bundle query = %q", b.Query)
	}
	if len(b.Events) == 0 {
		t.Fatal("bundle has no flight events")
	}
	kinds := map[string]int{}
	var lastProgress *obsv.BundleEvent
	for i := range b.Events {
		kinds[b.Events[i].Kind]++
		if b.Events[i].Kind == "progress" {
			lastProgress = &b.Events[i]
		}
	}
	for _, want := range []string{"phase", "cnf", "progress"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in bundle (kinds: %v)", want, kinds)
		}
	}
	lastMu.Lock()
	want := last
	lastMu.Unlock()
	if lastProgress == nil {
		t.Fatal("no progress event despite a registered progress callback")
	}
	if got := lastProgress.Attrs["conflicts"].(int64); got != want.Conflicts {
		t.Errorf("last progress event conflicts = %d, want %d (last callback)", got, want.Conflicts)
	}
	if got := lastProgress.Attrs["sat_calls"].(int64); got != want.SATCalls {
		t.Errorf("last progress event sat_calls = %d, want %d (last callback)", got, want.SATCalls)
	}
	// The bundle's metric snapshot is the call-local registry of the
	// solve that was dumped.
	if b.Metrics.Counters[obsv.MetricSATCalls] == 0 {
		t.Error("bundle metric snapshot has no SAT calls")
	}
	if b.Resources.AllocBytes < 0 {
		t.Errorf("bundle AllocBytes = %d, want >= 0 (monotone counter)", b.Resources.AllocBytes)
	}
	if b.Resources.HeapBytes <= 0 {
		t.Error("bundle resource delta shows no live heap")
	}
}

func TestFlightBundleOnTimeout(t *testing.T) {
	capt := &bundleCapture{}
	e, err := New(bank(), Options{Mode: KeysMode, OnAnomaly: capt.hook()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // injected timeout: the call dies on its first context check
	_, qerr := e.RangeAnswersContext(ctx, paperSumQuery())
	if !errors.Is(qerr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", qerr)
	}
	bundles := capt.all()
	if len(bundles) != 1 {
		t.Fatalf("OnAnomaly fired %d times, want 1", len(bundles))
	}
	b := bundles[0]
	if b.Reason != "timeout" {
		t.Errorf("bundle reason = %q, want timeout", b.Reason)
	}
	if b.Err == "" {
		t.Error("timeout bundle carries no error text")
	}
}

func TestFlightDisabledWithoutHook(t *testing.T) {
	// Without OnAnomaly no recorder is allocated: the hot path must pay
	// only nil checks (the no-regression acceptance criterion).
	e := mustEngine(t, bank())
	rc, _ := e.newRecorder()
	if rc.flight != nil {
		t.Fatal("flight recorder allocated without an OnAnomaly hook")
	}
	ctx, fl := e.startFlight(context.Background(), "q", rc.flight)
	if fl != nil {
		t.Fatal("startFlight returned a flight without a recorder")
	}
	if obsv.FlightRecorderFrom(ctx) != nil {
		t.Fatal("context carries a flight recorder while disabled")
	}
	fl.finish("error", errors.New("boom"), obsv.NewRegistry()) // nil-safe no-op
}

func TestStatsResourceAccounting(t *testing.T) {
	// The bank instance is tiny: its phases allocate from cached spans,
	// which the runtime's consistent heap stats only surface at span
	// granularity, so the alloc deltas can legitimately read zero here.
	// This asserts the invariants (non-negative, live heap populated);
	// TestPhaseResourcePlumbing pins down positive attribution.
	e := mustEngine(t, bank())
	rep, err := e.RangeAnswers(groupedSumQuery())
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	for name, v := range map[string]int64{
		"WitnessAllocBytes": st.WitnessAllocBytes,
		"EncodeAllocBytes":  st.EncodeAllocBytes,
		"SolveAllocBytes":   st.SolveAllocBytes,
		"GCCycles":          st.GCCycles,
	} {
		if v < 0 {
			t.Errorf("%s = %d, want >= 0", name, v)
		}
	}
	if st.HeapBytes <= 0 {
		t.Errorf("HeapBytes = %d, want > 0 (live heap is never empty)", st.HeapBytes)
	}
}

func TestPhaseResourcePlumbing(t *testing.T) {
	// A phase that allocates ~8 MiB in large objects (which update the
	// runtime's consistent heap stats immediately) must land its bytes in
	// the phase counter and Stats field.
	e := mustEngine(t, bank())
	rc, local := e.newRecorder()
	pm := startPhase()
	hold := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		hold = append(hold, make([]byte, 128<<10))
	}
	rc.endEncode(pm)
	runtime.KeepAlive(hold)
	st := StatsFromSnapshot(local.Snapshot())
	if st.EncodeAllocBytes < 4<<20 {
		t.Errorf("EncodeAllocBytes = %d after ~8 MiB allocated in the phase, want >= 4 MiB", st.EncodeAllocBytes)
	}
	if st.HeapBytes <= 0 {
		t.Errorf("HeapBytes = %d, want > 0", st.HeapBytes)
	}
	if st.EncodeTime <= 0 {
		t.Errorf("EncodeTime = %v, want > 0", st.EncodeTime)
	}
}
