package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/planner"
)

// TestJournalOneLinePerCall: every engine call — grouped or scalar —
// appends exactly one wide-event line, stamped with the call's identity
// and phase totals.
func TestJournalOneLinePerCall(t *testing.T) {
	var buf bytes.Buffer
	j := obsv.NewJournal(&buf, 0)
	e, err := New(bank(), Options{Mode: KeysMode, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	const calls = 4
	var answers []GroupAnswer
	for i := 0; i < calls; i++ {
		rep, err := e.RangeAnswers(paperSumQuery())
		if err != nil {
			t.Fatal(err)
		}
		answers = rep.Answers
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := obsv.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != calls {
		t.Fatalf("journal has %d lines for %d calls", len(entries), calls)
	}
	first := entries[0]
	if first.Op != "range_answers/SUM" {
		t.Errorf("op = %q", first.Op)
	}
	if first.Fingerprint == "" || first.AnswerDigest == "" {
		t.Errorf("fingerprint/digest empty: %+v", first)
	}
	if first.Answers != len(answers) {
		t.Errorf("answers = %d, want %d", first.Answers, len(answers))
	}
	if first.Options.Mode != "keys" || first.Options.Algorithm == "" {
		t.Errorf("options = %+v", first.Options)
	}
	if first.SATCalls == 0 || first.TotalMS <= 0 {
		t.Errorf("counters not stamped: sat_calls=%d total_ms=%f", first.SATCalls, first.TotalMS)
	}
	if first.Anomaly != "" || first.Error != "" {
		t.Errorf("clean solve carries anomaly %q / error %q", first.Anomaly, first.Error)
	}
	// Same query, same instance: fingerprints and digests agree across
	// calls (the journal's group-by keys).
	for i, e := range entries[1:] {
		if e.Fingerprint != first.Fingerprint || e.AnswerDigest != first.AnswerDigest {
			t.Errorf("line %d fingerprint/digest drift: %+v", i+1, e)
		}
	}
	// A label on the context replaces the rendered query text.
	j2buf := &bytes.Buffer{}
	j2 := obsv.NewJournal(j2buf, 0)
	e2, err := New(bank(), Options{Mode: KeysMode, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := obsv.WithQueryLabel(context.Background(), "paper-sum")
	if _, err := e2.RangeAnswersContext(ctx, paperSumQuery()); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	labeled, err := obsv.ReadJournal(j2buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(labeled) != 1 || labeled[0].Query != "paper-sum" {
		t.Errorf("labeled line = %+v", labeled)
	}
}

// TestJournalDoesNotPerturbAnswers is the journal-on ≡ journal-off
// property: over random instances and aggregates, enabling the journal
// must not change a single range.
func TestJournalDoesNotPerturbAnswers(t *testing.T) {
	ops := []cq.AggOp{cq.Sum, cq.CountStar, cq.Min, cq.Max}
	for seed := 1; seed <= 4; seed++ {
		r := rng(seed * 1000003)
		in := randomInstance(&r)
		for _, op := range ops {
			for _, grouped := range []bool{false, true} {
				q := joinQuery(op, grouped)
				plain, err := New(in, Options{Mode: KeysMode})
				if err != nil {
					t.Fatal(err)
				}
				journaled, err := New(in, Options{Mode: KeysMode, Journal: obsv.NewJournal(io.Discard, 0)})
				if err != nil {
					t.Fatal(err)
				}
				want, err1 := plain.RangeAnswers(q)
				got, err2 := journaled.RangeAnswers(q)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("seed %d %s grouped=%v: errors diverge: %v vs %v", seed, op, grouped, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if !reflect.DeepEqual(want.Answers, got.Answers) {
					t.Errorf("seed %d %s grouped=%v: journal changed answers:\noff: %+v\non:  %+v",
						seed, op, grouped, want.Answers, got.Answers)
				}
			}
		}
	}
}

// TestJournalConcurrentSolves hammers one journal from parallel engine
// calls through a tiny queue (the -race target): appends may shed but
// must never block or race, and every call is accounted written or
// dropped.
func TestJournalConcurrentSolves(t *testing.T) {
	j := obsv.NewJournal(io.Discard, 2)
	e, err := New(bank(), Options{Mode: KeysMode, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := e.RangeAnswers(paperSumQuery()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := j.Written() + j.Dropped(); got != workers*per {
		t.Errorf("written+dropped = %d, want %d", got, workers*per)
	}
}

// TestJournalFlightLinkage checks both halves of the journal↔bundle
// cross-reference on an injected timeout: the journal line names the
// bundle file, and the bundle on disk names the journal.
func TestJournalFlightLinkage(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	j, err := obsv.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(bank(), Options{
		Mode:      KeysMode,
		Journal:   j,
		OnAnomaly: obsv.DumpDir(dir),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, qerr := e.RangeAnswersContext(ctx, paperSumQuery()); !errors.Is(qerr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", qerr)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := obsv.ReadJournalFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("journal lines = %d, want 1", len(entries))
	}
	line := entries[0]
	if line.Anomaly != "timeout" || line.Error == "" {
		t.Errorf("anomaly/error = %q/%q, want timeout with error text", line.Anomaly, line.Error)
	}
	if line.FlightBundle == "" {
		t.Fatal("journal line carries no flight bundle path")
	}
	raw, err := os.ReadFile(line.FlightBundle)
	if err != nil {
		t.Fatalf("bundle file from journal line: %v", err)
	}
	var bundle struct {
		Reason  string `json:"reason"`
		Journal string `json:"journal"`
		File    string `json:"file"`
	}
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatalf("bundle is not JSON: %v", err)
	}
	if bundle.Reason != "timeout" {
		t.Errorf("bundle reason = %q", bundle.Reason)
	}
	if bundle.Journal != jpath {
		t.Errorf("bundle journal = %q, want %q (reverse link)", bundle.Journal, jpath)
	}
	if bundle.File != line.FlightBundle {
		t.Errorf("bundle file = %q, journal line says %q", bundle.File, line.FlightBundle)
	}
	if !strings.HasPrefix(filepath.Base(bundle.File), "flight-") && !strings.Contains(bundle.File, dir) {
		t.Errorf("bundle file %q not under dump dir %q", bundle.File, dir)
	}
}

// TestJournalErrorLine: failed calls journal too — the replayed
// workload's error rate is reconstructible from the journal alone.
func TestJournalErrorLine(t *testing.T) {
	var buf bytes.Buffer
	j := obsv.NewJournal(&buf, 0)
	e, err := New(bank(), Options{Mode: KeysMode, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, qerr := e.RangeAnswersContext(ctx, paperSumQuery()); qerr == nil {
		t.Fatal("cancelled call succeeded")
	}
	j.Close()
	entries, err := obsv.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("lines = %d, want 1 (errors journal too)", len(entries))
	}
	if entries[0].Error == "" || entries[0].AnswerDigest != "" {
		t.Errorf("error line = %+v", entries[0])
	}
}

// TestJournalRouteFields: range-query lines carry the planner route and
// its reason, answer digests agree across routes (the digest excludes
// SAT-only provenance bits), and consistent-answer lines — which never
// route — carry no route at all.
func TestJournalRouteFields(t *testing.T) {
	r := rng(77)
	in := randomInstance(&r)
	var autoBuf, satBuf bytes.Buffer
	jAuto := obsv.NewJournal(&autoBuf, 0)
	jSAT := obsv.NewJournal(&satBuf, 0)
	auto, err := New(in, Options{Mode: KeysMode, Planner: planner.ModeAuto, Journal: jAuto})
	if err != nil {
		t.Fatal(err)
	}
	sat, err := New(in, Options{Mode: KeysMode, Planner: planner.ModeSAT, Journal: jSAT})
	if err != nil {
		t.Fatal(err)
	}
	q := joinQuery(cq.CountStar, true) // in C_aggforest: rewrites under auto
	if _, err := auto.RangeAnswers(q); err != nil {
		t.Fatal(err)
	}
	if _, err := auto.RangeAnswers(joinQuery(cq.CountDistinct, false)); err != nil {
		t.Fatal(err) // operator outside the rewriting: routes to SAT
	}
	u := cq.Single(cq.CQ{Head: []string{"g"}, Atoms: []cq.Atom{
		{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}},
	}})
	if _, _, err := auto.ConsistentAnswers(u); err != nil {
		t.Fatal(err)
	}
	if _, err := sat.RangeAnswers(q); err != nil {
		t.Fatal(err)
	}
	jAuto.Close()
	jSAT.Close()

	autoLines, err := obsv.ReadJournal(&autoBuf)
	if err != nil {
		t.Fatal(err)
	}
	satLines, err := obsv.ReadJournal(&satBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(autoLines) != 3 || len(satLines) != 1 {
		t.Fatalf("lines: auto=%d sat=%d", len(autoLines), len(satLines))
	}
	rw, opRejected, cons := autoLines[0], autoLines[1], autoLines[2]
	if rw.Route != "rewrite" || rw.RouteReason != "" {
		t.Errorf("rewrite line route %q reason %q", rw.Route, rw.RouteReason)
	}
	if rw.Options.Planner != "auto" {
		t.Errorf("planner option = %q, want auto", rw.Options.Planner)
	}
	if opRejected.Route != "sat" || !strings.Contains(opRejected.RouteReason, "not supported by the rewriting") {
		t.Errorf("rejected line route %q reason %q", opRejected.Route, opRejected.RouteReason)
	}
	if cons.Route != "" || cons.RouteReason != "" {
		t.Errorf("consistent-answers line carries route %q (%q)", cons.Route, cons.RouteReason)
	}
	satLine := satLines[0]
	if satLine.Route != "sat" || satLine.RouteReason != planner.ReasonForcedSAT {
		t.Errorf("forced-sat line route %q reason %q", satLine.Route, satLine.RouteReason)
	}
	if satLine.Options.Planner != "force-sat" {
		t.Errorf("planner option = %q, want force-sat", satLine.Options.Planner)
	}
	// Identical answers from different executors hash identically.
	if rw.AnswerDigest == "" || rw.AnswerDigest != satLine.AnswerDigest {
		t.Errorf("digest drift across routes: rewrite %q vs sat %q", rw.AnswerDigest, satLine.AnswerDigest)
	}
}
