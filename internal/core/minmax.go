package core

import (
	"context"
	"fmt"
	"sort"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/maxsat"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/sat"
)

// minMaxFromBag computes range consistent answers for MIN(A)/MAX(A) by
// iterative SAT solving, following the paper's extended version: the
// endpoints are located by querying, per candidate value v, whether some
// repair contains a witness of value v (presence probes) or whether some
// repair breaks every witness above/below v (suppression probes).
//
//   - lub(MAX) = largest v such that some repair contains a witness of
//     value v (such a repair has MAX ≥ v, and no repair exceeds the
//     largest attainable v).
//   - glb(MAX) = smallest v such that some repair contains a value-v
//     witness and breaks all witnesses of value > v (its MAX is then
//     exactly v).
//   - MIN is symmetric.
//
// Endpoints range over the repairs with a non-empty result; if some
// repair breaks every witness (MIN/MAX would be SQL NULL there),
// EmptyPossible is set.
func (e *Engine) minMaxFromBag(ctx context.Context, op cq.AggOp, bag []cq.Witness, rc *recorder) (Range, error) {
	cc := e.constraintCtx(ctx, rc)

	encodeMark := startPhase()
	_, esp := obsv.StartSpan(ctx, "core.encode")
	// Collect witnesses per distinct value.
	type valueGroup struct {
		value    db.Value
		factSets [][]db.FactID
	}
	byValue := map[string]*valueGroup{}
	var order []string
	for _, w := range bag {
		if len(w.Answer) != 1 {
			return Range{}, fmt.Errorf("core: %s witness with %d answer values", op, len(w.Answer))
		}
		v := w.Answer[0]
		if v.IsNull() {
			continue
		}
		k := db.Tuple{v}.Key([]int{0})
		g, ok := byValue[k]
		if !ok {
			g = &valueGroup{value: v}
			byValue[k] = g
			order = append(order, k)
		}
		g.factSets = append(g.factSets, w.Facts)
	}
	if len(byValue) == 0 {
		rc.endEncode(encodeMark)
		esp.End()
		return Range{GLB: db.Null(), LUB: db.Null(), EmptyPossible: true}, nil
	}
	values := make([]*valueGroup, 0, len(byValue))
	for _, k := range order {
		values = append(values, byValue[k])
	}
	sort.Slice(values, func(i, j int) bool { return values[i].value.Compare(values[j].value) < 0 })

	// Hard clauses over the closure of every witness fact (safe facts
	// become forced-in units, so no folding is needed here).
	seed := map[db.FactID]bool{}
	for _, g := range values {
		for _, fs := range g.factSets {
			for _, f := range fs {
				seed[f] = true
			}
		}
	}
	closure := cc.closure(seed)
	var enc *encoder
	var base *maxsat.HardBase
	var baseHit bool
	if e.incremental() {
		// The probe solver forks from the component's cached hard base:
		// grouped MIN/MAX queries whose groups share a closure skip the
		// re-encode and clause re-load entirely.
		enc, base, baseHit = e.componentBase(cc, closure)
		rc.baseHit(baseHit)
	} else {
		enc = newEncoder(cc, closure)
	}
	// Allocate witness-presence literals first so every defining clause
	// lands in enc.formula before the solver copies it.
	presentLits := make([][]cnf.Lit, len(values))
	for i, g := range values {
		presentLits[i] = make([]cnf.Lit, len(g.factSets))
		for j, fs := range g.factSets {
			presentLits[i][j] = enc.presentLit(fs)
		}
	}
	var solver *sat.Solver
	if base != nil {
		solver = base.Fork(enc.formula)
		if !solver.Okay() {
			esp.End()
			return Range{}, errInternalUnsat()
		}
	} else {
		solver = sat.New()
		if !solver.AddFormulaHard(enc.formula) {
			esp.End()
			return Range{}, errInternalUnsat()
		}
		solver.EnsureVars(enc.formula.NumVars())
	}
	if b := e.opts.MaxSAT.ConflictBudget; b > 0 {
		solver.SetConflictBudget(b)
	}
	release := sat.StopOnDone(ctx, solver)
	defer release()

	// Per value v: suppress[v] assumes every witness of value v broken;
	// present[v] assumes some witness of value v fully present.
	suppress := make([]cnf.Lit, len(values))
	present := make([]cnf.Lit, len(values))
	for i, g := range values {
		a := cnf.Lit(solver.NewVar())
		suppress[i] = a
		for _, fs := range g.factSets {
			clause := make([]cnf.Lit, 0, len(fs)+1)
			clause = append(clause, a.Neg())
			for _, f := range fs {
				clause = append(clause, enc.lit(f).Neg())
			}
			solver.AddClause(clause...)
		}
		b := cnf.Lit(solver.NewVar())
		present[i] = b
		disj := make([]cnf.Lit, 0, len(g.factSets)+1)
		disj = append(disj, b.Neg())
		disj = append(disj, presentLits[i]...)
		solver.AddClause(disj...)
	}
	ed := rc.endEncode(encodeMark)
	rc.absorbFormula(enc.formula)
	endEncodeSpan(esp, enc.formula)
	ce := rc.exp.component(len(closure), len(values))
	st := enc.formula.Stats()
	ce.setEncode(st.Vars, st.Clauses, baseHit, ed)

	_, ssp := obsv.StartSpan(ctx, "core.minmax_probes")
	probes := 0
	solveMark := startPhase()
	defer func() {
		sd := rc.endSolve(solveMark)
		ce.addDirection("probe", "sat", maxsat.Result{SATCalls: int64(probes)}, sd)
		if ssp != nil {
			ssp.SetInt("probes", int64(probes))
			ssp.End()
		}
	}()

	solve := func(assumptions ...cnf.Lit) (bool, error) {
		st := solver.Solve(assumptions...)
		rc.satCalls(1)
		probes++
		switch st {
		case sat.Sat:
			return true, nil
		case sat.Unsat:
			return false, nil
		default:
			return false, stopCause(ctx)
		}
	}

	// Can every witness be broken simultaneously?
	emptyPossible, err := solve(suppress...)
	if err != nil {
		return Range{}, err
	}

	res := Range{EmptyPossible: emptyPossible, GLB: db.Null(), LUB: db.Null()}
	switch op {
	case cq.Max:
		// lub(MAX): largest attainable value.
		for i := len(values) - 1; i >= 0; i-- {
			ok, err := solve(present[i])
			if err != nil {
				return Range{}, err
			}
			if ok {
				res.LUB = values[i].value
				break
			}
		}
		// glb(MAX) over non-empty repairs: smallest v such that some
		// repair contains a value-v witness and breaks every witness of
		// a larger value.
		for i := 0; i < len(values); i++ {
			asm := append([]cnf.Lit{present[i]}, suppress[i+1:]...)
			ok, err := solve(asm...)
			if err != nil {
				return Range{}, err
			}
			if ok {
				res.GLB = values[i].value
				break
			}
		}
	case cq.Min:
		// glb(MIN): smallest attainable value.
		for i := 0; i < len(values); i++ {
			ok, err := solve(present[i])
			if err != nil {
				return Range{}, err
			}
			if ok {
				res.GLB = values[i].value
				break
			}
		}
		// lub(MIN) over non-empty repairs.
		for i := len(values) - 1; i >= 0; i-- {
			asm := append([]cnf.Lit{present[i]}, suppress[:i]...)
			ok, err := solve(asm...)
			if err != nil {
				return Range{}, err
			}
			if ok {
				res.LUB = values[i].value
				break
			}
		}
	default:
		return Range{}, fmt.Errorf("core: minMaxFromBag on %s", op)
	}
	return res, nil
}
