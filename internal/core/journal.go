package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"aggcavsat/internal/obsv"
)

// Fingerprint64 is the stable query fingerprint stamped on journal
// lines and used as the query component of the server result-cache key:
// FNV-1a over the canonical rendering, hex-encoded. Two spellings that
// render to the same algebraic query share a fingerprint, so journal
// analysis can group by query without string matching.
func Fingerprint64(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}

// answersDigest hashes the rendered answers (group keys and range
// endpoints in order), so two journals can be diffed for answer drift
// without storing the answers themselves. FromConsistentPart is
// deliberately excluded: it is provenance (did the SAT path skip the
// solver), not part of the answer, and the rewriting route never sets
// it — hashing it would make identical answers from different routes
// look like drift.
func answersDigest(answers []GroupAnswer) string {
	h := fnv.New64a()
	for _, a := range answers {
		for _, v := range a.Key {
			fmt.Fprintf(h, "%v|", v)
		}
		fmt.Fprintf(h, "=%v..%v;%v\n", a.GLB, a.LUB, a.EmptyPossible)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// appendJournal emits the call's wide-event line. No-op without a
// journal; the append itself is non-blocking (the journal sheds entries
// when its writer lags), so this sits on the hot path of every engine
// call without perturbing it. answers is nil on an error exit — the
// line then carries the anomaly classification instead of a digest.
func (e *Engine) appendJournal(ctx context.Context, op, query string, answers []GroupAnswer, snap obsv.Snapshot, err error, start time.Time, dur time.Duration, anomaly, bundle string, rc *recorder) {
	j := e.opts.Journal
	if j == nil {
		return
	}
	label := obsv.QueryLabelFrom(ctx)
	if label == "" {
		label = query
	}
	entry := obsv.JournalEntry{
		Time:        start,
		Query:       label,
		Fingerprint: Fingerprint64(query),
		Op:          op,
		TraceID:     obsv.TraceIDFromContext(ctx),
		Options: obsv.JournalOptions{
			Algorithm:   e.opts.MaxSAT.Algorithm.String(),
			Mode:        e.modeString(),
			Parallelism: e.parallelism(),
			Incremental: e.incremental(),
			Frontend:    e.frontendString(),
			Planner:     e.opts.Planner.String(),
		},

		TotalMS:      float64(dur) / float64(time.Millisecond),
		WitnessMS:    float64(snap.Counters[obsv.MetricWitnessNS]) / float64(time.Millisecond),
		ConstraintMS: float64(snap.Gauges[obsv.MetricConstraintNS]) / float64(time.Millisecond),
		EncodeMS:     float64(snap.Counters[obsv.MetricEncodeNS]) / float64(time.Millisecond),
		SolveMS:      float64(snap.Counters[obsv.MetricSolveNS]) / float64(time.Millisecond),

		Witnesses:  snap.Counters[obsv.MetricWitnesses],
		SATCalls:   snap.Counters[obsv.MetricSATCalls],
		MaxSATRuns: int(snap.Counters[obsv.MetricMaxSATRuns]),
		Vars:       int(snap.Counters[obsv.MetricCNFVars]),
		Clauses:    int(snap.Counters[obsv.MetricCNFClauses]),

		BaseHits:          snap.Counters[obsv.MetricBaseHits],
		BaseMisses:        snap.Counters[obsv.MetricBaseMisses],
		ConstraintCached:  snap.Gauges[obsv.MetricConsCacheHit] != 0,
		FastPathRelations: snap.Gauges[obsv.MetricVioFastRels],

		Anomaly:      anomaly,
		FlightBundle: bundle,
	}
	if rc != nil && rc.routeStamped {
		entry.Route = rc.route.String()
		entry.RouteReason = rc.routeReason
		entry.RewriteMS = float64(snap.Counters[obsv.MetricRewriteNS]) / float64(time.Millisecond)
	}
	if err != nil {
		entry.Error = err.Error()
	} else {
		entry.Answers = len(answers)
		entry.AnswerDigest = answersDigest(answers)
	}
	j.Append(entry)
}
