package core

import (
	"aggcavsat/internal/db"
)

// componentSplit partitions a set of witness-like fact groups into the
// connected components of the repair-entanglement graph: two facts are
// entangled when they share a witness, a key-equal group, or a minimal
// violation. The WPMaxSAT instance of Reduction IV.1 is a disjoint union
// over these components, so each component can be encoded and solved
// independently and the falsified weights summed — a large practical
// win for core-guided MaxSAT (the paper's MaxHS exploits the same
// structure internally through its hitting-set decomposition).
type componentSplit struct {
	// groups[i] lists the indexes (into the caller's witness slice)
	// belonging to component i.
	groups [][]int
	// facts[i] is the closure fact set of component i, sorted.
	facts [][]db.FactID
}

// splitComponents computes the component partition for the given
// witness fact sets. The ctx closure expansion (key-equal siblings or
// violation neighbours) is applied transitively.
func splitComponents(ctx *constraintContext, witnessFacts [][]db.FactID) *componentSplit {
	// Union-find over facts, seeded by witness co-occurrence.
	parent := map[db.FactID]db.FactID{}
	var find func(db.FactID) db.FactID
	find = func(x db.FactID) db.FactID {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b db.FactID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Closure per seed fact: expand to key-equal siblings / violation
	// neighbours, unioning as we go. closure() already handles the
	// transitive expansion; union everything it returns.
	seed := map[db.FactID]bool{}
	for _, fs := range witnessFacts {
		for _, f := range fs {
			seed[f] = true
		}
		for i := 1; i < len(fs); i++ {
			union(fs[0], fs[i])
		}
	}
	closureFacts := ctx.closure(seed)
	// Link each closure fact to its group/violation neighbours.
	for _, f := range closureFacts {
		switch ctx.mode {
		case KeysMode:
			members := ctx.groups[ctx.groupOf[f]].Facts
			for _, m := range members {
				union(f, m)
			}
		case DCMode:
			for _, g := range ctx.adj[f] {
				union(f, g)
			}
		}
	}

	// Collect components.
	compIndex := map[db.FactID]int{}
	split := &componentSplit{}
	for _, f := range closureFacts {
		root := find(f)
		ci, ok := compIndex[root]
		if !ok {
			ci = len(split.facts)
			compIndex[root] = ci
			split.facts = append(split.facts, nil)
			split.groups = append(split.groups, nil)
		}
		split.facts[ci] = append(split.facts[ci], f)
	}
	for wi, fs := range witnessFacts {
		if len(fs) == 0 {
			continue
		}
		ci := compIndex[find(fs[0])]
		split.groups[ci] = append(split.groups[ci], wi)
	}
	return split
}
