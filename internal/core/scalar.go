package core

import (
	"context"
	"fmt"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/maxsat"
	"aggcavsat/internal/obsv"
)

// scalarRange computes the range consistent answer of a scalar
// aggregation query. The witness bag is computed here; grouped queries
// call scalarFromBag directly with per-group bags.
func (e *Engine) scalarRange(ctx context.Context, q cq.AggQuery, bag []cq.Witness, rc *recorder) (Range, error) {
	if bag == nil {
		_, sp := obsv.StartSpan(ctx, "cq.witness")
		pm := startPhase()
		var err error
		bag, err = e.eval.WitnessBagCtx(ctx, q.Underlying)
		rc.endWitness(pm)
		rc.witnesses(len(bag))
		if sp != nil {
			sp.SetInt("witnesses", int64(len(bag)))
			sp.End()
		}
		if err != nil {
			return Range{}, stopCause(ctx)
		}
	}
	switch q.Op {
	case cq.Min, cq.Max:
		return e.minMaxFromBag(ctx, q.Op, bag, rc)
	case cq.CountDistinct, cq.SumDistinct:
		return e.distinctFromBag(ctx, q.Op, bag, rc)
	default:
		return e.sumCountFromBag(ctx, q.Op, bag, rc)
	}
}

// weightedWitness is a witness prepared for Reduction IV.1: the clause
// weight w_j = m_j · |q*(W_j)| and the sign of the aggregated value.
type weightedWitness struct {
	facts    []db.FactID
	weight   int64
	negative bool
}

// prepareWitnesses turns the witness bag into weighted witnesses for
// COUNT(*) (weight = multiplicity), COUNT(A) (multiplicity of non-NULL
// answers) or SUM(A) (m_j · |value|, sign split; zero values dropped).
func prepareWitnesses(op cq.AggOp, bag []cq.Witness) ([]weightedWitness, error) {
	out := make([]weightedWitness, 0, len(bag))
	for _, w := range bag {
		switch op {
		case cq.CountStar:
			out = append(out, weightedWitness{facts: w.Facts, weight: w.Mult})
		case cq.Count:
			if len(w.Answer) != 1 {
				return nil, fmt.Errorf("core: COUNT(A) witness with %d answer values", len(w.Answer))
			}
			if w.Answer[0].IsNull() {
				continue
			}
			out = append(out, weightedWitness{facts: w.Facts, weight: w.Mult})
		case cq.Sum:
			if len(w.Answer) != 1 {
				return nil, fmt.Errorf("core: SUM(A) witness with %d answer values", len(w.Answer))
			}
			v := w.Answer[0]
			if v.IsNull() {
				continue
			}
			if v.Kind() != db.KindInt {
				return nil, fmt.Errorf("core: SUM over non-integer value %v; scale to integers (e.g. cents) first", v)
			}
			a := v.AsInt()
			if a == 0 {
				continue
			}
			ww := weightedWitness{facts: w.Facts, weight: w.Mult * abs64(a), negative: a < 0}
			out = append(out, ww)
		default:
			return nil, fmt.Errorf("core: prepareWitnesses on %s", op)
		}
	}
	return out, nil
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// sumCountFromBag implements Reduction IV.1 (steps 2a/2b) and the
// Proposition IV.1 decoding for COUNT(*), COUNT(A) and SUM(A).
func (e *Engine) sumCountFromBag(ctx context.Context, op cq.AggOp, bag []cq.Witness, rc *recorder) (Range, error) {
	cc := e.constraintCtx(ctx, rc)

	ws, err := prepareWitnesses(op, bag)
	if err != nil {
		return Range{}, err
	}

	encodeMark := startPhase()
	// Fold consistent-part witnesses into a constant: a witness made of
	// safe facts survives in every repair, contributing ±w always.
	var base int64
	unsafe := ws[:0]
	for _, w := range ws {
		if cc.allSafe(w.facts) {
			if w.negative {
				base -= w.weight
			} else {
				base += w.weight
			}
			continue
		}
		unsafe = append(unsafe, w)
	}
	if len(unsafe) == 0 {
		rc.endEncode(encodeMark)
		rc.skip()
		return Range{GLB: db.Int(base), LUB: db.Int(base), FromConsistentPart: true}, nil
	}

	// The hard-clause graph decomposes into independent components
	// (disjoint key-equal groups / violation clusters); encode and
	// solve each separately and sum the falsified weights.
	witnessFacts := make([][]db.FactID, len(unsafe))
	for i, w := range unsafe {
		witnessFacts[i] = w.facts
	}
	split := splitComponents(cc, witnessFacts)
	rc.endEncode(encodeMark)

	// Components are independent WPMaxSAT instances: encode and solve
	// each on the worker pool, then sum the per-component results (the
	// sum is order-independent, and the per-slot writes keep the
	// accounting deterministic).
	type compResult struct{ minF, maxF, negOffset int64 }
	results := make([]compResult, len(split.groups))
	err = forEach(ctx, e.parallelism(), len(split.groups), func(ctx context.Context, ci int) error {
		encodeMark := startPhase()
		_, esp := obsv.StartSpan(ctx, "core.encode")
		var enc *encoder
		var base *maxsat.HardBase
		var baseHit bool
		if e.incremental() {
			enc, base, baseHit = e.componentBase(cc, split.facts[ci])
			rc.baseHit(baseHit)
		} else {
			enc = newEncoder(cc, split.facts[ci])
		}
		var negOffset int64
		// Soft clauses: step 2a/2b.
		for _, wi := range split.groups[ci] {
			w := unsafe[wi]
			if !w.negative {
				// β_j = (⋁ ¬x_i, w_j): falsified iff the witness is
				// present.
				lits := make([]cnf.Lit, len(w.facts))
				for i, f := range w.facts {
					lits[i] = enc.lit(f).Neg()
				}
				enc.formula.AddSoft(w.weight, lits...)
				continue
			}
			// Negative value: β_j = (y_j, w_j) with y_j ↔ witness
			// present; falsified iff the witness is absent.
			y := enc.presentLit(w.facts)
			enc.formula.AddSoft(w.weight, y)
			negOffset += w.weight
		}
		ed := rc.endEncode(encodeMark)
		rc.absorbFormula(enc.formula)
		endEncodeSpan(esp, enc.formula)
		ce := rc.exp.component(len(split.facts[ci]), len(split.groups[ci]))
		st := enc.formula.Stats()
		ce.setEncode(st.Vars, st.Clauses, baseHit, ed)

		minF, maxF, err := e.solveBothDirections(ctx, enc.formula, base, rc, ce)
		if err != nil {
			return err
		}
		results[ci] = compResult{minF: minF, maxF: maxF, negOffset: negOffset}
		return nil
	})
	if err != nil {
		return Range{}, err
	}
	var minFTotal, maxFTotal, negOffset int64
	for _, r := range results {
		minFTotal += r.minF
		maxFTotal += r.maxF
		negOffset += r.negOffset
	}

	// Proposition IV.1: falsified weight F = agg + negOffset, so
	// glb = base + minF − negOffset and lub = base + maxF − negOffset.
	return Range{
		GLB: db.Int(base + minFTotal - negOffset),
		LUB: db.Int(base + maxFTotal - negOffset),
	}, nil
}

// distinctFromBag implements Algorithm 1 for COUNT(DISTINCT A) and
// SUM(DISTINCT A).
func (e *Engine) distinctFromBag(ctx context.Context, op cq.AggOp, bag []cq.Witness, rc *recorder) (Range, error) {
	cc := e.constraintCtx(ctx, rc)

	encodeMark := startPhase()
	minimal := cq.MinimalWitnesses(bag)
	// Partition minimal witnesses by answer value b.
	type answerGroup struct {
		value     db.Value
		witnesses [][]db.FactID
	}
	byAnswer := map[string]*answerGroup{}
	var order []string
	for _, w := range minimal {
		if len(w.Answer) != 1 {
			return Range{}, fmt.Errorf("core: DISTINCT witness with %d answer values", len(w.Answer))
		}
		v := w.Answer[0]
		if v.IsNull() {
			continue
		}
		if op == cq.SumDistinct {
			if v.Kind() != db.KindInt {
				return Range{}, fmt.Errorf("core: SUM(DISTINCT) over non-integer value %v", v)
			}
			if v.AsInt() == 0 {
				continue
			}
		}
		k := db.Tuple{v}.Key([]int{0})
		g, ok := byAnswer[k]
		if !ok {
			g = &answerGroup{value: v}
			byAnswer[k] = g
			order = append(order, k)
		}
		g.witnesses = append(g.witnesses, w.Facts)
	}

	// Fold answers certain to appear (a fully safe minimal witness) and
	// collect the uncertain answers.
	var base int64
	var uncertain []*answerGroup
	for _, k := range order {
		g := byAnswer[k]
		certain := false
		for _, facts := range g.witnesses {
			if cc.allSafe(facts) {
				certain = true
				break
			}
		}
		if certain {
			base += distinctContribution(op, g.value)
			continue
		}
		uncertain = append(uncertain, g)
	}
	if len(uncertain) == 0 {
		rc.endEncode(encodeMark)
		rc.skip()
		return Range{GLB: db.Int(base), LUB: db.Int(base), FromConsistentPart: true}, nil
	}

	// Component decomposition: all witnesses of one answer are coupled
	// by its v^b variable, so union their facts before splitting.
	answerFacts := make([][]db.FactID, len(uncertain))
	for i, g := range uncertain {
		for _, facts := range g.witnesses {
			answerFacts[i] = append(answerFacts[i], facts...)
		}
	}
	split := splitComponents(cc, answerFacts)
	rc.endEncode(encodeMark)

	// As in sumCountFromBag: one independent WPMaxSAT instance per
	// component, fanned out and merged by component index.
	type compResult struct{ minF, maxF, negOffset int64 }
	results := make([]compResult, len(split.groups))
	err := forEach(ctx, e.parallelism(), len(split.groups), func(ctx context.Context, ci int) error {
		encodeMark := startPhase()
		_, esp := obsv.StartSpan(ctx, "core.encode")
		var enc *encoder
		var base *maxsat.HardBase
		var baseHit bool
		if e.incremental() {
			enc, base, baseHit = e.componentBase(cc, split.facts[ci])
			rc.baseHit(baseHit)
		} else {
			enc = newEncoder(cc, split.facts[ci])
		}
		var negOffset int64
		for _, ui := range split.groups[ci] {
			g := uncertain[ui]
			// v^b ↔ ⋀_j z_j^b where z_j^b ↔ witness j broken.
			zs := make([]cnf.Lit, len(g.witnesses))
			for i, facts := range g.witnesses {
				zs[i] = enc.brokenLit(facts)
			}
			var vb cnf.Lit
			if len(zs) == 1 {
				vb = zs[0]
			} else {
				vb = cnf.Lit(enc.formula.NewVar())
				// vb → z_j; (⋀ z_j) → vb.
				back := make([]cnf.Lit, 0, len(zs)+1)
				back = append(back, vb)
				for _, z := range zs {
					enc.formula.AddHard(vb.Neg(), z)
					back = append(back, z.Neg())
				}
				enc.formula.AddHard(back...)
			}
			// β^b: falsified iff the answer b is present in the repair.
			switch {
			case op == cq.CountDistinct:
				enc.formula.AddSoft(1, vb)
			case g.value.AsInt() > 0:
				enc.formula.AddSoft(g.value.AsInt(), vb)
			default:
				w := -g.value.AsInt()
				enc.formula.AddSoft(w, vb.Neg())
				negOffset += w
			}
		}
		ed := rc.endEncode(encodeMark)
		rc.absorbFormula(enc.formula)
		endEncodeSpan(esp, enc.formula)
		ce := rc.exp.component(len(split.facts[ci]), len(split.groups[ci]))
		st := enc.formula.Stats()
		ce.setEncode(st.Vars, st.Clauses, baseHit, ed)

		minF, maxF, err := e.solveBothDirections(ctx, enc.formula, base, rc, ce)
		if err != nil {
			return err
		}
		results[ci] = compResult{minF: minF, maxF: maxF, negOffset: negOffset}
		return nil
	})
	if err != nil {
		return Range{}, err
	}
	var minFTotal, maxFTotal, negOffset int64
	for _, r := range results {
		minFTotal += r.minF
		maxFTotal += r.maxF
		negOffset += r.negOffset
	}
	return Range{
		GLB: db.Int(base + minFTotal - negOffset),
		LUB: db.Int(base + maxFTotal - negOffset),
	}, nil
}

func distinctContribution(op cq.AggOp, v db.Value) int64 {
	if op == cq.CountDistinct {
		return 1
	}
	return v.AsInt()
}

// solveBothDirections solves the WPMaxSAT instance for the glb direction
// (maximize satisfied soft weight, i.e. minimize falsified weight) and —
// via Kügel's CNF-negation — the lub direction (minimize satisfied, i.e.
// maximize falsified). It returns (minFalsified, maxFalsified).
//
// On the incremental path both directions run over one maxsat.Instance
// sharing a single solver base (cloned per algorithm run), seeded from
// the component's cached HardBase when the caller has one; the negation
// is a weight view, so no negated formula is materialized. The legacy
// path builds a fresh solver per run and an explicit NegateSoft copy.
func (e *Engine) solveBothDirections(ctx context.Context, f *cnf.Formula, base *maxsat.HardBase, rc *recorder, ce *ComponentExplain) (minF, maxF int64, err error) {
	total := f.TotalSoftWeight()

	if e.incremental() {
		inst := maxsat.NewInstance(f, base, e.opts.MaxSAT)
		// Hand learnt clauses back to the component's cached base (when
		// provably sound) so sibling groups and later queries start from
		// them.
		defer inst.Release()
		res, err := e.runInstance(ctx, inst.SolveMin, rc, ce, "glb")
		if err != nil {
			return 0, 0, err
		}
		minF = total - res.Optimum
		res, err = e.runInstance(ctx, inst.SolveMax, rc, ce, "lub")
		if err != nil {
			return 0, 0, err
		}
		return minF, res.Optimum, nil
	}

	res, err := e.runMaxSAT(ctx, f, rc, ce, "glb")
	if err != nil {
		return 0, 0, err
	}
	minF = total - res.Optimum
	negated := f.NegateSoft()
	rc.absorbFormula(negated)
	res, err = e.runMaxSAT(ctx, negated, rc, ce, "lub")
	if err != nil {
		return 0, 0, err
	}
	maxF = res.Optimum
	return minF, maxF, nil
}

// runInstance times and accounts one direction of an incremental solve,
// mirroring runMaxSAT's bookkeeping and error mapping.
func (e *Engine) runInstance(ctx context.Context, solve func(context.Context) (maxsat.Result, error), rc *recorder, ce *ComponentExplain, dir string) (maxsat.Result, error) {
	pm := startPhase()
	res, err := solve(ctx)
	d := rc.endSolve(pm)
	rc.satCalls(res.SATCalls)
	ce.addDirection(dir, e.opts.MaxSAT.Algorithm.String(), res, d)
	if err != nil {
		return res, mapSolveErr(err)
	}
	rc.maxsatRun()
	if !res.Satisfiable {
		return res, fmt.Errorf("core: hard clauses unsatisfiable; every instance must have a repair (internal bug)")
	}
	return res, nil
}

func (e *Engine) runMaxSAT(ctx context.Context, f *cnf.Formula, rc *recorder, ce *ComponentExplain, dir string) (maxsat.Result, error) {
	pm := startPhase()
	res, err := maxsat.SolveContext(ctx, f, e.opts.MaxSAT)
	d := rc.endSolve(pm)
	rc.satCalls(res.SATCalls)
	ce.addDirection(dir, e.opts.MaxSAT.Algorithm.String(), res, d)
	if err != nil {
		return res, mapSolveErr(err)
	}
	rc.maxsatRun()
	if !res.Satisfiable {
		return res, fmt.Errorf("core: hard clauses unsatisfiable; every instance must have a repair (internal bug)")
	}
	return res, nil
}
