package core

import (
	"context"
	"errors"
	"time"

	"aggcavsat/internal/obsv"
)

// flight couples one engine call to its flight recorder: the recording
// context, the call's wall-clock start and resource baseline, and the
// end-of-call anomaly classification that decides whether the ring is
// dumped.
type flight struct {
	e       *Engine
	rec     *obsv.FlightRecorder
	query   string
	traceID string
	start   time.Time
	res     obsv.ResourceSample
}

// startFlight installs the call's flight recorder in the context (so
// maxsat progress and core phase instrumentation feed it) and snapshots
// the anomaly baseline. With recording disabled (nil rec, i.e. no
// OnAnomaly hook) it returns the context unchanged and a nil *flight,
// whose finish is a no-op.
func (e *Engine) startFlight(ctx context.Context, query string, rec *obsv.FlightRecorder) (context.Context, *flight) {
	if rec == nil {
		return ctx, nil
	}
	f := &flight{
		e:       e,
		rec:     rec,
		query:   query,
		traceID: obsv.TraceIDFromContext(ctx),
		start:   time.Now(),
		res:     obsv.SampleResources(),
	}
	return obsv.WithFlightRecorder(ctx, rec), f
}

// classifyAnomaly classifies how a call ended: "" on a clean solve, else
// a typed timeout or budget stop, any other error, or a successful call
// slower than Options.SlowQuery. The classification drives both the
// flight-recorder dump and the journal line's anomaly flag, so it is
// computed once by the caller and shared.
func (e *Engine) classifyAnomaly(err error, dur time.Duration) string {
	switch {
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrBudget):
		return "budget"
	case err != nil:
		return "error"
	case e.opts.SlowQuery > 0 && dur > e.opts.SlowQuery:
		return "slow"
	}
	return ""
}

// finish assembles, for an anomalous call (non-empty reason), the dump
// bundle from the recorder ring and the call-local metric registry and
// hands it to the OnAnomaly hook. The bundle carries the journal path
// (when journaling is on) and the hook — obsv.DumpDir in particular —
// stamps the file it wrote into Bundle.File; that path is returned so
// the journal line can reference the bundle, closing the linkage in
// both directions. Nil-receiver-safe.
func (f *flight) finish(reason string, err error, local *obsv.Registry) string {
	if f == nil || reason == "" {
		return ""
	}
	b := obsv.NewBundle(reason, f.query, err, f.start, time.Since(f.start), f.rec,
		local.Snapshot(), obsv.SampleResources().Since(f.res))
	b.TraceID = f.traceID
	b.Journal = f.e.opts.Journal.Path()
	f.e.opts.OnAnomaly(b)
	return b.File
}
