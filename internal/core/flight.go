package core

import (
	"context"
	"errors"
	"time"

	"aggcavsat/internal/obsv"
)

// flight couples one engine call to its flight recorder: the recording
// context, the call's wall-clock start and resource baseline, and the
// end-of-call anomaly classification that decides whether the ring is
// dumped.
type flight struct {
	e     *Engine
	rec   *obsv.FlightRecorder
	query string
	start time.Time
	res   obsv.ResourceSample
}

// startFlight installs the call's flight recorder in the context (so
// maxsat progress and core phase instrumentation feed it) and snapshots
// the anomaly baseline. With recording disabled (nil rec, i.e. no
// OnAnomaly hook) it returns the context unchanged and a nil *flight,
// whose finish is a no-op.
func (e *Engine) startFlight(ctx context.Context, query string, rec *obsv.FlightRecorder) (context.Context, *flight) {
	if rec == nil {
		return ctx, nil
	}
	f := &flight{
		e:     e,
		rec:   rec,
		query: query,
		start: time.Now(),
		res:   obsv.SampleResources(),
	}
	return obsv.WithFlightRecorder(ctx, rec), f
}

// finish classifies how the call ended and, on an anomaly — a typed
// timeout or budget stop, any other error, or a successful call slower
// than Options.SlowQuery — assembles the dump bundle from the recorder
// ring and the call-local metric registry and hands it to the OnAnomaly
// hook. Nil-receiver-safe.
func (f *flight) finish(err error, local *obsv.Registry) {
	if f == nil {
		return
	}
	dur := time.Since(f.start)
	var reason string
	switch {
	case errors.Is(err, ErrTimeout):
		reason = "timeout"
	case errors.Is(err, ErrBudget):
		reason = "budget"
	case err != nil:
		reason = "error"
	case f.e.opts.SlowQuery > 0 && dur > f.e.opts.SlowQuery:
		reason = "slow"
	default:
		return
	}
	b := obsv.NewBundle(reason, f.query, err, f.start, dur, f.rec,
		local.Snapshot(), obsv.SampleResources().Since(f.res))
	f.e.opts.OnAnomaly(b)
}
