package core

import (
	"time"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

// PossibleAnswers computes the answers of a union of conjunctive
// queries that appear in q(J) for at least one repair J (the dual of
// ConsistentAnswers; together they bracket query answering under
// inconsistency).
//
// No SAT solving is needed: an answer is possible iff it has at least
// one witness that is internally consistent — such a witness extends to
// a repair (every consistent subset of the instance is contained in
// some maximal consistent subset), while an internally inconsistent
// witness is contained in no repair at all.
func (e *Engine) PossibleAnswers(u cq.UCQ) ([]db.Tuple, Stats, error) {
	var stats Stats
	if err := u.Validate(e.in.Schema()); err != nil {
		return nil, stats, err
	}
	ctx := e.context()
	stats.ConstraintTime = ctx.buildTime

	start := time.Now()
	bag := e.eval.WitnessBag(u)
	stats.WitnessTime += time.Since(start)

	arity := 0
	if len(bag) > 0 {
		arity = len(bag[0].Answer)
	}
	groups := cq.GroupWitnesses(bag, arity)
	var out []db.Tuple
	encodeStart := time.Now()
	for _, g := range groups {
		for _, w := range g.Witnesses {
			if e.witnessConsistent(ctx, w.Facts) {
				out = append(out, g.Key)
				break
			}
		}
	}
	stats.EncodeTime += time.Since(encodeStart)
	return out, stats, nil
}

// witnessConsistent reports whether the fact set satisfies the engine's
// constraints on its own.
func (e *Engine) witnessConsistent(ctx *constraintContext, facts []db.FactID) bool {
	switch ctx.mode {
	case KeysMode:
		// No two facts may share a key-equal group.
		seen := map[int]bool{}
		for _, f := range facts {
			gi := ctx.groupOf[f]
			if seen[gi] {
				return false
			}
			seen[gi] = true
		}
		return true
	default:
		// No minimal violation may be contained in the witness. Facts
		// are sorted, so subset checks are linear.
		inSet := map[db.FactID]bool{}
		for _, f := range facts {
			inSet[f] = true
		}
		for _, f := range facts {
			if ctx.nearIdx.SelfViolating[f] {
				return false
			}
			// Violations containing f are f's near-violations plus f.
			for _, near := range ctx.nearIdx.ByFact[f] {
				all := true
				for _, d := range near {
					if !inSet[d] {
						all = false
						break
					}
				}
				if all {
					return false
				}
			}
		}
		return true
	}
}
