package core

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/obsv"
)

// groupedSumQuery: SUM(Acc.BAL) GROUP BY CITY over the paper's bank
// instance — exercises the grouped path (consistent-group filtering,
// per-group encode/solve) end to end.
func groupedSumQuery() cq.AggQuery {
	return cq.AggQuery{
		Op:      cq.Sum,
		AggVar:  "bal",
		GroupBy: []string{"city"},
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "Acc", Args: []cq.Term{cq.V("id"), cq.V("t"), cq.V("city"), cq.V("bal")}}},
		}),
	}
}

func TestGroupedSumTraceBalanced(t *testing.T) {
	e := mustEngine(t, bank())
	tr := obsv.NewTracer()
	ctx := obsv.WithTracer(context.Background(), tr)
	rep, err := e.RangeAnswersContext(ctx, groupedSumQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Answers) == 0 {
		t.Fatal("no answers")
	}
	if open := tr.Open(); open != 0 {
		t.Fatalf("unbalanced trace: %d spans still open", open)
	}
	spans := tr.Spans()
	byName := map[string][]*obsv.Span{}
	for _, sp := range spans {
		if sp.Duration() < 0 {
			t.Fatalf("span %q has negative duration", sp.Name)
		}
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, want := range []string{
		"query.range_answers", "cq.witness", "core.constraints",
		"core.consistent_groups", "core.group", "core.encode",
		"maxsat.solve", "sat.solve",
	} {
		if len(byName[want]) == 0 {
			t.Errorf("no %q span recorded", want)
		}
	}
	// Nesting by time containment: every other span lies inside the
	// root "query.range_answers" span.
	root := byName["query.range_answers"][0]
	rootEnd := root.Start.Add(root.Duration())
	for _, sp := range spans {
		if sp == root {
			continue
		}
		if sp.Start.Before(root.Start) || sp.Start.Add(sp.Duration()).After(rootEnd) {
			t.Errorf("span %q not contained in the root span", sp.Name)
		}
	}
}

func TestGroupedSumStatsMerged(t *testing.T) {
	// Satellite: groupedRange merges per-group stats into Report.Stats.
	e := mustEngine(t, bank())
	rep, err := e.RangeAnswers(groupedSumQuery())
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st.EncodeTime <= 0 {
		t.Errorf("EncodeTime = %v, want > 0", st.EncodeTime)
	}
	if st.SolveTime <= 0 {
		t.Errorf("SolveTime = %v, want > 0", st.SolveTime)
	}
	if st.WitnessTime <= 0 {
		t.Errorf("WitnessTime = %v, want > 0", st.WitnessTime)
	}
	if st.SATCalls == 0 {
		t.Error("SATCalls = 0, want > 0 (group filtering + MaxSAT)")
	}
	if st.MaxSATRuns < 2 {
		t.Errorf("MaxSATRuns = %d, want >= 2 (glb+lub of an uncertain group)", st.MaxSATRuns)
	}
	// The snapshot is the source of truth for the typed view.
	if got := StatsFromSnapshot(rep.Metrics); got != st {
		t.Errorf("StatsFromSnapshot(rep.Metrics) = %+v, want %+v", got, st)
	}
	if rep.Metrics.Counters[obsv.MetricGroups] == 0 {
		t.Error("groups metric not recorded")
	}
}

func TestSessionMetricsPrometheus(t *testing.T) {
	reg := obsv.NewRegistry()
	in := bank()
	e, err := New(in, Options{Mode: KeysMode, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RangeAnswers(groupedSumQuery()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RangeAnswers(paperSumQuery()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	// Every sample line must be "name[{bucket}] value" with a numeric
	// value; the vocabulary metrics must be present.
	seen := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: %q is not 'name value'", ln+1, line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("line %d: value %q: %v", ln+1, fields[1], err)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		seen[name] = true
	}
	for _, want := range []string{
		obsv.MetricSATCalls, obsv.MetricMaxSATRuns, obsv.MetricEncodeNS,
		obsv.MetricSolveNS, obsv.MetricWitnessNS, obsv.MetricCNFVarsMax,
	} {
		if !seen[want] {
			t.Errorf("metric %q missing from exposition", want)
		}
	}
}
