package db

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// SnapshotFileName is the conventional columnar snapshot inside a data
// directory; OpenDir prefers it over the per-relation CSV files.
const SnapshotFileName = "snapshot.bin"

// SchemaCompatible reports whether got (typically a snapshot's embedded
// schema) can serve a database declared as want (typically parsed from
// schema.txt): the same relations with the same attributes, kinds, and
// key positions, up to name case. Constraints expressed against want
// (keys, functional dependencies) then mean the same thing over got.
func SchemaCompatible(want, got *Schema) error {
	if want.NumRelations() != got.NumRelations() {
		return fmt.Errorf("schema mismatch: %d relations declared, snapshot has %d",
			want.NumRelations(), got.NumRelations())
	}
	for _, w := range want.Relations() {
		id, ok := got.RelID(w.Name)
		if !ok {
			return fmt.Errorf("schema mismatch: snapshot lacks relation %s", w.Name)
		}
		g := got.RelationByID(id)
		if g.Arity() != w.Arity() {
			return fmt.Errorf("schema mismatch: %s has arity %d, snapshot has %d",
				w.Name, w.Arity(), g.Arity())
		}
		for i, a := range w.Attrs {
			b := g.Attrs[i]
			if !strings.EqualFold(a.Name, b.Name) || a.Kind != b.Kind {
				return fmt.Errorf("schema mismatch: %s attribute %d is %s:%v, snapshot has %s:%v",
					w.Name, i, a.Name, a.Kind, b.Name, b.Kind)
			}
		}
		if len(w.Key) != len(g.Key) {
			return fmt.Errorf("schema mismatch: %s key has %d attributes, snapshot has %d",
				w.Name, len(w.Key), len(g.Key))
		}
		for i := range w.Key {
			if w.Key[i] != g.Key[i] {
				return fmt.Errorf("schema mismatch: %s key differs at position %d", w.Name, i)
			}
		}
	}
	return nil
}

// OpenDir loads a data directory declared by schema: when a columnar
// snapshot (SnapshotFileName) is present it is mapped zero-copy and
// verified compatible with the declared schema, otherwise the
// per-relation CSV files are parsed into a fresh columnar instance.
//
// The returned Snapshot is non-nil exactly when the snapshot path was
// taken; Close it once the instance is no longer in use (or keep it
// open for the process lifetime, as long-running servers do). The
// snapshot-backed instance keeps its embedded schema — attribute and
// key layout are verified identical to the declared one, so constraints
// written against either schema agree.
func OpenDir(schema *Schema, dir string) (*Instance, *Snapshot, error) {
	path := filepath.Join(dir, SnapshotFileName)
	if _, err := os.Stat(path); err == nil {
		snap, err := OpenSnapshot(path)
		if err != nil {
			return nil, nil, err
		}
		if err := SchemaCompatible(schema, snap.Instance().Schema()); err != nil {
			snap.Close()
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return snap.Instance(), snap, nil
	}
	in, err := LoadDir(schema, dir)
	if err != nil {
		return nil, nil, err
	}
	return in, nil, nil
}
