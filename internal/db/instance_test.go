package db

import (
	"bytes"
	"strings"
	"testing"
)

// bankSchema builds the running-example schema of the paper (Table I).
func bankSchema() *Schema {
	s := NewSchema()
	s.MustAddRelation(&RelationSchema{
		Name: "Customer",
		Attrs: []Attribute{
			{Name: "CID", Kind: KindString},
			{Name: "NAME", Kind: KindString},
			{Name: "CITY", Kind: KindString},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&RelationSchema{
		Name: "Accounts",
		Attrs: []Attribute{
			{Name: "ACCID", Kind: KindString},
			{Name: "TYPE", Kind: KindString},
			{Name: "CITY", Kind: KindString},
			{Name: "BAL", Kind: KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&RelationSchema{
		Name: "CustAcc",
		Attrs: []Attribute{
			{Name: "CID", Kind: KindString},
			{Name: "ACCID", Kind: KindString},
		},
		Key: []int{0, 1},
	})
	return s
}

// bankInstance builds the fourteen facts f1..f14 of Table I. Fact IDs are
// 0-based: f1 has ID 0, ..., f14 has ID 13.
func bankInstance() *Instance {
	in := NewInstance(bankSchema())
	in.MustInsert("Customer", Str("C1"), Str("John"), Str("LA"))
	in.MustInsert("Customer", Str("C2"), Str("Mary"), Str("LA"))
	in.MustInsert("Customer", Str("C2"), Str("Mary"), Str("SF"))
	in.MustInsert("Customer", Str("C3"), Str("Don"), Str("SF"))
	in.MustInsert("Customer", Str("C4"), Str("Jen"), Str("LA"))
	in.MustInsert("Accounts", Str("A1"), Str("Check."), Str("LA"), Int(900))
	in.MustInsert("Accounts", Str("A2"), Str("Check."), Str("LA"), Int(1000))
	in.MustInsert("Accounts", Str("A3"), Str("Saving"), Str("SJ"), Int(1200))
	in.MustInsert("Accounts", Str("A3"), Str("Saving"), Str("SF"), Int(-100))
	in.MustInsert("Accounts", Str("A4"), Str("Saving"), Str("SJ"), Int(300))
	in.MustInsert("CustAcc", Str("C1"), Str("A1"))
	in.MustInsert("CustAcc", Str("C2"), Str("A2"))
	in.MustInsert("CustAcc", Str("C2"), Str("A3"))
	in.MustInsert("CustAcc", Str("C3"), Str("A4"))
	return in
}

func TestSchemaValidation(t *testing.T) {
	s := NewSchema()
	if err := s.AddRelation(&RelationSchema{Name: "", Attrs: []Attribute{{Name: "a"}}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.AddRelation(&RelationSchema{Name: "R"}); err == nil {
		t.Error("no attributes accepted")
	}
	if err := s.AddRelation(&RelationSchema{
		Name:  "R",
		Attrs: []Attribute{{Name: "a", Kind: KindInt}, {Name: "A", Kind: KindInt}},
	}); err == nil {
		t.Error("case-insensitive duplicate attribute accepted")
	}
	if err := s.AddRelation(&RelationSchema{
		Name:  "R",
		Attrs: []Attribute{{Name: "a", Kind: KindInt}},
		Key:   []int{1},
	}); err == nil {
		t.Error("out-of-range key accepted")
	}
	if err := s.AddRelation(&RelationSchema{
		Name:  "R",
		Attrs: []Attribute{{Name: "a", Kind: KindInt}, {Name: "b", Kind: KindInt}},
		Key:   []int{1, 0},
	}); err == nil {
		t.Error("non-ascending key accepted")
	}
	ok := &RelationSchema{Name: "R", Attrs: []Attribute{{Name: "a", Kind: KindInt}}, Key: []int{0}}
	if err := s.AddRelation(ok); err != nil {
		t.Fatalf("valid relation rejected: %v", err)
	}
	if err := s.AddRelation(&RelationSchema{Name: "r", Attrs: []Attribute{{Name: "a", Kind: KindInt}}}); err == nil {
		t.Error("case-insensitive duplicate relation accepted")
	}
	if s.Relation("R") == nil || s.Relation("r") == nil {
		t.Error("case-insensitive lookup failed")
	}
}

func TestRelationSchemaHelpers(t *testing.T) {
	rs := bankSchema().Relation("accounts")
	if rs.Arity() != 4 {
		t.Errorf("Arity = %d", rs.Arity())
	}
	if rs.AttrIndex("bal") != 3 || rs.AttrIndex("BAL") != 3 {
		t.Error("AttrIndex case-insensitivity")
	}
	if rs.AttrIndex("nope") != -1 {
		t.Error("AttrIndex missing")
	}
	if !rs.HasKey() {
		t.Error("HasKey")
	}
	if got := rs.KeyNames(); len(got) != 1 || got[0] != "ACCID" {
		t.Errorf("KeyNames = %v", got)
	}
}

func TestInsertValidation(t *testing.T) {
	in := NewInstance(bankSchema())
	if _, err := in.Insert("nope", Tuple{Str("x")}); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := in.Insert("Customer", Tuple{Str("x")}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := in.Insert("Customer", Tuple{Int(1), Str("a"), Str("b")}); err == nil {
		t.Error("wrong kind accepted")
	}
	// NULL allowed anywhere; INT coerces into FLOAT columns.
	if _, err := in.Insert("Customer", Tuple{Str("C9"), Null(), Str("LA")}); err != nil {
		t.Errorf("NULL rejected: %v", err)
	}
	s := NewSchema()
	s.MustAddRelation(&RelationSchema{Name: "F", Attrs: []Attribute{{Name: "x", Kind: KindFloat}}})
	fin := NewInstance(s)
	if _, err := fin.Insert("F", Tuple{Int(3)}); err != nil {
		t.Errorf("INT into FLOAT column rejected: %v", err)
	}
}

func TestInstanceBasics(t *testing.T) {
	in := bankInstance()
	if in.NumFacts() != 14 {
		t.Fatalf("NumFacts = %d, want 14", in.NumFacts())
	}
	if in.RelSize("customer") != 5 || in.RelSize("ACCOUNTS") != 5 || in.RelSize("CustAcc") != 4 {
		t.Error("RelSize mismatch")
	}
	f := in.Fact(7) // f8 = (A3, Saving, SJ, 1200)
	if f.Rel != "accounts" || !f.Tuple[0].Equal(Str("A3")) || f.Tuple[3].AsInt() != 1200 {
		t.Errorf("Fact(7) = %+v", f)
	}
	if f.ID != 7 {
		t.Error("fact ID mismatch")
	}
}

func TestKeyEqualGroups(t *testing.T) {
	in := bankInstance()
	groups := in.KeyEqualGroups()
	// 4 customer groups + 4 account groups + 4 custacc groups = 12
	if len(groups) != 12 {
		t.Fatalf("got %d groups, want 12", len(groups))
	}
	var violating []KeyEqualGroup
	for _, g := range groups {
		if g.Violating() {
			violating = append(violating, g)
		}
	}
	if len(violating) != 2 {
		t.Fatalf("got %d violating groups, want 2", len(violating))
	}
	// f2,f3 (IDs 1,2) and f8,f9 (IDs 7,8)
	if violating[0].Facts[0] != 1 || violating[0].Facts[1] != 2 {
		t.Errorf("first violating group = %v", violating[0].Facts)
	}
	if violating[1].Facts[0] != 7 || violating[1].Facts[1] != 8 {
		t.Errorf("second violating group = %v", violating[1].Facts)
	}
	// Determinism: groups sorted by smallest fact ID.
	for i := 1; i < len(groups); i++ {
		if groups[i-1].Facts[0] >= groups[i].Facts[0] {
			t.Fatal("groups not ordered by smallest fact ID")
		}
	}
}

func TestKeyEqualGroupsNoKey(t *testing.T) {
	s := NewSchema()
	s.MustAddRelation(&RelationSchema{Name: "R", Attrs: []Attribute{{Name: "a", Kind: KindInt}}})
	in := NewInstance(s)
	in.MustInsert("R", Int(1))
	in.MustInsert("R", Int(1)) // duplicate but no key: still consistent
	groups := in.KeyEqualGroups()
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2 singletons", len(groups))
	}
	for _, g := range groups {
		if g.Violating() {
			t.Error("keyless relation reported a violation")
		}
	}
}

func TestKeyInconsistencyStats(t *testing.T) {
	in := bankInstance()
	stats := in.KeyInconsistency()
	if len(stats) != 3 {
		t.Fatalf("got %d stats, want 3", len(stats))
	}
	cust := stats[0]
	if cust.Rel != "Customer" || cust.Facts != 5 || cust.ViolatingFacts != 2 ||
		cust.Groups != 4 || cust.LargestGroup != 2 || cust.ViolatingGroups != 1 {
		t.Errorf("customer stats = %+v", cust)
	}
	if p := cust.Percent(); p < 39.9 || p > 40.1 {
		t.Errorf("customer inconsistency = %v%%, want 40%%", p)
	}
	if (InconsistencyStats{}).Percent() != 0 {
		t.Error("empty relation should be 0% inconsistent")
	}
}

func TestSubset(t *testing.T) {
	in := bankInstance()
	// Keep a repair: drop f3 (ID 2) and f9 (ID 8).
	rep := in.Subset(func(id FactID) bool { return id != 2 && id != 8 })
	if rep.NumFacts() != 12 {
		t.Fatalf("repair has %d facts, want 12", rep.NumFacts())
	}
	for _, g := range rep.KeyEqualGroups() {
		if g.Violating() {
			t.Error("repair still violates a key")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := bankInstance()
	var buf bytes.Buffer
	if err := in.WriteCSV("Accounts", &buf); err != nil {
		t.Fatal(err)
	}
	out := NewInstance(bankSchema())
	if err := out.ReadCSV("Accounts", &buf); err != nil {
		t.Fatal(err)
	}
	if out.RelSize("Accounts") != 5 {
		t.Fatalf("round trip lost rows: %d", out.RelSize("Accounts"))
	}
	for i, id := range out.RelFacts("Accounts") {
		want := in.Fact(in.RelFacts("Accounts")[i]).Tuple
		if !out.Fact(id).Tuple.Equal(want) {
			t.Errorf("row %d: got %v, want %v", i, out.Fact(id).Tuple, want)
		}
	}
}

func TestCSVHeaderValidation(t *testing.T) {
	in := NewInstance(bankSchema())
	if err := in.ReadCSV("Customer", strings.NewReader("CID,WHO,CITY\n")); err == nil {
		t.Error("unknown column accepted")
	}
	if err := in.ReadCSV("Customer", strings.NewReader("CID,CID,CITY\n")); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := in.ReadCSV("Customer", strings.NewReader("CID,NAME\n")); err == nil {
		t.Error("missing column accepted")
	}
	if err := in.ReadCSV("nope", strings.NewReader("x\n")); err == nil {
		t.Error("unknown relation accepted")
	}
	// Column order in the file is free.
	err := in.ReadCSV("Customer", strings.NewReader("CITY,CID,NAME\nLA,C9,Zoe\n"))
	if err != nil {
		t.Fatalf("reordered columns rejected: %v", err)
	}
	f := in.Fact(in.RelFacts("Customer")[0])
	if !f.Tuple[0].Equal(Str("C9")) || !f.Tuple[2].Equal(Str("LA")) {
		t.Errorf("reordered parse wrong: %v", f.Tuple)
	}
}

func TestCSVBadValue(t *testing.T) {
	in := NewInstance(bankSchema())
	err := in.ReadCSV("Accounts", strings.NewReader("ACCID,TYPE,CITY,BAL\nA1,Check.,LA,notanumber\n"))
	if err == nil {
		t.Error("bad INT value accepted")
	}
}

func TestSaveLoadDir(t *testing.T) {
	in := bankInstance()
	dir := t.TempDir()
	if err := in.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	out, err := LoadDir(bankSchema(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumFacts() != in.NumFacts() {
		t.Fatalf("LoadDir: got %d facts, want %d", out.NumFacts(), in.NumFacts())
	}
}
