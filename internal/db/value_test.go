package db

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(7), KindInt},
		{Float(2.5), KindFloat},
		{Str("x"), KindString},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind() = %v, want %v", c.v.Kind(), c.kind)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misclassifies")
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 {
		t.Error("AsInt")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Error("AsFloat on float")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("AsFloat on int")
	}
	if Str("hi").AsString() != "hi" {
		t.Error("AsString")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { Str("x").AsInt() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsFloat on string", func() { Str("x").AsFloat() })
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-3), "-3"},
		{Float(0.25), "0.25"},
		{Str("abc"), "abc"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	ordered := []Value{
		Null(),
		Int(-5), Float(-1.5), Int(0), Float(0.5), Int(2), Float(2.5),
		Str(""), Str("a"), Str("b"),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueCompareNumericCross(t *testing.T) {
	if Int(2).Compare(Float(2.0)) != 0 {
		t.Error("INT 2 should equal FLOAT 2.0")
	}
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Equal should hold across numeric kinds")
	}
	if Int(math.MaxInt64).Compare(Int(math.MaxInt64)) != 0 {
		t.Error("max int self-compare")
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(KindInt, "123")
	if err != nil || v.AsInt() != 123 {
		t.Errorf("ParseValue INT: %v %v", v, err)
	}
	v, err = ParseValue(KindFloat, "1.5")
	if err != nil || v.AsFloat() != 1.5 {
		t.Errorf("ParseValue FLOAT: %v %v", v, err)
	}
	v, err = ParseValue(KindString, "hi")
	if err != nil || v.AsString() != "hi" {
		t.Errorf("ParseValue STRING: %v %v", v, err)
	}
	// empty numeric fields parse to NULL
	v, err = ParseValue(KindInt, "")
	if err != nil || !v.IsNull() {
		t.Errorf("ParseValue empty INT: %v %v", v, err)
	}
	if _, err := ParseValue(KindInt, "abc"); err == nil {
		t.Error("ParseValue should reject non-numeric INT")
	}
	if _, err := ParseValue(KindFloat, "abc"); err == nil {
		t.Error("ParseValue should reject non-numeric FLOAT")
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		v, err := ParseValue(KindInt, Int(n).String())
		return err == nil && v.AsInt() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleEqualCompare(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := Tuple{Int(1), Str("x")}
	c := Tuple{Int(1), Str("y")}
	if !a.Equal(b) {
		t.Error("equal tuples")
	}
	if a.Equal(c) {
		t.Error("unequal tuples")
	}
	if a.Compare(c) >= 0 {
		t.Error("x < y")
	}
	if a.Compare(Tuple{Int(1)}) <= 0 {
		t.Error("longer tuple with equal prefix should be greater")
	}
	if a.Equal(Tuple{Int(1)}) {
		t.Error("length mismatch must not be equal")
	}
}

func TestTupleClone(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := a.Clone()
	b[0] = Int(9)
	if a[0].AsInt() != 1 {
		t.Error("Clone must not alias")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Kinds are part of the encoding: Int(1) and Str("1") must differ.
	a := Tuple{Int(1)}
	b := Tuple{Str("1")}
	if a.Key([]int{0}) == b.Key([]int{0}) {
		t.Error("Key must distinguish kinds")
	}
	// Separator prevents ambiguity across positions.
	c := Tuple{Str("ab"), Str("c")}
	d := Tuple{Str("a"), Str("bc")}
	if c.Key([]int{0, 1}) == d.Key([]int{0, 1}) {
		t.Error("Key must separate positions")
	}
}
