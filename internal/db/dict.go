package db

// Dict is an append-only string interner: every distinct string stored
// in a columnar instance is assigned a dense uint32 code, and string
// columns hold codes instead of string headers. Two facts of one
// instance carry equal strings iff their codes are equal, so the hot
// paths (key grouping, join probes, partition indexes) compare and hash
// 4-byte codes instead of walking string bytes.
//
// A Dict is owned by exactly one Instance and shared by all of its
// string columns. Like the instance itself it is built single-threaded
// (Insert is not safe for concurrent use) and read-only thereafter;
// concurrent reads after the build are safe without locking.
type Dict struct {
	byStr map[string]uint32
	strs  []string
}

// NewDict creates an empty interner.
func NewDict() *Dict {
	return &Dict{byStr: make(map[string]uint32)}
}

// Intern returns the code for s, assigning the next dense code on first
// sight.
func (d *Dict) Intern(s string) uint32 {
	if c, ok := d.byStr[s]; ok {
		return c
	}
	c := uint32(len(d.strs))
	d.strs = append(d.strs, s)
	d.byStr[s] = c
	return c
}

// Lookup returns the code for s without interning. ok=false means no
// fact in the owning instance stores s, which probe sites use to skip
// the hash index entirely.
func (d *Dict) Lookup(s string) (uint32, bool) {
	c, ok := d.byStr[s]
	return c, ok
}

// String returns the string behind a code.
func (d *Dict) String(code uint32) string { return d.strs[code] }

// Len returns the number of distinct interned strings.
func (d *Dict) Len() int { return len(d.strs) }

// rebuildMap reconstructs the byStr map from strs; used after a
// snapshot load, where only the string pool is serialized.
func (d *Dict) rebuildMap() {
	d.byStr = make(map[string]uint32, len(d.strs))
	for i, s := range d.strs {
		d.byStr[s] = uint32(i)
	}
}
