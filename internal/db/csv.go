package db

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteCSV writes all facts of the named relation to w, one row per fact,
// preceded by a header row with the attribute names.
func (in *Instance) WriteCSV(rel string, w io.Writer) error {
	rs := in.schema.Relation(rel)
	if rs == nil {
		return fmt.Errorf("db: WriteCSV: unknown relation %s", rel)
	}
	cw := csv.NewWriter(w)
	header := make([]string, rs.Arity())
	for i, a := range rs.Attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, rs.Arity())
	for _, id := range in.RelFacts(rel) {
		rv := in.Row(id)
		for i := range row {
			v := rv.Value(i)
			if v.IsNull() {
				row[i] = ""
			} else {
				row[i] = v.String()
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads rows from r into the named relation. The first row must be
// a header; columns are matched to attributes by name (case-insensitive)
// so column order in the file is free.
func (in *Instance) ReadCSV(rel string, r io.Reader) error {
	rs := in.schema.Relation(rel)
	if rs == nil {
		return fmt.Errorf("db: ReadCSV: unknown relation %s", rel)
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("db: ReadCSV %s: read header: %w", rs.Name, err)
	}
	colFor := make([]int, len(header)) // file column -> attribute position
	seen := make([]bool, rs.Arity())
	for i, h := range header {
		p := rs.AttrIndex(strings.TrimSpace(h))
		if p < 0 {
			return fmt.Errorf("db: ReadCSV %s: unknown column %q", rs.Name, h)
		}
		if seen[p] {
			return fmt.Errorf("db: ReadCSV %s: duplicate column %q", rs.Name, h)
		}
		seen[p] = true
		colFor[i] = p
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("db: ReadCSV %s: missing column %q", rs.Name, rs.Attrs[i].Name)
		}
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("db: ReadCSV %s: line %d: %w", rs.Name, line+1, err)
		}
		line++
		t := make(Tuple, rs.Arity())
		for i, field := range rec {
			p := colFor[i]
			v, err := ParseValue(rs.Attrs[p].Kind, field)
			if err != nil {
				return fmt.Errorf("db: ReadCSV %s: line %d, column %s: %w", rs.Name, line, rs.Attrs[p].Name, err)
			}
			t[p] = v
		}
		if _, err := in.Insert(rs.Name, t); err != nil {
			return fmt.Errorf("db: ReadCSV %s: line %d: %w", rs.Name, line, err)
		}
	}
}

// SaveDir writes one <relation>.csv file per relation into dir, creating
// the directory if needed.
func (in *Instance) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rs := range in.schema.Relations() {
		path := filepath.Join(dir, strings.ToLower(rs.Name)+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := in.WriteCSV(rs.Name, f); err != nil {
			f.Close()
			return fmt.Errorf("db: SaveDir: %s: %w", rs.Name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads one <relation>.csv per relation of the schema from dir.
// Missing files leave the relation empty.
func LoadDir(schema *Schema, dir string) (*Instance, error) {
	in := NewInstance(schema)
	for _, rs := range schema.Relations() {
		path := filepath.Join(dir, strings.ToLower(rs.Name)+".csv")
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		if err := in.ReadCSV(rs.Name, f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	return in, nil
}
