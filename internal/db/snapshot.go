package db

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"unsafe"
)

// Versioned binary snapshot of a columnar instance. The format is a
// header followed by flat little-endian arrays — the column arenas of
// columnar.go written out verbatim — every section 8-byte aligned, so a
// loader on a little-endian host aliases the arrays straight out of an
// mmap'ed file with unsafe.Slice: no decode pass, no per-fact
// allocation, and the page cache shares the data across processes.
//
//	[0]  magic   "CAVSNAP1"            [8]byte
//	[8]  format version                uint32 (= SnapshotFormatVersion)
//	[12] reserved                      uint32 (0)
//	[16] dataVersion                   uint64 (FNV-1a over the body)
//	[24] totalSize                     uint64 (whole file, incl. tail)
//	[32] nFacts, nRels, nStrings       3×uint64
//	[56] schemaLen                     uint64
//	[64] schema JSON                   schemaLen bytes, padded to 8
//	     dict offsets                  (nStrings+1)×uint64, cumulative
//	     dict blob                     offsets[nStrings] bytes, padded
//	     factRel                       nFacts×uint32, padded
//	     per relation, schema order:
//	       rowCount                    uint64
//	       per attribute, in order:
//	         INT    → ints             rowCount×int64
//	         FLOAT  → raw              rowCount×uint64
//	                  intRows bitmap   ⌈rowCount/64⌉×uint64
//	         STRING → codes            rowCount×uint32, padded
//	         nulls bitmap              ⌈rowCount/64⌉×uint64
//	     tail "CAVSEND1"               [8]byte
//
// Lifetime rules (see DESIGN.md §12): an instance returned by
// OpenSnapshot aliases the mapping until Snapshot.Close; it is frozen —
// Insert returns an error — and Close must not be called while any
// query over the instance is still running. LoadSnapshotBytes aliases
// the caller's buffer the same way. Cross-endian hosts (and unaligned
// buffers) fall back to a copying decode; the file bytes are identical
// everywhere.

// SnapshotFormatVersion is the current (and only) snapshot format.
const SnapshotFormatVersion uint32 = 1

var (
	snapMagic = [8]byte{'C', 'A', 'V', 'S', 'N', 'A', 'P', '1'}
	snapTail  = [8]byte{'C', 'A', 'V', 'S', 'E', 'N', 'D', '1'}
)

var (
	// ErrSnapshotMagic means the file is not a snapshot at all.
	ErrSnapshotMagic = errors.New("db: snapshot: bad magic (not a snapshot file)")
	// ErrSnapshotVersion means the format version is not understood.
	// The wrapping error carries the got/want numbers.
	ErrSnapshotVersion = errors.New("db: snapshot: unsupported format version")
	// ErrSnapshotTruncated means the file ends before its declared
	// sections do (or the tail marker is missing).
	ErrSnapshotTruncated = errors.New("db: snapshot: truncated or corrupt")
)

const snapHeaderSize = 64

// hostLittleEndian reports whether unsafe.Slice aliasing reads the
// serialized little-endian arrays correctly on this machine.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func snapAlign(n int) int { return (n + 7) &^ 7 }

func snapWords(rows int) int { return (rows + 63) / 64 }

// snapshot schema JSON shape — stable, independent of the Go structs.
type snapRelJSON struct {
	Name  string         `json:"name"`
	Attrs []snapAttrJSON `json:"attrs"`
	Key   []int          `json:"key,omitempty"`
}

type snapAttrJSON struct {
	Name string `json:"name"`
	Kind uint8  `json:"kind"`
}

// snapWriter accumulates the body with 8-byte alignment.
type snapWriter struct {
	buf []byte
}

func (w *snapWriter) pad() {
	for len(w.buf)%8 != 0 {
		w.buf = append(w.buf, 0)
	}
}

func (w *snapWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *snapWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

func (w *snapWriter) u32s(vs []uint32) {
	for _, v := range vs {
		w.u32(v)
	}
	w.pad()
}

func (w *snapWriter) u64s(vs []uint64) {
	for _, v := range vs {
		w.u64(v)
	}
}

func (w *snapWriter) i64s(vs []int64) {
	for _, v := range vs {
		w.u64(uint64(v))
	}
}

// bitmapWords writes b padded (or clipped) to exactly n words.
func (w *snapWriter) bitmapWords(b bitset, n int) {
	for i := 0; i < n; i++ {
		if i < len(b) {
			w.u64(b[i])
		} else {
			w.u64(0)
		}
	}
}

// EncodeSnapshot serializes the instance in the snapshot format. A
// LayoutRow instance is converted to columnar first (snapshots only
// store column arenas).
func EncodeSnapshot(in *Instance) ([]byte, error) {
	in = in.ConvertLayout(LayoutColumnar)
	var rels []snapRelJSON
	for _, rs := range in.schema.Relations() {
		sr := snapRelJSON{Name: rs.Name, Key: rs.Key}
		for _, a := range rs.Attrs {
			if a.Kind != KindInt && a.Kind != KindFloat && a.Kind != KindString {
				return nil, fmt.Errorf("db: snapshot: relation %s: unsupported attribute kind %s", rs.Name, a.Kind)
			}
			sr.Attrs = append(sr.Attrs, snapAttrJSON{Name: a.Name, Kind: uint8(a.Kind)})
		}
		rels = append(rels, sr)
	}
	schemaJSON, err := json.Marshal(rels)
	if err != nil {
		return nil, err
	}

	var w snapWriter
	// Body first; the header (with the body fingerprint) is prepended
	// after.
	w.buf = append(w.buf, schemaJSON...)
	w.pad()
	// Dictionary: cumulative offsets then the concatenated bytes.
	off := uint64(0)
	offsets := make([]uint64, 0, in.dict.Len()+1)
	for _, s := range in.dict.strs {
		offsets = append(offsets, off)
		off += uint64(len(s))
	}
	offsets = append(offsets, off)
	w.u64s(offsets)
	for _, s := range in.dict.strs {
		w.buf = append(w.buf, s...)
	}
	w.pad()
	w.u32s(in.factRel)
	for _, rs := range in.schema.Relations() {
		rc := in.rels[rs.ID()]
		rows := len(rc.ids)
		nW := snapWords(rows)
		w.u64(uint64(rows))
		for i := range rc.cols {
			c := &rc.cols[i]
			switch c.kind {
			case KindInt:
				w.i64s(c.ints)
			case KindFloat:
				w.u64s(c.raw)
				w.bitmapWords(c.intRows, nW)
			case KindString:
				w.u32s(c.codes)
			}
			w.bitmapWords(c.nulls, nW)
		}
	}
	body := w.buf

	dataVersion := HashSeed
	for _, b := range body {
		dataVersion = hashByte(dataVersion, b)
	}

	out := make([]byte, 0, snapHeaderSize+len(body)+8)
	out = append(out, snapMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, SnapshotFormatVersion)
	out = binary.LittleEndian.AppendUint32(out, 0)
	out = binary.LittleEndian.AppendUint64(out, dataVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(snapHeaderSize+len(body)+8))
	out = binary.LittleEndian.AppendUint64(out, uint64(in.nFacts))
	out = binary.LittleEndian.AppendUint64(out, uint64(in.schema.NumRelations()))
	out = binary.LittleEndian.AppendUint64(out, uint64(in.dict.Len()))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(schemaJSON)))
	out = append(out, body...)
	out = append(out, snapTail[:]...)
	return out, nil
}

// SaveSnapshot writes the instance's snapshot to path atomically
// (write to a temp file in the same directory, then rename).
func SaveSnapshot(in *Instance, path string) error {
	data, err := EncodeSnapshot(in)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// snapReader is a bounds-checked cursor over the snapshot bytes. Every
// take* returns ErrSnapshotTruncated via r.err when the declared
// sections run past the buffer.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		r.err = ErrSnapshotTruncated
		return nil
	}
	s := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return s
}

func (r *snapReader) pad() {
	if rem := r.off % 8; rem != 0 {
		r.take(8 - rem)
	}
}

func (r *snapReader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// The slice decoders alias the buffer (len==cap, so appends copy) on
// little-endian hosts and copy-convert elsewhere.

func (r *snapReader) u64s(n int) []uint64 {
	s := r.take(n * 8)
	if s == nil {
		return nil
	}
	if n == 0 {
		return []uint64{}
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&s[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(s[i*8:])
	}
	return out
}

func (r *snapReader) i64s(n int) []int64 {
	u := r.u64s(n)
	if len(u) == 0 {
		if u == nil {
			return nil
		}
		return []int64{}
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&u[0])), len(u))
}

func (r *snapReader) u32s(n int) []uint32 {
	s := r.take(n * 4)
	r.pad()
	if s == nil {
		return nil
	}
	if n == 0 {
		return []uint32{}
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&s[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(s[i*4:])
	}
	return out
}

// LoadSnapshotBytes decodes a snapshot, aliasing the column arenas into
// b (zero copy on little-endian hosts). The returned instance is frozen
// (Insert refuses) and remains valid only as long as b does — with an
// mmap'ed b, until the mapping is unmapped. Its DataVersion is the
// header fingerprint.
func LoadSnapshotBytes(b []byte) (*Instance, error) {
	if len(b) < snapHeaderSize+8 {
		if len(b) >= 8 && string(b[:8]) != string(snapMagic[:]) {
			return nil, ErrSnapshotMagic
		}
		return nil, ErrSnapshotTruncated
	}
	if string(b[:8]) != string(snapMagic[:]) {
		return nil, ErrSnapshotMagic
	}
	version := binary.LittleEndian.Uint32(b[8:])
	if version != SnapshotFormatVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrSnapshotVersion, version, SnapshotFormatVersion)
	}
	dataVersion := binary.LittleEndian.Uint64(b[16:])
	totalSize := binary.LittleEndian.Uint64(b[24:])
	nFacts := binary.LittleEndian.Uint64(b[32:])
	nRels := binary.LittleEndian.Uint64(b[40:])
	nStrings := binary.LittleEndian.Uint64(b[48:])
	schemaLen := binary.LittleEndian.Uint64(b[56:])
	if totalSize != uint64(len(b)) || string(b[len(b)-8:]) != string(snapTail[:]) {
		return nil, ErrSnapshotTruncated
	}
	const sane = 1 << 40
	if nFacts > sane || nRels > sane || nStrings > sane || schemaLen > sane {
		return nil, ErrSnapshotTruncated
	}

	// Guarantee the 8-byte alignment unsafe.Slice needs: mmap bases are
	// page-aligned, but an arbitrary caller buffer may not be.
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		cp := make([]uint64, (len(b)+7)/8)
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&cp[0])), len(b)), b)
		b = unsafe.Slice((*byte)(unsafe.Pointer(&cp[0])), len(b))
	}

	r := &snapReader{b: b[:len(b)-8], off: snapHeaderSize}
	schemaJSON := r.take(int(schemaLen))
	r.pad()
	if r.err != nil {
		return nil, r.err
	}
	var rels []snapRelJSON
	if err := json.Unmarshal(schemaJSON, &rels); err != nil {
		return nil, fmt.Errorf("db: snapshot: schema: %w", err)
	}
	if uint64(len(rels)) != nRels {
		return nil, ErrSnapshotTruncated
	}
	schema := NewSchema()
	for _, sr := range rels {
		rs := &RelationSchema{Name: sr.Name, Key: sr.Key}
		for _, a := range sr.Attrs {
			rs.Attrs = append(rs.Attrs, Attribute{Name: a.Name, Kind: Kind(a.Kind)})
		}
		if err := schema.AddRelation(rs); err != nil {
			return nil, fmt.Errorf("db: snapshot: schema: %w", err)
		}
	}

	in := NewInstanceLayout(schema, LayoutColumnar)
	in.frozen = true
	in.dataVersion = dataVersion

	// Dictionary: the string headers point into the blob (zero copy of
	// the bytes themselves).
	offsets := r.u64s(int(nStrings) + 1)
	if r.err != nil {
		return nil, r.err
	}
	blobLen := int(offsets[nStrings])
	blob := r.take(blobLen)
	r.pad()
	if r.err != nil {
		return nil, r.err
	}
	strs := make([]string, nStrings)
	for i := range strs {
		lo, hi := offsets[i], offsets[i+1]
		if lo > hi || hi > uint64(blobLen) {
			return nil, ErrSnapshotTruncated
		}
		if lo == hi {
			continue // empty string: keep the zero value
		}
		strs[i] = unsafe.String(&blob[lo], int(hi-lo))
	}
	in.dict.strs = strs
	in.dict.rebuildMap()

	in.factRel = r.u32s(int(nFacts))
	if r.err != nil {
		return nil, r.err
	}
	in.nFacts = int(nFacts)

	for _, rs := range schema.Relations() {
		rc := in.rels[rs.ID()]
		rows := int(r.u64())
		if r.err != nil {
			return nil, r.err
		}
		nW := snapWords(rows)
		rc.ids = make([]FactID, 0, rows)
		for i := range rc.cols {
			c := &rc.cols[i]
			switch c.kind {
			case KindInt:
				c.ints = r.i64s(rows)
			case KindFloat:
				c.raw = r.u64s(rows)
				c.intRows = bitset(r.u64s(nW))
			case KindString:
				c.codes = r.u32s(rows)
			default:
				return nil, fmt.Errorf("db: snapshot: relation %s: unsupported column kind %s", rs.Name, c.kind)
			}
			c.nulls = bitset(r.u64s(nW))
			if r.err != nil {
				return nil, r.err
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, ErrSnapshotTruncated
	}

	// Rebuild the per-fact bookkeeping (factRow, per-relation ID lists)
	// in one pass over factRel; validate codes and RelIDs on the way so
	// a corrupt body cannot index out of bounds later.
	in.factRow = make([]uint32, nFacts)
	for id, rid := range in.factRel {
		if uint64(rid) >= nRels {
			return nil, ErrSnapshotTruncated
		}
		rc := in.rels[rid]
		in.factRow[id] = uint32(len(rc.ids))
		rc.ids = append(rc.ids, FactID(id))
	}
	for _, rs := range schema.Relations() {
		rc := in.rels[rs.ID()]
		in.byRel[rs.ID()] = rc.ids
		for i := range rc.cols {
			c := &rc.cols[i]
			if len(c.ints) != 0 && len(c.ints) != len(rc.ids) ||
				len(c.raw) != 0 && len(c.raw) != len(rc.ids) ||
				len(c.codes) != 0 && len(c.codes) != len(rc.ids) {
				return nil, ErrSnapshotTruncated
			}
			for _, code := range c.codes {
				if uint64(code) >= nStrings {
					return nil, ErrSnapshotTruncated
				}
			}
		}
	}
	return in, nil
}

// Snapshot is an instance backed by an mmap'ed snapshot file. Close
// unmaps the file; the instance (and anything still referencing its
// tuples or strings) must not be used afterwards.
type Snapshot struct {
	in   *Instance
	data []byte
	path string
}

// OpenSnapshot maps the snapshot file at path and decodes it zero-copy.
func OpenSnapshot(path string) (*Snapshot, error) {
	data, err := mmapFile(path)
	if err != nil {
		return nil, err
	}
	in, err := LoadSnapshotBytes(data)
	if err != nil {
		munmapFile(data)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Snapshot{in: in, data: data, path: path}, nil
}

// Instance returns the snapshot-backed (frozen) instance.
func (s *Snapshot) Instance() *Instance { return s.in }

// DataVersion returns the snapshot's content fingerprint.
func (s *Snapshot) DataVersion() uint64 { return s.in.dataVersion }

// Path returns the file the snapshot was opened from.
func (s *Snapshot) Path() string { return s.path }

// SizeBytes returns the mapped (or read) file size.
func (s *Snapshot) SizeBytes() int { return len(s.data) }

// Close releases the mapping. The instance must no longer be in use.
func (s *Snapshot) Close() error {
	if s.data == nil {
		return nil
	}
	data := s.data
	s.data = nil
	return munmapFile(data)
}
