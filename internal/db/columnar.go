package db

import "math"

// Columnar backend. Facts of one relation live in per-attribute column
// arenas instead of []Value tuples:
//
//	INT    attribute → ints  []int64  (+ nulls bitmap)
//	FLOAT  attribute → raw   []uint64 (+ nulls, intRows bitmaps)
//	STRING attribute → codes []uint32 (+ nulls bitmap), codes into the
//	                   instance-wide Dict string pool
//
// A FLOAT attribute may legally store INT values (Insert accepts the
// widening, and EqualExact/HashExact are kind-sensitive: Int(1) and
// Float(1) are different keys). The raw word holds math.Float64bits for
// FLOAT rows and the int64 bit pattern for INT rows, with the intRows
// bitmap recording which is which, so round-tripping through the column
// is exact — same kinds, same payload bits, same hashes as the row
// store.
//
// The arenas are append-only and 8-byte-pure (no pointers except the
// dict strings), which is what makes them serializable as flat snapshot
// sections and mmap-able back in without decoding (snapshot.go).

// bitset is a packed bit vector. The zero value is an empty set; bits
// are appended via setGrow as rows arrive.
type bitset []uint64

func (b bitset) get(i int) bool {
	w := i >> 6
	return w < len(b) && (b[w]>>(uint(i)&63))&1 != 0
}

// setGrow sets bit i, extending the word slice as needed. Appending to
// a snapshot-aliased bitset reallocates (len==cap), so mapped memory is
// never written.
func (b *bitset) setGrow(i int) {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

// column is one attribute's arena. Exactly one of ints/raw/codes is
// populated, per the declared kind.
type column struct {
	kind    Kind
	ints    []int64  // KindInt
	raw     []uint64 // KindFloat: Float64bits, or int64 bits when intRows
	codes   []uint32 // KindString: dict codes
	nulls   bitset   // set = NULL at that row
	intRows bitset   // KindFloat only: set = row holds a KindInt value
}

// appendValue appends v (already schema-validated by Insert) as row
// `row` of the column.
func (c *column) appendValue(d *Dict, row int, v Value) {
	if v.IsNull() {
		c.nulls.setGrow(row)
		v = Value{} // store a zero payload under the null bit
	}
	switch c.kind {
	case KindInt:
		c.ints = append(c.ints, v.i)
	case KindFloat:
		if v.kind == KindInt {
			c.intRows.setGrow(row)
			c.raw = append(c.raw, uint64(v.i))
		} else {
			c.raw = append(c.raw, math.Float64bits(v.f))
		}
	case KindString:
		if v.kind == KindString {
			c.codes = append(c.codes, d.Intern(v.s))
		} else {
			c.codes = append(c.codes, 0)
		}
	default:
		// Schema validation (NewInstance) rejects other attribute kinds.
		panic("db: column of kind " + c.kind.String())
	}
}

// value materializes row `row` as a Value.
func (c *column) value(d *Dict, row int) Value {
	if c.nulls.get(row) {
		return Null()
	}
	switch c.kind {
	case KindInt:
		return Int(c.ints[row])
	case KindFloat:
		if c.intRows.get(row) {
			return Int(int64(c.raw[row]))
		}
		return Float(math.Float64frombits(c.raw[row]))
	default:
		return Str(d.strs[c.codes[row]])
	}
}

// hashRow folds row `row` into h with the columnar twin of
// Value.HashExact: identical for INT/FLOAT/NULL, but strings fold their
// 4-byte dict code instead of walking the bytes. Probe sides must pair
// it with Instance.HashProbeValue so both sides of an index agree.
func (c *column) hashRow(h uint64, row int) uint64 {
	if c.nulls.get(row) {
		return hashByte(h, byte(KindNull))
	}
	switch c.kind {
	case KindInt:
		return hashUint64(hashByte(h, byte(KindInt)), uint64(c.ints[row]))
	case KindFloat:
		if c.intRows.get(row) {
			return hashUint64(hashByte(h, byte(KindInt)), c.raw[row])
		}
		return hashUint64(hashByte(h, byte(KindFloat)), c.raw[row])
	default:
		return hashUint64(hashByte(h, byte(KindString)), uint64(c.codes[row]))
	}
}

// equalRows reports EqualExact of rows a and b of the column — code
// comparison for strings, bit comparison for numerics.
func (c *column) equalRows(a, b int) bool {
	na, nb := c.nulls.get(a), c.nulls.get(b)
	if na || nb {
		return na && nb
	}
	switch c.kind {
	case KindInt:
		return c.ints[a] == c.ints[b]
	case KindFloat:
		return c.intRows.get(a) == c.intRows.get(b) && c.raw[a] == c.raw[b]
	default:
		return c.codes[a] == c.codes[b]
	}
}

// matchValue reports EqualExact between row `row` and a probe Value.
func (c *column) matchValue(d *Dict, row int, v Value) bool {
	if c.nulls.get(row) {
		return v.kind == KindNull
	}
	switch c.kind {
	case KindInt:
		return v.kind == KindInt && v.i == c.ints[row]
	case KindFloat:
		if c.intRows.get(row) {
			return v.kind == KindInt && uint64(v.i) == c.raw[row]
		}
		return v.kind == KindFloat && math.Float64bits(v.f) == c.raw[row]
	default:
		return v.kind == KindString && v.s == d.strs[c.codes[row]]
	}
}

// compareRows is Value.Compare between rows a and b of the column
// without materializing either side (strings still compare
// lexicographically when their codes differ — Compare is an order, not
// an identity).
func (c *column) compareRows(d *Dict, a, b int) int {
	na, nb := c.nulls.get(a), c.nulls.get(b)
	switch {
	case na && nb:
		return 0
	case na:
		return -1
	case nb:
		return 1
	}
	switch c.kind {
	case KindInt:
		return cmpInt64(c.ints[a], c.ints[b])
	case KindFloat:
		fa, fb := c.floatAt(a), c.floatAt(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	default:
		ca, cb := c.codes[a], c.codes[b]
		if ca == cb {
			return 0
		}
		sa, sb := d.strs[ca], d.strs[cb]
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		}
		return 0
	}
}

func (c *column) floatAt(row int) float64 {
	if c.intRows.get(row) {
		return float64(int64(c.raw[row]))
	}
	return math.Float64frombits(c.raw[row])
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// relColumns is one relation's columnar arena: the fact IDs in
// insertion order plus one column per attribute.
type relColumns struct {
	ids  []FactID
	cols []column
}

func newRelColumns(rs *RelationSchema) *relColumns {
	rc := &relColumns{cols: make([]column, rs.Arity())}
	for i, a := range rs.Attrs {
		rc.cols[i].kind = a.Kind
	}
	return rc
}

// RowView is an allocation-free window onto one fact, valid for either
// backend. It replaces `in.Fact(id).Tuple` at hot call sites: values
// are materialized one position at a time, on demand.
type RowView struct {
	t    Tuple       // row backend
	dict *Dict       // columnar backend
	rc   *relColumns // columnar backend
	row  int
}

// Value returns the value at attribute position pos.
func (r RowView) Value(pos int) Value {
	if r.t != nil {
		return r.t[pos]
	}
	return r.rc.cols[pos].value(r.dict, r.row)
}

// Match reports EqualExact between position pos and v without
// materializing the stored value.
func (r RowView) Match(pos int, v Value) bool {
	if r.t != nil {
		return r.t[pos].EqualExact(v)
	}
	return r.rc.cols[pos].matchValue(r.dict, r.row, v)
}
