package db

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.snapshot from the current encoder")

// TestSnapshotRoundTrip: encode → load (both via bytes and via the
// mmap path) reproduces every value kind exactly, including NULLs,
// empty strings, -0.0, and INT values stored in FLOAT columns.
func TestSnapshotRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		col, _ := buildMixedPair(seed, 250)
		data, err := EncodeSnapshot(col)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadSnapshotBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		requireSameInstances(t, loaded, col)
		if loaded.DataVersion() == 0 {
			t.Fatal("loaded snapshot has zero data version")
		}
		if loaded.Layout() != LayoutColumnar {
			t.Fatal("snapshot loads as columnar")
		}

		path := filepath.Join(t.TempDir(), "snap.bin")
		if err := SaveSnapshot(col, path); err != nil {
			t.Fatal(err)
		}
		snap, err := OpenSnapshot(path)
		if err != nil {
			t.Fatal(err)
		}
		requireSameInstances(t, snap.Instance(), col)
		if snap.DataVersion() != loaded.DataVersion() {
			t.Fatalf("data versions differ: %x vs %x", snap.DataVersion(), loaded.DataVersion())
		}
		// Key-equal groups work off the mapped arenas.
		if got, want := len(snap.Instance().KeyEqualGroups()), len(col.KeyEqualGroups()); got != want {
			t.Fatalf("mapped groups: %d, want %d", got, want)
		}
		if err := snap.Close(); err != nil {
			t.Fatal(err)
		}
		if err := snap.Close(); err != nil {
			t.Fatal("double Close must be a no-op:", err)
		}
	}
}

// TestSnapshotRoundTripRowSource: a row-layout instance encodes by
// conversion and round-trips identically.
func TestSnapshotRoundTripRowSource(t *testing.T) {
	_, row := buildMixedPair(5, 120)
	data, err := EncodeSnapshot(row)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshotBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	requireSameInstances(t, loaded, row)
}

// TestSnapshotDeterministic: encoding is byte-stable — the same facts
// produce the same bytes and the same data version.
func TestSnapshotDeterministic(t *testing.T) {
	a, _ := buildMixedPair(9, 200)
	b, _ := buildMixedPair(9, 200)
	da, err := EncodeSnapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := EncodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("identical instances encode to different bytes")
	}
	c, _ := buildMixedPair(10, 200)
	dc, err := EncodeSnapshot(c)
	if err != nil {
		t.Fatal(err)
	}
	la, _ := LoadSnapshotBytes(da)
	lc, _ := LoadSnapshotBytes(dc)
	if la.DataVersion() == lc.DataVersion() {
		t.Fatal("different contents share a data version")
	}
}

// TestSnapshotFrozen: snapshot-backed instances refuse Insert with a
// clear error instead of scribbling on (potentially mapped) memory.
func TestSnapshotFrozen(t *testing.T) {
	col, _ := buildMixedPair(2, 60)
	data, err := EncodeSnapshot(col)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshotBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Insert("Mix", Tuple{Int(1), Float(2), Str("x"), Int(3)}); err == nil {
		t.Fatal("Insert into snapshot-backed instance must fail")
	}
	// Subset of a frozen instance materializes a fresh, mutable one.
	sub := loaded.Subset(func(FactID) bool { return true })
	if _, err := sub.Insert("Mix", Tuple{Int(-99), Float(2), Str("x"), Int(3)}); err != nil {
		t.Fatal("Subset of a snapshot must be mutable:", err)
	}
}

// TestSnapshotTypedErrors: magic, version, and truncation failures are
// the exported sentinel errors.
func TestSnapshotTypedErrors(t *testing.T) {
	col, _ := buildMixedPair(4, 100)
	data, err := EncodeSnapshot(col)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := LoadSnapshotBytes([]byte("definitely not a snapshot file at all")); !errors.Is(err, ErrSnapshotMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	if _, err := LoadSnapshotBytes(data[:11]); !errors.Is(err, ErrSnapshotTruncated) {
		t.Fatalf("tiny file: got %v", err)
	}

	wrongVersion := append([]byte(nil), data...)
	wrongVersion[8] = 99
	if _, err := LoadSnapshotBytes(wrongVersion); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("wrong version: got %v", err)
	}

	// Every proper prefix must be rejected as truncated, never panic.
	for _, cut := range []int{len(data) - 1, len(data) - 8, len(data) / 2, snapHeaderSize + 3, snapHeaderSize} {
		if cut < 0 {
			continue
		}
		if _, err := LoadSnapshotBytes(data[:cut]); !errors.Is(err, ErrSnapshotTruncated) {
			t.Fatalf("prefix %d: got %v", cut, err)
		}
	}

	// A tail-patched file with a lying size field is truncated too.
	resized := append([]byte(nil), data...)
	resized = append(resized, 0, 0, 0, 0, 0, 0, 0, 0)
	if _, err := LoadSnapshotBytes(resized); !errors.Is(err, ErrSnapshotTruncated) {
		t.Fatalf("size mismatch: got %v", err)
	}

	if _, err := OpenSnapshot(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("OpenSnapshot of a missing file must fail")
	}
}

// TestSnapshotUnalignedBuffer: a deliberately misaligned byte slice
// still decodes (via the internal aligned copy).
func TestSnapshotUnalignedBuffer(t *testing.T) {
	col, _ := buildMixedPair(6, 90)
	data, err := EncodeSnapshot(col)
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]byte, len(data)+1)
	copy(shifted[1:], data)
	loaded, err := LoadSnapshotBytes(shifted[1:])
	if err != nil {
		t.Fatal(err)
	}
	requireSameInstances(t, loaded, col)
}

// goldenInstance is a small fixed instance covering every value shape;
// its snapshot bytes are committed as testdata/golden.snapshot and
// guard the format against accidental drift.
func goldenInstance() *Instance {
	in := NewInstance(mixedSchema())
	in.MustInsert("Mix", Int(1), Float(1.5), Str("alpha"), Int(10))
	in.MustInsert("Mix", Int(1), Float(-0.0), Str("beta"), Null())
	in.MustInsert("Mix", Int(2), Int(7), Str(""), Int(-3)) // INT in FLOAT column
	in.MustInsert("Mix", Null(), Null(), Null(), Null())
	in.MustInsert("NoKey", Str("alpha"), Float(2.25))
	in.MustInsert("NoKey", Str("x\x1fy"), Null()) // separator byte inside a string
	return in
}

// TestSnapshotGolden: today's encoder reproduces the committed golden
// bytes exactly, and the committed bytes load into the expected facts.
// Regenerate with: go test ./internal/db -run TestSnapshotGolden -update-golden
func TestSnapshotGolden(t *testing.T) {
	path := filepath.Join("testdata", "golden.snapshot")
	want := goldenInstance()
	data, err := EncodeSnapshot(want)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden snapshot (regenerate with -update-golden): %v", err)
	}
	if string(golden) != string(data) {
		t.Fatalf("snapshot encoding drifted from the committed golden file (%d vs %d bytes); "+
			"if the format change is intentional, bump SnapshotFormatVersion and regenerate with -update-golden",
			len(data), len(golden))
	}
	loaded, err := LoadSnapshotBytes(golden)
	if err != nil {
		t.Fatal(err)
	}
	requireSameInstances(t, loaded, want)
}
