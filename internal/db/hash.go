package db

import "math"

// 64-bit FNV-1a. The front end (internal/cq, internal/constraints) keys
// its hot maps — join indexes, witness-bag grouping, violation dedup,
// key-equal grouping — by these hashes instead of the materialized
// strings Tuple.Key builds, trading the allocation per probe for a
// cheap integer fold. Hashes are not injective: every consumer keeps
// bucket lists and verifies candidates with the Equal* predicates
// below, so a collision costs a comparison, never correctness.

// HashSeed is the initial accumulator for the streaming hash helpers
// (the FNV-1a offset basis).
const HashSeed uint64 = 0xcbf29ce484222325

const fnvPrime64 = 0x100000001b3

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func hashUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(v))
		v >>= 8
	}
	return h
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	// Terminator, mirroring the 0x1f separator of Tuple.Key: without it
	// adjacent strings could merge ("ab","c" vs "a","bc").
	return hashByte(h, 0x1f)
}

// HashFactSet folds a fact-ID slice into a 64-bit key. Callers must
// pass the IDs sorted ascending (witness fact sets and violations are
// maintained that way) so permutations of one set key identically.
func HashFactSet(ids []FactID) uint64 {
	h := HashSeed
	for _, f := range ids {
		h = hashUint64(h, uint64(uint32(f)))
	}
	return h
}

// HashExact folds the value into h, distinguishing exactly what
// EqualExact distinguishes: the kind and the raw payload. In particular
// Int(1) and Float(1) hash differently (they are Compare-equal but not
// key-equal), matching the kind-tagged encoding of Tuple.Key.
func (v Value) HashExact(h uint64) uint64 {
	h = hashByte(h, byte(v.kind))
	switch v.kind {
	case KindInt:
		return hashUint64(h, uint64(v.i))
	case KindFloat:
		return hashUint64(h, math.Float64bits(v.f))
	case KindString:
		return hashString(h, v.s)
	default: // NULL: the kind tag is the payload
		return h
	}
}

// EqualExact reports kind-and-payload identity: the equivalence that
// Tuple.Key's injective encoding induces, stricter than Equal (which
// compares INT and FLOAT numerically). Floats compare by bit pattern,
// so -0.0 ≠ 0.0 here, exactly as their Key renderings differ.
func (v Value) EqualExact(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return math.Float64bits(v.f) == math.Float64bits(o.f)
	case KindString:
		return v.s == o.s
	default:
		return true
	}
}

// HashExact folds every position of the tuple into h.
func (t Tuple) HashExact(h uint64) uint64 {
	for _, v := range t {
		h = v.HashExact(h)
	}
	return h
}

// EqualExact reports position-wise EqualExact of equally long tuples.
func (t Tuple) EqualExact(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].EqualExact(o[i]) {
			return false
		}
	}
	return true
}

// HashKey folds the projection of t onto the given positions into h:
// the hash twin of Tuple.Key.
func (t Tuple) HashKey(positions []int, h uint64) uint64 {
	for _, p := range positions {
		h = t[p].HashExact(h)
	}
	return h
}

// EqualExactOn reports EqualExact of the projections of t and o onto
// the given positions.
func (t Tuple) EqualExactOn(positions []int, o Tuple) bool {
	for _, p := range positions {
		if !t[p].EqualExact(o[p]) {
			return false
		}
	}
	return true
}
