// Package db implements the relational substrate of AggCAvSAT: typed
// values, schemas with key constraints, database instances made of facts
// with stable identifiers, key-equal groups, and CSV import/export.
//
// The package corresponds to the role Microsoft SQL Server plays in the
// ICDE 2022 paper: it stores possibly inconsistent relations and supports
// the scans and groupings the reductions need. It deliberately has no
// knowledge of queries (internal/cq) or constraints beyond keys
// (internal/constraints).
package db

import (
	"fmt"
	"strconv"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

const (
	// KindNull is the zero Kind; it marks an absent value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 float.
	KindFloat
	// KindString is an immutable string.
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
//
// Values are comparable with == when their kinds match; Compare imposes a
// total order used by ORDER BY, MIN/MAX and deterministic output.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it panics if v is not an INT.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("db: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsFloat returns the numeric payload as float64; it accepts INT and FLOAT.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		panic(fmt.Sprintf("db: AsFloat on %s value", v.kind))
	}
}

// AsString returns the string payload; it panics if v is not a STRING.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("db: AsString on %s value", v.kind))
	}
	return v.s
}

// String renders the value for display and CSV export.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// Equal reports whether two values are identical in kind and payload,
// except that INT and FLOAT values compare numerically.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare imposes a total order on values: NULL < numbers < strings;
// numbers compare numerically across INT/FLOAT; strings lexicographically.
func (v Value) Compare(o Value) int {
	ra, rb := v.rank(), o.rank()
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // both numeric
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1
			case v.i > o.i:
				return 1
			}
			return 0
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	default: // both strings
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	}
}

func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

// ParseValue parses s as a value of the given kind. Empty strings parse to
// the empty string for KindString and to NULL for numeric kinds.
func ParseValue(kind Kind, s string) (Value, error) {
	switch kind {
	case KindString:
		return Str(s), nil
	case KindInt:
		if s == "" {
			return Null(), nil
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("db: parse %q as INT: %w", s, err)
		}
		return Int(n), nil
	case KindFloat:
		if s == "" {
			return Null(), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("db: parse %q as FLOAT: %w", s, err)
		}
		return Float(f), nil
	case KindNull:
		return Null(), nil
	default:
		return Value{}, fmt.Errorf("db: parse into unknown kind %v", kind)
	}
}

// Tuple is an ordered sequence of values, one per attribute of a relation.
type Tuple []Value

// Equal reports element-wise equality of equally long tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	}
	return 0
}

// Clone returns a deep copy of the tuple (values are immutable, so a
// shallow copy of the slice suffices).
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Key builds a compact string key for map grouping over the projection of
// t onto the given attribute positions. The encoding is injective.
func (t Tuple) Key(positions []int) string {
	var b []byte
	for _, p := range positions {
		v := t[p]
		b = append(b, byte('0'+v.kind))
		b = append(b, v.String()...)
		b = append(b, 0x1f)
	}
	return string(b)
}
