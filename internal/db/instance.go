package db

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FactID identifies a fact within an Instance. IDs are dense, start at 0,
// and never change once assigned; they double as SAT variable indices in
// internal/core (variable = FactID + 1).
type FactID int

// Fact is one row of one relation, together with its identifier.
type Fact struct {
	ID    FactID
	Rel   string // canonical (lower-case) relation name
	Tuple Tuple
}

// Instance is a (possibly inconsistent) database instance: a set of facts
// over a schema. Facts are append-only; deletion is expressed by building
// sub-instances (see Subset), which preserves fact identity — essential
// for the repair/assignment correspondence of the reductions.
type Instance struct {
	schema *Schema
	facts  []Fact
	byRel  map[string][]FactID

	// groupMu guards the KeyEqualGroups memo. The partition is a pure
	// function of the fact list, and facts are append-only, so caching
	// it per fact count makes repeated engines over one instance stop
	// re-paying the grouping (the dominant constraint-phase cost in
	// keys mode); an Insert invalidates the memo by changing the count.
	groupMu     sync.Mutex
	groupCache  []KeyEqualGroup
	groupCacheN int // fact count the cache was built at; -1 = no cache
}

// NewInstance creates an empty instance over the given schema.
func NewInstance(schema *Schema) *Instance {
	return &Instance{
		schema:      schema,
		byRel:       make(map[string][]FactID),
		groupCacheN: -1,
	}
}

// Schema returns the instance's schema.
func (in *Instance) Schema() *Schema { return in.schema }

// NumFacts returns the total number of facts.
func (in *Instance) NumFacts() int { return len(in.facts) }

// Fact returns the fact with the given ID.
func (in *Instance) Fact(id FactID) Fact { return in.facts[id] }

// Facts returns the underlying fact slice; callers must not mutate it.
func (in *Instance) Facts() []Fact { return in.facts }

// RelFacts returns the IDs of all facts of the named relation, in
// insertion order. Callers must not mutate the returned slice.
func (in *Instance) RelFacts(rel string) []FactID {
	return in.byRel[strings.ToLower(rel)]
}

// RelSize returns the number of facts in the named relation.
func (in *Instance) RelSize(rel string) int { return len(in.RelFacts(rel)) }

// Insert appends a fact to the named relation and returns its ID.
// The tuple arity and value kinds must match the relation schema
// (NULL is allowed in non-key positions).
func (in *Instance) Insert(rel string, t Tuple) (FactID, error) {
	rs := in.schema.Relation(rel)
	if rs == nil {
		return 0, fmt.Errorf("db: insert into unknown relation %s", rel)
	}
	if len(t) != rs.Arity() {
		return 0, fmt.Errorf("db: insert into %s: got %d values, want %d", rs.Name, len(t), rs.Arity())
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		want := rs.Attrs[i].Kind
		if v.Kind() != want && !(want == KindFloat && v.Kind() == KindInt) {
			return 0, fmt.Errorf("db: insert into %s.%s: got %s, want %s",
				rs.Name, rs.Attrs[i].Name, v.Kind(), want)
		}
	}
	id := FactID(len(in.facts))
	lc := strings.ToLower(rs.Name)
	in.facts = append(in.facts, Fact{ID: id, Rel: lc, Tuple: t})
	in.byRel[lc] = append(in.byRel[lc], id)
	return id, nil
}

// MustInsert is Insert that panics on error; for tests and generators.
func (in *Instance) MustInsert(rel string, vals ...Value) FactID {
	id, err := in.Insert(rel, Tuple(vals))
	if err != nil {
		panic(err)
	}
	return id
}

// KeyEqualGroup is a maximal set of facts of one relation that agree on
// the relation's key attributes. Groups of size one are consistent; larger
// groups are key violations from which any repair keeps exactly one fact.
type KeyEqualGroup struct {
	Rel   string
	Facts []FactID // sorted ascending
}

// Violating reports whether the group witnesses a key violation.
func (g KeyEqualGroup) Violating() bool { return len(g.Facts) > 1 }

// KeyEqualGroups partitions every relation that declares a key into its
// key-equal groups. Relations without a key constraint contribute one
// singleton group per fact (they are trivially consistent). The result is
// deterministic: groups are ordered by their smallest fact ID.
//
// The partition is memoized on the instance (facts are append-only, so
// it only changes when the fact count does) and computed by uint64 key
// hashing with exact-equality bucket verification — no string key per
// fact. Callers must treat the returned slice as read-only.
func (in *Instance) KeyEqualGroups() []KeyEqualGroup {
	in.groupMu.Lock()
	defer in.groupMu.Unlock()
	if in.groupCacheN == len(in.facts) {
		return in.groupCache
	}
	groups := in.computeKeyEqualGroups()
	in.groupCache, in.groupCacheN = groups, len(in.facts)
	return groups
}

func (in *Instance) computeKeyEqualGroups() []KeyEqualGroup {
	var groups []KeyEqualGroup
	// bucket chains fact groups whose key tuples share a hash; repr is
	// any member, used to verify exact key equality on a hash hit.
	type bucket struct {
		repr  FactID
		group int // index into groups
		next  int // next bucket entry with the same hash, -1 = end
	}
	for _, rs := range in.schema.Relations() {
		ids := in.RelFacts(rs.Name)
		lc := strings.ToLower(rs.Name)
		if !rs.HasKey() {
			for _, id := range ids {
				groups = append(groups, KeyEqualGroup{Rel: lc, Facts: []FactID{id}})
			}
			continue
		}
		byHash := make(map[uint64]int, len(ids)) // hash → first bucket index
		buckets := make([]bucket, 0, len(ids))
		for _, id := range ids {
			t := in.facts[id].Tuple
			h := t.HashKey(rs.Key, HashSeed)
			gi := -1
			bi, ok := byHash[h]
			if !ok {
				bi = -1
			}
			for ; bi >= 0; bi = buckets[bi].next {
				if in.facts[buckets[bi].repr].Tuple.EqualExactOn(rs.Key, t) {
					gi = buckets[bi].group
					break
				}
			}
			if gi < 0 {
				gi = len(groups)
				groups = append(groups, KeyEqualGroup{Rel: lc})
				head := -1
				if first, ok := byHash[h]; ok {
					head = first
				}
				buckets = append(buckets, bucket{repr: id, group: gi, next: head})
				byHash[h] = len(buckets) - 1
			}
			// ids iterate in insertion order = ascending FactID, so each
			// group's member list is born sorted.
			groups[gi].Facts = append(groups[gi].Facts, id)
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Facts[0] < groups[j].Facts[0] })
	return groups
}

// KeyEqualGroupsUncached recomputes the partition with the pre-PR4
// string-keyed grouping, bypassing the instance memo. It exists for the
// benchmark harness (the "legacy front end" baseline) and for the
// equivalence tests of the hash-grouped path; engine code should call
// KeyEqualGroups.
func (in *Instance) KeyEqualGroupsUncached() []KeyEqualGroup {
	var groups []KeyEqualGroup
	for _, rs := range in.schema.Relations() {
		ids := in.RelFacts(rs.Name)
		if !rs.HasKey() {
			for _, id := range ids {
				groups = append(groups, KeyEqualGroup{Rel: strings.ToLower(rs.Name), Facts: []FactID{id}})
			}
			continue
		}
		byKey := make(map[string][]FactID)
		for _, id := range ids {
			k := in.facts[id].Tuple.Key(rs.Key)
			byKey[k] = append(byKey[k], id)
		}
		for _, members := range byKey {
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			groups = append(groups, KeyEqualGroup{Rel: strings.ToLower(rs.Name), Facts: members})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Facts[0] < groups[j].Facts[0] })
	return groups
}

// InconsistencyStats summarizes how inconsistent a relation is w.r.t. its
// key constraint.
type InconsistencyStats struct {
	Rel             string
	Facts           int
	ViolatingFacts  int // facts in key-equal groups of size >= 2
	Groups          int // number of key-equal groups (repair size)
	LargestGroup    int
	ViolatingGroups int
}

// Percent returns the fraction of facts involved in key violations, in
// percent, matching the paper's "degree of inconsistency".
func (s InconsistencyStats) Percent() float64 {
	if s.Facts == 0 {
		return 0
	}
	return 100 * float64(s.ViolatingFacts) / float64(s.Facts)
}

// KeyInconsistency computes per-relation inconsistency statistics.
func (in *Instance) KeyInconsistency() []InconsistencyStats {
	byRel := make(map[string]*InconsistencyStats)
	var order []string
	for _, rs := range in.schema.Relations() {
		lc := strings.ToLower(rs.Name)
		byRel[lc] = &InconsistencyStats{Rel: rs.Name, Facts: len(in.RelFacts(rs.Name))}
		order = append(order, lc)
	}
	for _, g := range in.KeyEqualGroups() {
		st := byRel[g.Rel]
		st.Groups++
		if len(g.Facts) > st.LargestGroup {
			st.LargestGroup = len(g.Facts)
		}
		if g.Violating() {
			st.ViolatingGroups++
			st.ViolatingFacts += len(g.Facts)
		}
	}
	out := make([]InconsistencyStats, 0, len(order))
	for _, lc := range order {
		out = append(out, *byRel[lc])
	}
	return out
}

// Subset materializes the sub-instance containing exactly the facts whose
// IDs satisfy keep. Fact IDs are reassigned densely in the new instance,
// so Subset is intended for baselines (exhaustive repairs) rather than for
// the SAT pipeline, which works with the original IDs throughout.
func (in *Instance) Subset(keep func(FactID) bool) *Instance {
	out := NewInstance(in.schema)
	for _, f := range in.facts {
		if keep(f.ID) {
			if _, err := out.Insert(f.Rel, f.Tuple); err != nil {
				panic(err) // same schema: cannot happen
			}
		}
	}
	return out
}

// String renders a compact multi-line description, for debugging.
func (in *Instance) String() string {
	var b strings.Builder
	for _, rs := range in.schema.Relations() {
		fmt.Fprintf(&b, "%s(%d facts)\n", rs.Name, in.RelSize(rs.Name))
	}
	return b.String()
}
