package db

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FactID identifies a fact within an Instance. IDs are dense, start at 0,
// and never change once assigned; they double as SAT variable indices in
// internal/core (variable = FactID + 1).
type FactID int

// Fact is one row of one relation, together with its identifier.
type Fact struct {
	ID    FactID
	Rel   string // canonical (lower-case) relation name
	Tuple Tuple
}

// Layout selects the physical representation of an Instance.
type Layout uint8

const (
	// LayoutColumnar stores facts in per-relation column arenas with
	// dictionary-interned strings (columnar.go) — the default, and the
	// only layout snapshots serialize.
	LayoutColumnar Layout = iota
	// LayoutRow stores facts as []Value tuples, one boxed Fact per row —
	// the pre-PR9 representation, kept as the equivalence baseline for
	// the property tests and the pr9 benchmark.
	LayoutRow
)

func (l Layout) String() string {
	if l == LayoutRow {
		return "row"
	}
	return "columnar"
}

// Instance is a (possibly inconsistent) database instance: a set of facts
// over a schema. Facts are append-only; deletion is expressed by building
// sub-instances (see Subset), which preserves fact identity — essential
// for the repair/assignment correspondence of the reductions.
//
// Two physical layouts exist behind one logical API (see Layout). All
// read accessors are equivalent across layouts; the Row/ValueAt/Hash*
// family reads columns and dictionary codes directly under
// LayoutColumnar and is the form the hot paths use.
type Instance struct {
	schema *Schema
	layout Layout

	// Row backend.
	facts []Fact

	// Columnar backend.
	dict    *Dict
	rels    []*relColumns // dense by RelID
	factRel []uint32      // FactID → RelID
	factRow []uint32      // FactID → row within its relation
	nFacts  int

	byRel [][]FactID // dense by RelID; aliases rels[i].ids when columnar

	// dataVersion is the content fingerprint of a snapshot-loaded
	// instance (0 otherwise); frozen marks instances whose arenas alias
	// a read-only mapping, on which Insert must refuse to run.
	dataVersion uint64
	frozen      bool

	// groupMu guards the KeyEqualGroups memo. The partition is a pure
	// function of the fact list, and facts are append-only, so caching
	// it per fact count makes repeated engines over one instance stop
	// re-paying the grouping (the dominant constraint-phase cost in
	// keys mode); an Insert invalidates the memo by changing the count.
	groupMu     sync.Mutex
	groupCache  []KeyEqualGroup
	groupCacheN int // fact count the cache was built at; -1 = no cache
}

// NewInstance creates an empty columnar instance over the given schema.
func NewInstance(schema *Schema) *Instance {
	return NewInstanceLayout(schema, LayoutColumnar)
}

// NewInstanceLayout creates an empty instance with an explicit physical
// layout.
func NewInstanceLayout(schema *Schema, layout Layout) *Instance {
	in := &Instance{
		schema:      schema,
		layout:      layout,
		byRel:       make([][]FactID, schema.NumRelations()),
		groupCacheN: -1,
	}
	if layout == LayoutColumnar {
		in.dict = NewDict()
		in.rels = make([]*relColumns, schema.NumRelations())
		for _, rs := range schema.Relations() {
			in.rels[rs.ID()] = newRelColumns(rs)
		}
	}
	return in
}

// Schema returns the instance's schema.
func (in *Instance) Schema() *Schema { return in.schema }

// Layout reports the instance's physical layout.
func (in *Instance) Layout() Layout { return in.layout }

// DataVersion returns the snapshot content fingerprint for instances
// loaded from a snapshot, and 0 for instances built in memory. Serving
// layers fold it into cache keys so answers from different snapshot
// generations never alias.
func (in *Instance) DataVersion() uint64 { return in.dataVersion }

// NumFacts returns the total number of facts.
func (in *Instance) NumFacts() int {
	if in.layout == LayoutRow {
		return len(in.facts)
	}
	return in.nFacts
}

// Fact returns the fact with the given ID. Under LayoutColumnar this
// materializes the tuple (one allocation); hot paths should use Row,
// ValueAt, or the Hash*/Equal* accessors instead.
func (in *Instance) Fact(id FactID) Fact {
	if in.layout == LayoutRow {
		return in.facts[id]
	}
	rs := in.schema.RelationByID(RelID(in.factRel[id]))
	return Fact{ID: id, Rel: rs.canon, Tuple: in.TupleAt(id)}
}

// Facts returns all facts. Under LayoutRow this is the underlying slice
// (callers must not mutate it); under LayoutColumnar it materializes
// every tuple and is intended for cold paths and tests only.
func (in *Instance) Facts() []Fact {
	if in.layout == LayoutRow {
		return in.facts
	}
	out := make([]Fact, in.nFacts)
	for id := 0; id < in.nFacts; id++ {
		out[id] = in.Fact(FactID(id))
	}
	return out
}

// TupleAt materializes the tuple of one fact.
func (in *Instance) TupleAt(id FactID) Tuple {
	if in.layout == LayoutRow {
		return in.facts[id].Tuple
	}
	rc := in.rels[in.factRel[id]]
	row := int(in.factRow[id])
	t := make(Tuple, len(rc.cols))
	for i := range rc.cols {
		t[i] = rc.cols[i].value(in.dict, row)
	}
	return t
}

// Row returns an allocation-free view of one fact.
func (in *Instance) Row(id FactID) RowView {
	if in.layout == LayoutRow {
		return RowView{t: in.facts[id].Tuple}
	}
	return RowView{dict: in.dict, rc: in.rels[in.factRel[id]], row: int(in.factRow[id])}
}

// ValueAt returns the value at attribute position pos of one fact.
func (in *Instance) ValueAt(id FactID, pos int) Value {
	if in.layout == LayoutRow {
		return in.facts[id].Tuple[pos]
	}
	rc := in.rels[in.factRel[id]]
	return rc.cols[pos].value(in.dict, int(in.factRow[id]))
}

// RelOf returns the dense RelID of the fact's relation.
func (in *Instance) RelOf(id FactID) RelID {
	if in.layout == LayoutRow {
		rid, _ := in.schema.RelID(in.facts[id].Rel)
		return rid
	}
	return RelID(in.factRel[id])
}

// RelFacts returns the IDs of all facts of the named relation, in
// insertion order. Callers must not mutate the returned slice.
func (in *Instance) RelFacts(rel string) []FactID {
	id, ok := in.schema.RelID(rel)
	if !ok {
		return nil
	}
	return in.byRel[id]
}

// RelFactsByID is RelFacts addressed by dense RelID.
func (in *Instance) RelFactsByID(id RelID) []FactID { return in.byRel[id] }

// RelSize returns the number of facts in the named relation.
func (in *Instance) RelSize(rel string) int { return len(in.RelFacts(rel)) }

// HashRowOn folds the projection of one fact onto the given attribute
// positions into h. Within one instance it hashes exactly what
// EqualRowsOn compares: under LayoutRow this is Tuple.HashKey; under
// LayoutColumnar strings fold their dictionary code instead of their
// bytes (cheaper, and still collision-verified by every consumer).
// Hashes are therefore NOT comparable across instances or layouts —
// pair them with HashProbeValue on the probe side.
func (in *Instance) HashRowOn(id FactID, positions []int, h uint64) uint64 {
	if in.layout == LayoutRow {
		return in.facts[id].Tuple.HashKey(positions, h)
	}
	rc := in.rels[in.factRel[id]]
	row := int(in.factRow[id])
	for _, p := range positions {
		h = rc.cols[p].hashRow(h, row)
	}
	return h
}

// HashRowAll is HashRowOn over every attribute position.
func (in *Instance) HashRowAll(id FactID, h uint64) uint64 {
	if in.layout == LayoutRow {
		return in.facts[id].Tuple.HashExact(h)
	}
	rc := in.rels[in.factRel[id]]
	row := int(in.factRow[id])
	for i := range rc.cols {
		h = rc.cols[i].hashRow(h, row)
	}
	return h
}

// HashProbeValue folds a probe value into h so the result can meet
// HashRowOn hashes in one index. ok=false means no fact of this
// instance can EqualExact v (its string is not in the dictionary), so
// the caller can skip the index lookup outright.
func (in *Instance) HashProbeValue(h uint64, v Value) (uint64, bool) {
	if in.layout == LayoutRow {
		return v.HashExact(h), true
	}
	if v.kind == KindString {
		code, ok := in.dict.Lookup(v.s)
		if !ok {
			return 0, false
		}
		return hashUint64(hashByte(h, byte(KindString)), uint64(code)), true
	}
	return v.HashExact(h), true
}

// EqualRowsOn reports EqualExact of two facts' projections onto the
// given positions. The facts may belong to different relations under
// LayoutRow; under LayoutColumnar both must live in relations whose
// columns at those positions exist (the engine only compares facts of
// one relation, which always holds).
func (in *Instance) EqualRowsOn(a, b FactID, positions []int) bool {
	if in.layout == LayoutRow {
		return in.facts[a].Tuple.EqualExactOn(positions, in.facts[b].Tuple)
	}
	ra, rb := in.rels[in.factRel[a]], in.rels[in.factRel[b]]
	rowA, rowB := int(in.factRow[a]), int(in.factRow[b])
	if ra == rb {
		for _, p := range positions {
			if !ra.cols[p].equalRows(rowA, rowB) {
				return false
			}
		}
		return true
	}
	for _, p := range positions {
		if !ra.cols[p].matchValue(in.dict, rowA, rb.cols[p].value(in.dict, rowB)) {
			return false
		}
	}
	return true
}

// MatchAt reports EqualExact between one stored position and a probe
// value without materializing the stored side.
func (in *Instance) MatchAt(id FactID, pos int, v Value) bool {
	if in.layout == LayoutRow {
		return in.facts[id].Tuple[pos].EqualExact(v)
	}
	rc := in.rels[in.factRel[id]]
	return rc.cols[pos].matchValue(in.dict, int(in.factRow[id]), v)
}

// CompareAt is Value.Compare between the same attribute position of two
// facts of one relation, reading columns directly (equal string codes
// short-circuit before any byte comparison).
func (in *Instance) CompareAt(a, b FactID, pos int) int {
	if in.layout == LayoutRow {
		return in.facts[a].Tuple[pos].Compare(in.facts[b].Tuple[pos])
	}
	ra, rb := in.rels[in.factRel[a]], in.rels[in.factRel[b]]
	if ra == rb {
		return ra.cols[pos].compareRows(in.dict, int(in.factRow[a]), int(in.factRow[b]))
	}
	return ra.cols[pos].value(in.dict, int(in.factRow[a])).
		Compare(rb.cols[pos].value(in.dict, int(in.factRow[b])))
}

// Dict returns the instance's string pool (nil under LayoutRow).
func (in *Instance) Dict() *Dict { return in.dict }

// Insert appends a fact to the named relation and returns its ID.
// The tuple arity and value kinds must match the relation schema
// (NULL is allowed in non-key positions).
func (in *Instance) Insert(rel string, t Tuple) (FactID, error) {
	rs := in.schema.Relation(rel)
	if rs == nil {
		return 0, fmt.Errorf("db: insert into unknown relation %s", rel)
	}
	if in.frozen {
		return 0, fmt.Errorf("db: insert into %s: snapshot-backed instance is immutable", rs.Name)
	}
	if len(t) != rs.Arity() {
		return 0, fmt.Errorf("db: insert into %s: got %d values, want %d", rs.Name, len(t), rs.Arity())
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		want := rs.Attrs[i].Kind
		if v.Kind() != want && !(want == KindFloat && v.Kind() == KindInt) {
			return 0, fmt.Errorf("db: insert into %s.%s: got %s, want %s",
				rs.Name, rs.Attrs[i].Name, v.Kind(), want)
		}
	}
	if in.layout == LayoutRow {
		id := FactID(len(in.facts))
		in.facts = append(in.facts, Fact{ID: id, Rel: rs.canon, Tuple: t})
		in.byRel[rs.ID()] = append(in.byRel[rs.ID()], id)
		return id, nil
	}
	id := FactID(in.nFacts)
	rc := in.rels[rs.ID()]
	row := len(rc.ids)
	for i, v := range t {
		rc.cols[i].appendValue(in.dict, row, v)
	}
	rc.ids = append(rc.ids, id)
	in.factRel = append(in.factRel, uint32(rs.ID()))
	in.factRow = append(in.factRow, uint32(row))
	in.nFacts++
	in.byRel[rs.ID()] = rc.ids
	return id, nil
}

// MustInsert is Insert that panics on error; for tests and generators.
func (in *Instance) MustInsert(rel string, vals ...Value) FactID {
	id, err := in.Insert(rel, Tuple(vals))
	if err != nil {
		panic(err)
	}
	return id
}

// KeyEqualGroup is a maximal set of facts of one relation that agree on
// the relation's key attributes. Groups of size one are consistent; larger
// groups are key violations from which any repair keeps exactly one fact.
type KeyEqualGroup struct {
	Rel   string
	Facts []FactID // sorted ascending
}

// Violating reports whether the group witnesses a key violation.
func (g KeyEqualGroup) Violating() bool { return len(g.Facts) > 1 }

// KeyEqualGroups partitions every relation that declares a key into its
// key-equal groups. Relations without a key constraint contribute one
// singleton group per fact (they are trivially consistent). The result is
// deterministic: groups are ordered by their smallest fact ID.
//
// The partition is memoized on the instance (facts are append-only, so
// it only changes when the fact count does) and computed by uint64 key
// hashing with exact-equality bucket verification — dictionary-code
// hashes under LayoutColumnar, so no string byte is touched. Callers
// must treat the returned slice as read-only.
func (in *Instance) KeyEqualGroups() []KeyEqualGroup {
	in.groupMu.Lock()
	defer in.groupMu.Unlock()
	if in.groupCacheN == in.NumFacts() {
		return in.groupCache
	}
	groups := in.computeKeyEqualGroups()
	in.groupCache, in.groupCacheN = groups, in.NumFacts()
	return groups
}

func (in *Instance) computeKeyEqualGroups() []KeyEqualGroup {
	var groups []KeyEqualGroup
	// bucket chains fact groups whose key tuples share a hash; repr is
	// any member, used to verify exact key equality on a hash hit.
	type bucket struct {
		repr  FactID
		group int // index into groups
		next  int // next bucket entry with the same hash, -1 = end
	}
	for _, rs := range in.schema.Relations() {
		ids := in.RelFactsByID(rs.ID())
		if !rs.HasKey() {
			for _, id := range ids {
				groups = append(groups, KeyEqualGroup{Rel: rs.canon, Facts: []FactID{id}})
			}
			continue
		}
		byHash := make(map[uint64]int, len(ids)) // hash → first bucket index
		buckets := make([]bucket, 0, len(ids))
		for _, id := range ids {
			h := in.HashRowOn(id, rs.Key, HashSeed)
			gi := -1
			bi, ok := byHash[h]
			if !ok {
				bi = -1
			}
			for ; bi >= 0; bi = buckets[bi].next {
				if in.EqualRowsOn(buckets[bi].repr, id, rs.Key) {
					gi = buckets[bi].group
					break
				}
			}
			if gi < 0 {
				gi = len(groups)
				groups = append(groups, KeyEqualGroup{Rel: rs.canon})
				head := -1
				if first, ok := byHash[h]; ok {
					head = first
				}
				buckets = append(buckets, bucket{repr: id, group: gi, next: head})
				byHash[h] = len(buckets) - 1
			}
			// ids iterate in insertion order = ascending FactID, so each
			// group's member list is born sorted.
			groups[gi].Facts = append(groups[gi].Facts, id)
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Facts[0] < groups[j].Facts[0] })
	return groups
}

// KeyEqualGroupsUncached recomputes the partition with the pre-PR4
// string-keyed grouping, bypassing the instance memo. It exists for the
// benchmark harness (the "legacy front end" baseline) and for the
// equivalence tests of the hash-grouped path; engine code should call
// KeyEqualGroups.
func (in *Instance) KeyEqualGroupsUncached() []KeyEqualGroup {
	var groups []KeyEqualGroup
	for _, rs := range in.schema.Relations() {
		ids := in.RelFactsByID(rs.ID())
		if !rs.HasKey() {
			for _, id := range ids {
				groups = append(groups, KeyEqualGroup{Rel: rs.canon, Facts: []FactID{id}})
			}
			continue
		}
		byKey := make(map[string][]FactID)
		for _, id := range ids {
			k := in.TupleAt(id).Key(rs.Key)
			byKey[k] = append(byKey[k], id)
		}
		for _, members := range byKey {
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			groups = append(groups, KeyEqualGroup{Rel: rs.canon, Facts: members})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Facts[0] < groups[j].Facts[0] })
	return groups
}

// InconsistencyStats summarizes how inconsistent a relation is w.r.t. its
// key constraint.
type InconsistencyStats struct {
	Rel             string
	Facts           int
	ViolatingFacts  int // facts in key-equal groups of size >= 2
	Groups          int // number of key-equal groups (repair size)
	LargestGroup    int
	ViolatingGroups int
}

// Percent returns the fraction of facts involved in key violations, in
// percent, matching the paper's "degree of inconsistency".
func (s InconsistencyStats) Percent() float64 {
	if s.Facts == 0 {
		return 0
	}
	return 100 * float64(s.ViolatingFacts) / float64(s.Facts)
}

// KeyInconsistency computes per-relation inconsistency statistics.
func (in *Instance) KeyInconsistency() []InconsistencyStats {
	byRel := make(map[string]*InconsistencyStats)
	var order []string
	for _, rs := range in.schema.Relations() {
		byRel[rs.canon] = &InconsistencyStats{Rel: rs.Name, Facts: len(in.RelFactsByID(rs.ID()))}
		order = append(order, rs.canon)
	}
	for _, g := range in.KeyEqualGroups() {
		st := byRel[g.Rel]
		st.Groups++
		if len(g.Facts) > st.LargestGroup {
			st.LargestGroup = len(g.Facts)
		}
		if g.Violating() {
			st.ViolatingGroups++
			st.ViolatingFacts += len(g.Facts)
		}
	}
	out := make([]InconsistencyStats, 0, len(order))
	for _, lc := range order {
		out = append(out, *byRel[lc])
	}
	return out
}

// Subset materializes the sub-instance containing exactly the facts whose
// IDs satisfy keep, preserving the receiver's layout. Fact IDs are
// reassigned densely in the new instance, so Subset is intended for
// baselines (exhaustive repairs) rather than for the SAT pipeline, which
// works with the original IDs throughout.
func (in *Instance) Subset(keep func(FactID) bool) *Instance {
	out := NewInstanceLayout(in.schema, in.layout)
	n := in.NumFacts()
	for id := FactID(0); int(id) < n; id++ {
		if keep(id) {
			rs := in.schema.RelationByID(in.RelOf(id))
			if _, err := out.Insert(rs.Name, in.TupleAt(id)); err != nil {
				panic(err) // same schema: cannot happen
			}
		}
	}
	return out
}

// ConvertLayout returns an instance with the same facts (same IDs, same
// insertion order) in the requested layout; the receiver is returned
// unchanged if it already has it.
func (in *Instance) ConvertLayout(layout Layout) *Instance {
	if in.layout == layout {
		return in
	}
	out := NewInstanceLayout(in.schema, layout)
	n := in.NumFacts()
	for id := FactID(0); int(id) < n; id++ {
		rs := in.schema.RelationByID(in.RelOf(id))
		if _, err := out.Insert(rs.Name, in.TupleAt(id)); err != nil {
			panic(err) // same schema: cannot happen
		}
	}
	return out
}

// String renders a compact multi-line description, for debugging.
func (in *Instance) String() string {
	var b strings.Builder
	for _, rs := range in.schema.Relations() {
		fmt.Fprintf(&b, "%s(%d facts)\n", rs.Name, in.RelSize(rs.Name))
	}
	return b.String()
}
