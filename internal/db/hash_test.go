package db

import (
	"fmt"
	"testing"
)

func TestValueEqualExact(t *testing.T) {
	cases := []struct {
		a, b  Value
		equal bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), false}, // Compare-equal but not key-equal
		{Float(1.5), Float(1.5), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Null(), Null(), true},
		{Null(), Int(0), false},
	}
	for _, c := range cases {
		if got := c.a.EqualExact(c.b); got != c.equal {
			t.Errorf("EqualExact(%v, %v) = %v, want %v", c.a, c.b, got, c.equal)
		}
		if c.equal {
			if c.a.HashExact(HashSeed) != c.b.HashExact(HashSeed) {
				t.Errorf("equal values %v, %v hash differently", c.a, c.b)
			}
		}
	}
}

func TestTupleHashKeyMatchesKey(t *testing.T) {
	// Tuples with equal Key strings must have equal HashKey values and
	// be EqualExactOn; tuples with different Key strings must be
	// distinguishable by EqualExactOn (hashes may collide in theory,
	// but not for these small fixtures).
	tuples := []Tuple{
		{Int(1), Str("a")},
		{Int(1), Str("b")},
		{Float(1), Str("a")},
		{Null(), Str("a")},
		{Int(2), Str("a")},
		{Str("1"), Str("a")},
	}
	pos := []int{0, 1}
	for i, a := range tuples {
		for j, b := range tuples {
			keyEq := a.Key(pos) == b.Key(pos)
			if got := a.EqualExactOn(pos, b); got != keyEq {
				t.Errorf("EqualExactOn(%d,%d) = %v, Key equality = %v", i, j, got, keyEq)
			}
			if keyEq && a.HashKey(pos, HashSeed) != b.HashKey(pos, HashSeed) {
				t.Errorf("key-equal tuples %d,%d hash differently", i, j)
			}
		}
	}
}

func TestHashStringNoConcatenationAmbiguity(t *testing.T) {
	a := Tuple{Str("ab"), Str("c")}
	b := Tuple{Str("a"), Str("bc")}
	if a.HashExact(HashSeed) == b.HashExact(HashSeed) {
		t.Error("adjacent string values merged in the hash")
	}
}

func TestHashFactSet(t *testing.T) {
	a := HashFactSet([]FactID{1, 2, 3})
	b := HashFactSet([]FactID{1, 2, 3})
	if a != b {
		t.Error("equal fact sets hash differently")
	}
	if HashFactSet([]FactID{1, 2}) == HashFactSet([]FactID{1, 2, 3}) {
		t.Error("prefix fact set collides with its extension")
	}
	if HashFactSet(nil) != HashFactSet([]FactID{}) {
		t.Error("nil and empty fact sets hash differently")
	}
}

// randomKeyedInstance builds an instance with deliberate key collisions
// across INT, FLOAT, STRING and NULL key values.
func randomKeyedInstance(seed uint64, n int) *Instance {
	s := NewSchema()
	s.MustAddRelation(&RelationSchema{
		Name: "R",
		Attrs: []Attribute{
			{Name: "k", Kind: KindInt},
			{Name: "v", Kind: KindString},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&RelationSchema{
		Name: "S",
		Attrs: []Attribute{
			{Name: "k", Kind: KindFloat},
			{Name: "m", Kind: KindString},
			{Name: "v", Kind: KindInt},
		},
		Key: []int{0, 1},
	})
	s.MustAddRelation(&RelationSchema{
		Name:  "NoKey",
		Attrs: []Attribute{{Name: "x", Kind: KindInt}},
	})
	in := NewInstance(s)
	state := seed | 1
	next := func(m int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(m))
	}
	for i := 0; i < n; i++ {
		in.MustInsert("R", Int(int64(next(5))), Str(fmt.Sprintf("v%d", next(3))))
		key := Value(Float(float64(next(4))))
		if next(7) == 0 {
			key = Int(int64(next(4))) // INT in a FLOAT column: key-distinct from Float of same value
		}
		if next(11) == 0 {
			key = Null()
		}
		in.MustInsert("S", key, Str(fmt.Sprintf("m%d", next(2))), Int(int64(next(9))))
		if next(3) == 0 {
			in.MustInsert("NoKey", Int(int64(i)))
		}
	}
	return in
}

func groupsEqual(a, b []KeyEqualGroup) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Rel != b[i].Rel || len(a[i].Facts) != len(b[i].Facts) {
			return false
		}
		for j := range a[i].Facts {
			if a[i].Facts[j] != b[i].Facts[j] {
				return false
			}
		}
	}
	return true
}

func TestKeyEqualGroupsHashMatchesLegacy(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		in := randomKeyedInstance(uint64(trial)+7, 40+trial)
		got := in.KeyEqualGroups()
		want := in.KeyEqualGroupsUncached()
		if !groupsEqual(got, want) {
			t.Fatalf("trial %d: hash-grouped partition differs from legacy\n got: %v\nwant: %v", trial, got, want)
		}
	}
}

func TestKeyEqualGroupsMemo(t *testing.T) {
	in := randomKeyedInstance(3, 20)
	first := in.KeyEqualGroups()
	second := in.KeyEqualGroups()
	if &first[0] != &second[0] {
		t.Error("memoized call rebuilt the partition")
	}
	// An insert invalidates the memo.
	in.MustInsert("R", Int(0), Str("fresh"))
	third := in.KeyEqualGroups()
	if groupsEqual(first, third) {
		t.Error("memo not invalidated by Insert")
	}
	if !groupsEqual(third, in.KeyEqualGroupsUncached()) {
		t.Error("post-insert partition differs from legacy")
	}
}
