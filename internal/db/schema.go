package db

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute describes one column of a relation.
type Attribute struct {
	Name string
	Kind Kind
}

// RelationSchema describes one relation: its name, attributes, and the
// positions of its key attributes (empty means "no key constraint").
//
// Following the paper, at most one key constraint per relation is modeled
// here; richer constraints (functional dependencies, denial constraints)
// live in internal/constraints.
type RelationSchema struct {
	Name  string
	Attrs []Attribute
	Key   []int // positions of the key attributes, sorted ascending
}

// AttrIndex returns the position of the named attribute, or -1.
func (r *RelationSchema) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if strings.EqualFold(a.Name, name) {
			return i
		}
	}
	return -1
}

// Arity returns the number of attributes.
func (r *RelationSchema) Arity() int { return len(r.Attrs) }

// HasKey reports whether the relation declares a key constraint.
func (r *RelationSchema) HasKey() bool { return len(r.Key) > 0 }

// KeyNames returns the names of the key attributes.
func (r *RelationSchema) KeyNames() []string {
	names := make([]string, len(r.Key))
	for i, p := range r.Key {
		names[i] = r.Attrs[p].Name
	}
	return names
}

func (r *RelationSchema) validate() error {
	if r.Name == "" {
		return fmt.Errorf("db: relation with empty name")
	}
	if len(r.Attrs) == 0 {
		return fmt.Errorf("db: relation %s has no attributes", r.Name)
	}
	seen := make(map[string]bool, len(r.Attrs))
	for _, a := range r.Attrs {
		lc := strings.ToLower(a.Name)
		if seen[lc] {
			return fmt.Errorf("db: relation %s: duplicate attribute %s", r.Name, a.Name)
		}
		seen[lc] = true
	}
	prev := -1
	for _, p := range r.Key {
		if p < 0 || p >= len(r.Attrs) {
			return fmt.Errorf("db: relation %s: key position %d out of range", r.Name, p)
		}
		if p <= prev {
			return fmt.Errorf("db: relation %s: key positions must be strictly ascending", r.Name)
		}
		prev = p
	}
	return nil
}

// Schema is a collection of relation schemas addressed by name
// (case-insensitively).
type Schema struct {
	rels  map[string]*RelationSchema
	order []string // insertion order of canonical names, for determinism
}

// NewSchema creates an empty schema.
func NewSchema() *Schema {
	return &Schema{rels: make(map[string]*RelationSchema)}
}

// AddRelation registers a relation schema. Key positions must be strictly
// ascending; names are unique case-insensitively.
func (s *Schema) AddRelation(r *RelationSchema) error {
	if err := r.validate(); err != nil {
		return err
	}
	lc := strings.ToLower(r.Name)
	if _, dup := s.rels[lc]; dup {
		return fmt.Errorf("db: duplicate relation %s", r.Name)
	}
	s.rels[lc] = r
	s.order = append(s.order, lc)
	return nil
}

// MustAddRelation is AddRelation that panics on error; for package-level
// schema literals in generators and tests.
func (s *Schema) MustAddRelation(r *RelationSchema) {
	if err := s.AddRelation(r); err != nil {
		panic(err)
	}
}

// Relation returns the schema of the named relation, or nil.
func (s *Schema) Relation(name string) *RelationSchema {
	return s.rels[strings.ToLower(name)]
}

// Relations returns all relation schemas in insertion order.
func (s *Schema) Relations() []*RelationSchema {
	out := make([]*RelationSchema, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.rels[n])
	}
	return out
}

// RelationNames returns the canonical relation names sorted alphabetically.
func (s *Schema) RelationNames() []string {
	names := make([]string, 0, len(s.rels))
	for _, r := range s.Relations() {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return names
}
