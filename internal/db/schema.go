package db

import (
	"fmt"
	"sort"
	"strings"
)

// RelID is a dense relation identifier, assigned in AddRelation order
// starting at 0. Instances key their per-relation storage by RelID, so
// fact→relation bookkeeping is an array index instead of a map lookup
// on a (lower-cased) name string.
type RelID int

// Attribute describes one column of a relation.
type Attribute struct {
	Name string
	Kind Kind
}

// RelationSchema describes one relation: its name, attributes, and the
// positions of its key attributes (empty means "no key constraint").
//
// Following the paper, at most one key constraint per relation is modeled
// here; richer constraints (functional dependencies, denial constraints)
// live in internal/constraints.
type RelationSchema struct {
	Name  string
	Attrs []Attribute
	Key   []int // positions of the key attributes, sorted ascending

	id    RelID  // dense ID, assigned by Schema.AddRelation
	canon string // lower-cased Name, computed once at registration
}

// ID returns the relation's dense identifier within its schema.
func (r *RelationSchema) ID() RelID { return r.id }

// Canon returns the canonical (lower-case) relation name, computed once
// when the relation was registered — the name facts and key-equal
// groups carry.
func (r *RelationSchema) Canon() string { return r.canon }

// AttrIndex returns the position of the named attribute, or -1.
func (r *RelationSchema) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if strings.EqualFold(a.Name, name) {
			return i
		}
	}
	return -1
}

// Arity returns the number of attributes.
func (r *RelationSchema) Arity() int { return len(r.Attrs) }

// HasKey reports whether the relation declares a key constraint.
func (r *RelationSchema) HasKey() bool { return len(r.Key) > 0 }

// KeyNames returns the names of the key attributes.
func (r *RelationSchema) KeyNames() []string {
	names := make([]string, len(r.Key))
	for i, p := range r.Key {
		names[i] = r.Attrs[p].Name
	}
	return names
}

func (r *RelationSchema) validate() error {
	if r.Name == "" {
		return fmt.Errorf("db: relation with empty name")
	}
	if len(r.Attrs) == 0 {
		return fmt.Errorf("db: relation %s has no attributes", r.Name)
	}
	seen := make(map[string]bool, len(r.Attrs))
	for _, a := range r.Attrs {
		lc := strings.ToLower(a.Name)
		if seen[lc] {
			return fmt.Errorf("db: relation %s: duplicate attribute %s", r.Name, a.Name)
		}
		seen[lc] = true
	}
	prev := -1
	for _, p := range r.Key {
		if p < 0 || p >= len(r.Attrs) {
			return fmt.Errorf("db: relation %s: key position %d out of range", r.Name, p)
		}
		if p <= prev {
			return fmt.Errorf("db: relation %s: key positions must be strictly ascending", r.Name)
		}
		prev = p
	}
	return nil
}

// Schema is a collection of relation schemas addressed by name
// (case-insensitively) or by dense RelID.
type Schema struct {
	rels  map[string]*RelationSchema
	byID  []*RelationSchema // dense, AddRelation order
	ids   map[string]RelID  // as-registered and canonical names → ID
	order []string          // insertion order of canonical names, for determinism
}

// NewSchema creates an empty schema.
func NewSchema() *Schema {
	return &Schema{
		rels: make(map[string]*RelationSchema),
		ids:  make(map[string]RelID),
	}
}

// AddRelation registers a relation schema. Key positions must be strictly
// ascending; names are unique case-insensitively.
func (s *Schema) AddRelation(r *RelationSchema) error {
	if err := r.validate(); err != nil {
		return err
	}
	lc := strings.ToLower(r.Name)
	if _, dup := s.rels[lc]; dup {
		return fmt.Errorf("db: duplicate relation %s", r.Name)
	}
	r.id = RelID(len(s.byID))
	r.canon = lc
	s.rels[lc] = r
	s.byID = append(s.byID, r)
	// Register both spellings so RelID lookups hit without lower-casing
	// first; mixed-case call sites fall back to one ToLower.
	s.ids[lc] = r.id
	if r.Name != lc {
		s.ids[r.Name] = r.id
	}
	s.order = append(s.order, lc)
	return nil
}

// MustAddRelation is AddRelation that panics on error; for package-level
// schema literals in generators and tests.
func (s *Schema) MustAddRelation(r *RelationSchema) {
	if err := s.AddRelation(r); err != nil {
		panic(err)
	}
}

// Relation returns the schema of the named relation, or nil.
func (s *Schema) Relation(name string) *RelationSchema {
	if id, ok := s.ids[name]; ok {
		return s.byID[id]
	}
	return s.rels[strings.ToLower(name)]
}

// RelID resolves a relation name (case-insensitively) to its dense ID.
// The fast path is a single map hit on the exact spelling; only unseen
// spellings pay a ToLower.
func (s *Schema) RelID(name string) (RelID, bool) {
	if id, ok := s.ids[name]; ok {
		return id, true
	}
	id, ok := s.ids[strings.ToLower(name)]
	return id, ok
}

// RelationByID returns the relation schema with the given dense ID.
func (s *Schema) RelationByID(id RelID) *RelationSchema { return s.byID[id] }

// NumRelations returns the number of registered relations.
func (s *Schema) NumRelations() int { return len(s.byID) }

// Relations returns all relation schemas in insertion order.
func (s *Schema) Relations() []*RelationSchema {
	out := make([]*RelationSchema, 0, len(s.byID))
	out = append(out, s.byID...)
	return out
}

// RelationNames returns the canonical relation names sorted alphabetically.
func (s *Schema) RelationNames() []string {
	names := make([]string, 0, len(s.rels))
	for _, r := range s.Relations() {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return names
}
