//go:build !unix

package db

import "os"

// Non-unix fallback: read the file into memory. The aliasing decode in
// LoadSnapshotBytes still avoids any per-fact allocation; only the
// kernel-shared zero-copy property is lost.
func mmapFile(path string) ([]byte, error) { return os.ReadFile(path) }

func munmapFile([]byte) error { return nil }
