package db

import (
	"fmt"
	"testing"

	"aggcavsat/internal/xrand"
)

// mixedSchema exercises every storable shape: INT, FLOAT (with INT
// widening), STRING, keys, keyless relations, and NULLs everywhere.
func mixedSchema() *Schema {
	s := NewSchema()
	s.MustAddRelation(&RelationSchema{
		Name: "Mix",
		Attrs: []Attribute{
			{Name: "ID", Kind: KindInt},
			{Name: "F", Kind: KindFloat},
			{Name: "S", Kind: KindString},
			{Name: "N", Kind: KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&RelationSchema{
		Name: "NoKey",
		Attrs: []Attribute{
			{Name: "A", Kind: KindString},
			{Name: "B", Kind: KindFloat},
		},
	})
	return s
}

// randomMixedValue draws a value legal for the attribute kind,
// including NULLs, empty strings, negative zero floats, and INT values
// stored in FLOAT attributes (the widening Insert permits).
func randomMixedValue(r *xrand.Rand, kind Kind) Value {
	if r.Intn(8) == 0 {
		return Null()
	}
	switch kind {
	case KindInt:
		return Int(r.Int63n(50) - 10)
	case KindFloat:
		switch r.Intn(4) {
		case 0:
			return Int(r.Int63n(30)) // INT stored in a FLOAT column
		case 1:
			return Float(0)
		case 2:
			return Float(-0.0) // bit-distinct from +0.0 under EqualExact
		default:
			return Float(float64(r.Int63n(100)) / 4)
		}
	default:
		switch r.Intn(5) {
		case 0:
			return Str("")
		default:
			return Str(fmt.Sprintf("s%d", r.Intn(20)))
		}
	}
}

// buildMixedPair inserts the same random facts into a columnar and a
// row instance, returning both.
func buildMixedPair(seed uint64, n int) (*Instance, *Instance) {
	s := mixedSchema()
	col := NewInstance(s)
	row := NewInstanceLayout(s, LayoutRow)
	r := xrand.New(seed)
	for i := 0; i < n; i++ {
		rs := s.Relations()[r.Intn(s.NumRelations())]
		t := make(Tuple, rs.Arity())
		for p, a := range rs.Attrs {
			t[p] = randomMixedValue(r, a.Kind)
		}
		if _, err := col.Insert(rs.Name, t); err != nil {
			panic(err)
		}
		if _, err := row.Insert(rs.Name, t.Clone()); err != nil {
			panic(err)
		}
	}
	return col, row
}

// requireSameInstances asserts fact-for-fact, accessor-for-accessor
// equivalence of two instances that should hold identical data.
func requireSameInstances(t *testing.T, a, b *Instance) {
	t.Helper()
	if a.NumFacts() != b.NumFacts() {
		t.Fatalf("fact counts differ: %d vs %d", a.NumFacts(), b.NumFacts())
	}
	for id := FactID(0); int(id) < a.NumFacts(); id++ {
		fa, fb := a.Fact(id), b.Fact(id)
		if fa.Rel != fb.Rel {
			t.Fatalf("fact %d: relation %q vs %q", id, fa.Rel, fb.Rel)
		}
		if !fa.Tuple.EqualExact(fb.Tuple) {
			t.Fatalf("fact %d: tuple %v vs %v", id, fa.Tuple, fb.Tuple)
		}
		for p := range fa.Tuple {
			if !a.ValueAt(id, p).EqualExact(fb.Tuple[p]) {
				t.Fatalf("fact %d pos %d: ValueAt %v vs %v", id, p, a.ValueAt(id, p), fb.Tuple[p])
			}
			if !a.MatchAt(id, p, fb.Tuple[p]) || !b.MatchAt(id, p, fa.Tuple[p]) {
				t.Fatalf("fact %d pos %d: MatchAt disagrees", id, p)
			}
			if !a.Row(id).Match(p, fb.Tuple[p]) {
				t.Fatalf("fact %d pos %d: RowView.Match disagrees", id, p)
			}
		}
	}
	ga, gb := a.KeyEqualGroups(), b.KeyEqualGroups()
	if len(ga) != len(gb) {
		t.Fatalf("group counts differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i].Rel != gb[i].Rel || len(ga[i].Facts) != len(gb[i].Facts) {
			t.Fatalf("group %d differs: %+v vs %+v", i, ga[i], gb[i])
		}
		for j := range ga[i].Facts {
			if ga[i].Facts[j] != gb[i].Facts[j] {
				t.Fatalf("group %d member %d differs", i, j)
			}
		}
	}
}

// TestColumnarRowStoreEquivalent: every logical accessor of the
// columnar store agrees with the row store on identical inserts — the
// package-level half of the columnar≡row property (the engine-level
// half lives in internal/planner).
func TestColumnarRowStoreEquivalent(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		col, row := buildMixedPair(seed, 300)
		if col.Layout() != LayoutColumnar || row.Layout() != LayoutRow {
			t.Fatal("layout labels wrong")
		}
		requireSameInstances(t, col, row)

		// Hash self-consistency per backend: probe hashes must meet row
		// hashes, and EqualRows pairs must collide.
		for _, in := range []*Instance{col, row} {
			for id := FactID(0); int(id) < in.NumFacts(); id++ {
				rid := in.RelOf(id)
				rs := in.Schema().RelationByID(rid)
				all := make([]int, rs.Arity())
				for p := range all {
					all[p] = p
				}
				want := in.HashRowOn(id, all, HashSeed)
				h, ok := HashSeed, true
				for _, p := range all {
					h, ok = in.HashProbeValue(h, in.ValueAt(id, p))
					if !ok {
						t.Fatalf("probe hash missing for stored value (fact %d pos %d)", id, p)
					}
				}
				if h != want {
					t.Fatalf("fact %d: probe hash %x != row hash %x (%s)", id, h, want, in.Layout())
				}
				if got := in.HashRowAll(id, HashSeed); got != want {
					t.Fatalf("fact %d: HashRowAll %x != HashRowOn(all) %x", id, got, want)
				}
			}
		}

		// CompareAt agrees with materialized Value.Compare across all
		// pairs within each relation (both backends).
		for _, rs := range col.Schema().Relations() {
			ids := col.RelFactsByID(rs.ID())
			if len(ids) > 40 {
				ids = ids[:40]
			}
			for _, x := range ids {
				for _, y := range ids {
					for p := 0; p < rs.Arity(); p++ {
						want := row.ValueAt(x, p).Compare(row.ValueAt(y, p))
						if got := col.CompareAt(x, y, p); got != want {
							t.Fatalf("CompareAt(%d,%d,%d) = %d, want %d", x, y, p, got, want)
						}
						if got := row.CompareAt(x, y, p); got != want {
							t.Fatalf("row CompareAt(%d,%d,%d) = %d, want %d", x, y, p, got, want)
						}
					}
				}
			}
		}

		// Conversion in both directions preserves everything.
		requireSameInstances(t, col.ConvertLayout(LayoutRow), row)
		requireSameInstances(t, row.ConvertLayout(LayoutColumnar), col)
	}
}

// TestHashProbeValueMiss: a string absent from the dictionary reports
// ok=false (no fact can match), while the row store always hashes.
func TestHashProbeValueMiss(t *testing.T) {
	col, row := buildMixedPair(3, 50)
	if _, ok := col.HashProbeValue(HashSeed, Str("never-inserted-string")); ok {
		t.Fatal("columnar probe for unseen string should miss")
	}
	if _, ok := row.HashProbeValue(HashSeed, Str("never-inserted-string")); !ok {
		t.Fatal("row probe should always hash")
	}
	if _, ok := col.HashProbeValue(HashSeed, Int(1234567)); !ok {
		t.Fatal("numeric probes never miss")
	}
}

// TestRelFactsCaseInsensitive: RelFacts resolves any spelling without
// rebuilding strings, and RelFactsByID matches.
func TestRelFactsCaseInsensitive(t *testing.T) {
	col, _ := buildMixedPair(7, 60)
	id, ok := col.Schema().RelID("MIX")
	if !ok {
		t.Fatal("RelID(MIX) failed")
	}
	a, b, c := col.RelFacts("Mix"), col.RelFacts("mix"), col.RelFacts("MIX")
	d := col.RelFactsByID(id)
	if len(a) == 0 || len(a) != len(b) || len(b) != len(c) || len(c) != len(d) {
		t.Fatalf("case-insensitive RelFacts disagree: %d/%d/%d/%d", len(a), len(b), len(c), len(d))
	}
	if col.RelFacts("NoSuchRel") != nil {
		t.Fatal("unknown relation should return nil")
	}
}

// TestSubsetPreservesLayout: Subset keeps the receiver's layout and the
// kept facts' tuples.
func TestSubsetPreservesLayout(t *testing.T) {
	col, row := buildMixedPair(11, 80)
	keep := func(id FactID) bool { return id%2 == 0 }
	sc, sr := col.Subset(keep), row.Subset(keep)
	if sc.Layout() != LayoutColumnar || sr.Layout() != LayoutRow {
		t.Fatal("Subset changed layout")
	}
	requireSameInstances(t, sc, sr)
}
