//go:build unix

package db

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only and shared: the kernel page
// cache backs the instance's column arenas, nothing is copied, and
// several processes serving one snapshot share the physical pages.
// Empty files fall back to a read (mmap of length 0 is an error).
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return []byte{}, nil
	}
	if int64(int(size)) != size {
		return nil, ErrSnapshotTruncated
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, &os.PathError{Op: "mmap", Path: path, Err: err}
	}
	return data, nil
}

func munmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
