package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical streams")
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed must not produce a stuck stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestInt63nBounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) should panic")
		}
	}()
	r.Int63n(0)
}

func TestRangeInclusive(t *testing.T) {
	r := New(3)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		v := r.Range(2, 7)
		if v < 2 || v > 7 {
			t.Fatalf("Range out of bounds: %d", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 7; v++ {
		if !seen[v] {
			t.Errorf("value %d never produced", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("Bool(0.25) hit rate = %v", frac)
	}
}

func TestPick(t *testing.T) {
	r := New(9)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Pick never produced some elements: %v", seen)
	}
}

func TestUniformish(t *testing.T) {
	// Chi-squared-light: each of 8 buckets should hold roughly 1/8.
	fn := func(seed uint64) bool {
		r := New(seed)
		buckets := make([]int, 8)
		n := 8000
		for i := 0; i < n; i++ {
			buckets[r.Intn(8)]++
		}
		for _, b := range buckets {
			if b < n/8-n/16 || b > n/8+n/16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
