// Package xrand is a tiny deterministic PRNG (xorshift64*) shared by the
// workload generators. The standard library's math/rand would work too,
// but a self-contained generator guarantees bit-identical datasets across
// Go versions, which the benchmark harness relies on.
package xrand

// Rand is a xorshift64* generator. The zero value is invalid; use New.
type Rand struct {
	state uint64
}

// New creates a generator; a zero seed is remapped to a fixed non-zero
// constant (xorshift has no zero state).
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n).
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Range returns a uniform int in [lo, hi] inclusive.
func (r *Rand) Range(lo, hi int) int {
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Pick returns a uniformly chosen element of the slice.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}
