package maxsat

import (
	"context"
	"fmt"
	"sort"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/sat"
)

// wlit is one output of a generalized totalizer node: lit is forced true
// whenever the total violated weight below the node is at least w.
type wlit struct {
	w   int64
	lit cnf.Lit
}

// buildGTE encodes a generalized totalizer (weighted counter) over the
// violation indicators: for every attainable weight sum w it returns a
// literal that the added hard clauses force to true whenever the total
// weight of true inputs is ≥ w. Outputs are sorted by ascending weight.
func buildGTE(s *sat.Solver, inputs []wlit) []wlit {
	if len(inputs) <= 1 {
		return inputs
	}
	mid := len(inputs) / 2
	a := buildGTE(s, inputs[:mid])
	b := buildGTE(s, inputs[mid:])
	// Collect attainable sums: every a-weight, b-weight, and pair sum.
	sums := map[int64]cnf.Lit{}
	keys := []int64{}
	addSum := func(w int64) {
		if _, ok := sums[w]; !ok {
			sums[w] = cnf.Lit(s.NewVar())
			keys = append(keys, w)
		}
	}
	for _, x := range a {
		addSum(x.w)
	}
	for _, y := range b {
		addSum(y.w)
	}
	for _, x := range a {
		for _, y := range b {
			addSum(x.w + y.w)
		}
	}
	for _, x := range a {
		s.AddClause(x.lit.Neg(), sums[x.w])
	}
	for _, y := range b {
		s.AddClause(y.lit.Neg(), sums[y.w])
	}
	for _, x := range a {
		for _, y := range b {
			s.AddClause(x.lit.Neg(), y.lit.Neg(), sums[x.w+y.w])
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]wlit, len(keys))
	for i, w := range keys {
		out[i] = wlit{w: w, lit: sums[w]}
	}
	return out
}

// solveLSU implements linear SAT-UNSAT (solution-improving) search:
// repeatedly find a model, measure the falsified soft weight U, and add
// hard unit clauses banning every attainable violated weight ≥ U. The
// last model before UNSAT is optimal.
// The solver comes from p.fork(). LSU builds its counter immediately
// and adds ban units as it improves, so p.adopt almost always rejects
// the solver at exit; trivially easy runs that added nothing still get
// adopted.
func solveLSU(ctx context.Context, p *problem, opts Options) (Result, error) {
	s := p.fork()
	if !s.Okay() {
		return Result{Satisfiable: false}, nil
	}
	defer p.adoptSolver(s) // registered first: runs after release()
	if opts.ConflictBudget > 0 {
		s.SetConflictBudget(opts.ConflictBudget)
	}
	release := sat.StopOnDone(ctx, s)
	defer release()
	weights := p.weights
	tr := newTracker(ctx, opts, AlgLSU, s)

	// Violation indicators: the negations of the selectors.
	inputs := make([]wlit, 0, len(weights))
	for _, sel := range sortedSelectors(weights) {
		inputs = append(inputs, wlit{w: weights[sel], lit: sel.Neg()})
	}
	outputs := buildGTE(s, inputs)

	var best Result
	haveBest := false
	banned := len(outputs) // index of the first banned output
	for {
		if err := interrupted(ctx); err != nil {
			return statsOf(s), err
		}
		tr.step()
		st := satSolve(ctx, s, AlgLSU)
		switch st {
		case sat.Unknown:
			if err := interrupted(ctx); err != nil {
				return statsOf(s), err
			}
			return statsOf(s), fmt.Errorf("%w: conflicts (lsu)", ErrBudget)
		case sat.Unsat:
			if !haveBest {
				return Result{Satisfiable: false, SATCalls: s.Stats.Solves, Conflicts: s.Stats.Conflicts}, nil
			}
			best.SATCalls = s.Stats.Solves
			best.Conflicts = s.Stats.Conflicts
			return best, nil
		case sat.Sat:
			model := s.Model()
			opt := p.score(model)
			falsified := p.total - opt
			best = Result{
				Satisfiable:     true,
				Optimum:         opt,
				FalsifiedWeight: falsified,
				Model:           p.trim(model),
			}
			haveBest = true
			tr.bounds(-1, falsified)
			tr.event("model")
			if falsified == 0 {
				best.SATCalls = s.Stats.Solves
				best.Conflicts = s.Stats.Conflicts
				return best, nil
			}
			// Ban all attainable violated weights ≥ the achieved one.
			newBanned := sort.Search(len(outputs), func(i int) bool { return outputs[i].w >= falsified })
			for i := newBanned; i < banned; i++ {
				if !s.AddClause(outputs[i].lit.Neg()) {
					// Banning makes the instance UNSAT outright: the
					// current best is optimal.
					best.SATCalls = s.Stats.Solves
					best.Conflicts = s.Stats.Conflicts
					return best, nil
				}
			}
			banned = newBanned
		}
	}
}
