package maxsat

import (
	"aggcavsat/internal/cnf"
	"aggcavsat/internal/sat"
)

// buildTotalizer encodes a cardinality counter over the input literals:
// it returns output literals out[0..k-1] such that the added hard clauses
// force out[j] to be true whenever at least j+1 inputs are true (the
// "inputs → outputs" direction, which is what core-guided search needs:
// assuming ¬out[j] caps the count at j).
//
// The encoding is the classic totalizer tree: each node merges the sorted
// unary counters of its children with clauses
//
//	aᵢ ∧ bⱼ → rᵢ₊ⱼ   (including the i=0 / j=0 boundary cases)
func buildTotalizer(s *sat.Solver, inputs []cnf.Lit) []cnf.Lit {
	if len(inputs) == 0 {
		return nil
	}
	if len(inputs) == 1 {
		return []cnf.Lit{inputs[0]}
	}
	mid := len(inputs) / 2
	a := buildTotalizer(s, inputs[:mid])
	b := buildTotalizer(s, inputs[mid:])
	out := make([]cnf.Lit, len(a)+len(b))
	for i := range out {
		out[i] = cnf.Lit(s.NewVar())
	}
	// a_i alone implies out_{i}: count ≥ i+1.
	for i, ai := range a {
		s.AddClause(ai.Neg(), out[i])
	}
	for j, bj := range b {
		s.AddClause(bj.Neg(), out[j])
	}
	// a_i and b_j together imply out_{i+j+1}: count ≥ (i+1)+(j+1).
	for i, ai := range a {
		for j, bj := range b {
			s.AddClause(ai.Neg(), bj.Neg(), out[i+j+1])
		}
	}
	return out
}
