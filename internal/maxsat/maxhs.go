package maxsat

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/sat"
)

// solveMaxHS implements the implicit-hitting-set MaxSAT algorithm of
// Davies & Bacchus — the algorithm of the MaxHS solver the paper runs:
//
//  1. Relax soft clauses into selectors with their (immutable) weights.
//  2. Compute a minimum-weight hitting set H of the cores found so far
//     and ask the SAT solver for a model satisfying every selector
//     outside H.
//  3. SAT → the model is optimal (it falsifies at most weight(H), and
//     every solution must pay at least the optimal hitting set).
//     UNSAT → extract and trim a new core, add it to the collection,
//     repeat.
//
// Unlike core-guided search (solveRC2), weights are never split, so the
// algorithm is immune to the weight-diversity death spiral on SUM
// instances whose weights are prices. The hitting-set subproblems are
// solved exactly by branch and bound over the connected clusters of
// overlapping cores — for the repair structures produced by the
// reductions, most cores are disjoint and the clusters stay small.
// MaxHS proper delegates this to an ILP solver (CPLEX).
//
// The solver comes from p.fork() — a fresh build on the legacy path, a
// clone of the shared base under an Instance. MaxHS only ever solves
// under assumptions and never adds clauses, so the solver is offered
// back via p.adopt on every exit: its learnt clauses are implied by the
// shared clause set and carry over to the other direction and to any
// RC2 fallback.
func solveMaxHS(ctx context.Context, p *problem, opts Options) (Result, error) {
	s := p.fork()
	if !s.Okay() {
		return Result{Satisfiable: false}, nil
	}
	defer p.adoptSolver(s) // registered first: runs after release()
	if opts.ConflictBudget > 0 {
		s.SetConflictBudget(opts.ConflictBudget)
	}
	release := sat.StopOnDone(ctx, s)
	defer release()
	weights := p.weights
	all := sortedSelectors(weights)
	tr := newTracker(ctx, opts, AlgMaxHS, s)

	hs := newHittingSets(weights)
	if opts.HSNodeBudget > 0 {
		hs.nodeBudget = opts.HSNodeBudget
	}
	needExact := false
	// Scratch buffers reused across every SAT call: the inner loop used
	// to allocate a fresh O(#selectors) assumptions slice and excluded
	// map per call, which dominated allocation on large components.
	assumptions := make([]cnf.Lit, 0, len(all))
	excluded := make(map[cnf.Lit]bool, len(all))
	for {
		if err := interrupted(ctx); err != nil {
			return statsOf(s), err
		}
		// One hitting-set recomputation per *batch* of cores: after the
		// first core of a batch, keep harvesting further cores disjoint
		// from everything excluded so far (Davies-Bacchus "disjoint
		// phase") before paying for the next hitting set. Greedy hitting
		// sets drive the search; an exact solve (branch and bound) runs
		// only to certify optimality once the greedy set stops producing
		// cores.
		exact := needExact
		tr.step()
		H, err := hs.hittingSet(exact)
		if err != nil {
			return statsOf(s), err
		}
		if tr != nil {
			// The weight of an *exact* hitting set of the cores found so
			// far is a valid lower bound on the optimum falsified weight.
			var hw int64
			for l := range H {
				hw += weights[l]
			}
			if exact {
				tr.bounds(hw, -1)
			}
			tr.event("hitting-set")
		}
		clear(excluded)
		for l := range H {
			excluded[l] = true
		}
		foundCore := false
		for {
			assumptions = assumptions[:0]
			for _, l := range all {
				if !excluded[l] {
					assumptions = append(assumptions, l)
				}
			}
			st := satSolve(ctx, s, AlgMaxHS, assumptions...)
			if st == sat.Unknown {
				if err := interrupted(ctx); err != nil {
					return statsOf(s), err
				}
				return statsOf(s), fmt.Errorf("%w: conflicts (maxhs)", ErrBudget)
			}
			if st == sat.Sat {
				if !foundCore {
					if !exact {
						// SAT under a greedy hitting set proves nothing;
						// certify with an exact one.
						needExact = true
						break
					}
					// SAT under the optimal hitting set: the model is
					// optimal.
					model := s.Model()
					opt := p.score(model)
					tr.bounds(-1, p.total-opt)
					tr.event("model")
					return Result{
						Satisfiable:     true,
						Optimum:         opt,
						FalsifiedWeight: p.total - opt,
						Model:           p.trim(model),
						SATCalls:        s.Stats.Solves,
						Conflicts:       s.Stats.Conflicts,
					}, nil
				}
				break // batch exhausted; recompute the hitting set
			}
			core := s.Core()
			if len(core) == 0 {
				return Result{Satisfiable: false, SATCalls: s.Stats.Solves, Conflicts: s.Stats.Conflicts}, nil
			}
			for rounds := 0; rounds < 5 && len(core) > 1; rounds++ {
				st := satSolve(ctx, s, AlgMaxHS, core...)
				if st != sat.Unsat {
					if err := interrupted(ctx); err != nil {
						return statsOf(s), err
					}
					return statsOf(s), fmt.Errorf("maxsat: core no longer unsat during trimming (%v)", st)
				}
				trimmed := s.Core()
				if len(trimmed) >= len(core) {
					break
				}
				core = trimmed
			}
			hs.add(core)
			tr.event("core")
			foundCore = true
			needExact = false
			for _, l := range core {
				excluded[l] = true
			}
		}
	}
}

// hittingSets maintains the cores partitioned into connected clusters
// (cores sharing a selector) and solves minimum-weight hitting set
// exactly per cluster, caching cluster solutions between iterations and
// warm-starting the branch and bound from the previous solution.
type hittingSets struct {
	weights  map[cnf.Lit]int64
	clusters []*hsCluster
	// byLit maps a selector to its cluster index (after union).
	byLit      map[cnf.Lit]int
	nodeBudget int64
}

type hsCluster struct {
	cores    [][]cnf.Lit
	solution map[cnf.Lit]bool // cached optimal hitting set
	weight   int64
	warm     map[cnf.Lit]bool // feasible warm start for the next solve
	dirty    bool
}

func newHittingSets(weights map[cnf.Lit]int64) *hittingSets {
	return &hittingSets{weights: weights, byLit: map[cnf.Lit]int{}, nodeBudget: hsNodeBudget}
}

// add inserts a core, merging every cluster it touches.
func (h *hittingSets) add(core []cnf.Lit) {
	touched := map[int]bool{}
	for _, l := range core {
		if ci, ok := h.byLit[l]; ok {
			touched[ci] = true
		}
	}
	var target *hsCluster
	var targetIdx int
	warm := map[cnf.Lit]bool{}
	if len(touched) == 0 {
		target = &hsCluster{}
		targetIdx = len(h.clusters)
		h.clusters = append(h.clusters, target)
	} else {
		idxs := make([]int, 0, len(touched))
		for ci := range touched {
			idxs = append(idxs, ci)
		}
		sort.Ints(idxs)
		targetIdx = idxs[0]
		target = h.clusters[targetIdx]
		for l := range target.solution {
			warm[l] = true
		}
		for _, ci := range idxs[1:] {
			other := h.clusters[ci]
			target.cores = append(target.cores, other.cores...)
			for _, c := range other.cores {
				for _, l := range c {
					h.byLit[l] = targetIdx
				}
			}
			for l := range other.solution {
				warm[l] = true
			}
			h.clusters[ci] = &hsCluster{} // emptied
		}
	}
	// Warm start: previous solutions hit all old cores; hitting the new
	// core with its cheapest literal keeps feasibility.
	cheapest := core[0]
	for _, l := range core[1:] {
		if h.weights[l] < h.weights[cheapest] {
			cheapest = l
		}
	}
	warm[cheapest] = true
	target.warm = warm
	target.addCore(core)
	for _, l := range core {
		h.byLit[l] = targetIdx
	}
}

// addCore appends a core with subsumption filtering: a core that is a
// superset of an existing core adds no constraint; existing cores that
// are supersets of the new one are dropped.
func (cl *hsCluster) addCore(core []cnf.Lit) {
	sorted := append([]cnf.Lit(nil), core...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, c := range cl.cores {
		if isSubsetLits(c, sorted) {
			// An existing core subsumes the new one (cannot happen for
			// cores disjoint from the current hitting set, but kept for
			// safety): nothing to add.
			cl.dirty = true
			return
		}
	}
	kept := make([][]cnf.Lit, 0, len(cl.cores)+1)
	for _, c := range cl.cores {
		if !isSubsetLits(sorted, c) {
			kept = append(kept, c)
		}
	}
	cl.cores = append(kept, sorted)
	cl.dirty = true
}

// isSubsetLits reports a ⊆ b for sorted literal slices.
func isSubsetLits(a, b []cnf.Lit) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// hittingSet returns a hitting set over all cores: greedy (feasible,
// usually near-optimal) or exact (minimum weight), per cluster. Exact
// solutions are cached; greedy ones leave the cluster dirty so a later
// exact pass re-solves it.
func (h *hittingSets) hittingSet(exact bool) (map[cnf.Lit]bool, error) {
	out := map[cnf.Lit]bool{}
	for _, cl := range h.clusters {
		if len(cl.cores) == 0 {
			continue
		}
		if cl.dirty {
			if exact {
				start := time.Now()
				sol, weight, err := solveClusterHS(cl.cores, h.weights, cl.warm, h.nodeBudget)
				if err != nil {
					return nil, err
				}
				cl.solution, cl.weight = sol, weight
				cl.dirty = false
				if el := time.Since(start); el > 500*time.Millisecond && os.Getenv("RC2_DEBUG") != "" {
					fmt.Fprintf(os.Stderr, "HS cluster: %d cores, weight %d, %v\n",
						len(cl.cores), cl.weight, el)
				}
			} else {
				cl.solution, cl.weight = greedyClusterHS(cl.cores, h.weights, cl.warm)
				// cl.dirty stays true: only exact solutions are final.
			}
			cl.warm = cl.solution
		}
		for l := range cl.solution {
			out[l] = true
		}
	}
	return out, nil
}

// greedyClusterHS builds a feasible hitting set fast: start from the
// warm set, cover unhit cores with their cheapest literal, then drop
// redundant elements heaviest-first.
func greedyClusterHS(cores [][]cnf.Lit, weights map[cnf.Lit]int64, warm map[cnf.Lit]bool) (map[cnf.Lit]bool, int64) {
	sol := map[cnf.Lit]bool{}
	for l := range warm {
		sol[l] = true
	}
	hit := func(c []cnf.Lit) bool {
		for _, l := range c {
			if sol[l] {
				return true
			}
		}
		return false
	}
	for _, c := range cores {
		if !hit(c) {
			cheapest := c[0]
			for _, l := range c[1:] {
				if weights[l] < weights[cheapest] {
					cheapest = l
				}
			}
			sol[cheapest] = true
		}
	}
	// Reduction pass: remove redundant elements, heaviest first.
	elems := make([]cnf.Lit, 0, len(sol))
	for l := range sol {
		elems = append(elems, l)
	}
	sort.Slice(elems, func(i, j int) bool {
		wi, wj := weights[elems[i]], weights[elems[j]]
		if wi != wj {
			return wi > wj
		}
		return elems[i] < elems[j]
	})
	for _, l := range elems {
		delete(sol, l)
		feasible := true
		for _, c := range cores {
			if !hit(c) {
				feasible = false
				break
			}
		}
		if !feasible {
			sol[l] = true
		}
	}
	var total int64
	for l := range sol {
		total += weights[l]
	}
	return sol, total
}

// errHSBudget signals that the exact hitting-set search exceeded its
// node budget; solveMaxHS surfaces it so Solve can fall back to the
// core-guided algorithm (which is slower on these instances but has no
// comparable worst case). It wraps ErrBudget so callers that only care
// about "some budget ran out" match it with errors.Is.
var errHSBudget = fmt.Errorf("%w: exact hitting-set node budget (maxhs)", ErrBudget)

// hsNodeBudget bounds one exact cluster solve. The calibrated workloads
// stay far below it; it exists so a pathological cluster degrades into
// the RC2 fallback instead of an unbounded search.
const hsNodeBudget = 30_000_000

// solveClusterHS solves minimum-weight hitting set for one cluster by
// in-place branch and bound: unit propagation, inclusion-exclusion
// branching on the most constrained core, and an expensive-first
// disjoint-core packing bound, warm-started from the greedy solution.
// The error is errHSBudget when the node budget ran out.
func solveClusterHS(cores [][]cnf.Lit, weights map[cnf.Lit]int64, warm map[cnf.Lit]bool, nodeBudget int64) (map[cnf.Lit]bool, int64, error) {
	// Dense selector ids.
	id := map[cnf.Lit]int{}
	var lits []cnf.Lit
	var w []int64
	intern := func(l cnf.Lit) int {
		if i, ok := id[l]; ok {
			return i
		}
		i := len(lits)
		id[l] = i
		lits = append(lits, l)
		w = append(w, weights[l])
		return i
	}
	idxCores := make([][]int, len(cores))
	for i, c := range cores {
		ic := make([]int, len(c))
		for j, l := range c {
			ic[j] = intern(l)
		}
		sort.Slice(ic, func(a, b int) bool {
			if w[ic[a]] != w[ic[b]] {
				return w[ic[a]] < w[ic[b]]
			}
			return ic[a] < ic[b]
		})
		idxCores[i] = ic
	}
	nSel := len(lits)
	occur := make([][]int, nSel)
	for ci, c := range idxCores {
		for _, sel := range c {
			occur[sel] = append(occur[sel], ci)
		}
	}
	hv := &hsSolver{
		w:          w,
		idxCores:   idxCores,
		occur:      occur,
		hitCount:   make([]int, len(idxCores)),
		banned:     make([]bool, nSel),
		chosen:     make([]bool, nSel),
		mark:       make([]int, nSel),
		bestW:      -1,
		nodeBudget: nodeBudget,
	}
	hv.packOrder = make([]int, len(idxCores))
	for i := range hv.packOrder {
		hv.packOrder[i] = i
	}
	sort.Slice(hv.packOrder, func(a, b int) bool {
		return w[idxCores[hv.packOrder[a]][0]] > w[idxCores[hv.packOrder[b]][0]]
	})

	// Warm upper bound (always feasible).
	warmSol, warmW := greedyClusterHS(cores, weights, warm)
	hv.bestW = warmW
	hv.best = make([]bool, nSel)
	for l := range warmSol {
		if i, ok := id[l]; ok {
			hv.best[i] = true
		}
	}

	hv.rec(0)
	if hv.aborted {
		return nil, 0, errHSBudget
	}
	if hv.bestW >= warmW {
		return warmSol, warmW, nil
	}
	out := map[cnf.Lit]bool{}
	for i, b := range hv.best {
		if b {
			out[lits[i]] = true
		}
	}
	return out, hv.bestW, nil
}

type hsSolver struct {
	nodeBudget int64
	w          []int64
	idxCores   [][]int
	occur      [][]int
	hitCount   []int
	banned     []bool
	chosen     []bool
	mark       []int
	stamp      int
	packOrder  []int
	best       []bool
	bestW      int64
	nodes      int64
	aborted    bool
}

func (hv *hsSolver) choose(sel int) {
	hv.chosen[sel] = true
	for _, ci := range hv.occur[sel] {
		hv.hitCount[ci]++
	}
}

func (hv *hsSolver) unchoose(sel int) {
	for _, ci := range hv.occur[sel] {
		hv.hitCount[ci]--
	}
	hv.chosen[sel] = false
}

func (hv *hsSolver) rec(weight int64) {
	if hv.aborted {
		return
	}
	hv.nodes++
	if hv.nodes > hv.nodeBudget {
		hv.aborted = true
		return
	}
	if hv.bestW >= 0 && weight >= hv.bestW {
		return
	}
	// Unit propagation: a core with exactly one unbanned literal forces
	// it; a core with none kills the branch.
	var forced []int
	undo := func() {
		for i := len(forced) - 1; i >= 0; i-- {
			hv.unchoose(forced[i])
		}
	}
	for {
		progress, dead := false, false
		for ci, c := range hv.idxCores {
			if hv.hitCount[ci] > 0 {
				continue
			}
			count, unbanned := 0, -1
			for _, sel := range c {
				if !hv.banned[sel] {
					count++
					unbanned = sel
					if count > 1 {
						break
					}
				}
			}
			if count == 0 {
				dead = true
				break
			}
			if count == 1 {
				hv.choose(unbanned)
				forced = append(forced, unbanned)
				weight += hv.w[unbanned]
				progress = true
			}
		}
		if dead || (hv.bestW >= 0 && weight >= hv.bestW) {
			if dead || weight >= hv.bestW {
				undo()
				return
			}
		}
		if !progress {
			break
		}
	}
	// Most constrained core to branch on; expensive-first packing bound.
	branchCore, branchChoices := -1, 1<<30
	var lb int64
	hv.stamp++
	for _, ci := range hv.packOrder {
		if hv.hitCount[ci] > 0 {
			continue
		}
		c := hv.idxCores[ci]
		choices := 0
		var cheapest int64 = -1
		for _, sel := range c {
			if !hv.banned[sel] {
				choices++
				if cheapest < 0 || hv.w[sel] < cheapest {
					cheapest = hv.w[sel]
				}
			}
		}
		if choices < branchChoices {
			branchChoices = choices
			branchCore = ci
		}
		disjoint := true
		for _, sel := range c {
			if hv.mark[sel] == hv.stamp {
				disjoint = false
				break
			}
		}
		if disjoint {
			lb += cheapest
			for _, sel := range c {
				hv.mark[sel] = hv.stamp
			}
		}
	}
	if branchCore < 0 {
		hv.bestW = weight
		hv.best = append(hv.best[:0:0], hv.chosen...)
		undo()
		return
	}
	if hv.bestW >= 0 && weight+lb >= hv.bestW {
		undo()
		return
	}
	var bannedHere []int
	for _, sel := range hv.idxCores[branchCore] {
		if hv.banned[sel] || hv.chosen[sel] {
			continue
		}
		hv.choose(sel)
		hv.rec(weight + hv.w[sel])
		hv.unchoose(sel)
		hv.banned[sel] = true
		bannedHere = append(bannedHere, sel)
	}
	for _, sel := range bannedHere {
		hv.banned[sel] = false
	}
	undo()
}
