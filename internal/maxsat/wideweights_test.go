package maxsat

import (
	"testing"
)
import "aggcavsat/internal/cnf"

// TestWideWeightsAgainstBruteForce is a regression test for the
// incumbent-model bug in RC2's hardening and for MaxHS weight handling:
// random instances with weights up to 1000 exercise stratification,
// hardening and hitting-set search much harder than small weights do.
func TestWideWeightsAgainstBruteForce(t *testing.T) {
	fails := 0
	for seed := uint64(1); seed <= 400; seed++ {
		rng := seed | 1
		next := func(n int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(n))
		}
		nVars := 3 + next(5)
		f := cnf.New(nVars)
		nHard := next(7)
		for i := 0; i < nHard; i++ {
			k := 1 + next(3)
			lits := make([]cnf.Lit, k)
			for j := range lits {
				v := 1 + next(nVars)
				if next(2) == 0 {
					lits[j] = cnf.Lit(v)
				} else {
					lits[j] = cnf.Lit(-v)
				}
			}
			f.AddHard(lits...)
		}
		nSoft := 2 + next(8)
		for i := 0; i < nSoft; i++ {
			k := 1 + next(3)
			lits := make([]cnf.Lit, k)
			for j := range lits {
				v := 1 + next(nVars)
				if next(2) == 0 {
					lits[j] = cnf.Lit(v)
				} else {
					lits[j] = cnf.Lit(-v)
				}
			}
			f.AddSoft(int64(1+next(1000)), lits...) // wide weights
		}
		want, wantOK := bruteForceOptimum(f)
		res, err := Solve(f, Options{Algorithm: AlgRC2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Satisfiable != wantOK || (wantOK && res.Optimum != want) {
			fails++
			if fails <= 3 {
				t.Errorf("seed %d: got %d (sat=%v), want %d (sat=%v)", seed, res.Optimum, res.Satisfiable, want, wantOK)
			}
		}
	}
	if fails > 0 {
		t.Errorf("total failures: %d/400", fails)
	}
}
