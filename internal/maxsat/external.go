package maxsat

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/obsv"
)

// solveExternal writes the formula in DIMACS WCNF and runs an external
// MaxSAT solver binary (MaxHS-compatible output: "s OPTIMUM FOUND",
// "o <falsified-weight>" lines, and a "v ..." model line in either the
// space-separated-literals or the 0/1-string format).
//
// This mirrors the paper's architecture, where AggCAvSAT invokes MaxHS
// v3.2 as a separate process.
func solveExternal(ctx context.Context, f *cnf.Formula, opts Options) (Result, error) {
	if opts.SolverPath == "" {
		return Result{}, fmt.Errorf("maxsat: external algorithm requires Options.SolverPath")
	}
	_, sp := obsv.StartSpan(ctx, "maxsat.external", obsv.String("solver", opts.SolverPath))
	defer sp.End()
	tmp, err := os.CreateTemp("", "aggcavsat-*.wcnf")
	if err != nil {
		return Result{}, err
	}
	defer os.Remove(tmp.Name())
	if err := f.WriteWCNF(tmp); err != nil {
		tmp.Close()
		return Result{}, fmt.Errorf("maxsat: write wcnf: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return Result{}, err
	}

	args := append(append([]string{}, opts.SolverArgs...), tmp.Name())
	cmd := exec.CommandContext(ctx, opts.SolverPath, args...)
	// On cancellation CommandContext kills the process; WaitDelay bounds
	// how long Run then waits for I/O pipes to drain before giving up on
	// a child that ignores the kill (e.g. one that re-spawned itself).
	cmd.WaitDelay = 5 * time.Second
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	// MaxSAT solvers signal their result on stdout and often exit with
	// nonzero status codes by convention (10/20/30), so run errors are
	// only fatal when no result line is present.
	runErr := cmd.Run()
	if ctxErr := ctx.Err(); ctxErr != nil {
		// A killed solver may have emitted partial (even well-formed)
		// output; the cancellation takes precedence over parsing it.
		return Result{}, fmt.Errorf("maxsat: external solver terminated: %w", ctxErr)
	}

	res, parseErr := ParseSolverOutput(f, out.Bytes())
	if parseErr != nil {
		if runErr != nil {
			return Result{}, fmt.Errorf("maxsat: external solver failed: %v (output: %w)", runErr, parseErr)
		}
		return Result{}, parseErr
	}
	return res, nil
}

// ParseSolverOutput parses MaxSAT-evaluation-style solver output.
// Exported for tests and for callers that manage the process themselves.
func ParseSolverOutput(f *cnf.Formula, output []byte) (Result, error) {
	sc := bufio.NewScanner(bytes.NewReader(output))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<26)
	var (
		status    string
		lastO     int64 = -1
		modelLits []cnf.Lit
		modelBits string
	)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "s "):
			status = strings.TrimSpace(line[2:])
		case strings.HasPrefix(line, "o "):
			v, err := strconv.ParseInt(strings.TrimSpace(line[2:]), 10, 64)
			if err == nil {
				lastO = v
			}
		case strings.HasPrefix(line, "v "):
			body := strings.TrimSpace(line[2:])
			if isBitString(body) {
				modelBits += body
				continue
			}
			for _, tok := range strings.Fields(body) {
				n, err := strconv.Atoi(tok)
				if err != nil {
					return Result{}, fmt.Errorf("maxsat: bad literal %q in v-line", tok)
				}
				if n != 0 {
					modelLits = append(modelLits, cnf.Lit(n))
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Result{}, err
	}
	switch status {
	case "UNSATISFIABLE":
		return Result{Satisfiable: false, SATCalls: 1}, nil
	case "OPTIMUM FOUND":
	default:
		return Result{}, fmt.Errorf("maxsat: external solver reported %q", status)
	}
	model := make([]bool, f.NumVars()+1)
	switch {
	case modelBits != "":
		for i := 0; i < len(modelBits) && i < f.NumVars(); i++ {
			model[i+1] = modelBits[i] == '1'
		}
	case len(modelLits) > 0:
		for _, l := range modelLits {
			if l.Var() <= f.NumVars() {
				model[l.Var()] = l.Positive()
			}
		}
	default:
		return Result{}, fmt.Errorf("maxsat: external solver produced no model")
	}
	// The model comes from an untrusted subprocess: validate it instead
	// of trusting the invariant the built-in algorithms maintain.
	opt, err := evalModel(f, model)
	if err != nil {
		return Result{}, fmt.Errorf("maxsat: external solver returned an invalid model: %w", err)
	}
	res := Result{
		Satisfiable:     true,
		Optimum:         opt,
		FalsifiedWeight: f.TotalSoftWeight() - opt,
		Model:           model,
		SATCalls:        1,
	}
	if lastO >= 0 && lastO != res.FalsifiedWeight {
		return Result{}, fmt.Errorf("maxsat: solver reported cost %d but model falsifies %d", lastO, res.FalsifiedWeight)
	}
	return res, nil
}

func isBitString(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r != '0' && r != '1' {
			return false
		}
	}
	return true
}
