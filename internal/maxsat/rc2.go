package maxsat

import (
	"context"
	"fmt"
	"os"
	"sort"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/sat"
)

// solveRC2 implements core-guided Weighted Partial MaxSAT in the OLL/RC2
// style, with the three standard engineering refinements of the RC2
// solver:
//
//   - boolean lexicographic *stratification*: selectors are activated in
//     strata of descending weight, so cores never mix weights below the
//     current threshold (avoiding the weight-splitting blowup);
//   - *core trimming*: each extracted core is re-solved against itself a
//     few times, typically shrinking it by orders of magnitude before a
//     totalizer is built over it (totalizer size is quadratic in core
//     size);
//   - *lazy totalizer bounds*: a new totalizer contributes a single soft
//     selector "¬(≥2 violated)"; the next bound's selector is added only
//     when the current one exhausts its weight.
// The solver comes from p.fork(); RC2 consumes the selector weights
// destructively, so it works on a private copy. It normally extends the
// clause set (totalizers, hardening), in which case p.adopt rejects the
// solver at exit; a run that happened to add nothing is adopted.
func solveRC2(ctx context.Context, p *problem, opts Options) (Result, error) {
	s := p.fork()
	if !s.Okay() {
		return Result{Satisfiable: false}, nil
	}
	defer p.adoptSolver(s) // registered first: runs after release()
	if opts.ConflictBudget > 0 {
		s.SetConflictBudget(opts.ConflictBudget)
	}
	release := sat.StopOnDone(ctx, s)
	defer release()
	weights := p.weightsCopy()
	tr := newTracker(ctx, opts, AlgRC2, s)

	// totInfo tracks a lazily-bounded totalizer: outputs[bound] is the
	// output literal whose negation is the currently active selector.
	type totInfo struct {
		outputs []cnf.Lit
		bound   int
		weight  int64
	}
	tots := map[cnf.Lit]*totInfo{}

	// threshold is the current stratification level; only selectors
	// with weight >= threshold are assumed.
	threshold := maxWeight(weights)

	debug := os.Getenv("RC2_DEBUG") != ""
	var iter int
	var cost int64
	bestUB := int64(-1) // falsified weight of the best model seen
	var bestModel []bool

	// harden makes selectors hard once falsifying them would exceed the
	// best known upper bound: if weight > bestUB − cost, any solution
	// falsifying the selector is strictly worse than the incumbent
	// model, so the selector holds in every optimal solution (the RC2
	// hardening rule; it is what stops weight splitting from
	// degenerating on wide weight ranges).
	harden := func() {
		if bestUB < 0 || os.Getenv("RC2_NOHARDEN") != "" {
			return
		}
		gap := bestUB - cost
		var toHarden []cnf.Lit
		for l, w := range weights {
			if w > gap {
				toHarden = append(toHarden, l)
			}
		}
		for _, l := range toHarden {
			delete(weights, l)
			delete(tots, l) // a hardened totalizer bound never advances
			s.AddClause(l)
		}
	}

	for {
		if err := interrupted(ctx); err != nil {
			return statsOf(s), err
		}
		assumptions := activeSelectors(weights, threshold)
		iter++
		tr.step()
		if debug && iter%200 == 0 {
			fmt.Fprintf(os.Stderr, "rc2 iter=%d cost=%d thr=%d assumptions=%d conflicts=%d learnt=%d clauses=%d\n",
				iter, cost, threshold, len(assumptions), s.Stats.Conflicts, s.Stats.Learnt, s.NumClauses())
		}
		st := satSolve(ctx, s, AlgRC2, assumptions...)
		switch st {
		case sat.Unknown:
			if err := interrupted(ctx); err != nil {
				return statsOf(s), err
			}
			return statsOf(s), fmt.Errorf("%w: conflicts (rc2)", ErrBudget)
		case sat.Sat:
			// Every stratum model is an upper bound; keep the incumbent
			// best and harden against it. The incumbent, not the current
			// model, is returned at termination: hardening can retire
			// below-threshold selectors that the current model violates.
			model := s.Model()
			opt := p.score(model)
			if fals := p.total - opt; bestUB < 0 || fals < bestUB {
				bestUB = fals
				bestModel = p.trim(model)
			}
			tr.bounds(cost, bestUB)
			tr.event("model")
			harden()
			// Optimal for this stratum; descend to the next one, or
			// finish when every selector was active. At that point the
			// incumbent is optimal: either the final model satisfied
			// every live selector (falsified == cost == lower bound) or
			// hardening at gap 0 retired the rest (bestUB == cost).
			next := nextThreshold(weights, threshold)
			if next == 0 {
				return Result{
					Satisfiable:     true,
					Optimum:         p.total - bestUB,
					FalsifiedWeight: bestUB,
					Model:           bestModel,
					SATCalls:        s.Stats.Solves,
					Conflicts:       s.Stats.Conflicts,
				}, nil
			}
			threshold = next
			tr.event("stratum")
			continue
		case sat.Unsat:
			core := s.Core()
			if len(core) == 0 {
				return Result{Satisfiable: false, SATCalls: s.Stats.Solves, Conflicts: s.Stats.Conflicts}, nil
			}
			// Trim: re-solving against the core alone usually shrinks it.
			for rounds := 0; rounds < 5 && len(core) > 1; rounds++ {
				st := satSolve(ctx, s, AlgRC2, core...)
				if st != sat.Unsat {
					if err := interrupted(ctx); err != nil {
						return statsOf(s), err
					}
					return statsOf(s), fmt.Errorf("maxsat: core no longer unsat during trimming (%v)", st)
				}
				trimmed := s.Core()
				if len(trimmed) >= len(core) {
					break
				}
				core = trimmed
			}
			minW := weights[core[0]]
			for _, l := range core[1:] {
				if w := weights[l]; w < minW {
					minW = w
				}
			}
			cost += minW
			tr.bounds(cost, -1)
			tr.event("core")
			for _, l := range core {
				weights[l] -= minW
				if weights[l] != 0 {
					continue
				}
				delete(weights, l)
				// Exhausted totalizer selector: activate the next bound.
				if ti := tots[l]; ti != nil {
					delete(tots, l)
					if ti.bound+1 < len(ti.outputs) {
						ti.bound++
						sel := ti.outputs[ti.bound].Neg()
						weights[sel] += ti.weight
						tots[sel] = ti
					}
				}
			}
			if len(core) == 1 {
				// The selector is unconditionally false: make it hard.
				s.AddClause(core[0].Neg())
				continue
			}
			// Count the core's violations with a totalizer; at least
			// one is inevitable (that is what the core says), each
			// further violation costs minW.
			violated := make([]cnf.Lit, len(core))
			for i, l := range core {
				violated[i] = l.Neg()
			}
			outs := buildTotalizer(s, violated)
			ti := &totInfo{outputs: outs, bound: 1, weight: minW}
			if ti.bound < len(outs) {
				sel := outs[ti.bound].Neg()
				weights[sel] += ti.weight
				tots[sel] = ti
			}
		}
	}
}

func maxWeight(weights map[cnf.Lit]int64) int64 {
	var m int64
	for _, w := range weights {
		if w > m {
			m = w
		}
	}
	return m
}

// nextThreshold returns the next stratification level below the current
// threshold, or 0 when none remains. On weight sets with many distinct
// values (SUM instances) a per-weight descent would cost one SAT call
// per value, so the descent is geometric: each step activates roughly
// half of the remaining distinct weights (RC2's diversity heuristic,
// simplified); small tails are activated in one final stratum.
func nextThreshold(weights map[cnf.Lit]int64, threshold int64) int64 {
	distinct := map[int64]struct{}{}
	for _, w := range weights {
		if w < threshold {
			distinct[w] = struct{}{}
		}
	}
	if len(distinct) == 0 {
		return 0
	}
	below := make([]int64, 0, len(distinct))
	for w := range distinct {
		below = append(below, w)
	}
	sort.Slice(below, func(i, j int) bool { return below[i] > below[j] })
	if len(below) <= 8 {
		return below[len(below)-1] // activate the entire tail
	}
	return below[len(below)/2]
}

func activeSelectors(weights map[cnf.Lit]int64, threshold int64) []cnf.Lit {
	out := make([]cnf.Lit, 0, len(weights))
	for l, w := range weights {
		if w >= threshold {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := out[i].Var(), out[j].Var()
		if vi != vj {
			return vi < vj
		}
		return out[i] < out[j]
	})
	return out
}

// sortedSelectors returns all selectors in deterministic order.
func sortedSelectors(weights map[cnf.Lit]int64) []cnf.Lit {
	return activeSelectors(weights, 0)
}
