package maxsat

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"testing/quick"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/sat"
)

// bruteForceOptimum exhaustively computes the WPMaxSAT optimum of f:
// the maximum satisfied soft weight over assignments meeting all hard
// clauses, or ok=false if the hard clauses are unsatisfiable.
func bruteForceOptimum(f *cnf.Formula) (opt int64, ok bool) {
	n := f.NumVars()
	opt = -1
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n+1)
		for v := 1; v <= n; v++ {
			assign[v] = m&(1<<(v-1)) != 0
		}
		hardOK, satW, _ := f.Eval(assign)
		if hardOK && satW > opt {
			opt = satW
		}
	}
	if opt < 0 {
		return 0, false
	}
	return opt, true
}

func algorithms() []Algorithm { return []Algorithm{AlgMaxHS, AlgRC2, AlgLSU} }

func TestSimpleWeighted(t *testing.T) {
	// (x1, 3) and (¬x1, 5) conflict: optimum keeps the heavier one.
	f := cnf.New(1)
	f.AddSoft(3, 1)
	f.AddSoft(5, -1)
	for _, alg := range algorithms() {
		res, err := Solve(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.Satisfiable || res.Optimum != 5 || res.FalsifiedWeight != 3 {
			t.Errorf("%v: %+v", alg, res)
		}
		if res.Model[1] {
			t.Errorf("%v: model should set x1 false", alg)
		}
	}
}

func TestAllSoftSatisfiable(t *testing.T) {
	f := cnf.New(3)
	f.AddHard(1, 2)
	f.AddSoft(2, 1)
	f.AddSoft(2, 3)
	for _, alg := range algorithms() {
		res, err := Solve(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if res.Optimum != 4 || res.FalsifiedWeight != 0 {
			t.Errorf("%v: %+v", alg, res)
		}
	}
}

func TestHardUnsat(t *testing.T) {
	f := cnf.New(1)
	f.AddHard(1)
	f.AddHard(-1)
	f.AddSoft(9, 1)
	for _, alg := range algorithms() {
		res, err := Solve(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if res.Satisfiable {
			t.Errorf("%v: unsat hard clauses not detected", alg)
		}
	}
}

func TestNoSoftClauses(t *testing.T) {
	f := cnf.New(2)
	f.AddHard(1, 2)
	for _, alg := range algorithms() {
		res, err := Solve(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfiable || res.Optimum != 0 {
			t.Errorf("%v: %+v", alg, res)
		}
	}
}

func TestNonUnitSoftClauses(t *testing.T) {
	// Hard: exactly-one of x1,x2,x3. Softs reference pairs.
	f := cnf.New(3)
	f.AddHard(1, 2, 3)
	f.AddHard(-1, -2)
	f.AddHard(-1, -3)
	f.AddHard(-2, -3)
	f.AddSoft(4, 1, 2) // satisfied unless x3 chosen
	f.AddSoft(3, 2, 3) // satisfied unless x1 chosen
	f.AddSoft(2, -2)   // falsified iff x2 chosen
	want, _ := bruteForceOptimum(f)
	for _, alg := range algorithms() {
		res, err := Solve(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if res.Optimum != want {
			t.Errorf("%v: optimum = %d, want %d", alg, res.Optimum, want)
		}
	}
}

func TestDuplicateSoftMerge(t *testing.T) {
	// Two identical soft units must behave like one of double weight.
	f := cnf.New(1)
	f.AddSoft(2, 1)
	f.AddSoft(2, 1)
	f.AddSoft(3, -1)
	for _, alg := range algorithms() {
		res, err := Solve(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if res.Optimum != 4 {
			t.Errorf("%v: optimum = %d, want 4", alg, res.Optimum)
		}
	}
}

func TestCardinalityChain(t *testing.T) {
	// At most 2 of 5 variables may be true (pairwise hard constraints
	// replaced by a budget expressed in softs): maximize unit softs.
	f := cnf.New(5)
	// Hard: x_i -> x_{i+1} false for a chain that allows at most
	// alternating trues; simpler: pairwise exclusion for first three.
	f.AddHard(-1, -2)
	f.AddHard(-2, -3)
	f.AddHard(-1, -3)
	for v := 1; v <= 5; v++ {
		f.AddSoft(1, cnf.Lit(v))
	}
	want, _ := bruteForceOptimum(f)
	for _, alg := range algorithms() {
		res, err := Solve(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if res.Optimum != want {
			t.Errorf("%v: optimum = %d, want %d", alg, res.Optimum, want)
		}
	}
}

func TestModelAchievesOptimum(t *testing.T) {
	f := cnf.New(4)
	f.AddHard(1, 2)
	f.AddHard(-3, 4)
	f.AddSoft(5, -1)
	f.AddSoft(4, -2)
	f.AddSoft(3, 3)
	f.AddSoft(2, -4)
	for _, alg := range algorithms() {
		res, err := Solve(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		hardOK, satW, _ := f.Eval(res.Model)
		if !hardOK {
			t.Fatalf("%v: model violates hard clauses", alg)
		}
		if satW != res.Optimum {
			t.Errorf("%v: model achieves %d, reported %d", alg, satW, res.Optimum)
		}
	}
}

// TestRandomAgainstBruteForce cross-checks both algorithms on random
// weighted partial formulas.
func TestRandomAgainstBruteForce(t *testing.T) {
	fn := func(seed uint64) bool {
		rng := seed | 1
		next := func(n int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(n))
		}
		nVars := 3 + next(5) // 3..7
		f := cnf.New(nVars)
		nHard := next(6)
		for i := 0; i < nHard; i++ {
			k := 1 + next(3)
			lits := make([]cnf.Lit, k)
			for j := range lits {
				v := 1 + next(nVars)
				if next(2) == 0 {
					lits[j] = cnf.Lit(v)
				} else {
					lits[j] = cnf.Lit(-v)
				}
			}
			f.AddHard(lits...)
		}
		nSoft := 1 + next(8)
		for i := 0; i < nSoft; i++ {
			k := 1 + next(3)
			lits := make([]cnf.Lit, k)
			for j := range lits {
				v := 1 + next(nVars)
				if next(2) == 0 {
					lits[j] = cnf.Lit(v)
				} else {
					lits[j] = cnf.Lit(-v)
				}
			}
			f.AddSoft(int64(1+next(7)), lits...)
		}
		want, wantOK := bruteForceOptimum(f)
		for _, alg := range algorithms() {
			res, err := Solve(f, Options{Algorithm: alg})
			if err != nil {
				return false
			}
			if res.Satisfiable != wantOK {
				return false
			}
			if wantOK && res.Optimum != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestKuegelNegationMinSAT checks the paper's lub pipeline end to end at
// the MaxSAT level: minimizing satisfied soft weight via NegateSoft.
func TestKuegelNegationMinSAT(t *testing.T) {
	f := cnf.New(3)
	f.AddHard(1, 2, 3)
	f.AddSoft(2, 1, 2)
	f.AddSoft(3, 2, 3)
	f.AddSoft(1, -1)

	// Brute-force minimum satisfied soft weight subject to hard clauses.
	minSat := int64(1 << 62)
	for m := 0; m < 8; m++ {
		assign := []bool{false, m&1 != 0, m&2 != 0, m&4 != 0}
		hardOK, satW, _ := f.Eval(assign)
		if hardOK && satW < minSat {
			minSat = satW
		}
	}
	neg := f.NegateSoft()
	for _, alg := range algorithms() {
		res, err := Solve(neg, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		got := f.TotalSoftWeight() - res.Optimum
		if got != minSat {
			t.Errorf("%v: min satisfied = %d, want %d", alg, got, minSat)
		}
	}
}

func TestTotalizerSemantics(t *testing.T) {
	// For every input subset, assuming ¬out[j] must cap the count at j.
	s := sat.New()
	n := 5
	inputs := make([]cnf.Lit, n)
	for i := range inputs {
		inputs[i] = cnf.Lit(s.NewVar())
	}
	outs := buildTotalizer(s, inputs)
	if len(outs) != n {
		t.Fatalf("totalizer outputs = %d, want %d", len(outs), n)
	}
	for bound := 0; bound < n; bound++ {
		// Assume ¬out[bound] ("count < bound+1") plus bound+1 inputs true:
		// must be UNSAT.
		assumptions := []cnf.Lit{outs[bound].Neg()}
		for i := 0; i <= bound; i++ {
			assumptions = append(assumptions, inputs[i])
		}
		if st := s.Solve(assumptions...); st != sat.Unsat {
			t.Errorf("bound %d: %d inputs true should violate cap, got %v", bound, bound+1, st)
		}
		// With only `bound` inputs true it must be SAT.
		assumptions = []cnf.Lit{outs[bound].Neg()}
		for i := 0; i < bound; i++ {
			assumptions = append(assumptions, inputs[i])
		}
		for i := bound; i < n; i++ {
			assumptions = append(assumptions, inputs[i].Neg())
		}
		if st := s.Solve(assumptions...); st != sat.Sat {
			t.Errorf("bound %d: %d inputs true should satisfy cap, got %v", bound, bound, st)
		}
	}
}

func TestGTESemantics(t *testing.T) {
	s := sat.New()
	weights := []int64{3, 5, 7}
	inputs := make([]wlit, len(weights))
	for i, w := range weights {
		inputs[i] = wlit{w: w, lit: cnf.Lit(s.NewVar())}
	}
	outs := buildGTE(s, inputs)
	// Attainable sums: 3,5,7,8,10,12,15.
	want := []int64{3, 5, 7, 8, 10, 12, 15}
	if len(outs) != len(want) {
		t.Fatalf("GTE outputs = %d, want %d", len(outs), len(want))
	}
	for i, w := range want {
		if outs[i].w != w {
			t.Fatalf("output %d weight = %d, want %d", i, outs[i].w, w)
		}
	}
	// Setting inputs {3,7} true and banning ≥ 10 must be UNSAT;
	// banning ≥ 12 must be SAT.
	ban := func(minW int64) []cnf.Lit {
		var a []cnf.Lit
		for _, o := range outs {
			if o.w >= minW {
				a = append(a, o.lit.Neg())
			}
		}
		return a
	}
	asm := append([]cnf.Lit{inputs[0].lit, inputs[1].lit.Neg(), inputs[2].lit}, ban(10)...)
	if st := s.Solve(asm...); st != sat.Unsat {
		t.Errorf("sum 10 with ban ≥10: %v, want UNSAT", st)
	}
	asm = append([]cnf.Lit{inputs[0].lit, inputs[1].lit.Neg(), inputs[2].lit}, ban(12)...)
	if st := s.Solve(asm...); st != sat.Sat {
		t.Errorf("sum 10 with ban ≥12: %v, want SAT", st)
	}
}

func TestParseSolverOutputLiteralModel(t *testing.T) {
	f := cnf.New(2)
	f.AddHard(1, 2)
	f.AddSoft(3, -1)
	out := []byte("c comment\no 0\ns OPTIMUM FOUND\nv -1 2 0\n")
	res, err := ParseSolverOutput(f, out)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable || res.Optimum != 3 || res.Model[1] || !res.Model[2] {
		t.Errorf("%+v", res)
	}
}

func TestParseSolverOutputBitModel(t *testing.T) {
	f := cnf.New(2)
	f.AddHard(1, 2)
	f.AddSoft(3, -1)
	out := []byte("s OPTIMUM FOUND\nv 01\n")
	res, err := ParseSolverOutput(f, out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model[1] || !res.Model[2] {
		t.Errorf("bit model parsed wrong: %+v", res.Model)
	}
}

func TestParseSolverOutputUnsat(t *testing.T) {
	f := cnf.New(1)
	res, err := ParseSolverOutput(f, []byte("s UNSATISFIABLE\n"))
	if err != nil || res.Satisfiable {
		t.Errorf("%+v, %v", res, err)
	}
}

func TestParseSolverOutputErrors(t *testing.T) {
	f := cnf.New(1)
	f.AddSoft(1, 1)
	cases := [][]byte{
		[]byte(""),                              // no status
		[]byte("s OPTIMUM FOUND\n"),             // no model
		[]byte("s OPTIMUM FOUND\nv x 0\n"),      // bad literal
		[]byte("o 1\ns OPTIMUM FOUND\nv 1 0\n"), // cost mismatch (model satisfies)
		[]byte("s SATISFIABLE\nv 1 0\n"),        // non-optimal status
	}
	for i, c := range cases {
		if _, err := ParseSolverOutput(f, c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestExternalViaFakeSolver runs the full external pipeline against a
// tiny shell script standing in for MaxHS.
func TestExternalViaFakeSolver(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("shell-script fake solver")
	}
	dir := t.TempDir()
	script := filepath.Join(dir, "fakemaxhs.sh")
	// The fake solver ignores its input and prints a fixed optimum for
	// the specific formula below (x1 false satisfies the weight-5 soft).
	body := "#!/bin/sh\necho 's OPTIMUM FOUND'\necho 'o 3'\necho 'v -1 0'\n"
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	f := cnf.New(1)
	f.AddSoft(3, 1)
	f.AddSoft(5, -1)
	res, err := Solve(f, Options{Algorithm: AlgExternal, SolverPath: script})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimum != 5 || res.FalsifiedWeight != 3 {
		t.Errorf("%+v", res)
	}
}

func TestExternalMissingPath(t *testing.T) {
	f := cnf.New(1)
	if _, err := Solve(f, Options{Algorithm: AlgExternal}); err == nil {
		t.Error("missing SolverPath should error")
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	f := cnf.New(1)
	if _, err := Solve(f, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestConflictBudgetExhaustion(t *testing.T) {
	// A hard pigeonhole-style instance with a tiny budget must error,
	// not loop.
	f := cnf.New(0)
	n := 6
	v := func(p, h int) cnf.Lit { return cnf.Lit(p*n + h + 1) }
	for p := 0; p < n+1; p++ {
		lits := make([]cnf.Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = v(p, h)
		}
		f.AddHard(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n+1; p1++ {
			for p2 := p1 + 1; p2 < n+1; p2++ {
				f.AddHard(-v(p1, h), -v(p2, h))
			}
		}
	}
	f.AddSoft(1, 1)
	if _, err := Solve(f, Options{Algorithm: AlgRC2, ConflictBudget: 3}); err == nil {
		t.Error("budget exhaustion should surface as an error")
	}
}
