package maxsat

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"aggcavsat/internal/cnf"
)

// hardPigeonhole builds PHP(holes+1, holes) as hard clauses plus one
// soft unit, the stock "takes forever to refute" instance for
// cancellation tests.
func hardPigeonhole(holes int) *cnf.Formula {
	f := cnf.New(0)
	v := func(p, h int) cnf.Lit { return cnf.Lit(p*holes + h + 1) }
	for p := 0; p < holes+1; p++ {
		lits := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = v(p, h)
		}
		f.AddHard(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < holes+1; p1++ {
			for p2 := p1 + 1; p2 < holes+1; p2++ {
				f.AddHard(-v(p1, h), -v(p2, h))
			}
		}
	}
	f.AddSoft(1, 1)
	return f
}

func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range algorithms() {
		_, err := SolveContext(ctx, hardPigeonhole(5), Options{Algorithm: alg})
		if err == nil {
			t.Errorf("%v: pre-canceled context should error", alg)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: error %v should wrap context.Canceled", alg, err)
		}
	}
}

func TestCancelMidSolve(t *testing.T) {
	// PHP(11, 10) needs far more conflicts to refute than the interrupt
	// latency allows, so canceling at the first conflict (via the
	// progress callback, which fires synchronously from inside the CDCL
	// loop) stops every algorithm mid-search.
	for _, alg := range algorithms() {
		ctx, cancel := context.WithCancel(context.Background())
		opts := Options{
			Algorithm:     alg,
			ProgressEvery: 1,
			Progress:      func(ProgressInfo) { cancel() },
		}
		start := time.Now()
		_, err := SolveContext(ctx, hardPigeonhole(10), opts)
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			t.Errorf("%v: canceled solve should error", alg)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: error %v should wrap context.Canceled", alg, err)
		}
		if elapsed > 30*time.Second {
			t.Errorf("%v: cancellation took %v to take effect", alg, elapsed)
		}
	}
}

func TestBudgetErrorIsTyped(t *testing.T) {
	// Conflict-budget exhaustion must match ErrBudget — and must not be
	// conflated with a context cancellation.
	_, err := Solve(hardPigeonhole(8), Options{Algorithm: AlgRC2, ConflictBudget: 3})
	if err == nil {
		t.Fatal("budget exhaustion should error")
	}
	if !errors.Is(err, ErrBudget) {
		t.Errorf("error %v should wrap ErrBudget", err)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("budget error %v must not look like a cancellation", err)
	}
}

func TestMaxHSFallbackAccumulatesStats(t *testing.T) {
	// Three pairwise-conflicting softs force at least one core and a
	// hitting-set search; HSNodeBudget=1 aborts that search immediately,
	// so MaxHS degrades to the RC2 fallback. The result must still be
	// the true optimum, and the stats must cover BOTH attempts: strictly
	// more SAT calls than RC2 alone on the same formula.
	f := cnf.New(3)
	f.AddHard(-1, -2)
	f.AddHard(-2, -3)
	f.AddHard(-1, -3)
	f.AddSoft(3, 1)
	f.AddSoft(5, 2)
	f.AddSoft(4, 3)

	rc2, err := Solve(f, Options{Algorithm: AlgRC2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(f, Options{Algorithm: AlgMaxHS, HSNodeBudget: 1})
	if err != nil {
		t.Fatalf("fallback should succeed, got %v", err)
	}
	if !res.Satisfiable || res.Optimum != 5 || res.FalsifiedWeight != 7 {
		t.Errorf("fallback result %+v, want optimum 5 / falsified 7", res)
	}
	if res.SATCalls <= rc2.SATCalls {
		t.Errorf("fallback SATCalls = %d, want > RC2-alone %d (MaxHS attempt must be counted)",
			res.SATCalls, rc2.SATCalls)
	}
}

func TestMaxHSBudgetWithConflictBudgetErrors(t *testing.T) {
	// With an explicit conflict budget the caller asked for bounded
	// work: the hitting-set budget must surface as ErrBudget instead of
	// silently restarting with RC2.
	f := cnf.New(3)
	f.AddHard(-1, -2)
	f.AddHard(-2, -3)
	f.AddHard(-1, -3)
	f.AddSoft(3, 1)
	f.AddSoft(5, 2)
	f.AddSoft(4, 3)
	_, err := Solve(f, Options{Algorithm: AlgMaxHS, HSNodeBudget: 1, ConflictBudget: 1 << 40})
	if err == nil {
		t.Fatal("hitting-set budget with ConflictBudget set should error")
	}
	if !errors.Is(err, ErrBudget) {
		t.Errorf("error %v should wrap ErrBudget", err)
	}
}

func TestExternalHangingSolverKilled(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("shell-script fake solver")
	}
	dir := t.TempDir()
	script := filepath.Join(dir, "hang.sh")
	if err := os.WriteFile(script, []byte("#!/bin/sh\nexec sleep 60\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	f := cnf.New(1)
	f.AddSoft(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := SolveContext(ctx, f, Options{Algorithm: AlgExternal, SolverPath: script})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("hanging external solver should error once the context expires")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v should wrap context.DeadlineExceeded", err)
	}
	if elapsed > 30*time.Second {
		t.Errorf("external solver outlived the deadline by %v", elapsed)
	}
}

func TestExternalInvalidModelError(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("shell-script fake solver")
	}
	dir := t.TempDir()
	script := filepath.Join(dir, "liar.sh")
	// Claims an optimum whose model violates the hard clause ¬x1: this
	// must surface as an error, not a panic.
	body := "#!/bin/sh\necho 's OPTIMUM FOUND'\necho 'o 0'\necho 'v 1 0'\n"
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	f := cnf.New(1)
	f.AddHard(-1)
	f.AddSoft(2, 1)
	_, err := Solve(f, Options{Algorithm: AlgExternal, SolverPath: script})
	if err == nil {
		t.Fatal("invalid external model should error")
	}
}
