// Package maxsat solves Weighted Partial MaxSAT instances (cnf.Formula):
// find an assignment satisfying all hard clauses that maximizes the total
// weight of satisfied soft clauses.
//
// Three complete built-in algorithms are provided, plus an external
// driver:
//
//   - AlgMaxHS (default): implicit-hitting-set search in the style of
//     the MaxHS solver the paper runs — SAT cores accumulate and an
//     exact minimum-weight hitting set of them drives the next SAT
//     call; weights are never split.
//   - AlgRC2: core-guided search (OLL/RC2 family) on top of the
//     assumption interface of internal/sat, with totalizer cardinality
//     encodings of discovered cores, stratification and hardening.
//   - AlgLSU: linear SAT-UNSAT (solution-improving) search using a
//     generalized totalizer over the soft-clause violation indicators.
//   - AlgExternal: writes DIMACS WCNF and runs a MaxSAT solver binary
//     (e.g. MaxHS itself), parsing the standard o/s/v output.
//
// All built-ins return the same optimum; they are cross-checked against
// brute force and each other in tests.
package maxsat

import (
	"context"
	"errors"
	"fmt"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/sat"
)

// ErrBudget is the sentinel wrapped by every budget-exhaustion error the
// built-in algorithms return (SAT conflict budgets and the MaxHS exact
// hitting-set node budget alike). Callers distinguish it from a
// cancellation with errors.Is: a cancelled or expired context surfaces
// as an error wrapping context.Canceled / context.DeadlineExceeded
// instead, never as ErrBudget.
var ErrBudget = errors.New("maxsat: solver budget exhausted")

// interrupted returns the context's error wrapped for maxsat callers, or
// nil if ctx is still live. The algorithms consult it between SAT calls
// and whenever a SAT call returns Unknown, so a cancellation is
// classified as such even though the underlying solver reports the same
// Unknown status for budget exhaustion and cooperative interruption.
func interrupted(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("maxsat: solve interrupted: %w", err)
	}
	return nil
}

// statsOf packages the solver's call/conflict counters into a Result so
// error paths still report the work performed (the bench harness records
// these even for timed-out runs).
func statsOf(s *sat.Solver) Result {
	return Result{SATCalls: s.Stats.Solves, Conflicts: s.Stats.Conflicts}
}

// Algorithm selects the solving strategy.
type Algorithm int

const (
	// AlgMaxHS is implicit-hitting-set MaxSAT in the style of the MaxHS
	// solver the paper deploys (default). Its weights are never split,
	// which makes it robust on SUM instances with price-like weights.
	AlgMaxHS Algorithm = iota
	// AlgRC2 is core-guided MaxSAT (OLL/RC2 family).
	AlgRC2
	// AlgLSU is linear solution-improving search.
	AlgLSU
	// AlgExternal shells out to Options.SolverPath.
	AlgExternal
)

func (a Algorithm) String() string {
	switch a {
	case AlgMaxHS:
		return "maxhs"
	case AlgRC2:
		return "rc2"
	case AlgLSU:
		return "lsu"
	case AlgExternal:
		return "external"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures Solve.
type Options struct {
	Algorithm Algorithm
	// SolverPath is the external MaxSAT solver binary (AlgExternal).
	SolverPath string
	// SolverArgs are extra arguments placed before the WCNF path.
	SolverArgs []string
	// ConflictBudget bounds total SAT conflicts (built-in algorithms);
	// 0 means unlimited.
	ConflictBudget int64
	// HSNodeBudget bounds one exact hitting-set search in AlgMaxHS
	// before it degrades to the RC2 fallback; 0 means the built-in
	// default (hsNodeBudget).
	HSNodeBudget int64
	// Progress, when non-nil, receives periodic and milestone progress
	// reports during the solve (see ProgressInfo).
	Progress ProgressFunc
	// ProgressEvery is the conflict interval between periodic "search"
	// reports; 0 means DefaultProgressEvery.
	ProgressEvery int64
}

// Result reports the outcome of a MaxSAT solve.
type Result struct {
	// Satisfiable is false when the hard clauses alone are inconsistent.
	Satisfiable bool
	// Optimum is the maximum achievable total weight of satisfied soft
	// clauses (0 if Satisfiable is false).
	Optimum int64
	// FalsifiedWeight = total soft weight − Optimum.
	FalsifiedWeight int64
	// Model is an optimal assignment indexed by 1-based variable of the
	// input formula (index 0 unused); nil if Satisfiable is false.
	Model []bool
	// SATCalls is the number of SAT-solver invocations used.
	SATCalls int64
	// Conflicts is the total number of CDCL conflicts.
	Conflicts int64
}

// Solve computes the WPMaxSAT optimum of f.
func Solve(f *cnf.Formula, opts Options) (Result, error) {
	return SolveContext(context.Background(), f, opts)
}

// SolveContext is Solve with a context carrying an optional obsv.Tracer:
// each SAT call becomes a "sat.solve" span under the caller's current
// span, and the whole solve is wrapped in a "maxsat.solve" span.
func SolveContext(ctx context.Context, f *cnf.Formula, opts Options) (Result, error) {
	ctx, sp := obsv.StartSpan(ctx, "maxsat.solve", obsv.String("alg", opts.Algorithm.String()))
	res, err := solveDispatch(ctx, f, opts)
	if sp != nil {
		sp.SetInt("sat_calls", res.SATCalls)
		sp.SetInt("conflicts", res.Conflicts)
		if err == nil && res.Satisfiable {
			sp.SetInt("optimum", res.Optimum)
		}
		sp.End()
	}
	return res, err
}

func solveDispatch(ctx context.Context, f *cnf.Formula, opts Options) (Result, error) {
	switch opts.Algorithm {
	case AlgMaxHS, AlgRC2, AlgLSU:
		// The built-ins run through the problem abstraction; on this
		// one-shot path each fork rebuilds from the formula (the MaxHS→
		// RC2 fallback lives inside solveProblem). Incremental callers
		// use NewInstance instead and share one hard-clause base.
		return solveProblem(ctx, formulaProblem(f), opts)
	case AlgExternal:
		return solveExternal(ctx, f, opts)
	default:
		return Result{}, fmt.Errorf("maxsat: unknown algorithm %v", opts.Algorithm)
	}
}

// selectors sets up the standard soft-clause relaxation on a solver:
// every soft clause gets a selector literal that is true iff the solver
// "commits" to satisfying the clause. Unit soft clauses use their own
// literal; larger clauses get a fresh relaxation variable r and the hard
// clause (C ∨ r), with selector ¬r. Weights of identical selectors merge.
//
// The returned map is selector → accumulated weight.
func selectors(s *sat.Solver, f *cnf.Formula) map[cnf.Lit]int64 {
	weights := make(map[cnf.Lit]int64)
	for _, c := range f.Clauses() {
		if c.Hard() {
			continue
		}
		var sel cnf.Lit
		if len(c.Lits) == 1 {
			sel = c.Lits[0]
		} else {
			r := cnf.Lit(s.NewVar())
			lits := make([]cnf.Lit, 0, len(c.Lits)+1)
			lits = append(lits, c.Lits...)
			lits = append(lits, r)
			s.AddClause(lits...)
			sel = r.Neg()
		}
		weights[sel] += c.Weight
	}
	return weights
}

// evalModel evaluates the original formula under a (possibly larger)
// model and returns the satisfied soft weight, or an error if the model
// falsifies a hard clause of the original formula.
func evalModel(f *cnf.Formula, model []bool) (int64, error) {
	trimmed := model
	if len(trimmed) > f.NumVars()+1 {
		trimmed = trimmed[:f.NumVars()+1]
	}
	hardOK, satW, _ := f.Eval(trimmed)
	if !hardOK {
		return 0, errors.New("maxsat: model violates a hard clause")
	}
	return satW, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
