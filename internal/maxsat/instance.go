package maxsat

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/sat"
)

// problem is one optimization direction of a WPMaxSAT instance prepared
// for the built-in algorithms. It decouples the algorithms from how the
// underlying solver is produced: the legacy path rebuilds a solver from
// the formula per run (formulaProblem), while the incremental path
// clones a shared hard-clause base (Instance). Either way the algorithm
// sees selector weights and a scoring function and never touches the
// formula itself.
type problem struct {
	// fork returns a solver loaded with the hard clauses and the
	// direction's selector plumbing. Every call yields an independent
	// solver the algorithm may mutate freely.
	fork func() *sat.Solver
	// adopt offers a solver back after a run, so a shared base can
	// collect its learnt clauses; nil when there is no base to maintain.
	adopt func(*sat.Solver)
	// weights maps each selector literal to its accumulated weight.
	// Shared across runs — treat as immutable. Algorithms that consume
	// weights destructively (RC2) must work on weightsCopy().
	weights map[cnf.Lit]int64
	// total is the direction's total soft weight.
	total int64
	// nVars is the original formula's variable count (model trim width).
	nVars int
	// score maps a model of the hard clauses to the direction's
	// objective (the weight reported as Result.Optimum); it panics when
	// the model violates a hard clause of the original formula.
	score func(model []bool) int64
}

// adoptSolver is the nil-safe adopt call sites use.
func (p *problem) adoptSolver(s *sat.Solver) {
	if p.adopt != nil {
		p.adopt(s)
	}
}

// weightsCopy returns a private copy of the selector weights for
// algorithms that mutate them.
func (p *problem) weightsCopy() map[cnf.Lit]int64 {
	out := make(map[cnf.Lit]int64, len(p.weights))
	for l, w := range p.weights {
		out[l] = w
	}
	return out
}

// trim copies a model down to the original formula's variables.
func (p *problem) trim(model []bool) []bool {
	n := p.nVars + 1
	out := make([]bool, n)
	copy(out, model[:min(len(model), n)])
	return out
}

// scoreFormula evaluates f under a (possibly wider) model and returns
// the satisfied soft weight, or the falsified soft weight when
// falsified is set — the scoring primitive for the two directions.
func scoreFormula(f *cnf.Formula, model []bool, falsified bool) int64 {
	trimmed := model
	if len(trimmed) > f.NumVars()+1 {
		trimmed = trimmed[:f.NumVars()+1]
	}
	hardOK, satW, falsW := f.Eval(trimmed)
	if !hardOK {
		panic("maxsat: optimal model violates a hard clause")
	}
	if falsified {
		return falsW
	}
	return satW
}

// formulaProblem prepares the legacy one-solver-per-run path: each fork
// rebuilds the solver from the formula. The first build runs eagerly so
// the selector weights are known up front and is then served to the
// first fork; selector variables are allocated deterministically (in
// clause order, from f.NumVars()+1), so later rebuilds reproduce the
// identical weights map.
func formulaProblem(f *cnf.Formula) *problem {
	build := func() *sat.Solver {
		s := sat.New()
		s.AddFormulaHard(f)
		s.EnsureVars(f.NumVars())
		return s
	}
	first := build()
	p := &problem{
		weights: selectors(first, f),
		total:   f.TotalSoftWeight(),
		nVars:   f.NumVars(),
		score:   func(model []bool) int64 { return scoreFormula(f, model, false) },
	}
	p.fork = func() *sat.Solver {
		if first != nil {
			s := first
			first = nil
			return s
		}
		s := build()
		selectors(s, f)
		return s
	}
	return p
}

// solveProblem runs the selected built-in algorithm on a prepared
// problem, including the MaxHS→RC2 degradation when an exact
// hitting-set search blows its node budget. It is the common back end
// of SolveContext (via formulaProblem) and Instance.SolveMin/SolveMax.
func solveProblem(ctx context.Context, p *problem, opts Options) (Result, error) {
	switch opts.Algorithm {
	case AlgMaxHS:
		res, err := solveMaxHS(ctx, p, opts)
		if errors.Is(err, errHSBudget) {
			if opts.ConflictBudget > 0 {
				// The caller runs with explicit budgets (benchmark
				// timeouts): surface the budget error immediately
				// instead of grinding through the fallback.
				return res, err
			}
			// A pathological hitting-set cluster: degrade gracefully to
			// core-guided search, which has no comparable blow-up mode.
			// The fallback forks from the same problem, so under an
			// Instance it starts from the shared base — including any
			// learnt clauses the failed MaxHS attempt contributed. Its
			// SAT calls and conflicts still happened: fold them into
			// whatever the fallback reports.
			rres, rerr := solveRC2(ctx, p, opts)
			rres.SATCalls += res.SATCalls
			rres.Conflicts += res.Conflicts
			return rres, rerr
		}
		return res, err
	case AlgRC2:
		return solveRC2(ctx, p, opts)
	case AlgLSU:
		return solveLSU(ctx, p, opts)
	default:
		return Result{}, fmt.Errorf("maxsat: algorithm %v has no incremental problem back end", opts.Algorithm)
	}
}

// HardBase is a snapshot of a SAT solver loaded with a formula's
// hard-clause prefix. Building it costs one full clause load; every
// consumer afterwards starts from a cheap Solver.Clone instead of
// re-adding the clauses. A HardBase is safe to share across goroutines:
// the snapshot solver is never solved directly, only cloned (and
// occasionally swapped, under the mutex, for a learnt-enriched
// equivalent an Instance releases back — see Instance.Release).
type HardBase struct {
	mu       sync.Mutex
	solver   *sat.Solver
	nClauses int
	nVars    int
}

// clone takes a private copy of the current snapshot solver.
func (b *HardBase) clone() *sat.Solver {
	b.mu.Lock()
	s := b.solver.Clone()
	b.mu.Unlock()
	return s
}

// adopt swaps the snapshot for a solver that provably holds only
// consequences of the snapshot's own clauses: it was cloned from this
// base, added no clauses of its own, and was never interrupted. Its
// learnt clauses then benefit every later fork (the cross-query half of
// the incremental story). No-op otherwise.
func (b *HardBase) adopt(s *sat.Solver) {
	if s.AddedSinceClone() != 0 || s.Interrupted() {
		return
	}
	b.mu.Lock()
	b.solver = s
	b.mu.Unlock()
}

// NewHardBase loads every clause of f — which must all be hard — into a
// fresh solver and snapshots it together with f's current size, so
// forks know which clause suffix to replay.
func NewHardBase(f *cnf.Formula) *HardBase {
	s := sat.New()
	for _, c := range f.Clauses() {
		if !c.Hard() {
			panic("maxsat: NewHardBase on a formula with soft clauses")
		}
		if !s.AddClause(c.Lits...) {
			break // top-level conflict: clones will report it
		}
	}
	s.EnsureVars(f.NumVars())
	return &HardBase{solver: s, nClauses: f.NumClauses(), nVars: f.NumVars()}
}

// NumClauses returns the number of formula clauses the snapshot covers.
func (b *HardBase) NumClauses() int { return b.nClauses }

// Fork clones the snapshot solver and replays every clause f gained
// after the snapshot was taken; the extension clauses must be hard. f
// must extend the formula the base was built from.
func (b *HardBase) Fork(f *cnf.Formula) *sat.Solver {
	s := b.clone()
	for _, c := range f.Clauses()[b.nClauses:] {
		if !c.Hard() {
			panic("maxsat: HardBase.Fork across a soft clause; use NewInstance")
		}
		if !s.AddClause(c.Lits...) {
			break
		}
	}
	s.EnsureVars(f.NumVars())
	return s
}

// Instance prepares a WPMaxSAT formula for solving both optimization
// directions over ONE shared solver base:
//
//   - the hard clauses are loaded once (or inherited from a HardBase
//     built earlier), not once per direction and algorithm run;
//   - the minimize direction relaxes each soft clause C into the hard
//     clause (C ∨ r) with selector ¬r, as the one-shot path does;
//   - the maximize direction is the Kügel CNF negation expressed as a
//     weight view over the same base: each non-unit soft clause C gets
//     a fresh y with hard clauses (¬y ∨ ¬l) for every l ∈ C and
//     selector y, a unit soft (l, w) becomes selector ¬l — no negated
//     formula is ever materialized (this kills the Formula.NegateSoft
//     deep copy);
//   - every algorithm run — min, max, and any MaxHS→RC2 fallback —
//     forks a clone of the base, and runs that add no clauses of their
//     own are adopted back, so learnt clauses implied by the shared
//     clause set accumulate across directions and algorithms.
//
// Both directions' auxiliary clauses coexist soundly in the base: a
// relaxation clause (C ∨ r) is satisfiable by r alone and a negation
// clause (¬y ∨ ¬l) by ¬y alone, so neither constrains the original
// variables; each direction simply prices its own selectors.
//
// An Instance is not safe for concurrent use; build one per goroutine
// (they can share one HardBase).
type Instance struct {
	opts   Options
	f      *cnf.Formula
	base   *sat.Solver
	origin *HardBase // the shared base this instance was cloned from, if any
	// clean records that NewInstance added no clauses beyond the origin
	// snapshot. It must be captured at construction: every later fork
	// resets the solver's AddedSinceClone counter, so a run solver
	// adopted back into base reports 0 even when the instance's own
	// suffix or selector clauses are baked into it.
	clean  bool
	total  int64
	nVars  int
	minW   map[cnf.Lit]int64 // minimize direction: selector → weight
	maxW   map[cnf.Lit]int64 // maximize direction (negation view)
}

// NewInstance builds the shared base for f. base may be nil (the hard
// clauses are loaded from scratch) or a HardBase built from an earlier
// all-hard prefix of f, in which case only the clause suffix is
// replayed onto a clone.
func NewInstance(f *cnf.Formula, base *HardBase, opts Options) *Instance {
	var s *sat.Solver
	start := 0
	if base != nil {
		s = base.clone()
		start = base.nClauses
	} else {
		s = sat.New()
	}
	inst := &Instance{
		opts:   opts,
		f:      f,
		origin: base,
		total:  f.TotalSoftWeight(),
		nVars:  f.NumVars(),
		minW:   make(map[cnf.Lit]int64),
		maxW:   make(map[cnf.Lit]int64),
	}
	// Hard clauses added to f after the snapshot.
	for _, c := range f.Clauses()[start:] {
		if c.Hard() {
			s.AddClause(c.Lits...)
		}
	}
	s.EnsureVars(f.NumVars())
	// Selector plumbing for both directions over ALL soft clauses (a
	// HardBase prefix contains none by contract).
	for _, c := range f.Clauses() {
		if c.Hard() {
			continue
		}
		if len(c.Lits) == 1 {
			inst.minW[c.Lits[0]] += c.Weight
			inst.maxW[c.Lits[0].Neg()] += c.Weight
			continue
		}
		r := cnf.Lit(s.NewVar())
		lits := make([]cnf.Lit, 0, len(c.Lits)+1)
		lits = append(lits, c.Lits...)
		lits = append(lits, r)
		s.AddClause(lits...)
		inst.minW[r.Neg()] += c.Weight
		y := cnf.Lit(s.NewVar())
		for _, l := range c.Lits {
			s.AddClause(y.Neg(), l.Neg())
		}
		inst.maxW[y] += c.Weight
	}
	inst.clean = base != nil && s.AddedSinceClone() == 0
	inst.base = s
	return inst
}

// fork hands an algorithm run its private clone of the base.
func (inst *Instance) fork() *sat.Solver { return inst.base.Clone() }

// Release offers the instance's accumulated base back to the HardBase
// it was cloned from, so learnt clauses gathered across this instance's
// runs carry over to every later instance of the same component (other
// groups of a grouped query, later queries). The hand-back only happens
// when the instance added no clauses beyond the shared snapshot —
// components whose soft clauses are all units and that needed no hard
// suffix — which the AddedSinceClone counter certifies; otherwise this
// is a no-op. Safe to call multiple times; the instance remains usable.
func (inst *Instance) Release() {
	if inst.origin != nil && inst.clean {
		inst.origin.adopt(inst.base)
	}
}

// adopt replaces the base with a solver coming back from a run that
// added no clauses of its own and was never interrupted: everything
// such a solver holds beyond the base — learnt clauses and their
// level-0 consequences — is implied by the shared clause set alone, so
// it is sound for every later direction, algorithm, and fallback.
// Runs that extended the clause set (RC2 hardening and totalizers, LSU
// counters and bans) are rejected by the AddedSinceClone counter, since
// those additions are only valid relative to one direction's objective.
func (inst *Instance) adopt(s *sat.Solver) {
	if s.AddedSinceClone() == 0 && !s.Interrupted() {
		inst.base = s
	}
}

func (inst *Instance) problem(maximize bool) *problem {
	w := inst.minW
	if maximize {
		w = inst.maxW
	}
	return &problem{
		fork:    inst.fork,
		adopt:   inst.adopt,
		weights: w,
		total:   inst.total,
		nVars:   inst.nVars,
		// The max direction scores a model by the falsified soft weight
		// of the ORIGINAL formula. For any model, falsified weight ≥
		// satisfied negation-selector weight (y forces C falsified;
		// units coincide), and every model can flip its y's to make the
		// two equal, so the two objectives have the same optimum and
		// the same optimal models — the score is exact at termination
		// and a sound bound wherever the algorithms use intermediate
		// models (RC2 hardening, LSU banning).
		score: func(model []bool) int64 { return scoreFormula(inst.f, model, maximize) },
	}
}

// SolveMin computes the standard WPMaxSAT optimum of the instance: the
// maximum satisfiable soft weight (glb direction of Proposition IV.1).
func (inst *Instance) SolveMin(ctx context.Context) (Result, error) {
	return inst.solve(ctx, inst.problem(false), "min")
}

// SolveMax computes the optimum of the Kügel negation: the maximum
// achievable FALSIFIED soft weight of the instance (lub direction).
// Result.Optimum carries that falsified weight, exactly as solving
// f.NegateSoft() would report.
func (inst *Instance) SolveMax(ctx context.Context) (Result, error) {
	return inst.solve(ctx, inst.problem(true), "max")
}

func (inst *Instance) solve(ctx context.Context, p *problem, dir string) (Result, error) {
	ctx, sp := obsv.StartSpan(ctx, "maxsat.solve",
		obsv.String("alg", inst.opts.Algorithm.String()), obsv.String("dir", dir))
	res, err := solveProblem(ctx, p, inst.opts)
	if sp != nil {
		sp.SetInt("sat_calls", res.SATCalls)
		sp.SetInt("conflicts", res.Conflicts)
		if err == nil && res.Satisfiable {
			sp.SetInt("optimum", res.Optimum)
		}
		sp.End()
	}
	return res, err
}
