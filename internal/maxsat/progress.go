package maxsat

import (
	"context"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/sat"
)

// DefaultProgressEvery is the conflict interval between periodic
// "search" progress reports when Options.ProgressEvery is zero.
const DefaultProgressEvery = 10_000

// ProgressInfo is one progress report from a running MaxSAT solve.
// Reports of phase "search" fire every Options.ProgressEvery conflicts
// from inside the CDCL loop; the other phases mark algorithm milestones
// (one report each time the bound trajectory can move).
type ProgressInfo struct {
	Algorithm Algorithm
	// Phase is "search" (periodic, inside a SAT call), "model" (a new
	// incumbent model), "core" (an unsat core was extracted), "stratum"
	// (RC2 descended a stratification level), or "hitting-set" (MaxHS
	// computed a new hitting set).
	Phase string
	// Iteration counts main-loop iterations of the algorithm.
	Iteration int64
	// SATCalls and Conflicts are cumulative across the solve.
	SATCalls  int64
	Conflicts int64
	// LearntLive and TrailDepth describe the underlying SAT solver at
	// the time of the report.
	LearntLive int
	TrailDepth int
	// LowerBound and UpperBound bracket the optimum *falsified* weight
	// (the cost being minimized); -1 means not yet known.
	LowerBound int64
	UpperBound int64
}

// ProgressFunc receives progress reports. It is called synchronously
// from inside the solve: keep it fast and do not call back into maxsat.
type ProgressFunc func(ProgressInfo)

// tracker carries the bound trajectory of one solve and forwards it to
// the user's ProgressFunc. All methods are nil-receiver-safe so the
// algorithms call them unconditionally; with no callback registered the
// cost is one nil check per milestone.
type tracker struct {
	fn   ProgressFunc
	alg  Algorithm
	s    *sat.Solver
	iter int64
	lb   int64
	ub   int64
}

// newTracker wires opts.Progress to s (periodic "search" reports every
// ProgressEvery conflicts) and returns a tracker for milestone reports.
// Returns nil when no callback is configured.
func newTracker(opts Options, alg Algorithm, s *sat.Solver) *tracker {
	if opts.Progress == nil {
		return nil
	}
	t := &tracker{fn: opts.Progress, alg: alg, s: s, lb: -1, ub: -1}
	every := opts.ProgressEvery
	if every <= 0 {
		every = DefaultProgressEvery
	}
	s.SetProgress(every, func(p sat.Progress) {
		t.fn(ProgressInfo{
			Algorithm:  t.alg,
			Phase:      "search",
			Iteration:  t.iter,
			SATCalls:   p.Solves,
			Conflicts:  p.Conflicts,
			LearntLive: p.LearntLive,
			TrailDepth: p.TrailDepth,
			LowerBound: t.lb,
			UpperBound: t.ub,
		})
	})
	return t
}

// step advances the main-loop iteration counter.
func (t *tracker) step() {
	if t != nil {
		t.iter++
	}
}

// bounds updates the falsified-weight bracket (pass -1 to leave a side
// unchanged).
func (t *tracker) bounds(lb, ub int64) {
	if t == nil {
		return
	}
	if lb >= 0 {
		t.lb = lb
	}
	if ub >= 0 {
		t.ub = ub
	}
}

// event emits a milestone report with the current solver state.
func (t *tracker) event(phase string) {
	if t == nil {
		return
	}
	p := t.s.ProgressSnapshot()
	t.fn(ProgressInfo{
		Algorithm:  t.alg,
		Phase:      phase,
		Iteration:  t.iter,
		SATCalls:   p.Solves,
		Conflicts:  p.Conflicts,
		LearntLive: p.LearntLive,
		TrailDepth: p.TrailDepth,
		LowerBound: t.lb,
		UpperBound: t.ub,
	})
}

// satSolve runs one SAT call under a "sat.solve" span carrying the
// algorithm, assumption count, outcome and the conflicts spent in this
// call. With no tracer on ctx the span path is a nil check.
func satSolve(ctx context.Context, s *sat.Solver, alg Algorithm, assumptions ...cnf.Lit) sat.Status {
	_, sp := obsv.StartSpan(ctx, "sat.solve", obsv.String("alg", alg.String()))
	before := s.Stats.Conflicts
	st := s.Solve(assumptions...)
	if sp != nil {
		sp.SetInt("assumptions", int64(len(assumptions)))
		sp.SetStr("result", st.String())
		sp.SetInt("conflicts", s.Stats.Conflicts-before)
		sp.End()
	}
	return st
}
