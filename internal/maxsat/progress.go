package maxsat

import (
	"context"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/sat"
)

// DefaultProgressEvery is the conflict interval between periodic
// "search" progress reports when Options.ProgressEvery is zero.
const DefaultProgressEvery = 10_000

// ProgressInfo is one progress report from a running MaxSAT solve.
// Reports of phase "search" fire every Options.ProgressEvery conflicts
// from inside the CDCL loop; the other phases mark algorithm milestones
// (one report each time the bound trajectory can move).
type ProgressInfo struct {
	Algorithm Algorithm
	// Phase is "search" (periodic, inside a SAT call), "model" (a new
	// incumbent model), "core" (an unsat core was extracted), "stratum"
	// (RC2 descended a stratification level), or "hitting-set" (MaxHS
	// computed a new hitting set).
	Phase string
	// Iteration counts main-loop iterations of the algorithm.
	Iteration int64
	// SATCalls and Conflicts are cumulative across the solve.
	SATCalls  int64
	Conflicts int64
	// LearntLive and TrailDepth describe the underlying SAT solver at
	// the time of the report.
	LearntLive int
	TrailDepth int
	// LowerBound and UpperBound bracket the optimum *falsified* weight
	// (the cost being minimized); -1 means not yet known.
	LowerBound int64
	UpperBound int64
}

// ProgressFunc receives progress reports. It is called synchronously
// from inside the solve: keep it fast and do not call back into maxsat.
type ProgressFunc func(ProgressInfo)

// tracker carries the bound trajectory of one solve and forwards it to
// the user's ProgressFunc and, when the caller's context carries one,
// the per-solve flight recorder (progress ticks and bound updates feed
// the anomaly dump ring). All methods are nil-receiver-safe so the
// algorithms call them unconditionally; with neither sink configured the
// cost is one nil check per milestone.
type tracker struct {
	fn   ProgressFunc
	rec  *obsv.FlightRecorder
	alg  Algorithm
	s    *sat.Solver
	iter int64
	lb   int64
	ub   int64
}

// newTracker wires opts.Progress and the context's flight recorder to s
// (periodic "search" reports every ProgressEvery conflicts) and returns
// a tracker for milestone reports. Returns nil when neither sink is
// configured.
func newTracker(ctx context.Context, opts Options, alg Algorithm, s *sat.Solver) *tracker {
	rec := obsv.FlightRecorderFrom(ctx)
	if opts.Progress == nil && rec == nil {
		return nil
	}
	t := &tracker{fn: opts.Progress, rec: rec, alg: alg, s: s, lb: -1, ub: -1}
	every := opts.ProgressEvery
	if every <= 0 {
		every = DefaultProgressEvery
	}
	s.SetProgress(every, func(p sat.Progress) { t.report("search", p) })
	return t
}

// report fans one progress observation out to the configured sinks.
func (t *tracker) report(phase string, p sat.Progress) {
	info := ProgressInfo{
		Algorithm:  t.alg,
		Phase:      phase,
		Iteration:  t.iter,
		SATCalls:   p.Solves,
		Conflicts:  p.Conflicts,
		LearntLive: p.LearntLive,
		TrailDepth: p.TrailDepth,
		LowerBound: t.lb,
		UpperBound: t.ub,
	}
	if t.fn != nil {
		t.fn(info)
	}
	t.rec.Record("progress", t.alg.String(),
		obsv.String("phase", phase),
		obsv.Int64("iter", info.Iteration),
		obsv.Int64("sat_calls", info.SATCalls),
		obsv.Int64("conflicts", info.Conflicts),
		obsv.Int64("lb", info.LowerBound),
		obsv.Int64("ub", info.UpperBound))
}

// step advances the main-loop iteration counter.
func (t *tracker) step() {
	if t != nil {
		t.iter++
	}
}

// bounds updates the falsified-weight bracket (pass -1 to leave a side
// unchanged); a bracket move is recorded as a "bound" event in the
// flight recorder.
func (t *tracker) bounds(lb, ub int64) {
	if t == nil {
		return
	}
	changed := false
	if lb >= 0 && lb != t.lb {
		t.lb = lb
		changed = true
	}
	if ub >= 0 && ub != t.ub {
		t.ub = ub
		changed = true
	}
	if changed {
		t.rec.Record("bound", t.alg.String(),
			obsv.Int64("lb", t.lb), obsv.Int64("ub", t.ub))
	}
}

// event emits a milestone report with the current solver state.
func (t *tracker) event(phase string) {
	if t == nil {
		return
	}
	t.report(phase, t.s.ProgressSnapshot())
}

// satSolve runs one SAT call under a "sat.solve" span carrying the
// algorithm, assumption count, outcome and the conflicts spent in this
// call. With no tracer on ctx the span path is a nil check.
func satSolve(ctx context.Context, s *sat.Solver, alg Algorithm, assumptions ...cnf.Lit) sat.Status {
	_, sp := obsv.StartSpan(ctx, "sat.solve", obsv.String("alg", alg.String()))
	before := s.Stats.Conflicts
	st := s.Solve(assumptions...)
	if sp != nil {
		sp.SetInt("assumptions", int64(len(assumptions)))
		sp.SetStr("result", st.String())
		sp.SetInt("conflicts", s.Stats.Conflicts-before)
		sp.End()
	}
	return st
}
