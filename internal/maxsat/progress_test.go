package maxsat

import (
	"context"
	"testing"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/obsv"
)

// progressFormula has optimum falsified weight 5: the hard clauses force
// exactly one of x1/x2 (falsifying soft weight 3 or 5), and the x3
// conflict pair falsifies at least weight 2 — enough structure that
// every algorithm moves its bounds before converging.
func progressFormula() *cnf.Formula {
	f := cnf.New(3)
	f.AddHard(1, 2)
	f.AddHard(-1, -2)
	f.AddSoft(3, -1)
	f.AddSoft(5, -2)
	f.AddSoft(4, 3)
	f.AddSoft(2, -3)
	return f
}

func TestProgressBoundsBracketOptimum(t *testing.T) {
	for _, alg := range algorithms() {
		var reports []ProgressInfo
		res, err := Solve(progressFormula(), Options{
			Algorithm:     alg,
			ProgressEvery: 1,
			Progress:      func(p ProgressInfo) { reports = append(reports, p) },
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.Satisfiable {
			t.Fatalf("%v: unsatisfiable", alg)
		}
		if len(reports) == 0 {
			t.Fatalf("%v: no progress reports", alg)
		}
		opt := res.FalsifiedWeight
		var prevLB, prevUB int64 = -1, -1
		sawMilestone := false
		for i, p := range reports {
			if p.Algorithm != alg {
				t.Fatalf("%v: report %d labeled %v", alg, i, p.Algorithm)
			}
			switch p.Phase {
			case "search":
			case "model", "core", "stratum", "hitting-set":
				sawMilestone = true
			default:
				t.Fatalf("%v: report %d has unknown phase %q", alg, i, p.Phase)
			}
			// Any published bound must bracket the optimum falsified
			// weight, and the bracket only tightens.
			if p.LowerBound >= 0 {
				if p.LowerBound > opt {
					t.Fatalf("%v: report %d lb %d > optimum %d", alg, i, p.LowerBound, opt)
				}
				if p.LowerBound < prevLB {
					t.Fatalf("%v: report %d lb regressed %d -> %d", alg, i, prevLB, p.LowerBound)
				}
				prevLB = p.LowerBound
			}
			if p.UpperBound >= 0 {
				if p.UpperBound < opt {
					t.Fatalf("%v: report %d ub %d < optimum %d", alg, i, p.UpperBound, opt)
				}
				if prevUB >= 0 && p.UpperBound > prevUB {
					t.Fatalf("%v: report %d ub regressed %d -> %d", alg, i, prevUB, p.UpperBound)
				}
				prevUB = p.UpperBound
			}
		}
		if !sawMilestone {
			t.Errorf("%v: only periodic reports, no milestone events", alg)
		}
		if prevUB != opt {
			t.Errorf("%v: final ub %d, want optimum %d", alg, prevUB, opt)
		}
	}
}

func TestSolveContextRecordsSpans(t *testing.T) {
	tr := obsv.NewTracer()
	ctx := obsv.WithTracer(context.Background(), tr)
	res, err := SolveContext(ctx, progressFormula(), Options{Algorithm: AlgRC2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("unsatisfiable")
	}
	if tr.Open() != 0 {
		t.Fatalf("unbalanced trace: %d spans still open", tr.Open())
	}
	names := map[string]int{}
	for _, sp := range tr.Spans() {
		names[sp.Name]++
	}
	if names["maxsat.solve"] != 1 {
		t.Fatalf("maxsat.solve spans = %d, want 1", names["maxsat.solve"])
	}
	if int64(names["sat.solve"]) != res.SATCalls {
		t.Fatalf("sat.solve spans = %d, SATCalls = %d", names["sat.solve"], res.SATCalls)
	}
}
