package maxsat

import (
	"context"
	"testing"
	"testing/quick"

	"aggcavsat/internal/cnf"
)

// randomWCNF builds a small random weighted formula with nHard hard
// clauses FIRST (so a HardBase prefix can be snapshotted) and soft
// clauses after, mirroring TestRandomAgainstBruteForce's generator.
func randomWCNF(seed uint64) *cnf.Formula {
	rng := seed | 1
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	nVars := 3 + next(5)
	f := cnf.New(nVars)
	randClause := func() []cnf.Lit {
		k := 1 + next(3)
		lits := make([]cnf.Lit, k)
		for j := range lits {
			v := 1 + next(nVars)
			if next(2) == 0 {
				lits[j] = cnf.Lit(v)
			} else {
				lits[j] = cnf.Lit(-v)
			}
		}
		return lits
	}
	nHard := next(6)
	for i := 0; i < nHard; i++ {
		f.AddHard(randClause()...)
	}
	nSoft := 1 + next(8)
	for i := 0; i < nSoft; i++ {
		f.AddSoft(int64(1+next(7)), randClause()...)
	}
	return f
}

// checkInstanceAgainstLegacy runs both Instance directions with and
// without a HardBase prefix and compares them to the legacy
// two-formula path (Solve on f, Solve on f.NegateSoft()).
func checkInstanceAgainstLegacy(t *testing.T, seed uint64, opts Options) bool {
	t.Helper()
	// Rebuild the formula twice so the hard prefix can be snapshotted
	// before the soft clauses exist.
	f := randomWCNF(seed)
	prefix := cnf.New(f.NumVars())
	var base *HardBase
	{
		allHard := true
		for _, c := range f.Clauses() {
			if !c.Hard() {
				allHard = false
				continue // hards precede softs in the generator
			}
			if allHard {
				prefix.AddHard(c.Lits...)
			}
		}
		base = NewHardBase(prefix)
	}
	legacyMin, errMin := Solve(f, opts)
	legacyMax, errMax := Solve(f.NegateSoft(), opts)
	if errMin != nil || errMax != nil {
		t.Fatalf("legacy solve failed: %v / %v", errMin, errMax)
	}
	ctx := context.Background()
	for _, b := range []*HardBase{nil, base} {
		// NewInstance(f, base, ...) requires base to snapshot a prefix
		// of f's clause list; prefix holds exactly f's hard clauses
		// only when they all precede the softs, which the generator
		// guarantees.
		var inst *Instance
		if b == nil {
			inst = NewInstance(f, nil, opts)
		} else {
			ff := prefix.Snapshot()
			for _, c := range f.Clauses() {
				if !c.Hard() {
					ff.AddSoft(c.Weight, c.Lits...)
				}
			}
			inst = NewInstance(ff, b, opts)
		}
		gotMin, err := inst.SolveMin(ctx)
		if err != nil {
			t.Fatalf("seed %#x: SolveMin: %v", seed, err)
		}
		gotMax, err := inst.SolveMax(ctx)
		if err != nil {
			t.Fatalf("seed %#x: SolveMax: %v", seed, err)
		}
		if gotMin.Satisfiable != legacyMin.Satisfiable ||
			(gotMin.Satisfiable && gotMin.Optimum != legacyMin.Optimum) {
			t.Logf("seed %#x base=%v: min %+v vs legacy %+v", seed, b != nil, gotMin, legacyMin)
			return false
		}
		if gotMax.Satisfiable != legacyMax.Satisfiable ||
			(gotMax.Satisfiable && gotMax.Optimum != legacyMax.Optimum) {
			t.Logf("seed %#x base=%v: max %+v vs legacy %+v", seed, b != nil, gotMax, legacyMax)
			return false
		}
		// The returned models must achieve the reported objectives on
		// the original formula.
		if gotMin.Satisfiable {
			hardOK, satW, _ := f.Eval(gotMin.Model)
			if !hardOK || satW != gotMin.Optimum {
				t.Logf("seed %#x: min model does not achieve optimum", seed)
				return false
			}
		}
		if gotMax.Satisfiable {
			hardOK, _, falsW := f.Eval(gotMax.Model)
			if !hardOK || falsW != gotMax.Optimum {
				t.Logf("seed %#x: max model does not achieve optimum", seed)
				return false
			}
		}
	}
	return true
}

// TestInstanceMatchesLegacyRandom is the satellite property test: the
// incremental Instance path must report the same min/max optima as the
// legacy two-formula path over the randomized corpus, for all three
// built-in algorithms.
func TestInstanceMatchesLegacyRandom(t *testing.T) {
	for _, alg := range algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			fn := func(seed uint64) bool {
				return checkInstanceAgainstLegacy(t, seed, Options{Algorithm: alg})
			}
			if err := quick.Check(fn, &quick.Config{MaxCount: 120}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestInstanceFallbackMatchesLegacy drives the MaxHS→RC2 fallback (node
// budget 1 aborts every exact hitting-set solve) through the Instance
// path and checks it still agrees with the legacy fallback path.
func TestInstanceFallbackMatchesLegacy(t *testing.T) {
	opts := Options{Algorithm: AlgMaxHS, HSNodeBudget: 1}
	fn := func(seed uint64) bool {
		return checkInstanceAgainstLegacy(t, seed, opts)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestInstanceHardUnsat: inconsistent hard clauses surface as
// Satisfiable == false in both directions, with and without a base.
func TestInstanceHardUnsat(t *testing.T) {
	f := cnf.New(1)
	f.AddHard(1)
	f.AddHard(-1)
	base := NewHardBase(f)
	f.AddSoft(3, 1)
	for _, b := range []*HardBase{nil, base} {
		inst := NewInstance(f, b, Options{})
		if res, err := inst.SolveMin(context.Background()); err != nil || res.Satisfiable {
			t.Fatalf("min: res=%+v err=%v", res, err)
		}
		if res, err := inst.SolveMax(context.Background()); err != nil || res.Satisfiable {
			t.Fatalf("max: res=%+v err=%v", res, err)
		}
	}
}

// TestReleaseRejectsDirtyInstance is the regression test for the
// adoption-chain bug: an instance whose NewInstance added suffix or
// selector clauses must NOT hand its base back to the shared HardBase
// on Release, even though its adopted run solvers report
// AddedSinceClone() == 0 (the counter resets at every fork). If the
// dirty base leaked, a second instance over the same HardBase would
// re-allocate the leaked aux variable numbers with new meanings and
// solve garbage.
func TestReleaseRejectsDirtyInstance(t *testing.T) {
	hard := cnf.New(3)
	hard.AddHard(1, 2, 3)
	base := NewHardBase(hard)

	// Non-unit soft clauses force relaxation/negation aux clauses.
	f1 := hard.Snapshot()
	f1.AddSoft(2, 1, 2)
	f1.AddSoft(5, 2, 3)
	inst1 := NewInstance(f1, base, Options{})
	if _, err := inst1.SolveMin(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := inst1.SolveMax(context.Background()); err != nil {
		t.Fatal(err)
	}
	inst1.Release()

	// A second, different soft layer over the same base must still agree
	// with the legacy path in both directions.
	f2 := hard.Snapshot()
	f2.AddSoft(3, -1, -2)
	f2.AddSoft(1, -3)
	inst2 := NewInstance(f2, base, Options{})
	legacyMin, err := Solve(f2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	legacyMax, err := Solve(f2.NegateSoft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotMin, err := inst2.SolveMin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gotMax, err := inst2.SolveMax(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gotMin.Satisfiable != legacyMin.Satisfiable || gotMin.Optimum != legacyMin.Optimum {
		t.Fatalf("min after dirty Release: %+v vs legacy %+v", gotMin, legacyMin)
	}
	if gotMax.Satisfiable != legacyMax.Satisfiable || gotMax.Optimum != legacyMax.Optimum {
		t.Fatalf("max after dirty Release: %+v vs legacy %+v", gotMax, legacyMax)
	}
}

// TestReleaseAdoptsCleanInstance: a unit-soft-only instance (no clauses
// beyond the snapshot) does hand its learnt-enriched base back, and
// later instances remain correct.
func TestReleaseAdoptsCleanInstance(t *testing.T) {
	hard := cnf.New(4)
	hard.AddHard(1, 2)
	hard.AddHard(-1, -2)
	hard.AddHard(3, 4)
	base := NewHardBase(hard)
	for trial := 0; trial < 3; trial++ {
		f := hard.Snapshot()
		f.AddSoft(int64(1+trial), 1)
		f.AddSoft(2, -2)
		f.AddSoft(3, 4)
		inst := NewInstance(f, base, Options{})
		legacyMin, err := Solve(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotMin, err := inst.SolveMin(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if gotMin.Optimum != legacyMin.Optimum {
			t.Fatalf("trial %d: min %d vs legacy %d", trial, gotMin.Optimum, legacyMin.Optimum)
		}
		inst.Release()
	}
}

// TestInstanceKuegelNegation pins the weight-view semantics on the
// KuegelNegationMinSAT example: SolveMax must equal the brute-force
// maximum falsified weight.
func TestInstanceKuegelNegation(t *testing.T) {
	f := cnf.New(3)
	f.AddHard(1, 2, 3)
	f.AddSoft(2, 1, 2)
	f.AddSoft(3, 2, 3)
	f.AddSoft(1, -1)
	var maxFals int64 = -1
	for m := 0; m < 8; m++ {
		assign := []bool{false, m&1 != 0, m&2 != 0, m&4 != 0}
		hardOK, _, falsW := f.Eval(assign)
		if hardOK && falsW > maxFals {
			maxFals = falsW
		}
	}
	for _, alg := range algorithms() {
		inst := NewInstance(f, nil, Options{Algorithm: alg})
		res, err := inst.SolveMax(context.Background())
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.Satisfiable || res.Optimum != maxFals {
			t.Fatalf("%v: Optimum=%d want %d", alg, res.Optimum, maxFals)
		}
	}
}

// benchComponent builds a repair-shaped instance: nGroups key-groups of
// three facts with at-least-one/at-most-one hard clauses, and one
// weighted soft unit per fact — the structure sumCountFromBag emits.
func benchComponent(nGroups int) *cnf.Formula {
	f := cnf.New(3 * nGroups)
	for g := 0; g < nGroups; g++ {
		a, b, c := cnf.Lit(3*g+1), cnf.Lit(3*g+2), cnf.Lit(3*g+3)
		f.AddHard(a, b, c)
		f.AddHard(-a, -b)
		f.AddHard(-a, -c)
		f.AddHard(-b, -c)
	}
	for v := 1; v <= 3*nGroups; v++ {
		f.AddSoft(int64(1+(v*7)%13), cnf.Lit(v))
	}
	return f
}

// BenchmarkBothDirections compares the legacy two-formula path (fresh
// solver per direction plus the NegateSoft deep copy) against the
// shared-base Instance path, per algorithm.
func BenchmarkBothDirections(b *testing.B) {
	for _, alg := range algorithms() {
		// LSU's generalized totalizer is quadratic in the weighted
		// inputs; a smaller component keeps its runs comparable.
		groups := 60
		if alg == AlgLSU {
			groups = 10
		}
		f := benchComponent(groups)
		opts := Options{Algorithm: alg}
		b.Run("legacy/"+alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(f, opts); err != nil {
					b.Fatal(err)
				}
				if _, err := Solve(f.NegateSoft(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("instance/"+alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			base := NewHardBase(hardPrefix(f))
			for i := 0; i < b.N; i++ {
				inst := NewInstance(f, base, opts)
				if _, err := inst.SolveMin(context.Background()); err != nil {
					b.Fatal(err)
				}
				if _, err := inst.SolveMax(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// hardPrefix rebuilds just the hard clauses of f (which precede the
// softs in the benchmark formulas).
func hardPrefix(f *cnf.Formula) *cnf.Formula {
	out := cnf.New(f.NumVars())
	for _, c := range f.Clauses() {
		if c.Hard() {
			out.AddHard(c.Lits...)
		}
	}
	return out
}
