// Package schemafile reads and writes the plain-text schema format used
// by the CLI tools (cmd/cavsat, cmd/datagen) to describe CSV-backed
// databases:
//
//	# comments and blank lines are ignored
//	relation Cust (CID:string NAME:string CITY:string) key CID
//	relation Acc  (ACCID:string BAL:int) key ACCID
//	fd Cust CID -> NAME
//
// A `relation` line declares a relation with typed attributes
// (int/float/string) and an optional key. An `fd` line declares a
// functional dependency, which switches query answering from key-repair
// semantics to denial-constraint semantics (Reduction V.1).
package schemafile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"aggcavsat/internal/constraints"
	"aggcavsat/internal/db"
)

// File is a parsed schema file.
type File struct {
	Schema *db.Schema
	// FDs holds the declared functional dependencies, expanded into
	// denial constraints.
	FDs []constraints.DC
}

// Read parses a schema file.
func Read(r io.Reader) (*File, error) {
	schema := db.NewSchema()
	type fdDecl struct {
		rel  string
		lhs  []string
		rhs  []string
		line int
	}
	var fds []fdDecl

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "relation":
			rs, err := parseRelation(line)
			if err != nil {
				return nil, fmt.Errorf("schemafile: line %d: %w", lineNo, err)
			}
			if err := schema.AddRelation(rs); err != nil {
				return nil, fmt.Errorf("schemafile: line %d: %w", lineNo, err)
			}
		case "fd":
			arrow := -1
			for i, tok := range fields {
				if tok == "->" {
					arrow = i
				}
			}
			if arrow < 3 || arrow == len(fields)-1 {
				return nil, fmt.Errorf("schemafile: line %d: fd wants 'fd REL lhs... -> rhs...'", lineNo)
			}
			fds = append(fds, fdDecl{rel: fields[1], lhs: fields[2:arrow], rhs: fields[arrow+1:], line: lineNo})
		default:
			return nil, fmt.Errorf("schemafile: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := &File{Schema: schema}
	for _, d := range fds {
		rs := schema.Relation(d.rel)
		if rs == nil {
			return nil, fmt.Errorf("schemafile: line %d: fd references unknown relation %s", d.line, d.rel)
		}
		built, err := constraints.FD(rs, d.lhs, d.rhs...)
		if err != nil {
			return nil, fmt.Errorf("schemafile: line %d: %w", d.line, err)
		}
		out.FDs = append(out.FDs, built...)
	}
	return out, nil
}

// parseRelation parses: relation Name (a:string b:int ...) [key a b]
func parseRelation(line string) (*db.RelationSchema, error) {
	open := strings.Index(line, "(")
	clo := strings.Index(line, ")")
	if open < 0 || clo < open {
		return nil, fmt.Errorf("relation wants 'relation NAME (attr:type ...) [key attr ...]'")
	}
	head := strings.Fields(line[:open])
	if len(head) != 2 {
		return nil, fmt.Errorf("missing relation name")
	}
	rs := &db.RelationSchema{Name: head[1]}
	for _, spec := range strings.Fields(line[open+1 : clo]) {
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("attribute %q wants name:type", spec)
		}
		var kind db.Kind
		switch strings.ToLower(parts[1]) {
		case "int":
			kind = db.KindInt
		case "float":
			kind = db.KindFloat
		case "string":
			kind = db.KindString
		default:
			return nil, fmt.Errorf("unknown type %q", parts[1])
		}
		rs.Attrs = append(rs.Attrs, db.Attribute{Name: parts[0], Kind: kind})
	}
	rest := strings.Fields(line[clo+1:])
	if len(rest) > 0 {
		if rest[0] != "key" || len(rest) == 1 {
			return nil, fmt.Errorf("trailing %q; expected 'key attr ...'", strings.Join(rest, " "))
		}
		for _, name := range rest[1:] {
			p := rs.AttrIndex(name)
			if p < 0 {
				return nil, fmt.Errorf("key attribute %q not declared", name)
			}
			rs.Key = append(rs.Key, p)
		}
		sort.Ints(rs.Key) // schema validation expects ascending positions
	}
	return rs, nil
}

// Write renders the schema of an instance (plus optional fd lines) in
// the schema-file format.
func Write(w io.Writer, schema *db.Schema, fdLines []string) error {
	for _, rs := range schema.Relations() {
		var attrs []string
		for _, a := range rs.Attrs {
			kind := "string"
			switch a.Kind {
			case db.KindInt:
				kind = "int"
			case db.KindFloat:
				kind = "float"
			}
			attrs = append(attrs, a.Name+":"+kind)
		}
		line := fmt.Sprintf("relation %s (%s)", rs.Name, strings.Join(attrs, " "))
		if rs.HasKey() {
			line += " key " + strings.Join(rs.KeyNames(), " ")
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	for _, fd := range fdLines {
		if _, err := fmt.Fprintln(w, fd); err != nil {
			return err
		}
	}
	return nil
}
