package schemafile

import (
	"bytes"
	"strings"
	"testing"

	"aggcavsat/internal/db"
)

const sample = `
# bank schema
relation Cust (CID:string NAME:string CITY:string) key CID
relation Acc  (ACCID:string BAL:int) key ACCID
relation Notes (id:int text:string score:float)

fd Cust CID -> NAME CITY
`

func TestReadBasic(t *testing.T) {
	f, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	cust := f.Schema.Relation("Cust")
	if cust == nil || cust.Arity() != 3 || len(cust.Key) != 1 || cust.Key[0] != 0 {
		t.Fatalf("Cust = %+v", cust)
	}
	acc := f.Schema.Relation("acc")
	if acc == nil || acc.Attrs[1].Kind != db.KindInt {
		t.Fatalf("Acc = %+v", acc)
	}
	notes := f.Schema.Relation("Notes")
	if notes.HasKey() {
		t.Error("Notes should have no key")
	}
	if notes.Attrs[2].Kind != db.KindFloat {
		t.Error("float attribute mis-typed")
	}
	// fd CID -> NAME CITY expands to two denial constraints.
	if len(f.FDs) != 2 {
		t.Fatalf("FDs = %d, want 2", len(f.FDs))
	}
	for _, dc := range f.FDs {
		if err := dc.Validate(f.Schema); err != nil {
			t.Errorf("%s: %v", dc.Name, err)
		}
	}
}

func TestReadCompositeAndUnorderedKey(t *testing.T) {
	f, err := Read(strings.NewReader(
		"relation R (a:int b:int c:int) key c a\n"))
	if err != nil {
		t.Fatal(err)
	}
	rs := f.Schema.Relation("R")
	// Positions are normalized to ascending order.
	if len(rs.Key) != 2 || rs.Key[0] != 0 || rs.Key[1] != 2 {
		t.Fatalf("key = %v", rs.Key)
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"relation R a:int\n",                      // missing parens
		"relation (a:int)\n",                      // missing name
		"relation R (aint)\n",                     // missing type separator
		"relation R (a:blob)\n",                   // unknown type
		"relation R (a:int) key b\n",              // undeclared key attr
		"relation R (a:int) nonsense\n",           // trailing junk
		"relation R (a:int)\nrelation R (b:int)\n", // duplicate relation
		"fd R a -> b\n",                           // fd before/without relation
		"relation R (a:int b:int)\nfd R a b\n",    // fd missing arrow
		"relation R (a:int b:int)\nfd R a ->\n",   // fd missing rhs
		"relation R (a:int b:int)\nfd R a -> z\n", // fd unknown attr
		"teleport R (a:int)\n",                    // unknown directive
	}
	for _, src := range bad {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f.Schema, []string{"fd Cust CID -> NAME CITY"}); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatalf("round trip: %v\nfile:\n%s", err, buf.String())
	}
	if len(g.Schema.Relations()) != len(f.Schema.Relations()) {
		t.Error("relation count changed")
	}
	if len(g.FDs) != len(f.FDs) {
		t.Errorf("FDs = %d, want %d", len(g.FDs), len(f.FDs))
	}
	for _, rs := range f.Schema.Relations() {
		got := g.Schema.Relation(rs.Name)
		if got == nil || got.Arity() != rs.Arity() || len(got.Key) != len(rs.Key) {
			t.Errorf("relation %s changed across round trip", rs.Name)
		}
	}
}
