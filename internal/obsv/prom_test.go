package obsv

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the full 0.0.4 text exposition of a small
// registry byte for byte — the promtool-style conformance check. Every
// family carries a # TYPE line, histogram buckets are cumulative with a
// +Inf bucket equal to _count, summaries expose quantile-labelled
// samples, and the whole output is sorted by metric name.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total").Add(3)
	r.Gauge("app_heap_bytes").Set(7)
	h := r.Histogram("app_phase_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	s := r.Summary("app_query_seconds", 0, nil)
	for _, v := range []float64{1, 2, 3, 4} {
		s.Observe(v)
	}

	want := strings.Join([]string{
		"# TYPE app_requests_total counter",
		"app_requests_total 3",
		"# TYPE app_heap_bytes gauge",
		"app_heap_bytes 7",
		"# TYPE app_phase_seconds histogram",
		`app_phase_seconds_bucket{le="1"} 1`,
		`app_phase_seconds_bucket{le="2"} 2`,
		`app_phase_seconds_bucket{le="+Inf"} 3`,
		"app_phase_seconds_sum 5",
		"app_phase_seconds_count 3",
		"# TYPE app_query_seconds summary",
		`app_query_seconds{quantile="0.5"} 2`,
		`app_query_seconds{quantile="0.9"} 4`,
		`app_query_seconds{quantile="0.99"} 4`,
		`app_query_seconds{quantile="1"} 4`,
		"app_query_seconds_sum 10",
		"app_query_seconds_count 4",
		"",
	}, "\n")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}

	// Byte-stability: a second render of the same state is identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("exposition is not byte-stable across renders")
	}
}

// TestPrometheusHistogramInvariants checks the structural 0.0.4 rules on
// a histogram with data in every region: cumulative non-decreasing
// buckets, +Inf present and equal to _count.
func TestPrometheusHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inv_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50, 500} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	var infVal, countVal int64 = -1, -2
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "inv_seconds_bucket"):
			fields := strings.Fields(line)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Errorf("bucket counts not cumulative: %q after %d", line, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				infVal = v
			}
		case strings.HasPrefix(line, "inv_seconds_count"):
			fields := strings.Fields(line)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			countVal = v
		}
	}
	if infVal != 5 {
		t.Errorf("+Inf bucket = %d, want 5", infVal)
	}
	if infVal != countVal {
		t.Errorf("+Inf bucket (%d) != _count (%d): 0.0.4 violation", infVal, countVal)
	}
}

// TestPrometheusLabelledFamily: counters named with label sets (the
// planner route family) share one # TYPE line per family — the bare
// family name, emitted once — and keep their own sample lines. Scrapers
// reject duplicate or label-bearing TYPE lines, so this is load-bearing.
func TestPrometheusLabelledFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricRouteRewrite).Add(5)
	r.Counter(MetricRouteSAT).Add(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	typeLine := "# TYPE aggcavsat_planner_route_total counter"
	if got := strings.Count(out, typeLine); got != 1 {
		t.Errorf("TYPE line appears %d times, want exactly 1:\n%s", got, out)
	}
	if strings.Contains(out, "# TYPE aggcavsat_planner_route_total{") {
		t.Errorf("TYPE line carries a label set:\n%s", out)
	}
	for _, sample := range []string{
		`aggcavsat_planner_route_total{route="rewrite"} 5`,
		`aggcavsat_planner_route_total{route="sat"} 2`,
	} {
		if !strings.Contains(out, sample) {
			t.Errorf("missing sample %q:\n%s", sample, out)
		}
	}
}
