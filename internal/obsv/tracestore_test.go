package obsv

import (
	"context"
	"strings"
	"testing"
	"time"
)

func retained(id TraceID, reason string) RetainedTrace {
	return RetainedTrace{TraceID: id, Reason: reason, Start: time.Now(), Tracer: NewTracerWithID(id)}
}

func TestTraceStoreFIFO(t *testing.T) {
	s := NewTraceStore(2)
	a, b, c := NewTraceID(), NewTraceID(), NewTraceID()
	s.Keep(retained(a, "slow"))
	s.Keep(retained(b, "error"))
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	s.Keep(retained(c, "timeout"))
	if s.Len() != 2 {
		t.Fatalf("len after eviction = %d, want 2", s.Len())
	}
	if _, ok := s.Get(a); ok {
		t.Fatal("oldest trace survived eviction")
	}
	for _, id := range []TraceID{b, c} {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("trace %s missing", id)
		}
	}
	if got := s.List(); len(got) != 2 || got[0].TraceID != b || got[1].TraceID != c {
		t.Fatalf("List order wrong: %v", got)
	}
	if s.Kept() != 3 || s.Evicted() != 1 {
		t.Fatalf("kept/evicted = %d/%d, want 3/1", s.Kept(), s.Evicted())
	}

	// Re-keeping an id replaces in place, no eviction.
	s.Keep(retained(c, "slow"))
	if s.Len() != 2 || s.Evicted() != 1 {
		t.Fatalf("replace evicted: len=%d evicted=%d", s.Len(), s.Evicted())
	}
	if rt, _ := s.Get(c); rt.Reason != "slow" {
		t.Fatalf("replace kept the old entry: reason=%q", rt.Reason)
	}

	// Zero ids and nil stores are ignored.
	s.Keep(RetainedTrace{})
	if s.Len() != 2 {
		t.Fatal("zero-id trace was retained")
	}
	var nilStore *TraceStore
	nilStore.Keep(retained(a, "x"))
	if nilStore.Len() != 0 {
		t.Fatal("nil store miscounted")
	}
}

// TestTracerAbsorb exercises the tail-retention hand-off: a per-request
// tracer records in isolation and the request end absorbs it into the
// process-global tracer with the span hierarchy intact.
func TestTracerAbsorb(t *testing.T) {
	global := NewTracer()
	gctx := WithTracer(context.Background(), global)
	_, gsp := StartSpan(gctx, "resident")
	gsp.End()

	req := NewTracerWithID(NewTraceID())
	ctx := WithTracer(context.Background(), req)
	ctx, root := StartSpan(ctx, "server.request")
	_, child := StartSpan(ctx, "query")
	child.End()
	root.End()

	global.Absorb(req)
	if got := global.Len(); got != 3 {
		t.Fatalf("global has %d spans after absorb, want 3", got)
	}
	if global.Open() != 0 {
		t.Fatalf("open = %d after all spans ended", global.Open())
	}
	// The absorbed subtree renders under the global tracer: WriteTree
	// drops children with dangling parents, so both names appearing
	// proves the parent links were rebased.
	var sb strings.Builder
	global.WriteTree(&sb)
	tree := sb.String()
	for _, name := range []string{"resident", "server.request", "query"} {
		if !strings.Contains(tree, name) {
			t.Fatalf("absorbed tree missing %q:\n%s", name, tree)
		}
	}
	// The source keeps its own spans (read-only for /debug/trace?trace=).
	if req.Len() != 2 {
		t.Fatalf("source mutated: len = %d", req.Len())
	}
}

func TestTracerAbsorbAllOrNothing(t *testing.T) {
	global := NewTracerWithID(NewTraceID())
	global.MaxSpans = 2
	gctx := WithTracer(context.Background(), global)
	_, gsp := StartSpan(gctx, "resident")
	gsp.End()

	req := NewTracer()
	ctx := WithTracer(context.Background(), req)
	ctx, root := StartSpan(ctx, "a")
	_, child := StartSpan(ctx, "b")
	child.End()
	root.End()

	global.Absorb(req)
	if got := global.Len(); got != 1 {
		t.Fatalf("partial absorb: global has %d spans, want 1", got)
	}
	if global.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2 (the whole rejected trace)", global.Dropped())
	}
}
