package obsv

import (
	"math"
	"sort"
	"sync"
)

// DefaultSummaryExact is the reservoir size of a Summary created with
// maxExact <= 0: quantiles over up to this many observations are exact
// order statistics; beyond it the estimator degrades gracefully to
// fixed-bucket interpolation.
const DefaultSummaryExact = 4096

// SummaryQuantiles are the quantiles surfaced by the Prometheus
// exposition and SummarySnapshot (quantile 1 is the exact maximum,
// tracked separately from the buckets).
var SummaryQuantiles = []float64{0.5, 0.9, 0.99, 1}

// Summary is a streaming latency-quantile estimator. Up to maxExact
// observations it keeps every value, so Quantile returns exact order
// statistics — the regime of a CLI run or a short replay. Past that it
// folds the reservoir into fixed buckets (the Histogram bucket layout)
// and answers quantiles by linear interpolation inside the covering
// bucket, bounding memory for long-lived serving processes. The maximum
// is tracked exactly in both regimes. All methods are safe for
// concurrent use.
type Summary struct {
	mu       sync.Mutex
	maxExact int
	exact    []float64 // unsorted reservoir; nil once folded into buckets
	sorted   bool      // exact is currently sorted (invalidated by Observe)

	buckets []float64 // sorted upper bounds (interpolation grid)
	counts  []int64   // per-bucket counts after folding
	inf     int64     // observations above the last bucket

	count int64
	sum   float64
	max   float64
}

// NewSummary creates a summary keeping up to maxExact exact values
// (DefaultSummaryExact when <= 0) before degrading to interpolation over
// the bucket bounds (DurationBuckets when nil).
func NewSummary(maxExact int, buckets []float64) *Summary {
	if maxExact <= 0 {
		maxExact = DefaultSummaryExact
	}
	if buckets == nil {
		buckets = DurationBuckets
	}
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return &Summary{maxExact: maxExact, buckets: bs}
}

// Observe records one observation.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.sum += v
	if s.count == 1 || v > s.max {
		s.max = v
	}
	if s.exact != nil || s.count == 1 {
		s.exact = append(s.exact, v)
		s.sorted = false
		if len(s.exact) > s.maxExact {
			s.fold()
		}
		return
	}
	s.bucketAdd(v)
}

// fold moves the exact reservoir into the bucket counts (called with the
// lock held, once, when the reservoir overflows).
func (s *Summary) fold() {
	s.counts = make([]int64, len(s.buckets))
	for _, v := range s.exact {
		s.bucketAdd(v)
	}
	s.exact = nil
}

func (s *Summary) bucketAdd(v float64) {
	idx := sort.SearchFloat64s(s.buckets, v)
	if idx < len(s.buckets) {
		s.counts[idx]++
	} else {
		s.inf++
	}
}

// Quantile returns the q-quantile (0 < q <= 1) of the observations so
// far: an exact order statistic in the reservoir regime, a linear
// interpolation inside the covering bucket after folding (observations
// above the last bucket bound report the tracked maximum). NaN with no
// observations.
func (s *Summary) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quantileLocked(q)
}

func (s *Summary) quantileLocked(q float64) float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if q >= 1 {
		return s.max
	}
	if s.exact != nil {
		if !s.sorted {
			sort.Float64s(s.exact)
			s.sorted = true
		}
		// Nearest-rank on the exact reservoir.
		idx := int(math.Ceil(q*float64(len(s.exact)))) - 1
		if idx < 0 {
			idx = 0
		}
		return s.exact[idx]
	}
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	lower := 0.0
	for i, ub := range s.buckets {
		if cum+s.counts[i] >= rank {
			// Interpolate linearly between the bucket's bounds by the
			// rank's position within the bucket.
			frac := float64(rank-cum) / float64(s.counts[i])
			v := lower + (ub-lower)*frac
			if v > s.max {
				v = s.max
			}
			return v
		}
		cum += s.counts[i]
		lower = ub
	}
	return s.max
}

// SummarySnapshot is a point-in-time view of a summary: the standard
// latency percentiles plus the exact maximum, count and sum.
type SummarySnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot captures the summary's current quantiles.
func (s *Summary) Snapshot() SummarySnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SummarySnapshot{Count: s.count, Sum: s.sum}
	if s.count == 0 {
		return snap
	}
	snap.Max = s.max
	snap.P50 = s.quantileLocked(0.5)
	snap.P90 = s.quantileLocked(0.9)
	snap.P99 = s.quantileLocked(0.99)
	return snap
}

// Count returns the number of observations.
func (s *Summary) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Max returns the largest observation (0 with none).
func (s *Summary) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	return s.max
}
