package obsv

import (
	"runtime"
	"testing"
)

func TestSampleResourcesDelta(t *testing.T) {
	before := SampleResources()
	// Allocate ~8 MiB in chunks the compiler cannot elide.
	hold := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		hold = append(hold, make([]byte, 128<<10))
	}
	runtime.KeepAlive(hold)
	delta := SampleResources().Since(before)
	if delta.AllocBytes < 4<<20 {
		t.Errorf("AllocBytes = %d after ~8 MiB of allocation, want >= 4 MiB", delta.AllocBytes)
	}
	if delta.HeapBytes <= 0 {
		t.Errorf("HeapBytes = %d, want > 0 (live heap is never empty)", delta.HeapBytes)
	}
	if delta.GCCycles < 0 {
		t.Errorf("GCCycles = %d, want >= 0 (monotone counter)", delta.GCCycles)
	}
}

func TestSampleResourcesMonotone(t *testing.T) {
	a := SampleResources()
	b := SampleResources()
	if b.AllocBytes < a.AllocBytes {
		t.Errorf("AllocBytes went backwards: %d -> %d", a.AllocBytes, b.AllocBytes)
	}
	if b.GCCycles < a.GCCycles {
		t.Errorf("GCCycles went backwards: %d -> %d", a.GCCycles, b.GCCycles)
	}
}
