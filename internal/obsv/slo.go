package obsv

import (
	"sync"
	"time"
)

// SLOCounts is one cumulative reading of the request counters the SLO
// plane is computed from. Total/Good drive the availability objective
// (Good = requests that did not fail: everything but error/timeout/shed,
// by the caller's definition); LatencyTotal/LatencyOK drive the latency
// objective (LatencyOK = requests answered within the latency target).
// All four are cumulative since process start, like the underlying
// metric families.
type SLOCounts struct {
	Total        int64 `json:"total"`
	Good         int64 `json:"good"`
	LatencyTotal int64 `json:"latency_total"`
	LatencyOK    int64 `json:"latency_ok"`
}

// SLOWindow is the attainment and burn rate of one objective over one
// trailing window.
type SLOWindow struct {
	// Window is the nominal window length, e.g. "5m0s".
	Window string `json:"window"`
	// ActualS is the span actually covered (shorter than Window early in
	// the process lifetime).
	ActualS float64 `json:"actual_s"`
	// Total/Good are the in-window request deltas.
	Total int64 `json:"total"`
	Good  int64 `json:"good"`
	// Attainment is Good/Total in [0,1]; 1 when the window saw no
	// requests (no traffic means no budget burned).
	Attainment float64 `json:"attainment"`
	// BurnRate is the window error rate divided by the objective's error
	// budget (1-objective): 1.0 burns the budget exactly at the rate the
	// objective allows, >1 exhausts it early. 0 when the window saw no
	// requests.
	BurnRate float64 `json:"burn_rate"`
}

// SLOObjective is one objective's live report.
type SLOObjective struct {
	// Name is "availability" or "latency".
	Name string `json:"name"`
	// Objective is the target fraction in (0,1), e.g. 0.999.
	Objective float64 `json:"objective"`
	// TargetMS is the latency target in milliseconds (latency objective
	// only).
	TargetMS float64 `json:"target_ms,omitempty"`
	// Attainment is the all-time attainment since process start.
	Attainment float64 `json:"attainment"`
	Total      int64   `json:"total"`
	Good       int64   `json:"good"`
	// Windows reports multi-window attainment/burn (5m, 1h).
	Windows []SLOWindow `json:"windows"`
}

// SLOReport is the /debug/slo payload.
type SLOReport struct {
	Time       time.Time      `json:"time"`
	Objectives []SLOObjective `json:"objectives"`
}

// sloSample is one timestamped cumulative reading in the tracker ring.
type sloSample struct {
	at time.Time
	c  SLOCounts
}

// sloMaxSamples bounds the sample ring; at the >=1s sampling gap this
// comfortably covers the longest (1h) window.
const sloMaxSamples = 4096

// SLOWindows are the trailing windows reported by the tracker, the
// classic multi-window burn-rate pair.
var SLOWindows = []time.Duration{5 * time.Minute, time.Hour}

// SLOTracker computes availability and latency-objective attainment with
// multi-window burn rates from a caller-supplied cumulative counter
// source — in cavsatd, the labeled request families, so /debug/slo
// reconciles with /metrics by construction. Observe() is called per
// request completion and samples the source at most once per second;
// Report() renders the current state.
type SLOTracker struct {
	// Source reads the current cumulative counts. Must be safe for
	// concurrent use.
	Source func() SLOCounts
	// AvailabilityObjective and LatencyObjective are target fractions in
	// (0,1); LatencyTarget is the latency threshold the LatencyOK counts
	// were computed against (informational, echoed in reports).
	AvailabilityObjective float64
	LatencyObjective      float64
	LatencyTarget         time.Duration
	// Now is the clock (time.Now when nil); injectable for tests.
	Now func() time.Time

	mu      sync.Mutex
	samples []sloSample // ring, chronological
	next    int
	filled  bool
}

// Observe records a cumulative sample if at least a second has passed
// since the previous one. Call it on each request completion (and from
// any periodic ticker); cheap no-op within the gap.
func (t *SLOTracker) Observe() {
	if t == nil || t.Source == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	if n := t.lastSample(); n != nil && now.Sub(n.at) < time.Second {
		t.mu.Unlock()
		return
	}
	c := t.Source // read under lock is fine, but call outside
	t.mu.Unlock()
	counts := c()
	t.mu.Lock()
	defer t.mu.Unlock()
	// Re-check the gap after the (unlocked) source read.
	if n := t.lastSample(); n != nil && now.Sub(n.at) < time.Second {
		return
	}
	s := sloSample{at: now, c: counts}
	if len(t.samples) < sloMaxSamples {
		t.samples = append(t.samples, s)
	} else {
		t.samples[t.next] = s
		t.next = (t.next + 1) % len(t.samples)
		t.filled = true
	}
}

func (t *SLOTracker) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

// lastSample returns the most recent sample (caller holds t.mu).
func (t *SLOTracker) lastSample() *sloSample {
	if len(t.samples) == 0 {
		return nil
	}
	i := len(t.samples) - 1
	if t.filled {
		i = (t.next - 1 + len(t.samples)) % len(t.samples)
	}
	return &t.samples[i]
}

// chronological returns the retained samples oldest-first (caller holds
// t.mu).
func (t *SLOTracker) chronological() []sloSample {
	if !t.filled {
		return t.samples
	}
	out := make([]sloSample, 0, len(t.samples))
	out = append(out, t.samples[t.next:]...)
	out = append(out, t.samples[:t.next]...)
	return out
}

// Report computes the live SLO report from the current source reading
// and the sample ring.
func (t *SLOTracker) Report() SLOReport {
	now := t.now()
	cur := SLOCounts{}
	if t.Source != nil {
		cur = t.Source()
	}
	t.mu.Lock()
	samples := append([]sloSample(nil), t.chronological()...)
	t.mu.Unlock()

	avail := SLOObjective{
		Name:       "availability",
		Objective:  t.AvailabilityObjective,
		Total:      cur.Total,
		Good:       cur.Good,
		Attainment: ratio(cur.Good, cur.Total),
	}
	lat := SLOObjective{
		Name:       "latency",
		Objective:  t.LatencyObjective,
		TargetMS:   float64(t.LatencyTarget.Microseconds()) / 1000,
		Total:      cur.LatencyTotal,
		Good:       cur.LatencyOK,
		Attainment: ratio(cur.LatencyOK, cur.LatencyTotal),
	}
	for _, w := range SLOWindows {
		base, actual := windowBase(samples, now, w, cur)
		avail.Windows = append(avail.Windows, windowReport(
			w, actual, cur.Total-base.Total, cur.Good-base.Good, t.AvailabilityObjective))
		lat.Windows = append(lat.Windows, windowReport(
			w, actual, cur.LatencyTotal-base.LatencyTotal, cur.LatencyOK-base.LatencyOK, t.LatencyObjective))
	}
	return SLOReport{Time: now, Objectives: []SLOObjective{avail, lat}}
}

// windowBase finds the cumulative reading at (or just before) the start
// of the trailing window — the oldest sample not older than the window,
// falling back to the zero reading when the process is younger than the
// window and no sample predates it.
func windowBase(samples []sloSample, now time.Time, w time.Duration, cur SLOCounts) (SLOCounts, float64) {
	cutoff := now.Add(-w)
	base := SLOCounts{}
	baseAt := time.Time{}
	for _, s := range samples {
		if s.at.After(cutoff) {
			break
		}
		base = s.c
		baseAt = s.at
	}
	if baseAt.IsZero() {
		// No sample predates the window: the covered span is from the
		// first sample (or zero history) to now, capped at the window.
		if len(samples) > 0 {
			actual := now.Sub(samples[0].at).Seconds()
			if actual > w.Seconds() {
				actual = w.Seconds()
			}
			// Everything since process start is in-window.
			return SLOCounts{}, actual
		}
		return SLOCounts{}, 0
	}
	return base, now.Sub(baseAt).Seconds()
}

func windowReport(w time.Duration, actualS float64, total, good int64, objective float64) SLOWindow {
	if total < 0 {
		total = 0
	}
	if good < 0 {
		good = 0
	}
	if good > total {
		good = total
	}
	win := SLOWindow{
		Window:  w.String(),
		ActualS: actualS,
		Total:   total,
		Good:    good,
	}
	if total == 0 {
		win.Attainment = 1
		return win
	}
	win.Attainment = float64(good) / float64(total)
	budget := 1 - objective
	if budget > 0 {
		win.BurnRate = (1 - win.Attainment) / budget
	}
	return win
}

func ratio(good, total int64) float64 {
	if total <= 0 {
		return 1
	}
	return float64(good) / float64(total)
}
