package obsv

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"testing"
)

// chromeFile mirrors the trace-event JSON container for decoding in
// tests.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestChromeTraceShape pins the parts of the trace-event format the
// viewers actually require: complete events ("ph":"X") on one pid/tid
// track, microsecond ts sorted ascending, and "ms" display units.
func TestChromeTraceShape(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx1, root := StartSpan(ctx, "query")
	_, w := StartSpan(ctx1, "cq.witness", Int64("witnesses", 4))
	w.End()
	_, s := StartSpan(ctx1, "maxsat.solve")
	s.End()
	root.End()
	_, open := StartSpan(ctx, "dangling") // left unfinished on purpose
	_ = open

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4 (incl. the unfinished span)", len(f.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range f.TraceEvents {
		byName[ev.Name] = i
		if ev.Ph != "X" {
			t.Errorf("%s: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Pid != 1 || ev.Tid != 1 {
			t.Errorf("%s: pid/tid = %d/%d, want 1/1 (single nesting track)", ev.Name, ev.Pid, ev.Tid)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("%s: negative ts/dur %f/%f", ev.Name, ev.Ts, ev.Dur)
		}
	}
	for _, name := range []string{"query", "cq.witness", "maxsat.solve", "dangling"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("event %q missing", name)
		}
	}
	if ev := f.TraceEvents[byName["dangling"]]; ev.Dur != 0 {
		t.Errorf("unfinished span dur = %f, want 0", ev.Dur)
	}
	if ev := f.TraceEvents[byName["cq.witness"]]; ev.Cat != "cq" || ev.Args["witnesses"] != float64(4) {
		t.Errorf("cq.witness cat/args = %q %v", ev.Cat, ev.Args)
	}
	if !sort.SliceIsSorted(f.TraceEvents, func(i, j int) bool {
		return f.TraceEvents[i].Ts < f.TraceEvents[j].Ts
	}) {
		t.Error("events not sorted by ts")
	}
}

// TestChromeTraceDroppedSpans exercises the MaxSpans cap: spans beyond
// it never reach the export, but everything kept still renders.
func TestChromeTraceDroppedSpans(t *testing.T) {
	tr := NewTracer()
	tr.MaxSpans = 2
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, "kept.or.dropped")
		sp.End()
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != 2 {
		t.Errorf("exported %d events with MaxSpans=2, want 2", len(f.TraceEvents))
	}
}
