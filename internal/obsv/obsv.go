// Package obsv is the stdlib-only observability layer of the system:
// a hierarchical span tracer propagated through context.Context, a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) with a snapshot API and Prometheus-style text exposition,
// and the shared vocabulary of span and metric names used across the
// pipeline.
//
// The paper's entire evaluation is an observability exercise — the
// encode/solve time splits of Figures 1 and 9, the CNF sizes of
// Table III, the SAT-call counts of Figures 7 and 8 — so the
// instrumentation points mirror exactly those measurements: parse →
// witness evaluation → constraint grouping → CNF encoding → MaxSAT
// iterations → answer extraction.
//
// # Disabled-path cost
//
// Tracing is off unless a *Tracer is installed in the context with
// WithTracer. Every tracer entry point is nil-safe: StartSpan on a
// context without a tracer returns the context unchanged and a nil
// *Span, and all *Span methods are no-ops on a nil receiver. The
// disabled hot path is a single context lookup with zero allocations
// (asserted by TestDisabledSpanAllocs and BenchmarkDisabledSpan).
//
// # Span vocabulary
//
// Span names are a stable public contract (dashboards and trace tooling
// key on them):
//
//	query                    one System.Query call (root)
//	sql.parse                SQL parsing and translation
//	query.range_answers      one Engine.RangeAnswersContext call
//	query.consistent_answers one Engine.ConsistentAnswersContext call
//	cq.witness               witness-bag evaluation (attr: witnesses)
//	core.constraints         key-equal groups / minimal+near violations
//	core.consistent_groups   Algorithm 2 group filtering
//	core.group               per-group aggregate range (attr: witnesses)
//	core.encode              clause construction for one component
//	core.minmax_probes       iterative SAT probes for MIN/MAX (attr: probes)
//	maxsat.solve             one WPMaxSAT instance (attrs: alg, sat_calls)
//	maxsat.external          one external-binary WPMaxSAT run
//	sat.solve                one SAT call inside MaxSAT (attrs: alg, result)
package obsv

import (
	"context"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Exactly one of Str or Int
// is meaningful, selected by IsInt; keeping both inline (instead of an
// interface) lets attribute setting avoid boxing allocations.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Str: value} }

// Int64 builds an integer attribute.
func Int64(key string, value int64) Attr { return Attr{Key: key, Int: value, IsInt: true} }

// Span is one timed operation in a trace. The zero of the API is a nil
// *Span: every method is a no-op on it, so instrumentation points never
// need to test whether tracing is enabled.
type Span struct {
	Name  string
	Start time.Time
	Attrs []Attr

	end time.Time

	id     int32 // index into the tracer's span slice
	parent int32 // parent span id, -1 for roots
	spanID SpanID
	tracer *Tracer
	done   bool
}

// SpanID returns the span's 64-bit W3C span id (zero on a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// Tracer collects spans. It is safe for concurrent use. Spans beyond
// MaxSpans are counted in Dropped() instead of retained, bounding
// memory on traces with very many SAT calls.
type Tracer struct {
	mu      sync.Mutex
	spans   []*Span
	open    int
	dropped int64
	traceID TraceID

	// MaxSpans bounds the number of retained spans (default 1<<20).
	// Mutate only before tracing starts.
	MaxSpans int
}

// NewTracer creates an empty tracer with a fresh random trace id.
func NewTracer() *Tracer {
	return NewTracerWithID(NewTraceID())
}

// NewTracerWithID creates an empty tracer carrying the given trace id —
// the per-request constructor when the caller supplied a traceparent. A
// zero id is replaced with a fresh random one.
func NewTracerWithID(id TraceID) *Tracer {
	if id.IsZero() {
		id = NewTraceID()
	}
	return &Tracer{MaxSpans: 1 << 20, traceID: id}
}

// TraceID returns the tracer's 128-bit trace id. Every span started on
// this tracer belongs to this trace.
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// SetTraceID rebinds the tracer to a trace id (ignored when zero).
// Intended for reuse of a long-lived tracer before tracing starts;
// already-recorded spans keep their derived span ids.
func (t *Tracer) SetTraceID(id TraceID) {
	if t == nil || id.IsZero() {
		return
	}
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

type ctxKey struct{}

// spanCtx is the single context payload: the tracer plus the innermost
// open span (nil at the root), so StartSpan does one context lookup.
type spanCtx struct {
	tracer *Tracer
	span   *Span
}

// WithTracer installs the tracer in the context. A nil tracer returns
// the context unchanged (tracing stays disabled).
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &spanCtx{tracer: t})
}

// TracerFrom returns the tracer installed in the context, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	if sc, ok := ctx.Value(ctxKey{}).(*spanCtx); ok {
		return sc.tracer
	}
	return nil
}

// StartSpan opens a span named name as a child of the context's current
// span. With no tracer installed it returns (ctx, nil) without
// allocating; otherwise the returned context carries the new span so
// nested StartSpan calls build the hierarchy.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	sc, ok := ctx.Value(ctxKey{}).(*spanCtx)
	if !ok || sc.tracer == nil {
		return ctx, nil
	}
	sp := sc.tracer.start(name, sc.span, attrs)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, &spanCtx{tracer: sc.tracer, span: sp}), sp
}

func (t *Tracer) start(name string, parent *Span, attrs []Attr) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.MaxSpans {
		t.dropped++
		return nil
	}
	pid := int32(-1)
	if parent != nil {
		pid = parent.id
	}
	id := int32(len(t.spans))
	sp := &Span{
		Name:   name,
		Start:  time.Now(),
		Attrs:  attrs,
		id:     id,
		parent: pid,
		spanID: deriveSpanID(t.traceID, id),
		tracer: t,
	}
	t.spans = append(t.spans, sp)
	t.open++
	return sp
}

// Absorb moves every span of src into t, preserving src's parent/child
// structure (absorbed roots stay roots in t). It is the tail-retention
// hand-off: a per-request tracer records in isolation, then the request
// end absorbs it into the process-global tracer so /debug/trace keeps
// showing recent activity. Spans beyond t's MaxSpans are dropped
// all-or-nothing (counted in Dropped) so a partially-absorbed trace
// never leaves dangling parent references. src must be quiescent (its
// request finished); it is left unchanged and must not be reused.
func (t *Tracer) Absorb(src *Tracer) {
	if t == nil || src == nil || t == src {
		return
	}
	src.mu.Lock()
	spans := make([]*Span, len(src.spans))
	copy(spans, src.spans)
	srcDropped := src.dropped
	src.mu.Unlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropped += srcDropped
	if len(t.spans)+len(spans) > t.MaxSpans {
		t.dropped += int64(len(spans))
		return
	}
	base := int32(len(t.spans))
	for _, sp := range spans {
		cp := *sp
		cp.id += base
		if cp.parent >= 0 {
			cp.parent += base
		}
		cp.tracer = t
		t.spans = append(t.spans, &cp)
		if !cp.done {
			t.open++
		}
	}
}

// End closes the span. Safe on a nil receiver and idempotent.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.end = time.Now()
	t := s.tracer
	t.mu.Lock()
	t.open--
	t.mu.Unlock()
}

// SetInt attaches an integer attribute. Safe on a nil receiver; the
// typed signature avoids interface boxing on the disabled path.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Int64(key, value))
}

// SetStr attaches a string attribute. Safe on a nil receiver.
func (s *Span) SetStr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, String(key, value))
}

// Duration returns the span's wall time (0 if still open).
func (s *Span) Duration() time.Duration {
	if s == nil || !s.done {
		return 0
	}
	return s.end.Sub(s.Start)
}

// Open returns the number of spans started but not yet ended — 0 on a
// well-formed finished trace (the balanced open/close invariant tests
// assert on this).
func (t *Tracer) Open() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns the number of spans discarded because MaxSpans was
// reached.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a snapshot of the retained spans in start order. The
// *Span values are shared with any still-running instrumentation; treat
// them as read-only.
func (t *Tracer) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}
