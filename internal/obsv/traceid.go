package obsv

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// fallbackIDCounter feeds id generation if crypto/rand ever fails (it
// does not on supported platforms); ids stay non-zero and distinct.
var fallbackIDCounter atomic.Int64

// TraceID is a W3C Trace Context 128-bit trace identifier. The zero
// value is invalid (the spec reserves the all-zero id as "absent").
type TraceID [16]byte

// SpanID is a W3C Trace Context 64-bit span identifier. The zero value
// is invalid.
type SpanID [8]byte

// IsZero reports whether the trace id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the trace id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the span id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the span id as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// NewTraceID draws a random non-zero 128-bit trace id.
func NewTraceID() TraceID {
	var id TraceID
	for {
		if _, err := rand.Read(id[:]); err != nil {
			// crypto/rand never fails on supported platforms; fall back
			// to a counter-derived id rather than panicking in serving
			// paths.
			binary.BigEndian.PutUint64(id[8:], uint64(fallbackIDCounter.Add(1)))
		}
		if !id.IsZero() {
			return id
		}
	}
}

// NewSpanID draws a random non-zero 64-bit span id.
func NewSpanID() SpanID {
	var id SpanID
	for {
		if _, err := rand.Read(id[:]); err != nil {
			binary.BigEndian.PutUint64(id[:], uint64(fallbackIDCounter.Add(1)))
		}
		if !id.IsZero() {
			return id
		}
	}
}

// deriveSpanID computes a deterministic non-zero span id from a trace id
// and a per-trace span index (FNV-1a over both). Deterministic ids keep
// span allocation on the hot path free of crypto/rand syscalls while
// staying unique within a trace.
func deriveSpanID(trace TraceID, index int32) SpanID {
	h := fnv.New64a()
	h.Write(trace[:])
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], uint32(index))
	h.Write(idx[:])
	var id SpanID
	binary.BigEndian.PutUint64(id[:], h.Sum64())
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// TraceContext is the propagated request identity: the trace id shared
// by every span and artifact of one request, the caller-side span id
// (the parent of the first local span), and the W3C sampled flag.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// NewTraceContext mints a fresh sampled trace context with random ids.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
}

// Traceparent renders the context as a W3C traceparent header value:
// version 00, 32 hex trace-id digits, 16 hex span-id digits, and the
// flags byte (01 when sampled).
func (tc TraceContext) Traceparent() string {
	flags := byte(0)
	if tc.Sampled {
		flags = 1
	}
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceID, tc.SpanID, flags)
}

// ParseTraceparent parses a W3C traceparent header value. Unknown
// versions are accepted if they carry the version-00 prefix shape
// (per spec, forward compatibility); all-zero trace or span ids and
// malformed fields are errors.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("obsv: malformed traceparent %q", s)
	}
	ver := s[:2]
	if !isHex(ver) || ver == "ff" {
		return tc, fmt.Errorf("obsv: bad traceparent version %q", ver)
	}
	if ver == "00" && len(s) != 55 {
		return tc, fmt.Errorf("obsv: malformed traceparent %q", s)
	}
	// Future versions may append fields, but the spec requires a '-'
	// delimiter before any trailing data after the flags field.
	if ver != "00" && len(s) > 55 && s[55] != '-' {
		return tc, fmt.Errorf("obsv: malformed traceparent %q", s)
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return tc, fmt.Errorf("obsv: bad traceparent trace-id: %w", err)
	}
	if hasUpper(s[3:35]) {
		return tc, fmt.Errorf("obsv: traceparent trace-id must be lowercase hex")
	}
	if tc.TraceID.IsZero() {
		return tc, fmt.Errorf("obsv: traceparent trace-id is all zero")
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return tc, fmt.Errorf("obsv: bad traceparent parent-id: %w", err)
	}
	if hasUpper(s[36:52]) {
		return tc, fmt.Errorf("obsv: traceparent parent-id must be lowercase hex")
	}
	if tc.SpanID.IsZero() {
		return tc, fmt.Errorf("obsv: traceparent parent-id is all zero")
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return tc, fmt.Errorf("obsv: bad traceparent flags: %w", err)
	}
	tc.Sampled = flags[0]&1 == 1
	return tc, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func hasUpper(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'F' {
			return true
		}
	}
	return false
}

type traceCtxKey struct{}

// WithTraceContext installs the request's trace context in the context.
// A zero trace id returns the context unchanged.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	if tc.TraceID.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom returns the trace context installed by
// WithTraceContext and whether one was present.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// TraceIDFromContext resolves the effective trace id of the context: an
// explicit TraceContext wins, else the installed tracer's trace id, else
// "". Artifact writers (journal, explain, flight bundles) use this one
// lookup to stamp their lines.
func TraceIDFromContext(ctx context.Context) string {
	if tc, ok := TraceContextFrom(ctx); ok {
		return tc.TraceID.String()
	}
	if t := TracerFrom(ctx); t != nil {
		if id := t.TraceID(); !id.IsZero() {
			return id.String()
		}
	}
	return ""
}
