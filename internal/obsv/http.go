package obsv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"
)

// healthInfo is the /healthz payload: liveness plus enough build and
// runtime identity to tell scraped processes apart in a fleet.
type healthInfo struct {
	Status     string  `json:"status"`
	UptimeS    float64 `json:"uptime_s"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Main       string  `json:"main,omitempty"`
	Revision   string  `json:"vcs_revision,omitempty"`
	Modified   bool    `json:"vcs_modified,omitempty"`
}

// buildIdentity reads the binary's embedded build info once (module path
// and vcs stamps are absent in test binaries and plain `go run`).
func buildIdentity() (main, revision string, modified bool) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", "", false
	}
	main = bi.Main.Path
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			revision = kv.Value
		case "vcs.modified":
			modified = kv.Value == "true"
		}
	}
	return main, revision, modified
}

// Handler builds the debug HTTP handler over a live registry and tracer:
//
//	/metrics       Prometheus text exposition of the registry, plus the
//	               tracer's own obsv_spans_* families when tr is non-nil
//	               and the journal's written/dropped counters when j is
//	               non-nil
//	/healthz       liveness + build/runtime identity JSON
//	/debug/trace   current tracer snapshot; ?format=tree (default) or
//	               ?format=chrome for Chrome trace-event JSON
//	/debug/journal the last n journal entries (?n=K, default 32) as a
//	               JSON array, newest last
//	/debug/pprof/  the standard net/http/pprof surface (profile, heap,
//	               goroutine, trace, …)
//
// Every endpoint reads live state: scraping /metrics during a run
// returns counters that move between scrapes. Any of reg, tr, j may be
// nil; the corresponding endpoints degrade gracefully (an empty
// exposition, a 404 trace/journal).
func Handler(reg *Registry, tr *Tracer, j *Journal) http.Handler {
	start := time.Now()
	mainPath, revision, modified := buildIdentity()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(healthInfo{
			Status:     "ok",
			UptimeS:    time.Since(start).Seconds(),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Main:       mainPath,
			Revision:   revision,
			Modified:   modified,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			if err := reg.WritePrometheus(w); err != nil {
				return
			}
		}
		if tr != nil {
			tr.WritePrometheus(w)
		}
		if j != nil {
			j.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/journal", func(w http.ResponseWriter, r *http.Request) {
		if j == nil {
			http.Error(w, "no journal installed", http.StatusNotFound)
			return
		}
		n := 32
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, fmt.Sprintf("bad n %q (want a positive integer)", q), http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		entries := j.Tail(n)
		if entries == nil {
			entries = []JournalEntry{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(entries)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "no tracer installed", http.StatusNotFound)
			return
		}
		switch format := r.URL.Query().Get("format"); format {
		case "", "tree":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			tr.WriteTree(w)
		case "chrome", "json":
			w.Header().Set("Content-Type", "application/json")
			tr.WriteChromeTrace(w)
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (want tree or chrome)", format), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug HTTP server (Serve).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug HTTP server on addr (e.g. "localhost:6060", or
// ":0" to pick a free port — read the bound address back with Addr).
// The server runs on a background goroutine until Close. j may be nil
// when no journal is enabled.
func Serve(addr string, reg *Registry, tr *Tracer, j *Journal) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: debug server: %w", err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(reg, tr, j)},
	}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
