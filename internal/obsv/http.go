package obsv

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"
)

// healthInfo is the /healthz payload: liveness plus enough build and
// runtime identity to tell scraped processes apart in a fleet, plus the
// journal's write/drop counters (a replay smoke asserts dropped stays 0
// under load) and any caller-provided extras (cavsatd adds its
// attached-instance count).
type healthInfo struct {
	Status         string         `json:"status"`
	UptimeS        float64        `json:"uptime_s"`
	GoVersion      string         `json:"go_version"`
	GOMAXPROCS     int            `json:"gomaxprocs"`
	Main           string         `json:"main,omitempty"`
	Revision       string         `json:"vcs_revision,omitempty"`
	Modified       bool           `json:"vcs_modified,omitempty"`
	JournalWritten *int64         `json:"journal_written,omitempty"`
	JournalDropped *int64         `json:"journal_dropped,omitempty"`
	Extra          map[string]any `json:"extra,omitempty"`
}

// buildIdentity reads the binary's embedded build info once (module path
// and vcs stamps are absent in test binaries and plain `go run`).
func buildIdentity() (main, revision string, modified bool) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", "", false
	}
	main = bi.Main.Path
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			revision = kv.Value
		case "vcs.modified":
			modified = kv.Value == "true"
		}
	}
	return main, revision, modified
}

// Handler builds the debug HTTP handler over a live registry and tracer:
//
//	/metrics       Prometheus text exposition of the registry, plus the
//	               tracer's own obsv_spans_* families when tr is non-nil
//	               and the journal's written/dropped counters when j is
//	               non-nil
//	/healthz       liveness + build/runtime identity JSON
//	/debug/trace   current tracer snapshot; ?format=tree (default) or
//	               ?format=chrome for Chrome trace-event JSON
//	/debug/journal the last n journal entries (?n=K, default 32) as a
//	               JSON array, newest last
//	/debug/pprof/  the standard net/http/pprof surface (profile, heap,
//	               goroutine, trace, …)
//
// Every endpoint reads live state: scraping /metrics during a run
// returns counters that move between scrapes. Any of reg, tr, j may be
// nil; the corresponding endpoints degrade gracefully (an empty
// exposition, a 404 trace/journal).
func Handler(reg *Registry, tr *Tracer, j *Journal) http.Handler {
	return NewHandler(HandlerConfig{Registry: reg, Tracer: tr, Journal: j})
}

// HandlerConfig configures the debug handler beyond the classic
// (registry, tracer, journal) triple.
type HandlerConfig struct {
	Registry *Registry
	Tracer   *Tracer
	Journal  *Journal
	// Traces serves retained request traces on /debug/trace?trace=<id>
	// and the retained listing on /debug/trace?list=1.
	Traces *TraceStore
	// Extra, when non-nil, is merged into the /healthz payload under
	// "extra" on every request (live values, e.g. attached instances).
	Extra func() map[string]any
}

// NewHandler builds the debug HTTP handler from a HandlerConfig; see
// Handler for the endpoint surface.
func NewHandler(cfg HandlerConfig) http.Handler {
	reg, tr, j := cfg.Registry, cfg.Tracer, cfg.Journal
	start := time.Now()
	mainPath, revision, modified := buildIdentity()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		info := healthInfo{
			Status:     "ok",
			UptimeS:    time.Since(start).Seconds(),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Main:       mainPath,
			Revision:   revision,
			Modified:   modified,
		}
		if j != nil {
			written, dropped := j.Written(), j.Dropped()
			info.JournalWritten, info.JournalDropped = &written, &dropped
		}
		if cfg.Extra != nil {
			info.Extra = cfg.Extra()
		}
		json.NewEncoder(w).Encode(info)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			if err := reg.WritePrometheus(w); err != nil {
				return
			}
		}
		if tr != nil {
			tr.WritePrometheus(w)
		}
		if j != nil {
			j.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/journal", func(w http.ResponseWriter, r *http.Request) {
		if j == nil {
			http.Error(w, "no journal installed", http.StatusNotFound)
			return
		}
		n := 32
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, fmt.Sprintf("bad n %q (want a positive integer)", q), http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		entries := j.Tail(n)
		if entries == nil {
			entries = []JournalEntry{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(entries)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		target := tr
		q := r.URL.Query()
		if id := q.Get("trace"); id != "" {
			if cfg.Traces == nil {
				http.Error(w, "no trace store installed", http.StatusNotFound)
				return
			}
			var tid TraceID
			if len(id) != 32 {
				http.Error(w, fmt.Sprintf("bad trace id %q (want 32 hex digits)", id), http.StatusBadRequest)
				return
			}
			if _, err := hex.Decode(tid[:], []byte(id)); err != nil {
				http.Error(w, fmt.Sprintf("bad trace id %q (want 32 hex digits)", id), http.StatusBadRequest)
				return
			}
			rt, ok := cfg.Traces.Get(tid)
			if !ok {
				http.Error(w, fmt.Sprintf("trace %s not retained", id), http.StatusNotFound)
				return
			}
			target = rt.Tracer
		}
		if q.Get("list") != "" {
			if cfg.Traces == nil {
				http.Error(w, "no trace store installed", http.StatusNotFound)
				return
			}
			type item struct {
				TraceID    string  `json:"trace_id"`
				Reason     string  `json:"reason"`
				Query      string  `json:"query,omitempty"`
				Tenant     string  `json:"tenant,omitempty"`
				Start      string  `json:"start"`
				DurationMS float64 `json:"duration_ms"`
				Spans      int     `json:"spans"`
			}
			retained := cfg.Traces.List()
			items := make([]item, len(retained))
			for i, rt := range retained {
				items[i] = item{
					TraceID:    rt.TraceID.String(),
					Reason:     rt.Reason,
					Query:      rt.Query,
					Tenant:     rt.Tenant,
					Start:      rt.Start.UTC().Format(time.RFC3339Nano),
					DurationMS: float64(rt.Duration.Microseconds()) / 1000,
					Spans:      rt.Tracer.Len(),
				}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(items)
			return
		}
		if target == nil {
			http.Error(w, "no tracer installed", http.StatusNotFound)
			return
		}
		switch format := q.Get("format"); format {
		case "", "tree":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "trace %s\n", target.TraceID())
			target.WriteTree(w)
		case "chrome", "json":
			w.Header().Set("Content-Type", "application/json")
			target.WriteChromeTrace(w)
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (want tree or chrome)", format), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug HTTP server (Serve).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug HTTP server on addr (e.g. "localhost:6060", or
// ":0" to pick a free port — read the bound address back with Addr).
// The server runs on a background goroutine until Close. j may be nil
// when no journal is enabled.
func Serve(addr string, reg *Registry, tr *Tracer, j *Journal) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: debug server: %w", err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(reg, tr, j)},
	}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
