package obsv

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler builds the debug HTTP handler over a live registry and tracer:
//
//	/metrics       Prometheus text exposition of the registry, plus the
//	               tracer's own obsv_spans_* families when tr is non-nil
//	/healthz       liveness JSON ({"status":"ok","uptime_s":…})
//	/debug/trace   current tracer snapshot; ?format=tree (default) or
//	               ?format=chrome for Chrome trace-event JSON
//	/debug/pprof/  the standard net/http/pprof surface (profile, heap,
//	               goroutine, trace, …)
//
// Every endpoint reads live state: scraping /metrics during a run
// returns counters that move between scrapes. Either reg or tr may be
// nil; the corresponding endpoints degrade gracefully (an empty
// exposition, a 404 trace).
func Handler(reg *Registry, tr *Tracer) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_s\":%.1f}\n", time.Since(start).Seconds())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			if err := reg.WritePrometheus(w); err != nil {
				return
			}
		}
		if tr != nil {
			tr.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "no tracer installed", http.StatusNotFound)
			return
		}
		switch format := r.URL.Query().Get("format"); format {
		case "", "tree":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			tr.WriteTree(w)
		case "chrome", "json":
			w.Header().Set("Content-Type", "application/json")
			tr.WriteChromeTrace(w)
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (want tree or chrome)", format), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug HTTP server (Serve).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug HTTP server on addr (e.g. "localhost:6060", or
// ":0" to pick a free port — read the bound address back with Addr).
// The server runs on a background goroutine until Close.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: debug server: %w", err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(reg, tr)},
	}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
