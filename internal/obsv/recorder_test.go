package obsv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderRingWrap(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record("note", fmt.Sprintf("e%d", i), Int64("i", int64(i)))
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10", got)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("len(Events()) = %d, want 4 (ring capacity)", len(events))
	}
	// The ring keeps the most recent events, in chronological order.
	for i, ev := range events {
		want := fmt.Sprintf("e%d", 6+i)
		if ev.Name != want {
			t.Errorf("events[%d].Name = %q, want %q", i, ev.Name, want)
		}
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time.Before(events[i-1].Time) {
			t.Errorf("events out of chronological order at %d", i)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	r.Record("note", "ignored") // must not panic
	if got := r.Events(); got != nil {
		t.Errorf("nil recorder Events() = %v, want nil", got)
	}
	if got := r.Total(); got != 0 {
		t.Errorf("nil recorder Total() = %d, want 0", got)
	}
	ctx := WithFlightRecorder(context.Background(), nil)
	if got := FlightRecorderFrom(ctx); got != nil {
		t.Errorf("FlightRecorderFrom = %v, want nil", got)
	}
}

func TestFlightRecorderContext(t *testing.T) {
	r := NewFlightRecorder(0)
	ctx := WithFlightRecorder(context.Background(), r)
	if got := FlightRecorderFrom(ctx); got != r {
		t.Fatalf("FlightRecorderFrom = %v, want the installed recorder", got)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	rec := NewFlightRecorder(2)
	rec.Record("phase", "witness", Int64("ns", 1000))
	rec.Record("progress", "maxhs", Int64("conflicts", 7), String("phase", "model"))
	rec.Record("bound", "maxhs", Int64("lb", 0), Int64("ub", 3))

	reg := NewRegistry()
	reg.Counter("aggcavsat_sat_calls_total").Add(5)
	start := time.Now().Add(-time.Second)
	b := NewBundle("budget", "range_answers/SUM", errors.New("conflict budget exhausted"),
		start, time.Second, rec, reg.Snapshot(),
		ResourceDelta{AllocBytes: 4096, HeapBytes: 1 << 20, GCCycles: 1})

	if b.DroppedEvents != 1 {
		t.Errorf("DroppedEvents = %d, want 1 (capacity 2, 3 recorded)", b.DroppedEvents)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "budget" || got.Query != "range_answers/SUM" || got.Err == "" {
		t.Errorf("decoded header = %q/%q/%q", got.Reason, got.Query, got.Err)
	}
	if got.DurationMS != 1000 {
		t.Errorf("DurationMS = %v, want 1000", got.DurationMS)
	}
	if len(got.Events) != 2 {
		t.Fatalf("decoded %d events, want 2", len(got.Events))
	}
	last := got.Events[1]
	if last.Kind != "bound" || last.Name != "maxhs" {
		t.Errorf("last event = %s/%s, want bound/maxhs", last.Kind, last.Name)
	}
	// JSON numbers decode as float64 in the any-typed attrs.
	if ub, ok := last.Attrs["ub"].(float64); !ok || ub != 3 {
		t.Errorf("last event ub = %v, want 3", last.Attrs["ub"])
	}
	if got.Metrics.Counters["aggcavsat_sat_calls_total"] != 5 {
		t.Errorf("metric snapshot not preserved: %+v", got.Metrics.Counters)
	}
	if got.Resources.AllocBytes != 4096 {
		t.Errorf("resources not preserved: %+v", got.Resources)
	}
}

func TestReadBundleRejectsWrongVersion(t *testing.T) {
	if _, err := ReadBundle(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("ReadBundle accepted an unknown version")
	}
}

func TestDumpDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flights")
	sink := DumpDir(dir)
	rec := NewFlightRecorder(8)
	rec.Record("phase", "solve", Int64("ns", 42))
	b := NewBundle("timeout", "q", errors.New("deadline"), time.Now(), time.Millisecond,
		rec, NewRegistry().Snapshot(), ResourceDelta{})
	sink(b)

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dump dir has %d files, want 1", len(entries))
	}
	name := entries[0].Name()
	if !strings.HasPrefix(name, "flight-") || !strings.HasSuffix(name, "-timeout.json") {
		t.Errorf("dump filename %q does not follow flight-<stamp>-<seq>-<reason>.json", name)
	}
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadBundle(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "timeout" || len(got.Events) != 1 {
		t.Errorf("dumped bundle = reason %q, %d events", got.Reason, len(got.Events))
	}
}
