package obsv

import (
	"math"
	"sync"
	"testing"
)

func TestSummaryExactQuantiles(t *testing.T) {
	s := NewSummary(0, nil)
	// 1..100 in a scrambled order: nearest-rank order statistics.
	for i := 0; i < 100; i++ {
		s.Observe(float64((i*37)%100 + 1))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100},
	} {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g (exact regime)", tc.q, got, tc.want)
		}
	}
	snap := s.Snapshot()
	if snap.Count != 100 || snap.Sum != 5050 || snap.Max != 100 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.P50 != 50 || snap.P90 != 90 || snap.P99 != 99 {
		t.Errorf("snapshot quantiles = %+v", snap)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary(0, nil)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Errorf("Quantile on empty = %g, want NaN", s.Quantile(0.5))
	}
	snap := s.Snapshot()
	if snap.Count != 0 || snap.P50 != 0 || snap.Max != 0 {
		t.Errorf("empty snapshot = %+v", snap)
	}
	if s.Max() != 0 || s.Count() != 0 {
		t.Error("empty accessors non-zero")
	}
}

func TestSummaryFoldsToInterpolation(t *testing.T) {
	// maxExact 8 forces the fold; buckets at 1,2,4,8 define the grid.
	s := NewSummary(8, []float64{1, 2, 4, 8})
	// 100 observations uniform in (0, 8]: ~12.5 per 1.0 of range.
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i) * 0.08)
	}
	if got := s.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	// After folding, quantiles are interpolated, not exact — allow a
	// bucket-granularity tolerance around the true value.
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 4.0, 1.0},
		{0.9, 7.2, 1.0},
		{1, 8.0, 0},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%g) = %g, want %g ± %g (interpolated regime)", tc.q, got, tc.want, tc.tol)
		}
	}
	// Monotonicity across quantiles survives the fold.
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%g) = %g < previous %g (not monotone)", q, v, prev)
		}
		prev = v
	}
}

func TestSummaryAboveLastBucketReportsMax(t *testing.T) {
	s := NewSummary(2, []float64{1})
	for _, v := range []float64{5, 6, 7} {
		s.Observe(v)
	}
	if got := s.Quantile(0.99); got != 7 {
		t.Errorf("p99 above the bucket grid = %g, want the tracked max 7", got)
	}
	if got := s.Quantile(1); got != 7 {
		t.Errorf("max = %g", got)
	}
}

func TestSummaryInterpolationClampedToMax(t *testing.T) {
	// A rank landing in the bucket that also holds the max must not
	// interpolate past it.
	s := NewSummary(1, []float64{10, 100})
	s.Observe(11)
	s.Observe(12)
	s.Observe(13)
	if got := s.Quantile(0.99); got > 13 {
		t.Errorf("p99 = %g, exceeds the observed max 13", got)
	}
}

func TestRegistrySummary(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("test_seconds", 0, nil)
	if s2 := r.Summary("test_seconds", 0, nil); s2 != s {
		t.Fatal("Summary get-or-create returned a different instance")
	}
	s.Observe(0.25)
	snap := r.Snapshot()
	ss, ok := snap.Summaries["test_seconds"]
	if !ok || ss.Count != 1 || ss.Max != 0.25 {
		t.Fatalf("snapshot summary = %+v (ok=%v)", ss, ok)
	}
}

func TestSummaryConcurrent(t *testing.T) {
	s := NewSummary(64, nil) // small reservoir: fold happens mid-race
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Observe(float64(i%100) / 100)
				if i%50 == 0 {
					s.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Count(); got != 2000 {
		t.Errorf("count = %d, want 2000", got)
	}
}
