package obsv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): a "# TYPE" line per family followed by sample
// lines, histograms with cumulative le-labelled buckets plus _sum and
// _count. Output is sorted by name, so it is byte-stable for a given
// snapshot — scrape endpoints and tests both rely on that.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the snapshot in the Prometheus text format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	// Counter names may carry a label set (`family{k="v"}`); the TYPE
	// header names the bare family and appears once per family. Sorted
	// order keeps a family's labelled members adjacent, so tracking the
	// previous family suffices.
	lastFamily := ""
	for _, name := range sortedKeys(s.Counters) {
		family := metricFamily(name)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	// Histogram names may carry a label set (a LabeledHistogram series,
	// `family{k="v"}`): the TYPE header names the bare family once, and
	// each series merges its labels with the le label on bucket lines.
	lastFamily = ""
	for _, name := range hnames {
		h := s.Histograms[name]
		family, labels := splitSeries(name)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		var cum int64
		for i, ub := range h.Buckets {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", family, labels, formatFloat(ub), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", family, labels, cum+h.Inf); err != nil {
			return err
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels[:len(labels)-1] + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, suffix, formatFloat(h.Sum)); err != nil {
			return err
		}
		// The 0.0.4 format requires _count == the +Inf bucket. Under
		// concurrent Observe the independent count atomic can lag the
		// bucket atomics mid-snapshot, so derive _count from the buckets
		// rather than emitting h.Count and risking an inconsistent scrape.
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", family, suffix, cum+h.Inf); err != nil {
			return err
		}
	}
	snames := make([]string, 0, len(s.Summaries))
	for name := range s.Summaries {
		snames = append(snames, name)
	}
	sort.Strings(snames)
	for _, name := range snames {
		sm := s.Summaries[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
			return err
		}
		// Quantile lines in ascending φ order (maps don't iterate sorted).
		quants := []struct {
			q string
			v float64
		}{{"0.5", sm.P50}, {"0.9", sm.P90}, {"0.99", sm.P99}, {"1", sm.Max}}
		for _, qv := range quants {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", name, qv.q, formatFloat(qv.v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(sm.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", name, sm.Count); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the tracer's own health as two metric
// families: obsv_spans_dropped_total (spans discarded beyond MaxSpans —
// a non-zero value means traces are being truncated) and obsv_spans_open
// (spans started but not yet ended; a steady non-zero value on an idle
// process indicates a span leak). Scrape endpoints append this after the
// registry exposition.
func (t *Tracer) WritePrometheus(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"# TYPE obsv_spans_dropped_total counter\nobsv_spans_dropped_total %d\n"+
			"# TYPE obsv_spans_open gauge\nobsv_spans_open %d\n",
		t.Dropped(), t.Open())
	return err
}

// splitSeries splits a possibly-labeled series name into its bare
// family and the inner label text ready for merging with more labels
// (`foo{a="b"}` → `foo`, `a="b",`; unlabeled names return "", so
// `fmt.Sprintf("%s_bucket{%sle=...}", family, labels)` renders both
// shapes correctly).
func splitSeries(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := name[i+1 : len(name)-1]
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

// metricFamily strips a trailing label set from a metric name:
// `foo_total{route="sat"}` → `foo_total`. Unlabelled names pass through.
func metricFamily(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
