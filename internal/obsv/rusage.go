package obsv

import (
	"runtime/metrics"
)

// Resource metric names recorded by the per-phase accounting in
// internal/core. Like the duration metrics, they are a stable contract:
// the *_alloc_bytes counters accumulate the heap bytes allocated while a
// phase was running (process-global: under parallelism, concurrent
// phases each observe the shared allocation stream, the same caveat as
// the summed per-phase durations), the heap gauge is the live-object
// heap size at the last phase boundary, and the GC counter accumulates
// collection cycles completed during measured phases.
const (
	MetricPhaseAllocPrefix = "aggcavsat_phase_alloc_bytes_" // + witness|encode|solve
	MetricHeapBytes        = "aggcavsat_heap_bytes"
	MetricGCCycles         = "aggcavsat_gc_cycles_total"
)

// runtimeSampleNames are the runtime/metrics samples behind
// ResourceSample, chosen to keep one reading cheap (three uint64 reads,
// no histograms) so always-on per-phase accounting stays invisible next
// to encode/solve times.
var runtimeSampleNames = [...]string{
	"/gc/heap/allocs:bytes",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
}

// ResourceSample is one point-in-time reading of the process's memory
// counters: cumulative heap allocations, live heap bytes, and completed
// GC cycles. Samples are process-global; phase attribution comes from
// differencing two samples around the phase (Since).
type ResourceSample struct {
	// AllocBytes is the cumulative total of heap bytes allocated since
	// process start (monotone).
	AllocBytes uint64
	// HeapBytes is the bytes of live heap objects at sampling time.
	HeapBytes uint64
	// GCCycles is the number of completed GC cycles since process start
	// (monotone).
	GCCycles uint64
}

// SampleResources reads the current resource counters via
// runtime/metrics. It allocates one small scratch slice per call and is
// safe for concurrent use.
func SampleResources() ResourceSample {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	var out ResourceSample
	for i := range samples {
		if samples[i].Value.Kind() != metrics.KindUint64 {
			continue // metric unsupported on this runtime; leave zero
		}
		v := samples[i].Value.Uint64()
		switch i {
		case 0:
			out.AllocBytes = v
		case 1:
			out.HeapBytes = v
		case 2:
			out.GCCycles = v
		}
	}
	return out
}

// ResourceDelta is the change between two resource samples bracketing an
// operation.
type ResourceDelta struct {
	// AllocBytes is the heap bytes allocated between the samples
	// (non-negative: the underlying counter is monotone).
	AllocBytes int64 `json:"alloc_bytes"`
	// HeapDeltaBytes is the change in live heap size (negative when a GC
	// between the samples freed more than the operation retained).
	HeapDeltaBytes int64 `json:"heap_delta_bytes"`
	// HeapBytes is the live heap size at the end sample.
	HeapBytes int64 `json:"heap_bytes"`
	// GCCycles is the number of collections completed between the
	// samples.
	GCCycles int64 `json:"gc_cycles"`
}

// Since returns the delta from prev to s (s is the later sample).
func (s ResourceSample) Since(prev ResourceSample) ResourceDelta {
	return ResourceDelta{
		AllocBytes:     int64(s.AllocBytes - prev.AllocBytes),
		HeapDeltaBytes: int64(s.HeapBytes) - int64(prev.HeapBytes),
		HeapBytes:      int64(s.HeapBytes),
		GCCycles:       int64(s.GCCycles - prev.GCCycles),
	}
}
